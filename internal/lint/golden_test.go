package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness runs one analyzer over a fixture module under
// testdata/ and checks its diagnostics against // want "regexp" markers:
// every marker line must produce a matching diagnostic and every diagnostic
// must be claimed by a marker. Suppressed hits and clean shapes simply have
// no marker.

func TestPoolPairGolden(t *testing.T)    { runGolden(t, PoolPair, "poolpair") }
func TestDeterminismGolden(t *testing.T) { runGolden(t, Determinism, "determinism") }
func TestFloatCmpGolden(t *testing.T)    { runGolden(t, FloatCmp, "floatcmp") }
func TestNakedGoGolden(t *testing.T)     { runGolden(t, NakedGo, "nakedgo") }
func TestPkgDocGolden(t *testing.T)      { runGolden(t, PkgDoc, "pkgdoc") }
func TestQuerySeamGolden(t *testing.T)   { runGolden(t, QuerySeam, "queryseam") }
func TestErrFlowGolden(t *testing.T)     { runGolden(t, ErrFlow, "errflow") }
func TestSpanPairGolden(t *testing.T)    { runGolden(t, SpanPair, "spanpair") }
func TestGoLifeGolden(t *testing.T)      { runGolden(t, GoLife, "golife") }

type wantMarker struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func runGolden(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, te := range prog.TypeErrors {
		t.Errorf("fixture type error: %v", te)
	}
	wants := collectWants(t, prog)
	diags := prog.Run([]*Analyzer{a})

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants scans every fixture file's comments for // want "regexp"
// markers.
func collectWants(t *testing.T, prog *Program) []*wantMarker {
	t.Helper()
	var out []*wantMarker
	seen := map[*ast.File]bool{}
	for _, u := range prog.Units {
		for _, f := range u.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					rest = strings.TrimSpace(rest)
					pat, err := unquoteMarker(rest)
					if err != nil {
						t.Fatalf("%s: bad want marker %q: %v", prog.Fset.Position(c.Pos()), rest, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", prog.Fset.Position(c.Pos()), pat, err)
					}
					pos := prog.Fset.Position(c.Pos())
					out = append(out, &wantMarker{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// unquoteMarker accepts both "..." and `...` want payloads.
func unquoteMarker(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return strconv.Unquote(s)
	}
	return "", fmt.Errorf("want payload must be a quoted string")
}
