package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 1}
	cases := []struct {
		text     string
		kind     int
		analyzer string
		errPart  string
	}{
		{"ignore poolpair buffer handed to the cache", dirIgnore, "poolpair", ""},
		{"ignore determinism telemetry only", dirIgnore, "determinism", ""},
		{"transfer released by releaseCaches", dirTransfer, "", ""},
		{"transfer", dirTransfer, "", ""},
		{"ignore floatcmp", dirMalformed, "", "need \"//lint:ignore <analyzer> <reason>\""},
		{"ignore nosuch reason here", dirMalformed, "", "unknown analyzer"},
		{"frobnicate whatever", dirMalformed, "", "unknown //lint: directive"},
		{"", dirMalformed, "", "empty //lint: directive"},
	}
	for _, c := range cases {
		d := parseDirective(c.text, pos)
		if d.kind != c.kind {
			t.Errorf("parseDirective(%q): kind = %d, want %d", c.text, d.kind, c.kind)
		}
		if d.analyzer != c.analyzer {
			t.Errorf("parseDirective(%q): analyzer = %q, want %q", c.text, d.analyzer, c.analyzer)
		}
		if c.errPart != "" && !strings.Contains(d.reason, c.errPart) {
			t.Errorf("parseDirective(%q): reason %q does not mention %q", c.text, d.reason, c.errPart)
		}
	}
}

func TestSuppressedCoversLineAndLineAbove(t *testing.T) {
	prog := &Program{directives: map[string]map[int][]*directive{
		"f.go": {10: {{kind: dirIgnore, analyzer: "floatcmp"}}},
	}}
	if !prog.suppressed("floatcmp", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("same-line suppression not applied")
	}
	if !prog.suppressed("floatcmp", token.Position{Filename: "f.go", Line: 11}) {
		t.Error("line-above suppression not applied")
	}
	if prog.suppressed("floatcmp", token.Position{Filename: "f.go", Line: 12}) {
		t.Error("suppression leaked two lines down")
	}
	if prog.suppressed("poolpair", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("suppression applied to the wrong analyzer")
	}
	if prog.suppressed("floatcmp", token.Position{Filename: "g.go", Line: 10}) {
		t.Error("suppression applied to the wrong file")
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("poolpair,floatcmp")
	if err != nil || len(as) != 2 || as[0].Name != "poolpair" || as[1].Name != "floatcmp" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
