package lint

import (
	"go/ast"
	"go/types"
)

// SpanPair enforces the span lifecycle contract (DESIGN.md §15): every
// span opened through obs — Tracer.Start, Span.Child, Span.ChildDetail,
// and core's startRoot wrapper — must reach End on every path out of the
// opening function, or explicitly leave it (returned, stored into a
// longer-lived structure, sent on a channel). An unended span never
// exports its record, silently truncates the trace tree, and — for
// proc-labelled phase spans — drops its duration and query count from the
// Figure 3 breakdown, so `dnnlock trace -check` fails on rollup mismatch.
//
// The analysis mirrors poolpair on the shared CFG: opening a span
// generates an obligation, sp.End(...) discharges it, a deferred End
// discharges every exit (End is idempotent, so a deferred End alongside an
// explicit one is safe), and escapes transfer the obligation to the new
// owner. Passing the span as a plain call argument is NOT a discharge —
// helpers decorate spans, they do not adopt them. Findings carry an
// automatic fix: insert `defer sp.End()` right after the opening
// statement, which End's idempotence makes unconditionally safe.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "obs spans must be ended on all paths (or explicitly handed off)",
	Run:  runSpanPair,
}

// spanSources maps span-opening functions (package path -> names).
var spanSources = map[string]map[string]bool{
	"dnnlock/internal/obs":  {"Start": true, "Child": true, "ChildDetail": true},
	"dnnlock/internal/core": {"startRoot": true},
}

func runSpanPair(p *Pass) {
	for _, f := range p.Unit.Files {
		for _, fn := range functionNodes(f) {
			p.spanRegion(fn)
		}
	}
}

// spanBind is one tracked span obligation.
type spanBind struct {
	call *ast.CallExpr
	name string
	obj  types.Object
	objs []types.Object // obj plus plain aliases
	node ast.Node       // binding statement
}

func (p *Pass) spanRegion(fn funcNode) {
	binds := p.collectSpanBinds(fn)
	if len(binds) == 0 {
		return
	}
	g := p.cfgOf(fn.body)

	deferred := make([]bool, len(binds))
	for i, b := range binds {
		p.spanAliases(fn.body, b)
		deferred[i] = p.deferredEnd(fn.body, b)
	}

	prob := &FlowProblem{CFG: g, Facts: len(binds), May: true,
		Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
	hasEvent := make([]bool, len(binds))
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for i, b := range binds {
				if p.spanDischarges(n, fn.body, b) {
					prob.Kill[n] = append(prob.Kill[n], i)
					hasEvent[i] = true
				}
			}
		}
	}
	for i, b := range binds {
		blk, idx := g.FindNode(b.call.Pos())
		if blk == nil {
			continue
		}
		prob.Gen[blk.Nodes[idx]] = append(prob.Gen[blk.Nodes[idx]], i)
	}
	res := prob.Solve()

	for i, b := range binds {
		if deferred[i] {
			continue
		}
		fix := p.deferEndFix(b)
		if !hasEvent[i] {
			p.ReportFix(b.call.Pos(), fix,
				"span from %s is never ended: add defer %s.End()", b.name, spanVarName(b))
			continue
		}
		p.reportSpanPaths(g, res, prob, i, b, fix)
	}
}

// reportSpanPaths flags every reachable exit an open span survives to.
// Only the first leaking exit carries the fix: the single inserted defer
// covers every path, and duplicate edits at the same offset would collide.
func (p *Pass) reportSpanPaths(g *CFG, res *FlowResult, prob *FlowProblem, i int, b *spanBind, fix *SuggestedFix) {
	line := p.Fset.Position(b.call.Pos()).Line
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			continue
		}
		for idx, n := range blk.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			if !res.Before(blk, idx).Has(i) || killsFact(prob.Kill[n], i) {
				continue
			}
			p.ReportFix(ret.Pos(), fix,
				"span from %s (line %d) is not ended on this return path: add defer %s.End() at the open site",
				b.name, line, spanVarName(b))
			fix = nil
		}
	}
	if g.FallsOff != nil && g.FallsOff.Reachable && res.Out[g.FallsOff].Has(i) {
		p.ReportFix(b.call.Pos(), fix,
			"span from %s is not ended on the fall-through path to the end of the function", b.name)
	}
}

// collectSpanBinds finds span-opening calls bound directly in this region.
func (p *Pass) collectSpanBinds(fn funcNode) []*spanBind {
	var out []*spanBind
	walkRegion(fn.body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, hit := p.spanSourceCall(call); hit {
					p.Report(call.Pos(), "span from %s is discarded: it can never be ended", name)
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return // span sources are single-result; tuple shapes hold none
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.spanSourceCall(call)
				if !hit {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						p.Report(call.Pos(), "span from %s is assigned to _: it can never be ended", name)
						continue
					}
					obj := p.Unit.Info.Defs[lhs]
					if obj == nil {
						obj = p.Unit.Info.Uses[lhs]
					}
					if obj == nil || obj.Pos() < fn.node.Pos() || obj.Pos() > fn.node.End() {
						continue
					}
					out = append(out, &spanBind{call: call, name: name, obj: obj,
						objs: []types.Object{obj}, node: st})
				default:
					// Stored straight into a field: the structure now owns the
					// span (startRoot's a.root = sp is the canonical case).
				}
			}
		}
	})
	return out
}

func (p *Pass) spanSourceCall(call *ast.CallExpr) (string, bool) {
	return p.callIn(call, spanSources)
}

// spanDischarges reports whether one CFG element ends or hands off the
// span: an End call through any alias, a return carrying the span, a send,
// or a store into something longer-lived. Plain argument passing does not
// discharge. The scan descends into nested closures, so an End inside a
// worker body discharges at the statement creating the closure.
func (p *Pass) spanDischarges(n ast.Node, body *ast.BlockStmt, b *spanBind) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch v := c.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && p.isTracked(id, b.objs) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if p.escapingExpr(res, b.objs) {
					found = true
					break
				}
			}
		case *ast.SendStmt:
			if p.escapingExpr(v.Value, b.objs) {
				found = true
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !p.isTracked(id, b.objs) || i >= len(v.Lhs) {
					continue
				}
				if !p.localLHS(v.Lhs[i], body) {
					found = true // ownership handed to the structure
				}
			}
		}
		return !found
	})
	return found
}

// deferredEnd reports whether any defer in the region ends the span.
func (p *Pass) deferredEnd(body *ast.BlockStmt, b *spanBind) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					if id, ok := sel.X.(*ast.Ident); ok && p.isTracked(id, b.objs) {
						found = true
					}
				}
			}
			return !found
		})
		return true
	})
	return found
}

// spanAliases adds plain local aliases (s2 := sp) so Ends through the alias
// count.
func (p *Pass) spanAliases(body *ast.BlockStmt, b *spanBind) {
	acq := &acquisition{call: b.call, name: b.name, obj: b.obj, objs: b.objs}
	aliasClosure(p, body, acq)
	b.objs = acq.objs
}

// deferEndFix builds the `defer sp.End()` insertion after the binding
// statement. Only offered when the span landed in a plain identifier.
func (p *Pass) deferEndFix(b *spanBind) *SuggestedFix {
	name := spanVarName(b)
	if name == "" {
		return nil
	}
	return &SuggestedFix{
		Message: "defer ending the span at the open site",
		Edits:   []TextEdit{{Pos: b.node.End(), End: b.node.End(), NewText: "\ndefer " + name + ".End()"}},
	}
}

func spanVarName(b *spanBind) string {
	if b.obj == nil {
		return ""
	}
	return b.obj.Name()
}
