package main

import (
	"bytes"
	"strings"
	"testing"
)

// The CLI contract scripts/check.sh relies on: seeded violations exit 1
// with positioned diagnostics, clean trees exit 0, nonsense exits 2.

func TestRunFlagsSeededViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/nakedgo/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nakedgo]") || !strings.Contains(out, "fixture.go:") {
		t.Errorf("diagnostics lack analyzer tag or position:\n%s", out)
	}
}

func TestRunAnalyzerSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only poolpair is requested, so the nakedgo fixture module is clean.
	code := run([]string{"-analyzers=poolpair", "../../internal/lint/testdata/nakedgo/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers=nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
