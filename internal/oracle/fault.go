package oracle

// Fault-injection decorators for the oracle boundary. The paper's adversary
// model (§2.3) grants the attacker exact full-precision logits from a
// perfectly reliable device; real deployments are harsher — quantized
// accelerator outputs, measurement noise, label-only APIs, rate limits,
// dropped queries. Each decorator wraps an Interface and degrades it along
// one of those axes, so experiments can sweep the attack's fidelity and
// query complexity as a function of oracle quality (harness.RunRobustness).
//
// All decorators are deterministic under a fixed seed and safe for
// concurrent use. Noise is derived by hashing the queried input (plus a
// per-input repetition counter), not from a shared RNG stream, so the
// noise attached to a query does not depend on goroutine scheduling:
// repeated queries of the same point draw a fresh deterministic sample
// each time — which is exactly what the attack's repeat-query majority
// voting needs — while distinct points are independent regardless of the
// order they are issued in.

import (
	"math"
	"sync"
	"sync/atomic"

	"dnnlock/internal/tensor"
)

// wrapper provides the pass-through half of a decorator: query accounting,
// counter reset, and the softmax flag always reflect the wrapped oracle.
type wrapper struct{ inner Interface }

func (w *wrapper) Queries() int64 { return w.inner.Queries() }
func (w *wrapper) Rounds() int64  { return w.inner.Rounds() }
func (w *wrapper) ResetCounter()  { w.inner.ResetCounter() }
func (w *wrapper) Softmax() bool  { return w.inner.Softmax() }

// postBatch applies f(outRow, inRow) to each row of inner's batch response.
// Ownership of the pooled response passes through to the caller on success;
// on error the (nil) result is released so every exit is visibly balanced.
func postBatch(inner Interface, x *tensor.Matrix, f func(y, x []float64)) (*tensor.Matrix, error) {
	out, err := inner.QueryBatch(x)
	if err != nil {
		tensor.PutMatrix(out)
		return nil, err
	}
	for i := 0; i < out.Rows; i++ {
		f(out.Row(i), x.Row(i))
	}
	return out, nil
}

// --- Quantized -------------------------------------------------------------

type quantized struct {
	wrapper
	step float64
}

// Quantized returns a view of inner whose outputs are rounded to a
// fixed-point grid with `bits` fractional bits (step 2^-bits) — the logits
// of an integer accelerator or a truncated API response. It models
// rounding, not saturation: the integer part is unbounded.
func Quantized(inner Interface, bits int) Interface {
	return &quantized{wrapper{inner}, math.Ldexp(1, -bits)}
}

// QuantizationStep returns the grid spacing of a `bits`-fractional-bit
// fixed-point representation — the worst-case rounding error is half this.
// Attack configurations declare it (core.Config.QuantStep) to widen their
// decision thresholds.
func QuantizationStep(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	return math.Ldexp(1, -bits)
}

func (q *quantized) round(y []float64) {
	for i, v := range y {
		y[i] = math.Round(v/q.step) * q.step
	}
}

func (q *quantized) Query(x []float64) ([]float64, error) {
	y, err := q.inner.Query(x)
	if err != nil {
		return nil, err
	}
	q.round(y)
	return y, nil
}

func (q *quantized) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	return postBatch(q.inner, x, func(y, _ []float64) { q.round(y) })
}

// --- Noisy -----------------------------------------------------------------

type noisy struct {
	wrapper
	sigma float64
	seed  uint64

	mu   sync.Mutex
	seen map[uint64]uint64 // input hash -> times queried so far
}

// Noisy returns a view of inner whose outputs carry additive Gaussian noise
// of the given standard deviation. The noise is seeded and input-addressed:
// the k-th query of a given point always receives the k-th noise draw for
// that point, independent of what else is queried concurrently, so runs are
// reproducible and repeat-query voting sees genuinely fresh samples.
func Noisy(inner Interface, sigma float64, seed int64) Interface {
	return &noisy{wrapper: wrapper{inner}, sigma: sigma, seed: uint64(seed), seen: make(map[uint64]uint64)}
}

// occurrence returns how many times this input hash has been queried before
// now, advancing the counter.
func (n *noisy) occurrence(h uint64) uint64 {
	n.mu.Lock()
	c := n.seen[h]
	n.seen[h] = c + 1
	n.mu.Unlock()
	return c
}

func (n *noisy) perturb(y []float64, x []float64) {
	h := hashFloats(n.seed, x)
	h = splitmix64(h ^ n.occurrence(h)*0x9e3779b97f4a7c15)
	for j := range y {
		y[j] += n.sigma * gauss(splitmix64(h^uint64(j+1)))
	}
}

func (n *noisy) Query(x []float64) ([]float64, error) {
	y, err := n.inner.Query(x)
	if err != nil {
		return nil, err
	}
	n.perturb(y, x)
	return y, nil
}

func (n *noisy) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	return postBatch(n.inner, x, n.perturb)
}

// --- LabelOnly -------------------------------------------------------------

type labelOnly struct {
	wrapper
}

// LabelOnly returns a view of inner that reveals only the predicted class:
// every response is the one-hot indicator of the argmax output. Shapes are
// preserved so callers need no special casing, but the algebraic attack's
// magnitude probes carry no signal — the expected outcome is a fallback to
// the learning attack, fitting against hard labels.
func LabelOnly(inner Interface) Interface { return &labelOnly{wrapper{inner}} }

func oneHot(y []float64) {
	j := tensor.ArgMax(y)
	for i := range y {
		y[i] = 0
	}
	y[j] = 1
}

func (l *labelOnly) Query(x []float64) ([]float64, error) {
	y, err := l.inner.Query(x)
	if err != nil {
		return nil, err
	}
	oneHot(y)
	return y, nil
}

func (l *labelOnly) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	return postBatch(l.inner, x, func(y, _ []float64) { oneHot(y) })
}

// --- Budgeted --------------------------------------------------------------

type budgeted struct {
	wrapper
	max  int64
	used atomic.Int64
}

// Budgeted returns a view of inner that refuses queries past a hard cap:
// once max queries have been consumed, every call returns
// ErrBudgetExhausted without touching the device. The budget is its own
// cumulative counter — ResetCounter (which zeroes the experiment's
// accounting) does not refill it. A batch either fits entirely within the
// remaining budget or is rejected whole.
func Budgeted(inner Interface, max int64) Interface {
	return &budgeted{wrapper: wrapper{inner}, max: max}
}

// take reserves n queries from the budget, reporting whether they fit.
func (b *budgeted) take(n int64) bool {
	if b.used.Add(n) > b.max {
		// Leave the counter past max: the budget is spent for good, and
		// concurrent callers racing the boundary all see exhaustion.
		return false
	}
	return true
}

func (b *budgeted) Query(x []float64) ([]float64, error) {
	if !b.take(1) {
		return nil, ErrBudgetExhausted
	}
	return b.inner.Query(x)
}

func (b *budgeted) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if !b.take(int64(x.Rows)) {
		return nil, ErrBudgetExhausted
	}
	return b.inner.QueryBatch(x)
}

// --- Flaky -----------------------------------------------------------------

type flaky struct {
	wrapper
	rate float64
	seed uint64

	mu   sync.Mutex
	seen map[uint64]uint64 // call hash -> times attempted so far

	dropped atomic.Int64 // round-trips consumed by dropped calls
}

// Flaky returns a view of inner that drops a seeded fraction of calls with
// ErrTransient before they reach the device (so dropped calls consume no
// queries and no budget — no inference ran). Dropped calls DO consume a
// round-trip: the request was sent and the channel's latency was paid, so
// Rounds reports inner's rounds plus the drops, and ResetCounter zeroes
// both.
//
// Like Noisy, drop decisions are input-addressed: the k-th attempt of a
// given call (a Query input, or a whole QueryBatch's rows) draws the k-th
// decision for that content, independent of what else is in flight — so the
// drop schedule survives goroutine scheduling and batch coalescing, and
// retrying the same input draws a fresh decision.
func Flaky(inner Interface, rate float64, seed int64) Interface {
	return &flaky{wrapper: wrapper{inner}, rate: rate, seed: uint64(seed), seen: make(map[uint64]uint64)}
}

// attempt returns how many times this call hash has been attempted before
// now, advancing the counter.
func (f *flaky) attempt(h uint64) uint64 {
	f.mu.Lock()
	c := f.seen[h]
	f.seen[h] = c + 1
	f.mu.Unlock()
	return c
}

// drop decides the fate of one call addressed by the hash of its contents;
// a dropped call still counts one round-trip.
func (f *flaky) drop(h uint64) bool {
	if unit(splitmix64(h^(f.attempt(h)+1)*0xbf58476d1ce4e5b9)) < f.rate {
		f.dropped.Add(1)
		return true
	}
	return false
}

func (f *flaky) Query(x []float64) ([]float64, error) {
	if f.drop(hashFloats(f.seed, x)) {
		return nil, ErrTransient
	}
	return f.inner.Query(x)
}

func (f *flaky) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if f.drop(hashMatrix(f.seed, x)) {
		return nil, ErrTransient
	}
	return f.inner.QueryBatch(x)
}

// Rounds includes the round-trips burned by dropped calls: a timeout costs
// wall-clock like any other round, so the latency metric must see it.
func (f *flaky) Rounds() int64 { return f.inner.Rounds() + f.dropped.Load() }

// ResetCounter zeroes this layer's dropped-round count along with the
// wrapped oracle's counters, so per-phase accounting never leaks drops
// across experiment cells.
func (f *flaky) ResetCounter() {
	f.dropped.Store(0)
	f.inner.ResetCounter()
}

// --- seeded hashing --------------------------------------------------------

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloats folds the bit patterns of a float vector into one mixed word.
func hashFloats(seed uint64, x []float64) uint64 {
	h := splitmix64(seed ^ 0x2545f4914f6cdd1d)
	for _, v := range x {
		h = splitmix64(h ^ math.Float64bits(v))
	}
	return h
}

// hashMatrix folds a whole batch — shape and every row — into one mixed
// word, so a batch-level decision (a Flaky drop, a transport loss) is
// addressed by the batch's contents rather than by call order.
func hashMatrix(seed uint64, x *tensor.Matrix) uint64 {
	h := splitmix64(seed ^ uint64(x.Rows)<<32 ^ uint64(x.Cols))
	for i := 0; i < x.Rows; i++ {
		h = splitmix64(h ^ hashFloats(h, x.Row(i)))
	}
	return h
}

// unit maps a mixed word to (0, 1), excluding the endpoints so log and
// Box–Muller stay finite.
func unit(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// gauss derives one standard normal sample from a mixed word (Box–Muller
// on two derived uniforms).
func gauss(h uint64) float64 {
	u1 := unit(splitmix64(h ^ 0xd1342543de82ef95))
	u2 := unit(splitmix64(h ^ 0xaf251af3b195259f))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
