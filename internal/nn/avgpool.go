package nn

import (
	"dnnlock/internal/tensor"
)

// AvgPool2D is a channel-wise average pool over CHW-flattened inputs (the
// subsampling layer of the original LeNet-5).
type AvgPool2D struct {
	C, InH, InW int
	K, Stride   int
	OutH, OutW  int
}

// NewAvgPool2D constructs a k×k average pool with the given stride.
func NewAvgPool2D(c, inH, inW, k, stride int) *AvgPool2D {
	return &AvgPool2D{
		C: c, InH: inH, InW: inW, K: k, Stride: stride,
		OutH: (inH-k)/stride + 1, OutW: (inW-k)/stride + 1,
	}
}

func (a *AvgPool2D) Name() string { return "avgpool2d" }

// InSize returns C·H·W.
func (a *AvgPool2D) InSize() int { return a.C * a.InH * a.InW }

// OutSize returns C·OH·OW.
func (a *AvgPool2D) OutSize() int { return a.C * a.OutH * a.OutW }

// Forward pools one example.
func (a *AvgPool2D) Forward(x []float64, _ *Trace) []float64 {
	checkSize("avgpool2d", a.InSize(), len(x))
	y := make([]float64, a.OutSize())
	inv := 1 / float64(a.K*a.K)
	for c := 0; c < a.C; c++ {
		inBase := c * a.InH * a.InW
		outBase := c * a.OutH * a.OutW
		for oy := 0; oy < a.OutH; oy++ {
			for ox := 0; ox < a.OutW; ox++ {
				s := 0.0
				for ky := 0; ky < a.K; ky++ {
					iy := oy*a.Stride + ky
					for kx := 0; kx < a.K; kx++ {
						s += x[inBase+iy*a.InW+ox*a.Stride+kx]
					}
				}
				y[outBase+oy*a.OutW+ox] = s * inv
			}
		}
	}
	return y
}

// ForwardBatch pools each row.
func (a *AvgPool2D) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(a, x)
}

// TrainForward is ForwardBatch (linear map; no cache needed).
func (a *AvgPool2D) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	return a.ForwardBatch(x)
}

// Backward spreads each output gradient evenly over its window.
func (a *AvgPool2D) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.GetMatrixZero(dy.Rows, a.InSize())
	inv := 1 / float64(a.K*a.K)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for c := 0; c < a.C; c++ {
			inBase := c * a.InH * a.InW
			outBase := c * a.OutH * a.OutW
			for oy := 0; oy < a.OutH; oy++ {
				for ox := 0; ox < a.OutW; ox++ {
					g := dyr[outBase+oy*a.OutW+ox] * inv
					for ky := 0; ky < a.K; ky++ {
						iy := oy*a.Stride + ky
						for kx := 0; kx < a.K; kx++ {
							dxr[inBase+iy*a.InW+ox*a.Stride+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// JVP averages tangent rows window-wise (the map is linear).
func (a *AvgPool2D) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := a.Forward(x, nil)
	jy := tensor.New(a.OutSize(), j.Cols)
	inv := 1 / float64(a.K*a.K)
	for c := 0; c < a.C; c++ {
		inBase := c * a.InH * a.InW
		outBase := c * a.OutH * a.OutW
		for oy := 0; oy < a.OutH; oy++ {
			for ox := 0; ox < a.OutW; ox++ {
				dst := jy.Row(outBase + oy*a.OutW + ox)
				for ky := 0; ky < a.K; ky++ {
					iy := oy*a.Stride + ky
					for kx := 0; kx < a.K; kx++ {
						src := j.Row(inBase + iy*a.InW + ox*a.Stride + kx)
						for t := range dst {
							dst[t] += src[t] * inv
						}
					}
				}
			}
		}
	}
	return y, jy
}

// Params returns nil.
func (a *AvgPool2D) Params() []*Param { return nil }
