package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLife enforces goroutine lifecycle hygiene at the repo's sanctioned `go`
// sites (the ones nakedgo exempts): every spawned goroutine must have a
// provable termination edge, so an attack run cannot strand workers that
// outlive their phase and skew the wall-clock and query accounting the
// harness reports. The witnesses accepted, in order of strength:
//
//   - a loop-free body (it runs to its return; WaitGroup-signalled workers
//     fall out of this case, since the Done is just a deferred call),
//   - condition- or range-bounded loops over non-channel operands,
//   - a range over a channel that some function in the same package
//     close()s (the pool drains and the range ends),
//   - an unconditional `for` whose body can exit (return/break/goto) and
//     blocks on a terminating receive: a comma-ok or plain receive from a
//     package-closed channel, or from a Done() call (context-style).
//
// Anything else — a range over a never-closed channel, an infinite loop
// with no closing signal — is reported. A deliberate process-lifetime
// worker pool is the one legitimate exception, and must say so with a
// //lint:ignore golife directive. Test files are skipped: test goroutines
// die with the process.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "spawned goroutines must have a provable termination edge",
	Run:  runGoLife,
}

func runGoLife(p *Pass) {
	closed := p.closedChannelObjs()
	decls := p.funcDeclBodies()
	for _, f := range p.Unit.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := p.goBody(g, decls)
			if body == nil {
				p.Report(g.Pos(), "goroutine calls a function outside this package: termination cannot be proven here")
				return true
			}
			p.checkGoroutineBody(g, body, closed)
			return true
		})
	}
}

// goBody resolves the spawned function's body: a literal directly, a named
// function or method through its declaration in the same package.
func (p *Pass) goBody(g *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := p.Unit.Info.Uses[fun]; obj != nil {
			return decls[obj]
		}
	case *ast.SelectorExpr:
		if obj := p.Unit.Info.Uses[fun.Sel]; obj != nil {
			return decls[obj]
		}
	}
	return nil
}

// checkGoroutineBody scans the loops directly in the goroutine's body (a
// nested closure is its own goroutine site if spawned) for missing
// termination witnesses.
func (p *Pass) checkGoroutineBody(g *ast.GoStmt, body *ast.BlockStmt, closed map[types.Object]bool) {
	walkRegion(body, func(n ast.Node) {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			t := p.exprType(loop.X)
			if t == nil {
				return
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return // slice/map/int range: bounded
			}
			obj := p.chanOperandObj(loop.X)
			if obj == nil || !closed[obj] {
				p.Report(g.Pos(), "goroutine ranges over channel %s that no function in this package closes: no provable termination",
					exprString(loop.X))
			}
		case *ast.ForStmt:
			if loop.Cond != nil {
				return // condition-bounded
			}
			if !p.loopCanTerminate(loop, closed) {
				p.Report(g.Pos(), "goroutine loops forever with no exit on a closed-channel or Done() receive: no provable termination")
			}
		}
	})
}

// loopCanTerminate reports whether an unconditional for-loop has both an
// exit statement and a blocking receive that a closer can release: a
// receive (plain or comma-ok) from a package-closed channel or from a
// Done() call.
func (p *Pass) loopCanTerminate(loop *ast.ForStmt, closed map[types.Object]bool) bool {
	hasExit, hasSignal := false, false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			hasExit = true // break or goto out of the loop
		case *ast.UnaryExpr:
			if v.Op != token.ARROW {
				return true
			}
			if call, ok := astUnparen(v.X).(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					hasSignal = true // ctx.Done()-style
				}
				return true
			}
			if obj := p.chanOperandObj(v.X); obj != nil && closed[obj] {
				hasSignal = true
			}
		}
		return !(hasExit && hasSignal)
	})
	return hasExit && hasSignal
}

// closedChannelObjs indexes every object passed to the close builtin
// anywhere in this package: channel-typed variables, struct fields, and
// slice elements (indexed closes resolve to the slice variable).
func (p *Pass) closedChannelObjs() map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" {
				return true
			}
			if _, isBuiltin := p.Unit.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if obj := p.chanOperandObj(call.Args[0]); obj != nil {
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// chanOperandObj resolves a channel expression to the variable or field
// object anchoring it, unwrapping parens and indexing: ch, c.reqs,
// done[i] all resolve (the last to the slice variable).
func (p *Pass) chanOperandObj(e ast.Expr) types.Object {
	switch v := astUnparen(e).(type) {
	case *ast.Ident:
		if obj := p.Unit.Info.Uses[v]; obj != nil {
			return obj
		}
		return p.Unit.Info.Defs[v]
	case *ast.SelectorExpr:
		return p.Unit.Info.Uses[v.Sel]
	case *ast.IndexExpr:
		return p.chanOperandObj(v.X)
	}
	return nil
}

// funcDeclBodies maps each function/method object declared in the unit to
// its body.
func (p *Pass) funcDeclBodies() map[types.Object]*ast.BlockStmt {
	out := map[types.Object]*ast.BlockStmt{}
	for _, f := range p.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Unit.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd.Body
			}
		}
	}
	return out
}

func (p *Pass) exprType(e ast.Expr) types.Type {
	tv, ok := p.Unit.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
