// Package geom is the floatcmp golden fixture.
package geom

func equalFloats(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notEqualFloats(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func zeroCheck(a float64) bool {
	return a == 0 // want "floating-point == comparison"
}

func float32Compare(a float32) bool {
	return 1.5 != a // want "floating-point != comparison"
}

func complexCompare(a, b complex128) bool {
	return a == b // want "floating-point == comparison"
}

func suppressedSentinel(a float64) bool {
	//lint:ignore floatcmp zero value means "unset" and is exactly representable
	return a == 0
}

func intCompareClean(a, b int) bool {
	return a == b
}

func orderedCompareClean(a, b float64) bool {
	return a < b || a > b
}

func constCompareClean() bool {
	const x = 1.5
	const y = 3.0
	return x == y/2
}

func stringCompareClean(a, b string) bool {
	return a == b
}
