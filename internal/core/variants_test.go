package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// runVariantAttack locks net with the given scheme and checks exact key
// recovery through RunVariant.
func runVariantAttack(t *testing.T, scheme hpnn.Scheme, alpha float64, keyBits int, seed int64) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: alpha, KeyBits: keyBits, Rng: rng})
	orc := oracle.New(lm, key)
	cfg := DefaultConfig()
	cfg.Seed = seed
	res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
	if err != nil {
		t.Fatalf("%v attack failed: %v", scheme, err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("%v fidelity %.3f: got %v want %v", scheme, fid, res.Key, key)
	}
	return res
}

func TestVariantScaling(t *testing.T) {
	runVariantAttack(t, hpnn.Scaling, 0.5, 6, 201)
}

func TestVariantScalingAmplifying(t *testing.T) {
	runVariantAttack(t, hpnn.Scaling, 2.0, 4, 202)
}

// TestVariantScalingCrowdedSite is the regression test for the fan-out-cone
// witness bug: with 8 key bits on a tiny MLP, several protected neurons
// share one flip site, and a hypothesis witness chosen where ANOTHER
// undecided neuron of the site is active misplaces the predicted downstream
// hyperplane on both clones — the kink test then sees no kink for either
// hypothesis, most bits degrade to ⊥, and the defaulted site fails
// validation beyond error correction's Hamming budget (this exact
// configuration is the examples/variants scaling run, which used to abort
// with "variant site 0 failed validation"). activeDistinguishableCritical
// now requires every other undecided same-site neuron to be ReLU-muted at
// the witness.
func TestVariantScalingCrowdedSite(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Scaling, Alpha: 0.5, KeyBits: 8, Rng: rng})
	cfg := DefaultConfig()
	cfg.Seed = 2
	res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
	if err != nil {
		t.Fatalf("scaling attack failed: %v", err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("fidelity %.3f: got %v want %v", fid, res.Key, key)
	}
}

// TestVariantScalingSeedSweep runs the crowded-site configuration across
// several lock/attack seeds so the witness restriction is exercised on many
// activation patterns, not one lucky draw.
func TestVariantScalingSeedSweep(t *testing.T) {
	for seed := int64(300); seed < 305; seed++ {
		runVariantAttack(t, hpnn.Scaling, 0.5, 8, seed)
	}
}

func TestVariantBiasShift(t *testing.T) {
	runVariantAttack(t, hpnn.BiasShift, 0.8, 6, 203)
}

func TestVariantBiasShiftNegative(t *testing.T) {
	runVariantAttack(t, hpnn.BiasShift, -0.6, 4, 204)
}

func TestVariantWeightPerturb(t *testing.T) {
	runVariantAttack(t, hpnn.WeightPerturb, 1.2, 4, 205)
}

func TestVariantDispatch(t *testing.T) {
	// RunVariant on a Negation spec routes to the standard attack and
	// vice versa.
	rng := rand.New(rand.NewSource(206))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	orc := oracle.New(lm, key)
	res, err := RunVariant(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatal("dispatch to negation attack failed")
	}
}

func TestApplierRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for _, scheme := range []hpnn.Scheme{hpnn.Negation, hpnn.Scaling, hpnn.BiasShift, hpnn.WeightPerturb} {
		net := models.TinyMLP(rng)
		alpha := 0.0
		if scheme != hpnn.Negation {
			alpha = 0.7
		}
		lm, _ := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: alpha, KeyBits: 5, Rng: rng})
		white := lm.WhiteBox()
		ap := applierFor(white, lm.Spec)
		work := ap.clone(white)
		for i, pn := range lm.Spec.Neurons {
			bit := i%2 == 1
			ap.apply(work, pn, i, bit)
			if got := ap.read(work, pn, i); got != bit {
				t.Fatalf("%v: read-after-apply mismatch at bit %d", scheme, i)
			}
		}
		// Clearing all bits restores the white-box function.
		for i, pn := range lm.Spec.Neurons {
			ap.apply(work, pn, i, false)
		}
		x := make([]float64, white.InSize())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		yw := white.Forward(x)
		yc := work.Forward(x)
		for i := range yw {
			if yw[i] != yc[i] {
				t.Fatalf("%v: cleared clone differs from white box", scheme)
			}
		}
	}
}

func TestApplierCloneIsolation(t *testing.T) {
	// Applying bits to a clone must never leak into the source network,
	// for every scheme (the weight-perturb applier mutates Dense weights).
	rng := rand.New(rand.NewSource(208))
	for _, scheme := range []hpnn.Scheme{hpnn.Negation, hpnn.Scaling, hpnn.BiasShift, hpnn.WeightPerturb} {
		net := models.TinyMLP(rng)
		alpha := 0.0
		if scheme != hpnn.Negation {
			alpha = 0.9
		}
		lm, _ := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: alpha, KeyBits: 4, Rng: rng})
		white := lm.WhiteBox()
		ap := applierFor(white, lm.Spec)
		x := make([]float64, white.InSize())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		before := white.Forward(x)
		clone := ap.clone(white)
		for i, pn := range lm.Spec.Neurons {
			ap.apply(clone, pn, i, true)
		}
		after := white.Forward(x)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%v: clone mutation leaked into source", scheme)
			}
		}
	}
}

func TestGatingReLULookup(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	// MLP: every flip is gated.
	mlp := models.TinyMLP(rng)
	lmM, keyM := hpnn.Lock(mlp, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 2, Rng: rng})
	aM := New(lmM.WhiteBox(), lmM.Spec, oracle.New(lmM, keyM), DefaultConfig())
	if aM.gatingReLU(0) < 0 || aM.gatingReLU(1) < 0 {
		t.Fatal("MLP flips should be gated")
	}
	// ResNet: the block's second flip is not directly gated (the ReLU sits
	// after the residual add).
	res := models.TinyResNet(rng)
	lmR, keyR := hpnn.Lock(res, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 3, Rng: rng})
	aR := New(lmR.WhiteBox(), lmR.Spec, oracle.New(lmR, keyR), DefaultConfig())
	if aR.gatingReLU(0) < 0 {
		t.Fatal("stem flip should be gated")
	}
	if aR.gatingReLU(2) >= 0 {
		t.Fatal("post-conv2 flip should not be directly gated")
	}
}
