package nn

import "dnnlock/internal/tensor"

// vecForward is implemented by layers whose single-example forward can
// write into a caller-supplied buffer. Implementations must overwrite
// every element of out — pooled buffers carry arbitrary contents — and
// must perform exactly the arithmetic of Forward(x, nil), so the pooled
// chain below stays bit-identical to the allocating one. Layers that
// record into traces or return their input unchanged simply don't
// implement the interface and fall back to Forward.
type vecForward interface {
	forwardVecInto(out, x []float64)
}

func (c *Conv2D) forwardVecInto(out, x []float64) { c.forwardInto(x, out, true) }

func (m *MaxPool2D) forwardVecInto(out, x []float64) { m.forwardArgInto(x, out, nil) }

func (f *Flip) forwardVecInto(out, x []float64) { f.forwardRowInto(out, x) }

func (r *ReLU) forwardVecInto(out, x []float64) {
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

func (d *Dense) forwardVecInto(out, x []float64) {
	tensor.MatVecInto(out, d.W.W, x)
	brow := d.B.W.Row(0)
	for i := range out {
		out[i] += brow[i]
	}
}

func (g *GlobalAvgPool) forwardVecInto(out, x []float64) {
	plane := g.H * g.W
	for c := 0; c < g.C; c++ {
		s := 0.0
		for i := c * plane; i < (c+1)*plane; i++ {
			s += x[i]
		}
		out[c] = s / float64(plane)
	}
}

func (a *AvgPool2D) forwardVecInto(out, x []float64) {
	inv := 1 / float64(a.K*a.K)
	for c := 0; c < a.C; c++ {
		inBase := c * a.InH * a.InW
		outBase := c * a.OutH * a.OutW
		for oy := 0; oy < a.OutH; oy++ {
			for ox := 0; ox < a.OutW; ox++ {
				s := 0.0
				for ky := 0; ky < a.K; ky++ {
					iy := oy*a.Stride + ky
					for kx := 0; kx < a.K; kx++ {
						s += x[inBase+iy*a.InW+ox*a.Stride+kx]
					}
				}
				out[outBase+oy*a.OutW+ox] = s * inv
			}
		}
	}
}

func (m *MeanTokens) forwardVecInto(out, x []float64) {
	for d := range out {
		out[d] = 0
	}
	for t := 0; t < m.T; t++ {
		for d := 0; d < m.D; d++ {
			out[d] += x[t*m.D+d]
		}
	}
	inv := 1 / float64(m.T)
	for d := range out {
		out[d] *= inv
	}
}

func (r *Residual) forwardVecInto(out, x []float64) {
	b, bp := forwardVecChain(r.Body, x)
	s, sp := forwardVecChain(r.Shortcut, x)
	for i := range out {
		out[i] = b[i] + s[i]
	}
	if bp {
		tensor.PutVec(b)
	}
	if sp {
		tensor.PutVec(s)
	}
}

// traceVecForward is the trace-recording counterpart of vecForward,
// implemented by the layers whose Forward consults the trace (Flip, ReLU,
// Residual). The recorded values must be clones, exactly as Forward
// records them — the out buffer is pooled and will be recycled.
type traceVecForward interface {
	forwardVecIntoTrace(out, x []float64, tr *Trace)
}

func (r *ReLU) forwardVecIntoTrace(out, x []float64, tr *Trace) {
	pat := make([]bool, r.N)
	for i, v := range x {
		if v > 0 {
			out[i] = v
			pat[i] = true
		} else {
			out[i] = 0
		}
	}
	tr.Patterns[r.SiteID] = pat
	tr.ReluIn[r.SiteID] = append([]float64(nil), x...)
}

func (f *Flip) forwardVecIntoTrace(out, x []float64, tr *Trace) {
	f.forwardRowInto(out, x)
	tr.Pre[f.SiteID] = tensor.VecClone(x)
	tr.Post[f.SiteID] = tensor.VecClone(out)
}

func (r *Residual) forwardVecIntoTrace(out, x []float64, tr *Trace) {
	b, bp := forwardVecChainTr(r.Body, x, tr)
	s, sp := forwardVecChainTr(r.Shortcut, x, tr)
	for i := range out {
		out[i] = b[i] + s[i]
	}
	if bp {
		tensor.PutVec(b)
	}
	if sp {
		tensor.PutVec(s)
	}
}

// forwardVecChain runs layers over x, staging intermediates in pooled
// vectors wherever a layer supports it. The result is either a pooled
// buffer (pooled == true, caller releases with PutVec), a fresh heap
// slice from a fallback layer, or x itself when every layer was an
// identity (Flatten).
func forwardVecChain(layers []Layer, x []float64) (res []float64, pooled bool) {
	return forwardVecChainTr(layers, x, nil)
}

// forwardVecChainTr is forwardVecChain with optional trace recording:
// trace-consulting layers dispatch through traceVecForward when tr is
// non-nil, trace-blind layers always take their plain Into path, and
// anything else falls back to the allocating Forward.
func forwardVecChainTr(layers []Layer, x []float64, tr *Trace) (res []float64, pooled bool) {
	cur := x
	for _, l := range layers {
		if next, np, ok := forwardVecLayer(l, cur, tr); ok {
			if pooled {
				tensor.PutVec(cur)
			}
			cur, pooled = next, np
			continue
		}
		next := l.Forward(cur, tr)
		if sameVec(next, cur) {
			continue
		}
		if pooled {
			tensor.PutVec(cur)
		}
		cur, pooled = next, false
	}
	return cur, pooled
}

// forwardVecLayer runs one layer through its pooled Into path if it has
// one appropriate for the trace mode; ok is false when the caller must
// fall back to Forward.
func forwardVecLayer(l Layer, x []float64, tr *Trace) (out []float64, pooled, ok bool) {
	if tr != nil {
		if tv, hit := l.(traceVecForward); hit {
			out = tensor.GetVec(l.OutSize())
			tv.forwardVecIntoTrace(out, x, tr)
			return out, true, true
		}
	}
	// Reaching here under tracing means the layer is trace-blind (every
	// trace-consulting layer implements traceVecForward), so its plain
	// Into path is exact.
	if fi, hit := l.(vecForward); hit {
		out = tensor.GetVec(l.OutSize())
		fi.forwardVecInto(out, x)
		return out, true, true
	}
	return nil, false, false
}

// sameVec reports whether two slices share a backing array start — the
// identity-layer case (Flatten returns its input untouched).
func sameVec(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// PostAt returns the post-flip value of element idx at flip site `site` —
// the scalar the §3.5 critical-point bisection reads. It runs the same
// pooled kernels as the trace path (values are bit-identical) but records
// nothing and stops as soon as the flip has run, so a probe costs the
// prefix forward plus one flip row instead of a trace allocation per call.
func (n *Network) PostAt(x []float64, site, idx int) float64 {
	if v, ok := probeChain(n.Layers, x, site, -1, idx); ok {
		return v
	}
	// Site not visible to the walker (shouldn't happen for registered
	// sites); the recording path is always correct.
	return n.ForwardTraceTo(x, site).Post[site][idx]
}

// ReluInAt returns the input of element idx at ReLU site `reluSite`, the
// scalar bisected by the validation's hyperplane probes. Same contract as
// PostAt.
func (n *Network) ReluInAt(x []float64, reluSite, idx int) float64 {
	if v, ok := probeChain(n.Layers, x, -1, reluSite, idx); ok {
		return v
	}
	return n.ForwardTraceToReLU(x, reluSite).ReluIn[reluSite][idx]
}

// probeChain walks the layer chain over pooled buffers until the probed
// site is reached: the output of flip site flipSite, or the input of ReLU
// site reluSite (-1 disables either). Residuals are entered only when they
// actually contain the site, so no path is ever evaluated twice.
func probeChain(layers []Layer, x []float64, flipSite, reluSite, idx int) (float64, bool) {
	cur, pooled := x, false
	release := func() {
		if pooled {
			tensor.PutVec(cur)
		}
	}
	for _, l := range layers {
		switch v := l.(type) {
		case *Flip:
			if v.SiteID == flipSite {
				out := tensor.GetVec(v.N)
				v.forwardRowInto(out, cur)
				val := out[idx]
				tensor.PutVec(out)
				release()
				return val, true
			}
		case *ReLU:
			if v.SiteID == reluSite {
				val := cur[idx]
				release()
				return val, true
			}
		case *Residual:
			if containsProbeSite(v.subLayers(), flipSite, reluSite) {
				val, ok := probeChain(v.Body, cur, flipSite, reluSite, idx)
				if !ok {
					val, ok = probeChain(v.Shortcut, cur, flipSite, reluSite, idx)
				}
				release()
				return val, ok
			}
		}
		if next, np, ok := forwardVecLayer(l, cur, nil); ok {
			release()
			cur, pooled = next, np
			continue
		}
		next := l.Forward(cur, nil)
		if sameVec(next, cur) {
			continue
		}
		release()
		cur, pooled = next, false
	}
	release()
	return 0, false
}

// containsProbeSite reports whether the layer set (recursively) holds the
// flip or ReLU site a probe is after.
func containsProbeSite(layers []Layer, flipSite, reluSite int) bool {
	for _, l := range layers {
		switch v := l.(type) {
		case *Flip:
			if v.SiteID == flipSite {
				return true
			}
		case *ReLU:
			if v.SiteID == reluSite {
				return true
			}
		case container:
			if containsProbeSite(v.subLayers(), flipSite, reluSite) {
				return true
			}
		}
	}
	return false
}
