package tensor

import "math"

// QR holds a Householder QR factorization A = Q·R for an m×n matrix with
// m >= n. Q is m×m orthogonal (stored implicitly as reflectors), R is m×n
// upper triangular.
type QR struct {
	qr    *Matrix   // reflectors below diagonal, R on/above
	rdiag []float64 // diagonal of R
	m, n  int
}

// QRDecompose computes the Householder QR factorization of a (m >= n required).
func QRDecompose(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("tensor: QRDecompose requires rows >= cols; factor the transpose instead")
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below row k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}
}

// FullRank reports whether R has no zero (tiny) diagonal entries.
func (f *QR) FullRank() bool {
	for _, d := range f.rdiag {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂ for the
// overdetermined (or square) system. It returns ErrSingular if A is rank
// deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("tensor: QR.Solve length mismatch")
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := VecClone(b)
	// y = Qᵀ·b via the stored reflectors.
	for k := 0; k < f.n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// Q materializes the thin m×n orthonormal factor.
func (f *QR) Q() *Matrix {
	q := New(f.m, f.n)
	for j := 0; j < f.n; j++ {
		col := Basis(f.m, j)
		// col = Q·e_j: apply reflectors in reverse order.
		for k := f.n - 1; k >= 0; k-- {
			if f.qr.At(k, k) == 0 {
				continue
			}
			s := 0.0
			for i := k; i < f.m; i++ {
				s += f.qr.At(i, k) * col[i]
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < f.m; i++ {
				col[i] += s * f.qr.At(i, k)
			}
		}
		q.SetCol(j, col)
	}
	return q
}

// R materializes the thin n×n upper-triangular factor.
func (f *QR) R() *Matrix {
	r := New(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}
