package service

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/harness"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
)

// Kind names the attack a job runs. The field exists on the wire from day
// one so future oracle-less job types (GNNUnlock- or LIPSTICK-style
// structural attacks, ROADMAP item 4) slot in without an API break.
type Kind string

// Supported job kinds.
const (
	// KindDecrypt is the paper's DNN decryption attack (Algorithm 2) —
	// checkpointable, suspendable, resumable.
	KindDecrypt Kind = "decrypt"
	// KindMonolithic is the §4.3 monolithic learning baseline. It has no
	// site boundaries, so it cannot checkpoint; suspend is rejected, and a
	// drain early-stops the fit (the result reports stopped_early).
	KindMonolithic Kind = "monolithic"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → completed | failed | suspended | cancelled
//	suspended → queued (POST /jobs/{id}/resume)
//	queued | running → cancelled (DELETE /jobs/{id})
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSuspended State = "suspended"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// stop-request reasons, checked by the runner at job pickup and at every
// checkpoint boundary.
const (
	stopNone int32 = iota
	stopSuspend
	stopCancel
)

// OracleSpec selects the oracle channel a job attacks over.
type OracleSpec struct {
	// Channel is "direct" (clean in-process oracle, the default), "faulty"
	// (the DESIGN.md §11 fault decorators), or "farm" (a simulated device
	// fleet behind a priced network channel, DESIGN.md §16).
	Channel string `json:"channel,omitempty"`

	// Faulty-channel knobs.
	Sigma     float64 `json:"sigma,omitempty"`      // Gaussian response noise stddev
	QuantBits int     `json:"quant_bits,omitempty"` // output quantization bits
	Budget    int64   `json:"budget,omitempty"`     // max total queries (0 = unlimited)
	Loss      float64 `json:"loss,omitempty"`       // per-round drop probability

	// Farm-channel knobs.
	Mix           string  `json:"mix,omitempty"`            // fleet mix name (farm.Mixes)
	Devices       int     `json:"devices,omitempty"`        // fleet size
	RTTMS         float64 `json:"rtt_ms,omitempty"`         // base round-trip time
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"` // link rate (0 = unconstrained)
}

// JobSpec is the submit-time description of an attack job (POST /jobs).
type JobSpec struct {
	Kind    Kind       `json:"kind"`
	Model   string     `json:"model"`
	KeyBits int        `json:"key_bits"`
	Scale   string     `json:"scale,omitempty"` // harness preset: tiny (default), quick, paper
	Seed    int64      `json:"seed,omitempty"`  // overrides the scale seed (0 = preset default)
	Oracle  OracleSpec `json:"oracle"`
}

// normalize fills defaults and rejects specs the daemon cannot run, before
// any queue slot is consumed.
func (s *JobSpec) normalize() error {
	if s.Kind == "" {
		s.Kind = KindDecrypt
	}
	if s.Kind != KindDecrypt && s.Kind != KindMonolithic {
		return fmt.Errorf("unknown kind %q (decrypt, monolithic)", s.Kind)
	}
	if s.Model == "" {
		return fmt.Errorf("model is required (mlp, lenet, resnet, vtransformer)")
	}
	if s.KeyBits <= 0 {
		return fmt.Errorf("key_bits must be positive, got %d", s.KeyBits)
	}
	if s.Scale == "" {
		s.Scale = "tiny"
	}
	if _, err := harness.ScaleByName(s.Scale); err != nil {
		return err
	}
	switch s.Oracle.Channel {
	case "":
		s.Oracle.Channel = "direct"
	case "direct", "faulty":
	case "farm":
		if s.Oracle.Mix == "" {
			s.Oracle.Mix = "clean"
		}
		if s.Oracle.Devices == 0 {
			s.Oracle.Devices = 64
		}
		if s.Oracle.RTTMS <= 0 {
			s.Oracle.RTTMS = 5
		}
	default:
		return fmt.Errorf("unknown oracle channel %q (direct, faulty, farm)", s.Oracle.Channel)
	}
	return nil
}

// scale resolves the job's harness preset with its seed override applied.
func (s JobSpec) scale() (harness.Scale, error) {
	sc, err := harness.ScaleByName(s.Scale)
	if err != nil {
		return sc, err
	}
	if s.Seed != 0 {
		sc.Seed = s.Seed
	}
	return sc, nil
}

// Progress is the live view of a running decrypt job, refreshed at every
// checkpoint boundary.
type Progress struct {
	SitesDone   int   `json:"sites_done"`
	SitesTotal  int   `json:"sites_total"`
	Queries     int64 `json:"queries"`
	Rounds      int64 `json:"rounds"`
	Degraded    int64 `json:"degraded"`
	Checkpoints int   `json:"checkpoints"` // boundaries crossed (all attempts)
}

// JobResult is the outcome of a finished job. The secret key never leaves
// the daemon; recovered keys are reported through fidelity and accuracy.
type JobResult struct {
	Fidelity     float64 `json:"fidelity"`
	Accuracy     float64 `json:"accuracy"`
	Queries      int64   `json:"queries"`
	Rounds       int64   `json:"rounds"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimSeconds   float64 `json:"sim_seconds,omitempty"` // farm channels only
	Equivalent   bool    `json:"equivalent"`
	Degraded     int     `json:"degraded,omitempty"`
	StoppedEarly bool    `json:"stopped_early,omitempty"` // monolithic jobs drained mid-fit
}

// Job is one attack job and its full lifecycle state. Mutable fields are
// guarded by mu; the stop flag is atomic because the attack goroutine polls
// it from checkpoint callbacks while handlers set it.
type Job struct {
	mu sync.Mutex

	id        string
	spec      JobSpec
	state     State
	shard     int
	attempt   int
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  Progress
	ckpt      []byte // latest serialized checkpoint
	result    *JobResult
	errMsg    string

	stop atomic.Int32

	// In-process resume state, never persisted: the prepared cell (so a
	// resume does not retrain) and the live oracle instance (so faulty
	// channels keep their fault-stream position across suspend/resume —
	// the Checkpoint resumability invariant). Lost on daemon restart, in
	// which case the runner re-derives both from the spec.
	cell *harness.Cell
	orc  oracle.Interface

	// Per-job trace: a dedicated tracer draining JSONL into buf, served by
	// GET /jobs/{id}/trace. Each run segment (attempt) is its own root
	// span, so a suspended job's trace ends cleanly and the resume appends
	// a new segment.
	tracer *obs.Tracer
	buf    *lockedBuffer
}

// lockedBuffer is an io.Writer safe for the tracer goroutines to append to
// while HTTP handlers snapshot it.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) snapshot() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// JobView is the JSON representation of a job served by the API.
type JobView struct {
	ID         string     `json:"id"`
	Kind       Kind       `json:"kind"`
	State      State      `json:"state"`
	Spec       JobSpec    `json:"spec"`
	Shard      int        `json:"shard"`
	Attempt    int        `json:"attempt"`
	Submitted  time.Time  `json:"submitted_at"`
	Started    *time.Time `json:"started_at,omitempty"`
	Finished   *time.Time `json:"finished_at,omitempty"`
	Progress   Progress   `json:"progress"`
	Checkpoint bool       `json:"has_checkpoint"`
	Result     *JobResult `json:"result,omitempty"`
	Error      string     `json:"error,omitempty"`
}

// view snapshots the job under its lock.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Kind:       j.spec.Kind,
		State:      j.state,
		Spec:       j.spec,
		Shard:      j.shard,
		Attempt:    j.attempt,
		Submitted:  j.submitted,
		Progress:   j.progress,
		Checkpoint: len(j.ckpt) > 0,
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	return v
}

// currentState reads the state under the lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setState transitions the job, stamping started/finished times.
func (j *Job) setState(st State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = st
	switch st {
	case StateRunning:
		if j.started.IsZero() {
			j.started = time.Now()
		}
	case StateCompleted, StateFailed, StateCancelled:
		j.finished = time.Now()
	}
}

// fail marks the job failed with a message.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.errMsg = err.Error()
	j.mu.Unlock()
	j.setState(StateFailed)
}

// storeCheckpoint records the latest checkpoint bytes and progress.
func (j *Job) storeCheckpoint(raw []byte, p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ckpt = raw
	p.Checkpoints = j.progress.Checkpoints + 1
	j.progress = p
}

// checkpointBytes returns the latest checkpoint (nil if none).
func (j *Job) checkpointBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpt
}
