// Package dataset stubs the pooled UniformInputs surface for the poolpair
// golden tests.
package dataset

import "dnnlock/internal/tensor"

// UniformInputs mirrors the real dataset helper: pool-recycled result, the
// caller releases it.
func UniformInputs(n, dim int, lim float64) *tensor.Matrix {
	x := tensor.GetMatrix(n, dim)
	return x
}
