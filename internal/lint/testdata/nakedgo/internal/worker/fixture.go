// Package worker is the nakedgo golden fixture for unsanctioned packages.
package worker

import "sync"

func rogue(fn func()) {
	go fn() // want "raw go statement outside the sanctioned worker-pool sites"
}

func rogueClosure(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "raw go statement outside the sanctioned worker-pool sites"
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func sanctionedByAnnotation(fn func()) {
	done := make(chan struct{})
	//lint:ignore nakedgo fixture: deliberate fan-out, sized by the caller
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
