package tensor_test

import (
	"fmt"

	"dnnlock/internal/tensor"
)

// ExampleLeastSquares shows the pre-image computation at the heart of
// Algorithm 1: solving Â·v = e_j with a minimum-norm solution on a wide
// (contractive) system.
func ExampleLeastSquares() {
	aHat := tensor.FromSlice(2, 3, []float64{
		1, 0, 1,
		0, 2, 0,
	})
	res := tensor.LeastSquares(aHat, tensor.Basis(2, 1))
	fmt.Println("pre-image exists:", res.RelRes < 1e-9)
	fmt.Printf("v: [%.2f %.2f %.2f]\n", res.X[0], res.X[1], res.X[2])
	// Output:
	// pre-image exists: true
	// v: [0.00 0.50 0.00]
}

// ExampleMatrix_MaskRows applies the activation-pattern masking of the
// paper's Formula 3.
func ExampleMatrix_MaskRows() {
	w := tensor.FromSlice(3, 2, []float64{
		1, 2,
		3, 4,
		5, 6,
	})
	w.MaskRows([]bool{true, false, true})
	fmt.Println(w.Row(0), w.Row(1), w.Row(2))
	// Output:
	// [1 2] [0 0] [5 6]
}
