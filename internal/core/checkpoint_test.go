package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// checkpointFixture builds a multi-site locked MLP and the attack inputs.
// freshWhite returns an independent white-box clone so resumed runs start
// from the adversary's pristine download, exactly as dnnlockd would after a
// restart.
func checkpointFixture(t *testing.T, bits int) (fresh func() (*nn.Network, hpnn.LockSpec, *oracle.Oracle), key hpnn.Key) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	net := models.TinyMLP(rng)
	lm, k := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: bits, Rng: rng})
	if len(lm.Spec.SiteBits()) < 2 {
		t.Fatalf("fixture has %d sites, need >= 2 for boundary coverage", len(lm.Spec.SiteBits()))
	}
	return func() (*nn.Network, hpnn.LockSpec, *oracle.Oracle) {
		return lm.WhiteBox(), lm.Spec, oracle.New(lm, k)
	}, k
}

// TestCheckpointResumeBitIdentity is the property test pinning the daemon's
// suspend/resume contract: a run checkpointed at EVERY site boundary,
// serialized through the JSON wire format, and resumed against a fresh
// white box and a fresh clean oracle must be bit-identical — same key, same
// dec_queries, same rounds, same per-site reports — to the uninterrupted
// run.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	fresh, key := checkpointFixture(t, 10)

	// Reference: uninterrupted run (no hook at all).
	white, spec, orc := fresh()
	ref, err := Run(white, spec, orc, DefaultConfig())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Key.HammingDistance(key) != 0 {
		t.Fatalf("reference run recovered wrong key")
	}

	// Capture a checkpoint at every site boundary of one observed run, and
	// verify the hook leaves the run itself bit-identical.
	var boundaries [][]byte
	white, spec, orc = fresh()
	cfg := DefaultConfig()
	cfg.OnCheckpoint = func(ck *Checkpoint) bool {
		raw, err := ck.Marshal()
		if err != nil {
			t.Fatalf("marshal checkpoint: %v", err)
		}
		boundaries = append(boundaries, raw)
		return true
	}
	observed, err := Run(white, spec, orc, cfg)
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}
	assertSameRun(t, "observed(hooked) vs reference", observed, ref)
	nSites := len(spec.SiteBits())
	if len(boundaries) != nSites {
		t.Fatalf("got %d checkpoints, want one per site (%d)", len(boundaries), nSites)
	}

	// Resume from every boundary (except the last, which has no work left —
	// covered separately below) and require the stitched-together totals to
	// match the uninterrupted run exactly.
	for i, raw := range boundaries {
		ck, err := UnmarshalCheckpoint(raw)
		if err != nil {
			t.Fatalf("boundary %d: unmarshal: %v", i, err)
		}
		if ck.SitesDone != i+1 {
			t.Fatalf("boundary %d: sites_done %d, want %d", i, ck.SitesDone, i+1)
		}
		rwhite, rspec, rorc := fresh()
		// A fresh oracle's counters start at zero; the resumed segment's
		// deltas stack on the checkpointed totals. The clean oracle is
		// stateless, so its answers do not depend on the replayed history.
		res, err := Resume(rwhite, rspec, rorc, DefaultConfig(), ck)
		if err != nil {
			t.Fatalf("boundary %d: resume: %v", i, err)
		}
		assertSameRun(t, "resumed from boundary", res, ref)
	}
}

// TestCheckpointSuspendThenResume exercises the true daemon path: the hook
// suspends the run mid-attack, Run returns ErrSuspended, and Resume against
// the same live oracle finishes with totals identical to an uninterrupted
// run.
func TestCheckpointSuspendThenResume(t *testing.T) {
	fresh, _ := checkpointFixture(t, 10)

	white, spec, orc := fresh()
	ref, err := Run(white, spec, orc, DefaultConfig())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	white, spec, orc = fresh()
	var suspended *Checkpoint
	cfg := DefaultConfig()
	cfg.OnCheckpoint = func(ck *Checkpoint) bool {
		suspended = ck
		return false // stop at the first boundary
	}
	res, err := Run(white, spec, orc, cfg)
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended run: got (%v, %v), want ErrSuspended", res, err)
	}
	if suspended == nil {
		t.Fatal("hook never received a checkpoint")
	}

	// Resume with the SAME oracle instance (dnnlockd's in-process resume):
	// the oracle's counters already hold the first segment's queries, and the
	// checkpoint carries the same totals, so Resume's delta accounting must
	// not double count.
	resumed, err := Resume(white, spec, orc, cfg2OneShot(t), suspended)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertSameRun(t, "suspend+resume", resumed, ref)
}

// cfg2OneShot returns a config whose hook always continues, proving a
// resumed run keeps offering checkpoints.
func cfg2OneShot(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	seen := 0
	cfg.OnCheckpoint = func(ck *Checkpoint) bool {
		seen++
		if ck.Version != CheckpointVersion {
			t.Errorf("resumed checkpoint version %d", ck.Version)
		}
		return true
	}
	return cfg
}

// assertSameRun compares the observable attack outcome fields the daemon's
// dec_queries parity smoke keys on.
func assertSameRun(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Key.HammingDistance(want.Key) != 0 {
		t.Fatalf("%s: keys differ:\n got %v\nwant %v", label, got.Key, want.Key)
	}
	if got.Queries != want.Queries {
		t.Fatalf("%s: queries %d, want %d", label, got.Queries, want.Queries)
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: rounds %d, want %d", label, got.Rounds, want.Rounds)
	}
	if !got.Equivalent {
		t.Fatalf("%s: not equivalent", label)
	}
	if !reflect.DeepEqual(got.Sites, want.Sites) {
		t.Fatalf("%s: site reports differ:\n got %+v\nwant %+v", label, got.Sites, want.Sites)
	}
	if !reflect.DeepEqual(got.Origins, want.Origins) {
		t.Fatalf("%s: bit origins differ:\n got %v\nwant %v", label, got.Origins, want.Origins)
	}
	if !reflect.DeepEqual(got.QueriesByProc, want.QueriesByProc) {
		t.Fatalf("%s: per-proc queries differ:\n got %v\nwant %v", label, got.QueriesByProc, want.QueriesByProc)
	}
	if !reflect.DeepEqual(got.RoundsByProc, want.RoundsByProc) {
		t.Fatalf("%s: per-proc rounds differ:\n got %v\nwant %v", label, got.RoundsByProc, want.RoundsByProc)
	}
}

// TestCheckpointValidation pins the guard rails: version drift, spec drift,
// seed drift, and the ProbeCache incompatibility are all rejected before
// any oracle traffic happens.
func TestCheckpointValidation(t *testing.T) {
	fresh, _ := checkpointFixture(t, 8)
	white, spec, orc := fresh()
	var ck *Checkpoint
	cfg := DefaultConfig()
	cfg.OnCheckpoint = func(c *Checkpoint) bool { ck = c; return false }
	if _, err := Run(white, spec, orc, cfg); !errors.Is(err, ErrSuspended) {
		t.Fatalf("want ErrSuspended, got %v", err)
	}

	t.Run("version", func(t *testing.T) {
		raw, _ := ck.Marshal()
		bad, err := UnmarshalCheckpoint(raw)
		if err != nil {
			t.Fatal(err)
		}
		bad.Version = CheckpointVersion + 1
		rewire, _ := bad.Marshal()
		if _, err := UnmarshalCheckpoint(rewire); err == nil {
			t.Fatal("version drift not rejected at decode")
		}
		if _, err := Resume(white, spec, orc, DefaultConfig(), bad); err == nil {
			t.Fatal("version drift not rejected at resume")
		}
	})
	t.Run("spec", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		otherLM, otherKey := hpnn.Lock(models.TinyMLP(rng), hpnn.Config{Scheme: hpnn.Negation, KeyBits: 8, Rng: rng})
		if _, err := Resume(otherLM.WhiteBox(), otherLM.Spec, oracle.New(otherLM, otherKey), DefaultConfig(), ck); err == nil {
			t.Fatal("spec drift not rejected")
		}
	})
	t.Run("seed", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Seed = ck.Seed + 1
		if _, err := Resume(white, spec, orc, cfg, ck); err == nil {
			t.Fatal("seed drift not rejected")
		}
	})
	t.Run("probecache", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.ProbeCache = true
		if _, err := Resume(white, spec, orc, cfg, ck); !errors.Is(err, errProbeCacheCheckpoint) {
			t.Fatalf("ProbeCache resume: got %v", err)
		}
		cfg.OnCheckpoint = func(*Checkpoint) bool { return true }
		if _, err := Run(white, spec, orc, cfg); !errors.Is(err, errProbeCacheCheckpoint) {
			t.Fatalf("ProbeCache run: got %v", err)
		}
	})
}

// TestCountedSourceSkip pins the RNG fast-forward identity the checkpoint
// format depends on: re-seeding and discarding N raw draws restores the
// exact stream, independent of which rand.Rand methods consumed them.
func TestCountedSourceSkip(t *testing.T) {
	src := newCountedSource(42)
	rng := rand.New(src)
	// Consume through a representative mix of derivations.
	rng.Perm(17)
	rng.Float64()
	rng.Int63n(1000003)
	rng.Shuffle(9, func(i, j int) {})
	mark := src.draws()
	want := []int64{rng.Int63(), rng.Int63(), rng.Int63()}

	replay := newCountedSource(42)
	replay.skip(mark)
	if replay.draws() != mark {
		t.Fatalf("draw count after skip: %d, want %d", replay.draws(), mark)
	}
	rng2 := rand.New(replay)
	for i, w := range want {
		if got := rng2.Int63(); got != w {
			t.Fatalf("draw %d after fast-forward: %d, want %d", i, got, w)
		}
	}
}
