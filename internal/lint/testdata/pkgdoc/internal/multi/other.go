package multi

// Placeholder keeps the second file non-trivial.
const Placeholder = 2
