package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"
)

// Structured logging for the attack path. The repo's progress output used
// to be ad-hoc fmt.Fprintf lines scattered through core, harness, and
// cmd/dnnlock; they now route through log/slog with a compact single-line
// handler, controlled by the DNNLOCK_LOG environment variable or the CLI's
// -v flag. The default is off: a discarding logger, so library code can log
// unconditionally.

// LevelFromEnv reads DNNLOCK_LOG (debug, info, warn, error; empty or "off"
// disables logging) and reports the level and whether logging is enabled.
func LevelFromEnv() (slog.Level, bool) {
	switch strings.ToLower(strings.TrimSpace(os.Getenv("DNNLOCK_LOG"))) {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn", "warning":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	default:
		return slog.LevelInfo, false
	}
}

// Default returns the process-default logger: DNNLOCK_LOG-controlled,
// writing to w (typically os.Stderr), discarding when the variable is
// unset.
func Default(w io.Writer) *slog.Logger {
	if level, on := LevelFromEnv(); on {
		return NewLogger(w, level)
	}
	return Discard()
}

// NewLogger returns a slog.Logger with the compact handler at the given
// level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(&compactHandler{w: w, level: level, mu: &sync.Mutex{}})
}

// Discard returns a logger that drops everything (the library default, so
// call sites need no nil checks).
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// compactHandler renders one short line per record:
//
//	12:04:05.123 INFO  site decided site=3 algebraic=12 learned=4
//
// It is deliberately smaller than slog.TextHandler: no key quoting beyond
// what ambiguity requires, fixed-width level, wall-clock time only (span
// timings belong to the tracer, not the log).
type compactHandler struct {
	w      io.Writer
	level  slog.Level
	mu     *sync.Mutex
	prefix string // pre-rendered WithAttrs/WithGroup context
	groups string
}

func (h *compactHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *compactHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(r.Time.Format("15:04:05.000"))
	b.WriteByte(' ')
	lv := r.Level.String()
	b.WriteString(lv)
	for i := len(lv); i < 5; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.groups, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *compactHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.prefix)
	for _, a := range attrs {
		appendAttr(&b, h.groups, a)
	}
	h2 := *h
	h2.prefix = b.String()
	return &h2
}

func (h *compactHandler) WithGroup(name string) slog.Handler {
	h2 := *h
	if name != "" {
		h2.groups = h.groups + name + "."
	}
	return &h2
}

func appendAttr(b *strings.Builder, groups string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		g := groups
		if a.Key != "" {
			g += a.Key + "."
		}
		for _, ga := range v.Group() {
			appendAttr(b, g, ga)
		}
		return
	}
	b.WriteByte(' ')
	b.WriteString(groups)
	b.WriteString(a.Key)
	b.WriteByte('=')
	switch v.Kind() {
	case slog.KindString:
		s := v.String()
		if strings.ContainsAny(s, " \t\"=") {
			b.WriteString(fmt.Sprintf("%q", s))
		} else {
			b.WriteString(s)
		}
	case slog.KindDuration:
		b.WriteString(v.Duration().Round(time.Microsecond).String())
	default:
		b.WriteString(v.String())
	}
}
