// Package metrics implements the paper's four evaluation metrics (§4.2):
// accuracy and fidelity live with their data (train.Evaluate, hpnn.Key
// .Fidelity); this package adds query accounting helpers and the
// per-procedure runtime breakdown behind Figure 3.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Procedure names the four attack procedures of Figure 3.
type Procedure string

// The procedures whose runtime Figure 3 breaks down.
const (
	ProcKeyBitInference     Procedure = "key_bit_inference"
	ProcLearningAttack      Procedure = "learning_attack"
	ProcKeyVectorValidation Procedure = "key_vector_validation"
	ProcErrorCorrection     Procedure = "error_correction"
)

// AllProcedures lists the Figure 3 procedures in presentation order.
var AllProcedures = []Procedure{
	ProcKeyBitInference,
	ProcLearningAttack,
	ProcKeyVectorValidation,
	ProcErrorCorrection,
}

// Breakdown accumulates wall time per procedure. Safe for concurrent use.
type Breakdown struct {
	mu    sync.Mutex
	times map[Procedure]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{times: make(map[Procedure]time.Duration)}
}

// Add accumulates d under proc.
func (b *Breakdown) Add(proc Procedure, d time.Duration) {
	b.mu.Lock()
	b.times[proc] += d
	b.mu.Unlock()
}

// Track runs f and accumulates its wall time under proc.
func (b *Breakdown) Track(proc Procedure, f func()) {
	start := time.Now()
	f()
	b.Add(proc, time.Since(start))
}

// Get returns the accumulated time of proc.
func (b *Breakdown) Get(proc Procedure) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times[proc]
}

// Total returns the sum over all procedures.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.times {
		t += d
	}
	return t
}

// snapshot copies the accumulated times and their sum under one lock
// acquisition. Shares derived from a snapshot stay mutually consistent even
// while other goroutines keep accumulating.
func (b *Breakdown) snapshot() (map[Procedure]time.Duration, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	times := make(map[Procedure]time.Duration, len(b.times))
	var total time.Duration
	for p, d := range b.times {
		times[p] = d
		total += d
	}
	return times, total
}

func share(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// Percent returns proc's share of the total in [0, 100].
func (b *Breakdown) Percent(proc Procedure) float64 {
	times, total := b.snapshot()
	return share(times[proc], total)
}

// Percentages returns the share per procedure: every Figure 3 procedure
// (zero if never tracked) plus any nonstandard ones that accumulated time.
// All shares come from one snapshot, so they sum to 100 (or all zero).
func (b *Breakdown) Percentages() map[Procedure]float64 {
	times, total := b.snapshot()
	out := make(map[Procedure]float64, len(AllProcedures)+len(times))
	for _, p := range AllProcedures {
		out[p] = 0
	}
	for p, d := range times {
		out[p] = share(d, total)
	}
	return out
}

func isStandard(p Procedure) bool {
	for _, q := range AllProcedures {
		if p == q {
			return true
		}
	}
	return false
}

// String renders a one-line summary: the Figure 3 procedures in
// presentation order, then any nonstandard procedures sorted by name, each
// with its share and accumulated duration.
func (b *Breakdown) String() string {
	times, total := b.snapshot()
	var parts []string
	render := func(p Procedure) string {
		d := times[p]
		return fmt.Sprintf("%s %.1f%% (%s)", p, share(d, total), d.Round(time.Millisecond))
	}
	for _, p := range AllProcedures {
		parts = append(parts, render(p))
	}
	var extra []string
	for p := range times {
		if !isStandard(p) {
			extra = append(extra, string(p))
		}
	}
	sort.Strings(extra)
	for _, p := range extra {
		parts = append(parts, render(Procedure(p)))
	}
	return strings.Join(parts, ", ")
}
