// Package tensor hosts the determinism golden fixtures for channel fan-in
// and map iteration inside a kernel package.
package tensor

func mapRange(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "range over map in a kernel package"
		sum += v
	}
	return sum
}

func mapRangeSuppressed(m map[int]float64) []int {
	var keys []int
	//lint:ignore determinism keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeClean(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum
}

func chanFanIn(ch chan float64) float64 {
	sum := 0.0
	for v := range ch { // want "values ranged off a channel arrive in scheduler order"
		sum += v
	}
	return sum
}

func chanSignalClean(done chan struct{}) {
	for range done {
	}
}

func recvUsed(ch chan int) int {
	v := <-ch // want "value received from a channel arrives in scheduler order"
	return v
}

func recvDrainClean(ch chan int) {
	<-ch
}

func recvBlankClean(ch chan int) {
	_ = <-ch
}

func selectMulti(a, b chan int) {
	select { // want "select over multiple channels resolves in scheduler order"
	case <-a:
	case <-b:
	}
}

func selectSingleClean(a chan int) {
	select {
	case <-a:
	}
}
