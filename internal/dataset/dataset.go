// Package dataset provides synthetic classification datasets that stand in
// for MNIST and CIFAR-10 in the paper's evaluation (see DESIGN.md §4: the
// attack itself is data-free; datasets only produce the accuracy columns of
// Table 1). Both generators draw each class from a fixed structured
// prototype with per-sample geometric jitter and pixel noise, which makes
// them learnable to high accuracy by the same architectures the paper uses.
package dataset

import (
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// Dataset is a flat-vector classification dataset.
type Dataset struct {
	X       *tensor.Matrix // one example per row, CHW-flattened
	Y       []int
	Classes int
	C, H, W int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.X.Rows }

// InputSize returns C·H·W.
func (d *Dataset) InputSize() int { return d.C * d.H * d.W }

// Split partitions the dataset into a training set with the first
// ceil(frac·n) examples and a test set with the rest.
func (d *Dataset) Split(frac float64) (trainSet, testSet *Dataset) {
	n := d.Len()
	cut := int(math.Ceil(frac * float64(n)))
	if cut > n {
		cut = n
	}
	mk := func(lo, hi int) *Dataset {
		x := tensor.New(hi-lo, d.X.Cols)
		y := make([]int, hi-lo)
		for i := lo; i < hi; i++ {
			x.SetRow(i-lo, d.X.Row(i))
			y[i-lo] = d.Y[i]
		}
		return &Dataset{X: x, Y: y, Classes: d.Classes, C: d.C, H: d.H, W: d.W}
	}
	return mk(0, cut), mk(cut, n)
}

// prototype is a class template: a set of Gaussian bumps on a CHW canvas.
type prototype struct {
	cx, cy, amp, sigma []float64
	ch                 []int
}

func makePrototype(rng *rand.Rand, c, h, w, bumps int) prototype {
	p := prototype{
		cx:    make([]float64, bumps),
		cy:    make([]float64, bumps),
		amp:   make([]float64, bumps),
		sigma: make([]float64, bumps),
		ch:    make([]int, bumps),
	}
	for i := 0; i < bumps; i++ {
		p.cx[i] = rng.Float64() * float64(w-1)
		p.cy[i] = rng.Float64() * float64(h-1)
		p.amp[i] = 0.6 + 0.8*rng.Float64()
		p.sigma[i] = 1.0 + 2.0*rng.Float64()
		p.ch[i] = rng.Intn(c)
	}
	return p
}

// render draws the prototype with a geometric jitter (dx, dy, scale) and
// additive noise into dst (CHW flat).
func (p prototype) render(dst []float64, c, h, w int, dx, dy, scale, noise float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = noise * rng.NormFloat64()
	}
	for b := range p.cx {
		cx := p.cx[b]*scale + dx
		cy := p.cy[b]*scale + dy
		s2 := 2 * p.sigma[b] * p.sigma[b] * scale * scale
		base := p.ch[b] * h * w
		// Bound the bump support to a window for speed.
		r := int(3*p.sigma[b]*scale) + 1
		y0, y1 := clamp(int(cy)-r, 0, h-1), clamp(int(cy)+r, 0, h-1)
		x0, x1 := clamp(int(cx)-r, 0, w-1), clamp(int(cx)+r, 0, w-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
				dst[base+y*w+x] += p.amp[b] * math.Exp(-d2/s2)
			}
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// generate draws n examples: a shared background prototype plus a faint
// class-specific delta scaled by deltaAmp, geometric jitter, and pixel
// noise. A small deltaAmp makes classification depend on fine, distributed
// features — which is what ties accuracy to the key: with a 0.15 ratio,
// flipping a few trained neurons collapses accuracy the way the paper's
// Table 1 baseline column shows, while the clean task remains learnable to
// high accuracy.
func generate(n int, seed int64, classes, c, h, w, bumps int, shift, noise, deltaAmp, baseAmp float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// One shared background prototype dominates every example...
	base := makePrototype(rand.New(rand.NewSource(seed+999)), c, h, w, 2*bumps)
	for i := range base.amp {
		base.amp[i] *= baseAmp
	}
	// ...and each class adds a faint structured delta on top.
	protos := make([]prototype, classes)
	for k := range protos {
		protos[k] = makePrototype(rand.New(rand.NewSource(seed+1000+int64(k))), c, h, w, bumps)
		for i := range protos[k].amp {
			protos[k].amp[i] *= deltaAmp
		}
	}
	d := &Dataset{
		X:       tensor.New(n, c*h*w),
		Y:       make([]int, n),
		Classes: classes,
		C:       c, H: h, W: w,
	}
	delta := make([]float64, c*h*w)
	for i := 0; i < n; i++ {
		k := rng.Intn(classes)
		d.Y[i] = k
		dx := (rng.Float64()*2 - 1) * shift
		dy := (rng.Float64()*2 - 1) * shift
		scale := 0.9 + 0.2*rng.Float64()
		base.render(d.X.Row(i), c, h, w, dx, dy, scale, noise, rng)
		protos[k].render(delta, c, h, w, dx, dy, scale, 0, rng)
		tensor.AXPY(1, delta, d.X.Row(i))
	}
	return d
}

// Digits generates the MNIST stand-in: n 28×28 grayscale examples in 10
// classes.
func Digits(n int, seed int64) *Dataset {
	return generate(n, seed, 10, 1, 28, 28, 6, 1.0, 0.2, 0.15, 1.0)
}

// Shapes generates the CIFAR-10 stand-in: n 16×16 RGB examples in 10
// classes.
func Shapes(n int, seed int64) *Dataset {
	return generate(n, seed, 10, 3, 16, 16, 8, 1.0, 0.2, 0.15, 1.0)
}

// Custom generates a dataset with explicit geometry, used by tests and the
// bench harness for very small pipelines. Jitter shrinks with the canvas so
// tiny inputs stay separable.
func Custom(n int, seed int64, classes, c, h, w int) *Dataset {
	bumps := 3 + c
	shift := float64(min(h, w)) / 10
	if shift > 1.5 {
		shift = 1.5
	}
	return generate(n, seed, classes, c, h, w, bumps, shift, 0.08, 1.0, 0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UniformInputs draws n inputs uniformly from [-lim, lim]^dim; this is the
// unlabeled query distribution the learning-based attack uses (§3.6). The
// matrix comes from the workspace pool (every element is overwritten);
// hot-loop callers such as the learning attack hand it back with
// tensor.PutMatrix when the query set is consumed.
func UniformInputs(n, dim int, lim float64, rng *rand.Rand) *tensor.Matrix {
	x := tensor.GetMatrix(n, dim)
	for i := range x.Data {
		x.Data[i] = (rng.Float64()*2 - 1) * lim
	}
	return x
}
