// Package lint machine-enforces the repository's hand-written runtime
// invariants: pooled workspaces must be released (poolpair), the kernel
// packages must stay bit-reproducible (determinism, floatcmp), all
// parallelism must route through the tensor worker pool so DNNLOCK_PROCS
// stays authoritative (nakedgo), every internal package must carry a godoc
// package comment (pkgdoc), every oracle probe must route through the
// counted seam (queryseam), oracle-seam errors must be checked or
// propagated on every path (errflow), trace spans must be ended on every
// path (spanpair), and every goroutine must have a provable termination
// edge (golife). See DESIGN.md §10 and §15 for the invariant each analyzer
// encodes and why Algorithm 2's hyperplane matching depends on it.
//
// The path-sensitive analyzers (poolpair, errflow, spanpair) run on a
// shared intraprocedural control-flow graph and forward dataflow solver
// (cfg.go): facts are generated at an acquisition or binding, killed at a
// release, read, or escape, and any fact still live at a reachable exit is
// a diagnostic positioned at that exit. Mechanical findings carry a
// SuggestedFix (fix.go) that cmd/dnnlint applies under -fix or previews
// under -diff.
//
// The suite is pure standard library (go/ast, go/parser, go/types,
// go/token) and is driven by a shared module loader (load.go). Diagnostics
// can be suppressed site-by-site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above; the reason is
// mandatory. Pool ownership handoffs (storing a pooled matrix into a
// longer-lived structure for a later, collective release) are declared with
// //lint:transfer on the storing line. Both directive kinds are themselves
// audited: one that no longer matches any finding is reported as stale
// (analyzer "directive"), gated on the analyzer it names actually running.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked Unit.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every analyzer in the suite, in report order.
var All = []*Analyzer{PoolPair, Determinism, FloatCmp, NakedGo, PkgDoc, QuerySeam, ErrFlow, SpanPair, GoLife}

// ByName resolves a comma-separated analyzer list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Diagnostic is one finding, positioned for editors and CI logs. Fix, when
// non-nil, is a mechanical rewrite `dnnlint -fix` can apply.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      *SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass hands one Unit to one analyzer and collects its reports.
type Pass struct {
	Unit     *Unit
	Fset     *token.FileSet
	analyzer *Analyzer
	prog     *Program
	out      *[]Diagnostic
}

// Report records a diagnostic at pos unless an ignore directive for this
// analyzer covers the line.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix is Report with an attached mechanical fix (applied by
// `dnnlint -fix`, previewed by `dnnlint -diff`).
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.prog.suppressed(p.analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// TransferAnnotated reports whether a //lint:transfer directive covers the
// line of pos (same line or the line directly above), marking any matching
// directive used so the stale-suppression check can tell live transfers
// from rotted ones.
func (p *Pass) TransferAnnotated(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	found := false
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range p.prog.directives[position.Filename][line] {
			if d.kind == dirTransfer {
				d.used = true
				found = true
			}
		}
	}
	return found
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Run executes the given analyzers over every unit and returns the
// surviving diagnostics sorted by position. //lint: directives are policed
// alongside the analyzers (reported under analyzer "directive"): a
// malformed suppression — no reason, or an unknown analyzer name — is a
// finding so typos cannot silently disable a check, and a suppression that
// matched nothing this run is a finding too, so stale exemptions cannot
// outlive the code they excused. Unused-checks are gated on the analyzers
// actually run: an //lint:ignore errflow line is only stale when errflow
// itself ran and found nothing to suppress there.
func (prog *Program) Run(analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, u := range prog.Units {
		for _, a := range analyzers {
			a.Run(&Pass{Unit: u, Fset: prog.Fset, analyzer: a, prog: prog, out: &out})
		}
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, file := range sortedKeys(prog.directives) {
		for _, line := range sortedIntKeys(prog.directives[file]) {
			for _, d := range prog.directives[file][line] {
				switch {
				case d.kind == dirMalformed:
					out = append(out, Diagnostic{Analyzer: "directive", Pos: d.pos, Message: d.reason})
				case d.kind == dirIgnore && !d.used && ran[d.analyzer]:
					out = append(out, Diagnostic{Analyzer: "directive", Pos: d.pos,
						Message: fmt.Sprintf("unused //lint:ignore %s: no %s finding here any more; remove the stale directive", d.analyzer, d.analyzer)})
				case d.kind == dirTransfer && !d.used && ran["poolpair"]:
					out = append(out, Diagnostic{Analyzer: "directive", Pos: d.pos,
						Message: "unused //lint:transfer: no tracked pooled-buffer store on this line any more; remove the stale directive"})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

const (
	dirIgnore = iota
	dirTransfer
	dirMalformed
)

type directive struct {
	kind     int
	analyzer string // for ignore
	reason   string
	pos      token.Position
	used     bool // matched a finding (ignore) or a tracked store (transfer)
}

// scanDirectives extracts //lint: comments from a freshly parsed file.
func (prog *Program) scanDirectives(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := parseDirective(text, pos)
			m := prog.directives[pos.Filename]
			if m == nil {
				m = map[int][]*directive{}
				prog.directives[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], &d)
		}
	}
}

// parseDirective interprets the text after "//lint:".
func parseDirective(text string, pos token.Position) directive {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return directive{kind: dirMalformed, reason: "empty //lint: directive", pos: pos}
	}
	switch fields[0] {
	case "ignore":
		if len(fields) < 3 {
			return directive{kind: dirMalformed, pos: pos,
				reason: "malformed //lint:ignore: need \"//lint:ignore <analyzer> <reason>\""}
		}
		name := fields[1]
		if !knownAnalyzer(name) {
			return directive{kind: dirMalformed, pos: pos,
				reason: fmt.Sprintf("//lint:ignore names unknown analyzer %q", name)}
		}
		return directive{kind: dirIgnore, analyzer: name, reason: strings.Join(fields[2:], " "), pos: pos}
	case "transfer":
		return directive{kind: dirTransfer, reason: strings.Join(fields[1:], " "), pos: pos}
	default:
		return directive{kind: dirMalformed, pos: pos,
			reason: fmt.Sprintf("unknown //lint: directive %q", fields[0])}
	}
}

func knownAnalyzer(name string) bool {
	for _, a := range All {
		if a.Name == name {
			return true
		}
	}
	return false
}

// suppressed reports whether an ignore directive for analyzer covers the
// diagnostic line (same line or the line directly above), marking matching
// directives used for the stale-suppression check.
func (prog *Program) suppressed(analyzer string, pos token.Position) bool {
	found := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range prog.directives[pos.Filename][line] {
			if d.kind == dirIgnore && d.analyzer == analyzer {
				d.used = true
				found = true
			}
		}
	}
	return found
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
