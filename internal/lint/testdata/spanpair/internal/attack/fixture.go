// Package attack exercises the spanpair analyzer: spans that can leave
// their function unended are marked; ended, deferred, and handed-off spans
// stay silent.
package attack

import "dnnlock/internal/obs"

func work() {}

// Never ended anywhere.
func neverEnded(tr *obs.Tracer) {
	sp := tr.Start("x") // want "span from obs.Start is never ended: add defer sp.End"
	_ = sp
}

// Opened and thrown away.
func discarded(tr *obs.Tracer) {
	tr.Start("x") // want "span from obs.Start is discarded: it can never be ended"
}

func blanked(tr *obs.Tracer) {
	_ = tr.Start("x") // want "span from obs.Start is assigned to _: it can never be ended"
}

// One return path skips the End.
func leakOnReturn(tr *obs.Tracer, cond bool) {
	sp := tr.Start("x")
	if cond {
		return // want `span from obs.Start \(line \d+\) is not ended on this return path`
	}
	sp.End()
}

// Ends in one branch only, then falls off the end of the function.
func fallsOff(tr *obs.Tracer, cond bool) {
	sp := tr.Start("x") // want "span from obs.Start is not ended on the fall-through path to the end of the function"
	if cond {
		sp.End()
	}
}

// A child span leaks like any other.
func childLeaks(sp *obs.Span, cond bool) {
	c := sp.Child("y")
	if cond {
		return // want `span from obs.Child \(line \d+\) is not ended on this return path`
	}
	c.End()
}

// Deferred End covers every exit, including panics and early returns.
func deferred(tr *obs.Tracer, cond bool) {
	sp := tr.Start("x")
	defer sp.End()
	if cond {
		return
	}
	work()
}

// Ended on every path explicitly: clean.
func bothPaths(tr *obs.Tracer, cond bool) {
	sp := tr.Start("x")
	if cond {
		sp.End()
		return
	}
	sp.End()
}

// Returned to the caller: the caller owns it now.
func handedBack(tr *obs.Tracer) *obs.Span {
	sp := tr.Start("x")
	return sp
}

// Stored into a longer-lived structure: the structure owns it now.
type holder struct{ sp *obs.Span }

func (h *holder) open(tr *obs.Tracer) {
	h.sp = tr.Start("x")
}

func storedAfterBind(tr *obs.Tracer, h *holder) {
	sp := tr.Start("x")
	h.sp = sp
}

// Ending through a local alias counts.
func aliased(tr *obs.Tracer) {
	sp := tr.Start("x")
	s2 := sp
	s2.End()
}

// ChildDetail follows the same contract.
func detail(sp *obs.Span, cond bool) {
	d := sp.ChildDetail("probe")
	if cond {
		return // want `span from obs.ChildDetail \(line \d+\) is not ended on this return path`
	}
	d.End()
}

// Passing the span to a helper does NOT discharge: helpers decorate spans,
// they do not adopt them.
func argPassed(tr *obs.Tracer, annotate func(*obs.Span)) {
	sp := tr.Start("x") // want "span from obs.Start is never ended: add defer sp.End"
	annotate(sp)
}

// An End inside a deferred closure counts as deferred.
func deferredClosure(tr *obs.Tracer, cond bool) {
	sp := tr.Start("x")
	defer func() {
		sp.Event("done")
		sp.End()
	}()
	if cond {
		return
	}
	work()
}
