package harness

import (
	"bytes"
	"testing"

	"dnnlock/internal/obs"
)

// TestRunTable1Traced runs one Table-1 cell with a sink-backed tracer and
// checks the exported trace: a `cell` span parents both attack roots, the
// per-procedure rollup of the decryption subtree matches the summary its
// breakdown anchor carries, and the total query attribution agrees with
// the row's reported query counts.
func TestRunTable1Traced(t *testing.T) {
	sc := TinyScale()
	sc.KeySizes = map[string][]int{"mlp": {6}}
	var sink bytes.Buffer
	tr := obs.New(obs.WithSink(&sink))
	sc.AttackCfg.Tracer = tr
	rows, err := RunTable1(sc, []string{"mlp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := obs.ReadTrace(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if err := trace.Check(0.5); err != nil {
		t.Fatalf("trace self-check: %v", err)
	}

	var cell, attack, mono int
	byID := map[uint64]obs.SpanRecord{}
	for _, s := range trace.Spans {
		byID[s.ID] = s
	}
	var cellID uint64
	for _, s := range trace.Spans {
		switch s.Name {
		case "cell":
			cell++
			cellID = s.ID
		case "attack":
			attack++
		case "monolithic":
			mono++
		}
	}
	if cell != 1 || attack != 1 || mono != 1 {
		t.Fatalf("span census cell=%d attack=%d monolithic=%d, want 1 each", cell, attack, mono)
	}
	for _, s := range trace.Spans {
		if s.Name == "attack" || s.Name == "monolithic" {
			if s.Parent != cellID {
				t.Fatalf("%s span parented to %d, not the cell span %d", s.Name, s.Parent, cellID)
			}
		}
	}

	// Query attribution. The per-procedure rollup of the decryption
	// subtree must agree exactly with the row's QueriesByProc (the trace
	// and the breakdown are the same measurement), and stay within the
	// row's oracle total — the final equivalence check's queries are
	// deliberately unattributed, so the rollup may undershoot the total
	// but never exceed it.
	r := rows[0]
	for _, s := range trace.Spans {
		if s.Name != "attack" && s.Name != "monolithic" {
			continue
		}
		rolled, rolledRounds := int64(0), int64(0)
		_, queries, rounds, _ := trace.RollupFromSpans(s.ID)
		for _, q := range queries {
			rolled += q
		}
		for _, n := range rounds {
			rolledRounds += n
		}
		total := r.Decryption.Queries
		if s.Name == "monolithic" {
			total = r.Monolithic.Queries
		}
		if rolled <= 0 || rolled > total {
			t.Fatalf("%s rollup counted %d queries, row total is %d", s.Name, rolled, total)
		}
		if s.Name == "attack" {
			var byProc int64
			for _, q := range r.QueriesByProc {
				byProc += q
			}
			if rolled != byProc {
				t.Fatalf("attack rollup %d != QueriesByProc sum %d", rolled, byProc)
			}
			// Coalesced multi-point probes mean every attributed query
			// group shares a round-trip: rounds must be positive and
			// strictly fewer than queries.
			if rolledRounds <= 0 || rolledRounds >= rolled {
				t.Fatalf("attack rollup rounds = %d, want in (0, %d)", rolledRounds, rolled)
			}
		}
	}
}
