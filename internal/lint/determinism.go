package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism polices the bit-identity guarantee of the kernel packages
// (internal/tensor, internal/nn, internal/core). The decryption attack
// matches hyperplanes between the white box and the oracle by exact float
// reproduction (Algorithm 2, DESIGN.md §8–9), so inside these packages
// nothing may depend on scheduler or runtime randomness:
//
//   - no iteration over a map (order varies per run),
//   - no time.Now / time.Since feeding values into the computation,
//   - no global math/rand functions (per-process seeded, shared state) —
//     deterministic per-call *rand.Rand instances are fine,
//   - no goroutine fan-in through channels whose received values are used
//     (arrival order is scheduler-dependent), and no multi-case select.
//
// Sites that are order-insensitive by construction (a worker picking tasks
// off a queue that each write disjoint rows, telemetry timestamps that
// never touch the numerics) carry //lint:ignore determinism <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "kernel packages must not depend on map order, wall clocks, global rand, or channel arrival order",
	Run:  runDeterminism,
}

// kernelPackages carry the bit-identity guarantee.
var kernelPackages = map[string]bool{
	"dnnlock/internal/tensor": true,
	"dnnlock/internal/nn":     true,
	"dnnlock/internal/core":   true,
}

func runDeterminism(p *Pass) {
	if !kernelPackages[p.Unit.Path] {
		return
	}
	for _, f := range p.Unit.Files {
		if p.IsTestFile(f) {
			continue // tests use seeded randomness and order-free assertions
		}
		checkDeterminism(p, f)
	}
}

func checkDeterminism(p *Pass, f *ast.File) {
	var visit func(n ast.Node, parent ast.Node)
	visit = func(n ast.Node, parent ast.Node) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.RangeStmt:
			t := p.Unit.Info.TypeOf(v.X)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					p.Report(v.X.Pos(), "range over map in a kernel package: iteration order is non-deterministic; iterate sorted keys instead")
				case *types.Chan:
					if used(v.Key) || used(v.Value) {
						p.Report(v.X.Pos(), "goroutine fan-in: values ranged off a channel arrive in scheduler order")
					}
				}
			}
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" && recvValueUsed(parent, v) {
				p.Report(v.Pos(), "goroutine fan-in: value received from a channel arrives in scheduler order")
			}
		case *ast.SelectStmt:
			if v.Body != nil && len(v.Body.List) > 1 {
				p.Report(v.Pos(), "select over multiple channels resolves in scheduler order")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(p, v); fn != nil && fn.Pkg() != nil {
				path, name := fn.Pkg().Path(), fn.Name()
				sig, _ := fn.Type().(*types.Signature)
				pkgLevel := sig == nil || sig.Recv() == nil
				switch {
				case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					p.Report(v.Pos(), "wall-clock time.%s in a kernel package: results must not depend on when they run", name)
				case path == "math/rand" && pkgLevel && !randConstructor(name):
					p.Report(v.Pos(), "global math/rand.%s shares per-process state: thread a seeded *rand.Rand instead", name)
				case path == "math/rand/v2" && pkgLevel && !randConstructor(name):
					p.Report(v.Pos(), "global math/rand/v2.%s shares per-process state: thread a seeded generator instead", name)
				}
			}
		}
		walkChildren(n, func(c ast.Node) { visit(c, n) })
	}
	visit(f, nil)
}

// randConstructor reports whether a math/rand package-level function builds
// a private seeded generator rather than touching the shared global source.
// rand.New(rand.NewSource(seed)) is exactly the pattern the analyzer steers
// code toward, so flagging it would be self-defeating.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// used reports whether a range-clause variable is bound and non-blank.
func used(e ast.Expr) bool {
	if e == nil {
		return false
	}
	id, ok := e.(*ast.Ident)
	return !ok || id.Name != "_"
}

// recvValueUsed reports whether a <-ch expression's value is consumed: a
// bare receive statement (pure synchronization) and a receive assigned only
// to blanks are fine; anything else makes the computation depend on arrival
// order.
func recvValueUsed(parent ast.Node, recv *ast.UnaryExpr) bool {
	switch par := parent.(type) {
	case *ast.ExprStmt:
		return false
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		return false
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	}
	return true
}

// calleeFunc resolves the called function object, if any.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Unit.Info.Uses[id].(*types.Func)
	return fn
}

// testFileSuffix is shared by analyzers that scope to non-test code.
func isTestFilename(name string) bool { return strings.HasSuffix(name, "_test.go") }
