// slice.go is the sanctioned nn fan-out site (the real nn.Slice spawns its
// own goroutines because pool tasks must stay leaf kernels); go statements
// in this file are not flagged.
package nn

import "sync"

func prefixFanOut(rows int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += 8 {
		hi := lo + 8
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
