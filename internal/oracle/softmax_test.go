package oracle

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
	"dnnlock/internal/rot"
	"dnnlock/internal/tensor"
)

func TestSoftmaxModeNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := nn.NewNetwork(
		nn.NewDense(3, 5).InitHe(rng), nn.NewFlip(5), nn.NewReLU(5),
		nn.NewDense(5, 4).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 3, Rng: rng})
	o := NewSoftmax(lm, key)
	xb := tensor.New(5, 3)
	for i := range xb.Data {
		xb.Data[i] = rng.NormFloat64()
	}
	out := mustQueryBatch(t, o, xb)
	defer tensor.PutMatrix(out)
	for r := 0; r < out.Rows; r++ {
		sum := 0.0
		for _, p := range out.Row(r) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	// Softmax preserves the argmax of the logits.
	x := xb.Row(0)
	logits := lm.Net.Forward(x)
	probs := mustQuery(t, o, x)
	if tensor.ArgMax(logits) != tensor.ArgMax(probs) {
		t.Fatal("softmax changed the argmax")
	}
}

func TestFromDeviceSharesCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := nn.NewNetwork(nn.NewDense(2, 3).InitHe(rng), nn.NewFlip(3), nn.NewReLU(3), nn.NewDense(3, 2).InitHe(rng))
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 2, Rng: rng})
	dev := rot.Provision("d", key, []byte("s"))
	if err := dev.Bind(lm); err != nil {
		t.Fatal(err)
	}
	o := FromDevice(dev)
	if o.Softmax() {
		t.Fatal("FromDevice should default to logits")
	}
	mustQuery(t, o, []float64{1, 2})
	if o.Queries() != 1 {
		t.Fatalf("queries = %d", o.Queries())
	}
}
