package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// FloatCmp flags == and != between floating-point (or complex) operands.
// Almost everywhere in this codebase a float equality is a latent bug: the
// attack's guarantees are about *bit-identical recomputation* of the same
// expression, not about algebraically equal values comparing equal, and a
// tolerance (or math.Signbit / exact integer logic) is what's wanted.
//
// Test files are exempt wholesale: the repo's tests assert bit-identical
// readback and slice/parallel equivalence on purpose (DESIGN.md §8–9), so
// exact equality there is the specification, not a bug. Production files
// whose entire point is exact equality are allowlisted below; one-off exact
// comparisons (zero-value sentinels, skip-work fast paths on exact zero)
// carry //lint:ignore floatcmp <reason>.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "no == or != on floating-point operands outside exactness-critical files",
	Run:  runFloatCmp,
}

// floatCmpAllowlist names non-test files whose job is exact float equality,
// by module-relative path suffix:
//
//   - config.go uses the Go zero value as the "unset, apply default"
//     sentinel for float fields, which is an exact-representation check;
//   - kernels.go implements the locked-weight masking kernels, which match
//     stored sentinel values bit for bit by design — a tolerance there
//     would unmask the wrong weights.
var floatCmpAllowlist = []string{
	"internal/core/config.go",
	"internal/tensor/kernels.go",
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Unit.Files {
		name := filepath.ToSlash(p.Fset.Position(f.Pos()).Filename)
		if isTestFilename(name) || allowlistedFloatFile(name) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !floatOperand(p, be.X) && !floatOperand(p, be.Y) {
				return true
			}
			if constExpr(p, be.X) && constExpr(p, be.Y) {
				return true // compile-time constant comparison
			}
			p.Report(be.OpPos, "floating-point %s comparison: use a tolerance, or //lint:ignore floatcmp with the exactness argument", be.Op)
			return true
		})
	}
}

func allowlistedFloatFile(name string) bool {
	for _, suffix := range floatCmpAllowlist {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

func floatOperand(p *Pass, e ast.Expr) bool {
	t := p.Unit.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func constExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Unit.Info.Types[e]
	return ok && tv.Value != nil
}
