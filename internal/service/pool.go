package service

import "sync"

// pool is the daemon's sharded worker pool: one worker goroutine per shard,
// each owning a bounded queue channel. A job is pinned to a shard by
// hash(id, attempt) — see Server.shardFor — so retries and resumes can land
// on a different shard (resharding) while a single attempt's execution
// order within its shard stays FIFO. submit is non-blocking: a full shard
// is the backpressure signal the HTTP layer turns into 429 + Retry-After.
type pool struct {
	shards []chan *Job
	wg     sync.WaitGroup
	run    func(shard int, j *Job)
}

// newPool starts one worker per shard, each with a queue of the given
// depth.
func newPool(shards, depth int, run func(shard int, j *Job)) *pool {
	p := &pool{shards: make([]chan *Job, shards), run: run}
	for i := range p.shards {
		p.shards[i] = make(chan *Job, depth)
	}
	for i := range p.shards {
		p.wg.Add(1)
		//lint:ignore nakedgo daemon worker shard; terminates when close() closes its queue channel and the range drains
		go p.worker(i)
	}
	return p
}

// worker drains one shard's queue until the channel is closed by close().
func (p *pool) worker(i int) {
	defer p.wg.Done()
	for j := range p.shards[i] {
		p.run(i, j)
	}
}

// submit enqueues j on its shard without blocking; false means the shard's
// queue is full. The caller must hold the server's drain read-lock so close
// can never race a send.
func (p *pool) submit(j *Job, shard int) bool {
	select {
	case p.shards[shard] <- j:
		return true
	default:
		return false
	}
}

// close closes every shard queue. Workers finish the jobs already queued
// (under drain those are requeued-for-restart, not run) and exit. The
// caller must guarantee no submit is in flight (the server does so by
// setting draining under its write lock first).
func (p *pool) close() {
	for i := range p.shards {
		close(p.shards[i])
	}
}

// wait blocks until every worker has exited.
func (p *pool) wait() { p.wg.Wait() }

// queueStats reports per-shard queue occupancy for /metrics.
func (p *pool) queueStats() (lengths []int, capacity int) {
	lengths = make([]int, len(p.shards))
	for i, ch := range p.shards {
		lengths[i] = len(ch)
		capacity = cap(ch)
	}
	return lengths, capacity
}
