package core

import "dnnlock/internal/oracle"

// planner.go is the sanctioned seam: raw oracle calls here are the point.
func sanctionedSeam(orc oracle.Interface, x []float64) {
	orc.Query(x)
	orc.QueryBatch([][]float64{x})
}
