package nn

import (
	"fmt"
	"sync"

	"dnnlock/internal/tensor"
)

// Slice partitions a network's layer sequence into a frozen prefix and a
// trainable suffix for the §3.6 learning attack. The attack freezes every
// weight and fits only soft flip coefficients, so when the earliest softened
// flip sits at layer k the forward values of layers 0..k-1 are a pure
// function of the input: they can be evaluated exactly once per query set
// and replayed from a cache on every minibatch of every epoch, and no
// gradient ever needs to flow back across the boundary.
//
// The cut is placed at top-level layer granularity: the suffix starts at the
// first top-level layer that contains the given flip site (possibly inside
// a Residual container). Flip site IDs are assigned in network walk order,
// so every flip in the prefix has a strictly smaller site ID and therefore
// stays hard/frozen during the fit.
//
// Numerical identity with the unsliced path is a design guarantee, not an
// approximation: every layer's batch forward processes rows independently
// with a fixed per-element accumulation order (see internal/tensor
// kernels.go), so an example's prefix activation does not depend on which
// batch it was computed in, and the suffix sees the same values whether the
// prefix ran per-minibatch or once up front. The property tests in
// slice_test.go and core's slice equivalence tests enforce this.
type Slice struct {
	net *Network
	cut int // index of the first suffix layer in net.Layers
}

// Split returns the slice whose suffix begins at the first top-level layer
// containing flip site `site`. Panics if the site does not exist.
func (n *Network) Split(site int) *Slice {
	for i, l := range n.Layers {
		if layerHasFlipSite(l, site) {
			return &Slice{net: n, cut: i}
		}
	}
	panic(fmt.Sprintf("nn: flip site %d not found in network", site))
}

// FullSlice returns the degenerate slice with an empty prefix; its suffix
// passes are exactly the network's TrainForward/TrainBackward. It is the
// reference path the slice equivalence tests (and the unsliced ablation)
// compare against.
func (n *Network) FullSlice() *Slice { return &Slice{net: n, cut: 0} }

// layerHasFlipSite reports whether l is, or contains, the flip with the
// given site ID.
func layerHasFlipSite(l Layer, site int) bool {
	switch v := l.(type) {
	case *Flip:
		return v.SiteID == site
	case container:
		for _, sub := range v.subLayers() {
			if layerHasFlipSite(sub, site) {
				return true
			}
		}
	}
	return false
}

// Cut returns the index of the first suffix layer.
func (s *Slice) Cut() int { return s.cut }

// BoundaryWidth returns the activation width at the slice boundary (the
// suffix's input size).
func (s *Slice) BoundaryWidth() int {
	if s.cut == 0 {
		return s.net.InSize()
	}
	return s.net.Layers[s.cut-1].OutSize()
}

// PrefixForward evaluates the frozen prefix for every row of x and returns
// the boundary activations. Rows are sharded over tensor.Parallelism()
// goroutines (Layer.Forward is documented pure), and the cache lands in a
// pooled workspace: the caller must release it with tensor.PutMatrix unless
// the prefix is empty, in which case x itself is returned.
func (s *Slice) PrefixForward(x *tensor.Matrix) *tensor.Matrix {
	if s.cut == 0 {
		return x
	}
	prefix := s.net.Layers[:s.cut]
	h := tensor.GetMatrix(x.Rows, s.BoundaryWidth())
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Row(i)
			for _, l := range prefix {
				v = l.Forward(v, nil)
			}
			copy(h.Row(i), v)
		}
	}
	workers := tensor.Parallelism()
	if workers > x.Rows {
		workers = x.Rows
	}
	if workers <= 1 {
		rowRange(0, x.Rows)
		return h
	}
	// Own goroutines, not tensor pool tasks: a layer's Forward may itself
	// fan kernels out to the pool (see parallel.go's leaf-task rule).
	var wg sync.WaitGroup
	chunk := (x.Rows + workers - 1) / workers
	for lo := 0; lo < x.Rows; lo += chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			rowRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return h
}

// TrainForward runs the caching training forward pass over the suffix only.
// h holds boundary activations (rows of a PrefixForward cache).
func (s *Slice) TrainForward(h *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.net.Layers[s.cut:] {
		h = l.TrainForward(h)
	}
	return h
}

// Backward propagates the output gradient through the suffix, accumulating
// parameter gradients, and stops at the slice boundary: no gradient flows
// into the frozen prefix.
func (s *Slice) Backward(dy *tensor.Matrix) {
	if dx := backwardChain(s.net.Layers[s.cut:], dy); dx != dy {
		tensor.PutMatrix(dx) // boundary gradient is dropped; recycle it
	}
}

// ZeroGrad clears the gradients of suffix parameters. Prefix parameters
// never accumulate gradient under a sliced fit, so they need no clearing.
func (s *Slice) ZeroGrad() {
	for _, l := range s.net.Layers[s.cut:] {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}
