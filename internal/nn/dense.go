package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// Dense is a fully connected affine layer y = W·x + b with W out×in.
type Dense struct {
	In, Out int
	W, B    *Param

	lastX *tensor.Matrix // training cache
}

// NewDense constructs a dense layer with zero weights (see InitHe/InitXavier).
func NewDense(in, out int) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_w_%dx%d", out, in), out, in),
		B:   NewParam(fmt.Sprintf("dense_b_%d", out), 1, out),
	}
}

// InitHe fills W with He-normal initialization, appropriate before ReLU.
func (d *Dense) InitHe(rng *rand.Rand) *Dense {
	std := math.Sqrt(2.0 / float64(d.In))
	for i := range d.W.W.Data {
		d.W.W.Data[i] = rng.NormFloat64() * std
	}
	return d
}

// InitXavier fills W with Xavier-normal initialization.
func (d *Dense) InitXavier(rng *rand.Rand) *Dense {
	std := math.Sqrt(2.0 / float64(d.In+d.Out))
	for i := range d.W.W.Data {
		d.W.W.Data[i] = rng.NormFloat64() * std
	}
	return d
}

func (d *Dense) Name() string { return "dense" }

// InSize returns the input dimensionality.
func (d *Dense) InSize() int { return d.In }

// OutSize returns the output dimensionality.
func (d *Dense) OutSize() int { return d.Out }

// Forward computes W·x + b for one example.
func (d *Dense) Forward(x []float64, _ *Trace) []float64 {
	checkSize("dense", d.In, len(x))
	y := tensor.MatVec(d.W.W, x)
	brow := d.B.W.Row(0)
	for i := range y {
		y[i] += brow[i]
	}
	return y
}

// ForwardBatch computes X·Wᵀ + b for a batch via the transpose-free
// blocked kernel (W is stored out×in, so no copy of Wᵀ is ever built).
func (d *Dense) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	checkSize("dense", d.In, x.Cols)
	// MatMulABTInto overwrites dst, so the pooled buffer needs no zeroing.
	out := tensor.GetMatrix(x.Rows, d.Out)
	tensor.MatMulABTInto(out, x, d.W.W)
	brow := d.B.W.Row(0)
	for i := 0; i < out.Rows; i++ {
		or := out.Row(i)
		for o, bv := range brow {
			or[o] += bv
		}
	}
	return out
}

// TrainForward is ForwardBatch with input caching for Backward.
func (d *Dense) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	d.lastX = x
	return d.ForwardBatch(x)
}

// Backward accumulates dW, dB and returns dX.
// dW += dYᵀ·X ; dB += Σ_rows dY ; dX = dY·W — all through the transpose-free
// parallel kernels, which keep the batch-ascending accumulation order of the
// original serial loops.
func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	x := d.lastX
	if x == nil {
		panic("nn: Dense.Backward before TrainForward")
	}
	tensor.MatMulATBAddInto(d.W.G, dy, x)
	bg := d.B.G.Row(0)
	for i := 0; i < dy.Rows; i++ {
		for o, g := range dy.Row(i) {
			//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
			if g == 0 {
				continue
			}
			bg[o] += g
		}
	}
	dx := tensor.GetMatrix(dy.Rows, d.In)
	tensor.MatMulInto(dx, dy, d.W.W) // overwrites dst, so the pooled buffer needs no zeroing
	return dx
}

// JVP propagates the value and tangent: y = Wx+b, Jy = W·J.
func (d *Dense) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	return d.Forward(x, nil), tensor.MatMul(d.W.W, j)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// TokenDense applies a Dense transform independently to each of T tokens:
// the flat input of size T·In is reshaped to T rows, mapped through W,b, and
// flattened back to T·Out. It is the position-wise feed-forward map of the
// V-Transformer.
type TokenDense struct {
	T int
	D *Dense
}

// NewTokenDense constructs a per-token dense layer over t tokens.
func NewTokenDense(t, in, out int) *TokenDense {
	return &TokenDense{T: t, D: NewDense(in, out)}
}

// InitHe initializes the shared token weights.
func (td *TokenDense) InitHe(rng *rand.Rand) *TokenDense {
	td.D.InitHe(rng)
	return td
}

// InitXavier initializes the shared token weights.
func (td *TokenDense) InitXavier(rng *rand.Rand) *TokenDense {
	td.D.InitXavier(rng)
	return td
}

func (td *TokenDense) Name() string { return "token_dense" }

// InSize returns T·in.
func (td *TokenDense) InSize() int { return td.T * td.D.In }

// OutSize returns T·out.
func (td *TokenDense) OutSize() int { return td.T * td.D.Out }

// Forward maps each token through the shared dense transform.
func (td *TokenDense) Forward(x []float64, _ *Trace) []float64 {
	checkSize("token_dense", td.InSize(), len(x))
	out := make([]float64, td.OutSize())
	for t := 0; t < td.T; t++ {
		y := td.D.Forward(x[t*td.D.In:(t+1)*td.D.In], nil)
		copy(out[t*td.D.Out:], y)
	}
	return out
}

// ForwardBatch maps a batch row-wise.
func (td *TokenDense) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(td, x)
}

// TrainForward caches the token-expanded batch for Backward.
func (td *TokenDense) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	// Expand batch of flat examples into a (rows·T)×In token batch so the
	// inner Dense caches one matrix.
	tokens := tensor.New(x.Rows*td.T, td.D.In)
	for i := 0; i < x.Rows; i++ {
		xr := x.Row(i)
		for t := 0; t < td.T; t++ {
			tokens.SetRow(i*td.T+t, xr[t*td.D.In:(t+1)*td.D.In])
		}
	}
	y := td.D.TrainForward(tokens)
	out := tensor.New(x.Rows, td.OutSize())
	for i := 0; i < x.Rows; i++ {
		or := out.Row(i)
		for t := 0; t < td.T; t++ {
			copy(or[t*td.D.Out:(t+1)*td.D.Out], y.Row(i*td.T+t))
		}
	}
	return out
}

// Backward routes gradients through the shared dense transform.
func (td *TokenDense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dtok := tensor.New(dy.Rows*td.T, td.D.Out)
	for i := 0; i < dy.Rows; i++ {
		dr := dy.Row(i)
		for t := 0; t < td.T; t++ {
			dtok.SetRow(i*td.T+t, dr[t*td.D.Out:(t+1)*td.D.Out])
		}
	}
	dxTok := td.D.Backward(dtok)
	dx := tensor.New(dy.Rows, td.InSize())
	for i := 0; i < dy.Rows; i++ {
		dr := dx.Row(i)
		for t := 0; t < td.T; t++ {
			copy(dr[t*td.D.In:(t+1)*td.D.In], dxTok.Row(i*td.T+t))
		}
	}
	return dx
}

// JVP applies the shared linear map token-wise to value and tangents.
func (td *TokenDense) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := td.Forward(x, nil)
	p := j.Cols
	jy := tensor.New(td.OutSize(), p)
	// Each tangent column transforms exactly like a value (the map is linear).
	for t := 0; t < td.T; t++ {
		for o := 0; o < td.D.Out; o++ {
			wrow := td.D.W.W.Row(o)
			dst := jy.Row(t*td.D.Out + o)
			for k, wv := range wrow {
				//lint:ignore floatcmp exact-zero skip: a zero weight contributes nothing to the Jacobian row
				if wv == 0 {
					continue
				}
				src := j.Row(t*td.D.In + k)
				for c := 0; c < p; c++ {
					dst[c] += wv * src[c]
				}
			}
		}
	}
	return y, jy
}

// Params returns the shared token parameters.
func (td *TokenDense) Params() []*Param { return td.D.Params() }
