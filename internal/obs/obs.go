// Package obs is the observability layer of the decryption attack: nested
// span tracing, structured logging, and profiling hooks, all pure standard
// library.
//
// A Tracer records a tree of timed spans (attack → cell → site → procedure
// → probe) with monotonic timings, per-span oracle-query, round-trip, and
// retry counters, and point events (degradations, retries, correction
// attempts). Spans of farm-backed runs also carry sim_ns, the simulated
// channel time consumed under the span, so a trace prices the attack over
// the network it modeled. Completed spans stream to an optional JSONL sink;
// spans that carry a procedure label additionally roll up into a
// metrics.Breakdown, so the paper's Figure 3 is a projection of the trace
// rather than a separate set of hand-placed counters — and `dnnlock trace
// -check` re-derives every summary (queries, rounds, proc times, sim_ns)
// from the raw spans to prove it.
//
// The zero-cost contract: a Tracer constructed without a sink (obs.New())
// is the no-op default. It still maintains the handful of procedure-level
// spans the Breakdown rollup needs — the same bookkeeping the attack always
// did — but allocates nothing per probe: fine-grained spans are gated on
// Detailed(), which is true only when a sink is attached. Tracing never
// touches the attack's numerics or its random streams, so the traced and
// untraced runs are bit-identical (pinned by TestTracedRunBitIdentical in
// internal/core).
//
// All Span methods are nil-safe: a nil *Span (from a nil Tracer, or from a
// Detailed() gate that declined) accepts every call as a no-op, so call
// sites carry no conditionals.
package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/metrics"
)

// Tracer produces spans and serializes completed ones to the sink. Safe for
// concurrent use: spans may start and end on any goroutine.
type Tracer struct {
	mu     sync.Mutex // guards sink writes and err
	sink   io.Writer  // nil = no export (the no-op default)
	err    error      // first sink write error, surfaced by Close
	start  time.Time  // monotonic anchor; all record times are offsets
	nextID atomic.Uint64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSink streams completed spans to w as JSONL, one record per span plus
// one summary record per breakdown-carrying span. Attaching a sink also
// turns on Detailed(), enabling probe-level spans.
func WithSink(w io.Writer) Option {
	return func(t *Tracer) { t.sink = w }
}

// New returns a Tracer. With no options it is the no-op default: spans are
// timed and rolled up into any attached Breakdown, but nothing is exported
// and Detailed() is false.
func New(opts ...Option) *Tracer {
	t := &Tracer{start: time.Now()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Detailed reports whether fine-grained (per-probe, per-vote) spans should
// be created. True only when a sink is attached; the clean path keeps its
// overhead budget by declining them.
func (t *Tracer) Detailed() bool {
	return t != nil && t.sink != nil
}

// Start opens a root span. A nil Tracer returns a nil (no-op) span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(nil, name, attrs)
}

// Close flushes nothing (writes are unbuffered by the tracer; wrap the sink
// in a bufio.Writer and flush it yourself if needed) but surfaces the first
// sink write error encountered. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) newSpan(parent *Span, name string, attrs []Attr) *Span {
	s := &Span{
		tr:     t,
		parent: parent,
		id:     t.nextID.Add(1),
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	for _, a := range attrs {
		if a.Key == procKey {
			if p, ok := a.Val.(string); ok {
				s.proc = metrics.Procedure(p)
			}
		}
	}
	return s
}

// Span is one timed node of the trace tree. Counters are atomic, so a span
// may be shared across the goroutines of one parallel phase; Child and End
// may likewise be called from any goroutine.
type Span struct {
	tr     *Tracer
	parent *Span
	id     uint64
	name   string
	start  time.Time
	attrs  []Attr
	proc   metrics.Procedure  // non-empty: End rolls duration+queries into bd
	bd     *metrics.Breakdown // rollup target for proc-labelled descendants

	queries atomic.Int64
	rounds  atomic.Int64
	retries atomic.Int64
	simNS   atomic.Int64 // simulated channel time (farm transport), in ns

	mu     sync.Mutex
	events []Event
	late   []Attr
	ended  bool
}

// Event is a point annotation inside a span (a retry, a degradation, a
// correction attempt).
type Event struct {
	Name  string
	At    time.Duration // offset from the tracer's start
	Attrs []Attr
}

// Child opens a sub-span. Nil-safe: a nil receiver returns nil.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, name, attrs)
}

// ChildDetail is Child gated on the tracer's Detailed() flag: it returns a
// real span only when a sink is attached, and nil — a free no-op — on the
// clean path. Probe- and vote-level spans use this so the default tracer
// stays within its overhead budget.
func (s *Span) ChildDetail(name string, attrs ...Attr) *Span {
	if s == nil || !s.tr.Detailed() {
		return nil
	}
	return s.tr.newSpan(s, name, attrs)
}

// Tracer returns the span's tracer (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetBreakdown makes s the rollup anchor: when a descendant span labelled
// with Proc(p) ends, its duration and query count are added to bd under p.
// Ending s then emits a summary record (the Breakdown's snapshot) to the
// sink, which `dnnlock trace -check` verifies against the span rollup.
func (s *Span) SetBreakdown(bd *metrics.Breakdown) {
	if s == nil {
		return
	}
	s.bd = bd
}

// AddQueries adds n to the span's oracle-query counter. Nil-safe, atomic.
func (s *Span) AddQueries(n int64) {
	if s == nil {
		return
	}
	s.queries.Add(n)
}

// AddRounds adds n to the span's oracle round-trip counter. Nil-safe,
// atomic. Together with AddQueries this makes *Span satisfy
// oracle.Counter.
func (s *Span) AddRounds(n int64) {
	if s == nil {
		return
	}
	s.rounds.Add(n)
}

// AddSimNS adds n nanoseconds of simulated channel time — the virtual
// clock's advance while this span's oracle traffic was in flight on a
// farm-simulated transport. Nil-safe, atomic. Spans of runs against a
// direct oracle never receive any and export no sim field.
func (s *Span) AddSimNS(n int64) {
	if s == nil {
		return
	}
	s.simNS.Add(n)
}

// SimNS returns the span's simulated channel time in nanoseconds (0 for
// nil).
func (s *Span) SimNS() int64 {
	if s == nil {
		return 0
	}
	return s.simNS.Load()
}

// AddRetry counts one transient-failure retry. Nil-safe, atomic.
func (s *Span) AddRetry() {
	if s == nil {
		return
	}
	s.retries.Add(1)
}

// Queries returns the span's query counter (0 for nil).
func (s *Span) Queries() int64 {
	if s == nil {
		return 0
	}
	return s.queries.Load()
}

// Rounds returns the span's oracle round-trip counter (0 for nil).
func (s *Span) Rounds() int64 {
	if s == nil {
		return 0
	}
	return s.rounds.Load()
}

// Event records a point annotation. Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Name: name, At: time.Since(s.tr.start), Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Annotate attaches attributes after span creation (an outcome, a final
// loss). Nil-safe.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.late = append(s.late, attrs...)
	s.mu.Unlock()
}

// End closes the span: it stamps the duration, rolls a procedure-labelled
// span up into the nearest ancestor Breakdown, and exports the record (plus
// a summary record if s anchors a Breakdown) to the sink. End is idempotent
// and nil-safe.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.late = append(s.late, attrs...)
	// Snapshot the mutable slices under the lock: export runs after release,
	// and a (misused) concurrent Event must not race the sink writer.
	events, late := s.events, s.late
	s.mu.Unlock()

	if s.proc != "" {
		for p := s.parent; p != nil; p = p.parent {
			if p.bd != nil {
				p.bd.Add(s.proc, dur)
				p.bd.AddQueries(s.proc, s.queries.Load())
				p.bd.AddRounds(s.proc, s.rounds.Load())
				if sim := s.simNS.Load(); sim != 0 {
					p.bd.AddSim(s.proc, time.Duration(sim))
				}
				break
			}
		}
	}
	s.tr.export(s, dur, events, late)
}

const procKey = "proc"

// Attr is one key/value annotation. Values are restricted to JSON-friendly
// scalars by the constructors below.
type Attr struct {
	Key string
	Val any
}

// String makes a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int makes an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: int64(v)} }

// Int64 makes an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// Float makes a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool makes a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// Proc labels a span as one of the Figure 3 procedures; when the span ends,
// its duration, query count, and round count roll up into the nearest
// ancestor span's Breakdown under this procedure.
func Proc(p metrics.Procedure) Attr { return Attr{Key: procKey, Val: string(p)} }
