package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At after Set = %v", m.At(1, 2))
	}
	m.SetRow(0, []float64{1, 2, 3})
	if got := m.Row(0); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Row = %v", got)
	}
	m.SetCol(1, []float64{8, 9})
	if m.At(0, 1) != 8 || m.At(1, 1) != 9 {
		t.Fatalf("SetCol failed: %v", m)
	}
	if got := m.Col(1); got[0] != 8 || got[1] != 9 {
		t.Fatalf("Col = %v", got)
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !Equal(id, d, 0) {
		t.Fatalf("Identity != Diag(ones): %v vs %v", id, d)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := randMat(rng, n, n)
		return Equal(MatMul(m, Identity(n)), m, 1e-12) &&
			Equal(MatMul(Identity(n), m), m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s, u := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := randMat(r, p, q), randMat(r, q, s), randMat(r, s, u)
		return Equal(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMat(r, 1+r.Intn(7), 1+r.Intn(7))
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeProductRule(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := randMat(r, p, q), randMat(r, q, s)
		return Equal(MatMul(a, b).T(), MatMul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 5, 4)
	x := randVec(rng, 4)
	got := MatVec(a, x)
	want := MatMul(a, FromSlice(4, 1, x))
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, v, want.At(i, 0))
		}
	}
}

func TestMatTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 5, 4)
	x := randVec(rng, 5)
	got := MatTVec(a, x)
	want := MatVec(a.T(), x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MatTVec mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAddSubScaleHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !Equal(got, FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); !Equal(got, FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got := Hadamard(a, b); !Equal(got, FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("Hadamard = %v", got)
	}
	c := a.Clone()
	c.AddInPlace(b)
	if !Equal(c, Add(a, b), 0) {
		t.Fatal("AddInPlace mismatch")
	}
	c = a.Clone()
	c.ScaleInPlace(3)
	if !Equal(c, a.Scale(3), 0) {
		t.Fatal("ScaleInPlace mismatch")
	}
}

func TestMaskRows(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	m.MaskRows([]bool{true, false, true})
	want := FromSlice(3, 2, []float64{1, 2, 0, 0, 5, 6})
	if !Equal(m, want, 0) {
		t.Fatalf("MaskRows = %v", m)
	}
}

func TestNormsAndEqual(t *testing.T) {
	m := FromSlice(1, 3, []float64{3, -4, 0})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.FrobNorm()-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v", m.FrobNorm())
	}
	if Equal(m, New(2, 2), 1) {
		t.Fatal("Equal should reject shape mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	c := New(1, 2)
	c.CopyFrom(a)
	if !Equal(a, c, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestZero(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	m.Zero()
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}
