// Piracy walkthrough: the end-to-end IP-protection story the paper's
// introduction motivates, and its defeat.
//
//  1. A vendor trains an HPNN-locked classifier: the model weights are
//     published (cloud distribution), the key lives in tamper-proof
//     hardware, and only licensed devices compute correctly.
//  2. License enforcement works: with random wrong keys the model's
//     accuracy collapses (Table 1's "baseline accuracy" column).
//  3. A malicious licensee runs the DNN decryption attack against their
//     own device and recovers the exact key — the model is now pirated and
//     can be redistributed or used to mount adversarial attacks.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dnnlock/internal/core"
	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
	"dnnlock/internal/rot"
	"dnnlock/internal/train"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// --- Vendor side -----------------------------------------------------
	// An MLP makes the license enforcement visible: the paper's Table 1
	// shows wrong-key accuracy collapsing hardest for MLPs (7.5–27.6% on
	// MNIST), while convolutional models degrade more gracefully.
	fmt.Println("== vendor: train a locked model ==")
	ds := dataset.Custom(1000, 3, 4, 1, 4, 5)
	trainSet, testSet := ds.Split(0.8)
	net := models.TinyMLP(rng)
	locked, secret := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 10, Rng: rng})
	res := train.Fit(net, trainSet.X, trainSet.Y, testSet.X, testSet.Y, train.Config{
		Epochs: 40, BatchSize: 16, Optimizer: train.NewAdam(0.02), Seed: 1,
		TargetAccuracy: 0.97,
	})
	fmt.Printf("licensed accuracy (correct key): %.1f%%\n", 100*res.TestAccuracy)

	// The device is provisioned once; the key never leaves it.
	device := rot.Provision("customer-npu-0042", secret, []byte("vendor-attestation-secret"))
	if err := device.Bind(locked); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The vendor can verify it is talking to a genuine device.
	quote := device.Attest([]byte("nonce-1"), 1)
	fmt.Printf("device attestation valid: %v\n",
		rot.VerifyAttestation("customer-npu-0042", []byte("vendor-attestation-secret"), []byte("nonce-1"), 1, quote))

	// --- License enforcement ----------------------------------------------
	fmt.Println("\n== unlicensed use: wrong keys cripple the model ==")
	for trial := 0; trial < 3; trial++ {
		wrong := hpnn.RandomKey(len(secret), rng)
		acc := train.Evaluate(locked.Apply(wrong), testSet.X, testSet.Y)
		fmt.Printf("random wrong key %s: accuracy %.1f%%\n", wrong, 100*acc)
	}

	// --- Adversary side ----------------------------------------------------
	fmt.Println("\n== malicious licensee: extract the key from the device ==")
	orc := oracle.FromDevice(device)
	cfg := core.DefaultConfig()
	cfg.Seed = 5
	result, err := core.Run(locked.WhiteBox(), locked.Spec, orc, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stolen := locked.Apply(result.Key)
	fmt.Printf("recovered key %s (fidelity %.0f%%) with %d queries in %s\n",
		result.Key, 100*result.Key.Fidelity(secret), result.Queries, result.Time.Round(1000000))
	fmt.Printf("pirated model accuracy: %.1f%% (licensed: %.1f%%)\n",
		100*train.Evaluate(stolen, testSet.X, testSet.Y), 100*res.TestAccuracy)
	fmt.Println("the pirated copy runs on any hardware — the license is void.")
}
