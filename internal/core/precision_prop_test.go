package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// TestDecryptionUnchangedByPrecision is the acceptance property of the
// float32 speed tier (DESIGN.md §13): the full Algorithm 2 attack must
// recover the identical key with the identical oracle query count whether
// the learning attack trains in float64 or float32, across every fuzzed
// architecture family of fuzzedEquivNets. The training trajectory may
// drift with precision; the attacker-observable outputs may not — the
// algebraic procedures are precision-independent by construction, the
// query schedule consumes the rng identically on both tiers, and the soft
// coefficients harden to the same signs.
func TestDecryptionUnchangedByPrecision(t *testing.T) {
	seedRng := rand.New(rand.NewSource(703))
	for bi, build := range fuzzedEquivNets(seedRng) {
		rng := rand.New(rand.NewSource(int64(900 + bi)))
		net := build(rng)
		lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})

		run := func(p Precision) *Result {
			cfg := DefaultConfig()
			cfg.Seed = 11
			cfg.TrainPrecision = p
			res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		exact := run(Float64)
		fast := run(Float32)
		if exact.Key.Fidelity(key) != 1 {
			t.Fatalf("net %d: float64 attack fidelity %.3f", bi, exact.Key.Fidelity(key))
		}
		if fast.Key.Fidelity(key) != 1 {
			t.Fatalf("net %d: float32 attack fidelity %.3f", bi, fast.Key.Fidelity(key))
		}
		for i := range exact.Key {
			if exact.Key[i] != fast.Key[i] {
				t.Fatalf("net %d: key bit %d differs between precisions", bi, i)
			}
		}
		if exact.Queries != fast.Queries {
			t.Fatalf("net %d: query counts differ: float64 %d vs float32 %d",
				bi, exact.Queries, fast.Queries)
		}
	}
}

// TestMonolithicUnchangedByPrecision covers the §4.3 baseline the same
// way: same hardened key, same query count at either training precision.
func TestMonolithicUnchangedByPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	net := models.TinyLeNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 8, Rng: rng})

	run := func(p Precision) *MonolithicReport {
		cfg := DefaultConfig()
		cfg.Seed = 12
		cfg.LearnEpochs = 60
		cfg.TrainPrecision = p
		rep, err := Monolithic(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	exact := run(Float64)
	fast := run(Float32)
	for i := range exact.Key {
		if exact.Key[i] != fast.Key[i] {
			t.Fatalf("key bit %d differs between precisions", i)
		}
	}
	if exact.Queries != fast.Queries {
		t.Fatalf("query counts differ: float64 %d vs float32 %d", exact.Queries, fast.Queries)
	}
}
