package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// forceParallel drops the shard-size floor so even tiny fuzzed matrices take
// the pool path, and restores the previous floor and width on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	oldFlops := minShardFlops
	oldWidth := Parallelism()
	minShardFlops = 1
	t.Cleanup(func() {
		minShardFlops = oldFlops
		SetParallelism(oldWidth)
	})
}

// sprinkledMat fills a matrix with normals, exact zeros (probability ~1/3),
// and the occasional negative zero, so the kernels' zero-skip branches are
// exercised and signed-zero reproducibility is observable.
func sprinkledMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		switch rng.Intn(6) {
		case 0, 1:
			m.Data[i] = 0
		case 2:
			m.Data[i] = math.Copysign(0, -1)
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// bitsEqual compares element-wise at the bit level, so +0 vs -0 and NaN
// payloads count as differences.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// fuzzShapes covers the degenerate corners (empty, single row/column, inner
// dimension zero) plus random non-square shapes.
func fuzzShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{0, 3, 4}, {3, 0, 4}, {3, 4, 0},
		{1, 7, 5}, {7, 1, 5}, {7, 5, 1},
		{4, 4, 4}, {5, 9, 3},
	}
	for i := 0; i < 24; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(23), 1 + rng.Intn(23), 1 + rng.Intn(23)})
	}
	return shapes
}

// widthsUnderTest returns the fan-out widths the determinism property is
// checked at; NumCPU is included even when it collides with 2 or 4.
func widthsUnderTest() []int {
	return []int{2, 4, runtime.NumCPU()}
}

// TestParallelMatMulBitIdentical is the central determinism property: for
// fuzzed shapes, every parallel width reproduces the serial result
// bit-for-bit, for both the overwrite and the accumulate kernels.
func TestParallelMatMulBitIdentical(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(1))
	for _, sh := range fuzzShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := sprinkledMat(rng, m, k)
		b := sprinkledMat(rng, k, n)
		acc := sprinkledMat(rng, m, n)

		SetParallelism(1)
		serial := New(m, n)
		MatMulInto(serial, a, b)
		serialAcc := acc.Clone()
		MatMulAddInto(serialAcc, a, b)

		for _, p := range widthsUnderTest() {
			SetParallelism(p)
			got := New(m, n)
			MatMulInto(got, a, b)
			if !bitsEqual(got.Data, serial.Data) {
				t.Fatalf("MatMulInto %dx%d·%dx%d: P=%d differs from serial", m, k, k, n, p)
			}
			gotAcc := acc.Clone()
			MatMulAddInto(gotAcc, a, b)
			if !bitsEqual(gotAcc.Data, serialAcc.Data) {
				t.Fatalf("MatMulAddInto %dx%d·%dx%d: P=%d differs from serial", m, k, k, n, p)
			}
		}
	}
}

// TestParallelABTATBBitIdentical checks the same property for the
// transpose-free kernels.
func TestParallelABTATBBitIdentical(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(2))
	for _, sh := range fuzzShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := sprinkledMat(rng, m, k)  // ABT: (m×k)·(n×k)ᵀ
		bt := sprinkledMat(rng, n, k) // ATB uses aT (k×m) below
		at := sprinkledMat(rng, k, m)
		b := sprinkledMat(rng, k, n)

		SetParallelism(1)
		serialABT := New(m, n)
		MatMulABTInto(serialABT, a, bt)
		serialATB := New(m, n)
		MatMulATBInto(serialATB, at, b)

		for _, p := range widthsUnderTest() {
			SetParallelism(p)
			gotABT := New(m, n)
			MatMulABTInto(gotABT, a, bt)
			if !bitsEqual(gotABT.Data, serialABT.Data) {
				t.Fatalf("MatMulABTInto %dx%d·(%dx%d)ᵀ: P=%d differs from serial", m, k, n, k, p)
			}
			gotATB := New(m, n)
			MatMulATBInto(gotATB, at, b)
			if !bitsEqual(gotATB.Data, serialATB.Data) {
				t.Fatalf("MatMulATBInto (%dx%d)ᵀ·%dx%d: P=%d differs from serial", k, m, k, n, p)
			}
		}
	}
}

// TestABTMatchesMatMulOfTranspose pins the transpose-free kernels to the
// reference product with a materialized transpose, bitwise: both fix the same
// per-element accumulation order and the same left-operand zero skip.
func TestABTMatchesMatMulOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range fuzzShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := sprinkledMat(rng, m, k)
		b := sprinkledMat(rng, n, k)
		want := MatMul(a, b.T())
		got := MatMulABT(a, b)
		if !bitsEqual(got.Data, want.Data) {
			t.Fatalf("MatMulABT(%dx%d, %dx%d) != MatMul(a, b.T())", m, k, n, k)
		}

		at := sprinkledMat(rng, k, m)
		bb := sprinkledMat(rng, k, n)
		want = MatMul(at.T(), bb)
		got = MatMulATB(at, bb)
		if !bitsEqual(got.Data, want.Data) {
			t.Fatalf("MatMulATB(%dx%d, %dx%d) != MatMul(a.T(), b)", k, m, k, n)
		}
	}
}

// TestAddIntoAccumulates verifies the accumulate kernels add the product on
// top of the existing destination in the same per-term order as a guarded
// axpy over the prefilled buffer.
func TestAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, k, n := 6, 11, 9
	a := sprinkledMat(rng, m, k)
	b := sprinkledMat(rng, k, n)
	dst := sprinkledMat(rng, m, n)

	want := dst.Clone()
	for i := 0; i < m; i++ {
		wr := want.Row(i)
		ar := a.Row(i)
		for kk, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(kk)
			for j := range wr {
				wr[j] += av * br[j]
			}
		}
	}
	got := dst.Clone()
	MatMulAddInto(got, a, b)
	if !bitsEqual(got.Data, want.Data) {
		t.Fatal("MatMulAddInto differs from reference accumulation")
	}

	wantABT := dst.Clone()
	bt := sprinkledMat(rng, n, k)
	for i := 0; i < m; i++ {
		ar := a.Row(i)
		wr := wantABT.Row(i)
		for j := 0; j < n; j++ {
			br := bt.Row(j)
			s := 0.0
			for kk, av := range ar {
				if av == 0 {
					continue
				}
				s += av * br[kk]
			}
			wr[j] += s
		}
	}
	gotABT := dst.Clone()
	MatMulABTAddInto(gotABT, a, bt)
	if !bitsEqual(gotABT.Data, wantABT.Data) {
		t.Fatal("MatMulABTAddInto differs from reference accumulation")
	}

	at := sprinkledMat(rng, k, m)
	bb := sprinkledMat(rng, k, n)
	dst2 := sprinkledMat(rng, m, n)
	wantATB := dst2.Clone()
	for kk := 0; kk < k; kk++ {
		ar := at.Row(kk)
		br := bb.Row(kk)
		for i := 0; i < m; i++ {
			if av := ar[i]; av != 0 {
				wr := wantATB.Row(i)
				for j := range br {
					wr[j] += av * br[j]
				}
			}
		}
	}
	gotATB := dst2.Clone()
	MatMulATBAddInto(gotATB, at, bb)
	if !bitsEqual(gotATB.Data, wantATB.Data) {
		t.Fatal("MatMulATBAddInto differs from reference accumulation")
	}
}

// TestParallelMatVecBitIdentical checks the sharded matrix-vector product.
func TestParallelMatVecBitIdentical(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(5))
	for _, rc := range [][2]int{{0, 4}, {1, 9}, {9, 1}, {17, 13}, {64, 33}} {
		a := sprinkledMat(rng, rc[0], rc[1])
		x := make([]float64, rc[1])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		SetParallelism(1)
		serial := MatVec(a, x)
		for _, p := range widthsUnderTest() {
			SetParallelism(p)
			got := MatVec(a, x)
			if !bitsEqual(got, serial) {
				t.Fatalf("MatVec %dx%d: P=%d differs from serial", rc[0], rc[1], p)
			}
		}
	}
}

// TestKernelShapePanics pins the shape checks of the transpose-free kernels.
func TestKernelShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected shape panic", name)
			}
		}()
		f()
	}
	expectPanic("ABT inner", func() { MatMulABT(New(2, 3), New(4, 5)) })
	expectPanic("ABT dst", func() { MatMulABTInto(New(9, 9), New(2, 3), New(4, 3)) })
	expectPanic("ATB inner", func() { MatMulATB(New(2, 3), New(4, 5)) })
	expectPanic("ATB dst", func() { MatMulATBInto(New(9, 9), New(2, 3), New(2, 5)) })
}

// TestColInto pins the allocation-free column gather.
func TestColInto(t *testing.T) {
	m := New(3, 2)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	got := m.ColInto(dst, 1)
	if &got[0] != &dst[0] {
		t.Fatal("ColInto must fill and return dst")
	}
	if got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("ColInto = %v", got)
	}
	if col := m.Col(0); col[0] != 1 || col[1] != 3 || col[2] != 5 {
		t.Fatalf("Col = %v", col)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ColInto with short dst must panic")
		}
	}()
	m.ColInto(make([]float64, 2), 0)
}

// TestDefaultParallelism pins the DNNLOCK_PROCS resolution rules.
func TestDefaultParallelism(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct {
		env  string
		want int
	}{
		{"", ncpu}, {"garbage", ncpu}, {"0", ncpu}, {"-3", ncpu},
		{"1", 1}, {"7", 7},
	}
	for _, c := range cases {
		if got := defaultParallelism(c.env); got != c.want {
			t.Errorf("defaultParallelism(%q) = %d, want %d", c.env, got, c.want)
		}
	}
}

// TestSetParallelismReset verifies n <= 0 resets to NumCPU and the getter
// round-trips.
func TestSetParallelismReset(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != runtime.NumCPU() {
		t.Fatalf("Parallelism() = %d after reset, want NumCPU", got)
	}
}

// TestWorkspacePoolRoundTrip checks the pooled buffers resize correctly and
// tolerate nil/empty puts.
func TestWorkspacePoolRoundTrip(t *testing.T) {
	m := GetMatrix(4, 5)
	if m.Rows != 4 || m.Cols != 5 || len(m.Data) != 20 {
		t.Fatalf("GetMatrix shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	PutMatrix(m, nil)
	z := GetMatrixZero(2, 3)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetMatrixZero returned dirty buffer")
		}
	}
	PutMatrix(z)
	v := GetVec(7)
	if len(v) != 7 {
		t.Fatalf("GetVec len = %d", len(v))
	}
	PutVec(v)
	big := GetVec(1024)
	if len(big) != 1024 {
		t.Fatalf("GetVec regrow len = %d", len(big))
	}
	PutVec(big)
}
