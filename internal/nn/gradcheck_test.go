package nn

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

// numericalParamGrad perturbs one scalar parameter and measures the change
// in a scalar loss L = Σ out∘coef over a batch.
func numericalParamGrad(net *Network, x, coef *tensor.Matrix, p *Param, idx int) float64 {
	const h = 1e-5
	orig := p.W.Data[idx]
	p.W.Data[idx] = orig + h
	lp := scalarLoss(net.ForwardBatch(x), coef)
	p.W.Data[idx] = orig - h
	lm := scalarLoss(net.ForwardBatch(x), coef)
	p.W.Data[idx] = orig
	return (lp - lm) / (2 * h)
}

func scalarLoss(out, coef *tensor.Matrix) float64 {
	s := 0.0
	for i, v := range out.Data {
		s += v * coef.Data[i]
	}
	return s
}

// checkGradients verifies backprop parameter and input gradients against
// central finite differences for the given network and batch.
func checkGradients(t *testing.T, net *Network, x *tensor.Matrix, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := net.TrainForward(x)
	coef := tensor.New(out.Rows, out.Cols)
	for i := range coef.Data {
		coef.Data[i] = rng.NormFloat64()
	}
	net.ZeroGrad()
	dx := net.TrainBackward(coef.Clone())

	for _, p := range net.Params() {
		n := len(p.W.Data)
		// Check a subset of indices for large parameters.
		step := 1
		if n > 40 {
			step = n / 40
		}
		for idx := 0; idx < n; idx += step {
			num := numericalParamGrad(net, x, coef, p, idx)
			got := p.G.Data[idx]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: backprop %.8f vs numeric %.8f", p.Name, idx, got, num)
			}
		}
	}
	// Input gradient check on a few coordinates.
	const h = 1e-5
	for c := 0; c < x.Cols; c += 1 + x.Cols/20 {
		orig := x.At(0, c)
		x.Set(0, c, orig+h)
		lp := scalarLoss(net.ForwardBatch(x), coef)
		x.Set(0, c, orig-h)
		lm := scalarLoss(net.ForwardBatch(x), coef)
		x.Set(0, c, orig)
		num := (lp - lm) / (2 * h)
		got := dx.At(0, c)
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad [0,%d]: backprop %.8f vs numeric %.8f", c, got, num)
		}
	}
}

func randBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGradDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense(5, 4).InitHe(rng), NewReLU(4), NewDense(4, 3).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 3, 5), 1e-4)
}

func TestGradFlipHard(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewFlip(4)
	f.SetBit(1, true)
	f.SetBit(3, true)
	net := NewNetwork(NewDense(5, 4).InitHe(rng), f, NewReLU(4), NewDense(4, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 3, 5), 1e-4)
}

func TestGradFlipSoftGated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := NewFlip(4)
	f.SetBit(0, true)
	p := f.Soften([]int{1, 2}, true)
	p.W.Data[0], p.W.Data[1] = 0.4, -0.7
	net := NewNetwork(NewDense(5, 4).InitHe(rng), f, NewReLU(4), NewDense(4, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 4, 5), 1e-4)
}

func TestGradFlipSoftUngated(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := NewFlip(5)
	p := f.Soften([]int{0, 3}, false)
	p.W.Data[0], p.W.Data[1] = -0.2, 0.9
	body := []Layer{NewDense(5, 5).InitHe(rng), f}
	net := NewNetwork(NewResidual(body, nil), NewReLU(5), NewDense(5, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 4, 5), 1e-4)
}

func TestGradConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D(2, 6, 6, 3, 3, 1, 1).InitHe(rng)
	net := NewNetwork(conv, NewReLU(conv.OutSize()), NewDense(conv.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, conv.InSize()), 1e-4)
}

func TestGradConvStridePad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D(1, 7, 7, 2, 3, 2, 0).InitHe(rng)
	net := NewNetwork(conv, NewDense(conv.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, conv.InSize()), 1e-4)
}

func TestGradMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pool := NewMaxPool2D(2, 4, 4, 2, 2)
	net := NewNetwork(pool, NewDense(pool.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, pool.InSize()), 1e-4)
}

func TestGradAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pool := NewAvgPool2D(2, 6, 6, 2, 2)
	net := NewNetwork(pool, NewReLU(pool.OutSize()), NewDense(pool.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, pool.InSize()), 1e-4)
}

func TestGradGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := NewGlobalAvgPool(3, 4, 4)
	net := NewNetwork(pool, NewDense(3, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, pool.InSize()), 1e-4)
}

func TestGradResidualIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	body := []Layer{NewDense(6, 6).InitHe(rng), NewReLU(6), NewDense(6, 6).InitHe(rng)}
	res := NewResidual(body, nil)
	net := NewNetwork(res, NewReLU(6), NewDense(6, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 3, 6), 1e-4)
}

func TestGradResidualProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	body := []Layer{NewDense(5, 7).InitHe(rng), NewReLU(7)}
	short := []Layer{NewDense(5, 7).InitHe(rng)}
	net := NewNetwork(NewResidual(body, short), NewDense(7, 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 3, 5), 1e-4)
}

func TestGradTokenDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	td := NewTokenDense(3, 4, 5).InitHe(rng)
	net := NewNetwork(td, NewReLU(td.OutSize()), NewDense(td.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, td.InSize()), 1e-4)
}

func TestGradAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attn := NewAttentionReLU(4, 5, 3).InitXavier(rng)
	net := NewNetwork(attn, NewDense(attn.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, attn.InSize()), 1e-3)
}

func TestGradPatchEmbed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pe := NewPatchEmbed(2, 4, 4, 2, 5).InitXavier(rng)
	net := NewNetwork(pe, NewDense(pe.OutSize(), 2).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, pe.InSize()), 1e-4)
}

func TestGradTransformerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const T, D, Dh, Dm = 4, 6, 4, 8
	attn := NewResidual([]Layer{NewAttentionReLU(T, D, Dh).InitXavier(rng)}, nil)
	f := NewFlip(T * Dm)
	f.SetBit(2, true)
	mlp := NewResidual([]Layer{
		NewTokenDense(T, D, Dm).InitHe(rng),
		f,
		NewReLU(T * Dm),
		NewTokenDense(T, Dm, D).InitHe(rng),
	}, nil)
	net := NewNetwork(attn, mlp, NewMeanTokens(T, D), NewDense(D, 3).InitHe(rng))
	checkGradients(t, net, randBatch(rng, 2, T*D), 1e-3)
}
