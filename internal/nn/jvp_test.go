package nn

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

// fdJacobian approximates dF/dx at x by central differences.
func fdJacobian(f func([]float64) []float64, x []float64, h float64) *tensor.Matrix {
	y0 := f(x)
	j := tensor.New(len(y0), len(x))
	xp := tensor.VecClone(x)
	for c := range x {
		xp[c] = x[c] + h
		yp := f(xp)
		xp[c] = x[c] - h
		ym := f(xp)
		xp[c] = x[c]
		for r := range y0 {
			j.Set(r, c, (yp[r]-ym[r])/(2*h))
		}
	}
	return j
}

// checkOutputJVP compares the analytic output Jacobian with finite
// differences at a generic point.
func checkOutputJVP(t *testing.T, net *Network, x []float64, tol float64) {
	t.Helper()
	y, j := net.OutputJacobian(x)
	yRef := net.Forward(x)
	for i := range y {
		if math.Abs(y[i]-yRef[i]) > 1e-10 {
			t.Fatalf("JVP value path differs from Forward at %d: %v vs %v", i, y[i], yRef[i])
		}
	}
	jfd := fdJacobian(net.Forward, x, 1e-5)
	if !tensor.Equal(j, jfd, tol) {
		t.Fatalf("analytic Jacobian differs from finite differences:\n%v\nvs\n%v", j, jfd)
	}
}

func TestJVPDenseReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(NewDense(6, 5).InitHe(rng), NewReLU(5), NewDense(5, 3).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, 6).Row(0), 1e-5)
}

func TestJVPConvPool(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	conv := NewConv2D(1, 8, 8, 3, 3, 1, 0).InitHe(rng)
	pool := NewMaxPool2D(3, conv.OutH, conv.OutW, 2, 2)
	net := NewNetwork(conv, NewReLU(conv.OutSize()), pool, NewDense(pool.OutSize(), 2).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, conv.InSize()).Row(0), 1e-5)
}

func TestJVPAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	conv := NewConv2D(1, 8, 8, 2, 3, 1, 1).InitHe(rng)
	pool := NewAvgPool2D(2, 8, 8, 2, 2)
	net := NewNetwork(conv, NewReLU(conv.OutSize()), pool, NewDense(pool.OutSize(), 3).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, conv.InSize()).Row(0), 1e-5)
}

func TestJVPResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	body := []Layer{NewDense(5, 5).InitHe(rng), NewReLU(5), NewDense(5, 5).InitHe(rng)}
	net := NewNetwork(NewResidual(body, nil), NewReLU(5), NewDense(5, 2).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, 5).Row(0), 1e-5)
}

func TestJVPAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	attn := NewAttentionReLU(3, 4, 3).InitXavier(rng)
	net := NewNetwork(attn, NewDense(attn.OutSize(), 2).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, attn.InSize()).Row(0), 1e-4)
}

func TestJVPPatchEmbedTransformer(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pe := NewPatchEmbed(1, 4, 4, 2, 5).InitXavier(rng)
	attn := NewResidual([]Layer{NewAttentionReLU(pe.T, 5, 4).InitXavier(rng)}, nil)
	net := NewNetwork(pe, attn, NewMeanTokens(pe.T, 5), NewDense(5, 2).InitHe(rng))
	checkOutputJVP(t, net, randBatch(rng, 1, pe.InSize()).Row(0), 1e-4)
}

func TestJVPFlipAndPreActJacobian(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	f1 := NewFlip(5)
	f1.SetBit(2, true)
	f2 := NewFlip(4)
	f2.SetBit(0, true)
	d1 := NewDense(6, 5).InitHe(rng)
	d2 := NewDense(5, 4).InitHe(rng)
	net := NewNetwork(d1, f1, NewReLU(5), d2, f2, NewReLU(4), NewDense(4, 3).InitHe(rng))
	x := randBatch(rng, 1, 6).Row(0)

	// Site 0 pre-activation Jacobian should equal d1's weights exactly.
	u, j := net.PreActJacobian(x, 0)
	if !tensor.Equal(j, d1.W.W, 1e-12) {
		t.Fatal("site-0 Jacobian should be the first weight matrix")
	}
	want := d1.Forward(x, nil)
	for i := range u {
		if math.Abs(u[i]-want[i]) > 1e-12 {
			t.Fatalf("site-0 pre-activation mismatch at %d", i)
		}
	}

	// Site 1 Jacobian against finite differences of the unsigned pre-act.
	u1, j1 := net.PreActJacobian(x, 1)
	fd := fdJacobian(func(xx []float64) []float64 {
		return net.ForwardTrace(xx).Pre[1]
	}, x, 1e-6)
	if !tensor.Equal(j1, fd, 1e-4) {
		t.Fatalf("site-1 Jacobian mismatch:\n%v\nvs\n%v", j1, fd)
	}
	tr := net.ForwardTrace(x)
	for i := range u1 {
		if math.Abs(u1[i]-tr.Pre[1][i]) > 1e-12 {
			t.Fatal("site-1 pre-activation mismatch")
		}
	}
}

func TestOutputJacobianMatchesProductMatrixOnMLP(t *testing.T) {
	// For a pure MLP within a linear region, dy/dx must equal the chain of
	// masked weight matrices (paper Formulas 2–3 extended to the output).
	rng := rand.New(rand.NewSource(27))
	d1 := NewDense(4, 6).InitHe(rng)
	d2 := NewDense(6, 5).InitHe(rng)
	d3 := NewDense(5, 3).InitHe(rng)
	net := NewNetwork(d1, NewReLU(6), d2, NewReLU(5), d3)
	x := randBatch(rng, 1, 4).Row(0)

	tr := net.ForwardTrace(x)
	w1 := d1.W.W.Clone().MaskRows(tr.Patterns[0])
	w2 := tensor.MatMul(d2.W.W, w1).MaskRows(tr.Patterns[1])
	want := tensor.MatMul(d3.W.W, w2)
	_, got := net.OutputJacobian(x)
	if !tensor.Equal(got, want, 1e-10) {
		t.Fatal("output Jacobian does not match the masked weight product")
	}
}
