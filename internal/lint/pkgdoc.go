package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// PkgDoc enforces the documentation contract of the observability/docs
// pass: every package under internal/ must carry a godoc package comment,
// and that comment must open with the canonical "Package <name> " form so
// `go doc` renders a sensible synopsis. Test files and external test
// packages are exempt; command packages (cmd/...) are left to their own
// "Command ..." convention.
//
// A missing comment is reported once per package, anchored at the package
// clause of its lexically first non-test file, so the finding lands
// somewhere stable and suppressible.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "every internal/ package needs a package comment starting with \"Package <name>\"",
	Run:  runPkgDoc,
}

func runPkgDoc(p *Pass) {
	path := p.Unit.Path
	if !strings.HasPrefix(path, "dnnlock/internal/") || strings.HasSuffix(path, "_test") {
		return
	}
	type clause struct {
		file *ast.File
		name string
	}
	var clauses []clause
	documented := false
	for _, f := range p.Unit.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if isTestFilename(name) {
			continue
		}
		clauses = append(clauses, clause{file: f, name: name})
		if f.Doc == nil {
			continue
		}
		documented = true
		want := "Package " + f.Name.Name + " "
		if !strings.HasPrefix(f.Doc.Text(), want) {
			p.Report(f.Name.Pos(), "package comment should start with %q", want)
		}
	}
	if documented || len(clauses) == 0 {
		return
	}
	sort.Slice(clauses, func(i, j int) bool { return clauses[i].name < clauses[j].name })
	p.Report(clauses[0].file.Name.Pos(),
		"package %s has no package comment; document what the package contributes (see DESIGN.md §12)",
		clauses[0].file.Name.Name)
}
