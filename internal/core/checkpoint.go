package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// CheckpointVersion is the wire-format version written by Checkpoint.Marshal
// and required by UnmarshalCheckpoint. Bump it on any incompatible change to
// the Checkpoint struct; old checkpoints then fail loudly instead of
// resuming into silently wrong state.
const CheckpointVersion = 1

// ErrSuspended is returned by Run / Resume when the OnCheckpoint hook asked
// the attack to stop. The checkpoint that describes the suspension point was
// already delivered to the hook before Run returned; resuming it with Resume
// continues the run bit-identically (see Checkpoint).
var ErrSuspended = errors.New("core: attack suspended at site boundary")

// Checkpoint is the complete resumable state of a decryption attack (the
// Negation-scheme Run path) captured at a site boundary — after a site's
// validation settled (or deferred, §3.7) and before the next site starts.
//
// # Wire format
//
// A checkpoint serializes to a single JSON object (Marshal /
// UnmarshalCheckpoint). Field-by-field:
//
//   - version: CheckpointVersion. Mismatches are rejected at decode time.
//   - spec_hash: FNV-1a hash of the lock spec (scheme, alpha, and every
//     protected neuron's site/index/col). Resume refuses a checkpoint whose
//     hash does not match the spec it is being resumed against — the per-bit
//     arrays below are meaningless against a different lock.
//   - seed, rng_draws: the attack RNG is a single math/rand stream seeded
//     with Config.Seed; rng_draws counts raw Source draws consumed so far.
//     Resume reconstructs the stream by re-seeding and discarding that many
//     draws, which restores the exact RNG state (each Source64 call advances
//     the generator by one step regardless of which method drew it).
//   - sites_done: how many sites of the ascending site order (orderedSites)
//     are complete. Resume continues at the next one.
//   - decided, key, confidence, origins: per-bit arrays aligned with
//     spec.Neurons. Resume replays every decided bit into a fresh white-box
//     clone (the same identity-hypothesis clone New builds), which
//     reconstructs the working network exactly: flip coefficients are the
//     only state the attack mutates, and hardening (§3.6) leaves them ±1.
//   - pending_bits, pending_sites: the not-yet-validated group carried
//     across deferred sites (mid residual block, §3.7).
//   - sites: the per-site reports accumulated so far (Result.Sites prefix).
//   - queries, rounds, wall_ns, sim_ns, degraded, bisect_rounds,
//     bisect_probes: cumulative run totals at the boundary. On resume they
//     become the base the new segment's deltas are added to, so the final
//     Result reports whole-run totals, not segment totals.
//   - proc_ns, proc_queries, proc_rounds, proc_sim_ns: the cumulative
//     per-procedure breakdown (Figure 3) keyed by procedure name. Merged
//     into the resumed Result's *ByProc maps the same way. Note
//     Result.Breakdown itself stays segment-local on a resumed run — it is
//     the rollup anchor of the new segment's trace, and `dnnlock trace
//     -check` requires summaries to equal span rollups exactly.
//
// # Resumability invariants
//
// Bit-identical resume (the property the checkpoint tests pin: same key,
// same query count, same round count as an uninterrupted run) requires that
// the oracle answer the resumed segment's queries exactly as the original
// run would have. That holds unconditionally for stateless channels (a
// clean oracle.Oracle, Quantized, LabelOnly). Noisy and Flaky decorators
// keep per-content occurrence counters, so their answers depend on query
// history: resuming against the same live oracle instance (how dnnlockd
// suspends and resumes in-process) is exact, while resuming against a
// freshly built faulty oracle replays the fault stream from zero.
// Config.ProbeCache is incompatible with checkpointing — the memo spans
// site boundaries but is not captured — and both Run and Resume reject the
// combination. Budgeted budgets are client-side state and are not carried:
// a resumed run re-arms the budget, which only ever errs permissive.
type Checkpoint struct {
	Version   int    `json:"version"`
	SpecHash  string `json:"spec_hash"`
	Seed      int64  `json:"seed"`
	RNGDraws  uint64 `json:"rng_draws"`
	SitesDone int    `json:"sites_done"`

	Decided    []bool      `json:"decided"`
	Key        []bool      `json:"key"`
	Confidence []float64   `json:"confidence"`
	Origins    []BitOrigin `json:"origins"`

	PendingBits  []int        `json:"pending_bits,omitempty"`
	PendingSites []int        `json:"pending_sites,omitempty"`
	Sites        []SiteReport `json:"sites,omitempty"`

	Queries      int64 `json:"queries"`
	Rounds       int64 `json:"rounds"`
	WallNS       int64 `json:"wall_ns"`
	SimNS        int64 `json:"sim_ns"`
	Degraded     int64 `json:"degraded"`
	BisectRounds int64 `json:"bisect_rounds"`
	BisectProbes int64 `json:"bisect_probes"`

	ProcNS      map[metrics.Procedure]int64 `json:"proc_ns,omitempty"`
	ProcQueries map[metrics.Procedure]int64 `json:"proc_queries,omitempty"`
	ProcRounds  map[metrics.Procedure]int64 `json:"proc_rounds,omitempty"`
	ProcSimNS   map[metrics.Procedure]int64 `json:"proc_sim_ns,omitempty"`
}

// Marshal serializes the checkpoint to its JSON wire format.
func (ck *Checkpoint) Marshal() ([]byte, error) {
	return json.Marshal(ck)
}

// UnmarshalCheckpoint decodes a checkpoint from its JSON wire format and
// rejects unknown versions.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// SpecHash computes the lock-spec fingerprint stored in checkpoints: FNV-1a
// over the scheme, alpha, and every protected neuron. Exported so callers
// persisting checkpoints out-of-process can index them by lock.
func SpecHash(spec hpnn.LockSpec) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(spec.Scheme))
	put(math.Float64bits(spec.Alpha))
	put(uint64(len(spec.Neurons)))
	for _, pn := range spec.Neurons {
		put(uint64(pn.Site))
		put(uint64(pn.Index))
		put(uint64(pn.Col))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// validateFor checks a checkpoint's internal consistency against the spec
// and config it is about to be resumed with.
func (ck *Checkpoint) validateFor(spec hpnn.LockSpec, cfg Config) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if got := SpecHash(spec); ck.SpecHash != got {
		return fmt.Errorf("core: checkpoint spec hash %s does not match lock spec %s", ck.SpecHash, got)
	}
	if ck.Seed != cfg.Seed {
		return fmt.Errorf("core: checkpoint seed %d does not match cfg.Seed %d (the RNG fast-forward would diverge)", ck.Seed, cfg.Seed)
	}
	n := spec.NumBits()
	if len(ck.Decided) != n || len(ck.Key) != n || len(ck.Confidence) != n || len(ck.Origins) != n {
		return fmt.Errorf("core: checkpoint bit arrays sized %d/%d/%d/%d, want %d",
			len(ck.Decided), len(ck.Key), len(ck.Confidence), len(ck.Origins), n)
	}
	if nSites := len(spec.SiteBits()); ck.SitesDone < 0 || ck.SitesDone > nSites {
		return fmt.Errorf("core: checkpoint sites_done %d out of range [0,%d]", ck.SitesDone, nSites)
	}
	return nil
}

// errProbeCacheCheckpoint rejects the one planner feature whose state a
// checkpoint cannot carry.
var errProbeCacheCheckpoint = errors.New("core: ProbeCache is incompatible with checkpointing: the probe memo spans site boundaries and is not serialized")

// Resume continues a suspended decryption attack from ck. The whiteBox,
// spec, and cfg arguments must describe the same job as the original Run
// call (the spec hash and seed are verified; the rest is the caller's
// contract — dnnlockd re-derives all three from the stored job spec), and
// orc must satisfy the resumability invariants documented on Checkpoint.
// The resumed run continues to honor cfg.OnCheckpoint, so a job may be
// suspended and resumed any number of times.
func Resume(whiteBox *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config, ck *Checkpoint) (*Result, error) {
	if spec.Scheme != hpnn.Negation {
		return nil, fmt.Errorf("core: checkpointing covers the Negation decryption attack only (variant reductions run uninterrupted)")
	}
	a := New(whiteBox, spec, orc, cfg)
	if a.cfg.ProbeCache {
		return nil, errProbeCacheCheckpoint
	}
	if err := ck.validateFor(spec, a.cfg); err != nil {
		return nil, err
	}
	return a.runFrom(a.restore(ck))
}

// resumeBase carries the prior-segment totals of a resumed run into the
// attack loop; its zero value means a fresh run.
type resumeBase struct {
	sitesDone    int
	reports      []SiteReport
	pendingBits  []int
	pendingSites []int
	rngDraws     uint64

	queries, rounds int64
	wall, sim       time.Duration

	procNS, procQueries, procRounds, procSimNS map[metrics.Procedure]int64
}

// restore replays a checkpoint into a freshly constructed attack: every
// decided bit is written back into the identity-hypothesis white box via
// setBit (reconstructing the working network exactly — flip coefficients
// are the only state the attack mutates), and the cumulative counters that
// live on the attack (degradations, bisection accounting) are re-armed so
// they keep counting from their checkpointed values.
func (a *Attack) restore(ck *Checkpoint) resumeBase {
	for i := range ck.Decided {
		if ck.Decided[i] {
			a.setBit(i, ck.Key[i], ck.Confidence[i], ck.Origins[i])
		}
	}
	a.degraded.Store(ck.Degraded)
	a.crit.rounds.Store(ck.BisectRounds)
	a.crit.probes.Store(ck.BisectProbes)
	return resumeBase{
		sitesDone:    ck.SitesDone,
		reports:      append([]SiteReport(nil), ck.Sites...),
		pendingBits:  append([]int(nil), ck.PendingBits...),
		pendingSites: append([]int(nil), ck.PendingSites...),
		rngDraws:     ck.RNGDraws,
		queries:      ck.Queries,
		rounds:       ck.Rounds,
		wall:         time.Duration(ck.WallNS),
		sim:          time.Duration(ck.SimNS),
		procNS:       ck.ProcNS,
		procQueries:  ck.ProcQueries,
		procRounds:   ck.ProcRounds,
		procSimNS:    ck.ProcSimNS,
	}
}

// snapshot captures the attack's complete resumable state at a site
// boundary. The delta arguments are this segment's oracle/wall consumption
// so far; base carries the prior segments' totals on a resumed run.
func (a *Attack) snapshot(base *resumeBase, sitesDone int, reports []SiteReport,
	pending *sitePending, draws uint64, dq, dr int64, wall, sim time.Duration) *Checkpoint {

	n := a.spec.NumBits()
	ck := &Checkpoint{
		Version:      CheckpointVersion,
		SpecHash:     SpecHash(a.spec),
		Seed:         a.cfg.Seed,
		RNGDraws:     draws,
		SitesDone:    sitesDone,
		Decided:      append([]bool(nil), a.decided...),
		Key:          make([]bool, n),
		Confidence:   append([]float64(nil), a.confidence...),
		Origins:      append([]BitOrigin(nil), a.origins...),
		PendingBits:  append([]int(nil), pending.bits...),
		PendingSites: append([]int(nil), pending.sites...),
		Sites:        append([]SiteReport(nil), reports...),
		Queries:      base.queries + dq,
		Rounds:       base.rounds + dr,
		WallNS:       int64(base.wall + wall),
		SimNS:        int64(base.sim + sim),
		Degraded:     a.degraded.Load(),
		BisectRounds: a.crit.rounds.Load(),
		BisectProbes: a.crit.probes.Load(),
	}
	for i, pn := range a.spec.Neurons {
		ck.Key[i] = a.applier.read(a.white, pn, i)
	}
	s := a.bd.Snapshot()
	ck.ProcNS = mergeProcCounts(base.procNS, durationsToNS(s.Times))
	ck.ProcQueries = mergeProcCounts(base.procQueries, s.Queries)
	ck.ProcRounds = mergeProcCounts(base.procRounds, s.Rounds)
	ck.ProcSimNS = mergeProcCounts(base.procSimNS, durationsToNS(s.Sim))
	return ck
}

// durationsToNS converts a per-procedure duration map to integer
// nanoseconds for the wire format.
func durationsToNS(in map[metrics.Procedure]time.Duration) map[metrics.Procedure]int64 {
	out := make(map[metrics.Procedure]int64, len(in))
	for p, d := range in { //lint:ignore determinism map-to-map copy; insertion order cannot affect the resulting map
		out[p] = int64(d)
	}
	return out
}

// mergeProcCounts adds the prior-segment totals to this segment's counts.
// Returns seg untouched when prior is empty (the fresh-run fast path).
func mergeProcCounts(prior, seg map[metrics.Procedure]int64) map[metrics.Procedure]int64 {
	if len(prior) == 0 {
		return seg
	}
	out := make(map[metrics.Procedure]int64, len(seg)+len(prior))
	for p, n := range seg { //lint:ignore determinism map merge; += into a map commutes, order cannot affect the result
		out[p] = n
	}
	for p, n := range prior { //lint:ignore determinism map merge; += into a map commutes, order cannot affect the result
		out[p] += n
	}
	return out
}

// mergeProcDurations is mergeProcCounts for duration-valued maps (the
// resumed Result's SimByProc).
func mergeProcDurations(priorNS map[metrics.Procedure]int64, seg map[metrics.Procedure]time.Duration) map[metrics.Procedure]time.Duration {
	if len(priorNS) == 0 {
		return seg
	}
	out := make(map[metrics.Procedure]time.Duration, len(seg)+len(priorNS))
	for p, d := range seg { //lint:ignore determinism map merge; += into a map commutes, order cannot affect the result
		out[p] = d
	}
	for p, ns := range priorNS { //lint:ignore determinism map merge; += into a map commutes, order cannot affect the result
		out[p] += time.Duration(ns)
	}
	return out
}

// countedSource is a math/rand Source64 that counts raw draws, making the
// attack's RNG state serializable as (seed, draw count). Every rand.Rand
// derivation — Float64, Perm, rejection loops in Int63n — bottoms out in
// Int63/Uint64 calls, each of which advances the underlying generator by
// exactly one step, so replaying N discards after re-seeding restores the
// stream exactly.
type countedSource struct {
	src rand.Source64
	n   uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// draws reports how many raw source draws have been consumed.
func (c *countedSource) draws() uint64 { return c.n }

// skip fast-forwards the source by n raw draws without counting them (the
// count restarts at the checkpointed value the caller is replaying to).
func (c *countedSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}
