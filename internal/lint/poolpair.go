package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the workspace-pool ownership contract (DESIGN.md §8):
// every matrix, vector, or float32 arena obtained from the pool —
// tensor.GetMatrix / GetMatrixZero / GetVec / GetArena32, and the
// pool-recycled results of oracle.QueryBatch, dataset.UniformInputs, and
// nn.Slice.PrefixForward — must be handed back with tensor.PutMatrix /
// PutVec / PutArena32 on every path through the acquiring function, or
// explicitly leave the function: returned to the caller, or stored into a
// longer-lived structure on a line annotated //lint:transfer.
//
// The analysis runs on the shared control-flow graph (cfg.go): the
// acquisition generates an obligation, releases and escapes discharge it,
// and the may-reach solver reports any return or fall-through exit an
// outstanding obligation can reach. A deferred Put still covers every exit
// (it runs whichever way the function leaves), which keeps the repo's
// conditional ownership idiom — defer inside a branch that owns the buffer
// — accepted without path enumeration.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled tensor workspaces must be released or explicitly transferred on all paths",
	Run:  runPoolPair,
}

// getFuncs maps pool-acquiring functions (package path -> names). Method
// names are matched by the defining package of the method object, so
// aliased imports and embedded forwarding resolve correctly.
var getFuncs = map[string]map[string]bool{
	"dnnlock/internal/tensor":  {"GetMatrix": true, "GetMatrixZero": true, "GetVec": true, "GetArena32": true},
	"dnnlock/internal/oracle":  {"QueryBatch": true},
	"dnnlock/internal/dataset": {"UniformInputs": true},
	"dnnlock/internal/nn":      {"PrefixForward": true},
}

var putFuncs = map[string]map[string]bool{
	"dnnlock/internal/tensor": {"PutMatrix": true, "PutVec": true, "PutArena32": true},
}

func runPoolPair(p *Pass) {
	for _, f := range p.Unit.Files {
		for _, region := range functionRegions(f) {
			analyzeRegion(p, region)
		}
	}
}

// functionRegions returns every function body in the file: declarations and
// literals, each analyzed independently.
func functionRegions(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, v.Body)
			}
		case *ast.FuncLit:
			out = append(out, v.Body)
		}
		return true
	})
	return out
}

// acquisition is one tracked pool Get inside a region.
type acquisition struct {
	call *ast.CallExpr
	name string         // display name, e.g. "tensor.GetMatrix"
	obj  types.Object   // variable holding the result; nil if discarded
	objs []types.Object // obj plus aliases
}

func analyzeRegion(p *Pass, body *ast.BlockStmt) {
	acqs := collectAcquisitions(p, body)
	if len(acqs) == 0 {
		return
	}
	g := p.cfgOf(body)
	deferred := make([]bool, len(acqs))
	for i, acq := range acqs {
		aliasClosure(p, body, acq)
		deferred[i] = p.deferredRelease(body, acq)
	}

	// Obligation i is outstanding from its acquisition until a node that
	// releases or escapes the buffer. Event collection also carries the
	// analyzer's store reports (a store into a longer-lived structure must
	// be //lint:transfer-annotated whether or not a defer later covers it).
	prob := &FlowProblem{CFG: g, Facts: len(acqs), May: true,
		Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
	hasEvent := make([]bool, len(acqs))
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for i, acq := range acqs {
				if p.nodeDischarges(n, body, acq) {
					prob.Kill[n] = append(prob.Kill[n], i)
					hasEvent[i] = true
				}
			}
		}
	}
	for i, acq := range acqs {
		blk, idx := g.FindNode(acq.call.Pos())
		if blk == nil {
			continue
		}
		n := blk.Nodes[idx]
		prob.Gen[n] = append(prob.Gen[n], i)
	}
	res := prob.Solve()

	for i, acq := range acqs {
		if deferred[i] {
			continue // a deferred Put covers every exit
		}
		if !hasEvent[i] {
			p.Report(acq.call.Pos(), "result of %s is never released: missing tensor.PutMatrix/PutVec/PutArena32, return, or //lint:transfer", acq.name)
			continue
		}
		p.reportLeakPaths(g, res, prob, i, acq)
	}
}

// reportLeakPaths reports every reachable exit — each return statement and
// the fall-through edge — that the outstanding obligation can reach.
func (p *Pass) reportLeakPaths(g *CFG, res *FlowResult, prob *FlowProblem, i int, acq *acquisition) {
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			continue
		}
		for idx, n := range blk.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			if !res.Before(blk, idx).Has(i) || killsFact(prob.Kill[n], i) {
				continue
			}
			p.Report(ret.Pos(), "%s acquired at line %d may leak on this return path: no release or transfer before it",
				acq.name, p.Fset.Position(acq.call.Pos()).Line)
		}
	}
	if g.FallsOff != nil && g.FallsOff.Reachable && res.Out[g.FallsOff].Has(i) {
		p.Report(acq.call.Pos(), "result of %s is not released on the fall-through path to the end of the function", acq.name)
	}
}

func killsFact(kills []int, i int) bool {
	for _, k := range kills {
		if k == i {
			return true
		}
	}
	return false
}

// nodeDischarges reports whether one CFG element releases or escapes the
// tracked buffer. The scan descends into nested function literals: a
// closure that releases an outer buffer (a deferred cleanup, a worker body)
// discharges the obligation at the statement that creates the closure.
// Stores into longer-lived structures are escapes too, but must carry
// //lint:transfer — the report fires here, at collection time.
func (p *Pass) nodeDischarges(n ast.Node, body *ast.BlockStmt, acq *acquisition) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch v := c.(type) {
		case *ast.CallExpr:
			if p.putLike(v) && p.mentions(v.Args, acq.objs) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if p.escapingExpr(res, acq.objs) {
					found = true
					break
				}
			}
		case *ast.SendStmt:
			if p.escapingExpr(v.Value, acq.objs) {
				p.TransferAnnotated(v.Pos()) // mark a covering //lint:transfer used
				found = true
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !p.isTracked(id, acq.objs) || i >= len(v.Lhs) {
					continue
				}
				if !p.localLHS(v.Lhs[i], body) {
					if !p.TransferAnnotated(v.Pos()) {
						p.Report(v.Pos(), "%s obtained from %s is stored outside the function without //lint:transfer",
							exprString(v.Rhs[i]), acq.name)
					}
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// deferredRelease reports whether any defer in the region (including defers
// declared inside nested closures) releases the tracked buffer; a deferred
// Put runs whichever way the function exits, so it covers every path.
func (p *Pass) deferredRelease(body *ast.BlockStmt, acq *acquisition) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && p.putLike(call) && p.mentions(call.Args, acq.objs) {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

// collectAcquisitions finds pool Gets whose statement lives directly in this
// region (not in a nested function literal, which forms its own region).
func collectAcquisitions(p *Pass, body *ast.BlockStmt) []*acquisition {
	var out []*acquisition
	walkRegion(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, hit := p.getLike(call); hit {
					p.Report(call.Pos(), "result of %s is discarded: the pooled buffer can never be released", name)
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
				// Two-result acquisition: buf, err := oracle.QueryBatch(x).
				// The pooled buffer is the first value; the error rides
				// second and is not tracked. On error the buffer is nil, but
				// the releases are nil-safe, so the ownership contract is the
				// same on every path.
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					if name, hit := p.getLike(call); hit {
						out = p.trackAssigned(out, st, call, name, st.Lhs[0])
					}
				}
				break
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.getLike(call)
				if !hit {
					continue
				}
				if len(st.Lhs) != len(st.Rhs) {
					continue // other tuple shapes hold no pooled buffer
				}
				out = p.trackAssigned(out, st, call, name, st.Lhs[i])
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				call, ok := v.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.getLike(call)
				if !hit || i >= len(st.Names) {
					continue
				}
				if obj := p.Unit.Info.Defs[st.Names[i]]; obj != nil {
					out = append(out, &acquisition{call: call, name: name, obj: obj, objs: []types.Object{obj}})
				}
			}
		}
	})
	return out
}

// trackAssigned records the acquisition held by one assignment target, or
// reports targets that can never release the buffer (blank identifier,
// direct store into a longer-lived structure without //lint:transfer).
func (p *Pass) trackAssigned(out []*acquisition, st *ast.AssignStmt, call *ast.CallExpr, name string, target ast.Expr) []*acquisition {
	switch lhs := target.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			p.Report(call.Pos(), "result of %s is assigned to _: the pooled buffer can never be released", name)
			return out
		}
		obj := p.Unit.Info.Defs[lhs]
		if obj == nil {
			obj = p.Unit.Info.Uses[lhs]
		}
		if obj != nil {
			out = append(out, &acquisition{call: call, name: name, obj: obj, objs: []types.Object{obj}})
		}
	default:
		// Stored straight into a field/element: an ownership handoff, which
		// must be declared.
		if !p.TransferAnnotated(st.Pos()) {
			p.Report(call.Pos(), "result of %s is stored outside the function without //lint:transfer", name)
		}
	}
	return out
}

// aliasClosure adds plain local aliases (w := v) of the tracked variable so
// releases through the alias count.
func aliasClosure(p *Pass, body *ast.BlockStmt, acq *acquisition) {
	for changed := true; changed; {
		changed = false
		walkRegionAll(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i, rhs := range as.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !p.isTracked(id, acq.objs) {
					continue
				}
				lid, ok := as.Lhs[i].(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				obj := p.Unit.Info.Defs[lid]
				if obj == nil {
					obj = p.Unit.Info.Uses[lid]
				}
				if obj == nil {
					continue
				}
				found := false
				for _, o := range acq.objs {
					if o == obj {
						found = true
						break
					}
				}
				if !found {
					acq.objs = append(acq.objs, obj)
					changed = true
				}
			}
		})
	}
}

// getLike reports whether call is a pool acquisition, returning its display
// name.
func (p *Pass) getLike(call *ast.CallExpr) (string, bool) {
	return p.callIn(call, getFuncs)
}

func (p *Pass) putLike(call *ast.CallExpr) bool {
	_, ok := p.callIn(call, putFuncs)
	return ok
}

func (p *Pass) callIn(call *ast.CallExpr, set map[string]map[string]bool) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := p.Unit.Info.Uses[id]
	if !ok {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	names, ok := set[fn.Pkg().Path()]
	if !ok || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// isTracked reports whether the identifier resolves to one of the tracked
// objects.
func (p *Pass) isTracked(id *ast.Ident, objs []types.Object) bool {
	obj := p.Unit.Info.Uses[id]
	if obj == nil {
		obj = p.Unit.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	for _, o := range objs {
		if o == obj {
			return true
		}
	}
	return false
}

// mentions reports whether any argument expression references a tracked
// object (including inside nested expressions, e.g. a slice or call).
func (p *Pass) mentions(args []ast.Expr, objs []types.Object) bool {
	found := false
	for _, e := range args {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.isTracked(id, objs) {
				found = true
			}
			return !found
		})
	}
	return found
}

// escapingExpr reports whether the expression hands the tracked *buffer*
// itself onward: the bare identifier, or the identifier wrapped in a
// composite literal, key-value pair, or address-of. Derived values
// (m.Rows, v[i], len(v), wrap(m)) do not transfer ownership — a function
// returning those still owes the pool a Put (or an explicit annotation).
func (p *Pass) escapingExpr(e ast.Expr, objs []types.Object) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return p.escapingExpr(v.X, objs)
	case *ast.Ident:
		return p.isTracked(v, objs)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			if p.escapingExpr(elt, objs) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return p.escapingExpr(v.Value, objs)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return p.escapingExpr(v.X, objs)
		}
	}
	return false
}

// localLHS reports whether the assignment target is a plain local variable
// of this region. Field selectors, index expressions, dereferences, and
// identifiers captured from an enclosing function all make the value
// outlive the region.
func (p *Pass) localLHS(lhs ast.Expr, body *ast.BlockStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Unit.Info.Defs[id]
	if obj == nil {
		obj = p.Unit.Info.Uses[id]
	}
	if obj == nil {
		return true // unresolved: assume local rather than guess an escape
	}
	return body.Pos() <= obj.Pos() && obj.Pos() <= body.End()
}

// walkRegion visits every node in the region, skipping nested function
// literals.
func walkRegion(body *ast.BlockStmt, fn func(ast.Node)) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		fn(n)
		walkChildren(n, visit)
	}
	for _, st := range body.List {
		visit(st)
	}
}

// walkRegionAll is walkRegion including nested function literals.
func walkRegionAll(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil {
			fn(n)
		}
		return true
	})
}

// walkChildren invokes visit on each direct child node of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "pooled value"
}
