#!/bin/sh
# bench.sh — run the paper-facing benchmarks (Table 1, Figure 3) plus the
# tensor kernel micro-benchmarks with -benchmem, and emit the parsed results
# as BENCH_<date>.json in the repo root so perf changes leave a tracked,
# diffable record.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   BENCH_PATTERN   override the -bench regexp
#   BENCH_TIME      override -benchtime (default 1x for the heavy table
#                   benches; kernels use the go default)
set -eu
cd "$(dirname "$0")/.."

# BenchmarkDecryptTracer{Off,On} ride along so the BENCH json always
# records the observability layer's overhead next to the numbers it could
# perturb (DESIGN.md §12), the planner ablations so the oracle_rounds
# trade-offs (DESIGN.md §14) stay tracked next to the default path, and
# BenchmarkFarm* so the predicted attack wall-clock on the simulated device
# farm (farm_wallclock_s, DESIGN.md §16) is gated like oracle_rounds.
PATTERN="${BENCH_PATTERN:-BenchmarkTable1|BenchmarkFigure3|BenchmarkDecryptTracer|BenchmarkFarm|BenchmarkAblation(Default|NoPlanner|Multisect4|ProbeCache)\$}"
BTIME="${BENCH_TIME:-1x}"
DATE="$(date +%Y-%m-%d)"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Metadata that makes bench_compare diffs attributable: the effective
# parallelism knobs and the Table 1 training precision (bench_test.go
# defaults to the float32 raw-speed tier; DNNLOCK_TRAIN_PRECISION=float64
# pins the exact reference tier).
MAXPROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)}"
PROCS="${DNNLOCK_PROCS:-default}"
PRECISION="${DNNLOCK_TRAIN_PRECISION:-float32}"

echo "==> go test -bench '$PATTERN' -benchmem -benchtime $BTIME ." >&2
go test -run 'XXX' -bench "$PATTERN" -benchmem -benchtime "$BTIME" "$@" . | tee "$RAW" >&2

echo "==> go test ./internal/tensor -bench . -benchmem" >&2
go test -run 'XXX' -bench . -benchmem ./internal/tensor | tee -a "$RAW" >&2

awk -v date="$DATE" -v gover="$(go version | awk '{print $3}')" \
    -v maxprocs="$MAXPROCS" -v procs="$PROCS" -v precision="$PRECISION" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, $i)
    }
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, metrics)
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpu\": \"%s\",\n", date, gover, cpu
    printf "  \"gomaxprocs\": \"%s\",\n  \"dnnlock_procs\": \"%s\",\n  \"train_precision\": \"%s\",\n", maxprocs, procs, precision
    printf "  \"results\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

# Diff against the most recent committed baseline (BENCH_COMPARE=0 skips).
if [ "${BENCH_COMPARE:-1}" != "0" ]; then
    sh scripts/bench_compare.sh "$OUT" >&2 || echo "bench_compare failed" >&2
fi
