// Package obs stubs the span surface of the real dnnlock/internal/obs for
// the spanpair golden tests: same import path, same names, no behavior.
package obs

type Attr struct{}

type Tracer struct{}

func New() *Tracer { return &Tracer{} }

func (t *Tracer) Start(name string, attrs ...Attr) *Span { return &Span{} }

type Span struct{}

func (s *Span) Child(name string, attrs ...Attr) *Span { return &Span{} }

func (s *Span) ChildDetail(name string, attrs ...Attr) *Span { return &Span{} }

func (s *Span) End(attrs ...Attr) {}

func (s *Span) Event(name string, attrs ...Attr) {}
