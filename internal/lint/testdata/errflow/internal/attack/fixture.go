// Package attack exercises the errflow analyzer: every shape that drops,
// loses, or forgets an oracle-seam error is marked, and the checked /
// propagated / deferred shapes stay silent.
package attack

import (
	"dnnlock/internal/core"
	"dnnlock/internal/oracle"
)

func sink(err error) { _ = err }

func work() {}

// Dropped outright: the error never lands anywhere.
func dropped(o *oracle.Oracle, x []float64) {
	o.Query(x) // want "error result of oracle.Query is discarded: check it or propagate it"
}

// Dropped through the blank identifier.
func blanked(o *oracle.Oracle, x []float64) []float64 {
	y, _ := o.Query(x) // want "error result of oracle.Query is assigned to _: check it or propagate it"
	return y
}

// An entry-point error is no different.
func entryDropped() {
	core.Run(8)        // want "error result of core.Run is discarded: check it or propagate it"
	core.Monolithic(8) // want "error result of core.Monolithic is discarded: check it or propagate it"
}

// One path returns before the error is ever read.
func leakOnReturn(o *oracle.Oracle, x []float64, cond bool) []float64 {
	y, err := o.Query(x)
	if cond {
		return nil // want `error from oracle.Query \(line \d+\) is not checked on this return path`
	}
	if err != nil {
		return nil
	}
	return y
}

// The second query clobbers an error nobody looked at.
func overwritten(o *oracle.Oracle, x []float64) []float64 {
	a, err := o.Query(x)
	b, err := o.Query(x) // want `error from oracle.Query \(line \d+\) is overwritten before it is checked`
	if err != nil {
		return nil
	}
	return append(a, b...)
}

// Only one branch reads the error; the other falls off the end with it
// outstanding.
func fallsOff(o *oracle.Oracle, x []float64, cond bool) { // no marker here; the report lands on the call line
	_, err := o.Query(x) // want "error from oracle.Query is never checked before the function ends"
	if cond {
		sink(err)
	}
}

// Checked on every path: clean.
func checked(o *oracle.Oracle, x []float64) []float64 {
	y, err := o.Query(x)
	if err != nil {
		return nil
	}
	return y
}

// Propagated: a return that carries the error is a read.
func propagated(o *oracle.Oracle, x []float64) ([]float64, error) {
	return o.Query(x)
}

func propagatedVar(o *oracle.Oracle, x []float64) error {
	_, err := o.Query(x)
	return err
}

// A bare return propagates the named result implicitly.
func namedResult(o *oracle.Oracle, x []float64) (err error) {
	_, err = o.Query(x)
	return
}

// A deferred closure inspecting the error covers every exit.
func deferredCheck(o *oracle.Oracle, x []float64, cond bool) {
	var err error
	defer func() {
		sink(err)
	}()
	_, err = o.Query(x)
	if cond {
		return
	}
	work()
}

// An error bound inside a closure to a captured variable is the outer
// function's obligation, and the outer function returns it: clean.
func captured(o *oracle.Oracle, x []float64, run func(func())) error {
	var err error
	run(func() {
		_, err = o.Query(x)
	})
	return err
}

// Wrapping before the check still reads the error.
func wrapped(o *oracle.Oracle, x []float64) error {
	_, err := o.Query(x)
	err = wrapErr(err)
	if err != nil {
		return err
	}
	return nil
}

func wrapErr(err error) error { return err }

// A switch on the error is a read on every arm.
func switched(o *oracle.Oracle, x []float64) int {
	_, err := o.Query(x)
	switch err {
	case nil:
		return 0
	default:
		return 1
	}
}
