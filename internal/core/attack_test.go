package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	a, _, _ := attackWithTrueKey(t, 401, 4)
	for _, workers := range []int{1, 4, 16} {
		a.cfg.Workers = workers
		var hits [37]atomic.Int64
		a.parallelFor(len(hits), 5, func(i int, rng *rand.Rand) {
			if rng == nil {
				t.Error("nil rng")
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestParallelForDeterministicRNGSeeds(t *testing.T) {
	a, _, _ := attackWithTrueKey(t, 402, 4)
	draw := func(workers int) []int64 {
		a.cfg.Workers = workers
		out := make([]int64, 20)
		a.parallelFor(len(out), 77, func(i int, rng *rand.Rand) {
			out[i] = rng.Int63()
		})
		return out
	}
	serial := draw(1)
	parallel := draw(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("per-index RNG streams must not depend on worker count")
		}
	}
}

func TestDecryptParallelWorkersMatchSerial(t *testing.T) {
	// The recovered key must be identical regardless of worker count
	// (§4.1 parallelism is an implementation detail, not a semantics
	// change).
	rng := rand.New(rand.NewSource(403))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Seed = 404
		res, err := Run(white, spec, orc, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Key.Fidelity(key) != 1 {
			t.Fatalf("workers=%d: fidelity %.3f", workers, res.Key.Fidelity(key))
		}
	}
}

func TestCurrentKeyTracksSetBit(t *testing.T) {
	a, _, _ := attackWithTrueKey(t, 405, 6)
	a.setBit(2, true, 0.5, OriginLearning)
	a.setBit(4, true, 0.9, OriginCorrection)
	key := a.CurrentKey()
	if !key[2] || !key[4] || key[0] {
		t.Fatalf("CurrentKey = %v", key)
	}
	if !a.decided[2] || a.confidence[2] != 0.5 || a.origins[4] != OriginCorrection {
		t.Fatal("bit state not recorded")
	}
	if a.Breakdown() == nil {
		t.Fatal("Breakdown accessor nil")
	}
}

func TestLowConfidenceBits(t *testing.T) {
	a, _, _ := attackWithTrueKey(t, 406, 6)
	a.setBit(0, false, 0.99, OriginAlgebraic)
	a.setBit(1, false, 0.2, OriginLearning)
	a.setBit(2, false, 0.1, OriginLearning)
	got := lowConfidenceBits(a, []int{0, 1, 2})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("lowConfidenceBits = %v", got)
	}
}

func TestRelearnBySiteFixesBits(t *testing.T) {
	// Corrupt two learned bits on different sites and confirm relearning
	// against the oracle restores them.
	a, key, bySite := attackWithTrueKey(t, 407, 8)
	for si := range key {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	// Corrupt one bit per site, pretending they were learned badly.
	b0, b1 := bySite[0][0], bySite[1][0]
	a.setBit(b0, !key[b0], 0.1, OriginLearning)
	a.setBit(b1, !key[b1], 0.1, OriginLearning)
	rng := rand.New(rand.NewSource(408))
	if err := a.relearnBySite([]int{b0, b1}, rng); err != nil {
		t.Fatalf("relearnBySite: %v", err)
	}
	cur := a.CurrentKey()
	if cur[b0] != key[b0] || cur[b1] != key[b1] {
		t.Fatalf("relearn failed: %v vs %v", cur, key)
	}
}

func TestOrderedSites(t *testing.T) {
	a, _, _ := attackWithTrueKey(t, 409, 8)
	sites := a.orderedSites()
	if len(sites) != 2 || sites[0] != 0 || sites[1] != 1 {
		t.Fatalf("orderedSites = %v", sites)
	}
}
