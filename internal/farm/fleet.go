package farm

import (
	"fmt"
	"math"
	"time"

	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// Fleet construction: a heterogeneous population of simulated accelerator
// devices. Each device owns a channel profile (RTT, bandwidth, pipeline
// window, per-row service time, loss rate — all seeded per-device
// variations of a base Channel) and a fault stack composed from the
// internal/oracle decorators (Quantized × Noisy × Budgeted × Flaky) with
// per-device seeds, so two fleets built from the same (mix, channel, seed)
// are identical device for device.

// Channel is the base network/service profile a sweep point prescribes.
// Zero fields take defaults (withDefaults); per-device heterogeneity is
// applied on top by BuildFleet.
type Channel struct {
	// RTT is the base propagation round-trip (both legs together).
	RTT time.Duration
	// Jitter is the amplitude of the seeded per-round delay added on the
	// response leg. Zero means "default" (RTT/10); negative means none.
	Jitter time.Duration
	// Bandwidth is the serialization rate in bytes/second, each direction.
	// Zero or negative means unconstrained (transfer time 0).
	Bandwidth float64
	// Loss is the per-round probability that the channel eats the request
	// or the response; a lost round surfaces as oracle.ErrTransient after
	// a timeout.
	Loss float64
	// Window is the number of in-flight requests a device pipeline accepts
	// before queueing (0 → 4).
	Window int
	// ServicePerRow is the device compute time per batch row (0 → 50µs).
	ServicePerRow time.Duration
	// Timeout is the virtual time a caller waits before declaring a lost
	// round dead (0 → 4×RTT, floor 1ms).
	Timeout time.Duration
}

// withDefaults resolves the zero fields.
func (c Channel) withDefaults() Channel {
	if c.Jitter == 0 {
		c.Jitter = c.RTT / 10
	} else if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.ServicePerRow <= 0 {
		c.ServicePerRow = 50 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 4 * c.RTT
		if c.Timeout < time.Millisecond {
			c.Timeout = time.Millisecond
		}
	}
	return c
}

// Class is one device population within a fleet mix: the share of the fleet
// it covers and the fault decorators its devices wrap around the base
// oracle.
type Class struct {
	Name string
	// Weight is the class's share of the fleet (normalized across the mix).
	Weight float64
	// QuantBits, when positive, wraps devices in oracle.Quantized.
	QuantBits int
	// Sigma, when positive, wraps devices in oracle.Noisy (per-device seed).
	Sigma float64
	// FlakyRate, when positive, wraps devices in oracle.Flaky — device-side
	// drops, on top of any channel loss.
	FlakyRate float64
	// Budget, when positive, wraps devices in oracle.Budgeted.
	Budget int64
	// SlowFactor scales the device's service time (0 → 1).
	SlowFactor float64
}

// Mix names a fleet composition.
type Mix struct {
	Name    string
	Classes []Class
}

// MaxSigma returns the largest noise level any class injects — what the
// attack must declare (core.Config.NoiseSigma) to widen its thresholds for
// the worst device it may be routed to.
func (m Mix) MaxSigma() float64 {
	s := 0.0
	for _, c := range m.Classes {
		if c.Sigma > s {
			s = c.Sigma
		}
	}
	return s
}

// MaxQuantStep returns the coarsest quantization grid any class applies
// (0 when every class is full-precision), for core.Config.QuantStep.
func (m Mix) MaxQuantStep() float64 {
	step := 0.0
	for _, c := range m.Classes {
		if c.QuantBits > 0 {
			if s := oracle.QuantizationStep(c.QuantBits); s > step {
				step = s
			}
		}
	}
	return step
}

// Mixes returns the built-in fleet compositions the `dnnlock farm` sweep
// offers. The degradations are kept inside the regime the robustness sweep
// (DESIGN.md §11) showed the declared-degradation attack absorbs at full
// fidelity, so the farm sweep prices the channel rather than re-testing
// fault tolerance.
func Mixes() []Mix {
	return []Mix{
		{Name: "clean", Classes: []Class{
			{Name: "clean", Weight: 1},
		}},
		{Name: "edge", Classes: []Class{
			{Name: "quant16", Weight: 1, QuantBits: 16, SlowFactor: 1.5},
		}},
		{Name: "mixed", Classes: []Class{
			{Name: "clean", Weight: 0.5},
			{Name: "quant16", Weight: 0.3, QuantBits: 16, SlowFactor: 1.5},
			{Name: "noisy", Weight: 0.15, Sigma: 1e-5},
			{Name: "flaky", Weight: 0.05, FlakyRate: 0.02, SlowFactor: 2},
		}},
	}
}

// MixByName resolves one of the built-in mixes.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("farm: unknown fleet mix %q", name)
}

// Profile is one device's resolved channel parameters after per-device
// heterogeneity is applied to the base Channel.
type Profile struct {
	Class         string
	RTT           time.Duration
	Jitter        time.Duration
	Bandwidth     float64
	Window        int
	ServicePerRow time.Duration
	Loss          float64
	Timeout       time.Duration
}

// Device is one simulated accelerator: its resolved profile, its fault
// stack around the shared base oracle, and its pipeline state (the virtual
// times at which each in-flight window slot frees up).
type Device struct {
	ID      int
	Profile Profile

	orc    oracle.Interface
	freeAt []Time
}

// takeSlot claims the earliest-free pipeline slot for a request arriving at
// the given virtual time and service duration, returning when service
// starts (arrival, or later if the whole window is backed up).
func (d *Device) takeSlot(arrive, service Time) Time {
	best := 0
	for i, f := range d.freeAt {
		if f < d.freeAt[best] {
			best = i
		}
	}
	start := arrive
	if d.freeAt[best] > start {
		start = d.freeAt[best]
	}
	d.freeAt[best] = start + service
	return start
}

// BuildFleet composes n devices over the shared base oracle. Classes are
// assigned by proportional striping (deterministic, no sampling noise), and
// each device draws seeded heterogeneity from splitmix64(seed, id): RTT and
// bandwidth factors in [0.5, 2), a window of 1×/2×/4× the base, and a
// service-speed factor in [0.75, 1.25) — a fleet of thousands of distinct
// devices from one seed.
func BuildFleet(base oracle.Interface, mix Mix, n int, ch Channel, seed int64) []*Device {
	ch = ch.withDefaults()
	if n <= 0 {
		n = 1
	}
	total := 0.0
	for _, c := range mix.Classes {
		if c.Weight > 0 {
			total += c.Weight
		}
	}
	if total <= 0 {
		// Empty (or all-zero-weight) mixes degrade to a clean fleet.
		mix.Classes = []Class{{Name: "clean", Weight: 1}}
		total = 1
	}
	// Largest-share striping: every class gets ⌊share⌋ devices, remainders
	// round-robin so counts always sum to n.
	counts := make([]int, len(mix.Classes))
	assigned := 0
	for i, c := range mix.Classes {
		if c.Weight > 0 {
			counts[i] = int(c.Weight / total * float64(n))
			assigned += counts[i]
		}
	}
	for i := 0; assigned < n; i = (i + 1) % len(counts) {
		if mix.Classes[i].Weight > 0 {
			counts[i]++
			assigned++
		}
	}

	devs := make([]*Device, 0, n)
	ci, left := 0, counts[0]
	for id := 0; id < n; id++ {
		for left == 0 {
			ci++
			left = counts[ci]
		}
		cl := mix.Classes[ci]
		left--

		h := splitmix64(uint64(seed) ^ uint64(id)*0x9e3779b97f4a7c15)
		rttF := 0.5 + 1.5*unit(splitmix64(h^1))
		bwF := 0.5 + 1.5*unit(splitmix64(h^2))
		winF := 1 << (splitmix64(h^3) % 3)
		svcF := 0.75 + 0.5*unit(splitmix64(h^4))
		if cl.SlowFactor > 0 {
			svcF *= cl.SlowFactor
		}

		p := Profile{
			Class:         cl.Name,
			RTT:           time.Duration(float64(ch.RTT) * rttF),
			Jitter:        time.Duration(float64(ch.Jitter) * rttF),
			Bandwidth:     ch.Bandwidth * bwF,
			Window:        ch.Window * winF,
			ServicePerRow: time.Duration(float64(ch.ServicePerRow) * svcF),
			Loss:          ch.Loss,
			Timeout:       ch.Timeout,
		}
		if ch.Bandwidth <= 0 {
			p.Bandwidth = 0 // unconstrained stays unconstrained
		}

		stack := base
		if cl.Budget > 0 {
			stack = oracle.Budgeted(stack, cl.Budget)
		}
		if cl.QuantBits > 0 {
			stack = oracle.Quantized(stack, cl.QuantBits)
		}
		if cl.Sigma > 0 {
			stack = oracle.Noisy(stack, cl.Sigma, int64(splitmix64(h^5)>>1))
		}
		if cl.FlakyRate > 0 {
			stack = oracle.Flaky(stack, cl.FlakyRate, int64(splitmix64(h^6)>>1))
		}

		devs = append(devs, &Device{
			ID:      id,
			Profile: p,
			orc:     stack,
			freeAt:  make([]Time, p.Window),
		})
	}
	return devs
}

// --- seeded hashing (the fault.go idiom, local to the channel model) -------

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a mixed word to (0, 1), endpoints excluded.
func unit(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// hashRow folds one query vector into a mixed word.
func hashRow(seed uint64, x []float64) uint64 {
	h := splitmix64(seed ^ 0x2545f4914f6cdd1d)
	for _, v := range x {
		h = splitmix64(h ^ math.Float64bits(v))
	}
	return h
}

// hashBatch folds a whole batch — shape and every row — into a mixed word,
// so batch-level decisions (loss, device routing) are addressed by content
// rather than call order.
func hashBatch(seed uint64, x *tensor.Matrix) uint64 {
	h := splitmix64(seed ^ uint64(x.Rows)<<32 ^ uint64(x.Cols))
	for i := 0; i < x.Rows; i++ {
		h = splitmix64(h ^ hashRow(h, x.Row(i)))
	}
	return h
}
