package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns a Go module directory into type-checked Units using only
// the standard library (go/parser + go/types; no x/tools). Each package
// directory yields up to two units: the library package together with its
// in-package _test.go files, and — when present — the external "_test"
// package. Imports of module-internal packages are resolved by type-checking
// the imported directory's non-test files on demand; everything else (the
// standard library) goes through the gc export-data importer with a
// from-source fallback, so the loader works both on a warm build cache and
// on a bare toolchain.

// Unit is one type-checked package as the analyzers see it.
type Unit struct {
	Path  string // import path; external test packages carry a "_test" suffix
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program is a loaded module: every package under the module root,
// type-checked, plus the //lint: comment directives found while parsing.
type Program struct {
	Fset       *token.FileSet
	Units      []*Unit
	TypeErrors []error
	directives map[string]map[int][]*directive // filename -> line -> directives
	cfgs       map[*ast.BlockStmt]*CFG        // shared CFG cache across analyzers
}

// Load parses and type-checks every package of the module containing dir
// (skipping testdata, vendor, and hidden directories). Parse failures and
// I/O errors are returned; type errors are collected in TypeErrors so the
// analyzers can still run over a partially broken tree.
func Load(dir string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{Fset: fset, directives: map[string]map[int][]*directive{}}
	ld := &moduleLoader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		prog:    prog,
		parsed:  map[string]*parsedDir{},
		cache:   map[string]*types.Package{},
		gc:      importer.Default(),
		src:     importer.ForCompiler(fset, "source", nil),
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		pd, err := ld.parseDir(d)
		if err != nil {
			return nil, err
		}
		path := importPathFor(modPath, root, d)
		if len(pd.lib)+len(pd.inTest) > 0 {
			files := append(append([]*ast.File{}, pd.lib...), pd.inTest...)
			pkg, info := ld.check(path, files)
			prog.Units = append(prog.Units, &Unit{Path: path, Dir: d, Files: files, Pkg: pkg, Info: info})
		}
		if len(pd.ext) > 0 {
			pkg, info := ld.check(path+"_test", pd.ext)
			prog.Units = append(prog.Units, &Unit{Path: path + "_test", Dir: d, Files: pd.ext, Pkg: pkg, Info: info})
		}
	}
	prog.TypeErrors = ld.typeErrs
	return prog, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := moduleLine(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		d = parent
	}
}

func moduleLine(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok && rest != "" && (rest[0] == ' ' || rest[0] == '\t') {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// packageDirs returns every directory under root that holds .go files,
// skipping hidden directories, vendor, and testdata trees (matching the go
// tool's ./... expansion).
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func importPathFor(modPath, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// parsedDir caches one directory's parsed files, partitioned into the
// library package, its in-package tests, and the external _test package.
type parsedDir struct {
	name   string // library package name
	lib    []*ast.File
	inTest []*ast.File
	ext    []*ast.File
}

type moduleLoader struct {
	fset     *token.FileSet
	root     string
	modPath  string
	prog     *Program
	parsed   map[string]*parsedDir
	cache    map[string]*types.Package // import path -> library variant
	checking map[string]bool
	gc       types.Importer
	src      types.Importer
	typeErrs []error
}

func (l *moduleLoader) parseDir(dir string) (*parsedDir, error) {
	if pd, ok := l.parsed[dir]; ok {
		return pd, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pd := &parsedDir{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		l.prog.scanDirectives(l.fset, f)
		name := f.Name.Name
		switch {
		case strings.HasSuffix(e.Name(), "_test.go") && strings.HasSuffix(name, "_test"):
			pd.ext = append(pd.ext, f)
		case strings.HasSuffix(e.Name(), "_test.go"):
			pd.inTest = append(pd.inTest, f)
		default:
			if pd.name != "" && pd.name != name {
				return nil, fmt.Errorf("lint: %s: conflicting package names %q and %q", dir, pd.name, name)
			}
			pd.name = name
			pd.lib = append(pd.lib, f)
		}
	}
	l.parsed[dir] = pd
	return pd, nil
}

// check type-checks one set of files as package path, recording type errors
// but never failing: the analyzers run over whatever was resolved.
func (l *moduleLoader) check(path string, files []*ast.File) (*types.Package, *types.Info) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { l.typeErrs = append(l.typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	return pkg, info
}

// Import resolves module-internal import paths by type-checking the target
// directory's non-test files; everything else is delegated to the gc
// export-data importer, falling back to from-source import when no export
// data is available.
func (l *moduleLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.checking == nil {
			l.checking = map[string]bool{}
		}
		if l.checking[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		l.checking[path] = true
		defer delete(l.checking, path)
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pd, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if len(pd.lib) == 0 {
			return nil, fmt.Errorf("lint: no Go source for %q in %s", path, dir)
		}
		pkg, _ := l.check(path, pd.lib)
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.gc.Import(path)
	if err != nil || pkg == nil || !pkg.Complete() {
		pkg, err = l.src.Import(path)
	}
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}
