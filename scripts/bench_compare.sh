#!/bin/sh
# bench_compare.sh — diff a fresh BENCH_<date>.json against the most recent
# *committed* BENCH_*.json and print per-benchmark ns/op, B/op and allocs/op
# deltas, flagging regressions above 10%.
#
# The baseline is read from git (`git show HEAD:BENCH_...`), not the working
# tree: a fresh run on the same day overwrites the baseline file in place,
# and the committed blob is the number a perf change has to beat anyway.
#
# Usage: scripts/bench_compare.sh [fresh.json] [baseline-name]
#   fresh.json     defaults to the lexicographically newest BENCH_*.json in
#                  the working tree
#   baseline-name  defaults to the newest BENCH_*.json committed at HEAD
#   BENCH_COMPARE_STRICT=1  exit 1 when any >10% regression is flagged
set -eu
cd "$(dirname "$0")/.."

FRESH="${1:-}"
if [ -z "$FRESH" ]; then
    FRESH="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"
fi
if [ -z "$FRESH" ] || [ ! -f "$FRESH" ]; then
    echo "bench_compare: no fresh BENCH_*.json (run scripts/bench.sh first)" >&2
    exit 1
fi

BASE_NAME="${2:-}"
if [ -z "$BASE_NAME" ]; then
    BASE_NAME="$(git ls-tree --name-only HEAD | grep '^BENCH_.*\.json$' | sort | tail -n 1 || true)"
fi
if [ -z "$BASE_NAME" ]; then
    echo "bench_compare: no committed BENCH_*.json baseline; nothing to compare" >&2
    exit 0
fi

BASE="$(mktemp)"
trap 'rm -f "$BASE"' EXIT
git show "HEAD:$BASE_NAME" > "$BASE"

echo "==> $FRESH vs committed $BASE_NAME"

awk -v strict="${BENCH_COMPARE_STRICT:-0}" '
function metric(line, key,    s) {
    if (match(line, "\"" key "\": [-+0-9.eE]+")) {
        s = substr(line, RSTART, RLENGTH)
        sub(/^.*: /, "", s)
        return s
    }
    return ""
}
function delta(old, new,    pct, tag) {
    if (old == "" || new == "") return "      n/a"
    if (old + 0 == 0) return (new + 0 == 0) ? "    +0.0%" : "     inf%"
    pct = (new - old) / old * 100
    tag = sprintf("%+8.1f%%", pct)
    if (pct > 10) { tag = tag "!"; flagged++ }
    return tag
}
/"name":/ {
    line = $0
    if (!match(line, /"name": "[^"]+"/)) next
    name = substr(line, RSTART + 9, RLENGTH - 10)
    if (NR == FNR) {
        seen[name] = 1
        bns[name] = metric(line, "ns/op")
        bb[name]  = metric(line, "B/op")
        ba[name]  = metric(line, "allocs/op")
        br[name]  = metric(line, "oracle_rounds")
        bw[name]  = metric(line, "farm_wallclock_s")
        next
    }
    ns = metric(line, "ns/op"); bo = metric(line, "B/op"); al = metric(line, "allocs/op")
    rd = metric(line, "oracle_rounds")
    fw = metric(line, "farm_wallclock_s")
    if (!(name in seen)) {
        printf "%-34s %14s ns/op  (new benchmark, no baseline)\n", name, ns
        next
    }
    done[name] = 1
    printf "%-34s ns/op %14s -> %14s %s   B/op %10s -> %10s %s   allocs %8s -> %8s %s", \
        name, bns[name], ns, delta(bns[name], ns), \
        bb[name], bo, delta(bb[name], bo), \
        ba[name], al, delta(ba[name], al)
    # Oracle round-trips are a first-class perf metric: more rounds means a
    # slower attack against any real (latency-bound) locked device, so a
    # >10% increase is flagged exactly like an ns/op regression.
    if (br[name] != "" || rd != "")
        printf "   rounds %8s -> %8s %s", br[name], rd, delta(br[name], rd)
    # The farm simulator prices rounds in predicted attack wall-clock on a
    # real channel, so a >10% increase there is a perf regression too.
    if (bw[name] != "" || fw != "")
        printf "   farm_s %8s -> %8s %s", bw[name], fw, delta(bw[name], fw)
    printf "\n"
}
END {
    for (name in seen) if (!(name in done))
        printf "%-34s dropped (present in baseline only)\n", name
    if (flagged > 0) {
        printf "bench_compare: %d metric(s) regressed by more than 10%% (marked !)\n", flagged
        if (strict + 0) exit 1
    } else {
        print "bench_compare: no >10% regressions"
    }
}' "$BASE" "$FRESH"
