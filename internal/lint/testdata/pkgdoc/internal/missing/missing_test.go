package missing

import "testing"

// Test files never satisfy or trigger the package-comment requirement.
func TestPlaceholder(t *testing.T) {
	if Placeholder != 1 {
		t.Fatal("placeholder")
	}
}
