package nn

import (
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// AttentionReLU is a single-head self-attention block with the ReLU score
// map of the paper's "ReLU variant" of ViT: instead of softmax, attention
// scores are S = φ(Q·Kᵀ/√Dh)/T, keeping the whole block piecewise
// polynomial and ReLU-gated so the attack's critical-point machinery
// applies. Input/output are T·D flat token stacks.
type AttentionReLU struct {
	T, D, Dh       int
	Wq, Wk, Wv, Wo *Param

	// Training caches (single-goroutine).
	cX, cQ, cK, cV, cS, cO []*tensor.Matrix
	cMask                  [][]bool
}

// NewAttentionReLU constructs an attention block over t tokens of width d
// with head width dh.
func NewAttentionReLU(t, d, dh int) *AttentionReLU {
	return &AttentionReLU{
		T: t, D: d, Dh: dh,
		Wq: NewParam("attn_wq", d, dh),
		Wk: NewParam("attn_wk", d, dh),
		Wv: NewParam("attn_wv", d, dh),
		Wo: NewParam("attn_wo", dh, d),
	}
}

// InitXavier initializes all projection matrices.
func (a *AttentionReLU) InitXavier(rng *rand.Rand) *AttentionReLU {
	for _, p := range []*Param{a.Wq, a.Wk, a.Wv, a.Wo} {
		fanIn, fanOut := p.W.Rows, p.W.Cols
		std := math.Sqrt(2.0 / float64(fanIn+fanOut))
		for i := range p.W.Data {
			p.W.Data[i] = rng.NormFloat64() * std
		}
	}
	return a
}

func (a *AttentionReLU) Name() string { return "attention_relu" }

// InSize returns T·D.
func (a *AttentionReLU) InSize() int { return a.T * a.D }

// OutSize returns T·D.
func (a *AttentionReLU) OutSize() int { return a.T * a.D }

func (a *AttentionReLU) scaleA() float64 { return 1 / math.Sqrt(float64(a.Dh)) }
func (a *AttentionReLU) scaleB() float64 { return 1 / float64(a.T) }

// forwardOne computes the block for one example and returns all
// intermediates for reuse by Backward and JVP.
func (a *AttentionReLU) forwardOne(x []float64) (xm, q, k, v, s, o *tensor.Matrix, mask []bool, y []float64) {
	xm = tensor.FromSlice(a.T, a.D, x)
	q = tensor.MatMul(xm, a.Wq.W)
	k = tensor.MatMul(xm, a.Wk.W)
	v = tensor.MatMul(xm, a.Wv.W)
	u := tensor.MatMul(q, k.T())
	u.ScaleInPlace(a.scaleA())
	mask = make([]bool, a.T*a.T)
	s = tensor.New(a.T, a.T)
	b := a.scaleB()
	for i, uv := range u.Data {
		if uv > 0 {
			mask[i] = true
			s.Data[i] = uv * b
		}
	}
	o = tensor.MatMul(s, v)
	ym := tensor.MatMul(o, a.Wo.W)
	return xm, q, k, v, s, o, mask, ym.Data
}

// Forward computes attention for one flat example.
func (a *AttentionReLU) Forward(x []float64, _ *Trace) []float64 {
	checkSize("attention_relu", a.InSize(), len(x))
	_, _, _, _, _, _, _, y := a.forwardOne(x)
	return y
}

// ForwardBatch maps each row.
func (a *AttentionReLU) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(a, x)
}

// TrainForward runs the batch while caching all per-example intermediates.
func (a *AttentionReLU) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	n := x.Rows
	a.cX = make([]*tensor.Matrix, n)
	a.cQ = make([]*tensor.Matrix, n)
	a.cK = make([]*tensor.Matrix, n)
	a.cV = make([]*tensor.Matrix, n)
	a.cS = make([]*tensor.Matrix, n)
	a.cO = make([]*tensor.Matrix, n)
	a.cMask = make([][]bool, n)
	out := tensor.New(n, a.OutSize())
	for r := 0; r < n; r++ {
		xm, q, k, v, s, o, mask, y := a.forwardOne(tensor.VecClone(x.Row(r)))
		a.cX[r], a.cQ[r], a.cK[r], a.cV[r], a.cS[r], a.cO[r], a.cMask[r] = xm, q, k, v, s, o, mask
		out.SetRow(r, y)
	}
	return out
}

// Backward propagates gradients through the attention algebra:
// dO = dY·Woᵀ, dS = dO·Vᵀ, dU = 1[U>0]∘dS·b, dQ = dU·K·a, dK = dUᵀ·Q·a,
// dX = dQ·Wqᵀ + dK·Wkᵀ + dV·Wvᵀ.
func (a *AttentionReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if a.cX == nil {
		panic("nn: AttentionReLU.Backward before TrainForward")
	}
	sa, sb := a.scaleA(), a.scaleB()
	dx := tensor.New(dy.Rows, a.InSize())
	for r := 0; r < dy.Rows; r++ {
		dym := tensor.FromSlice(a.T, a.D, tensor.VecClone(dy.Row(r)))
		x, q, k, v, s, o, mask := a.cX[r], a.cQ[r], a.cK[r], a.cV[r], a.cS[r], a.cO[r], a.cMask[r]

		do := tensor.MatMul(dym, a.Wo.W.T())
		a.Wo.G.AddInPlace(tensor.MatMul(o.T(), dym))

		ds := tensor.MatMul(do, v.T())
		dv := tensor.MatMul(s.T(), do)

		du := tensor.New(a.T, a.T)
		for i := range ds.Data {
			if mask[i] {
				du.Data[i] = ds.Data[i] * sb
			}
		}
		dq := tensor.MatMul(du, k)
		dq.ScaleInPlace(sa)
		dk := tensor.MatMul(du.T(), q)
		dk.ScaleInPlace(sa)

		a.Wq.G.AddInPlace(tensor.MatMul(x.T(), dq))
		a.Wk.G.AddInPlace(tensor.MatMul(x.T(), dk))
		a.Wv.G.AddInPlace(tensor.MatMul(x.T(), dv))

		dxm := tensor.MatMul(dq, a.Wq.W.T())
		dxm.AddInPlace(tensor.MatMul(dk, a.Wk.W.T()))
		dxm.AddInPlace(tensor.MatMul(dv, a.Wv.W.T()))
		dx.SetRow(r, dxm.Data)
	}
	return dx
}

// JVP propagates each tangent column through the bilinear attention map by
// the product rule: dU = (dQ·Kᵀ + Q·dKᵀ)·a, dS = 1[U>0]∘dU·b,
// dO = dS·V + S·dV, dY = dO·Wo.
func (a *AttentionReLU) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	_, q, k, v, s, _, mask, y := a.forwardOne(x)
	sa, sb := a.scaleA(), a.scaleB()
	p := j.Cols
	jy := tensor.New(a.OutSize(), p)
	col := make([]float64, a.InSize())
	for t := 0; t < p; t++ {
		for i := range col {
			col[i] = j.At(i, t)
		}
		dxm := tensor.FromSlice(a.T, a.D, col)
		dq := tensor.MatMul(dxm, a.Wq.W)
		dk := tensor.MatMul(dxm, a.Wk.W)
		dv := tensor.MatMul(dxm, a.Wv.W)
		du := tensor.MatMul(dq, k.T())
		du.AddInPlace(tensor.MatMul(q, dk.T()))
		du.ScaleInPlace(sa)
		dsm := tensor.New(a.T, a.T)
		for i := range du.Data {
			if mask[i] {
				dsm.Data[i] = du.Data[i] * sb
			}
		}
		do := tensor.MatMul(dsm, v)
		do.AddInPlace(tensor.MatMul(s, dv))
		dym := tensor.MatMul(do, a.Wo.W)
		jy.SetCol(t, dym.Data)
	}
	return y, jy
}

// Params returns the four projection parameters.
func (a *AttentionReLU) Params() []*Param { return []*Param{a.Wq, a.Wk, a.Wv, a.Wo} }
