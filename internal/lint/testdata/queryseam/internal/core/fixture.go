// Package core hosts queryseam golden fixtures: raw oracle calls outside
// the planner seam are findings.
package core

import "dnnlock/internal/oracle"

// memo is a local type whose Query method shares the guarded name but not
// the guarded package: calls to it are clean.
type memo struct{}

func (memo) Query(x []float64) []float64 { return x }

func rawInterfaceCalls(orc oracle.Interface, x []float64) {
	orc.Query(x)                   // want "raw oracle.Query call"
	orc.QueryBatch([][]float64{x}) // want "raw oracle.QueryBatch call"
}

func rawConcreteCall(p oracle.Probe, x []float64) {
	p.Query(x) // want "raw oracle.Query call"
}

func packageLevelHelperIsFine(x []float64) []float64 {
	return oracle.Query(x)
}

func localMethodIsFine(m memo, x []float64) []float64 {
	return m.Query(x)
}

func suppressedRawCall(orc oracle.Interface, x []float64) {
	//lint:ignore queryseam fixture: suppression on the preceding line
	orc.Query(x)
}
