package train

import (
	"fmt"
	"io"
	"math/rand"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Seed      int64
	Log       io.Writer // nil disables progress output
	// TargetAccuracy stops training early once the evaluation accuracy
	// reaches this level (0 disables).
	TargetAccuracy float64
}

// Result summarizes a training run.
type Result struct {
	Epochs        int
	FinalLoss     float64
	TrainAccuracy float64
	TestAccuracy  float64
}

// Fit trains net on (x, y) classification data with softmax cross-entropy,
// evaluating on (xTest, yTest) after each epoch.
func Fit(net *nn.Network, x *tensor.Matrix, y []int, xTest *tensor.Matrix, yTest []int, cfg Config) Result {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Rows
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var res Result
	// One reusable minibatch workspace for the whole run; partial batches
	// reslice it. (The network caches only forward activations per step, so
	// refilling the buffer between steps is safe.)
	bxBuf := tensor.GetMatrix(cfg.BatchSize, x.Cols)
	defer tensor.PutMatrix(bxBuf)
	byBuf := make([]int, cfg.BatchSize)
	params := net.Params() // layer set is fixed for the whole run
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bx := tensor.FromSlice(end-start, x.Cols, bxBuf.Data[:(end-start)*x.Cols])
			by := byBuf[:end-start]
			for i := start; i < end; i++ {
				bx.SetRow(i-start, x.Row(perm[i]))
				by[i-start] = y[perm[i]]
			}
			logits := net.TrainForward(bx)
			loss, grad := SoftmaxCrossEntropy(logits, by)
			if dx := net.TrainBackward(grad); dx != grad {
				tensor.PutMatrix(dx) // input gradient is unused; recycle it
			}
			cfg.Optimizer.Step(params)
			epochLoss += loss
			batches++
		}
		res.Epochs = epoch + 1
		res.FinalLoss = epochLoss / float64(batches)
		res.TestAccuracy = Evaluate(net, xTest, yTest)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  test acc %.4f\n", epoch+1, res.FinalLoss, res.TestAccuracy)
		}
		if cfg.TargetAccuracy > 0 && res.TestAccuracy >= cfg.TargetAccuracy {
			break
		}
	}
	res.TrainAccuracy = Evaluate(net, x, y)
	return res
}

// Evaluate returns classification accuracy of net on (x, y), batching to
// bound memory.
func Evaluate(net *nn.Network, x *tensor.Matrix, y []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	const chunk = 256
	correct := 0
	for start := 0; start < x.Rows; start += chunk {
		end := start + chunk
		if end > x.Rows {
			end = x.Rows
		}
		// The chunk is a read-only row window of x: alias it, don't copy.
		bx := tensor.FromSlice(end-start, x.Cols, x.Data[start*x.Cols:end*x.Cols])
		logits := net.ForwardBatch(bx)
		for i := 0; i < logits.Rows; i++ {
			if tensor.ArgMax(logits.Row(i)) == y[start+i] {
				correct++
			}
		}
		if logits != bx {
			// bx aliases the dataset; recycling it would hand the dataset's
			// backing array out as a scratch buffer. Fresh logits are safe.
			tensor.PutMatrix(logits)
		}
	}
	return float64(correct) / float64(x.Rows)
}
