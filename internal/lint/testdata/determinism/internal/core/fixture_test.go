package core

// Test files are out of determinism scope: seeded randomness and order-free
// assertions are fine there. No // want markers in this file.

func mapRangeInTest(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
