package modelio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func roundTrip(t *testing.T, net *nn.Network) *nn.Network {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertSameFunction(t *testing.T, a, b *nn.Network, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, a.InSize())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if tensor.NormInf(tensor.VecSub(a.Forward(x), b.Forward(x))) > 0 {
			t.Fatal("round-tripped network differs")
		}
	}
}

func TestRoundTripMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := models.TinyMLP(rng)
	net.Flips()[0].SetBit(2, true)
	assertSameFunction(t, net, roundTrip(t, net), 11)
}

func TestRoundTripLeNet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := models.TinyLeNet(rng)
	assertSameFunction(t, net, roundTrip(t, net), 12)
}

func TestRoundTripResNet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := models.TinyResNet(rng)
	assertSameFunction(t, net, roundTrip(t, net), 13)
}

func TestRoundTripVTransformer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := models.TinyVTransformer(rng)
	assertSameFunction(t, net, roundTrip(t, net), 14)
}

func TestRoundTripBiasShiftOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := models.TinyMLP(rng)
	net.Flips()[1].SetOffset(3, 0.25)
	assertSameFunction(t, net, roundTrip(t, net), 15)
}

func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := models.TinyMLP(rng)
	lm, _ := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Scaling, Alpha: 0.5, KeyBits: 4, Rng: rng})
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net, &lm.Spec); err != nil {
		t.Fatal(err)
	}
	_, spec, err := DecodeNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.Scheme != hpnn.Scaling || spec.Alpha != 0.5 || len(spec.Neurons) != 4 {
		t.Fatalf("spec round trip: %+v", spec)
	}
	for i, pn := range spec.Neurons {
		if pn != lm.Spec.Neurons[i] {
			t.Fatal("protected neuron mismatch")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := models.TinyMLP(rng)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveNetwork(path, net, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFunction(t, net, got, 16)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeNetwork(strings.NewReader(`{"layers":[{"type":"warp_drive"}]}`)); err == nil {
		t.Fatal("unknown layer type accepted")
	}
	if _, _, err := DecodeNetwork(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
	if _, _, err := DecodeNetwork(strings.NewReader(
		`{"layers":[{"type":"dense","ints":{"in":2,"out":2},"floats":{"w":[1],"b":[0,0]}}]}`)); err == nil {
		t.Fatal("wrong weight length accepted")
	}
}
