package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func lockedMLP(rng *rand.Rand, flipBits []int) *nn.Network {
	f1, f2 := nn.NewFlip(7), nn.NewFlip(5)
	net := nn.NewNetwork(
		nn.NewDense(4, 7).InitHe(rng), f1, nn.NewReLU(7),
		nn.NewDense(7, 5).InitHe(rng), f2, nn.NewReLU(5),
		nn.NewDense(5, 3).InitHe(rng),
	)
	for _, b := range flipBits {
		if b < 7 {
			f1.SetBit(b, true)
		} else {
			f2.SetBit(b-7, true)
		}
	}
	return net
}

func randIn(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestProductMatrixMatchesJVP(t *testing.T) {
	// Property: the Formulas 2–3 product matrix equals the exact Jacobian
	// at the same point, for both flip sites and arbitrary keys.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := lockedMLP(rng, []int{1, 3, 9})
		x := randIn(rng, 4)
		tr := net.ForwardTrace(x)
		for site := 0; site < 2; site++ {
			m, err := ProductMatrix(net, tr, site)
			if err != nil {
				return false
			}
			u, j := net.PreActJacobian(x, site)
			if !tensor.Equal(m.A, j, 1e-9) {
				return false
			}
			// And the affine map must reproduce the pre-activation value.
			got := m.Apply(x)
			if tensor.NormInf(tensor.VecSub(got, u)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionAffineMapReproducesOutput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := lockedMLP(rng, []int{0, 8})
		x := randIn(rng, 4)
		tr := net.ForwardTrace(x)
		m, err := RegionAffineMap(net, tr)
		if err != nil {
			return false
		}
		// Exact at the trace point.
		if tensor.NormInf(tensor.VecSub(m.Apply(x), tr.Out)) > 1e-9 {
			return false
		}
		// Exact at a nearby point in the same region.
		eps := 1e-6
		x2 := tensor.VecClone(x)
		x2[0] += eps
		tr2 := net.ForwardTrace(x2)
		if !PatternsEqual(tr.Patterns, tr2.Patterns) {
			return true // crossed a hyperplane; nothing to assert
		}
		return tensor.NormInf(tensor.VecSub(m.Apply(x2), tr2.Out)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProductMatrixRejectsConvNets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D(1, 6, 6, 2, 3, 1, 0).InitHe(rng)
	net := nn.NewNetwork(conv, nn.NewFlip(conv.OutSize()), nn.NewReLU(conv.OutSize()),
		nn.NewDense(conv.OutSize(), 2).InitHe(rng))
	tr := net.ForwardTrace(randIn(rng, conv.InSize()))
	if _, err := ProductMatrix(net, tr, 0); err != ErrNotSequentialPWL {
		t.Fatalf("err = %v, want ErrNotSequentialPWL", err)
	}
	if _, err := RegionAffineMap(net, tr); err == nil {
		t.Fatal("RegionAffineMap should reject conv nets")
	}
}

func TestPatternsEqualAndKey(t *testing.T) {
	a := [][]bool{{true, false}, {true}}
	b := [][]bool{{true, false}, {true}}
	c := [][]bool{{true, true}, {true}}
	if !PatternsEqual(a, b) || PatternsEqual(a, c) {
		t.Fatal("PatternsEqual broken")
	}
	if PatternKey(a) == PatternKey(c) {
		t.Fatal("PatternKey collision")
	}
	if PatternKey(a) != PatternKey(b) {
		t.Fatal("PatternKey not deterministic")
	}
	if PatternsEqual(a, [][]bool{{true, false}}) {
		t.Fatal("length mismatch should be unequal")
	}
	if PatternsEqual([][]bool{{true}}, [][]bool{{true, false}}) {
		t.Fatal("inner length mismatch should be unequal")
	}
}

func TestCountLinearRegions2D(t *testing.T) {
	// The 2-layer toy network of Figure 2 splits the plane into several
	// linear regions: more than 1 and at most the grid count.
	rng := rand.New(rand.NewSource(4))
	net := nn.NewNetwork(
		nn.NewDense(2, 3).InitHe(rng), nn.NewReLU(3),
		nn.NewDense(3, 3).InitHe(rng), nn.NewReLU(3),
		nn.NewDense(3, 1).InitHe(rng),
	)
	n := CountLinearRegions2D(net, 40, 3)
	if n < 2 {
		t.Fatalf("expected multiple linear regions, got %d", n)
	}
	if n > 40*40 {
		t.Fatal("impossible region count")
	}
}

func TestHyperplaneWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := lockedMLP(rng, nil)
	x := randIn(rng, 4)
	tr := net.ForwardTrace(x)
	u := math.Abs(tr.Pre[0][2])
	if HyperplaneWitness(net, x, 0, 2, u/2) {
		t.Fatal("witness accepted far point")
	}
	if !HyperplaneWitness(net, x, 0, 2, u*2+1) {
		t.Fatal("witness rejected close tolerance")
	}
}
