// Package oracle is the queryseam fixture oracle: its Query/QueryBatch
// methods are the guarded seam.
package oracle

// Interface mirrors the real oracle surface.
type Interface interface {
	Query(x []float64) ([]float64, error)
	QueryBatch(x [][]float64) ([][]float64, error)
}

// Probe is a concrete implementation; method calls on it are guarded too.
type Probe struct{}

func (Probe) Query(x []float64) ([]float64, error)          { return x, nil }
func (Probe) QueryBatch(x [][]float64) ([][]float64, error) { return x, nil }

// Query at package level is a helper, not a method: not part of the seam.
func Query(x []float64) []float64 { return x }
