// Package farm simulates the oracle channel of the adversary model (§2.3)
// at device-fleet scale. The paper counts queries as if each were free; the
// real bottleneck of a remote attack is the channel — latency, jitter,
// serialization over a bandwidth cap, loss, and the device pipeline's
// in-flight window. This package prices those: an event-driven simulator (a
// binary-heap scheduler of timestamped events on a virtual clock, event.go)
// models a heterogeneous fleet of simulated accelerators (fleet.go), and
// Transport decorates an oracle.Interface so every round-trip advances the
// virtual clock by its simulated cost. The resulting horizon is the
// predicted wall-clock of the attack over that channel — the number
// `dnnlock farm` sweeps across RTT × bandwidth × loss × fleet mix.
//
// Accounting contract: Transport.Rounds counts every dispatched round-trip,
// including ones the channel lost (the request was sent; a timeout costs
// more wall-clock, not zero); Queries delegates to the base oracle, so lost
// rounds consume no queries. Values returned to the attack are produced by
// the per-device fault stacks (the internal/oracle decorators) and are
// input-addressed, so they do not depend on goroutine scheduling; the
// simulated clock of a concurrent attack is a processing-order
// approximation — causal, but not bit-stable across scheduler interleavings
// — while a serial attack is exactly reproducible.
package farm

import (
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// Config parameterizes a Transport.
type Config struct {
	// Seed drives loss decisions, jitter draws, and device routing. All
	// three are input-addressed (content hash + attempt counter), so the
	// schedule is a function of what is asked, not of when.
	Seed int64
	// RowBytesIn and RowBytesOut are the serialized sizes of one input and
	// one output row; batches pay rows×size over the device's bandwidth.
	RowBytesIn, RowBytesOut int
	// Overhead is the per-message framing cost in bytes (0 → 64).
	Overhead int
	// Span, when non-nil, receives one point event per round — device,
	// rows, simulated send/receive times, loss — gated on the span's
	// tracer being in Detailed mode, so undetailed runs pay nothing.
	Span *obs.Span
}

// Transport is the channel-simulating oracle decorator. Every Query or
// QueryBatch is one round-trip on the virtual clock: issue at the causal
// frontier, serialize up, wait for a device pipeline slot, compute, and
// serialize back down with jitter — or, for a seeded-lost round, time out
// and surface oracle.ErrTransient.
//
// Concurrency model: a round issued while earlier rounds are still in
// flight overlaps them on the virtual clock (its issue time is the causal
// frontier — the latest completion a caller could actually have observed
// at entry), which is what lets the planner's coalesced batches and
// parallel workers genuinely pipeline; a round issued after another
// completed is assumed dependent on it and serializes behind it. Safe for
// concurrent use.
type Transport struct {
	cfg   Config
	seed  uint64
	base  oracle.Interface
	fleet []*Device

	mu       sync.Mutex
	eng      sim
	causal   Time              // latest completion any caller has observed
	horizon  Time              // clock high-water: latest scheduled delivery
	attempts map[uint64]uint64 // content hash -> rounds dispatched so far

	rounds atomic.Int64
	lost   atomic.Int64
}

var (
	_ oracle.Interface = (*Transport)(nil)
	_ oracle.Clocked   = (*Transport)(nil)
)

// NewTransport wraps base behind the simulated channel to the given fleet.
// The fleet must have been built over the same base oracle (BuildFleet), so
// query accounting has a single source of truth.
func NewTransport(base oracle.Interface, fleet []*Device, cfg Config) *Transport {
	if cfg.Overhead <= 0 {
		cfg.Overhead = 64
	}
	if len(fleet) == 0 {
		fleet = BuildFleet(base, Mix{}, 1, Channel{}, cfg.Seed)
	}
	return &Transport{
		cfg:      cfg,
		seed:     uint64(cfg.Seed),
		base:     base,
		fleet:    fleet,
		attempts: make(map[uint64]uint64),
	}
}

// transferTime converts a payload over a bandwidth into virtual time;
// non-positive bandwidth means unconstrained.
func transferTime(bytes int, bw float64) Time {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return Time(float64(bytes) / bw * 1e9)
}

// dispatch runs one round's timing on the virtual clock and returns the
// serving device, the virtual receive time, and whether the channel lost
// the round. The whole schedule-and-pump runs under the transport lock;
// the caller evaluates on the device stack outside it.
func (t *Transport) dispatch(rows int, h uint64) (dev *Device, recvAt Time, lost bool) {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.rounds.Add(1)
	dev = t.fleet[int(h%uint64(len(t.fleet)))]
	t.attempts[h]++
	attempt := t.attempts[h]
	issueAt := t.causal
	p := dev.Profile

	if unit(splitmix64(h^attempt*0xbf58476d1ce4e5b9)) < p.Loss {
		// The channel ate the request or the response: the caller learns
		// nothing until the timeout expires, then retries. One full round
		// dispatched, zero queries answered.
		lost = true
		recvAt = issueAt + Time(p.Timeout)
		t.lost.Add(1)
	} else {
		half := Time(p.RTT) / 2
		txUp := transferTime(rows*t.cfg.RowBytesIn+t.cfg.Overhead, p.Bandwidth)
		txDown := transferTime(rows*t.cfg.RowBytesOut+t.cfg.Overhead, p.Bandwidth)
		jitter := Time(unit(splitmix64(h^attempt*0x94d049bb133111eb)) * float64(p.Jitter))
		service := Time(rows) * Time(p.ServicePerRow)
		delivered := false
		// The round's event chain: send → arrive → done → deliver. Each leg
		// schedules the next; arrive competes for the device's pipeline
		// window, so a backed-up device queues the request into the future.
		t.eng.schedule(issueAt, func(now Time) {
			t.eng.schedule(now+half+txUp, func(now Time) {
				start := dev.takeSlot(now, service)
				t.eng.schedule(start+service, func(now Time) {
					t.eng.schedule(now+txDown+half+jitter, func(now Time) {
						recvAt = now
						delivered = true
					})
				})
			})
		})
		t.eng.runUntil(func() bool { return delivered })
	}
	if recvAt > t.horizon {
		t.horizon = recvAt
	}
	if sp := t.cfg.Span; sp != nil && sp.Tracer().Detailed() {
		sp.Event("farm_round",
			obs.Int("device", dev.ID), obs.String("class", p.Class),
			obs.Int("rows", rows), obs.Bool("lost", lost),
			obs.Int64("send_ns", int64(issueAt)), obs.Int64("recv_ns", int64(recvAt)))
	}
	return dev, recvAt, lost
}

// complete advances the causal frontier to the round's delivery: from here
// on, new rounds are assumed to (possibly) depend on this response and
// issue no earlier than it.
func (t *Transport) complete(recvAt Time) {
	t.mu.Lock()
	if recvAt > t.causal {
		t.causal = recvAt
	}
	t.mu.Unlock()
}

// Query sends one row over the simulated channel and evaluates it on the
// routed device's fault stack. A channel-lost round returns
// oracle.ErrTransient after its timeout has elapsed on the virtual clock.
func (t *Transport) Query(x []float64) ([]float64, error) {
	dev, recvAt, lost := t.dispatch(1, hashRow(t.seed, x))
	defer t.complete(recvAt)
	if lost {
		return nil, oracle.ErrTransient
	}
	return dev.orc.Query(x)
}

// QueryBatch sends one batch as a single round-trip; serialization cost
// scales with the row count, which is why coalescing rows into fewer
// rounds wins exactly until the bandwidth cap bites. Ownership of the
// pooled result passes through from the device stack on success.
func (t *Transport) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	dev, recvAt, lost := t.dispatch(x.Rows, hashBatch(t.seed, x))
	defer t.complete(recvAt)
	if lost {
		return nil, oracle.ErrTransient
	}
	return dev.orc.QueryBatch(x)
}

// Queries reports the base oracle's device-query count: lost rounds and
// device-side drops consumed none.
func (t *Transport) Queries() int64 { return t.base.Queries() }

// Rounds reports every round-trip dispatched through the transport,
// including channel-lost ones — the request was sent and its latency paid.
// Device-stack contributions are not re-added: the transport is the single
// round counter for a farm run.
func (t *Transport) Rounds() int64 { return t.rounds.Load() }

// Lost reports how many dispatched rounds the channel lost.
func (t *Transport) Lost() int64 { return t.lost.Load() }

// ResetCounter zeroes the transport's round and loss counters and resets
// every device stack down to the shared base (Flaky layers zero their
// dropped-round contributions; budgets, per their contract, do not refill).
// The virtual clock keeps running — like wall time, it is monotone across
// experiment phases; per-phase costs are deltas of SimElapsed.
func (t *Transport) ResetCounter() {
	t.rounds.Store(0)
	t.lost.Store(0)
	for _, d := range t.fleet {
		d.orc.ResetCounter()
	}
	t.base.ResetCounter()
}

// Softmax reports the base oracle's output mode.
func (t *Transport) Softmax() bool { return t.base.Softmax() }

// SimElapsed reports the virtual clock's high-water mark — the simulated
// wall-clock consumed by all traffic so far. This implements
// oracle.Clocked, so core's phase tracking attributes per-procedure
// simulated time by deltas of it, and the harness reads the final value as
// the predicted attack duration.
func (t *Transport) SimElapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.horizon)
}
