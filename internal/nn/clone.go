package nn

import (
	"fmt"
)

// cloneParam deep-copies a parameter (gradients start at zero).
func cloneParam(p *Param) *Param {
	c := NewParam(p.Name, p.W.Rows, p.W.Cols)
	c.W.CopyFrom(p.W)
	c.Frozen = p.Frozen
	return c
}

// CloneLayer returns a deep copy of a layer: parameters are copied,
// training caches are dropped, soft flip state is not carried over.
func CloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Dense:
		c := NewDense(v.In, v.Out)
		c.W = cloneParam(v.W)
		c.B = cloneParam(v.B)
		return c
	case *TokenDense:
		c := NewTokenDense(v.T, v.D.In, v.D.Out)
		c.D = CloneLayer(v.D).(*Dense)
		return c
	case *ReLU:
		return NewReLU(v.N)
	case *Flatten:
		return NewFlatten(v.N)
	case *Flip:
		c := NewFlip(v.N)
		copy(c.Signs, v.Signs)
		if v.Offsets != nil {
			c.Offsets = make([]float64, len(v.Offsets))
			copy(c.Offsets, v.Offsets)
		}
		return c
	case *Conv2D:
		c := NewConv2D(v.InC, v.InH, v.InW, v.OutC, v.KH, v.Stride, v.Pad)
		c.W = cloneParam(v.W)
		c.B = cloneParam(v.B)
		return c
	case *MaxPool2D:
		return NewMaxPool2D(v.C, v.InH, v.InW, v.K, v.Stride)
	case *AvgPool2D:
		return NewAvgPool2D(v.C, v.InH, v.InW, v.K, v.Stride)
	case *GlobalAvgPool:
		return NewGlobalAvgPool(v.C, v.H, v.W)
	case *MeanTokens:
		return NewMeanTokens(v.T, v.D)
	case *Residual:
		body := make([]Layer, len(v.Body))
		for i, b := range v.Body {
			body[i] = CloneLayer(b)
		}
		short := make([]Layer, len(v.Shortcut))
		for i, s := range v.Shortcut {
			short[i] = CloneLayer(s)
		}
		return &Residual{Body: body, Shortcut: short}
	case *AttentionReLU:
		c := NewAttentionReLU(v.T, v.D, v.Dh)
		c.Wq = cloneParam(v.Wq)
		c.Wk = cloneParam(v.Wk)
		c.Wv = cloneParam(v.Wv)
		c.Wo = cloneParam(v.Wo)
		return c
	case *PatchEmbed:
		c := NewPatchEmbed(v.C, v.H, v.W, v.P, v.D)
		c.Wt = cloneParam(v.Wt)
		c.B = cloneParam(v.B)
		return c
	default:
		panic(fmt.Sprintf("nn: CloneLayer does not know %T", l))
	}
}

// Clone returns a fully independent deep copy of the network.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = CloneLayer(l)
	}
	return NewNetwork(layers...)
}
