package harness

import (
	"bytes"
	"strings"
	"testing"

	"dnnlock/internal/metrics"
)

func TestScalesWellFormed(t *testing.T) {
	for _, sc := range []Scale{TinyScale(), QuickScale(), PaperScale()} {
		if sc.TrainExamples <= 0 || sc.BatchSize <= 0 || sc.BaselineKeys <= 0 {
			t.Fatalf("%s: bad scale %+v", sc.Name, sc)
		}
		for _, m := range []string{"mlp", "lenet", "resnet", "vtransformer"} {
			if len(sc.KeySizes[m]) == 0 {
				t.Fatalf("%s: no key sizes for %s", sc.Name, m)
			}
		}
	}
}

func TestTable1TinyMLP(t *testing.T) {
	sc := TinyScale()
	sc.KeySizes = map[string][]int{"mlp": {6}}
	var buf bytes.Buffer
	rows, err := RunTable1(sc, []string{"mlp"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.DecryptErr != nil {
		t.Fatalf("decryption failed: %v", r.DecryptErr)
	}
	// The headline claims of Table 1, at tiny scale:
	if r.Decryption.Fidelity != 1 {
		t.Fatalf("decryption fidelity %.3f != 1", r.Decryption.Fidelity)
	}
	if r.Decryption.Accuracy < r.OriginalAccuracy-1e-9 {
		t.Fatal("decrypted accuracy below original")
	}
	if r.OriginalAccuracy < 0.8 {
		t.Fatalf("locked model failed to train: acc %.3f", r.OriginalAccuracy)
	}
	if r.BaselineAccuracy >= r.OriginalAccuracy {
		t.Fatal("wrong keys should lose accuracy")
	}
	if r.Decryption.Queries <= 0 || r.Monolithic.Queries <= 0 {
		t.Fatal("query counts missing")
	}
	if !strings.Contains(buf.String(), "mlp") {
		t.Fatal("no streamed output")
	}
}

func TestFigure3FromRows(t *testing.T) {
	sc := TinyScale()
	sc.KeySizes = map[string][]int{"mlp": {4}}
	rows, err := RunTable1(sc, []string{"mlp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f3 := RunFigure3(rows)
	if len(f3) != 1 {
		t.Fatalf("figure3 rows = %d", len(f3))
	}
	total := 0.0
	for _, p := range metrics.AllProcedures {
		total += f3[0].Percent[p]
	}
	if total < 99 || total > 101 {
		t.Fatalf("percentages sum to %.2f", total)
	}
	var buf bytes.Buffer
	FormatFigure3(f3, &buf)
	if !strings.Contains(buf.String(), "key_bit_inference") {
		t.Fatal("figure text missing procedures")
	}
}

func TestBuildModelUnknown(t *testing.T) {
	sc := TinyScale()
	if _, _, err := buildModel("nope", sc, nil); err == nil {
		t.Fatal("unknown tiny model accepted")
	}
	sc.Tiny = false
	if _, _, err := buildModel("nope", sc, nil); err == nil {
		t.Fatal("unknown full model accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Table1Row{{
		Model: "mlp", KeyBits: 32,
		OriginalAccuracy: 0.98, BaselineAccuracy: 0.27,
		Monolithic: AttackCell{Accuracy: 0.98, Fidelity: 1, Seconds: 2.7, Queries: 1000},
		Decryption: AttackCell{Accuracy: 0.98, Fidelity: 1, Seconds: 0.18, Queries: 156},
	}}
	var buf bytes.Buffer
	WriteCSV(rows, &buf)
	got := buf.String()
	if !strings.HasPrefix(got, "model,key_bits") {
		t.Fatal("missing header")
	}
	if !strings.Contains(got, "mlp,32,0.9800,0.2700") {
		t.Fatalf("row malformed: %q", got)
	}
}

func TestHeaderAndRowFormatting(t *testing.T) {
	if !strings.Contains(TableHeader(), "d.fid") {
		t.Fatal("header missing columns")
	}
	row := Table1Row{Model: "mlp", KeyBits: 32}
	if !strings.Contains(FormatRow(row), "mlp") {
		t.Fatal("row missing model")
	}
}
