package train

import (
	"math"

	"dnnlock/internal/tensor"
)

// float32 loss kernels for the learning attack's speed tier (DESIGN.md
// §13). Predictions, targets and gradients live in float32; the scalar
// loss is accumulated in float64 so the plateau stop rule in core.fitSoft
// compares losses with the same resolution at either precision — a float32
// epoch-loss accumulator over thousands of minibatch terms would swamp the
// 1e-12 improvement threshold with rounding noise.

// MSEInto32 is the float32 MSEInto: mean squared error between pred and
// target with the gradient written into a caller-provided (typically
// arena-backed) matrix.
func MSEInto32(grad, pred, target *tensor.Mat[float32]) (loss float64) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("train: MSE shape mismatch")
	}
	if grad.Rows != pred.Rows || grad.Cols != pred.Cols {
		panic("train: MSE gradient shape mismatch")
	}
	n := float64(len(pred.Data))
	gn := float32(2 / n)
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = gn * d
	}
	return loss / n
}

// MSESoftmax32 is the float32 MSESoftmax: MSE between softmax(pred) rows
// and target, with the logit gradient fused per row via the softmax
// Jacobian pullback dL/dz_i = p_i·(dL/dp_i − Σ_j p_j·dL/dp_j). Unlike
// MSESoftmax it writes into a caller-provided gradient and scratch row so
// the epoch loop stays allocation-free; exp runs through float64 math.Exp
// (there is no float32 libm in the stdlib) and is demoted afterwards.
func MSESoftmax32(grad, pred, target *tensor.Mat[float32], p []float32) (loss float64) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("train: MSESoftmax shape mismatch")
	}
	if grad.Rows != pred.Rows || grad.Cols != pred.Cols {
		panic("train: MSESoftmax gradient shape mismatch")
	}
	if len(p) != pred.Cols {
		panic("train: MSESoftmax scratch length mismatch")
	}
	n := float64(len(pred.Data))
	gn := float32(2 / n)
	for r := 0; r < pred.Rows; r++ {
		softmaxInto32(p, pred.Row(r))
		gr := grad.Row(r)
		tr := target.Row(r)
		var dot float32
		for c, pv := range p {
			d := pv - tr[c]
			loss += float64(d) * float64(d)
			g := gn * d
			gr[c] = g
			dot += pv * g
		}
		for c := range gr {
			gr[c] = p[c] * (gr[c] - dot)
		}
	}
	return loss / n
}

// softmaxInto32 computes a stable float32 softmax of v into dst.
func softmaxInto32(dst, v []float32) {
	mx := float32(math.Inf(-1))
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - mx)))
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}
