package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
	"dnnlock/internal/train"
)

// Trained networks are the adversary's real target, and they behave very
// differently from random ones: pre-activation distributions skew, ReLUs
// die, and max-pool competitions have entrenched winners. These tests pin
// the attack's behaviour in that regime (several bugs in the search and
// validation procedures only reproduced on trained models).

func TestDecryptTrainedTinyMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(801))
	ds := dataset.Custom(600, 3, 4, 1, 4, 5)
	tr, te := ds.Split(0.8)
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 8, Rng: rng})
	train.Fit(net, tr.X, tr.Y, te.X, te.Y, train.Config{
		Epochs: 25, BatchSize: 16, Optimizer: train.NewAdam(0.02), Seed: 1,
	})
	cfg := DefaultConfig()
	cfg.Seed = 802
	res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("fidelity %.3f on trained MLP", res.Key.Fidelity(key))
	}
}

func TestDecryptTrainedTinyLeNet(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(803))
	ds := dataset.Custom(500, 3, 4, 1, 12, 12)
	tr, te := ds.Split(0.8)
	net := models.TinyLeNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	train.Fit(net, tr.X, tr.Y, te.X, te.Y, train.Config{
		Epochs: 10, BatchSize: 16, Optimizer: train.NewAdam(0.01), Seed: 1,
	})
	cfg := DefaultConfig()
	cfg.Seed = 804
	res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("fidelity %.3f on trained LeNet", res.Key.Fidelity(key))
	}
}

func TestDecryptTrainedTinyResNet(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(805))
	ds := dataset.Custom(400, 3, 3, 1, 8, 8)
	tr, te := ds.Split(0.8)
	net := models.TinyResNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	train.Fit(net, tr.X, tr.Y, te.X, te.Y, train.Config{
		Epochs: 8, BatchSize: 16, Optimizer: train.NewAdam(0.01), Seed: 1,
	})
	cfg := DefaultConfig()
	cfg.Seed = 806
	res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("fidelity %.3f on trained ResNet", res.Key.Fidelity(key))
	}
}
