package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dnnlock/internal/obs"
)

// errorCorrection implements §3.8's heuristic repair: bits of the pending
// validation group are ordered by ascending learning confidence (algebraic
// bits carry confidence 1 and effectively never flip first); candidate
// keys at Hamming distance 1, 2, … from the current hypothesis are
// validated against the oracle in parallel; the first candidate that
// passes is committed. It returns false when the Hamming budget is
// exhausted. A winner is committed even if other candidates hit terminal
// oracle errors — a repaired key beats reporting the failure — but with no
// winner the lowest-index error is surfaced.
func (a *Attack) errorCorrection(groupSites, groupBits []int, rng *rand.Rand) (bool, error) {
	// Candidate pool: lowest-confidence bits first.
	pool := append([]int(nil), groupBits...)
	sort.SliceStable(pool, func(i, j int) bool {
		return a.confidence[pool[i]] < a.confidence[pool[j]]
	})
	if len(pool) > a.cfg.CorrectionPool {
		pool = pool[:a.cfg.CorrectionPool]
	}
	for h := 1; h <= a.cfg.MaxCorrectionHamming && h <= len(pool); h++ {
		combos := combinations(len(pool), h)
		var winner atomic.Int64
		winner.Store(-1)
		var mu sync.Mutex // serializes winner bookkeeping
		errs := make([]error, len(combos))
		// Candidate validations coalesce: probe groups from concurrent
		// candidates (and the votes inside each validation, which reuse
		// this region) share oracle rounds.
		a.withCoalescer(func() {
			a.parallelFor(len(combos), rng.Int63(), func(ci int, wrng *rand.Rand) {
				if winner.Load() >= 0 {
					return
				}
				cand := a.applier.clone(a.white)
				for _, pi := range combos[ci] {
					si := pool[pi]
					pn := a.spec.Neurons[si]
					a.applier.apply(cand, pn, si, !a.applier.read(cand, pn, si))
				}
				valid, err := a.keyVectorValidation(cand, groupSites, wrng)
				if err != nil {
					errs[ci] = err
					return
				}
				if valid {
					mu.Lock()
					if winner.Load() < 0 {
						winner.Store(int64(ci))
					}
					mu.Unlock()
				}
			})
		})
		if w := winner.Load(); w >= 0 {
			for _, pi := range combos[w] {
				si := pool[pi]
				bit := !a.applier.read(a.white, a.spec.Neurons[si], si)
				a.setBit(si, bit, 1, OriginCorrection)
			}
			a.event("corrected", obs.Int("hamming", h), obs.Int("candidates", len(combos)))
			a.log.Info("error correction committed", "hamming", h, "flipped", h)
			return true, nil
		}
		for _, err := range errs {
			if err != nil {
				return false, err
			}
		}
	}
	return false, nil
}

// combinations enumerates all k-subsets of {0,…,n−1} in lexicographic
// order, which — applied to a confidence-sorted pool — tries the least
// trusted bits first, as §3.8 prescribes.
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
