// Package use exercises directive bookkeeping: a suppression or transfer
// that matches a finding is consumed silently; one that matches nothing is
// itself a finding, gated on the analyzer it names actually running.
package use

import "dnnlock/internal/tensor"

type holder struct{ m *tensor.Matrix }

var global holder

// A real poolpair leak, deliberately quieted: the ignore is used.
func suppressedLeak() {
	//lint:ignore poolpair fixture: deliberate leak kept quiet
	m := tensor.GetMatrix(1, 1)
	_ = m
}

// Clean code under a leftover suppression: the ignore is stale.
func cleanButAnnotated() {
	//lint:ignore poolpair stale: the leak this excused was fixed
	m := tensor.GetMatrix(1, 1)
	tensor.PutMatrix(m)
}

// A stale ignore for an analyzer that did not run must stay silent until
// that analyzer runs (the gating test drives both cases).
func wrongAnalyzerAnnotated() {
	//lint:ignore determinism stale: nothing nondeterministic here
	m := tensor.GetMatrix(2, 2)
	tensor.PutMatrix(m)
}

// A live transfer: the store is a tracked pooled-buffer handoff.
func storesBuffer() {
	//lint:transfer released collectively by drain()
	global.m = tensor.GetMatrix(3, 3)
}

// A stale transfer: nothing pooled is stored on this line.
func plainStore() {
	//lint:transfer leftover from a refactor
	global.m = nil
}

func drain() {
	if global.m != nil {
		tensor.PutMatrix(global.m)
		global.m = nil
	}
}
