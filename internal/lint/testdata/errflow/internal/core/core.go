// Package core stubs the attack entry points of the real
// dnnlock/internal/core for the errflow golden tests.
package core

type Result struct{}

func Run(bits int) (*Result, error) { return nil, nil }

func Monolithic(bits int) (*Result, error) { return nil, nil }
