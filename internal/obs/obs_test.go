package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dnnlock/internal/metrics"
)

// TestNilSafety drives every Tracer and Span method through nil receivers:
// the no-op contract call sites rely on to stay conditional-free.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Detailed() {
		t.Fatal("nil tracer reports Detailed")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every span method must accept the nil receiver.
	sp.AddQueries(3)
	sp.AddRetry()
	sp.Event("ev", Int("k", 1))
	sp.Annotate(String("k", "v"))
	sp.SetBreakdown(metrics.NewBreakdown())
	sp.AnnotateRuntime(RuntimeStats{})
	sp.End()
	if q := sp.Queries(); q != 0 {
		t.Fatalf("nil span queries = %d", q)
	}
	//lint:ignore spanpair asserting the nil-span contract: Child on a nil span returns nil, there is nothing to end
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil span Child returned non-nil")
	}
	//lint:ignore spanpair asserting the nil-span contract: ChildDetail on a nil span returns nil, there is nothing to end
	if c := sp.ChildDetail("x"); c != nil {
		t.Fatal("nil span ChildDetail returned non-nil")
	}
	if sp.Tracer() != nil {
		t.Fatal("nil span Tracer returned non-nil")
	}
}

// TestNoSinkRollup checks the no-op default still performs the Breakdown
// rollup: proc-labelled spans add their duration and queries to the nearest
// ancestor anchor even with nothing exported.
func TestNoSinkRollup(t *testing.T) {
	tr := New()
	if tr.Detailed() {
		t.Fatal("sinkless tracer reports Detailed")
	}
	bd := metrics.NewBreakdown()
	root := tr.Start("attack")
	root.SetBreakdown(bd)

	site := root.Child("site", Int("site", 0))
	ph := site.Child("infer", Proc(metrics.ProcKeyBitInference))
	ph.AddQueries(6)
	time.Sleep(time.Millisecond)
	ph.End()
	site.End()
	root.End()

	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if bd.Queries(metrics.ProcKeyBitInference) != 6 {
		t.Fatalf("rollup queries = %d, want 6", bd.Queries(metrics.ProcKeyBitInference))
	}
	if bd.Total() <= 0 {
		t.Fatal("rollup recorded no time")
	}
	// ChildDetail must decline without a sink.
	//lint:ignore spanpair asserting the no-sink contract: ChildDetail declines without a sink, there is nothing to end
	if sp := tr.Start("x").ChildDetail("probe"); sp != nil {
		t.Fatal("ChildDetail returned a span without a sink")
	}
}

// TestEndIdempotent pins that a double End neither double-counts the rollup
// nor exports a second record.
func TestEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithSink(&buf))
	bd := metrics.NewBreakdown()
	root := tr.Start("attack")
	root.SetBreakdown(bd)
	ph := root.Child("infer", Proc(metrics.ProcKeyBitInference))
	ph.AddQueries(2)
	ph.End()
	ph.End()
	root.End()
	if got := bd.Queries(metrics.ProcKeyBitInference); got != 2 {
		t.Fatalf("double End double-counted: queries = %d, want 2", got)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) != 2 {
		t.Fatalf("got %d span records, want 2", len(trace.Spans))
	}
}

// TestJSONLRoundTrip writes a small trace and reads it back through
// ReadTrace, verifying span fields, the parent links, events, late
// attributes, and the summary record — the `dnnlock trace` input format.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithSink(&buf))
	if !tr.Detailed() {
		t.Fatal("sinked tracer not Detailed")
	}
	bd := metrics.NewBreakdown()
	root := tr.Start("attack", String("model", "mlp"))
	root.SetBreakdown(bd)
	ph := root.Child("infer", Proc(metrics.ProcKeyBitInference), Int("site", 4))
	probe := ph.ChildDetail("probe", Int("bit", 7))
	if probe == nil {
		t.Fatal("ChildDetail declined with a sink attached")
	}
	probe.AddQueries(3)
	probe.AddRetry()
	probe.Event("degraded", String("reason", "transient"))
	probe.End(Bool("decided", true))
	ph.AddQueries(probe.Queries())
	ph.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(trace.Spans))
	}
	if len(trace.Summaries) != 1 {
		t.Fatalf("got %d summaries, want 1", len(trace.Summaries))
	}
	byName := map[string]SpanRecord{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
	}
	pr, ok := byName["probe"]
	if !ok {
		t.Fatal("probe span missing")
	}
	if pr.Queries != 3 || pr.Retries != 1 {
		t.Fatalf("probe queries/retries = %d/%d, want 3/1", pr.Queries, pr.Retries)
	}
	if pr.Parent != byName["infer"].ID {
		t.Fatal("probe not parented to infer")
	}
	if byName["infer"].Parent != byName["attack"].ID {
		t.Fatal("infer not parented to attack")
	}
	if pr.Attrs["bit"] != float64(7) { // JSON numbers decode as float64
		t.Fatalf("probe bit attr = %v", pr.Attrs["bit"])
	}
	if pr.Attrs["decided"] != true {
		t.Fatalf("late attr lost: %v", pr.Attrs)
	}
	if len(pr.Events) != 1 || pr.Events[0].Name != "degraded" {
		t.Fatalf("probe events = %+v", pr.Events)
	}
	if pr.Proc != "" {
		t.Fatalf("probe has proc label %q; detail spans must not roll up", pr.Proc)
	}
	inf := byName["infer"]
	if inf.Proc != string(metrics.ProcKeyBitInference) {
		t.Fatalf("infer proc = %q", inf.Proc)
	}
	if _, ok := inf.Attrs["proc"]; ok {
		t.Fatal("proc leaked into the attrs map")
	}
	sum := trace.Summaries[0]
	if sum.Span != byName["attack"].ID {
		t.Fatal("summary not tied to the anchoring span")
	}
	if sum.Queries[string(metrics.ProcKeyBitInference)] != 3 {
		t.Fatalf("summary queries = %v", sum.Queries)
	}
	if sum.TimesNS[string(metrics.ProcKeyBitInference)] != inf.DurNS {
		t.Fatalf("summary time %d != span dur %d",
			sum.TimesNS[string(metrics.ProcKeyBitInference)], inf.DurNS)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines — parallel
// QueryBatch workers each opening detail spans, adding counters, and ending
// them — and checks the totals and the exported record count. Run under
// -race this is the tracer's concurrency test.
func TestConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithSink(&buf))
	bd := metrics.NewBreakdown()
	root := tr.Start("attack")
	root.SetBreakdown(bd)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ph := root.Child(fmt.Sprintf("batch-%d", w), Proc(metrics.ProcLearningAttack))
				sp := ph.ChildDetail("probe", Int("i", i))
				sp.AddQueries(2)
				sp.Event("tick")
				sp.End()
				ph.AddQueries(2)
				root.AddQueries(2)
				ph.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wantQ := int64(workers * perWorker * 2)
	if got := bd.Queries(metrics.ProcLearningAttack); got != wantQ {
		t.Fatalf("rollup queries = %d, want %d", got, wantQ)
	}
	if got := root.Queries(); got != wantQ {
		t.Fatalf("root queries = %d, want %d", got, wantQ)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantSpans := 1 + 2*workers*perWorker
	if len(trace.Spans) != wantSpans {
		t.Fatalf("got %d span records, want %d", len(trace.Spans), wantSpans)
	}
	ids := map[uint64]bool{}
	for _, s := range trace.Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}

// TestReadTraceErrors pins the reader's tolerance: unknown record types are
// skipped, malformed JSON is an error with the line number.
func TestReadTraceErrors(t *testing.T) {
	in := `{"type":"span","id":1,"name":"a","start_ns":0,"dur_ns":5}
{"type":"future-record","payload":1}

{"type":"summary","span":1,"name":"a","times_ns":{},"queries":{},"total_ns":5}`
	trace, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) != 1 || len(trace.Summaries) != 1 {
		t.Fatalf("spans=%d summaries=%d", len(trace.Spans), len(trace.Summaries))
	}
	if _, err := ReadTrace(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

// TestSinkErrorSurfaced checks the first write error is kept and returned
// by Close instead of being silently dropped.
func TestSinkErrorSurfaced(t *testing.T) {
	tr := New(WithSink(failWriter{}))
	sp := tr.Start("x")
	sp.End()
	if err := tr.Close(); err == nil {
		t.Fatal("sink write error lost")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }
