package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI contract scripts/check.sh relies on: seeded violations exit 1
// with positioned diagnostics, clean trees exit 0, nonsense exits 2.

func TestRunFlagsSeededViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/nakedgo/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nakedgo]") || !strings.Contains(out, "fixture.go:") {
		t.Errorf("diagnostics lack analyzer tag or position:\n%s", out)
	}
}

func TestRunAnalyzerSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only poolpair is requested, so the nakedgo fixture module is clean.
	code := run([]string{"-analyzers=poolpair", "../../internal/lint/testdata/nakedgo/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers=nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/lint/testdata/spanpair/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var recs []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
		Fixable  bool   `json:"fixable"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &recs); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(recs) == 0 {
		t.Fatal("no JSON records emitted")
	}
	fixable := false
	for _, r := range recs {
		if r.Analyzer != "spanpair" {
			t.Errorf("unexpected analyzer %q in record %+v", r.Analyzer, r)
		}
		if r.File == "" || r.Line == 0 || r.Message == "" {
			t.Errorf("incomplete record %+v", r)
		}
		fixable = fixable || r.Fixable
	}
	if !fixable {
		t.Error("no record marked fixable; the defer-End fix should be offered")
	}
}

func TestRunJSONCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-analyzers=poolpair", "../../internal/lint/testdata/pkgdoc/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean tree emitted %q, want []", got)
	}
}

func TestRunDiffPreviewDoesNotWrite(t *testing.T) {
	fixture := "../../internal/lint/testdata/spanpair/internal/attack/fixture.go"
	before, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-diff", "../../internal/lint/testdata/spanpair/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (pending fixes); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "+++ ") || !strings.Contains(out, "defer sp.End()") {
		t.Errorf("diff preview lacks the inserted defer:\n%s", out)
	}
	after, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("-diff modified the fixture on disk")
	}
}

func TestRunFixRewritesInPlace(t *testing.T) {
	dir := t.TempDir()
	src := "../../internal/lint/testdata/spanpair"
	if err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		dst := filepath.Join(dir, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-fix", dir + "/..."}, &stdout, &stderr)
	// Unfixable findings (discarded, blanked spans) remain, so still 1.
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied") {
		t.Errorf("no applied-fixes summary: %s", stderr.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "internal/attack/fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "defer sp.End()") {
		t.Error("fix did not insert the deferred End")
	}

	// The fixed tree must no longer report the path leaks it repaired.
	var stdout2, stderr2 bytes.Buffer
	run([]string{dir + "/..."}, &stdout2, &stderr2)
	if strings.Contains(stdout2.String(), "not ended on this return path") {
		t.Errorf("path-leak findings survived -fix:\n%s", stdout2.String())
	}
}
