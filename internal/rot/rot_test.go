package rot

import (
	"math/rand"
	"reflect"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func lockedMLP(rng *rand.Rand) (*hpnn.LockedModel, hpnn.Key, *nn.Network) {
	net := nn.NewNetwork(
		nn.NewDense(4, 6).InitHe(rng), nn.NewFlip(6), nn.NewReLU(6),
		nn.NewDense(6, 3).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	return lm, key, net
}

func TestProvisionSealsKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lm, key, _ := lockedMLP(rng)
	dev := Provision("dev-1", key, []byte("s"))
	// Mutating the caller's key after provisioning must not affect the device.
	key[0] = !key[0]
	if err := dev.Bind(lm); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.2, 0.7, 0.1}
	got, err := dev.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	want := lm.Net.Forward(x) // lm.Net carries the original correct key
	if tensor.NormInf(tensor.VecSub(got, want)) > 1e-12 {
		t.Fatal("device does not compute the keyed function")
	}
	// No exported field or method may return the key.
	typ := reflect.TypeOf(dev)
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		for j := 0; j < m.Type.NumOut(); j++ {
			if m.Type.Out(j) == reflect.TypeOf(hpnn.Key{}) {
				t.Fatalf("method %s leaks the key type", m.Name)
			}
		}
	}
}

func TestEvaluateBeforeBind(t *testing.T) {
	dev := Provision("dev-2", hpnn.Key{true}, []byte("s"))
	if _, err := dev.Evaluate([]float64{1}); err != ErrNotBound {
		t.Fatalf("err = %v, want ErrNotBound", err)
	}
}

func TestBindKeyLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lm, _, _ := lockedMLP(rng)
	dev := Provision("dev-3", hpnn.Key{true, false}, []byte("s"))
	if err := dev.Bind(lm); err == nil {
		t.Fatal("expected key-length error")
	}
}

func TestAttestation(t *testing.T) {
	secret := []byte("super-secret")
	dev := Provision("dev-4", hpnn.Key{true}, secret)
	nonce := []byte{1, 2, 3}
	quote := dev.Attest(nonce, 7)
	if !VerifyAttestation("dev-4", secret, nonce, 7, quote) {
		t.Fatal("genuine attestation rejected")
	}
	if VerifyAttestation("dev-4", secret, nonce, 8, quote) {
		t.Fatal("replayed counter accepted")
	}
	if VerifyAttestation("dev-4", []byte("wrong"), nonce, 7, quote) {
		t.Fatal("wrong secret accepted")
	}
	if VerifyAttestation("dev-5", secret, nonce, 7, quote) {
		t.Fatal("wrong device accepted")
	}
	if VerifyAttestation("dev-4", secret, []byte{9}, 7, quote) {
		t.Fatal("wrong nonce accepted")
	}
}

func TestDeviceID(t *testing.T) {
	dev := Provision("my-device", hpnn.Key{}, nil)
	if dev.ID() != "my-device" {
		t.Fatal("ID mismatch")
	}
}
