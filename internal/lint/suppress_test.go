package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The stale-suppression golden tests run over testdata/suppress, which
// pairs every directive kind with a used and an unused instance. The
// // want marker harness cannot express these findings (the diagnostic
// lands on the directive's own comment line), so the expectations are
// pinned here by message.

func loadSuppressFixture(t *testing.T) *Program {
	t.Helper()
	dir := filepath.Join("testdata", "suppress")
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, te := range prog.TypeErrors {
		t.Errorf("fixture type error: %v", te)
	}
	return prog
}

func messagesOf(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func assertFindings(t *testing.T, diags []Diagnostic, wants []string) {
	t.Helper()
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants),
			strings.Join(messagesOf(diags), "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, diags[i].Message, w)
		}
		if diags[i].Analyzer != "directive" {
			t.Errorf("diagnostic %d filed under %q, want \"directive\"", i, diags[i].Analyzer)
		}
	}
}

// With the full suite running, every stale directive is reported — and
// only the stale ones: the used ignore and the used transfer stay silent.
func TestStaleSuppressionsReported(t *testing.T) {
	diags := loadSuppressFixture(t).Run(All)
	assertFindings(t, diags, []string{
		"unused //lint:ignore poolpair",
		"unused //lint:ignore determinism",
		"unused //lint:transfer",
	})
}

// With only poolpair running, the stale determinism ignore must stay
// silent: determinism produced no findings because it never ran, not
// because the directive is dead.
func TestStaleSuppressionGatedOnRunSet(t *testing.T) {
	diags := loadSuppressFixture(t).Run([]*Analyzer{PoolPair})
	assertFindings(t, diags, []string{
		"unused //lint:ignore poolpair",
		"unused //lint:transfer",
	})
}

// With only floatcmp running, nothing fires: no floatcmp directives exist,
// the poolpair directives are unjudgeable without poolpair, and transfer
// bookkeeping belongs to poolpair too.
func TestStaleSuppressionSilentWithoutOwners(t *testing.T) {
	diags := loadSuppressFixture(t).Run([]*Analyzer{FloatCmp})
	assertFindings(t, diags, nil)
}
