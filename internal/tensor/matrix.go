// Package tensor provides the dense linear algebra substrate used by the
// network framework and the attack: row-major matrices, basic BLAS-like
// operations, and the decompositions (LU, Cholesky, QR, SVD) behind the
// minimum-norm least-squares solver of Algorithm 1.
package tensor

import (
	"fmt"
	"math"
)

// Float is the element width of the kernel tier. float64 is the exact
// reference arithmetic every paper-facing result is defined in; float32 is
// the raw-speed tier used only where DESIGN.md §13 allows numerical drift
// (the learning attack's training loop).
type Float interface {
	float32 | float64
}

// Mat is a dense row-major matrix over either element width. All kernels
// below are generic over Mat[T]; the float64 instantiation executes the
// exact same IEEE operations in the exact same order as the historical
// float64-only code, so the bit-identity guarantees are untouched.
type Mat[T Float] struct {
	Rows, Cols int
	Data       []T // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// Matrix is the exact float64 matrix — the element type of every paper-
// facing code path. It is an alias (not a wrapper) of Mat[float64], so the
// generic kernels and the historical float64 API are one and the same.
type Matrix = Mat[float64]

// New returns a zeroed Rows×Cols float64 matrix.
func New(rows, cols int) *Matrix {
	return NewOf[float64](rows, cols)
}

// NewOf returns a zeroed Rows×Cols matrix of the given element width.
func NewOf[T Float](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice[T Float](rows, cols int, data []T) *Mat[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// ConvertInto copies src into dst element-wise, casting between widths
// (same shape required). This is the one-time boundary crossing of the
// float32 tier: prefix activations and labels demote once per training run,
// never per minibatch.
func ConvertInto[D, S Float](dst *Mat[D], src *Mat[S]) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: ConvertInto shape mismatch %dx%d <- %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = D(v)
	}
}

// At returns element (i, j).
func (m *Mat[T]) At(i, j int) T { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat[T]) Set(i, j int, v T) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Mat[T]) Row(i int) []T { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i.
func (m *Mat[T]) SetRow(i int, v []T) {
	if len(v) != m.Cols {
		panic("tensor: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// GatherRowsInto copies src rows rows[0], rows[1], ... into dst rows
// 0, 1, ... — the minibatch-assembly primitive of the learning attack,
// which shuffles a permutation and gathers the selected examples (or their
// cached prefix activations) into a reused workspace.
func GatherRowsInto[T Float](dst, src *Mat[T], rows []int) {
	if dst.Cols != src.Cols || dst.Rows != len(rows) {
		panic(fmt.Sprintf("tensor: GatherRowsInto shape mismatch %dx%d <- %d of %dx%d",
			dst.Rows, dst.Cols, len(rows), src.Rows, src.Cols))
	}
	for i, r := range rows {
		copy(dst.Row(i), src.Row(r))
	}
}

// Col returns a copy of column j.
func (m *Mat[T]) Col(j int) []T {
	return m.ColInto(make([]T, m.Rows), j)
}

// ColInto copies column j into dst (length m.Rows) and returns dst. Hot
// loops that walk columns repeatedly (the decompositions) use this with a
// reused buffer instead of Col to avoid per-call allocation and to turn
// the strided column reads into contiguous ones.
func (m *Mat[T]) ColInto(dst []T, j int) []T {
	if len(dst) != m.Rows {
		panic("tensor: ColInto length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol copies v into column j.
func (m *Mat[T]) SetCol(j int, v []T) {
	if len(v) != m.Rows {
		panic("tensor: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Mat[T]) Clone() *Mat[T] {
	c := NewOf[T](m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies the contents of src (same shape required).
func (m *Mat[T]) CopyFrom(src *Mat[T]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets all elements to 0.
func (m *Mat[T]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Mat[T]) T() *Mat[T] {
	t := NewOf[T](m.Cols, m.Rows)
	m.TransposeInto(t)
	return t
}

// TransposeInto writes mᵀ into dst (shape Cols×Rows), reusing dst's
// storage — used with pooled workspaces where a transpose is genuinely
// needed for access-pattern reasons (e.g. staging Jacobian columns).
func (m *Mat[T]) TransposeInto(dst *Mat[T]) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("tensor: TransposeInto shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// MatMul returns a*b.
func MatMul[T Float](a, b *Mat[T]) *Mat[T] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewOf[T](a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, reusing dst's storage. Rows of dst are
// computed by the cache-blocked kernel of kernels.go, sharded over the
// worker pool of parallel.go; results are bit-for-bit identical at every
// parallelism level because each row's accumulation order is fixed.
func MatMulInto[T Float](dst, a, b *Mat[T]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if w := shardWidth(a.Rows, a.Rows*a.Cols*b.Cols); w <= 1 {
		matMulRows(dst, a, b, 0, a.Rows, false)
	} else {
		parallelRows(w, a.Rows, func(lo, hi int) { matMulRows(dst, a, b, lo, hi, false) })
	}
}

// MatMulAddInto computes dst += a*b.
func MatMulAddInto[T Float](dst, a, b *Mat[T]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulAddInto shape mismatch")
	}
	if w := shardWidth(a.Rows, a.Rows*a.Cols*b.Cols); w <= 1 {
		matMulRows(dst, a, b, 0, a.Rows, true)
	} else {
		parallelRows(w, a.Rows, func(lo, hi int) { matMulRows(dst, a, b, lo, hi, true) })
	}
}

// MatVec returns a·x.
func MatVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MatVecInto(out, a, x)
	return out
}

// MatVecInto computes dst = a·x, sharding rows over the worker pool for
// large systems (each dst element is one dot product, so any sharding is
// bit-identical to the serial pass).
func MatVecInto(dst []float64, a *Matrix, x []float64) {
	if a.Cols != len(x) || a.Rows != len(dst) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %dx%d · %d -> %d", a.Rows, a.Cols, len(x), len(dst)))
	}
	if w := shardWidth(a.Rows, a.Rows*a.Cols); w <= 1 {
		matVecRows(dst, a, x, 0, a.Rows)
	} else {
		parallelRows(w, a.Rows, func(lo, hi int) { matVecRows(dst, a, x, lo, hi) })
	}
}

// matVecRows computes dst[lo:hi] = a[lo:hi]·x, one dot product per row.
func matVecRows(dst []float64, a *Matrix, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatTVec returns aᵀ·x without materialising the transpose.
func MatTVec(a *Matrix, x []float64) []float64 {
	if a.Rows != len(x) {
		panic("tensor: MatTVec shape mismatch")
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		xi := x[i]
		//lint:ignore floatcmp exact-zero skip: a zero coefficient contributes nothing to the product
		if xi == 0 {
			continue
		}
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// Add returns a+b element-wise.
func Add[T Float](a, b *Mat[T]) *Mat[T] {
	sameShape(a, b, "Add")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace sets m += b.
func (m *Mat[T]) AddInPlace(b *Mat[T]) {
	sameShape(m, b, "AddInPlace")
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Sub returns a-b element-wise.
func Sub[T Float](a, b *Mat[T]) *Mat[T] {
	sameShape(a, b, "Sub")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Mat[T]) Scale(s T) *Mat[T] {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace sets m *= s.
func (m *Mat[T]) ScaleInPlace(s T) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Hadamard returns the element-wise product a∘b.
func Hadamard[T Float](a, b *Mat[T]) *Mat[T] {
	sameShape(a, b, "Hadamard")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// MaskRows zeroes every row i with mask[i] == false, in place, and returns m.
// This is the "M^(i)" broadcast masking of the paper's Formula 3.
func (m *Mat[T]) MaskRows(mask []bool) *Mat[T] {
	if len(mask) != m.Rows {
		panic("tensor: MaskRows length mismatch")
	}
	for i, keep := range mask {
		if !keep {
			row := m.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	}
	return m
}

// MaxAbs returns max_i |m.Data[i]| (0 for an empty matrix).
func (m *Mat[T]) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(float64(v)); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobNorm returns the Frobenius norm.
func (m *Mat[T]) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and all elements within tol.
func Equal[T Float](a, b *Mat[T], tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(float64(v)-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func sameShape[T Float](a, b *Mat[T], op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Mat[T]) String() string {
	s := fmt.Sprintf("Matrix %dx%d [", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 6; i++ {
		s += fmt.Sprintf("%v", m.Row(i))
		if i < m.Rows-1 {
			s += "; "
		}
	}
	if m.Rows > 6 {
		s += "..."
	}
	return s + "]"
}
