package tensor

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically) singular matrix.
var ErrSingular = errors.New("tensor: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int   // row permutation
	sign int     // permutation sign, for Det
}

// LUDecompose factors a square matrix with partial pivoting.
func LUDecompose(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("tensor: LUDecompose requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot: largest absolute value in column k at or below row k.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		//lint:ignore floatcmp an exactly zero pivot column is the only unfactorable case; conditioning is the caller's concern
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		ukk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / ukk
			lu.Set(i, k, m)
			//lint:ignore floatcmp exact-zero skip: a zero multiplier leaves the row untouched
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		panic("tensor: LU.Solve length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		//lint:ignore floatcmp exactly zero diagonal is the only value the division cannot survive
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear solves the square system A·x = b directly.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ for a square nonsingular A.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	for j := 0; j < n; j++ {
		col, err := f.Solve(Basis(n, j))
		if err != nil {
			return nil, err
		}
		inv.SetCol(j, col)
	}
	return inv, nil
}
