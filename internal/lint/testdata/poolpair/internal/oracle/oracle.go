// Package oracle stubs the pooled QueryBatch surface for the poolpair
// golden tests.
package oracle

import "dnnlock/internal/tensor"

type Oracle struct{}

// QueryBatch mirrors the real oracle: the result comes from the workspace
// pool and the caller owns its release.
func (o *Oracle) QueryBatch(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.GetMatrix(x.Rows, x.Cols)
	return out
}
