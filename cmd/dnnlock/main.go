// Command dnnlock is the driver for the HPNN logic-locking reproduction:
// it trains and locks models, launches the decryption and monolithic
// attacks against a simulated hardware-root-of-trust oracle, and
// regenerates the paper's Table 1 and Figure 3.
//
// Usage:
//
//	dnnlock lock   -model mlp -bits 32 -out locked.json -keyout key.txt [-epochs 4] [-examples 1500] [-seed 1] [-scheme negation|scaling|bias-shift|weight-perturb -alpha 0.5]
//	dnnlock attack -in locked.json -keyfile key.txt [-monolithic] [-seed 1]
//	dnnlock bench  -exp table1|figure3|all [-scale tiny|quick|paper] [-models mlp,lenet] [-keysizes 16,32] [-f32] [-multisect k] [-probe-cache] [-csv rows.csv] [-seed 1]
//	dnnlock table1 -model mlp [-scale tiny|quick|paper] [-keysizes 16,32] [-f32] [-multisect k] [-probe-cache] [-cellworkers n] [-csv rows.csv] [-trace out.jsonl] [-pprof :6060] [-v] [-seed 1]
//	dnnlock trace  -in out.jsonl [-check] [-cover 0.5] [-depth 3]
//	dnnlock robust -model mlp -bits 8 [-scale tiny|quick|paper] [-sigmas 0,1e-4,1e-3] [-qbits 24,16,10] [-csv rows.csv] [-seed 1]
//	dnnlock farm   -model mlp -bits 8 [-scale tiny|quick|paper] [-devices 1000] [-rtts 1ms,20ms,100ms] [-bws 0,10,1] [-loss 0,0.01] [-mixes clean,mixed] [-csv rows.csv] [-seed 1]
//	dnnlock verify -in locked.json -keyfile key.txt -candidate recovered.txt [-samples 64] [-seed 1]
//	dnnlock info   -in locked.json
//
// Observability: -trace exports a JSONL span trace of the whole sweep
// (read it back with `dnnlock trace`), -pprof serves net/http/pprof on a
// private mux, and -v (or DNNLOCK_LOG=debug) turns on structured debug
// logging. `dnnlock trace -check` audits a trace end to end: exported
// summaries must equal a rollup recomputed from the raw spans — queries,
// rounds, per-procedure times, and (for farm traces) the two-way sim_ns
// reconciliation between the transport's channel clock and the span tree.
//
// The long-running service form of this command is dnnlockd (cmd/dnnlockd):
// the same attacks behind an HTTP job API with checkpoint/resume — see
// OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/dataset"
	"dnnlock/internal/harness"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/modelio"
	"dnnlock/internal/models"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/train"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "lock":
		err = cmdLock(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "table1":
		err = cmdTable1(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "robust":
		err = cmdRobust(os.Args[2:])
	case "farm":
		err = cmdFarm(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnnlock:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dnnlock <lock|attack|bench|table1|trace|robust|farm|info|verify> [flags]
  lock    build, HPNN-lock, and train a model; save model + key
  attack  run the DNN decryption attack (or -monolithic) on a saved model
  bench   regenerate the paper's Table 1 / Figure 3
  table1  Table 1 sweep with observability: -trace out.jsonl -pprof :6060 -v
  trace   render a JSONL trace: Figure-3 breakdown table + flame summary
  robust  sweep the decryption attack across noisy/quantized oracles
  farm    price the attack over a simulated device farm: RTT x bandwidth x loss x fleet mix
  info    describe a saved model
  verify  check a candidate key against the device key (fidelity + equivalence)`)
}

func cmdLock(args []string) error {
	fs := flag.NewFlagSet("lock", flag.ExitOnError)
	model := fs.String("model", "mlp", "architecture: mlp, lenet, resnet, vtransformer")
	schemeName := fs.String("scheme", "negation", "locking scheme: negation, scaling, bias-shift, weight-perturb")
	alpha := fs.Float64("alpha", 0.5, "variant parameter (scaling factor or shift delta)")
	bits := fs.Int("bits", 32, "key size in bits")
	epochs := fs.Int("epochs", 4, "training epochs (0 skips training)")
	examples := fs.Int("examples", 1500, "synthetic training examples")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "locked.json", "output model file")
	keyout := fs.String("keyout", "key.txt", "output key file (the device secret)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	builder, c, h, _, err := models.ByName(*model)
	if err != nil {
		return err
	}
	scheme, needAlpha, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	a := 0.0
	if needAlpha {
		a = *alpha
	}
	if scheme == hpnn.WeightPerturb && *model != "mlp" {
		return fmt.Errorf("weight-perturb locking needs dense lockable layers; use -model mlp")
	}
	net := builder(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: a, KeyBits: *bits, Rng: rng})
	var ds *dataset.Dataset
	if c == 1 && h == 28 {
		ds = dataset.Digits(*examples, *seed+7)
	} else {
		ds = dataset.Shapes(*examples, *seed+7)
	}
	tr, te := ds.Split(0.8)
	if *epochs > 0 {
		fmt.Printf("training %s (%d params) with a %d-bit key...\n", *model, net.NumParams(), *bits)
		res := train.Fit(net, tr.X, tr.Y, te.X, te.Y, train.Config{
			Epochs: *epochs, BatchSize: 32, Optimizer: train.NewAdam(0.003),
			Seed: *seed, Log: os.Stdout,
		})
		fmt.Printf("trained: test accuracy %.3f\n", res.TestAccuracy)
	}
	if err := modelio.SaveNetwork(*out, lm.Net, &lm.Spec); err != nil {
		return err
	}
	if err := os.WriteFile(*keyout, []byte(key.String()+"\n"), 0o600); err != nil {
		return err
	}
	fmt.Printf("locked model -> %s, key (%d bits) -> %s\n", *out, len(key), *keyout)
	return nil
}

func parseScheme(name string) (hpnn.Scheme, bool, error) {
	switch name {
	case "negation":
		return hpnn.Negation, false, nil
	case "scaling":
		return hpnn.Scaling, true, nil
	case "bias-shift":
		return hpnn.BiasShift, true, nil
	case "weight-perturb":
		return hpnn.WeightPerturb, true, nil
	default:
		return 0, false, fmt.Errorf("unknown scheme %q", name)
	}
}

func parseKeyFile(path string, want int) (hpnn.Key, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(raw))
	if len(s) != want {
		return nil, fmt.Errorf("key file has %d bits, spec wants %d", len(s), want)
	}
	key := make(hpnn.Key, want)
	for i, ch := range s {
		switch ch {
		case '0':
		case '1':
			key[i] = true
		default:
			return nil, fmt.Errorf("key file contains %q", ch)
		}
	}
	return key, nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "locked.json", "locked model file")
	keyfile := fs.String("keyfile", "key.txt", "device key file (provisions the simulated oracle)")
	mono := fs.Bool("monolithic", false, "run the monolithic learning attack instead of Algorithm 2")
	seed := fs.Int64("seed", 1, "attack seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, spec, err := modelio.LoadNetwork(*in)
	if err != nil {
		return err
	}
	if spec == nil {
		return fmt.Errorf("%s carries no lock spec", *in)
	}
	key, err := parseKeyFile(*keyfile, spec.NumBits())
	if err != nil {
		return err
	}
	// Provision a fresh device with the key from the key file and bind the
	// model to it; the adversary only ever sees the white box and the
	// device's query interface.
	lm := hpnn.NewLockedModel(net, *spec)
	orc := oracle.New(lm, key)
	white := lm.WhiteBox()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	if *mono {
		rep, err := core.Monolithic(white, *spec, orc, cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("monolithic attack: %d epochs, %d queries, %.2fs\n", rep.Epochs, rep.Queries, rep.Time.Seconds())
		fmt.Printf("recovered key: %s\n", rep.Key)
		fmt.Printf("fidelity vs device key: %.4f\n", rep.Key.Fidelity(key))
		return nil
	}
	res, err := core.Run(white, *spec, orc, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("decryption attack: %d queries, %.2fs\n", res.Queries, res.Time.Seconds())
	fmt.Printf("breakdown: %s\n", res.Breakdown)
	fmt.Printf("recovered key: %s\n", res.Key)
	fmt.Printf("fidelity vs device key: %.4f\n", res.Key.Fidelity(key))
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment: table1, figure3, or all")
	scaleName := fs.String("scale", "tiny", "scale: tiny, quick, paper")
	modelsFlag := fs.String("models", "mlp,lenet,resnet,vtransformer", "comma-separated model list")
	keysizes := fs.String("keysizes", "", "override key sizes for all models, e.g. 16,32")
	csvPath := fs.String("csv", "", "also write Table 1 rows to this CSV file")
	f32 := fs.Bool("f32", false, "train the learning attack in float32 (speed tier; recovered keys are unchanged)")
	multisect := fs.Int("multisect", 0, "k-way multisection in the critical-point search (0/1 = bisection; trades more probes for fewer rounds)")
	probeCache := fs.Bool("probe-cache", false, "memoize oracle probes by input (changes query counts; rounds and fidelity only improve)")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	if *f32 {
		sc.AttackCfg.TrainPrecision = core.Float32
	}
	sc.AttackCfg.Multisect = *multisect
	sc.AttackCfg.ProbeCache = *probeCache
	if err := applyKeySizes(&sc, *keysizes); err != nil {
		return err
	}
	names := strings.Split(*modelsFlag, ",")
	fmt.Printf("scale=%s models=%v\n", sc.Name, names)
	rows, err := harness.RunTable1(sc, names, os.Stdout)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		harness.WriteCSV(rows, f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *exp == "figure3" || *exp == "all" {
		fmt.Println("\nFigure 3: runtime breakdown of the decryption attack")
		harness.FormatFigure3(harness.RunFigure3(rows), os.Stdout)
	}
	return nil
}

// applyKeySizes overrides every model's key sizes with a comma-separated
// list; an empty list leaves the scale's defaults alone.
func applyKeySizes(sc *harness.Scale, list string) error {
	if list == "" {
		return nil
	}
	var sizes []int
	for _, tok := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -keysizes: %v", err)
		}
		sizes = append(sizes, v)
	}
	for m := range sc.KeySizes {
		sc.KeySizes[m] = sizes
	}
	return nil
}

// cmdTable1 is the observability-first Table 1 driver: the bench sweep
// plus span tracing (-trace), pprof (-pprof), and debug logging (-v).
func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	modelsFlag := fs.String("model", "mlp", "comma-separated model list")
	scaleName := fs.String("scale", "tiny", "scale: tiny, quick, paper")
	keysizes := fs.String("keysizes", "", "override key sizes for all models, e.g. 16,32")
	csvPath := fs.String("csv", "", "also write Table 1 rows to this CSV file")
	tracePath := fs.String("trace", "", "export a JSONL span trace to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address, e.g. :6060")
	verbose := fs.Bool("v", false, "structured debug logging to stderr (same as DNNLOCK_LOG=debug)")
	f32 := fs.Bool("f32", false, "train the learning attack in float32 (speed tier; recovered keys are unchanged)")
	multisect := fs.Int("multisect", 0, "k-way multisection in the critical-point search (0/1 = bisection; trades more probes for fewer rounds)")
	probeCache := fs.Bool("probe-cache", false, "memoize oracle probes by input (changes query counts; rounds and fidelity only improve)")
	cellWorkers := fs.Int("cellworkers", 0, "concurrent Table 1 cells (0 = DNNLOCK_PROCS/CPU count, 1 = serial)")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	if *f32 {
		sc.AttackCfg.TrainPrecision = core.Float32
	}
	sc.AttackCfg.Multisect = *multisect
	sc.AttackCfg.ProbeCache = *probeCache
	sc.CellWorkers = *cellWorkers
	if err := applyKeySizes(&sc, *keysizes); err != nil {
		return err
	}
	if *verbose {
		sc.AttackCfg.Logger = obs.NewLogger(os.Stderr, slog.LevelDebug)
	}
	if *pprofAddr != "" {
		stop, err := obs.StartProfiler(*pprofAddr)
		if err != nil {
			return err
		}
		// Shutdown errors on exit are uninteresting; the server dies with us.
		defer stop()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	var tr *obs.Tracer
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return err
		}
		tr = obs.New(obs.WithSink(traceFile))
		sc.AttackCfg.Tracer = tr
	}
	names := strings.Split(*modelsFlag, ",")
	fmt.Printf("scale=%s models=%v\n", sc.Name, names)
	rows, runErr := harness.RunTable1(sc, names, os.Stdout)
	if tr != nil {
		// The tracer flushes on every span end; Close surfaces the first
		// sink write error of the whole run.
		if err := tr.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("trace export: %w", err)
		}
		if err := traceFile.Close(); err != nil && runErr == nil {
			runErr = err
		}
		fmt.Printf("trace -> %s (render with: dnnlock trace -in %s)\n", *tracePath, *tracePath)
	}
	if runErr != nil {
		return runErr
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		harness.WriteCSV(rows, f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Println("\nFigure 3: runtime breakdown of the decryption attack")
	harness.FormatFigure3(harness.RunFigure3(rows), os.Stdout)
	return nil
}

// cmdTrace reads a JSONL trace produced by `table1 -trace` and renders
// the Figure-3 breakdown of every anchored attack plus a flame-style
// summary of the span tree. -check verifies the exported summaries
// against a rollup recomputed from the raw spans: query and round counts,
// per-procedure wall-time coverage, and — for traces of farm-backed runs —
// the two-way sim_ns reconciliation (every span's simulated channel time
// must roll up to its anchor, and the anchor total must match the
// transport's channel clock).
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "JSONL trace file (from `dnnlock table1 -trace`)")
	check := fs.Bool("check", false, "verify summaries against a span-tree rollup (queries, rounds, proc coverage, and farm sim_ns two-way reconciliation)")
	cover := fs.Float64("cover", 0.5, "with -check: minimum fraction of anchor wall time the procedures must cover")
	depth := fs.Int("depth", 3, "flame summary depth (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	trace, err := obs.ReadTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *check {
		if err := trace.Check(*cover); err != nil {
			return fmt.Errorf("trace check: %w", err)
		}
		fmt.Printf("trace check: ok (%d spans, %d anchors)\n", len(trace.Spans), len(trace.Anchors()))
	}
	trace.BreakdownTable(os.Stdout)
	if *depth > 0 {
		fmt.Println()
		trace.Flame(os.Stdout, *depth)
	}
	return nil
}

func parseScale(name string) (harness.Scale, error) {
	return harness.ScaleByName(name)
}

func cmdRobust(args []string) error {
	fs := flag.NewFlagSet("robust", flag.ExitOnError)
	model := fs.String("model", "mlp", "architecture: mlp, lenet, resnet, vtransformer")
	bits := fs.Int("bits", 8, "key size in bits")
	scaleName := fs.String("scale", "tiny", "scale: tiny, quick, paper")
	sigmaFlag := fs.String("sigmas", "0,1e-5,1e-4,1e-3", "comma-separated oracle noise sigmas (0 = clean)")
	qbitsFlag := fs.String("qbits", "24,16,10", "comma-separated quantization depths in fractional bits (0 = full precision)")
	csvPath := fs.String("csv", "", "also write sweep rows to this CSV file")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	var sigmas []float64
	for _, tok := range strings.Split(*sigmaFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad -sigmas: %v", err)
		}
		sigmas = append(sigmas, v)
	}
	var qbits []int
	for _, tok := range strings.Split(*qbitsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -qbits: %v", err)
		}
		qbits = append(qbits, v)
	}
	fmt.Printf("robustness sweep: scale=%s model=%s bits=%d sigmas=%v qbits=%v\n",
		sc.Name, *model, *bits, sigmas, qbits)
	rows, err := harness.RunRobustness(sc, *model, *bits, sigmas, qbits, os.Stdout)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		harness.WriteRobustnessCSV(rows, f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// cmdFarm sweeps the decryption attack over the simulated device farm
// (internal/farm): each grid point builds a heterogeneous fleet behind an
// event-driven channel simulator and reports the predicted attack
// wall-clock on that channel next to the attack's CPU time.
func cmdFarm(args []string) error {
	fs := flag.NewFlagSet("farm", flag.ExitOnError)
	model := fs.String("model", "mlp", "architecture: mlp, lenet, resnet, vtransformer")
	bits := fs.Int("bits", 8, "key size in bits")
	scaleName := fs.String("scale", "tiny", "scale: tiny, quick, paper")
	devices := fs.Int("devices", 1000, "simulated fleet size per sweep point")
	rttFlag := fs.String("rtts", "1ms,20ms,100ms", "comma-separated base round-trip times (Go durations)")
	bwFlag := fs.String("bws", "0,10,1", "comma-separated bandwidths in Mbit/s (0 = unconstrained)")
	lossFlag := fs.String("loss", "0,0.01", "comma-separated per-round channel loss probabilities")
	mixFlag := fs.String("mixes", "clean,mixed", "comma-separated fleet mixes: clean, edge, mixed")
	csvPath := fs.String("csv", "", "also write sweep rows to this CSV file")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	sw := harness.FarmSweep{Devices: *devices, MixNames: strings.Split(*mixFlag, ",")}
	for _, tok := range strings.Split(*rttFlag, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -rtts: %v", err)
		}
		sw.RTTs = append(sw.RTTs, d)
	}
	for _, tok := range strings.Split(*bwFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad -bws: %v", err)
		}
		// Mbit/s on the flag, bytes/second inside the simulator.
		sw.Bandwidths = append(sw.Bandwidths, v*1e6/8)
	}
	for _, tok := range strings.Split(*lossFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad -loss: %v", err)
		}
		sw.Losses = append(sw.Losses, v)
	}
	fmt.Printf("farm sweep: scale=%s model=%s bits=%d devices=%d rtts=%s bws=%sMbit loss=%s mixes=%s\n",
		sc.Name, *model, *bits, sw.Devices, *rttFlag, *bwFlag, *lossFlag, *mixFlag)
	rows, err := harness.RunFarm(sc, *model, *bits, sw, os.Stdout)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		harness.WriteFarmCSV(rows, f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "locked.json", "locked model file")
	keyfile := fs.String("keyfile", "key.txt", "device key file")
	candidate := fs.String("candidate", "", "candidate key file to verify")
	samples := fs.Int("samples", 64, "random inputs for the functional comparison")
	seed := fs.Int64("seed", 1, "probe seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidate == "" {
		return fmt.Errorf("verify needs -candidate")
	}
	net, spec, err := modelio.LoadNetwork(*in)
	if err != nil {
		return err
	}
	if spec == nil {
		return fmt.Errorf("%s carries no lock spec", *in)
	}
	key, err := parseKeyFile(*keyfile, spec.NumBits())
	if err != nil {
		return err
	}
	cand, err := parseKeyFile(*candidate, spec.NumBits())
	if err != nil {
		return err
	}
	lm := hpnn.NewLockedModel(net, *spec)
	ref := lm.Apply(key)
	got := lm.Apply(cand)
	rng := rand.New(rand.NewSource(*seed))
	maxDiff := 0.0
	for i := 0; i < *samples; i++ {
		x := make([]float64, net.InSize())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		yr := ref.Forward(x)
		yg := got.Forward(x)
		for j := range yr {
			d := yr[j] - yg[j]
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("fidelity: %.4f (hamming distance %d)\n", cand.Fidelity(key), cand.HammingDistance(key))
	fmt.Printf("max output difference over %d probes: %.3e\n", *samples, maxDiff)
	if maxDiff < 1e-9 {
		fmt.Println("functionally equivalent")
	} else {
		fmt.Println("NOT functionally equivalent")
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "locked.json", "model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, spec, err := modelio.LoadNetwork(*in)
	if err != nil {
		return err
	}
	fmt.Printf("input %d -> output %d, %d parameters, %d lockable sites\n",
		net.InSize(), net.OutSize(), net.NumParams(), net.NumFlipSites())
	for i, l := range net.Layers {
		fmt.Printf("  layer %2d: %-16s %6d -> %d\n", i, l.Name(), l.InSize(), l.OutSize())
	}
	if spec != nil {
		fmt.Printf("lock: scheme=%s alpha=%g bits=%d\n", spec.Scheme, spec.Alpha, spec.NumBits())
		bySite := spec.SiteBits()
		for site, idxs := range bySite {
			fmt.Printf("  site %d: %d protected neurons\n", site, len(idxs))
		}
	}
	return nil
}
