package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func newTestOracle(seed int64) (*Oracle, *nn.Network) {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork(
		nn.NewDense(4, 6).InitHe(rng), nn.NewFlip(6), nn.NewReLU(6),
		nn.NewDense(6, 3).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	return New(lm, key), net
}

// mustQuery fails the test on a query error; the clean oracle never errors.
func mustQuery(t *testing.T, o Interface, x []float64) []float64 {
	t.Helper()
	y, err := o.Query(x)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	return y
}

func mustQueryBatch(t *testing.T, o Interface, x *tensor.Matrix) *tensor.Matrix {
	t.Helper()
	y, err := o.QueryBatch(x)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	return y
}

func TestQueryMatchesKeyedNetwork(t *testing.T) {
	o, net := newTestOracle(1)
	x := []float64{0.5, -0.1, 0.9, 0.2}
	if tensor.NormInf(tensor.VecSub(mustQuery(t, o, x), net.Forward(x))) > 1e-12 {
		t.Fatal("oracle output differs from keyed network")
	}
}

func TestQueryCounting(t *testing.T) {
	o, _ := newTestOracle(2)
	x := []float64{1, 2, 3, 4}
	mustQuery(t, o, x)
	mustQuery(t, o, x)
	if o.Queries() != 2 {
		t.Fatalf("Queries = %d", o.Queries())
	}
	xb := tensor.New(5, 4)
	yb := mustQueryBatch(t, o, xb)
	tensor.PutMatrix(yb)
	if o.Queries() != 7 {
		t.Fatalf("Queries after batch = %d", o.Queries())
	}
	o.ResetCounter()
	if o.Queries() != 0 {
		t.Fatal("ResetCounter failed")
	}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	o, _ := newTestOracle(3)
	rng := rand.New(rand.NewSource(7))
	xb := tensor.New(4, 4)
	for i := range xb.Data {
		xb.Data[i] = rng.NormFloat64()
	}
	got := mustQueryBatch(t, o, xb)
	defer tensor.PutMatrix(got)
	for r := 0; r < 4; r++ {
		want := mustQuery(t, o, xb.Row(r))
		for c := range want {
			if got.At(r, c) != want[c] {
				t.Fatal("batch/single mismatch")
			}
		}
	}
}

// Regression for the 0-row crash: an empty query set must yield an empty
// pooled matrix the caller can release or iterate, never nil.
func TestQueryBatchEmptyInput(t *testing.T) {
	o, _ := newTestOracle(5)
	empty := tensor.New(0, 4)
	out, err := o.QueryBatch(empty)
	if err != nil {
		t.Fatalf("QueryBatch(0 rows): %v", err)
	}
	if out == nil {
		t.Fatal("QueryBatch(0 rows) returned nil")
	}
	if out.Rows != 0 {
		t.Fatalf("empty batch has %d rows", out.Rows)
	}
	tensor.PutMatrix(out) // must be poolable like any other batch
	if o.Queries() != 0 {
		t.Fatalf("empty batch consumed %d queries", o.Queries())
	}
}

func TestConcurrentQueries(t *testing.T) {
	o, _ := newTestOracle(4)
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			x := make([]float64, 4)
			for i := 0; i < each; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				if _, err := o.Query(x); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if o.Queries() != workers*each {
		t.Fatalf("Queries = %d, want %d", o.Queries(), workers*each)
	}
}
