package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestRidgeSolveMatchesLeastSquares(t *testing.T) {
	// Tall full-rank system: ridge with a tiny λ must agree with QR.
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 12, 5)
	want := randVec(rng, 5)
	b := MatVec(a, want)
	got := ridgeSolve(a, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
			t.Fatalf("ridge[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRidgeSolveRankDeficientLarge(t *testing.T) {
	// A large tall rank-1 system: this is the configuration that used to
	// fall into the Jacobi SVD and hang; ridge must return quickly with a
	// least-squares solution.
	rng := rand.New(rand.NewSource(2))
	m, n := 600, 400 // m*n > 100_000 triggers the ridge path in LeastSquares
	u := randVec(rng, m)
	v := randVec(rng, n)
	a := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, u[i]*v[j])
		}
	}
	b := MatVec(a, v) // in the column space
	res := LeastSquares(a, b)
	if res.RelRes > 1e-6 {
		t.Fatalf("RelRes = %v on a consistent rank-1 system", res.RelRes)
	}
}

func TestLeastSquaresUnreachableTallReportsResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 500, 300
	a := New(m, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1) // columns span only the first n coordinates
	}
	_ = rng
	b := make([]float64, m)
	b[m-1] = 1 // outside the span
	res := LeastSquares(a, b)
	if res.Residual < 0.99 {
		t.Fatalf("Residual = %v, want ~1", res.Residual)
	}
}

func TestLeastSquaresRelRes(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 0, 0, 1})
	res := LeastSquares(a, []float64{3, 4})
	if res.RelRes > 1e-9 {
		t.Fatalf("RelRes = %v on an exactly solvable system", res.RelRes)
	}
	// Zero rhs: RelRes must not divide by zero.
	res0 := LeastSquares(a, []float64{0, 0})
	if math.IsNaN(res0.RelRes) || math.IsInf(res0.RelRes, 0) {
		t.Fatalf("RelRes = %v for zero rhs", res0.RelRes)
	}
}

func TestQRPanicsOnWideMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rows < cols")
		}
	}()
	QRDecompose(New(2, 3))
}

func TestInverseSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); err == nil {
		t.Fatal("inverse of a singular matrix succeeded")
	}
}
