package core

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// plannerFixture locks the same model the same way every call, so two runs
// with different planner settings attack bit-identical instances.
func plannerFixture(t *testing.T) (*Result, func(cfg Config) *Result) {
	t.Helper()
	run := func(cfg Config) *Result {
		rng := rand.New(rand.NewSource(10))
		white, spec, orc, key := lockAndOracle(models.TinyMLP(rng), hpnn.Config{
			Scheme: hpnn.Negation, KeyBits: 10, Rng: rng,
		})
		cfg.Seed = 11
		res, err := Run(white, spec, orc, cfg)
		if err != nil {
			t.Fatalf("Run failed: %v", err)
		}
		if fid := res.Key.Fidelity(key); fid != 1 {
			t.Fatalf("fidelity %.3f", fid)
		}
		return res
	}
	return run(DefaultConfig()), run
}

// TestPlannerEquivalence pins the tentpole contract: the planner (on by
// default) recovers exactly the key the pre-planner scalar path recovers,
// with exactly the same query count — only the round count drops. The
// scalar path is preserved behind Config.DisablePlanner for this test.
func TestPlannerEquivalence(t *testing.T) {
	planned, run := plannerFixture(t)
	legacy := run(Config{DisablePlanner: true})

	if len(planned.Key) != len(legacy.Key) {
		t.Fatalf("key lengths differ: %d vs %d", len(planned.Key), len(legacy.Key))
	}
	for i := range planned.Key {
		if planned.Key[i] != legacy.Key[i] {
			t.Fatalf("bit %d differs between planner and scalar paths", i)
		}
	}
	if planned.Queries != legacy.Queries {
		t.Fatalf("planner changed the query count: %d vs %d (batching must be free)",
			planned.Queries, legacy.Queries)
	}
	if planned.Rounds <= 0 || legacy.Rounds <= 0 {
		t.Fatalf("rounds not recorded: planned %d, legacy %d", planned.Rounds, legacy.Rounds)
	}
	if planned.Rounds*2 > legacy.Rounds {
		t.Fatalf("planner rounds %d not well below scalar rounds %d", planned.Rounds, legacy.Rounds)
	}
	// Inference probes each key bit with a {x0, x0+dv, x0-dv} triple, so the
	// planner collapses its rounds exactly 3x against the scalar path.
	kb := metrics.ProcKeyBitInference
	if on, off := planned.RoundsByProc[kb], legacy.RoundsByProc[kb]; off > 0 && on*3 > off {
		t.Fatalf("inference rounds %d vs %d: want >= 3x reduction", on, off)
	}
	// Validation mixes votes (6-row groups, coalesced) with scalar spot
	// checks, so its reduction is shallower but must still be visible.
	v := metrics.ProcKeyVectorValidation
	if on, off := planned.RoundsByProc[v], legacy.RoundsByProc[v]; off > 0 && on >= off {
		t.Fatalf("validation rounds %d vs %d: no reduction", on, off)
	}
	// The scalar path issues every probe as its own round; its validation
	// rounds must equal its validation queries — the pre-planner baseline.
	if legacy.RoundsByProc[v] != legacy.QueriesByProc[v] {
		t.Fatalf("scalar validation rounds %d != queries %d",
			legacy.RoundsByProc[v], legacy.QueriesByProc[v])
	}
}

// TestPlannerMultisectFidelity: k-way multisection changes which witnesses
// the white-box search lands on, but never the recovered key.
func TestPlannerMultisectFidelity(t *testing.T) {
	planned, run := plannerFixture(t)
	multi := run(Config{Multisect: 4})
	if multi.BisectRounds <= 0 || multi.BisectProbes <= 0 {
		t.Fatalf("multisect stats not recorded: rounds %d probes %d",
			multi.BisectRounds, multi.BisectProbes)
	}
	if planned.BisectRounds <= 0 {
		t.Fatal("bisection stats not recorded on the default path")
	}
	// The trade-off's direction: fewer narrowing rounds, more probes per
	// round. Witness sets differ, so compare per-round averages.
	perRoundM := float64(multi.BisectProbes) / float64(multi.BisectRounds)
	perRoundB := float64(planned.BisectProbes) / float64(planned.BisectRounds)
	if perRoundM <= perRoundB {
		t.Fatalf("multisect probes/round %.2f not above bisection's %.2f", perRoundM, perRoundB)
	}
}

// TestMultisectSegmentMatchesBisectionQuality: on the same bracket, 4-way
// multisection reaches a witness of the same tolerance in fewer rounds at
// more probes.
func TestMultisectSegmentMatchesBisectionQuality(t *testing.T) {
	u := func(x []float64) float64 { return math.Tanh(3*x[0] - 1.234567) }
	runSearch := func(cfg Config) ([]float64, *critStats) {
		s := &critStats{}
		cfg.critStats = s
		rng := rand.New(rand.NewSource(7))
		x, ok := searchZero(u, 3, cfg, rng)
		if !ok {
			t.Fatal("searchZero failed")
		}
		return x, s
	}
	xb, sb := runSearch(DefaultConfig())
	cfgM := DefaultConfig()
	cfgM.Multisect = 4
	xm, sm := runSearch(cfgM)
	for _, x := range [][]float64{xb, xm} {
		if got := math.Abs(u(x)); got > math.Sqrt(DefaultConfig().CriticalTol) {
			t.Fatalf("witness residual %g", got)
		}
	}
	if sm.rounds.Load() >= sb.rounds.Load() {
		t.Fatalf("multisect rounds %d not below bisection rounds %d",
			sm.rounds.Load(), sb.rounds.Load())
	}
	if sm.probes.Load() <= sb.probes.Load() {
		t.Fatalf("multisect probes %d not above bisection probes %d (the trade-off's cost side)",
			sm.probes.Load(), sb.probes.Load())
	}
}

// newPlannerAttack builds an Attack against a tiny locked model for probe
// path unit tests.
func newPlannerAttack(t *testing.T, cfg Config) (*Attack, *oracle.Oracle) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	white, spec, orc, _ := lockAndOracle(models.TinyMLP(rng), hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 6, Rng: rng,
	})
	return New(white, spec, orc, cfg), orc
}

// TestProbeCacheDedups: with -probe-cache, repeat points are served from the
// memo (no query, no round) and duplicate rows within one probe group are
// fetched once.
func TestProbeCacheDedups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeCache = true
	a, orc := newPlannerAttack(t, cfg)

	x := make([]float64, a.white.InSize())
	fillRandomPoint(x, 1, rand.New(rand.NewSource(3)))
	y1, err := a.query(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := a.query(nil, x)
	if err != nil {
		t.Fatal(err)
	}
	if orc.Queries() != 1 || orc.Rounds() != 1 {
		t.Fatalf("repeat point consumed queries=%d rounds=%d, want 1/1", orc.Queries(), orc.Rounds())
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("cached response differs from the oracle's")
		}
	}

	// A probe group with an internal duplicate and one cached row: only the
	// two fresh distinct points reach the oracle, in one round.
	fresh := make([]float64, len(x))
	fillRandomPoint(fresh, 1, rand.New(rand.NewSource(4)))
	other := make([]float64, len(x))
	fillRandomPoint(other, 1, rand.New(rand.NewSource(5)))
	xb := tensor.GetMatrix(4, len(x))
	xb.SetRow(0, fresh)
	xb.SetRow(1, x)     // cached
	xb.SetRow(2, fresh) // duplicate of row 0
	xb.SetRow(3, other)
	yb, err := a.multi(nil, xb)
	tensor.PutMatrix(xb)
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.PutMatrix(yb)
	if orc.Queries() != 3 || orc.Rounds() != 2 {
		t.Fatalf("deduped group consumed queries=%d rounds=%d, want 3/2", orc.Queries(), orc.Rounds())
	}
	for c := 0; c < yb.Cols; c++ {
		if yb.At(0, c) != yb.At(2, c) {
			t.Fatal("duplicate rows answered differently")
		}
		if yb.At(1, c) != y1[c] {
			t.Fatal("cached row answered differently from the original query")
		}
	}
}

// TestCoalescerServesConcurrentGroups: probe groups submitted from many
// goroutines all get their own rows back bit-identically, every row is
// counted exactly once, and the round count never exceeds the group count.
func TestCoalescerServesConcurrentGroups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	a, orc := newPlannerAttack(t, cfg)
	p := a.white.InSize()

	const groups = 24
	inputs := make([]*tensor.Matrix, groups)
	for g := 0; g < groups; g++ {
		rng := rand.New(rand.NewSource(int64(g) + 500))
		m := tensor.GetMatrix(3, p)
		for i := 0; i < 3; i++ {
			fillRandomPoint(m.Row(i), 1, rng)
		}
		//lint:transfer m: held in inputs and released after the coalesced run below
		inputs[g] = m
	}
	refs := make([][]float64, groups*3)
	for g := 0; g < groups; g++ {
		for i := 0; i < 3; i++ {
			y, err := orc.Query(inputs[g].Row(i))
			if err != nil {
				t.Fatal(err)
			}
			refs[g*3+i] = y
		}
	}
	orc.ResetCounter()

	got := make([]*tensor.Matrix, groups)
	var firstErr atomic.Value
	a.withCoalescer(func() {
		a.parallelFor(groups, 1, func(g int, _ *rand.Rand) {
			y, err := a.multi(nil, inputs[g])
			if err != nil {
				firstErr.Store(err)
				return
			}
			got[g] = y
		})
	})
	if e := firstErr.Load(); e != nil {
		t.Fatal(e)
	}
	for g := 0; g < groups; g++ {
		tensor.PutMatrix(inputs[g])
		for i := 0; i < 3; i++ {
			for c := range refs[g*3+i] {
				if got[g].At(i, c) != refs[g*3+i][c] {
					t.Fatalf("group %d row %d differs from a direct query", g, i)
				}
			}
		}
		tensor.PutMatrix(got[g])
	}
	if orc.Queries() != groups*3 {
		t.Fatalf("coalesced queries = %d, want %d (coalescing must not change row counts)",
			orc.Queries(), groups*3)
	}
	if r := orc.Rounds(); r <= 0 || r > groups {
		t.Fatalf("coalesced rounds = %d, want in [1, %d]", r, groups)
	}
	if a.coal.Load() != nil {
		t.Fatal("coalescer still active after withCoalescer returned")
	}
}

// TestCoalescerNestedRegionsReuse: a withCoalescer region opened inside
// another must reuse the outer coalescer, not deadlock on a second one.
func TestCoalescerNestedRegionsReuse(t *testing.T) {
	a, orc := newPlannerAttack(t, DefaultConfig())
	x := tensor.GetMatrix(2, a.white.InSize())
	fillRandomPoint(x.Row(0), 1, rand.New(rand.NewSource(1)))
	fillRandomPoint(x.Row(1), 1, rand.New(rand.NewSource(2)))
	ran := false
	a.withCoalescer(func() {
		outer := a.coal.Load()
		a.withCoalescer(func() {
			if a.coal.Load() != outer {
				t.Error("nested region replaced the outer coalescer")
			}
			y, err := a.multi(nil, x)
			if err != nil {
				t.Errorf("nested multi: %v", err)
				return
			}
			tensor.PutMatrix(y)
			ran = true
		})
	})
	tensor.PutMatrix(x)
	if !ran {
		t.Fatal("nested region never ran")
	}
	if orc.Queries() != 2 || orc.Rounds() != 1 {
		t.Fatalf("queries=%d rounds=%d, want 2/1", orc.Queries(), orc.Rounds())
	}
}

// TestCoalescerPropagatesTerminalErrors: a batch that fails terminally
// (budget exhausted) errors every rider with the cause visible through
// errors.Is, and no output buffers are delivered.
func TestCoalescerPropagatesTerminalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	white, spec, orc, _ := lockAndOracle(models.TinyMLP(rng), hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 6, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.Workers = 4
	a := New(white, spec, oracle.Budgeted(orc, 0), cfg)

	errs := make([]error, 8)
	a.withCoalescer(func() {
		a.parallelFor(len(errs), 1, func(i int, r *rand.Rand) {
			x := tensor.GetMatrix(3, a.white.InSize())
			for j := 0; j < 3; j++ {
				fillRandomPoint(x.Row(j), 1, r)
			}
			y, err := a.multi(nil, x)
			tensor.PutMatrix(x)
			if err == nil {
				tensor.PutMatrix(y)
			}
			errs[i] = err
		})
	})
	for i, err := range errs {
		if !errors.Is(err, oracle.ErrBudgetExhausted) {
			t.Fatalf("rider %d: err = %v, want ErrBudgetExhausted", i, err)
		}
	}
	if orc.Queries() != 0 {
		t.Fatalf("exhausted budget still let %d queries through", orc.Queries())
	}
}
