package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchMats(n int) (a, b, dst *Matrix) {
	rng := rand.New(rand.NewSource(42))
	a = randMat(rng, n, n)
	b = randMat(rng, n, n)
	return a, b, New(n, n)
}

func BenchmarkMatMulInto(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			am, bm, dst := benchMats(n)
			b.SetBytes(int64(8 * n * n * 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, am, bm)
			}
		})
	}
}

func BenchmarkMatMulIntoSerial(b *testing.B) {
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			am, bm, dst := benchMats(n)
			b.SetBytes(int64(8 * n * n * 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, am, bm)
			}
		})
	}
}

func BenchmarkMatMulABTInto(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			am, bm, dst := benchMats(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulABTInto(dst, am, bm)
			}
		})
	}
}

// BenchmarkMatMulViaTranspose is the pre-kernel baseline for ABT: a
// materialized b.T() followed by a plain product.
func BenchmarkMatMulViaTranspose(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			am, bm, dst := benchMats(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, am, bm.T())
			}
		})
	}
}

func BenchmarkMatMulATBInto(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			am, bm, dst := benchMats(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulATBInto(dst, am, bm)
			}
		})
	}
}

func BenchmarkMatVecInto(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			am := randMat(rng, n, n)
			x := randVec(rng, n)
			dst := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVecInto(dst, am, x)
			}
		})
	}
}
