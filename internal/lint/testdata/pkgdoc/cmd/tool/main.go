// Command packages are outside pkgdoc's scope even without the canonical
// "Package ..." opening.
package main

func main() {}
