package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The JSONL trace format: one self-describing record per line. Span records
// stream out as spans end (children before parents, interleaved across
// goroutines); readers reconstruct the tree from the id/parent fields.
// Every span that anchors a metrics.Breakdown additionally emits a summary
// record when it ends — the Breakdown's snapshot at that instant — so a
// trace file carries both the raw spans and the Figure 3 rollup they
// project onto, and `dnnlock trace -check` can verify the two agree.

// SpanRecord is the exported form of one completed span.
type SpanRecord struct {
	Type    string         `json:"type"` // "span"
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"` // 0 = root
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"` // offset from tracer start
	DurNS   int64          `json:"dur_ns"`
	Queries int64          `json:"queries,omitempty"`
	Rounds  int64          `json:"rounds,omitempty"`
	Retries int64          `json:"retries,omitempty"`
	SimNS   int64          `json:"sim_ns,omitempty"` // simulated channel time (farm runs)
	Proc    string         `json:"proc,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Events  []EventRecord  `json:"events,omitempty"`
}

// EventRecord is the exported form of one span event.
type EventRecord struct {
	Name  string         `json:"name"`
	AtNS  int64          `json:"at_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SummaryRecord is the Breakdown snapshot emitted when a rollup-anchoring
// span ends: the per-procedure times, query counts, and round counts
// Figure 3 renders.
type SummaryRecord struct {
	Type    string           `json:"type"` // "summary"
	Span    uint64           `json:"span"` // the anchoring span's id
	Name    string           `json:"name"`
	TimesNS map[string]int64 `json:"times_ns"`
	Queries map[string]int64 `json:"queries"`
	Rounds  map[string]int64 `json:"rounds,omitempty"`
	SimNS   map[string]int64 `json:"sim_ns,omitempty"` // simulated channel time (farm runs)
	TotalNS int64            `json:"total_ns"`
}

// attrMap folds creation-time and late attributes into one JSON map,
// dropping the proc label (exported as its own field).
func attrMap(attrs, late []Attr) map[string]any {
	if len(attrs)+len(late) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs)+len(late))
	for _, a := range attrs {
		if a.Key == procKey {
			continue
		}
		m[a.Key] = a.Val
	}
	for _, a := range late {
		m[a.Key] = a.Val
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// export serializes a completed span (and, for rollup anchors, the summary)
// to the sink. events and late are End's under-lock snapshots of the span's
// mutable slices. No-op without a sink.
func (t *Tracer) export(s *Span, dur time.Duration, events []Event, late []Attr) {
	if t.sink == nil {
		return
	}
	rec := SpanRecord{
		Type:    "span",
		ID:      s.id,
		Name:    s.name,
		StartNS: s.start.Sub(t.start).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
		Queries: s.queries.Load(),
		Rounds:  s.rounds.Load(),
		Retries: s.retries.Load(),
		SimNS:   s.simNS.Load(),
		Proc:    string(s.proc),
		Attrs:   attrMap(s.attrs, late),
	}
	if s.parent != nil {
		rec.Parent = s.parent.id
	}
	for _, ev := range events {
		rec.Events = append(rec.Events, EventRecord{
			Name:  ev.Name,
			AtNS:  ev.At.Nanoseconds(),
			Attrs: attrMap(ev.Attrs, nil),
		})
	}
	var sum *SummaryRecord
	if s.bd != nil {
		snap := s.bd.Snapshot()
		sum = &SummaryRecord{
			Type:    "summary",
			Span:    s.id,
			Name:    s.name,
			TimesNS: make(map[string]int64, len(snap.Times)),
			Queries: make(map[string]int64, len(snap.Queries)),
			Rounds:  make(map[string]int64, len(snap.Rounds)),
			TotalNS: snap.Total.Nanoseconds(),
		}
		for p, d := range snap.Times {
			sum.TimesNS[string(p)] = d.Nanoseconds()
		}
		for p, n := range snap.Queries {
			sum.Queries[string(p)] = n
		}
		for p, n := range snap.Rounds {
			sum.Rounds[string(p)] = n
		}
		if len(snap.Sim) > 0 {
			sum.SimNS = make(map[string]int64, len(snap.Sim))
			for p, d := range snap.Sim {
				sum.SimNS[string(p)] = d.Nanoseconds()
			}
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = writeRecord(t.sink, rec)
	if t.err == nil && sum != nil {
		t.err = writeRecord(t.sink, sum)
	}
}

func writeRecord(w io.Writer, rec any) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Trace is a parsed JSONL trace file.
type Trace struct {
	Spans     []SpanRecord
	Summaries []SummaryRecord
}

// ReadTrace parses a JSONL trace. Unknown record types are skipped so the
// format can grow; malformed lines are errors.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		switch head.Type {
		case "span":
			var s SpanRecord
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			tr.Spans = append(tr.Spans, s)
		case "summary":
			var s SummaryRecord
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			tr.Summaries = append(tr.Summaries, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return tr, nil
}
