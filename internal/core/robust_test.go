package core

import (
	"errors"
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// TestRunBudgetExhaustedReturnsError pins the contract of the hardened
// oracle boundary: when the device's query budget runs out mid-attack, Run
// must surface oracle.ErrBudgetExhausted as a returned error — never panic
// and never silently report a partial key as a success.
func TestRunBudgetExhaustedReturnsError(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	net := models.TinyMLP(rng)
	white, spec, orc, _ := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.Seed = 401
	_, err := Run(white, spec, oracle.Budgeted(orc, 10), cfg)
	if err == nil {
		t.Fatal("Run succeeded on a 10-query budget")
	}
	if !errors.Is(err, oracle.ErrBudgetExhausted) {
		t.Fatalf("error does not wrap ErrBudgetExhausted: %v", err)
	}
}

// TestMonolithicBudgetExhaustedReturnsError covers the same contract for
// the monolithic learning-based attack, whose labelling batch is the first
// thing to hit a starved budget.
func TestMonolithicBudgetExhaustedReturnsError(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	net := models.TinyMLP(rng)
	white, spec, orc, _ := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 4, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.LearnQueries = 64
	_, err := Monolithic(white, spec, oracle.Budgeted(orc, 8), cfg, nil)
	if !errors.Is(err, oracle.ErrBudgetExhausted) {
		t.Fatalf("error does not wrap ErrBudgetExhausted: %v", err)
	}
}

// TestRunRetriesAbsorbFlakyOracle checks the bounded-retry path: with a
// transient failure rate of 5% and four retries, the chance any logical
// query exhausts its retries is ~3e-7, so the attack must complete with
// full fidelity exactly as on a clean device.
func TestRunRetriesAbsorbFlakyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.Seed = 421
	cfg.QueryRetries = 4
	res, err := Run(white, spec, oracle.Flaky(orc, 0.05, 422), cfg)
	if err != nil {
		t.Fatalf("Run failed under a 5%% transient rate: %v", err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("fidelity %.3f under retryable faults", fid)
	}
}

// TestRunDeclaredNoiseRecoversKey runs the attack against a mildly noisy
// oracle with the degradation declared (NoiseSigma + majority voting). The
// widened thresholds and repeat probes must still recover the exact key.
func TestRunDeclaredNoiseRecoversKey(t *testing.T) {
	rng := rand.New(rand.NewSource(430))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.Seed = 431
	cfg.NoiseSigma = 1e-5
	cfg.ProbeVotes = 3
	res, err := Run(white, spec, oracle.Noisy(orc, 1e-5, 432), cfg)
	if err != nil {
		t.Fatalf("Run failed under declared noise: %v", err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("fidelity %.3f under sigma=1e-5", fid)
	}
}

// TestRunHeavyNoiseDegradesGracefully cranks the noise past what the
// algebraic probes tolerate: the attack must finish without panicking,
// report how many decisions fell through to the learning fallback, and
// still return a complete (if possibly imperfect) key.
func TestRunHeavyNoiseDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(440))
	net := models.TinyMLP(rng)
	white, spec, orc, _ := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 6, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.Seed = 441
	cfg.NoiseSigma = 0.05
	cfg.ProbeVotes = 3
	res, err := Run(white, spec, oracle.Noisy(orc, 0.05, 442), cfg)
	if err != nil {
		t.Fatalf("Run errored instead of degrading: %v", err)
	}
	if len(res.Key) != 6 {
		t.Fatalf("incomplete key under heavy noise: %v", res.Key)
	}
	if res.Degraded < 0 {
		t.Fatalf("negative degradation count %d", res.Degraded)
	}
}

// TestRunCleanPathIgnoresRetryConfig pins bit-identity of the clean path:
// on a fault-free oracle, raising QueryRetries must not change the query
// count or the recovered key, because retries only trigger on errors.
func TestRunCleanPathIgnoresRetryConfig(t *testing.T) {
	run := func(retries int) (*Result, hpnn.Key) {
		rng := rand.New(rand.NewSource(450))
		net := models.TinyMLP(rng)
		white, spec, orc, key := lockAndOracle(net, hpnn.Config{
			Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
		})
		cfg := DefaultConfig()
		cfg.Seed = 451
		cfg.QueryRetries = retries
		res, err := Run(white, spec, orc, cfg)
		if err != nil {
			t.Fatalf("clean run failed: %v", err)
		}
		return res, key
	}
	a, keyA := run(1)
	b, keyB := run(8)
	if a.Queries != b.Queries {
		t.Fatalf("query count changed with retry budget: %d vs %d", a.Queries, b.Queries)
	}
	if a.Key.Fidelity(keyA) != 1 || b.Key.Fidelity(keyB) != 1 {
		t.Fatal("clean runs did not recover the key")
	}
	if a.Degraded != 0 || b.Degraded != 0 {
		t.Fatalf("clean runs reported degradation: %d, %d", a.Degraded, b.Degraded)
	}
}
