// Package metrics implements the paper's four evaluation metrics (§4.2):
// accuracy and fidelity live with their data (train.Evaluate, hpnn.Key
// .Fidelity); this package adds query accounting helpers and the
// per-procedure runtime breakdown behind Figure 3.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Procedure names the four attack procedures of Figure 3.
type Procedure string

// The procedures whose runtime Figure 3 breaks down.
const (
	ProcKeyBitInference     Procedure = "key_bit_inference"
	ProcLearningAttack      Procedure = "learning_attack"
	ProcKeyVectorValidation Procedure = "key_vector_validation"
	ProcErrorCorrection     Procedure = "error_correction"
)

// AllProcedures lists the Figure 3 procedures in presentation order.
var AllProcedures = []Procedure{
	ProcKeyBitInference,
	ProcLearningAttack,
	ProcKeyVectorValidation,
	ProcErrorCorrection,
}

// Breakdown accumulates wall time per procedure. Safe for concurrent use.
type Breakdown struct {
	mu    sync.Mutex
	times map[Procedure]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{times: make(map[Procedure]time.Duration)}
}

// Add accumulates d under proc.
func (b *Breakdown) Add(proc Procedure, d time.Duration) {
	b.mu.Lock()
	b.times[proc] += d
	b.mu.Unlock()
}

// Track runs f and accumulates its wall time under proc.
func (b *Breakdown) Track(proc Procedure, f func()) {
	start := time.Now()
	f()
	b.Add(proc, time.Since(start))
}

// Get returns the accumulated time of proc.
func (b *Breakdown) Get(proc Procedure) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times[proc]
}

// Total returns the sum over all procedures.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.times {
		t += d
	}
	return t
}

// Percent returns proc's share of the total in [0, 100].
func (b *Breakdown) Percent(proc Procedure) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.Get(proc)) / float64(total)
}

// Percentages returns the share per procedure for every known procedure.
func (b *Breakdown) Percentages() map[Procedure]float64 {
	out := make(map[Procedure]float64, len(AllProcedures))
	for _, p := range AllProcedures {
		out[p] = b.Percent(p)
	}
	return out
}

// String renders a one-line summary sorted by presentation order.
func (b *Breakdown) String() string {
	var parts []string
	for _, p := range AllProcedures {
		parts = append(parts, fmt.Sprintf("%s %.1f%% (%s)", p, b.Percent(p), b.Get(p).Round(time.Millisecond)))
	}
	// Include any nonstandard procedures deterministically.
	b.mu.Lock()
	var extra []string
	for p := range b.times {
		known := false
		for _, q := range AllProcedures {
			if p == q {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, string(p))
		}
	}
	b.mu.Unlock()
	sort.Strings(extra)
	for _, p := range extra {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", p, b.Percent(Procedure(p))))
	}
	return strings.Join(parts, ", ")
}
