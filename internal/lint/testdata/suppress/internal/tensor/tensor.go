// Package tensor stubs the workspace pool for the stale-suppression golden
// tests: same import path and names as the real dnnlock/internal/tensor.
package tensor

type Matrix struct{ Rows, Cols int }

func GetMatrix(rows, cols int) *Matrix { return &Matrix{rows, cols} }

func PutMatrix(ms ...*Matrix) {}
