package core

import (
	"math"
	"math/rand"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

// postAct evaluates the post-flip value of neuron (site, idx) on the given
// network — the actual ReLU input — stopping the forward pass early. Its
// zero set is the neuron's hyperplane: for negation and scaling keys it
// coincides with the zero set of the unsigned pre-activation (the flip
// preserves zeros), while for the bias-shift and weight-perturbation
// variants it tracks the hypothesis currently applied to net.
func postAct(net *nn.Network, x []float64, site, idx int) float64 {
	return net.PostAt(x, site, idx)
}

// searchCriticalPoint implements §3.5 on an arbitrary network: it draws
// random lines through the input box, samples the target neuron's ReLU
// input along each line, and bisects the first sign change down to
// |u| ≤ CriticalTol. By Lemma 1 the hyperplane depends only on the
// already-recovered prefix keys, which the caller has written into net.
//
// It returns the witness x° and whether the search succeeded.
func searchCriticalPoint(net *nn.Network, site, idx int, cfg Config, rng *rand.Rand) ([]float64, bool) {
	u := func(x []float64) float64 { return postAct(net, x, site, idx) }
	return searchZero(u, net.InSize(), cfg, rng)
}

// searchCriticalPointReLU finds a witness where the input of ReLU neuron
// (reluSite, idx) crosses zero — a point where the network function bends.
func searchCriticalPointReLU(net *nn.Network, reluSite, idx int, cfg Config, rng *rand.Rand) ([]float64, bool) {
	u := func(x []float64) float64 {
		return net.ReluInAt(x, reluSite, idx)
	}
	return searchZero(u, net.InSize(), cfg, rng)
}

// searchZero looks for a sign change of u over the input box and bisects
// it to a zero. Rather than scanning fixed lines, it draws random points at
// several amplitude scales until it holds one positive and one negative
// exemplar — a strictly stronger bracketing strategy that copes with the
// skewed pre-activation distributions of trained networks — and then
// bisects the segment between them (a zero exists on it by continuity).
// The probe function u must not retain its argument: sample points are
// staged in one pooled buffer and refilled between calls.
func searchZero(u func([]float64) float64, p int, cfg Config, rng *rand.Rand) ([]float64, bool) {
	budget := cfg.MaxLineTries * cfg.LineSamples
	scales := [...]float64{1, 0.25, 2, 0.5, 4}
	var pos, neg []float64
	x := tensor.GetVec(p)
	defer tensor.PutVec(x)
	for i := 0; i < budget; i++ {
		fillRandomPoint(x, cfg.InputLim*scales[i%len(scales)], rng)
		switch v := u(x); {
		case v > 0 && pos == nil:
			pos = tensor.VecClone(x)
		case v < 0 && neg == nil:
			neg = tensor.VecClone(x)
		}
		if pos != nil && neg != nil {
			return bisectSegment(u, pos, neg, cfg)
		}
	}
	return nil, false
}

// bisectSegment narrows the segment a→b, with u(a) > 0 > u(b), down to
// |u| ≤ CriticalTol. The default is binary bisection — one probe per round,
// halving the bracket; cfg.Multisect ≥ 2 switches to k-way multisection,
// which evaluates k−1 interior points per round and shrinks the bracket by
// a factor of k, cutting rounds from ⌈log₂(1/tol)⌉ to ⌈log_k(1/tol)⌉ at the
// cost of more probes. Both paths report rounds and probes to cfg.critStats
// — the white-box analog of the oracle round-trip trade-off, and the
// template for an oracle-backed search (ROADMAP item 2).
func bisectSegment(u func([]float64) float64, a, b []float64, cfg Config) ([]float64, bool) {
	if cfg.Multisect >= 2 {
		return multisectSegment(u, a, b, cfg)
	}
	dir := tensor.VecSub(b, a)
	// One pooled midpoint buffer for the whole bisection; the witness is
	// cloned out on success so the caller owns a plain heap slice.
	xm := tensor.GetVec(len(a))
	defer tensor.PutVec(xm)
	at := func(t float64) {
		copy(xm, a)
		tensor.AXPY(t, dir, xm)
	}
	lo, hi := 0.0, 1.0
	ulo := u(a)
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		at(mid)
		um := u(xm)
		cfg.critStats.count(1)
		if math.Abs(um) <= cfg.CriticalTol {
			return tensor.VecClone(xm), true
		}
		if signChange(ulo, um) {
			hi = mid
		} else {
			lo, ulo = mid, um
		}
		if hi-lo < 1e-18 {
			// Interval exhausted at float resolution; accept the midpoint
			// if it is reasonably small.
			if math.Abs(um) <= math.Sqrt(cfg.CriticalTol) {
				return tensor.VecClone(xm), true
			}
			break
		}
	}
	return nil, false
}

// multisectSegment is bisectSegment's k-way variant: each round probes the
// k−1 interior points that split the bracket into k equal parts, then
// narrows to the first subinterval whose endpoints change sign. Every
// interior probe gets the same tolerance checks the bisection midpoint
// gets, so a witness is accepted at the same |u| threshold.
func multisectSegment(u func([]float64) float64, a, b []float64, cfg Config) ([]float64, bool) {
	k := cfg.Multisect
	dir := tensor.VecSub(b, a)
	xm := tensor.GetVec(len(a))
	defer tensor.PutVec(xm)
	at := func(t float64) {
		copy(xm, a)
		tensor.AXPY(t, dir, xm)
	}
	lo, hi := 0.0, 1.0
	ulo := u(a)
	for iter := 0; iter < 200; iter++ {
		step := (hi - lo) / float64(k)
		cfg.critStats.count(int64(k - 1))
		// Walk the interior points left to right; uprev tracks the value at
		// the current subinterval's left endpoint.
		uprev, tprev := ulo, lo
		bracketed := false
		for i := 1; i < k; i++ {
			t := lo + float64(i)*step
			at(t)
			um := u(xm)
			if math.Abs(um) <= cfg.CriticalTol {
				return tensor.VecClone(xm), true
			}
			if signChange(uprev, um) {
				lo, ulo, hi = tprev, uprev, t
				bracketed = true
				break
			}
			uprev, tprev = um, t
		}
		if !bracketed {
			// The change hides in the last subinterval [tprev, hi].
			lo, ulo = tprev, uprev
		}
		if hi-lo < 1e-18 {
			at((lo + hi) / 2)
			um := u(xm)
			cfg.critStats.count(1)
			if math.Abs(um) <= math.Sqrt(cfg.CriticalTol) {
				return tensor.VecClone(xm), true
			}
			break
		}
	}
	return nil, false
}

func signChange(a, b float64) bool {
	return (a > 0 && b < 0) || (a < 0 && b > 0)
}

func randomPoint(p int, lim float64, rng *rand.Rand) []float64 {
	x := make([]float64, p)
	fillRandomPoint(x, lim, rng)
	return x
}

// fillRandomPoint draws the same point randomPoint would (identical rng
// consumption) into a caller-owned buffer.
func fillRandomPoint(x []float64, lim float64, rng *rand.Rand) {
	for i := range x {
		x[i] = (rng.Float64()*2 - 1) * lim
	}
}
