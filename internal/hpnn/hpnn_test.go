package hpnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func testMLP(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewDense(6, 8).InitHe(rng), nn.NewFlip(8), nn.NewReLU(8),
		nn.NewDense(8, 5).InitHe(rng), nn.NewFlip(5), nn.NewReLU(5),
		nn.NewDense(5, 3).InitHe(rng),
	)
}

func TestKeyBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := RandomKey(16, rng)
	if len(k) != 16 {
		t.Fatal("key length")
	}
	if k.Fidelity(k) != 1 {
		t.Fatal("self fidelity != 1")
	}
	flipped := k.Clone()
	flipped[3] = !flipped[3]
	if k.HammingDistance(flipped) != 1 {
		t.Fatal("hamming distance")
	}
	if math.Abs(k.Fidelity(flipped)-15.0/16) > 1e-12 {
		t.Fatal("fidelity after one flip")
	}
	if len(k.String()) != 16 {
		t.Fatal("string render")
	}
	if (Key{}).Fidelity(Key{}) != 1 {
		t.Fatal("empty fidelity")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		Negation: "negation", Scaling: "scaling",
		BiasShift: "bias-shift", WeightPerturb: "weight-perturb",
	} {
		if s.String() != want {
			t.Fatalf("String(%d) = %q", s, s.String())
		}
	}
}

func TestNewLockSpecDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := testMLP(rng)
	spec := NewLockSpec(net, Config{Scheme: Negation, KeyBits: 7, Rng: rng})
	if spec.NumBits() != 7 {
		t.Fatalf("NumBits = %d", spec.NumBits())
	}
	bySite := spec.SiteBits()
	// 7 bits over 2 sites: 4 on site 0, 3 on site 1.
	if len(bySite[0]) != 4 || len(bySite[1]) != 3 {
		t.Fatalf("distribution: %d/%d", len(bySite[0]), len(bySite[1]))
	}
	// Neuron indices must be distinct within a site.
	for site, ids := range bySite {
		seen := map[int]bool{}
		for _, i := range ids {
			idx := spec.Neurons[i].Index
			if seen[idx] {
				t.Fatalf("duplicate neuron %d in site %d", idx, site)
			}
			seen[idx] = true
		}
	}
}

func TestLockAppliesKeyInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := testMLP(rng)
	lm, key := Lock(net, Config{Scheme: Negation, KeyBits: 6, Rng: rng})
	got := lm.ExtractKey(net)
	if got.Fidelity(key) != 1 {
		t.Fatalf("key not applied: %v vs %v", got, key)
	}
}

func TestApplyCorrectKeyMatchesOracle(t *testing.T) {
	// Functional equivalence: Apply(correct key) equals the locked network.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := testMLP(rng)
		lm, key := Lock(net, Config{Scheme: Negation, KeyBits: 8, Rng: rng})
		applied := lm.Apply(key)
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return tensor.NormInf(tensor.VecSub(net.Forward(x), applied.Forward(x))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyChangesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := testMLP(rng)
	lm, key := Lock(net, Config{Scheme: Negation, KeyBits: 8, Rng: rng})
	wrong := key.Clone()
	wrong[0] = !wrong[0]
	applied := lm.Apply(wrong)
	diff := false
	for trial := 0; trial < 20 && !diff; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if tensor.NormInf(tensor.VecSub(net.Forward(x), applied.Forward(x))) > 1e-9 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("wrong key produced an identical function on all probes")
	}
}

func TestWhiteBoxHasIdentityFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := testMLP(rng)
	lm, _ := Lock(net, Config{Scheme: Negation, KeyBits: 8, Rng: rng})
	wb := lm.WhiteBox()
	for _, f := range wb.Flips() {
		for _, s := range f.Signs {
			if s != 1 {
				t.Fatal("white-box flip not identity")
			}
		}
	}
	// White-box must not alias the oracle-side flips.
	wb.Flips()[0].SetBit(0, true)
	if net.Flips()[0].Bit(0) != lm.ExtractKey(net)[0] {
		// net's key state must be untouched by white-box mutation; verify
		// by re-extracting.
		t.Fatal("white-box mutation leaked")
	}
}

func TestScalingScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := testMLP(rng)
	lm, key := Lock(net, Config{Scheme: Scaling, Alpha: 0.5, KeyBits: 4, Rng: rng})
	if got := lm.ExtractKey(net); got.Fidelity(key) != 1 {
		t.Fatal("scaling key mismatch")
	}
	// Signs must be either 1 or Alpha.
	for _, pn := range lm.Spec.Neurons {
		s := net.Flips()[pn.Site].Signs[pn.Index]
		if s != 1 && s != 0.5 {
			t.Fatalf("scaling coefficient = %v", s)
		}
	}
}

func TestBiasShiftScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := testMLP(rng)
	lm, key := Lock(net, Config{Scheme: BiasShift, Alpha: 0.7, KeyBits: 4, Rng: rng})
	if got := lm.ExtractKey(net); got.Fidelity(key) != 1 {
		t.Fatal("bias-shift key mismatch")
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Applying the all-zeros key must remove every offset.
	unlocked := lm.Apply(make(Key, 4))
	wb := lm.WhiteBox()
	if tensor.NormInf(tensor.VecSub(unlocked.Forward(x), wb.Forward(x))) > 1e-12 {
		t.Fatal("zero-key bias shift differs from white-box")
	}
}

func TestWeightPerturbScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := testMLP(rng)
	lm, key := Lock(net, Config{Scheme: WeightPerturb, Alpha: 0.9, KeyBits: 4, Rng: rng})
	if got := lm.ExtractKey(net); got.Fidelity(key) != 1 {
		t.Fatalf("weight-perturb key mismatch: %v vs %v", lm.ExtractKey(net), key)
	}
	// Apply with the correct key reproduces the locked function.
	applied := lm.Apply(key)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if tensor.NormInf(tensor.VecSub(net.Forward(x), applied.Forward(x))) > 1e-12 {
		t.Fatal("weight-perturb apply mismatch")
	}
	// A flipped bit moves exactly one weight element by Alpha.
	wrong := key.Clone()
	wrong[2] = !wrong[2]
	perturbed := lm.Apply(wrong)
	na := applied.Params()
	nb := perturbed.Params()
	changed := 0
	for i := range na {
		for j := range na[i].W.Data {
			if na[i].W.Data[j] != nb[i].W.Data[j] {
				changed++
				if math.Abs(math.Abs(na[i].W.Data[j]-nb[i].W.Data[j])-0.9) > 1e-12 {
					t.Fatal("perturbation magnitude wrong")
				}
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d weight elements changed, want 1", changed)
	}
}

func TestVariantConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := testMLP(rng)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no rng", func() { NewLockSpec(net, Config{Scheme: Negation, KeyBits: 2}) })
	mustPanic("alpha zero", func() {
		NewLockSpec(net, Config{Scheme: Scaling, KeyBits: 2, Rng: rng})
	})
	mustPanic("alpha one", func() {
		NewLockSpec(net, Config{Scheme: Scaling, Alpha: 1, KeyBits: 2, Rng: rng})
	})
	mustPanic("too many bits", func() {
		NewLockSpec(net, Config{Scheme: Negation, KeyBits: 1000, Rng: rng})
	})
}

func TestLockSpecificSites(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := testMLP(rng)
	spec := NewLockSpec(net, Config{Scheme: Negation, KeyBits: 5, Sites: []int{1}, Rng: rng})
	for _, pn := range spec.Neurons {
		if pn.Site != 1 {
			t.Fatal("bit outside designated site")
		}
	}
}

func TestLockInsideResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	body := []nn.Layer{nn.NewDense(5, 5).InitHe(rng), nn.NewFlip(5), nn.NewReLU(5)}
	net := nn.NewNetwork(nn.NewResidual(body, nil), nn.NewDense(5, 2).InitHe(rng))
	lm, key := Lock(net, Config{Scheme: Negation, KeyBits: 3, Rng: rng})
	if lm.ExtractKey(net).Fidelity(key) != 1 {
		t.Fatal("residual lock failed")
	}
	// Apply must clone the flip inside the residual, not alias it.
	other := lm.Apply(make(Key, 3))
	x := []float64{1, -1, 0.5, 2, -2}
	y1 := net.Forward(x)
	_ = other.Forward(x)
	y2 := net.Forward(x)
	if tensor.NormInf(tensor.VecSub(y1, y2)) != 0 {
		t.Fatal("apply mutated the original network")
	}
}
