package main

import (
	"os"
	"path/filepath"
	"testing"

	"dnnlock/internal/hpnn"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		name      string
		scheme    hpnn.Scheme
		needAlpha bool
	}{
		{"negation", hpnn.Negation, false},
		{"scaling", hpnn.Scaling, true},
		{"bias-shift", hpnn.BiasShift, true},
		{"weight-perturb", hpnn.WeightPerturb, true},
	}
	for _, c := range cases {
		got, needAlpha, err := parseScheme(c.name)
		if err != nil || got != c.scheme || needAlpha != c.needAlpha {
			t.Fatalf("parseScheme(%q) = %v %v %v", c.name, got, needAlpha, err)
		}
	}
	if _, _, err := parseScheme("rot13"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestParseKeyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "key.txt")
	if err := os.WriteFile(path, []byte("0110\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := parseKeyFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := hpnn.Key{false, true, true, false}
	if key.Fidelity(want) != 1 {
		t.Fatalf("key = %v", key)
	}
	if _, err := parseKeyFile(path, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("01x0"), 0o600)
	if _, err := parseKeyFile(bad, 4); err == nil {
		t.Fatal("invalid character accepted")
	}
	if _, err := parseKeyFile(filepath.Join(dir, "missing"), 4); err == nil {
		t.Fatal("missing file accepted")
	}
}
