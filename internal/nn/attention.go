package nn

import (
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// AttentionReLU is a single-head self-attention block with the ReLU score
// map of the paper's "ReLU variant" of ViT: instead of softmax, attention
// scores are S = φ(Q·Kᵀ/√Dh)/T, keeping the whole block piecewise
// polynomial and ReLU-gated so the attack's critical-point machinery
// applies. Input/output are T·D flat token stacks.
//
// All matrix products run through the transpose-free blocked kernels
// (MatMulABTInto/MatMulATBInto), so no Kᵀ/Vᵀ/Xᵀ copies are ever built, and
// intermediates live in the tensor workspace pool rather than being
// reallocated per example.
type AttentionReLU struct {
	T, D, Dh       int
	Wq, Wk, Wv, Wo *Param

	// Training caches (single-goroutine). The matrices are pool-backed;
	// they are released on the next TrainForward.
	cX, cQ, cK, cV, cS, cO []*tensor.Matrix
	cMask                  [][]bool
}

// NewAttentionReLU constructs an attention block over t tokens of width d
// with head width dh.
func NewAttentionReLU(t, d, dh int) *AttentionReLU {
	return &AttentionReLU{
		T: t, D: d, Dh: dh,
		Wq: NewParam("attn_wq", d, dh),
		Wk: NewParam("attn_wk", d, dh),
		Wv: NewParam("attn_wv", d, dh),
		Wo: NewParam("attn_wo", dh, d),
	}
}

// InitXavier initializes all projection matrices.
func (a *AttentionReLU) InitXavier(rng *rand.Rand) *AttentionReLU {
	for _, p := range []*Param{a.Wq, a.Wk, a.Wv, a.Wo} {
		fanIn, fanOut := p.W.Rows, p.W.Cols
		std := math.Sqrt(2.0 / float64(fanIn+fanOut))
		for i := range p.W.Data {
			p.W.Data[i] = rng.NormFloat64() * std
		}
	}
	return a
}

func (a *AttentionReLU) Name() string { return "attention_relu" }

// InSize returns T·D.
func (a *AttentionReLU) InSize() int { return a.T * a.D }

// OutSize returns T·D.
func (a *AttentionReLU) OutSize() int { return a.T * a.D }

func (a *AttentionReLU) scaleA() float64 { return 1 / math.Sqrt(float64(a.Dh)) }
func (a *AttentionReLU) scaleB() float64 { return 1 / float64(a.T) }

// forwardOne computes the block for one example (xm is the T×D token view
// of the input) and returns all intermediates for reuse by Backward and
// JVP. The returned matrices come from the workspace pool — the caller
// either releases them with tensor.PutMatrix or caches them; y is freshly
// allocated and owned by the caller.
func (a *AttentionReLU) forwardOne(xm *tensor.Matrix) (q, k, v, s, o *tensor.Matrix, mask []bool, y []float64) {
	q = tensor.GetMatrix(a.T, a.Dh)
	k = tensor.GetMatrix(a.T, a.Dh)
	v = tensor.GetMatrix(a.T, a.Dh)
	tensor.MatMulInto(q, xm, a.Wq.W)
	tensor.MatMulInto(k, xm, a.Wk.W)
	tensor.MatMulInto(v, xm, a.Wv.W)
	u := tensor.GetMatrix(a.T, a.T)
	tensor.MatMulABTInto(u, q, k) // U = Q·Kᵀ
	u.ScaleInPlace(a.scaleA())
	mask = make([]bool, a.T*a.T)
	s = tensor.GetMatrix(a.T, a.T)
	b := a.scaleB()
	for i, uv := range u.Data {
		if uv > 0 {
			mask[i] = true
			s.Data[i] = uv * b
		} else {
			s.Data[i] = 0
		}
	}
	tensor.PutMatrix(u)
	o = tensor.GetMatrix(a.T, a.Dh)
	tensor.MatMulInto(o, s, v)
	ym := tensor.New(a.T, a.D)
	tensor.MatMulInto(ym, o, a.Wo.W)
	return q, k, v, s, o, mask, ym.Data
}

// Forward computes attention for one flat example.
func (a *AttentionReLU) Forward(x []float64, _ *Trace) []float64 {
	checkSize("attention_relu", a.InSize(), len(x))
	q, k, v, s, o, _, y := a.forwardOne(tensor.FromSlice(a.T, a.D, x))
	tensor.PutMatrix(q, k, v, s, o)
	return y
}

// ForwardBatch maps each row.
func (a *AttentionReLU) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(a, x)
}

// releaseCaches returns the previous training intermediates to the
// workspace pool.
func (a *AttentionReLU) releaseCaches() {
	for _, set := range [][]*tensor.Matrix{a.cX, a.cQ, a.cK, a.cV, a.cS, a.cO} {
		tensor.PutMatrix(set...)
	}
	a.cX, a.cQ, a.cK, a.cV, a.cS, a.cO, a.cMask = nil, nil, nil, nil, nil, nil, nil
}

// TrainForward runs the batch while caching all per-example intermediates.
func (a *AttentionReLU) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	a.releaseCaches()
	n := x.Rows
	a.cX = make([]*tensor.Matrix, n)
	a.cQ = make([]*tensor.Matrix, n)
	a.cK = make([]*tensor.Matrix, n)
	a.cV = make([]*tensor.Matrix, n)
	a.cS = make([]*tensor.Matrix, n)
	a.cO = make([]*tensor.Matrix, n)
	a.cMask = make([][]bool, n)
	out := tensor.New(n, a.OutSize())
	for r := 0; r < n; r++ {
		xm := tensor.GetMatrix(a.T, a.D)
		copy(xm.Data, x.Row(r))
		q, k, v, s, o, mask, y := a.forwardOne(xm)
		//lint:transfer cached for Backward; releaseCaches returns every buffer to the pool
		a.cX[r], a.cQ[r], a.cK[r], a.cV[r], a.cS[r], a.cO[r], a.cMask[r] = xm, q, k, v, s, o, mask
		out.SetRow(r, y)
	}
	return out
}

// Backward propagates gradients through the attention algebra:
// dO = dY·Woᵀ, dS = dO·Vᵀ, dU = 1[U>0]∘dS·b, dQ = dU·K·a, dK = dUᵀ·Q·a,
// dX = dQ·Wqᵀ + dK·Wkᵀ + dV·Wvᵀ.
func (a *AttentionReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if a.cX == nil {
		panic("nn: AttentionReLU.Backward before TrainForward")
	}
	sa, sb := a.scaleA(), a.scaleB()
	dx := tensor.New(dy.Rows, a.InSize())
	do := tensor.GetMatrix(a.T, a.Dh)
	ds := tensor.GetMatrix(a.T, a.T)
	du := tensor.GetMatrix(a.T, a.T)
	dv := tensor.GetMatrix(a.T, a.Dh)
	dq := tensor.GetMatrix(a.T, a.Dh)
	dk := tensor.GetMatrix(a.T, a.Dh)
	defer tensor.PutMatrix(do, ds, du, dv, dq, dk)
	for r := 0; r < dy.Rows; r++ {
		dym := tensor.FromSlice(a.T, a.D, dy.Row(r))
		x, q, k, v, s, o, mask := a.cX[r], a.cQ[r], a.cK[r], a.cV[r], a.cS[r], a.cO[r], a.cMask[r]

		tensor.MatMulABTInto(do, dym, a.Wo.W) // dO = dY·Woᵀ
		tensor.MatMulATBAddInto(a.Wo.G, o, dym)

		tensor.MatMulABTInto(ds, do, v) // dS = dO·Vᵀ
		tensor.MatMulATBInto(dv, s, do) // dV = Sᵀ·dO

		for i := range ds.Data {
			if mask[i] {
				du.Data[i] = ds.Data[i] * sb
			} else {
				du.Data[i] = 0
			}
		}
		tensor.MatMulInto(dq, du, k)
		dq.ScaleInPlace(sa)
		tensor.MatMulATBInto(dk, du, q) // dK = dUᵀ·Q
		dk.ScaleInPlace(sa)

		tensor.MatMulATBAddInto(a.Wq.G, x, dq) // Wq.G += Xᵀ·dQ
		tensor.MatMulATBAddInto(a.Wk.G, x, dk)
		tensor.MatMulATBAddInto(a.Wv.G, x, dv)

		dxm := tensor.FromSlice(a.T, a.D, dx.Row(r))
		tensor.MatMulABTInto(dxm, dq, a.Wq.W) // dX = dQ·Wqᵀ + dK·Wkᵀ + dV·Wvᵀ
		tensor.MatMulABTAddInto(dxm, dk, a.Wk.W)
		tensor.MatMulABTAddInto(dxm, dv, a.Wv.W)
	}
	return dx
}

// JVP propagates each tangent column through the bilinear attention map by
// the product rule: dU = (dQ·Kᵀ + Q·dKᵀ)·a, dS = 1[U>0]∘dU·b,
// dO = dS·V + S·dV, dY = dO·Wo. Tangents are staged through a pooled
// transpose so every inner product streams contiguous rows.
func (a *AttentionReLU) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	q, k, v, s, o, mask, y := a.forwardOne(tensor.FromSlice(a.T, a.D, x))
	sa, sb := a.scaleA(), a.scaleB()
	p := j.Cols
	jT := tensor.GetMatrix(p, a.InSize())
	j.TransposeInto(jT)
	jyT := tensor.GetMatrix(p, a.OutSize())
	dq := tensor.GetMatrix(a.T, a.Dh)
	dk := tensor.GetMatrix(a.T, a.Dh)
	dv := tensor.GetMatrix(a.T, a.Dh)
	du := tensor.GetMatrix(a.T, a.T)
	dsm := tensor.GetMatrix(a.T, a.T)
	do := tensor.GetMatrix(a.T, a.Dh)
	for t := 0; t < p; t++ {
		dxm := tensor.FromSlice(a.T, a.D, jT.Row(t))
		tensor.MatMulInto(dq, dxm, a.Wq.W)
		tensor.MatMulInto(dk, dxm, a.Wk.W)
		tensor.MatMulInto(dv, dxm, a.Wv.W)
		tensor.MatMulABTInto(du, dq, k)    // dQ·Kᵀ
		tensor.MatMulABTAddInto(du, q, dk) // + Q·dKᵀ
		du.ScaleInPlace(sa)
		for i := range du.Data {
			if mask[i] {
				dsm.Data[i] = du.Data[i] * sb
			} else {
				dsm.Data[i] = 0
			}
		}
		tensor.MatMulInto(do, dsm, v)
		tensor.MatMulAddInto(do, s, dv)
		dym := tensor.FromSlice(a.T, a.D, jyT.Row(t))
		tensor.MatMulInto(dym, do, a.Wo.W)
	}
	jy := tensor.New(a.OutSize(), p)
	jyT.TransposeInto(jy)
	tensor.PutMatrix(q, k, v, s, o, jT, jyT, dq, dk, dv, du, dsm, do)
	return y, jy
}

// Params returns the four projection parameters.
func (a *AttentionReLU) Params() []*Param { return []*Param{a.Wq, a.Wk, a.Wv, a.Wo} }
