// Package geometry implements the geometric view of deep ReLU networks from
// the paper's §3.2: activation patterns, the recursive product weight
// matrix / product bias vector of Formulas 2–4, and linear-region tooling.
// The product-matrix computation is the fast algebraic path for sequential
// piecewise-linear networks; arbitrary topologies use nn's JVP instead
// (§4.1 "built-in Jacobian").
package geometry

import (
	"errors"
	"fmt"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

// ErrNotSequentialPWL is returned when a network contains layers outside
// the sequential Dense/Flip/ReLU/Flatten fragment that Formulas 2–4 cover.
var ErrNotSequentialPWL = errors.New("geometry: network is not a sequential piecewise-linear stack")

// AffineMap is a region-local affine function x ↦ A·x + b.
type AffineMap struct {
	A *tensor.Matrix
	B []float64
}

// Apply evaluates the map.
func (m AffineMap) Apply(x []float64) []float64 {
	y := tensor.MatVec(m.A, x)
	for i := range y {
		y[i] += m.B[i]
	}
	return y
}

// ProductMatrix computes the paper's Â^(i) and b̂^(i) (Formulas 2–4) for the
// unsigned pre-activation entering flip site `site`, under the activation
// patterns recorded in tr. Valid for sequential Dense/Flip/ReLU/Flatten
// networks; other layers yield ErrNotSequentialPWL.
//
// The returned map satisfies u_site(x) = Â·x + b̂ for every x in the linear
// region that produced tr.
func ProductMatrix(net *nn.Network, tr *nn.Trace, site int) (AffineMap, error) {
	m, _, err := walkAffine(net, tr, site, -1)
	return m, err
}

// ProductMatrixAtReLU computes the affine map of the input of ReLU site
// `reluSite` under the activation patterns of tr — the hyperplane geometry
// of the network's actual kinks, used by the attack's validation.
func ProductMatrixAtReLU(net *nn.Network, tr *nn.Trace, reluSite int) (AffineMap, error) {
	m, _, err := walkAffine(net, tr, -1, reluSite)
	return m, err
}

// RegionAffineMap computes the end-to-end affine map of the linear region
// containing the traced input: f(x) = A·x + b throughout the region.
func RegionAffineMap(net *nn.Network, tr *nn.Trace) (AffineMap, error) {
	m, complete, err := walkAffine(net, tr, -1, -1)
	if err != nil {
		return AffineMap{}, err
	}
	if !complete {
		return AffineMap{}, ErrNotSequentialPWL
	}
	return m, nil
}

// walkAffine folds layers into an affine map. If stopSite >= 0 it returns
// the map of the unsigned pre-activation entering that flip site; if
// stopReLU >= 0 it returns the map of the input of that ReLU site;
// otherwise it folds the whole network and reports completeness.
func walkAffine(net *nn.Network, tr *nn.Trace, stopSite, stopReLU int) (AffineMap, bool, error) {
	p := net.InSize()
	cur := AffineMap{A: tensor.Identity(p), B: make([]float64, p)}
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Dense:
			cur = AffineMap{
				A: tensor.MatMul(v.W.W, cur.A),
				B: tensor.VecAdd(tensor.MatVec(v.W.W, cur.B), v.B.W.Row(0)),
			}
		case *nn.Flip:
			if v.SiteID == stopSite {
				return cur, false, nil
			}
			a := cur.A.Clone()
			b := tensor.VecClone(cur.B)
			for i, s := range v.Signs {
				//lint:ignore floatcmp Signs hold the exact sentinel values the locker wrote
				if s != 1 {
					row := a.Row(i)
					for c := range row {
						row[c] *= s
					}
					b[i] *= s
				}
				if v.Offsets != nil {
					b[i] += v.Offsets[i]
				}
			}
			cur = AffineMap{A: a, B: b}
		case *nn.ReLU:
			if v.SiteID == stopReLU {
				return cur, false, nil
			}
			pat := tr.Patterns[v.SiteID]
			if pat == nil {
				return AffineMap{}, false, fmt.Errorf("geometry: trace has no pattern for ReLU site %d", v.SiteID)
			}
			a := cur.A.Clone().MaskRows(pat)
			b := tensor.VecClone(cur.B)
			for i, on := range pat {
				if !on {
					b[i] = 0
				}
			}
			cur = AffineMap{A: a, B: b}
		case *nn.Flatten:
			// identity
		default:
			return AffineMap{}, false, ErrNotSequentialPWL
		}
	}
	if stopSite >= 0 || stopReLU >= 0 {
		return AffineMap{}, false, fmt.Errorf("geometry: stop site (flip %d / relu %d) not found", stopSite, stopReLU)
	}
	return cur, true, nil
}

// PatternsEqual reports whether two activation-pattern stacks agree, which
// by §3.2 means the two inputs lie in the same linear region.
func PatternsEqual(a, b [][]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// PatternKey serializes an activation-pattern stack into a compact string
// usable as a map key when counting linear regions.
func PatternKey(p [][]bool) string {
	total := 0
	for _, layer := range p {
		total += len(layer) + 1
	}
	buf := make([]byte, 0, total)
	for _, layer := range p {
		for _, on := range layer {
			if on {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
		buf = append(buf, '|')
	}
	return string(buf)
}

// CountLinearRegions2D rasterizes the [−lim, lim]² square of a 2-input
// network at n×n resolution and counts the distinct linear regions hit —
// the quantitative companion to the paper's Figure 2(b).
func CountLinearRegions2D(net *nn.Network, n int, lim float64) int {
	if net.InSize() != 2 {
		panic("geometry: CountLinearRegions2D needs a 2-input network")
	}
	seen := make(map[string]struct{})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := []float64{
				-lim + 2*lim*float64(i)/float64(n-1),
				-lim + 2*lim*float64(j)/float64(n-1),
			}
			tr := net.ForwardTrace(x)
			seen[PatternKey(tr.Patterns)] = struct{}{}
		}
	}
	return len(seen)
}

// HyperplaneWitness reports whether x lies within tol of the hyperplane
// induced by the neuron at (site, index): |u_{site,index}(x)| ≤ tol.
func HyperplaneWitness(net *nn.Network, x []float64, site, index int, tol float64) bool {
	tr := net.ForwardTrace(x)
	u := tr.Pre[site][index]
	if u < 0 {
		u = -u
	}
	return u <= tol
}
