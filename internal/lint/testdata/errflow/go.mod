module dnnlock

go 1.22
