// Quickstart: lock a small MLP with HPNN, provision a simulated
// hardware-root-of-trust device with the secret key, and run the paper's
// DNN decryption attack (Algorithm 2) to recover the key exactly.
package main

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/core"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. The IP owner builds a model and locks 12 neurons with HPNN
	//    flipping units (paper §2.2). The key is chosen at random.
	net := models.MLP(models.MLPConfig{In: 30, Hidden: []int{20, 10}, Out: 5}, rng)
	locked, secret := hpnn.Lock(net, hpnn.Config{
		Scheme:  hpnn.Negation,
		KeyBits: 12,
		Rng:     rng,
	})
	fmt.Printf("secret key burned into the device: %s\n", secret)

	// 2. The adversary owns a working device (query access only) and the
	//    published white-box weights (paper §2.3).
	device := oracle.New(locked, secret)
	whiteBox := locked.WhiteBox()

	// 3. Run the DNN decryption attack.
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	result, err := core.Run(whiteBox, locked.Spec, device, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("recovered key:                     %s\n", result.Key)
	fmt.Printf("fidelity: %.0f%%  queries: %d  time: %s\n",
		100*result.Key.Fidelity(secret), result.Queries, result.Time.Round(1000000))
	fmt.Printf("procedure breakdown: %s\n", result.Breakdown)
	for _, site := range result.Sites {
		fmt.Printf("  layer site %d: %d bits (%d algebraic, %d learned, %d corrected)\n",
			site.Site, site.Bits, site.Algebraic, site.Learned, site.Corrected)
	}
	//lint:ignore floatcmp Fidelity of 1.0 is exactly representable and means every bit matched
	if result.Key.Fidelity(secret) == 1 {
		fmt.Println("HPNN key fully extracted: the locked model can be pirated.")
	}
}
