#!/bin/sh
# check.sh — static checks plus the race-detector test pass.
#
# The tensor worker pool, the oracle's batched queries, and the attack's
# parallelFor all share memory across goroutines; this script is the wiring
# that keeps them honest. Run before sending any change to the kernels or
# their callers (also available as `make race`).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/..."
go test -race ./internal/...

echo "OK"
