package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
	"dnnlock/internal/train"
)

// softSite is one flip layer with softened coefficients during a learning
// attack.
type softSite struct {
	flip     *nn.Flip
	specIdxs []int // spec positions, aligned with the soften indices
	param    *nn.Param
}

// soften converts the given spec bits (grouped by site) of net into
// continuous coefficients and returns the soft sites. Flips directly gated
// by a ReLU use the branch-interpolating relaxation (see nn.Flip).
func soften(net *nn.Network, spec *hpnn.LockSpec, bySite map[int][]int) []softSite {
	gated := gatedFlipSites(net)
	sites := make([]int, 0, len(bySite))
	for site := range bySite { //lint:ignore determinism keys are sorted on the next line before use
		sites = append(sites, site)
	}
	sort.Ints(sites)
	var out []softSite
	for _, site := range sites {
		specIdxs := bySite[site]
		flip := net.Flips()[site]
		neuronIdxs := make([]int, len(specIdxs))
		for i, si := range specIdxs {
			neuronIdxs[i] = spec.Neurons[si].Index
		}
		p := flip.Soften(neuronIdxs, gated[site])
		out = append(out, softSite{flip: flip, specIdxs: specIdxs, param: p})
	}
	return out
}

// gatedFlipSites reports which flip sites are directly rectified by a ReLU
// in the same layer sequence.
func gatedFlipSites(net *nn.Network) map[int]bool {
	out := make(map[int]bool)
	layout := net.SiteLayout()
	for i, ev := range layout {
		if ev.IsFlip && i+1 < len(layout) {
			next := layout[i+1]
			if !next.IsFlip && next.Seq == ev.Seq && next.Pos == ev.Pos+1 {
				out[ev.ID] = true
			}
		}
	}
	return out
}

// fitSoft runs the §3.6 optimization: freeze all weights, fit the soft key
// coefficients by Adam on the MSE between net's logits and the oracle
// labels. It stops when every coefficient clears the confidence threshold
// or when the loss plateaus. epochCb, when non-nil, is called once per
// epoch and may stop the fit by returning false.
//
// Only the soft flip coefficients train, so the network is split at the
// earliest softened flip site (nn.Slice): the frozen prefix is evaluated
// exactly once for the whole query set, and every minibatch of every epoch
// shuffles and gathers rows of that activation cache instead of re-running
// the prefix forward and backward. Backpropagation stops at the slice
// boundary. The sliced fit is numerically identical to the unsliced one
// (cfg.DisableSlicing, kept for the ablation and the equivalence property
// tests): prefix activations are batch-independent per row, no trainable
// parameter lives in the prefix, and the prefix gradients the full path
// computed were discarded by ZeroGrad anyway.
//
// softmax mirrors an oracle that exposes softmax probabilities: the white
// box's logits are mapped through softmax before the MSE, and the gradient
// is pulled back through the softmax Jacobian (train.MSESoftmax).
func fitSoft(net *nn.Network, sites []softSite, x, y *tensor.Matrix, cfg Config,
	rng *rand.Rand, softmax bool, epochCb func(epoch int, loss float64) bool) {

	if len(sites) == 0 {
		return
	}
	var softParams []*nn.Param
	firstSite := sites[0].flip.SiteID
	for _, s := range sites {
		softParams = append(softParams, s.param)
		if s.flip.SiteID < firstSite {
			firstSite = s.flip.SiteID
		}
	}
	sl := net.FullSlice()
	if !cfg.DisableSlicing {
		sl = net.Split(firstSite)
	}
	// Speed tier (DESIGN.md §13): identical structure, float32 suffix
	// kernels, float64 soft-coefficient masters. Falls through to the exact
	// loop below if any suffix layer lacks a float32 shadow.
	if cfg.TrainPrecision == Float32 {
		if fitSoft32(sl, sites, x, y, cfg, rng, softmax, epochCb) {
			return
		}
	}
	opt := train.NewAdam(cfg.LearnRate)
	n := x.Rows
	perm := rng.Perm(n)
	// Frozen-prefix activation cache, evaluated once per query set.
	h := sl.PrefixForward(x)
	if h != x {
		defer tensor.PutMatrix(h)
	}
	bestLoss := math.Inf(1)
	stall := 0
	// Reusable minibatch workspaces; partial batches reslice them.
	bhBuf := tensor.GetMatrix(cfg.LearnBatch, h.Cols)
	byBuf := tensor.GetMatrix(cfg.LearnBatch, y.Cols)
	defer tensor.PutMatrix(bhBuf, byBuf)
	for epoch := 0; epoch < cfg.LearnEpochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < n; start += cfg.LearnBatch {
			end := start + cfg.LearnBatch
			if end > n {
				end = n
			}
			bh := tensor.FromSlice(end-start, h.Cols, bhBuf.Data[:(end-start)*h.Cols])
			by := tensor.FromSlice(end-start, y.Cols, byBuf.Data[:(end-start)*y.Cols])
			tensor.GatherRowsInto(bh, h, perm[start:end])
			tensor.GatherRowsInto(by, y, perm[start:end])
			pred := sl.TrainForward(bh)
			var loss float64
			var grad *tensor.Matrix
			if softmax {
				loss, grad = train.MSESoftmax(pred, by)
			} else {
				grad = tensor.GetMatrix(pred.Rows, pred.Cols)
				loss = train.MSEInto(grad, pred, by)
			}
			sl.Backward(grad)
			tensor.PutMatrix(grad)
			opt.Step(softParams)
			sl.ZeroGrad() // drop gradients accumulated on frozen suffix weights
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		if epochCb != nil && !epochCb(epoch, epochLoss) {
			return
		}
		// Stop rule i: every coefficient is confident.
		allConfident := true
		for _, s := range sites {
			for _, k := range s.flip.SoftCoeffs() {
				if math.Abs(k) < cfg.ConfidenceThreshold {
					allConfident = false
					break
				}
			}
		}
		if allConfident {
			return
		}
		// Stop rule ii (attacker-observable): loss plateau.
		if epochLoss < bestLoss-1e-12 {
			bestLoss = epochLoss
			stall = 0
		} else {
			stall++
			if stall >= cfg.PlateauEpochs {
				return
			}
		}
	}
}

// learningAttack recovers the unresolved bits of one site (§3.6). The
// white box already carries the recovered prefix keys and the algebraic
// bits of this site as hard signs; those are enforced at ±1 exactly as the
// paper prescribes. The ⊥ bits of this site are softened as the learning
// targets — and so are all still-undecided bits of *later* sites, as free
// nuisance coefficients: without them the oracle's unknown downstream keys
// put an irreducible floor under the MSE that buries the current layer's
// gradient signal. The nuisance values are discarded afterwards.
//
// It writes the learned bits into the white box and returns the per-bit
// confidence |K'| keyed by spec position. A non-nil error (budget
// exhaustion, persistent device fault) leaves the white box unchanged for
// the undecided bits and must abort the run — the learning attack is the
// last fallback, so there is nothing left to degrade to.
func (a *Attack) learningAttack(site int, unresolved []int, rng *rand.Rand) (map[int]float64, error) {
	lsp := a.phase.ChildDetail("fit", obs.Int("site", site), obs.Int("bits", len(unresolved)),
		obs.Int("learn_queries", a.cfg.LearnQueries))
	trainNet := a.white.CloneForKeys()
	bySite := map[int][]int{site: unresolved}
	for i, pn := range a.spec.Neurons {
		if pn.Site > site && !a.decided[i] {
			bySite[pn.Site] = append(bySite[pn.Site], i)
		}
	}
	sites := soften(trainNet, &a.spec, bySite)

	x := dataset.UniformInputs(a.cfg.LearnQueries, trainNet.InSize(), a.cfg.InputLim, rng)
	y, err := a.queryBatch(lsp, x)
	if err != nil {
		tensor.PutMatrix(x)
		lsp.End(obs.String("outcome", "labelling_failed"))
		return nil, err
	}
	// The epoch callback only observes the trajectory for the trace — it
	// always returns true, so the fit runs exactly as it does untraced.
	var epochCb func(int, float64) bool
	var epochs int
	var lastLoss float64
	if lsp != nil {
		epochCb = func(e int, loss float64) bool {
			epochs, lastLoss = e+1, loss
			return true
		}
	}
	fitSoft(trainNet, sites, x, y, a.cfg, rng, a.orc.Softmax(), epochCb)
	lsp.End(obs.Int("epochs", epochs), obs.Float("loss", lastLoss))
	// The query set and its labels are per-invocation scratch: recycle them
	// instead of leaking a fresh pair every site visit.
	tensor.PutMatrix(x, y)

	conf := make(map[int]float64, len(unresolved))
	for _, s := range sites {
		confs := s.flip.Harden()
		if s.flip.SiteID != site {
			continue // nuisance coefficients: discard
		}
		for i, si := range s.specIdxs {
			bit := s.flip.Bit(a.spec.Neurons[si].Index)
			a.setBit(si, bit, confs[i], OriginLearning)
			conf[si] = confs[i]
		}
	}
	return conf, nil
}

// MonolithicReport extends Result with the per-epoch trajectory the
// harness uses to reproduce the §4.3 stop rules.
type MonolithicReport struct {
	Result
	Epochs int
	Losses []float64
}

// Monolithic runs the paper's baseline: the learning attack alone, applied
// to all key bits of all layers simultaneously (§4.3). monitor, when
// non-nil, observes the current key hypothesis each epoch (the paper's
// experimenters tracked accuracy and fidelity this way) and may stop the
// attack by returning false.
func Monolithic(white *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config,
	monitor func(epoch int, key hpnn.Key) bool) (*MonolithicReport, error) {

	cfg = cfg.withDefaults()
	//lint:ignore determinism telemetry timer for Result.Time; the value never feeds the numerics
	start := time.Now()
	startQ := orc.Queries()
	startR := orc.Rounds()
	startS := simElapsed(orc)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The baseline is one long learning phase: a single proc-labelled span
	// under a root anchor, so its trace rolls up into the Breakdown exactly
	// like the decryption attack's phases do.
	bd := metrics.NewBreakdown()
	var root *obs.Span
	if p := cfg.TraceParent; p != nil {
		root = p.Child("monolithic", obs.Int("bits", spec.NumBits()))
	} else {
		root = tracerFor(cfg).Start("monolithic", obs.Int("bits", spec.NumBits()))
	}
	root.SetBreakdown(bd)
	defer root.End()
	ph := root.Child(string(metrics.ProcLearningAttack), obs.Proc(metrics.ProcLearningAttack))
	// Ended explicitly on success after its counters land; the defer (End is
	// idempotent) covers the error return so the phase record still exports.
	defer ph.End()

	net := white.CloneForKeys()
	// All bits participate; group by site.
	bySite := spec.SiteBits()
	sites := soften(net, &spec, bySite)

	x := dataset.UniformInputs(cfg.LearnQueries, net.InSize(), cfg.InputLim, rng)
	y, err := queryBatchRetry(orc, x, cfg.QueryRetries, nil)
	if err != nil {
		tensor.PutMatrix(x)
		return nil, fmt.Errorf("core: monolithic labelling failed: %w", err)
	}

	rep := &MonolithicReport{}
	readKey := func() hpnn.Key {
		key := make(hpnn.Key, spec.NumBits())
		for _, s := range sites {
			coeffs := s.flip.SoftCoeffs()
			for i, si := range s.specIdxs {
				key[si] = coeffs[i] < 0
			}
		}
		return key
	}
	fitSoft(net, sites, x, y, cfg, rng, orc.Softmax(), func(epoch int, loss float64) bool {
		rep.Epochs = epoch + 1
		rep.Losses = append(rep.Losses, loss)
		if monitor != nil {
			return monitor(epoch, readKey())
		}
		return true
	})
	tensor.PutMatrix(x, y)

	key := make(hpnn.Key, spec.NumBits())
	origins := make([]BitOrigin, spec.NumBits())
	for _, s := range sites {
		s.flip.Harden()
		for _, si := range s.specIdxs {
			key[si] = s.flip.Bit(spec.Neurons[si].Index)
			origins[si] = OriginLearning
		}
	}
	rep.Result = Result{
		Key:     key,
		Origins: origins,
		Queries: orc.Queries() - startQ,
		Rounds:  orc.Rounds() - startR,
		//lint:ignore determinism telemetry: elapsed wall time reported to the operator, not used in computation
		Time:      time.Since(start),
		SimTime:   simElapsed(orc) - startS,
		Breakdown: bd,
	}
	ph.AddQueries(rep.Queries)
	ph.AddRounds(rep.Rounds)
	ph.AddSimNS(int64(rep.SimTime))
	ph.End()
	root.End(obs.Int("epochs", rep.Epochs), obs.Int64("queries", rep.Queries),
		obs.Int64("rounds", rep.Rounds))
	rep.QueriesByProc = bd.QueriesByProc()
	rep.RoundsByProc = bd.RoundsByProc()
	rep.SimByProc = bd.SimByProc()
	return rep, nil
}
