// Variants demo: §3.9 of the paper argues that every foreseeable
// pre-activation locking operator falls to the same attack framework. This
// example locks the same MLP with all four schemes — sign negation
// (standard HPNN), scaling (α^K), bias shift (+δ·K), and single-weight
// perturbation — and extracts every key.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dnnlock/internal/core"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

func main() {
	schemes := []struct {
		scheme hpnn.Scheme
		alpha  float64
		note   string
	}{
		{hpnn.Negation, 0, "standard HPNN: z ← (-1)^K · z"},
		{hpnn.Scaling, 0.5, "variant (a): z ← α^K · z, α = 0.5"},
		{hpnn.BiasShift, 0.8, "variant (b): z ← z + δ·K, δ = 0.8"},
		{hpnn.WeightPerturb, 1.1, "variant (b'): A[j,k] ← A[j,k] + δ·K, δ = 1.1"},
	}
	for i, s := range schemes {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		net := models.TinyMLP(rng)
		locked, secret := hpnn.Lock(net, hpnn.Config{
			Scheme: s.scheme, Alpha: s.alpha, KeyBits: 8, Rng: rng,
		})
		device := oracle.New(locked, secret)
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		res, err := core.Run(locked.WhiteBox(), locked.Spec, device, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: attack failed: %v\n", s.scheme, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s  %s\n", s.scheme, s.note)
		fmt.Printf("               secret    %s\n", secret)
		fmt.Printf("               recovered %s  (fidelity %.0f%%, %d queries, %s)\n\n",
			res.Key, 100*res.Key.Fidelity(secret), res.Queries, res.Time.Round(1000000))
	}
	fmt.Println("all four locking operators extracted — binary key bits embedded in")
	fmt.Println("deep ReLU networks are structurally vulnerable (paper §3.9, §6).")
}
