package harness

// Cell exports one prepared experiment instance to external drivers — the
// attack-service daemon (cmd/dnnlockd) foremost. A Cell wraps the same
// private pipeline the Table 1 sweep builds, and its config accessors
// reproduce runCell's seed discipline exactly (decryption at sc.Seed+2,
// monolithic at sc.Seed+1, each against a freshly provisioned oracle), so a
// daemon job for (model, bits, scale) reports the same dec_queries /
// dec_rounds as `dnnlock table1` on the same cell — the parity the
// check.sh daemon smoke verifies.

import (
	"fmt"
	"io"

	"dnnlock/internal/core"
	"dnnlock/internal/farm"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// Cell is one trained, locked (model, keyBits) instance. The correct key
// stays private — callers measure recovered keys through Fidelity and
// AccuracyUnderKey rather than reading the secret.
type Cell struct {
	p *pipeline
}

// PrepareCell trains a locked model for one (model, keyBits) cell at the
// given scale, exactly as the Table 1 sweep prepares it. Training progress
// streams to log when non-nil.
func PrepareCell(model string, bits int, sc Scale, log io.Writer) (*Cell, error) {
	p, err := prepare(model, bits, sc, log)
	if err != nil {
		return nil, err
	}
	return &Cell{p: p}, nil
}

// Model returns the cell's architecture name.
func (c *Cell) Model() string { return c.p.model }

// Bits returns the cell's key size.
func (c *Cell) Bits() int { return c.p.bits }

// Spec returns the public lock spec the adversary knows.
func (c *Cell) Spec() hpnn.LockSpec { return c.p.lm.Spec }

// WhiteBox returns a fresh clone of the adversary's downloaded model
// (weights with identity flips). Each call clones, so concurrent attacks
// and suspend/resume cycles never share mutable network state.
func (c *Cell) WhiteBox() *nn.Network { return c.p.lm.WhiteBox() }

// NewOracle provisions a fresh clean oracle device with independent
// counters, as runCell does per attack.
func (c *Cell) NewOracle() *oracle.Oracle { return oracle.New(c.p.lm, c.p.key) }

// FaultySpec configures a degraded oracle channel for a job, mirroring the
// robustness sweep's cells (DESIGN.md §11).
type FaultySpec struct {
	// Sigma is the Gaussian response-noise standard deviation (0 = none).
	Sigma float64
	// QuantBits quantizes oracle outputs to this many bits (0 = full
	// precision).
	QuantBits int
	// Budget caps total oracle queries (0 = unlimited).
	Budget int64
	// LossRate drops round-trips with this probability (0 = reliable).
	LossRate float64
}

// FaultyOracle provisions a decorated oracle for spec and returns it with
// the attack-config declarations (QuantStep, NoiseSigma, ProbeVotes) the
// robustness sweep would make for the same degradation, already applied to
// cfg.
func (c *Cell) FaultyOracle(spec FaultySpec, cfg core.Config) (oracle.Interface, core.Config) {
	var orc oracle.Interface = c.NewOracle()
	if spec.QuantBits > 0 {
		orc = oracle.Quantized(orc, spec.QuantBits)
		cfg.QuantStep = oracle.QuantizationStep(spec.QuantBits)
	}
	if spec.Sigma > 0 {
		orc = oracle.Noisy(orc, spec.Sigma, c.p.sc.Seed+3)
		cfg.NoiseSigma = spec.Sigma
		cfg.ProbeVotes = 3
	}
	if spec.LossRate > 0 {
		orc = oracle.Flaky(orc, spec.LossRate, c.p.sc.Seed+4)
	}
	if spec.Budget > 0 {
		orc = oracle.Budgeted(orc, spec.Budget)
	}
	return orc, cfg
}

// FarmOracle provisions a simulated device fleet behind a priced channel,
// mirroring the farm sweep's per-point construction (DESIGN.md §16): fresh
// base oracle, fleet and transport seeded at sc.Seed+5, row sizes derived
// from the cell's dataset, and the mix's worst-case degradations declared
// into cfg.
func (c *Cell) FarmOracle(mixName string, devices int, ch farm.Channel, cfg core.Config) (*farm.Transport, core.Config, error) {
	mix, err := farm.MixByName(mixName)
	if err != nil {
		return nil, cfg, err
	}
	if devices <= 0 {
		return nil, cfg, fmt.Errorf("harness: farm oracle needs devices > 0, got %d", devices)
	}
	base := c.NewOracle()
	fleet := farm.BuildFleet(base, mix, devices, ch, c.p.sc.Seed+5)
	tr := farm.NewTransport(base, fleet, farm.Config{
		Seed:        c.p.sc.Seed + 5,
		RowBytesIn:  8 * c.p.test.InputSize(),
		RowBytesOut: 8 * c.p.test.Classes,
	})
	if step := mix.MaxQuantStep(); step > 0 {
		cfg.QuantStep = step
	}
	if sigma := mix.MaxSigma(); sigma > 0 {
		cfg.NoiseSigma = sigma
		cfg.ProbeVotes = 3
	}
	return tr, cfg, nil
}

// DecryptConfig returns the attack configuration the Table 1 sweep uses for
// this cell's decryption attack (scale AttackCfg, Seed = sc.Seed+2).
func (c *Cell) DecryptConfig() core.Config {
	cfg := c.p.sc.AttackCfg
	cfg.Seed = c.p.sc.Seed + 2
	return cfg
}

// MonolithicConfig returns the configuration runCell uses for the
// monolithic learning-based baseline (MonoQueries/MonoEpochs, Seed =
// sc.Seed+1).
func (c *Cell) MonolithicConfig() core.Config {
	cfg := c.p.sc.AttackCfg
	cfg.LearnQueries = c.p.sc.MonoQueries
	cfg.LearnEpochs = c.p.sc.MonoEpochs
	cfg.Seed = c.p.sc.Seed + 1
	return cfg
}

// Fidelity measures a recovered key against the cell's secret key (§4.2).
func (c *Cell) Fidelity(k hpnn.Key) float64 { return k.Fidelity(c.p.key) }

// AccuracyUnderKey evaluates the locked model on the held-out test split
// under an arbitrary key.
func (c *Cell) AccuracyUnderKey(k hpnn.Key) float64 { return c.p.accuracyUnderKey(k) }

// ScaleByName resolves the named harness preset — the same names `dnnlock
// -scale` accepts.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "", "tiny":
		return TinyScale(), nil
	case "quick":
		return QuickScale(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Scale{}, fmt.Errorf("harness: unknown scale %q (tiny, quick, paper)", name)
	}
}
