package nn

import (
	"math"

	"dnnlock/internal/tensor"
)

// Flip is the HPNN flipping unit (paper Figure 1(b), Equation 1): it
// multiplies the pre-activation of selected neurons by (-1)^K. A Flip layer
// spans the whole pre-activation vector of one lockable layer; unprotected
// indices keep sign +1. Each Flip owns a flip-site ID under which traces
// record the unsigned (pre-flip) and signed (post-flip) values.
//
// Flip can also run in soft mode for the learning-based attack (§3.6): the
// coefficients of selected indices become continuous values k = tanh(w) in
// [-1, 1] backed by a trainable parameter, while all other indices keep
// their hard signs.
type Flip struct {
	N      int
	SiteID int

	Signs []float64 // hard multiplicative coefficients, length N (±1 for HPNN)

	// Offsets, when non-nil, is added after the multiplication:
	// y = Signs∘x + Offsets. It implements the §3.9 bias-shift locking
	// variant and is zero/nil for plain HPNN.
	Offsets []float64

	// Soft mode state (nil when hard). In soft mode the selected indices
	// compute a continuous relaxation of the flip with K' = 1−2σ(w) in
	// [-1, 1] (K' = +1 ⇒ bit 0, K' = −1 ⇒ bit 1, matching §3.6).
	//
	// When the flip is directly gated by a ReLU, the relaxation
	// interpolates the two branch outputs, (1−s)·ReLU(u) + s·ReLU(−u)
	// with s = σ(w); the output is nonnegative so the following ReLU is
	// the identity and, crucially, the gradient never dies when K'
	// crosses zero (the naive K'·u form pins the pre-activation at the
	// ReLU's dead point). Ungated flips (e.g. before a residual add) use
	// the linear form K'·u.
	softIdx   []int  // indices in soft mode
	softW     *Param // 1×len(softIdx) trainable raw weights
	softGated bool

	lastX *tensor.Matrix // training cache
}

// NewFlip constructs an identity flip (all signs +1) of width n.
func NewFlip(n int) *Flip {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return &Flip{N: n, SiteID: -1, Signs: s}
}

func (f *Flip) Name() string { return "flip" }

// InSize returns the width.
func (f *Flip) InSize() int { return f.N }

// OutSize returns the width.
func (f *Flip) OutSize() int { return f.N }

func (f *Flip) registerSites(nextFlip, nextReLU *int) {
	f.SiteID = *nextFlip
	*nextFlip++
}

// SetBit sets the hard key bit of neuron j: bit=true flips the sign.
func (f *Flip) SetBit(j int, bit bool) {
	if bit {
		f.Signs[j] = -1
	} else {
		f.Signs[j] = 1
	}
}

// Bit reports the hard key bit of neuron j.
func (f *Flip) Bit(j int) bool { return f.Signs[j] < 0 }

// Soften switches the given indices to the continuous relaxation and
// returns the trainable parameter. gated must report whether this flip is
// directly rectified by a ReLU (see the soft-mode comment above). Raw
// weights start at 0, i.e. K' = 0: the most uncertain state. Calling
// Soften replaces any previous soft state.
func (f *Flip) Soften(indices []int, gated bool) *Param {
	f.softIdx = append([]int(nil), indices...)
	f.softW = NewParam("flip_soft_w", 1, len(indices))
	f.softGated = gated
	return f.softW
}

// Harden freezes soft coefficients back into hard signs by the sign of K'
// (the paper's "replace ⊥ with 0 if K' positive, 1 otherwise") and leaves
// soft mode. It returns the per-index confidence |K'|, aligned with the
// soften indices.
func (f *Flip) Harden() []float64 {
	if f.softW == nil {
		return nil
	}
	ks := f.SoftCoeffs()
	conf := make([]float64, len(f.softIdx))
	for i, j := range f.softIdx {
		conf[i] = math.Abs(ks[i])
		if ks[i] >= 0 {
			f.Signs[j] = 1
		} else {
			f.Signs[j] = -1
		}
	}
	f.softIdx, f.softW = nil, nil
	return conf
}

// SoftCoeffs returns K' = 1−2σ(w) for the current soft indices (empty when
// hard).
func (f *Flip) SoftCoeffs() []float64 {
	out := make([]float64, len(f.softIdx))
	for i := range f.softIdx {
		out[i] = 1 - 2*sigmoid(f.softW.W.Data[i])
	}
	return out
}

// SoftIndices returns the indices currently in soft mode.
func (f *Flip) SoftIndices() []int { return f.softIdx }

func sigmoid(w float64) float64 { return 1 / (1 + math.Exp(-w)) }

// softForwardValue computes the relaxed output for soft index i with
// pre-activation u.
func (f *Flip) softForwardValue(i int, u float64) float64 {
	s := sigmoid(f.softW.W.Data[i])
	if f.softGated {
		return (1-s)*relu(u) + s*relu(-u)
	}
	return (1 - 2*s) * u
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// SetOffset sets the additive offset of neuron j (bias-shift variant).
func (f *Flip) SetOffset(j int, v float64) {
	if f.Offsets == nil {
		f.Offsets = make([]float64, f.N)
	}
	f.Offsets[j] = v
}

// forwardRowInto applies the flip to one example, writing into y (same
// length as x; must not alias x when soft indices are active, since those
// re-read the pre-flip value).
func (f *Flip) forwardRowInto(y, x []float64) {
	for i, v := range x {
		y[i] = f.Signs[i] * v
	}
	if f.Offsets != nil {
		for i, o := range f.Offsets {
			y[i] += o
		}
	}
	for i, j := range f.softIdx {
		y[j] = f.softForwardValue(i, x[j])
	}
}

// forwardRow applies the flip to one example in place-free fashion.
func (f *Flip) forwardRow(x []float64) []float64 {
	y := make([]float64, f.N)
	f.forwardRowInto(y, x)
	return y
}

// Forward applies the effective flip (hard signs/offsets plus any soft
// relaxation), recording pre/post values into tr when non-nil.
func (f *Flip) Forward(x []float64, tr *Trace) []float64 {
	checkSize("flip", f.N, len(x))
	y := f.forwardRow(x)
	if tr != nil {
		tr.Pre[f.SiteID] = tensor.VecClone(x)
		tr.Post[f.SiteID] = tensor.VecClone(y)
	}
	return y
}

// ForwardBatch applies the flip to each row.
func (f *Flip) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	// forwardRowInto assigns every output element, so a pooled buffer is safe.
	out := tensor.GetMatrix(x.Rows, f.N)
	for i := 0; i < x.Rows; i++ {
		f.forwardRowInto(out.Row(i), x.Row(i))
	}
	return out
}

// TrainForward is ForwardBatch with input caching.
func (f *Flip) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	f.lastX = x
	return f.ForwardBatch(x)
}

// Backward returns dX and, in soft mode, accumulates the gradient of the
// raw soft weights. Gated relaxation: y = (1−s)·φ(u) + s·φ(−u) with
// s = σ(w), so ∂y/∂w = (φ(−u) − φ(u))·s(1−s) and
// ∂y/∂u = (1−s)·1[u>0] − s·1[u<0]. Ungated: y = (1−2s)·u, so
// ∂y/∂w = −2u·s(1−s) and ∂y/∂u = 1−2s.
func (f *Flip) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if f.lastX == nil {
		panic("nn: Flip.Backward before TrainForward")
	}
	dx := tensor.GetMatrix(dy.Rows, dy.Cols)
	copy(dx.Data, dy.Data)
	for r := 0; r < dx.Rows; r++ {
		row := dx.Row(r)
		for j := range row {
			row[j] *= f.Signs[j]
		}
	}
	for i, j := range f.softIdx {
		s := sigmoid(f.softW.W.Data[i])
		ds := s * (1 - s)
		gw := 0.0
		for r := 0; r < dy.Rows; r++ {
			g := dy.At(r, j)
			u := f.lastX.At(r, j)
			var dydu, dydw float64
			if f.softGated {
				dydw = (relu(-u) - relu(u)) * ds
				switch {
				case u > 0:
					dydu = 1 - s
				case u < 0:
					dydu = -s
				}
			} else {
				dydw = -2 * u * ds
				dydu = 1 - 2*s
			}
			dx.Set(r, j, g*dydu)
			gw += g * dydw
		}
		f.softW.G.Data[i] += gw
	}
	return dx
}

// JVP scales value and tangent rows by the local derivative of the flip
// and records the pre-flip Jacobian (the Â^(i) numerator the attack needs)
// into jtr. Constant offsets shift the value but not the tangents.
func (f *Flip) JVP(x []float64, j *tensor.Matrix, jtr *JVPTrace) ([]float64, *tensor.Matrix) {
	if jtr != nil {
		jtr.PreJ[f.SiteID] = j.Clone()
	}
	y := f.forwardRow(x)
	jy := j.Clone()
	deriv := func(i int) float64 { return f.Signs[i] }
	soft := make(map[int]int, len(f.softIdx))
	for si, idx := range f.softIdx {
		soft[idx] = si
	}
	for i := range x {
		d := deriv(i)
		if si, ok := soft[i]; ok {
			s := sigmoid(f.softW.W.Data[si])
			if f.softGated {
				switch {
				case x[i] > 0:
					d = 1 - s
				case x[i] < 0:
					d = -s
				default:
					d = 0
				}
			} else {
				d = 1 - 2*s
			}
		}
		//lint:ignore floatcmp d is the exact sentinel 1 when the flip is inactive
		if d != 1 {
			row := jy.Row(i)
			for col := range row {
				row[col] *= d
			}
		}
	}
	return y, jy
}

// Params returns the soft parameter when in soft mode.
func (f *Flip) Params() []*Param {
	if f.softW != nil {
		return []*Param{f.softW}
	}
	return nil
}
