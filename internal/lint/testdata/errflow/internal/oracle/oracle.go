// Package oracle stubs the query surface of the real dnnlock/internal/oracle
// for the errflow golden tests: same import path, same names, no behavior.
package oracle

type Oracle struct{}

func (o *Oracle) Query(x []float64) ([]float64, error) { return x, nil }

func (o *Oracle) QueryBatch(n int) ([][]float64, error) { return nil, nil }
