package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// PatchEmbed splits a CHW image into non-overlapping P×P patches and
// projects each patch to a D-dimensional token with a shared linear map
// (the ViT patch embedding). Output is T·D flat, token-major, with
// T = (H/P)·(W/P).
type PatchEmbed struct {
	C, H, W int
	P       int // patch side
	D       int // token width
	T       int // token count
	Wt, B   *Param

	lastX *tensor.Matrix // training cache
}

// NewPatchEmbed constructs the embedding; H and W must be multiples of p.
func NewPatchEmbed(c, h, w, p, d int) *PatchEmbed {
	if h%p != 0 || w%p != 0 {
		panic(fmt.Sprintf("nn: patch size %d does not divide %dx%d", p, h, w))
	}
	t := (h / p) * (w / p)
	return &PatchEmbed{
		C: c, H: h, W: w, P: p, D: d, T: t,
		Wt: NewParam("patch_w", d, c*p*p),
		B:  NewParam("patch_b", 1, d),
	}
}

// InitXavier initializes the projection.
func (pe *PatchEmbed) InitXavier(rng *rand.Rand) *PatchEmbed {
	std := math.Sqrt(2.0 / float64(pe.C*pe.P*pe.P+pe.D))
	for i := range pe.Wt.W.Data {
		pe.Wt.W.Data[i] = rng.NormFloat64() * std
	}
	return pe
}

func (pe *PatchEmbed) Name() string { return "patch_embed" }

// InSize returns C·H·W.
func (pe *PatchEmbed) InSize() int { return pe.C * pe.H * pe.W }

// OutSize returns T·D.
func (pe *PatchEmbed) OutSize() int { return pe.T * pe.D }

// gather extracts the flat patch for token t into dst (length C·P·P).
func (pe *PatchEmbed) gather(x []float64, t int, dst []float64) {
	cols := pe.W / pe.P
	py, px := t/cols, t%cols
	idx := 0
	for c := 0; c < pe.C; c++ {
		base := c * pe.H * pe.W
		for dy := 0; dy < pe.P; dy++ {
			iy := py*pe.P + dy
			rowBase := base + iy*pe.W + px*pe.P
			for dx := 0; dx < pe.P; dx++ {
				dst[idx] = x[rowBase+dx]
				idx++
			}
		}
	}
}

// scatter adds src (length C·P·P) back into the image-gradient for token t.
func (pe *PatchEmbed) scatter(dst []float64, t int, src []float64) {
	cols := pe.W / pe.P
	py, px := t/cols, t%cols
	idx := 0
	for c := 0; c < pe.C; c++ {
		base := c * pe.H * pe.W
		for dy := 0; dy < pe.P; dy++ {
			iy := py*pe.P + dy
			rowBase := base + iy*pe.W + px*pe.P
			for dx := 0; dx < pe.P; dx++ {
				dst[rowBase+dx] += src[idx]
				idx++
			}
		}
	}
}

// forwardOne embeds one example; bias optional for the linear tangent path.
func (pe *PatchEmbed) forwardOne(x []float64, withBias bool) []float64 {
	out := make([]float64, pe.OutSize())
	buf := make([]float64, pe.C*pe.P*pe.P)
	brow := pe.B.W.Row(0)
	for t := 0; t < pe.T; t++ {
		pe.gather(x, t, buf)
		for d := 0; d < pe.D; d++ {
			v := tensor.Dot(pe.Wt.W.Row(d), buf)
			if withBias {
				v += brow[d]
			}
			out[t*pe.D+d] = v
		}
	}
	return out
}

// Forward embeds one flat example.
func (pe *PatchEmbed) Forward(x []float64, _ *Trace) []float64 {
	checkSize("patch_embed", pe.InSize(), len(x))
	return pe.forwardOne(x, true)
}

// ForwardBatch embeds each row.
func (pe *PatchEmbed) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(pe, x)
}

// TrainForward is ForwardBatch with input caching.
func (pe *PatchEmbed) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	pe.lastX = x
	return pe.ForwardBatch(x)
}

// Backward accumulates projection gradients and returns dX.
func (pe *PatchEmbed) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if pe.lastX == nil {
		panic("nn: PatchEmbed.Backward before TrainForward")
	}
	dx := tensor.New(dy.Rows, pe.InSize())
	buf := make([]float64, pe.C*pe.P*pe.P)
	dbuf := make([]float64, pe.C*pe.P*pe.P)
	for r := 0; r < dy.Rows; r++ {
		xr := pe.lastX.Row(r)
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for t := 0; t < pe.T; t++ {
			pe.gather(xr, t, buf)
			for i := range dbuf {
				dbuf[i] = 0
			}
			for d := 0; d < pe.D; d++ {
				g := dyr[t*pe.D+d]
				//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
				if g == 0 {
					continue
				}
				pe.B.G.Data[d] += g
				wg := pe.Wt.G.Row(d)
				wr := pe.Wt.W.Row(d)
				for i := range buf {
					wg[i] += g * buf[i]
					dbuf[i] += g * wr[i]
				}
			}
			pe.scatter(dxr, t, dbuf)
		}
	}
	return dx
}

// JVP embeds the value with bias and each tangent column without bias.
func (pe *PatchEmbed) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := pe.forwardOne(x, true)
	jy := tensor.New(pe.OutSize(), j.Cols)
	col := make([]float64, pe.InSize())
	for t := 0; t < j.Cols; t++ {
		for i := range col {
			col[i] = j.At(i, t)
		}
		jy.SetCol(t, pe.forwardOne(col, false))
	}
	return y, jy
}

// Params returns the projection and bias parameters.
func (pe *PatchEmbed) Params() []*Param { return []*Param{pe.Wt, pe.B} }
