package core

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// mustBatch fails the test on a batch-query error; the clean oracle never
// errors.
func mustBatch(t *testing.T, orc oracle.Interface, x *tensor.Matrix) *tensor.Matrix {
	t.Helper()
	y, err := orc.QueryBatch(x)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	return y
}

func TestGatedFlipSites(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	mlp := models.TinyMLP(rng)
	g := gatedFlipSites(mlp)
	if !g[0] || !g[1] {
		t.Fatal("MLP flips should be ReLU-gated")
	}
	res := models.TinyResNet(rng)
	gr := gatedFlipSites(res)
	// Stem and first block conv are gated; the block's second conv feeds
	// the residual add.
	if !gr[0] || !gr[1] || gr[2] {
		t.Fatalf("ResNet gating map wrong: %v", gr)
	}
}

func TestLearningAttackRecoversGatedLayer(t *testing.T) {
	// Expansive first layer forces the learning path; it must recover the
	// bits exactly on this small instance.
	rng := rand.New(rand.NewSource(502))
	net := nn.NewNetwork(
		nn.NewDense(5, 12).InitHe(rng), nn.NewFlip(12), nn.NewReLU(12),
		nn.NewDense(12, 4).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	orc := oracle.New(lm, key)
	a := New(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	bits := lm.Spec.SiteBits()[0]
	conf, err := a.learningAttack(0, bits, rand.New(rand.NewSource(503)))
	if err != nil {
		t.Fatal(err)
	}
	got := a.CurrentKey()
	for _, si := range bits {
		if got[si] != key[si] {
			t.Fatalf("learned bit %d wrong (conf %.2f)", si, conf[si])
		}
		if conf[si] <= 0 {
			t.Fatalf("confidence missing for bit %d", si)
		}
	}
}

func TestLearningAttackUngatedResidualFlip(t *testing.T) {
	// A flip feeding a residual add (no direct ReLU gate) uses the linear
	// relaxation; the learning attack must still recover its bits.
	rng := rand.New(rand.NewSource(504))
	body := []nn.Layer{
		nn.NewDense(6, 6).InitHe(rng), nn.NewFlip(6),
	}
	net := nn.NewNetwork(
		nn.NewResidual(body, nil), nn.NewReLU(6),
		nn.NewDense(6, 3).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	orc := oracle.New(lm, key)
	a := New(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	bits := lm.Spec.SiteBits()[0]
	if _, err := a.learningAttack(0, bits, rand.New(rand.NewSource(505))); err != nil {
		t.Fatal(err)
	}
	got := a.CurrentKey()
	wrong := 0
	for _, si := range bits {
		if got[si] != key[si] {
			wrong++
		}
	}
	if wrong > 1 {
		t.Fatalf("%d of %d ungated bits learned wrong", wrong, len(bits))
	}
}

func TestFitSoftConfidenceStop(t *testing.T) {
	// With a strong signal the fit should settle every coefficient and
	// stop before the epoch budget.
	rng := rand.New(rand.NewSource(506))
	net := nn.NewNetwork(
		nn.NewDense(4, 6).InitHe(rng), nn.NewFlip(6), nn.NewReLU(6),
		nn.NewDense(6, 3).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	orc := oracle.New(lm, key)

	trainNet := lm.WhiteBox()
	sites := soften(trainNet, &lm.Spec, lm.Spec.SiteBits())
	x := dataset.UniformInputs(256, 4, 2, rng)
	y := mustBatch(t, orc, x)
	defer tensor.PutMatrix(x, y)
	cfg := DefaultConfig()
	cfg.LearnEpochs = 400
	epochs := 0
	fitSoft(trainNet, sites, x, y, cfg, rng, false, func(e int, loss float64) bool {
		epochs = e + 1
		return true
	})
	if epochs == 400 {
		t.Fatal("confidence stop never triggered")
	}
	for _, s := range sites {
		for _, k := range s.flip.SoftCoeffs() {
			if math.Abs(k) < cfg.ConfidenceThreshold {
				t.Fatalf("coefficient %.3f below threshold at stop", k)
			}
		}
	}
}

func TestFitSoftCallbackAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(507))
	net := nn.NewNetwork(
		nn.NewDense(3, 5).InitHe(rng), nn.NewFlip(5), nn.NewReLU(5),
		nn.NewDense(5, 2).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 3, Rng: rng})
	orc := oracle.New(lm, key)
	trainNet := lm.WhiteBox()
	sites := soften(trainNet, &lm.Spec, lm.Spec.SiteBits())
	x := dataset.UniformInputs(64, 3, 2, rng)
	y := mustBatch(t, orc, x)
	defer tensor.PutMatrix(x, y)
	calls := 0
	fitSoft(trainNet, sites, x, y, DefaultConfig(), rng, false, func(e int, loss float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("abort callback ran %d times", calls)
	}
}

func TestMonolithicNeverBeatsDecryptionOnFidelity(t *testing.T) {
	// The paper's central comparison: on a starved query budget the
	// monolithic attack cannot out-recover Algorithm 2, which is exact.
	rng := rand.New(rand.NewSource(508))
	net := models.TinyLeNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 8, Rng: rng})

	monoCfg := DefaultConfig()
	monoCfg.LearnQueries = 32 // starved
	monoCfg.LearnEpochs = 30
	mono, err := Monolithic(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), monoCfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("decryption fidelity %.3f", res.Key.Fidelity(key))
	}
	if mono.Key.Fidelity(key) > res.Key.Fidelity(key) {
		t.Fatal("impossible: monolithic beat an exact attack")
	}
}

func TestSoftenIndexAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	net := models.TinyMLP(rng)
	lm, _ := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	clone := net.CloneForKeys()
	bySite := lm.Spec.SiteBits()
	sites := soften(clone, &lm.Spec, bySite)
	for _, s := range sites {
		idxs := s.flip.SoftIndices()
		if len(idxs) != len(s.specIdxs) {
			t.Fatal("index count mismatch")
		}
		for i, si := range s.specIdxs {
			if lm.Spec.Neurons[si].Index != idxs[i] {
				t.Fatal("soften indices misaligned with spec")
			}
		}
	}
}
