package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dnnlock/internal/tensor"
)

// affineCheck verifies the affine superposition property that the attack's
// algebra rests on: f(x+y) − f(0) == (f(x) − f(0)) + (f(y) − f(0)).
func affineCheck(l Layer, x, y []float64, tol float64) bool {
	zero := make([]float64, l.InSize())
	f0 := l.Forward(zero, nil)
	fx := l.Forward(x, nil)
	fy := l.Forward(y, nil)
	fxy := l.Forward(tensor.VecAdd(x, y), nil)
	for i := range f0 {
		lhs := fxy[i] - f0[i]
		rhs := (fx[i] - f0[i]) + (fy[i] - f0[i])
		if d := lhs - rhs; d > tol || d < -tol {
			return false
		}
	}
	return true
}

func randVecN(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestAffineLayersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := []Layer{
			NewDense(6, 4).InitHe(rng),
			NewConv2D(1, 6, 6, 2, 3, 1, 1).InitHe(rng),
			NewAvgPool2D(2, 4, 4, 2, 2),
			NewGlobalAvgPool(2, 3, 3),
			NewMeanTokens(3, 4),
			NewPatchEmbed(1, 4, 4, 2, 3).InitXavier(rng),
			NewTokenDense(2, 3, 5).InitHe(rng),
			NewFlatten(7),
		}
		for _, l := range layers {
			x := randVecN(rng, l.InSize())
			y := randVecN(rng, l.InSize())
			if !affineCheck(l, x, y, 1e-9) {
				t.Logf("layer %s failed affine check", l.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUPositiveHomogeneity(t *testing.T) {
	// φ(a·x) = a·φ(x) for a > 0 — why scaling keys leave hyperplanes in
	// place (§3.9 case a).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewReLU(8)
		x := randVecN(rng, 8)
		a := 0.1 + rng.Float64()*5
		ax := tensor.VecScale(a, x)
		lhs := r.Forward(ax, nil)
		rhs := tensor.VecScale(a, r.Forward(x, nil))
		return tensor.NormInf(tensor.VecSub(lhs, rhs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPoolPositiveHomogeneity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewMaxPool2D(1, 4, 4, 2, 2)
		x := randVecN(rng, p.InSize())
		a := 0.1 + rng.Float64()*3
		lhs := p.Forward(tensor.VecScale(a, x), nil)
		rhs := tensor.VecScale(a, p.Forward(x, nil))
		return tensor.NormInf(tensor.VecSub(lhs, rhs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNegationFlipIsSignFlip(t *testing.T) {
	// Equation 1 of the paper: the flip negates exactly the protected
	// pre-activations and nothing else.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := NewFlip(6)
		protected := map[int]bool{}
		for j := 0; j < 6; j++ {
			if rng.Intn(2) == 1 {
				fl.SetBit(j, true)
				protected[j] = true
			}
		}
		x := randVecN(rng, 6)
		y := fl.Forward(x, nil)
		for j := range x {
			want := x[j]
			if protected[j] {
				want = -x[j]
			}
			if y[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualIsSumOfPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	body := []Layer{NewDense(5, 5).InitHe(rng)}
	short := []Layer{NewDense(5, 5).InitHe(rng)}
	res := NewResidual(body, short)
	x := randVecN(rng, 5)
	want := tensor.VecAdd(body[0].Forward(x, nil), short[0].Forward(x, nil))
	if tensor.NormInf(tensor.VecSub(res.Forward(x, nil), want)) > 1e-12 {
		t.Fatal("residual is not the sum of its paths")
	}
}
