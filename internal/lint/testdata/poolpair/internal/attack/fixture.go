// Package attack is the poolpair golden fixture: each function exercises
// one acquisition/release shape, with // want markers on the lines the
// analyzer must flag and none on the shapes it must accept.
package attack

import (
	"dnnlock/internal/dataset"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

type cache struct {
	buf *tensor.Matrix
}

// --- violations -----------------------------------------------------------

func leakNeverReleased() int {
	m := tensor.GetMatrix(2, 2) // want "result of tensor.GetMatrix is never released"
	return m.Rows
}

func leakVec() int {
	v := tensor.GetVec(4) // want "result of tensor.GetVec is never released"
	return len(v)
}

func leakVarDecl() int {
	var m = tensor.GetMatrixZero(2, 2) // want "result of tensor.GetMatrixZero is never released"
	return m.Cols
}

func leakQueryBatch(o *oracle.Oracle, x *tensor.Matrix) int {
	y, _ := o.QueryBatch(x) // want "result of oracle.QueryBatch is never released"
	return y.Rows
}

func leakQueryBatchOnErrorReturn(o *oracle.Oracle, x *tensor.Matrix) (int, error) {
	y, err := o.QueryBatch(x)
	if err != nil {
		return 0, err // want "oracle.QueryBatch acquired at line .* may leak on this return path"
	}
	r := y.Rows
	tensor.PutMatrix(y)
	return r, nil
}

func blankQueryBatch(o *oracle.Oracle, x *tensor.Matrix) error {
	_, err := o.QueryBatch(x) // want "result of oracle.QueryBatch is assigned to _"
	return err
}

func storedQueryBatchWithoutTransfer(c *cache, o *oracle.Oracle, x *tensor.Matrix) {
	var err error
	c.buf, err = o.QueryBatch(x) // want "result of oracle.QueryBatch is stored outside the function without //lint:transfer"
	_ = err
}

func leakUniformInputs() int {
	x := dataset.UniformInputs(8, 2, 1.0) // want "result of dataset.UniformInputs is never released"
	return x.Rows
}

func leakOnEarlyReturn(cond bool) int {
	m := tensor.GetMatrix(2, 2)
	if cond {
		return -1 // want "tensor.GetMatrix acquired at line .* may leak on this return path"
	}
	tensor.PutMatrix(m)
	return m.Rows
}

func discarded() {
	tensor.GetMatrix(1, 1) // want "result of tensor.GetMatrix is discarded"
}

func blankAssigned() {
	_ = tensor.GetMatrix(1, 1) // want "result of tensor.GetMatrix is assigned to _"
}

func storedAtBirthWithoutTransfer(c *cache) {
	c.buf = tensor.GetMatrix(1, 1) // want "result of tensor.GetMatrix is stored outside the function without //lint:transfer"
}

func storedLaterWithoutTransfer(c *cache) {
	m := tensor.GetMatrix(1, 1)
	m.Data[0] = 1
	c.buf = m // want "m obtained from tensor.GetMatrix is stored outside the function without //lint:transfer"
}

func leakArena() int {
	ar := tensor.GetArena32() // want "result of tensor.GetArena32 is never released"
	return len(ar.Alloc(8))
}

func leakArenaOnEarlyReturn(cond bool) int {
	ar := tensor.GetArena32()
	if cond {
		return -1 // want "tensor.GetArena32 acquired at line .* may leak on this return path"
	}
	tensor.PutArena32(ar)
	return 0
}

func leakOnFallThrough(cond bool) {
	m := tensor.GetMatrix(2, 2) // want "not released on the fall-through path"
	if cond {
		tensor.PutMatrix(m)
	}
}

// --- suppressed hits ------------------------------------------------------

func suppressedLeak() int {
	m := tensor.GetMatrix(2, 2) //lint:ignore poolpair fixture: leak is intentional here
	return m.Rows
}

func suppressedLeakLineAbove() int {
	//lint:ignore poolpair fixture: suppression on the preceding line
	m := tensor.GetMatrix(2, 2)
	return m.Rows
}

// --- clean shapes ---------------------------------------------------------

func releasedInline() int {
	m := tensor.GetMatrix(2, 2)
	r := m.Rows
	tensor.PutMatrix(m)
	return r
}

func releasedDeferred(cond bool) int {
	m := tensor.GetMatrix(2, 2)
	defer tensor.PutMatrix(m)
	if cond {
		return -1
	}
	return m.Rows
}

func releasedDeferredClosure() int {
	m := tensor.GetMatrix(2, 2)
	defer func() { tensor.PutMatrix(m) }()
	return m.Rows
}

func releasedViaAlias() int {
	m := tensor.GetMatrix(2, 2)
	w := m
	tensor.PutMatrix(w)
	return 0
}

func releasedVec() int {
	v := tensor.GetVec(4)
	defer tensor.PutVec(v)
	return len(v)
}

func releasedOnEachBranch(cond bool) int {
	m := tensor.GetMatrix(2, 2)
	if cond {
		tensor.PutMatrix(m)
		return -1
	}
	tensor.PutMatrix(m)
	return 0
}

func returnedToCaller() *tensor.Matrix {
	m := tensor.GetMatrix(2, 2)
	return m
}

func transferAnnotatedStore(c *cache) {
	c.buf = tensor.GetMatrix(1, 1) //lint:transfer released by cache.drop
}

func transferAnnotatedLater(c *cache) {
	m := tensor.GetMatrix(1, 1)
	m.Data[0] = 1
	c.buf = m //lint:transfer released by cache.drop
}

func (c *cache) drop() {
	tensor.PutMatrix(c.buf)
	c.buf = nil
}

// arenaDeferReleased mirrors core.fitSoft32: one arena per training run,
// released by defer so every exit is covered.
func arenaDeferReleased(cond bool) int {
	ar := tensor.GetArena32()
	defer tensor.PutArena32(ar)
	if cond {
		return -1
	}
	return len(ar.Alloc(16))
}

func arenaReleasedInline() int {
	ar := tensor.GetArena32()
	n := len(ar.Alloc(4))
	tensor.PutArena32(ar)
	return n
}

func queryReleased(o *oracle.Oracle, x *tensor.Matrix) int {
	y, _ := o.QueryBatch(x)
	defer tensor.PutMatrix(y)
	return y.Rows
}

// queryErrPathBalanced is the repo's hardened error-path idiom: the nil-safe
// release on the error branch keeps every exit visibly balanced.
func queryErrPathBalanced(o *oracle.Oracle, x *tensor.Matrix) (int, error) {
	y, err := o.QueryBatch(x)
	if err != nil {
		tensor.PutMatrix(y)
		return 0, err
	}
	r := y.Rows
	tensor.PutMatrix(y)
	return r, nil
}

// queryErrPathEscapes returns the buffer to the caller on success and
// releases it on failure.
func queryErrPathEscapes(o *oracle.Oracle, x *tensor.Matrix) (*tensor.Matrix, error) {
	y, err := o.QueryBatch(x)
	if err != nil {
		tensor.PutMatrix(y)
		return nil, err
	}
	return y, nil
}

// queryRetryLoop mirrors core.queryBatchRetry: acquisition inside a loop,
// escape on success, release before each error continuation.
func queryRetryLoop(o *oracle.Oracle, x *tensor.Matrix, retries int) (*tensor.Matrix, error) {
	var err error
	for t := 0; t <= retries; t++ {
		var y *tensor.Matrix
		y, err = o.QueryBatch(x)
		if err == nil {
			return y, nil
		}
		tensor.PutMatrix(y)
	}
	return nil, err
}
