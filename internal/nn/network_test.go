package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dnnlock/internal/tensor"
)

func smallLockedMLP(rng *rand.Rand) (*Network, *Flip, *Flip) {
	f1, f2 := NewFlip(6), NewFlip(4)
	net := NewNetwork(
		NewDense(5, 6).InitHe(rng), f1, NewReLU(6),
		NewDense(6, 4).InitHe(rng), f2, NewReLU(4),
		NewDense(4, 3).InitHe(rng),
	)
	return net, f1, f2
}

func TestNetworkSiteRegistration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net, f1, f2 := smallLockedMLP(rng)
	if net.NumFlipSites() != 2 {
		t.Fatalf("NumFlipSites = %d", net.NumFlipSites())
	}
	if f1.SiteID != 0 || f2.SiteID != 1 {
		t.Fatalf("site IDs = %d, %d", f1.SiteID, f2.SiteID)
	}
	if len(net.ReLUs()) != 2 || net.ReLUs()[0].SiteID != 0 || net.ReLUs()[1].SiteID != 1 {
		t.Fatal("ReLU site registration failed")
	}
}

func TestNetworkSiteRegistrationInsideResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := NewFlip(5)
	body := []Layer{NewDense(5, 5).InitHe(rng), f, NewReLU(5)}
	net := NewNetwork(NewResidual(body, nil), NewDense(5, 2).InitHe(rng))
	if net.NumFlipSites() != 1 || f.SiteID != 0 {
		t.Fatal("flip inside residual not registered")
	}
	x := randBatch(rng, 1, 5).Row(0)
	tr := net.ForwardTrace(x)
	if tr.Pre[0] == nil || tr.Patterns[0] == nil {
		t.Fatal("trace not recorded inside residual")
	}
}

func TestNetworkShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(33))
	NewNetwork(NewDense(4, 5).InitHe(rng), NewDense(6, 2).InitHe(rng))
}

func TestForwardTraceRecordsFlipSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	net, f1, _ := smallLockedMLP(rng)
	f1.SetBit(2, true)
	x := randBatch(rng, 1, 5).Row(0)
	tr := net.ForwardTrace(x)
	for i := range tr.Pre[0] {
		want := tr.Pre[0][i]
		if i == 2 {
			want = -want
		}
		if math.Abs(tr.Post[0][i]-want) > 1e-12 {
			t.Fatalf("flip semantics wrong at %d: pre=%v post=%v", i, tr.Pre[0][i], tr.Post[0][i])
		}
	}
	if tr.Out == nil || len(tr.Out) != 3 {
		t.Fatal("trace output missing")
	}
}

func TestFlipInvolutionProperty(t *testing.T) {
	// Applying the same key twice restores the original function.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, f1, f2 := smallLockedMLP(rng)
		x := randBatch(rng, 1, 5).Row(0)
		y0 := net.Forward(x)
		for j := 0; j < f1.N; j++ {
			f1.SetBit(j, rng.Intn(2) == 1)
		}
		for j := 0; j < f2.N; j++ {
			f2.SetBit(j, rng.Intn(2) == 1)
		}
		// Flip every set bit back.
		for j := 0; j < f1.N; j++ {
			if f1.Bit(j) {
				f1.SetBit(j, false)
			}
		}
		for j := 0; j < f2.N; j++ {
			if f2.Bit(j) {
				f2.SetBit(j, false)
			}
		}
		y1 := net.Forward(x)
		return tensor.NormInf(tensor.VecSub(y0, y1)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	net, f1, _ := smallLockedMLP(rng)
	f1.SetBit(1, true)
	xb := randBatch(rng, 4, 5)
	yb := net.ForwardBatch(xb)
	for r := 0; r < 4; r++ {
		y := net.Forward(xb.Row(r))
		for c := range y {
			if math.Abs(y[c]-yb.At(r, c)) > 1e-12 {
				t.Fatalf("batch/single mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestTrainForwardMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	conv := NewConv2D(1, 6, 6, 2, 3, 1, 1).InitHe(rng)
	pool := NewMaxPool2D(2, 6, 6, 2, 2)
	f := NewFlip(conv.OutSize())
	f.SetBit(3, true)
	net := NewNetwork(conv, f, NewReLU(conv.OutSize()), pool, NewDense(pool.OutSize(), 3).InitHe(rng))
	xb := randBatch(rng, 3, conv.InSize())
	a := net.ForwardBatch(xb)
	b := net.TrainForward(xb)
	if !tensor.Equal(a, b, 1e-12) {
		t.Fatal("TrainForward differs from ForwardBatch")
	}
}

func TestCloneForKeysIsolatesFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net, f1, _ := smallLockedMLP(rng)
	clone := net.CloneForKeys()
	x := randBatch(rng, 1, 5).Row(0)
	y0 := net.Forward(x)

	// Mutating the clone's flips must not affect the original.
	clone.Flips()[0].SetBit(0, true)
	y1 := net.Forward(x)
	if tensor.NormInf(tensor.VecSub(y0, y1)) > 0 {
		t.Fatal("clone flip mutation leaked into original")
	}
	// But shared weights mean un-flipped clones agree exactly.
	clone.Flips()[0].SetBit(0, false)
	y2 := clone.Forward(x)
	if tensor.NormInf(tensor.VecSub(y0, y2)) > 0 {
		t.Fatal("clone with identical key differs from original")
	}
	// Flips inside residual bodies are also cloned.
	fr := NewFlip(5)
	res := NewResidual([]Layer{NewDense(5, 5).InitHe(rng), fr, NewReLU(5)}, nil)
	net2 := NewNetwork(res, NewDense(5, 2).InitHe(rng))
	c2 := net2.CloneForKeys()
	c2.Flips()[0].SetBit(1, true)
	if fr.Bit(1) {
		t.Fatal("residual flip mutation leaked")
	}
	_ = f1
}

func TestSoftFlipHardenMatchesSign(t *testing.T) {
	f := NewFlip(4)
	p := f.Soften([]int{1, 3}, true)
	p.W.Data[0] = 1.5  // σ > 0.5 ⇒ K' < 0 ⇒ bit 1
	p.W.Data[1] = -0.2 // σ < 0.5 ⇒ K' > 0 ⇒ bit 0
	conf := f.Harden()
	if !f.Bit(1) || f.Bit(3) {
		t.Fatalf("hardened bits wrong: %v %v", f.Bit(1), f.Bit(3))
	}
	if conf[0] < conf[1] {
		t.Fatal("confidence ordering wrong")
	}
	if f.Params() != nil {
		t.Fatal("params should be gone after Harden")
	}
}

func TestSoftFlipCoeffsAndIndices(t *testing.T) {
	f := NewFlip(3)
	p := f.Soften([]int{0, 2}, true)
	idx := f.SoftIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("SoftIndices = %v", idx)
	}
	// w = 0 ⇒ σ = 0.5 ⇒ K' = 0.
	c := f.SoftCoeffs()
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[1]) > 1e-12 {
		t.Fatalf("SoftCoeffs at init = %v", c)
	}
	// Gated relaxation at w=0 outputs |u|/2.
	x := []float64{1, 2, -3}
	y := f.Forward(x, nil)
	if math.Abs(y[0]-0.5) > 1e-12 || y[1] != 2 || math.Abs(y[2]-1.5) > 1e-12 {
		t.Fatalf("soft forward = %v", y)
	}
	// Extremes recover the two hard branches.
	p.W.Data[0] = 50 // s≈1: ReLU(−u)
	p.W.Data[1] = -50
	y = f.Forward(x, nil)
	if math.Abs(y[0]-0) > 1e-9 || math.Abs(y[2]-0) > 1e-9 {
		t.Fatalf("extreme soft forward = %v", y)
	}
	y = f.Forward([]float64{-1, 0, 3}, nil)
	if math.Abs(y[0]-1) > 1e-9 || math.Abs(y[2]-3) > 1e-9 {
		t.Fatalf("extreme soft forward = %v", y)
	}
}

func TestSoftFlipUngatedLinear(t *testing.T) {
	f := NewFlip(2)
	p := f.Soften([]int{0}, false)
	p.W.Data[0] = 50 // s≈1 ⇒ K'≈−1 ⇒ y ≈ −u
	y := f.Forward([]float64{2, 5}, nil)
	if math.Abs(y[0]+2) > 1e-9 || y[1] != 5 {
		t.Fatalf("ungated soft forward = %v", y)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	net := NewNetwork(NewDense(3, 4).InitHe(rng), NewReLU(4), NewDense(4, 2).InitHe(rng))
	want := 3*4 + 4 + 4*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	net := NewNetwork(NewDense(3, 2).InitHe(rng))
	xb := randBatch(rng, 2, 3)
	net.TrainForward(xb)
	net.TrainBackward(randBatch(rng, 2, 2))
	net.ZeroGrad()
	for _, p := range net.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("gradient not cleared")
			}
		}
	}
}
