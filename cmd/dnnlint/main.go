// Command dnnlint runs the repository's custom static-analysis suite: the
// pool-ownership, determinism, float-comparison, naked-goroutine, and
// package-doc analyzers of internal/lint, which machine-enforce the
// invariants the parallel runtime, the frozen-prefix cache, and the
// documentation pass rely on (DESIGN.md §10).
//
// Usage:
//
//	dnnlint [-analyzers=poolpair,determinism,floatcmp,nakedgo,pkgdoc] [pattern ...]
//
// Patterns are package directories relative to the working directory; a
// trailing /... lints the subtree. With no pattern, ./... is assumed. The
// whole module containing the first pattern is loaded (so cross-package
// types resolve); patterns select which packages' findings are reported.
//
// Exit status: 0 clean, 1 findings reported, 2 load or type-check failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dnnlock/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dnnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzerList := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All
	if *analyzerList != "" {
		var err error
		if analyzers, err = lint.ByName(*analyzerList); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load(strings.TrimSuffix(patterns[0], "..."))
	if err != nil {
		fmt.Fprintln(stderr, "dnnlint:", err)
		return 2
	}
	if len(prog.TypeErrors) > 0 {
		for _, te := range prog.TypeErrors {
			fmt.Fprintln(stderr, "dnnlint: type error:", te)
		}
		return 2
	}

	diags := prog.Run(analyzers)
	selected := diags[:0]
	for _, d := range diags {
		if matchesAny(d.Pos.Filename, patterns) {
			selected = append(selected, d)
		}
	}
	for _, d := range selected {
		fmt.Fprintln(stdout, rel(d))
	}
	if len(selected) > 0 {
		fmt.Fprintf(stderr, "dnnlint: %d finding(s)\n", len(selected))
		return 1
	}
	return 0
}

// matchesAny reports whether the diagnostic file falls under one of the
// requested patterns.
func matchesAny(file string, patterns []string) bool {
	for _, pat := range patterns {
		recursive := strings.HasSuffix(pat, "/...") || pat == "..."
		dir := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if dir == "" || dir == "." {
			return true
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			continue
		}
		fdir := filepath.Dir(file)
		if fdir == abs {
			return true
		}
		if recursive && strings.HasPrefix(fdir+string(filepath.Separator), abs+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// rel renders a diagnostic with a working-directory-relative path when
// possible, keeping CI logs and editor jump-to-error short.
func rel(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
	}
	return d.String()
}
