package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
)

// Run executes the DNN decryption attack (Algorithm 2) against the oracle:
// layer by layer in topological order, it attempts the algebraic
// key_bit_inference on every protected neuron, falls back to the
// learning_attack for ⊥ bits, and gates progression to the next layer on
// key_vector_validation, repairing failures with error_correction. It
// returns the recovered key together with query counts and the Figure 3
// timing breakdown.
//
// The whiteBox argument is the adversary's downloaded model (weights with
// identity flips); it is cloned, never mutated.
//
// Run never panics on oracle failure: transient device errors are retried
// (cfg.QueryRetries) and, if persistent, the affected decision degrades to
// ⊥ and falls through to the learning attack (counted in Result.Degraded);
// terminal errors — oracle.ErrBudgetExhausted, hard device faults — abort
// the run with a returned error.
//
// With cfg.Tracer (or cfg.TraceParent) set, the run is recorded as a span
// tree — attack → site → procedure, with per-probe detail under each
// procedure — whose rollup IS the returned Breakdown; see internal/obs.
//
// With cfg.OnCheckpoint set, the run offers a serializable Checkpoint at
// every site boundary; returning false from the hook suspends the run
// (Run returns ErrSuspended) and Resume continues it bit-identically.
func Run(whiteBox *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config) (*Result, error) {
	if spec.Scheme != hpnn.Negation {
		return RunVariant(whiteBox, spec, orc, cfg)
	}
	a := New(whiteBox, spec, orc, cfg)
	if a.cfg.OnCheckpoint != nil && a.cfg.ProbeCache {
		return nil, errProbeCacheCheckpoint
	}
	return a.runFrom(resumeBase{})
}

// sitePending carries the not-yet-validated bits across deferred sites
// (mid residual block, §3.7).
type sitePending struct {
	bits  []int
	sites []int
}

// runFrom executes the site loop from base (the zero value for a fresh run,
// a restored checkpoint's totals for a resumed one). All Result scalars and
// per-procedure maps report prior + segment, so a resumed run's Result is
// indistinguishable from an uninterrupted one — except Result.Breakdown and
// the exported trace, which cover only the post-resume segment (they anchor
// the new segment's span tree, and `dnnlock trace -check` requires summary
// == rollup exactly).
func (a *Attack) runFrom(base resumeBase) (*Result, error) {
	//lint:ignore determinism telemetry timer for Result.Time; the value never feeds the numerics
	start := time.Now()
	startQ := a.orc.Queries()
	startR := a.orc.Rounds()
	startS := simElapsed(a.orc)
	root := a.startRoot("attack", obs.Int("bits", a.spec.NumBits()))
	defer root.End() // idempotent: the success path ends it with annotations
	src := newCountedSource(a.cfg.Seed)
	src.skip(base.rngDraws)
	rng := rand.New(src)
	bySite := a.spec.SiteBits()

	reports := append([]SiteReport(nil), base.reports...)
	pending := sitePending{bits: base.pendingBits, sites: base.pendingSites}
	sites := a.orderedSites()
	for si := base.sitesDone; si < len(sites); si++ {
		site := sites[si]
		rep, err := a.runSite(site, bySite[site], &pending, rng)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
		if a.cfg.OnCheckpoint != nil {
			//lint:ignore determinism telemetry: checkpointed wall time reported to the operator, not used in computation
			wall := time.Since(start)
			ck := a.snapshot(&base, si+1, reports, &pending, src.draws(),
				a.orc.Queries()-startQ, a.orc.Rounds()-startR,
				wall, simElapsed(a.orc)-startS)
			if !a.cfg.OnCheckpoint(ck) {
				root.End(obs.Bool("suspended", true), obs.Int("sites_done", si+1))
				return nil, ErrSuspended
			}
		}
	}

	fsp := root.Child("final_check")
	eq, eqErr := a.directCompare(fsp, a.white, rng)
	fsp.End(obs.Bool("equivalent", eq))
	res := &Result{
		Key:     a.CurrentKey(),
		Origins: append([]BitOrigin(nil), a.origins...),
		Queries: base.queries + a.orc.Queries() - startQ,
		Rounds:  base.rounds + a.orc.Rounds() - startR,
		//lint:ignore determinism telemetry: elapsed wall time reported to the operator, not used in computation
		Time:          base.wall + time.Since(start),
		SimTime:       base.sim + simElapsed(a.orc) - startS,
		Breakdown:     a.bd,
		QueriesByProc: mergeProcCounts(base.procQueries, a.bd.QueriesByProc()),
		RoundsByProc:  mergeProcCounts(base.procRounds, a.bd.RoundsByProc()),
		SimByProc:     mergeProcDurations(base.procSimNS, a.bd.SimByProc()),
		Sites:         reports,
		Equivalent:    eq,
		Degraded:      int(a.degraded.Load()),
		BisectRounds:  a.crit.rounds.Load(),
		BisectProbes:  a.crit.probes.Load(),
	}
	root.End(obs.Int64("queries", res.Queries), obs.Int64("rounds", res.Rounds),
		obs.Int("degraded", res.Degraded), obs.Bool("equivalent", res.Equivalent))
	if eqErr != nil {
		return res, fmt.Errorf("core: final equivalence check: %w", eqErr)
	}
	if !res.Equivalent {
		return res, fmt.Errorf("core: recovered key is not functionally equivalent to the oracle")
	}
	return res, nil
}

// runSite attacks the protected bits of one flip site: algebraic inference,
// learning fallback, then the validation / correction loop over the pending
// group (Algorithm 2 lines 4–10). The site span always ends — the success
// paths end it explicitly with annotations, and the deferred End (a no-op
// after an explicit one) covers the error returns, so an aborted run still
// exports the partial site record instead of truncating the trace.
func (a *Attack) runSite(site int, bits []int, pending *sitePending, rng *rand.Rand) (SiteReport, error) {
	rep := SiteReport{Site: site, Bits: len(bits)}
	ssp := a.root.Child("site", obs.Int("site", site), obs.Int("bits", len(bits)))
	defer ssp.End()

	// Phase 1: algebraic inference (Algorithm 1) on every bit, in
	// parallel across neurons (§4.1).
	inferred := make([]bitValue, len(bits))
	if a.cfg.DisableAlgebraic {
		for i := range inferred {
			inferred[i] = bitBottom
		}
	} else {
		var inferErr error
		a.trackProc(ssp, metrics.ProcKeyBitInference, func() {
			inferErr = a.parallelForErr(len(bits), rng.Int63(), func(i int, wrng *rand.Rand) error {
				var err error
				inferred[i], err = a.keyBitInference(bits[i], wrng)
				return err
			})
		})
		if inferErr != nil {
			return rep, fmt.Errorf("core: site %d key_bit_inference: %w", site, inferErr)
		}
	}
	var unresolved []int
	for i, v := range inferred {
		switch v {
		case bitZero, bitOne:
			a.setBit(bits[i], v == bitOne, 1, OriginAlgebraic)
			rep.Algebraic++
		default:
			unresolved = append(unresolved, bits[i])
		}
	}
	a.log.Debug("site inferred", "site", site, "bits", len(bits),
		"algebraic", rep.Algebraic, "unresolved", len(unresolved))

	// Phase 2: learning attack on the ⊥ bits (§3.6).
	if len(unresolved) > 0 {
		var learnErr error
		a.trackProc(ssp, metrics.ProcLearningAttack, func() {
			_, learnErr = a.learningAttack(site, unresolved, rng)
		})
		if learnErr != nil {
			return rep, fmt.Errorf("core: site %d learning_attack: %w", site, learnErr)
		}
		rep.Learned = len(unresolved)
	}

	pending.bits = append(pending.bits, bits...)
	pending.sites = append(pending.sites, site)

	// Phase 3: validate the pending group, correcting errors until it
	// passes (Algorithm 2 lines 9–10). When the topology offers no
	// admissible probe yet (mid residual block), defer to the next
	// site and validate the block as one unit.
	if _, mode := a.validationProbe(pending.sites); mode == modeDefer {
		ssp.End(obs.Bool("deferred", true))
		return rep, nil
	}
	learnQueries := a.cfg.LearnQueries
	valid := false
	for round := 0; round <= a.cfg.MaxCorrectionRounds; round++ {
		var valErr error
		a.trackProc(ssp, metrics.ProcKeyVectorValidation, func() {
			rep.ValidationRuns++
			valid, valErr = a.keyVectorValidation(a.white, pending.sites, rng)
		})
		if valErr != nil {
			return rep, fmt.Errorf("core: site %d key_vector_validation: %w", site, valErr)
		}
		if valid {
			break
		}
		fixed := false
		var corrErr error
		a.trackProc(ssp, metrics.ProcErrorCorrection, func() {
			fixed, corrErr = a.errorCorrection(pending.sites, a.decidedBits(), rng)
		})
		if corrErr != nil {
			return rep, fmt.Errorf("core: site %d error_correction: %w", site, corrErr)
		}
		if fixed {
			// The committed candidate already passed validation inside
			// errorCorrection.
			rep.Corrected++
			valid = true
			break
		}
		// Correction exhausted its Hamming budget: re-run the learning
		// attack with a doubled query budget on the least certain bits
		// before trying again.
		if round == a.cfg.MaxCorrectionRounds {
			return rep, fmt.Errorf("core: site %d failed validation after %d correction rounds", site, round+1)
		}
		learnQueries *= 2
		relearn := lowConfidenceBits(a, pending.bits)
		if len(relearn) == 0 {
			relearn = unresolved
		}
		if len(relearn) > 0 {
			a.log.Info("validation failed: relearning", "site", site,
				"round", round, "bits", len(relearn), "learn_queries", learnQueries)
			var relearnErr error
			a.trackProc(ssp, metrics.ProcLearningAttack, func() {
				saved := a.cfg.LearnQueries
				a.cfg.LearnQueries = learnQueries
				relearnErr = a.relearnBySite(relearn, rng)
				a.cfg.LearnQueries = saved
			})
			if relearnErr != nil {
				return rep, fmt.Errorf("core: site %d relearn: %w", site, relearnErr)
			}
		}
	}
	if !valid {
		return rep, fmt.Errorf("core: site %d failed validation", site)
	}
	pending.bits = pending.bits[:0]
	pending.sites = pending.sites[:0]
	ssp.End(obs.Int("algebraic", rep.Algebraic), obs.Int("learned", rep.Learned),
		obs.Int("corrected", rep.Corrected))
	return rep, nil
}

// lowConfidenceBits returns the bits whose confidence is below the
// settling threshold, the natural relearning targets.
func lowConfidenceBits(a *Attack, bits []int) []int {
	var out []int
	for _, b := range bits {
		if a.confidence[b] < a.cfg.ConfidenceThreshold {
			out = append(out, b)
		}
	}
	return out
}

// relearnBySite reruns the learning attack for the given bits, one site at
// a time (learningAttack softens a single flip layer per call).
func (a *Attack) relearnBySite(bits []int, rng *rand.Rand) error {
	bySite := make(map[int][]int)
	sites := make([]int, 0, len(bySite))
	for _, b := range bits {
		s := a.spec.Neurons[b].Site
		if _, seen := bySite[s]; !seen {
			sites = append(sites, s)
		}
		bySite[s] = append(bySite[s], b)
	}
	// Each learning attack advances the shared rng and mutates the network,
	// so the site order must be reproducible across runs.
	sort.Ints(sites)
	for _, site := range sites {
		if _, err := a.learningAttack(site, bySite[site], rng); err != nil {
			return err
		}
	}
	return nil
}
