package harness

// The farm sweep prices the §2.3 oracle channel: it reruns the decryption
// attack against a simulated device fleet (internal/farm) across a grid of
// RTT × bandwidth × loss × fleet mix and reports the predicted attack
// wall-clock on that channel — the virtual-clock horizon — next to the CPU
// seconds the attack itself consumed. The degradations inside the built-in
// mixes stay within the regime the robustness sweep (§11) absorbs at full
// fidelity, so a fidelity below 1.0 here flags a channel problem (loss
// defeating the retry budget), not a fault-tolerance gap.

import (
	"fmt"
	"io"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/farm"
	"dnnlock/internal/oracle"
)

// FarmSweep is the grid of channel conditions a farm run covers. Every
// combination of RTT × bandwidth × loss × mix becomes one row.
type FarmSweep struct {
	// Devices is the simulated fleet size per sweep point.
	Devices int
	// RTTs are the base round-trip times to sweep.
	RTTs []time.Duration
	// Bandwidths are the serialization rates to sweep, in bytes/second;
	// a non-positive entry means unconstrained.
	Bandwidths []float64
	// Losses are the per-round channel loss probabilities to sweep.
	Losses []float64
	// MixNames select fleet compositions from farm.Mixes().
	MixNames []string
}

// DefaultFarmSweep is the grid `dnnlock farm` runs when no flags narrow it:
// LAN-to-WAN RTTs, an unconstrained and a constrained link, a lossless and
// a lossy channel, over the clean and mixed fleets.
func DefaultFarmSweep() FarmSweep {
	return FarmSweep{
		Devices: 1000,
		RTTs:    []time.Duration{time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond},
		Bandwidths: []float64{
			0,       // unconstrained
			1.25e6,  // 10 Mbit/s
			1.25e05, // 1 Mbit/s
		},
		Losses:   []float64{0, 0.01},
		MixNames: []string{"clean", "mixed"},
	}
}

// FarmRow is one sweep point: the channel condition and the attack's
// predicted cost over it.
type FarmRow struct {
	Model   string
	KeyBits int
	Mix     string
	Devices int
	RTT     time.Duration
	// Bandwidth is the swept base serialization rate in bytes/second
	// (0 = unconstrained).
	Bandwidth float64
	Loss      float64
	Fidelity  float64
	Queries   int64
	// Rounds counts every dispatched round-trip, including channel-lost
	// ones; Lost is the lost subset.
	Rounds int64
	Lost   int64
	// Degraded counts attack decisions that fell through to the learning
	// fallback because faults defeated the algebraic probes.
	Degraded int
	// SimSeconds is the predicted attack wall-clock on the simulated
	// channel — the farm's virtual-clock horizon after the attack.
	SimSeconds float64
	// CPUSeconds is the real compute time of the attack itself.
	CPUSeconds float64
	Err        error
}

// RunFarm sweeps the decryption attack across the channel grid for one
// (model, keyBits) cell: the model is trained once, then each sweep point
// gets a freshly provisioned base oracle behind a freshly built fleet and
// transport, so counters and virtual clocks are independent. Rows stream to
// w as they complete.
func RunFarm(sc Scale, model string, keyBits int, sw FarmSweep, w io.Writer) ([]FarmRow, error) {
	if sw.Devices <= 0 {
		sw.Devices = 1000
	}
	var mixes []farm.Mix
	for _, name := range sw.MixNames {
		m, err := farm.MixByName(name)
		if err != nil {
			return nil, err
		}
		mixes = append(mixes, m)
	}
	if len(mixes) == 0 {
		mixes = []farm.Mix{{Name: "clean", Classes: []farm.Class{{Name: "clean", Weight: 1}}}}
	}
	if len(sw.RTTs) == 0 {
		sw.RTTs = []time.Duration{20 * time.Millisecond}
	}
	if len(sw.Bandwidths) == 0 {
		sw.Bandwidths = []float64{0}
	}
	if len(sw.Losses) == 0 {
		sw.Losses = []float64{0}
	}
	p, err := prepare(model, keyBits, sc, w)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintln(w, FarmHeader())
	}
	var rows []FarmRow
	for _, mix := range mixes {
		for _, rtt := range sw.RTTs {
			for _, bw := range sw.Bandwidths {
				for _, loss := range sw.Losses {
					ch := farm.Channel{RTT: rtt, Bandwidth: bw, Loss: loss}
					rows = append(rows, p.runFarmCell(mix, sw.Devices, ch, w))
				}
			}
		}
	}
	return rows, nil
}

// runFarmCell runs the decryption attack once over a simulated fleet under
// one channel condition.
func (p *pipeline) runFarmCell(mix farm.Mix, devices int, ch farm.Channel, w io.Writer) FarmRow {
	row := FarmRow{
		Model:     p.model,
		KeyBits:   p.bits,
		Mix:       mix.Name,
		Devices:   devices,
		RTT:       ch.RTT,
		Bandwidth: ch.Bandwidth,
		Loss:      ch.Loss,
	}
	base := oracle.New(p.lm, p.key)
	fleet := farm.BuildFleet(base, mix, devices, ch, p.sc.Seed+5)
	tr := farm.NewTransport(base, fleet, farm.Config{
		Seed: p.sc.Seed + 5,
		// One float64 per element each way; Classes outputs per query row.
		RowBytesIn:  8 * p.test.InputSize(),
		RowBytesOut: 8 * p.test.Classes,
	})
	cfg := p.sc.AttackCfg
	cfg.Seed = p.sc.Seed + 2 // same seed as the Table 1 decryption cell
	// Declare the worst degradation any device in the mix applies, exactly
	// as the robustness sweep declares its per-cell fault (DESIGN.md §11).
	if step := mix.MaxQuantStep(); step > 0 {
		cfg.QuantStep = step
	}
	if sigma := mix.MaxSigma(); sigma > 0 {
		cfg.NoiseSigma = sigma
		cfg.ProbeVotes = 3
	}
	start := time.Now()
	res, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, tr, cfg)
	row.CPUSeconds = time.Since(start).Seconds()
	row.SimSeconds = tr.SimElapsed().Seconds()
	row.Lost = tr.Lost()
	row.Err = err
	if res != nil {
		row.Fidelity = res.Key.Fidelity(p.key)
		row.Queries = res.Queries
		row.Rounds = res.Rounds
		row.Degraded = res.Degraded
	}
	if w != nil {
		fmt.Fprintf(w, "%s\n", FormatFarmRow(row))
	}
	return row
}

// mbps renders a bytes/second bandwidth in megabits/second for reporting;
// 0 stays 0 (unconstrained).
func mbps(bw float64) float64 {
	if bw <= 0 {
		return 0
	}
	return bw * 8 / 1e6
}

// FarmHeader renders the farm table's column header.
func FarmHeader() string {
	return fmt.Sprintf("%-13s %5s | %-7s %6s %8s %7s %6s | %8s %9s %9s %6s %5s | %10s %9s",
		"DNN", "key", "mix", "dev", "rtt", "mbps", "loss",
		"fid", "query", "round", "lost", "degr", "sim", "cpu")
}

// FormatFarmRow renders one farm sweep row.
func FormatFarmRow(r FarmRow) string {
	s := fmt.Sprintf("%-13s %5d | %-7s %6d %8s %7.2f %6.3f | %7.1f%% %9d %9d %6d %5d | %9.2fs %8.2fs",
		r.Model, r.KeyBits, r.Mix, r.Devices, r.RTT, mbps(r.Bandwidth), r.Loss,
		100*r.Fidelity, r.Queries, r.Rounds, r.Lost, r.Degraded,
		r.SimSeconds, r.CPUSeconds)
	if r.Err != nil {
		s += "  !! " + r.Err.Error()
	}
	return s
}

// WriteFarmCSV emits the sweep as CSV for downstream plotting.
func WriteFarmCSV(rows []FarmRow, w io.Writer) {
	fmt.Fprintln(w, "model,key_bits,mix,devices,rtt_ms,bandwidth_mbps,loss,fid,queries,rounds,lost,degraded,sim_s,cpu_s,error")
	for _, r := range rows {
		errs := ""
		if r.Err != nil {
			errs = r.Err.Error()
		}
		fmt.Fprintf(w, "%s,%d,%s,%d,%g,%g,%g,%.4f,%d,%d,%d,%d,%.3f,%.2f,%q\n",
			r.Model, r.KeyBits, r.Mix, r.Devices,
			float64(r.RTT)/1e6, mbps(r.Bandwidth), r.Loss,
			r.Fidelity, r.Queries, r.Rounds, r.Lost, r.Degraded,
			r.SimSeconds, r.CPUSeconds, errs)
	}
}
