package oracle

import "dnnlock/internal/tensor"

// Counter receives query-count increments from a Traced oracle. It is the
// narrow waist between this package and the tracing layer: *obs.Span
// satisfies it, so a trace span can count the queries flowing through any
// oracle decorator stack without oracle importing obs. Implementations
// must be safe for concurrent use (QueryBatch shards rows across
// goroutines behind a single bulk count, but distinct queries may arrive
// from concurrent attack workers).
type Counter interface {
	AddQueries(n int64)
	// AddRounds receives one increment per oracle round-trip (one Query
	// or QueryBatch call), the companion metric to AddQueries.
	AddRounds(n int64)
}

// Traced decorates an Interface so every query is mirrored onto a Counter
// as it happens, in addition to the inner oracle's own cumulative counter.
// The decorator is observation-only: inputs, outputs, and errors pass
// through untouched, and failed queries still count — the device was
// exercised even when it returned an error, which is the accounting the
// fault-path experiments need.
type Traced struct {
	inner Interface
	c     Counter
}

var _ Interface = (*Traced)(nil)

// Trace wraps inner so queries are mirrored onto c. A nil counter returns
// inner unchanged: the undecorated fast path stays free.
func Trace(inner Interface, c Counter) Interface {
	if c == nil {
		return inner
	}
	return &Traced{inner: inner, c: c}
}

// Query counts one query and one round on the attached Counter and
// delegates.
func (t *Traced) Query(x []float64) ([]float64, error) {
	t.c.AddQueries(1)
	t.c.AddRounds(1)
	return t.inner.Query(x)
}

// QueryBatch bulk-counts one query per input row plus one round and
// delegates.
func (t *Traced) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	t.c.AddQueries(int64(x.Rows))
	t.c.AddRounds(1)
	return t.inner.QueryBatch(x)
}

// Queries reports the inner oracle's cumulative count; the decorator adds
// no second source of truth.
func (t *Traced) Queries() int64 { return t.inner.Queries() }

// Rounds reports the inner oracle's cumulative round-trip count.
func (t *Traced) Rounds() int64 { return t.inner.Rounds() }

// ResetCounter resets the inner oracle's counter. The attached Counter is
// not reset: a span accumulates for its own lifetime.
func (t *Traced) ResetCounter() { t.inner.ResetCounter() }

// Softmax reports the inner oracle's output mode.
func (t *Traced) Softmax() bool { return t.inner.Softmax() }
