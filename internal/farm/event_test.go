package farm

import (
	"testing"
	"time"
)

// TestEventQueueOrdering: events fire in timestamp order regardless of
// schedule order, FIFO among equal timestamps.
func TestEventQueueOrdering(t *testing.T) {
	var s sim
	var got []int
	s.schedule(30, func(Time) { got = append(got, 3) })
	s.schedule(10, func(Time) { got = append(got, 1) })
	s.schedule(20, func(Time) { got = append(got, 20) })
	s.schedule(20, func(Time) { got = append(got, 21) }) // same instant, later schedule
	s.schedule(5, func(Time) { got = append(got, 0) })
	for s.step() {
	}
	want := []int{0, 1, 20, 21, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if s.fired != 30 {
		t.Fatalf("high-water = %d, want 30", s.fired)
	}
}

// TestEventChainPropagation: a handler scheduling follow-up events is the
// round-trip idiom; runUntil pumps through the chain.
func TestEventChainPropagation(t *testing.T) {
	var s sim
	done := false
	var doneAt Time
	s.schedule(10, func(now Time) {
		s.schedule(now+5, func(now Time) {
			s.schedule(now+7, func(now Time) {
				done = true
				doneAt = now
			})
		})
	})
	s.runUntil(func() bool { return done })
	if doneAt != 22 {
		t.Fatalf("chain completed at %d, want 22", doneAt)
	}
}

// TestDeviceWindowBacklog: a window-1 device serializes arrivals; a
// window-2 device runs two at once.
func TestDeviceWindowBacklog(t *testing.T) {
	d1 := &Device{freeAt: make([]Time, 1)}
	if start := d1.takeSlot(0, 10); start != 0 {
		t.Fatalf("first request start = %d, want 0", start)
	}
	if start := d1.takeSlot(2, 10); start != 10 {
		t.Fatalf("backed-up request start = %d, want 10 (window 1)", start)
	}
	d2 := &Device{freeAt: make([]Time, 2)}
	d2.takeSlot(0, 10)
	if start := d2.takeSlot(2, 10); start != 2 {
		t.Fatalf("parallel request start = %d, want 2 (window 2)", start)
	}
	if start := d2.takeSlot(3, 10); start != 10 {
		t.Fatalf("third request start = %d, want 10 (both slots busy)", start)
	}
}

// TestBuildFleetDeterministicHeterogeneous: same (mix, channel, seed) →
// identical fleet; devices within it genuinely differ.
func TestBuildFleetDeterministicHeterogeneous(t *testing.T) {
	st := &stubOracle{out: []float64{1, 0}}
	mix, err := MixByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	ch := Channel{RTT: 20 * time.Millisecond, Bandwidth: 1e6}
	a := BuildFleet(st, mix, 1000, ch, 7)
	b := BuildFleet(st, mix, 1000, ch, 7)
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("fleet sizes %d/%d, want 1000", len(a), len(b))
	}
	distinctRTT := map[time.Duration]bool{}
	classes := map[string]int{}
	for i := range a {
		if a[i].Profile != b[i].Profile {
			t.Fatalf("device %d differs across identical builds", i)
		}
		distinctRTT[a[i].Profile.RTT] = true
		classes[a[i].Profile.Class]++
	}
	if len(distinctRTT) < 100 {
		t.Fatalf("only %d distinct RTTs across 1000 devices; heterogeneity too coarse", len(distinctRTT))
	}
	if len(classes) != 4 {
		t.Fatalf("mixed fleet has classes %v, want 4 classes", classes)
	}
	// Proportional striping: the 50%-weight class covers half the fleet.
	if n := classes["clean"]; n < 480 || n > 520 {
		t.Fatalf("clean class has %d devices, want ~500", n)
	}
}
