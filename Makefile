GO ?= go

.PHONY: build test race bench bench-compare vet check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: static checks + race-detector pass over the concurrent internals
race:
	sh scripts/check.sh

## bench: Table 1 / Figure 3 + kernel micro-benches, emits BENCH_<date>.json
bench:
	sh scripts/bench.sh

## bench-compare: diff the newest BENCH_*.json against the committed baseline
bench-compare:
	sh scripts/bench_compare.sh

clean:
	$(GO) clean -testcache
	rm -f *.prof *.test cpu.out mem.out
