package nn

import (
	"math"

	"dnnlock/internal/tensor"
)

// Engine32 is the float32 shadow of a Slice's trainable suffix — the raw-
// speed tier of the §3.6 learning attack (DESIGN.md §13). It exists because
// the fit trains *only* the soft flip coefficients: every suffix weight is
// frozen, its gradients were discarded by ZeroGrad anyway, and nothing in
// the loop needs bit-identity to the paper's float64 reference. The engine
// therefore:
//
//   - copies the frozen suffix weights to float32 once at construction,
//   - runs forward and the dX backward chain entirely in float32,
//   - skips frozen-weight gradient accumulation outright (no dW/dB work),
//   - allocates every workspace and activation cache from one Arena32,
//     sized by the first minibatch and resliced thereafter, so the epoch
//     loop performs zero heap allocations,
//   - keeps the trainable soft coefficients as float64 masters: the live
//     Flip's raw weights are read (through sigmoid, then demoted) on each
//     forward, and the float32 backward accumulates their gradients in
//     float64 straight into the Flip's float64 Param — so the Adam step,
//     the confidence stop rule, and Harden all run on exactly the same
//     code path as the exact tier.
//
// What may drift relative to float64 is only the *trajectory* of the fit
// (losses, epochs-to-plateau, coefficient magnitudes); what is recovered —
// the hardened key bits — must agree, and the precision-parity property
// test in core enforces that on every fuzzed architecture.
type Engine32 struct {
	ar     *tensor.Arena32
	layers []layer32
}

// layer32 is one float32 shadow layer: forward with caching, backward
// returning dX only (frozen weights accumulate no gradient; soft flips
// accumulate into their float64 masters).
type layer32 interface {
	forward(x *tensor.Mat[float32]) *tensor.Mat[float32]
	backward(dy *tensor.Mat[float32]) *tensor.Mat[float32]
}

// NewEngine32 builds the float32 shadow of the slice's suffix, copying
// frozen weights once. It reports ok=false when a suffix layer has no
// float32 shadow, in which case the caller must fall back to the exact
// float64 path (the arena is left untouched and still owned by the caller).
func NewEngine32(sl *Slice, ar *tensor.Arena32) (*Engine32, bool) {
	layers, ok := buildLayers32(ar, sl.net.Layers[sl.cut:])
	if !ok {
		return nil, false
	}
	return &Engine32{ar: ar, layers: layers}, true
}

// Forward runs the float32 suffix over a minibatch of boundary activations.
// The returned matrix is an engine-owned workspace, valid until the next
// Forward.
func (e *Engine32) Forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	for _, l := range e.layers {
		x = l.forward(x)
	}
	return x
}

// Backward propagates the output gradient down the suffix. Soft flip
// gradients land in their float64 Params; everything else only shapes dX.
func (e *Engine32) Backward(dy *tensor.Mat[float32]) {
	for i := len(e.layers) - 1; i >= 0; i-- {
		dy = e.layers[i].backward(dy)
	}
}

func buildLayers32(ar *tensor.Arena32, layers []Layer) ([]layer32, bool) {
	out := make([]layer32, 0, len(layers))
	for _, l := range layers {
		s, ok := buildLayer32(ar, l)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

func buildLayer32(ar *tensor.Arena32, l Layer) (layer32, bool) {
	switch v := l.(type) {
	case *Dense:
		return newDense32(ar, v), true
	case *TokenDense:
		return &tokenDense32{ar: ar, td: v, d: newDense32(ar, v.D)}, true
	case *Conv2D:
		return newConv32(ar, v), true
	case *AvgPool2D:
		return &avgPool32{ar: ar, p: v}, true
	case *MaxPool2D:
		return &maxPool32{ar: ar, p: v}, true
	case *GlobalAvgPool:
		return &globalAvgPool32{ar: ar, p: v}, true
	case *MeanTokens:
		return &meanTokens32{ar: ar, p: v}, true
	case *ReLU:
		return &relu32{ar: ar}, true
	case *Flatten:
		return &flatten32{}, true
	case *Flip:
		return newFlip32(ar, v), true
	case *Residual:
		body, ok := buildLayers32(ar, v.Body)
		if !ok {
			return nil, false
		}
		shortcut, ok := buildLayers32(ar, v.Shortcut)
		if !ok {
			return nil, false
		}
		return &residual32{ar: ar, body: body, shortcut: shortcut, out: v.OutSize(), in: v.InSize()}, true
	case *AttentionReLU:
		return newAttn32(ar, v), true
	case *PatchEmbed:
		return newPatchEmbed32(ar, v), true
	default:
		return nil, false
	}
}

// ensure32 returns *cur resliced to rows×cols, arena-allocating it on first
// use (or if a larger batch arrives, which only happens on the first, full-
// size minibatch). This is how the engine reaches zero allocations per
// batch: one buffer per layer per direction, carved once, resliced forever.
func ensure32(ar *tensor.Arena32, cur **tensor.Mat[float32], rows, cols int) *tensor.Mat[float32] {
	m := *cur
	if m == nil || cap(m.Data) < rows*cols {
		m = ar.Mat(rows, cols)
		*cur = m
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

func demote32(ar *tensor.Arena32, src *tensor.Matrix) *tensor.Mat[float32] {
	dst := ar.Mat(src.Rows, src.Cols)
	tensor.ConvertInto(dst, src)
	return dst
}

func demoteVec32(ar *tensor.Arena32, src []float64) []float32 {
	dst := ar.Vec(len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// dense32 — y = X·Wᵀ + b forward; backward is dX = dY·W only (W, b frozen).
type dense32 struct {
	ar    *tensor.Arena32
	w     *tensor.Mat[float32] // out×in
	b     []float32
	y, dx *tensor.Mat[float32]
}

func newDense32(ar *tensor.Arena32, d *Dense) *dense32 {
	return &dense32{ar: ar, w: demote32(ar, d.W.W), b: demoteVec32(ar, d.B.W.Row(0))}
}

func (d *dense32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	y := ensure32(d.ar, &d.y, x.Rows, d.w.Rows)
	tensor.MatMulABTInto(y, x, d.w)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for o, bv := range d.b {
			row[o] += bv
		}
	}
	return y
}

func (d *dense32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	dx := ensure32(d.ar, &d.dx, dy.Rows, d.w.Cols)
	tensor.MatMulInto(dx, dy, d.w)
	return dx
}

// tokenDense32 reshapes rows into token batches around a shared dense32.
type tokenDense32 struct {
	ar          *tensor.Arena32
	td          *TokenDense
	d           *dense32
	tokens, dtk *tensor.Mat[float32]
	y, dx       *tensor.Mat[float32]
}

func (t *tokenDense32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	T, in, out := t.td.T, t.td.D.In, t.td.D.Out
	tok := ensure32(t.ar, &t.tokens, x.Rows*T, in)
	for i := 0; i < x.Rows; i++ {
		xr := x.Row(i)
		for k := 0; k < T; k++ {
			copy(tok.Row(i*T+k), xr[k*in:(k+1)*in])
		}
	}
	yt := t.d.forward(tok)
	y := ensure32(t.ar, &t.y, x.Rows, T*out)
	for i := 0; i < x.Rows; i++ {
		yr := y.Row(i)
		for k := 0; k < T; k++ {
			copy(yr[k*out:(k+1)*out], yt.Row(i*T+k))
		}
	}
	return y
}

func (t *tokenDense32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	T, in, out := t.td.T, t.td.D.In, t.td.D.Out
	dtk := ensure32(t.ar, &t.dtk, dy.Rows*T, out)
	for i := 0; i < dy.Rows; i++ {
		dr := dy.Row(i)
		for k := 0; k < T; k++ {
			copy(dtk.Row(i*T+k), dr[k*out:(k+1)*out])
		}
	}
	dxt := t.d.backward(dtk)
	dx := ensure32(t.ar, &t.dx, dy.Rows, T*in)
	for i := 0; i < dy.Rows; i++ {
		dr := dx.Row(i)
		for k := 0; k < T; k++ {
			copy(dr[k*in:(k+1)*in], dxt.Row(i*T+k))
		}
	}
	return dx
}

// conv32 — im2col dot-product forward; backward scatters dX = g·W only,
// which needs no patch gather at all once dW is dropped.
type conv32 struct {
	ar    *tensor.Arena32
	c     *Conv2D
	w     *tensor.Mat[float32]
	b     []float32
	y, dx *tensor.Mat[float32]
}

func newConv32(ar *tensor.Arena32, c *Conv2D) *conv32 {
	return &conv32{
		ar: ar, c: c,
		w: demote32(ar, c.W.W), b: demoteVec32(ar, c.B.W.Row(0)),
	}
}

func (cv *conv32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	c := cv.c
	y := ensure32(cv.ar, &cv.y, x.Rows, c.OutSize())
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		if c.Pad == 0 {
			// Every window is in-bounds, so the row runs filter-major like
			// Conv2D.forwardIntoNoPad: filter rows sliced once per block,
			// planes written sequentially. Accumulation order per output
			// element is unchanged.
			cv.forwardRowNoPad(xr, yr)
			continue
		}
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy*c.Stride - c.Pad
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox*c.Stride - c.Pad
				if iy0 >= 0 && ix0 >= 0 && iy0+c.KH <= c.InH && ix0+c.KW <= c.InW {
					// Interior window: fused dot straight over the input rows,
					// mirroring the float64 fast path in Conv2D.forwardInto.
					// Filters go four at a time so each input window load
					// feeds four accumulators; every accumulator still sums
					// its own products in (channel, ky, kx) order, so each
					// output matches the one-filter-at-a-time result exactly.
					base := oy*c.OutW + ox
					f := 0
					for ; f+4 <= c.OutC; f += 4 {
						w0 := cv.w.Row(f)
						w1 := cv.w.Row(f + 1)
						w2 := cv.w.Row(f + 2)
						w3 := cv.w.Row(f + 3)
						var s0, s1, s2, s3 float32
						idx := 0
						for ch := 0; ch < c.InC; ch++ {
							rowBase := ch*chStride + iy0*c.InW + ix0
							if c.KW == 3 {
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+3]
									a0 := w0[idx : idx+3]
									a1 := w1[idx : idx+3]
									a2 := w2[idx : idx+3]
									a3 := w3[idx : idx+3]
									s0 += xw[0] * a0[0]
									s0 += xw[1] * a0[1]
									s0 += xw[2] * a0[2]
									s1 += xw[0] * a1[0]
									s1 += xw[1] * a1[1]
									s1 += xw[2] * a1[2]
									s2 += xw[0] * a2[0]
									s2 += xw[1] * a2[1]
									s2 += xw[2] * a2[2]
									s3 += xw[0] * a3[0]
									s3 += xw[1] * a3[1]
									s3 += xw[2] * a3[2]
									idx += 3
									rowBase += c.InW
								}
								continue
							}
							if c.KW == 5 {
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+5]
									a0 := w0[idx : idx+5]
									a1 := w1[idx : idx+5]
									a2 := w2[idx : idx+5]
									a3 := w3[idx : idx+5]
									s0 += xw[0] * a0[0]
									s0 += xw[1] * a0[1]
									s0 += xw[2] * a0[2]
									s0 += xw[3] * a0[3]
									s0 += xw[4] * a0[4]
									s1 += xw[0] * a1[0]
									s1 += xw[1] * a1[1]
									s1 += xw[2] * a1[2]
									s1 += xw[3] * a1[3]
									s1 += xw[4] * a1[4]
									s2 += xw[0] * a2[0]
									s2 += xw[1] * a2[1]
									s2 += xw[2] * a2[2]
									s2 += xw[3] * a2[3]
									s2 += xw[4] * a2[4]
									s3 += xw[0] * a3[0]
									s3 += xw[1] * a3[1]
									s3 += xw[2] * a3[2]
									s3 += xw[3] * a3[3]
									s3 += xw[4] * a3[4]
									idx += 5
									rowBase += c.InW
								}
								continue
							}
							for ky := 0; ky < c.KH; ky++ {
								xw := xr[rowBase : rowBase+c.KW]
								a0 := w0[idx : idx+c.KW]
								a1 := w1[idx : idx+c.KW]
								a2 := w2[idx : idx+c.KW]
								a3 := w3[idx : idx+c.KW]
								for kx, xv := range xw {
									s0 += xv * a0[kx]
									s1 += xv * a1[kx]
									s2 += xv * a2[kx]
									s3 += xv * a3[kx]
								}
								idx += c.KW
								rowBase += c.InW
							}
						}
						yr[f*plane+base] = s0 + cv.b[f]
						yr[(f+1)*plane+base] = s1 + cv.b[f+1]
						yr[(f+2)*plane+base] = s2 + cv.b[f+2]
						yr[(f+3)*plane+base] = s3 + cv.b[f+3]
					}
					for ; f < c.OutC; f++ {
						wr := cv.w.Row(f)
						var s float32
						idx := 0
						for ch := 0; ch < c.InC; ch++ {
							rowBase := ch*chStride + iy0*c.InW + ix0
							switch c.KW {
							case 3:
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+3]
									ww := wr[idx : idx+3]
									s += xw[0] * ww[0]
									s += xw[1] * ww[1]
									s += xw[2] * ww[2]
									idx += 3
									rowBase += c.InW
								}
							case 5:
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+5]
									ww := wr[idx : idx+5]
									s += xw[0] * ww[0]
									s += xw[1] * ww[1]
									s += xw[2] * ww[2]
									s += xw[3] * ww[3]
									s += xw[4] * ww[4]
									idx += 5
									rowBase += c.InW
								}
							default:
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+c.KW]
									ww := wr[idx : idx+c.KW]
									for kx, xv := range xw {
										s += xv * ww[kx]
									}
									idx += c.KW
									rowBase += c.InW
								}
							}
						}
						yr[f*plane+oy*c.OutW+ox] = s + cv.b[f]
					}
					continue
				}
				// Border window: clipped fused dot over the in-bounds taps.
				// Padding taps contribute exact-zero products, which never
				// move a finite accumulator, so skipping them matches the
				// gather-then-Dot result.
				kyLo, kyHi := clipRange(iy0, c.KH, c.InH)
				kxLo, kxHi := clipRange(ix0, c.KW, c.InW)
				base := oy*c.OutW + ox
				f := 0
				for ; f+4 <= c.OutC; f += 4 {
					w0 := cv.w.Row(f)
					w1 := cv.w.Row(f + 1)
					w2 := cv.w.Row(f + 2)
					w3 := cv.w.Row(f + 3)
					var s0, s1, s2, s3 float32
					for ch := 0; ch < c.InC; ch++ {
						chBase := ch * chStride
						wBase := ch * c.KH * c.KW
						for ky := kyLo; ky < kyHi; ky++ {
							rowX := chBase + (iy0+ky)*c.InW + ix0
							wRow := wBase + ky*c.KW
							for kx := kxLo; kx < kxHi; kx++ {
								xv := xr[rowX+kx]
								s0 += xv * w0[wRow+kx]
								s1 += xv * w1[wRow+kx]
								s2 += xv * w2[wRow+kx]
								s3 += xv * w3[wRow+kx]
							}
						}
					}
					yr[f*plane+base] = s0 + cv.b[f]
					yr[(f+1)*plane+base] = s1 + cv.b[f+1]
					yr[(f+2)*plane+base] = s2 + cv.b[f+2]
					yr[(f+3)*plane+base] = s3 + cv.b[f+3]
				}
				for ; f < c.OutC; f++ {
					wr := cv.w.Row(f)
					var s float32
					for ch := 0; ch < c.InC; ch++ {
						chBase := ch * chStride
						wBase := ch * c.KH * c.KW
						for ky := kyLo; ky < kyHi; ky++ {
							rowX := chBase + (iy0+ky)*c.InW + ix0
							wRow := wBase + ky*c.KW
							for kx := kxLo; kx < kxHi; kx++ {
								s += xr[rowX+kx] * wr[wRow+kx]
							}
						}
					}
					yr[f*plane+base] = s + cv.b[f]
				}
			}
		}
	}
	return y
}

// forwardRowNoPad convolves one example filter-major for Pad == 0 nets —
// the float32 mirror of Conv2D.forwardIntoNoPad.
func (cv *conv32) forwardRowNoPad(xr, yr []float32) {
	c := cv.c
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	f := 0
	for ; f+4 <= c.OutC; f += 4 {
		w0 := cv.w.Row(f)
		w1 := cv.w.Row(f + 1)
		w2 := cv.w.Row(f + 2)
		w3 := cv.w.Row(f + 3)
		b0, b1, b2, b3 := cv.b[f], cv.b[f+1], cv.b[f+2], cv.b[f+3]
		o0 := yr[f*plane : (f+1)*plane]
		o1 := yr[(f+1)*plane : (f+2)*plane]
		o2 := yr[(f+2)*plane : (f+3)*plane]
		o3 := yr[(f+3)*plane : (f+4)*plane]
		pix := 0
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy * c.Stride
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox * c.Stride
				var s0, s1, s2, s3 float32
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					rowBase := ch*chStride + iy0*c.InW + ix0
					if c.KW == 3 {
						for ky := 0; ky < c.KH; ky++ {
							xw := xr[rowBase : rowBase+3]
							a0 := w0[idx : idx+3]
							a1 := w1[idx : idx+3]
							a2 := w2[idx : idx+3]
							a3 := w3[idx : idx+3]
							s0 += xw[0] * a0[0]
							s0 += xw[1] * a0[1]
							s0 += xw[2] * a0[2]
							s1 += xw[0] * a1[0]
							s1 += xw[1] * a1[1]
							s1 += xw[2] * a1[2]
							s2 += xw[0] * a2[0]
							s2 += xw[1] * a2[1]
							s2 += xw[2] * a2[2]
							s3 += xw[0] * a3[0]
							s3 += xw[1] * a3[1]
							s3 += xw[2] * a3[2]
							idx += 3
							rowBase += c.InW
						}
						continue
					}
					if c.KW == 5 {
						for ky := 0; ky < c.KH; ky++ {
							xw := xr[rowBase : rowBase+5]
							a0 := w0[idx : idx+5]
							a1 := w1[idx : idx+5]
							a2 := w2[idx : idx+5]
							a3 := w3[idx : idx+5]
							s0 += xw[0] * a0[0]
							s0 += xw[1] * a0[1]
							s0 += xw[2] * a0[2]
							s0 += xw[3] * a0[3]
							s0 += xw[4] * a0[4]
							s1 += xw[0] * a1[0]
							s1 += xw[1] * a1[1]
							s1 += xw[2] * a1[2]
							s1 += xw[3] * a1[3]
							s1 += xw[4] * a1[4]
							s2 += xw[0] * a2[0]
							s2 += xw[1] * a2[1]
							s2 += xw[2] * a2[2]
							s2 += xw[3] * a2[3]
							s2 += xw[4] * a2[4]
							s3 += xw[0] * a3[0]
							s3 += xw[1] * a3[1]
							s3 += xw[2] * a3[2]
							s3 += xw[3] * a3[3]
							s3 += xw[4] * a3[4]
							idx += 5
							rowBase += c.InW
						}
						continue
					}
					for ky := 0; ky < c.KH; ky++ {
						xw := xr[rowBase : rowBase+c.KW]
						a0 := w0[idx : idx+c.KW]
						a1 := w1[idx : idx+c.KW]
						a2 := w2[idx : idx+c.KW]
						a3 := w3[idx : idx+c.KW]
						for kx, xv := range xw {
							s0 += xv * a0[kx]
							s1 += xv * a1[kx]
							s2 += xv * a2[kx]
							s3 += xv * a3[kx]
						}
						idx += c.KW
						rowBase += c.InW
					}
				}
				o0[pix] = s0 + b0
				o1[pix] = s1 + b1
				o2[pix] = s2 + b2
				o3[pix] = s3 + b3
				pix++
			}
		}
	}
	for ; f < c.OutC; f++ {
		wr := cv.w.Row(f)
		bias := cv.b[f]
		of := yr[f*plane : (f+1)*plane]
		pix := 0
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy * c.Stride
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox * c.Stride
				var s float32
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					rowBase := ch*chStride + iy0*c.InW + ix0
					switch c.KW {
					case 3:
						for ky := 0; ky < c.KH; ky++ {
							xw := xr[rowBase : rowBase+3]
							ww := wr[idx : idx+3]
							s += xw[0] * ww[0]
							s += xw[1] * ww[1]
							s += xw[2] * ww[2]
							idx += 3
							rowBase += c.InW
						}
					case 5:
						for ky := 0; ky < c.KH; ky++ {
							xw := xr[rowBase : rowBase+5]
							ww := wr[idx : idx+5]
							s += xw[0] * ww[0]
							s += xw[1] * ww[1]
							s += xw[2] * ww[2]
							s += xw[3] * ww[3]
							s += xw[4] * ww[4]
							idx += 5
							rowBase += c.InW
						}
					default:
						for ky := 0; ky < c.KH; ky++ {
							xw := xr[rowBase : rowBase+c.KW]
							ww := wr[idx : idx+c.KW]
							for kx, xv := range xw {
								s += xv * ww[kx]
							}
							idx += c.KW
							rowBase += c.InW
						}
					}
				}
				of[pix] = s + bias
				pix++
			}
		}
	}
}

func (cv *conv32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	c := cv.c
	dx := ensure32(cv.ar, &cv.dx, dy.Rows, c.InSize())
	zero32(dx.Data)
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy*c.Stride - c.Pad
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox*c.Stride - c.Pad
				interior := iy0 >= 0 && ix0 >= 0 && iy0+c.KH <= c.InH && ix0+c.KW <= c.InW
				for f := 0; f < c.OutC; f++ {
					g := dyr[f*plane+oy*c.OutW+ox]
					//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
					if g == 0 {
						continue
					}
					wr := cv.w.Row(f)
					if interior {
						idx := 0
						for ch := 0; ch < c.InC; ch++ {
							rowBase := ch*chStride + iy0*c.InW + ix0
							if c.KW == 3 {
								for ky := 0; ky < c.KH; ky++ {
									dxw := dxr[rowBase : rowBase+3]
									ww := wr[idx : idx+3]
									dxw[0] += g * ww[0]
									dxw[1] += g * ww[1]
									dxw[2] += g * ww[2]
									idx += 3
									rowBase += c.InW
								}
								continue
							}
							for ky := 0; ky < c.KH; ky++ {
								dxw := dxr[rowBase : rowBase+c.KW]
								ww := wr[idx : idx+c.KW]
								for kx := range dxw {
									dxw[kx] += g * ww[kx]
								}
								idx += c.KW
								rowBase += c.InW
							}
						}
						continue
					}
					// Border: scatter only the in-bounds taps (the checked
					// loop never touched out-of-bounds ones either).
					kyLo, kyHi := clipRange(iy0, c.KH, c.InH)
					kxLo, kxHi := clipRange(ix0, c.KW, c.InW)
					for ch := 0; ch < c.InC; ch++ {
						chBase := ch * chStride
						wBase := ch * c.KH * c.KW
						for ky := kyLo; ky < kyHi; ky++ {
							rowX := chBase + (iy0+ky)*c.InW + ix0
							wRow := wBase + ky*c.KW
							for kx := kxLo; kx < kxHi; kx++ {
								dxr[rowX+kx] += g * wr[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// avgPool32 — linear pooling; no cache needed.
type avgPool32 struct {
	ar    *tensor.Arena32
	p     *AvgPool2D
	y, dx *tensor.Mat[float32]
}

func (a *avgPool32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := a.p
	y := ensure32(a.ar, &a.y, x.Rows, p.OutSize())
	inv := 1 / float32(p.K*p.K)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		for c := 0; c < p.C; c++ {
			inBase := c * p.InH * p.InW
			outBase := c * p.OutH * p.OutW
			for oy := 0; oy < p.OutH; oy++ {
				for ox := 0; ox < p.OutW; ox++ {
					var s float32
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.K; kx++ {
							s += xr[inBase+iy*p.InW+ox*p.Stride+kx]
						}
					}
					yr[outBase+oy*p.OutW+ox] = s * inv
				}
			}
		}
	}
	return y
}

func (a *avgPool32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := a.p
	dx := ensure32(a.ar, &a.dx, dy.Rows, p.InSize())
	zero32(dx.Data)
	inv := 1 / float32(p.K*p.K)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for c := 0; c < p.C; c++ {
			inBase := c * p.InH * p.InW
			outBase := c * p.OutH * p.OutW
			for oy := 0; oy < p.OutH; oy++ {
				for ox := 0; ox < p.OutW; ox++ {
					g := dyr[outBase+oy*p.OutW+ox] * inv
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.K; kx++ {
							dxr[inBase+iy*p.InW+ox*p.Stride+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// maxPool32 caches the per-row argmax indices in an arena-free int slice
// sized once for the first batch.
type maxPool32 struct {
	ar    *tensor.Arena32
	p     *MaxPool2D
	args  []int
	y, dx *tensor.Mat[float32]
}

func (m *maxPool32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := m.p
	out := p.OutSize()
	y := ensure32(m.ar, &m.y, x.Rows, out)
	if cap(m.args) < x.Rows*out {
		m.args = make([]int, x.Rows*out)
	}
	m.args = m.args[:x.Rows*out]
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		args := m.args[r*out : (r+1)*out]
		for c := 0; c < p.C; c++ {
			inBase := c * p.InH * p.InW
			outBase := c * p.OutH * p.OutW
			for oy := 0; oy < p.OutH; oy++ {
				rowBase := inBase + oy*p.Stride*p.InW
				o := outBase + oy*p.OutW
				if p.K == 2 {
					// 2×2 window unrolled in the same (ky, kx) scan order,
					// so ties resolve to the same first-wins index.
					for ox := 0; ox < p.OutW; ox++ {
						winBase := rowBase + ox*p.Stride
						best, bestIdx := xr[winBase], winBase
						if v := xr[winBase+1]; v > best {
							best, bestIdx = v, winBase+1
						}
						if v := xr[winBase+p.InW]; v > best {
							best, bestIdx = v, winBase+p.InW
						}
						if v := xr[winBase+p.InW+1]; v > best {
							best, bestIdx = v, winBase+p.InW+1
						}
						yr[o] = best
						args[o] = bestIdx
						o++
					}
					continue
				}
				for ox := 0; ox < p.OutW; ox++ {
					winBase := rowBase + ox*p.Stride
					bestIdx := winBase
					best := xr[winBase]
					for ky := 0; ky < p.K; ky++ {
						idx := winBase + ky*p.InW
						for kx := 0; kx < p.K; kx++ {
							if v := xr[idx]; v > best {
								best = v
								bestIdx = idx
							}
							idx++
						}
					}
					yr[o] = best
					args[o] = bestIdx
					o++
				}
			}
		}
	}
	return y
}

func (m *maxPool32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := m.p
	out := p.OutSize()
	dx := ensure32(m.ar, &m.dx, dy.Rows, p.InSize())
	zero32(dx.Data)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		args := m.args[r*out : (r+1)*out]
		for o, g := range dyr {
			dxr[args[o]] += g
		}
	}
	return dx
}

// globalAvgPool32 — channel means.
type globalAvgPool32 struct {
	ar    *tensor.Arena32
	p     *GlobalAvgPool
	y, dx *tensor.Mat[float32]
}

func (g *globalAvgPool32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := g.p
	plane := p.H * p.W
	inv := 1 / float32(plane)
	y := ensure32(g.ar, &g.y, x.Rows, p.C)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		for c := 0; c < p.C; c++ {
			var s float32
			for i := c * plane; i < (c+1)*plane; i++ {
				s += xr[i]
			}
			yr[c] = s * inv
		}
	}
	return y
}

func (g *globalAvgPool32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := g.p
	plane := p.H * p.W
	inv := 1 / float32(plane)
	dx := ensure32(g.ar, &g.dx, dy.Rows, p.C*plane)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for c := 0; c < p.C; c++ {
			gv := dyr[c] * inv
			for i := c * plane; i < (c+1)*plane; i++ {
				dxr[i] = gv
			}
		}
	}
	return dx
}

// meanTokens32 — token means.
type meanTokens32 struct {
	ar    *tensor.Arena32
	p     *MeanTokens
	y, dx *tensor.Mat[float32]
}

func (m *meanTokens32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := m.p
	inv := 1 / float32(p.T)
	y := ensure32(m.ar, &m.y, x.Rows, p.D)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		zero32(yr)
		for t := 0; t < p.T; t++ {
			for d := 0; d < p.D; d++ {
				yr[d] += xr[t*p.D+d]
			}
		}
		for d := range yr {
			yr[d] *= inv
		}
	}
	return y
}

func (m *meanTokens32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	p := m.p
	inv := 1 / float32(p.T)
	dx := ensure32(m.ar, &m.dx, dy.Rows, p.T*p.D)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for t := 0; t < p.T; t++ {
			for d := 0; d < p.D; d++ {
				dxr[t*p.D+d] = dyr[d] * inv
			}
		}
	}
	return dx
}

// relu32 — forward fills a 0/1 mask alongside the output so backward is a
// branch-free multiply. Signs of pre-activations are effectively random
// mid-training, so a compare-and-branch backward pays a misprediction per
// element; the mask multiply streams straight through.
type relu32 struct {
	ar          *tensor.Arena32
	y, dx, mask *tensor.Mat[float32]
}

func (r *relu32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	y := ensure32(r.ar, &r.y, x.Rows, x.Cols)
	mk := ensure32(r.ar, &r.mask, x.Rows, x.Cols)
	xd := x.Data
	yd := y.Data[:len(xd)]
	md := mk.Data[:len(xd)]
	for i, v := range xd {
		// Branch-free v > 0: sign bit clear AND bits non-zero. Pre-activation
		// signs are ~random mid-fit, so a compare-and-branch would mispredict
		// every other element; the bit version streams straight through. The
		// output is still v*m exactly as before, so values are unchanged
		// (m is exactly 0 or 1, and NaNs never reach the engine).
		u := math.Float32bits(v)
		m := relu32Mask[(u>>31^1)&((u|-u)>>31)]
		md[i] = m
		yd[i] = v * m
	}
	return y
}

// relu32Mask maps the bit-test result of relu32.forward to a float mask
// without an int→float conversion per element.
var relu32Mask = [2]float32{0, 1}

func (r *relu32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	dx := ensure32(r.ar, &r.dx, dy.Rows, dy.Cols)
	gd := dy.Data
	md := r.mask.Data[:len(gd)]
	dxd := dx.Data[:len(gd)]
	for i, g := range gd {
		dxd[i] = g * md[i]
	}
	return dx
}

// flatten32 — identity.
type flatten32 struct{}

func (f *flatten32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32]   { return x }
func (f *flatten32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] { return dy }

// flip32 applies hard signs in float32 but keeps the soft coefficients as
// float64 masters on the live Flip: each forward reads σ(w) from the Flip's
// raw float64 weights, each backward accumulates the raw-weight gradient in
// float64 straight into the Flip's Param. Adam, the stop rules, and Harden
// then operate on exactly the state the exact tier would.
type flip32 struct {
	ar      *tensor.Arena32
	f       *Flip
	signs   []float32
	offsets []float32
	lastX   *tensor.Mat[float32]
	y, dx   *tensor.Mat[float32]
}

func newFlip32(ar *tensor.Arena32, f *Flip) *flip32 {
	fl := &flip32{ar: ar, f: f, signs: demoteVec32(ar, f.Signs)}
	if f.Offsets != nil {
		fl.offsets = demoteVec32(ar, f.Offsets)
	}
	return fl
}

func (fl *flip32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	fl.lastX = x
	y := ensure32(fl.ar, &fl.y, x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		for i, v := range xr {
			yr[i] = fl.signs[i] * v
		}
		if fl.offsets != nil {
			for i, o := range fl.offsets {
				yr[i] += o
			}
		}
	}
	f := fl.f
	for i, j := range f.softIdx {
		s := float32(sigmoid(f.softW.W.Data[i]))
		if f.softGated {
			for r := 0; r < x.Rows; r++ {
				u := x.At(r, j)
				y.Set(r, j, (1-s)*reluF32(u)+s*reluF32(-u))
			}
		} else {
			k := 1 - 2*s
			for r := 0; r < x.Rows; r++ {
				y.Set(r, j, k*x.At(r, j))
			}
		}
	}
	return y
}

func (fl *flip32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	dx := ensure32(fl.ar, &fl.dx, dy.Rows, dy.Cols)
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for j, g := range dyr {
			dxr[j] = g * fl.signs[j]
		}
	}
	f := fl.f
	for i, j := range f.softIdx {
		s := sigmoid(f.softW.W.Data[i])
		ds := s * (1 - s)
		s32 := float32(s)
		gw := 0.0 // float64 accumulator: the master gradient stays stable
		for r := 0; r < dy.Rows; r++ {
			g := dy.At(r, j)
			u := fl.lastX.At(r, j)
			var dydu float32
			var dydw float64
			if f.softGated {
				dydw = (float64(reluF32(-u)) - float64(reluF32(u))) * ds
				switch {
				case u > 0:
					dydu = 1 - s32
				case u < 0:
					dydu = -s32
				}
			} else {
				dydw = -2 * float64(u) * ds
				dydu = 1 - 2*s32
			}
			dx.Set(r, j, g*dydu)
			gw += float64(g) * dydw
		}
		f.softW.G.Data[i] += gw
	}
	return dx
}

func reluF32(v float32) float32 {
	if v > 0 {
		return v
	}
	return 0
}

// residual32 — y = body(x) + shortcut(x).
type residual32 struct {
	ar             *tensor.Arena32
	body, shortcut []layer32
	in, out        int
	y, dx          *tensor.Mat[float32]
}

func (rs *residual32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	b := x
	for _, l := range rs.body {
		b = l.forward(b)
	}
	s := x
	for _, l := range rs.shortcut {
		s = l.forward(s)
	}
	y := ensure32(rs.ar, &rs.y, x.Rows, rs.out)
	for i := range y.Data {
		y.Data[i] = b.Data[i] + s.Data[i]
	}
	return y
}

func (rs *residual32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	db := dy
	for i := len(rs.body) - 1; i >= 0; i-- {
		db = rs.body[i].backward(db)
	}
	ds := dy
	for i := len(rs.shortcut) - 1; i >= 0; i-- {
		ds = rs.shortcut[i].backward(ds)
	}
	dx := ensure32(rs.ar, &rs.dx, dy.Rows, rs.in)
	for i := range dx.Data {
		dx.Data[i] = db.Data[i] + ds.Data[i]
	}
	return dx
}

// attn32 — the attention algebra with the four weight-gradient products of
// the float64 Backward dropped (Wq/Wk/Wv/Wo are frozen). Per-row K/Q/V/S
// caches are arena matrices allocated once per row slot.
type attn32 struct {
	ar             *tensor.Arena32
	a              *AttentionReLU
	wq, wk, wv, wo *tensor.Mat[float32]

	cQ, cK, cV, cS []*tensor.Mat[float32]

	u, do, ds, du, dv, dq, dk *tensor.Mat[float32]
	y, dx                     *tensor.Mat[float32]
}

func newAttn32(ar *tensor.Arena32, a *AttentionReLU) *attn32 {
	return &attn32{
		ar: ar, a: a,
		wq: demote32(ar, a.Wq.W), wk: demote32(ar, a.Wk.W),
		wv: demote32(ar, a.Wv.W), wo: demote32(ar, a.Wo.W),
	}
}

func (at *attn32) ensureCaches(n int) {
	for len(at.cQ) < n {
		at.cQ = append(at.cQ, at.ar.Mat(at.a.T, at.a.Dh))
		at.cK = append(at.cK, at.ar.Mat(at.a.T, at.a.Dh))
		at.cV = append(at.cV, at.ar.Mat(at.a.T, at.a.Dh))
		at.cS = append(at.cS, at.ar.Mat(at.a.T, at.a.T))
	}
}

func (at *attn32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	a := at.a
	at.ensureCaches(x.Rows)
	y := ensure32(at.ar, &at.y, x.Rows, a.OutSize())
	u := ensure32(at.ar, &at.u, a.T, a.T)
	o := ensure32(at.ar, &at.do, a.T, a.Dh) // reuse the dO workspace as O
	sa := float32(a.scaleA())
	sb := float32(a.scaleB())
	for r := 0; r < x.Rows; r++ {
		xm := tensor.FromSlice(a.T, a.D, x.Row(r))
		q, k, v, s := at.cQ[r], at.cK[r], at.cV[r], at.cS[r]
		tensor.MatMulInto(q, xm, at.wq)
		tensor.MatMulInto(k, xm, at.wk)
		tensor.MatMulInto(v, xm, at.wv)
		tensor.MatMulABTInto(u, q, k)
		for i, uv := range u.Data {
			if uv*sa > 0 {
				s.Data[i] = uv * sa * sb
			} else {
				s.Data[i] = 0
			}
		}
		tensor.MatMulInto(o, s, v)
		ym := tensor.FromSlice(a.T, a.D, y.Row(r))
		tensor.MatMulInto(ym, o, at.wo)
	}
	return y
}

func (at *attn32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	a := at.a
	sa := float32(a.scaleA())
	sb := float32(a.scaleB())
	dx := ensure32(at.ar, &at.dx, dy.Rows, a.InSize())
	do := ensure32(at.ar, &at.do, a.T, a.Dh)
	ds := ensure32(at.ar, &at.ds, a.T, a.T)
	du := ensure32(at.ar, &at.du, a.T, a.T)
	dv := ensure32(at.ar, &at.dv, a.T, a.Dh)
	dq := ensure32(at.ar, &at.dq, a.T, a.Dh)
	dk := ensure32(at.ar, &at.dk, a.T, a.Dh)
	for r := 0; r < dy.Rows; r++ {
		dym := tensor.FromSlice(a.T, a.D, dy.Row(r))
		q, k, v, s := at.cQ[r], at.cK[r], at.cV[r], at.cS[r]

		tensor.MatMulABTInto(do, dym, at.wo) // dO = dY·Woᵀ
		tensor.MatMulABTInto(ds, do, v)      // dS = dO·Vᵀ
		tensor.MatMulATBInto(dv, s, do)      // dV = Sᵀ·dO

		for i := range ds.Data {
			if s.Data[i] > 0 { // S > 0 ⇔ the pre-ReLU score was positive
				du.Data[i] = ds.Data[i] * sb
			} else {
				du.Data[i] = 0
			}
		}
		tensor.MatMulInto(dq, du, k)
		dq.ScaleInPlace(sa)
		tensor.MatMulATBInto(dk, du, q) // dK = dUᵀ·Q
		dk.ScaleInPlace(sa)

		dxm := tensor.FromSlice(a.T, a.D, dx.Row(r))
		tensor.MatMulABTInto(dxm, dq, at.wq) // dX = dQ·Wqᵀ + dK·Wkᵀ + dV·Wvᵀ
		tensor.MatMulABTAddInto(dxm, dk, at.wk)
		tensor.MatMulABTAddInto(dxm, dv, at.wv)
	}
	return dx
}

// patchEmbed32 — shared projection forward; backward scatters dX only, so
// the patch gather disappears entirely from the backward pass.
type patchEmbed32 struct {
	ar        *tensor.Arena32
	pe        *PatchEmbed
	w         *tensor.Mat[float32]
	b         []float32
	buf, dbuf []float32
	y, dx     *tensor.Mat[float32]
}

func newPatchEmbed32(ar *tensor.Arena32, pe *PatchEmbed) *patchEmbed32 {
	n := pe.C * pe.P * pe.P
	return &patchEmbed32{
		ar: ar, pe: pe,
		w: demote32(ar, pe.Wt.W), b: demoteVec32(ar, pe.B.W.Row(0)),
		buf: ar.Vec(n), dbuf: ar.Vec(n),
	}
}

func (p *patchEmbed32) forward(x *tensor.Mat[float32]) *tensor.Mat[float32] {
	pe := p.pe
	y := ensure32(p.ar, &p.y, x.Rows, pe.OutSize())
	cols := pe.W / pe.P
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		for t := 0; t < pe.T; t++ {
			py, px := t/cols, t%cols
			idx := 0
			for c := 0; c < pe.C; c++ {
				base := c * pe.H * pe.W
				for dy := 0; dy < pe.P; dy++ {
					rowBase := base + (py*pe.P+dy)*pe.W + px*pe.P
					for dx := 0; dx < pe.P; dx++ {
						p.buf[idx] = xr[rowBase+dx]
						idx++
					}
				}
			}
			for d := 0; d < pe.D; d++ {
				yr[t*pe.D+d] = tensor.Dot(p.w.Row(d), p.buf) + p.b[d]
			}
		}
	}
	return y
}

func (p *patchEmbed32) backward(dy *tensor.Mat[float32]) *tensor.Mat[float32] {
	pe := p.pe
	dx := ensure32(p.ar, &p.dx, dy.Rows, pe.InSize())
	zero32(dx.Data)
	cols := pe.W / pe.P
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for t := 0; t < pe.T; t++ {
			zero32(p.dbuf)
			for d := 0; d < pe.D; d++ {
				g := dyr[t*pe.D+d]
				//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
				if g == 0 {
					continue
				}
				wr := p.w.Row(d)
				for i := range p.dbuf {
					p.dbuf[i] += g * wr[i]
				}
			}
			py, px := t/cols, t%cols
			idx := 0
			for c := 0; c < pe.C; c++ {
				base := c * pe.H * pe.W
				for dy := 0; dy < pe.P; dy++ {
					rowBase := base + (py*pe.P+dy)*pe.W + px*pe.P
					for dx := 0; dx < pe.P; dx++ {
						dxr[rowBase+dx] += p.dbuf[idx]
						idx++
					}
				}
			}
		}
	}
	return dx
}

func zero32(v []float32) {
	for i := range v {
		v[i] = 0
	}
}
