// Comparison: the paper's §4.3/§4.4 head-to-head — the monolithic
// learning-based attack against the full DNN decryption algorithm, on the
// same locked model with the same oracle budget regime. The monolithic
// attack reaches high *accuracy* but plateaus below 100% key *fidelity* on
// harder instances; the decryption algorithm is exact.
package main

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/core"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	// A residual conv net: expansive layers and skip paths are the hard
	// case for pure learning (§3.4), and a starved query budget exposes
	// the gap the paper reports for ResNet/V-Transformer.
	net := models.TinyResNet(rng)
	locked, secret := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 12, Rng: rng})
	fmt.Printf("locked a %d-parameter conv net with a %d-bit key\n\n", net.NumParams(), len(secret))

	monoCfg := core.DefaultConfig()
	monoCfg.LearnQueries = 24
	monoCfg.LearnEpochs = 25
	monoCfg.Seed = 3
	mono, err := core.Monolithic(locked.WhiteBox(), locked.Spec, oracle.New(locked, secret), monoCfg, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("monolithic learning-based attack (§4.3):")
	fmt.Printf("  key      %s\n  secret   %s\n", mono.Key, secret)
	fmt.Printf("  fidelity %.0f%%   queries %d   epochs %d   time %s\n\n",
		100*mono.Key.Fidelity(secret), mono.Queries, mono.Epochs, mono.Time.Round(1000000))

	decCfg := core.DefaultConfig()
	decCfg.Seed = 3
	res, err := core.Run(locked.WhiteBox(), locked.Spec, oracle.New(locked, secret), decCfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("DNN decryption attack (Algorithm 2):")
	fmt.Printf("  key      %s\n  secret   %s\n", res.Key, secret)
	fmt.Printf("  fidelity %.0f%%   queries %d   time %s\n",
		100*res.Key.Fidelity(secret), res.Queries, res.Time.Round(1000000))
	fmt.Printf("  breakdown: %s\n\n", res.Breakdown)

	fmt.Println("high fidelity matters beyond piracy: only an exactly recovered key")
	fmt.Println("lets the adversary craft adversarial examples that transfer to the")
	fmt.Println("victim's deployed devices (paper §2.3).")
}
