package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestLevelFromEnv(t *testing.T) {
	cases := []struct {
		env   string
		level slog.Level
		on    bool
	}{
		{"", slog.LevelInfo, false},
		{"off", slog.LevelInfo, false},
		{"nonsense", slog.LevelInfo, false},
		{"debug", slog.LevelDebug, true},
		{"INFO", slog.LevelInfo, true},
		{" warn ", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
	}
	for _, c := range cases {
		t.Setenv("DNNLOCK_LOG", c.env)
		level, on := LevelFromEnv()
		if level != c.level || on != c.on {
			t.Errorf("DNNLOCK_LOG=%q: got (%v,%v), want (%v,%v)", c.env, level, on, c.level, c.on)
		}
	}
}

func TestDefaultRespectsEnv(t *testing.T) {
	var buf bytes.Buffer
	t.Setenv("DNNLOCK_LOG", "")
	Default(&buf).Info("hidden")
	if buf.Len() != 0 {
		t.Fatalf("disabled logger wrote %q", buf.String())
	}
	t.Setenv("DNNLOCK_LOG", "info")
	Default(&buf).Info("visible")
	if !strings.Contains(buf.String(), "visible") {
		t.Fatalf("enabled logger wrote %q", buf.String())
	}
}

func TestCompactHandlerFormat(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelDebug)
	log.Info("site decided", "site", 3, "frac", 0.25, "note", "two words")
	line := strings.TrimRight(buf.String(), "\n")
	for _, want := range []string{"INFO", "site decided", "site=3", "frac=0.25", `note="two words"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("expected one line, got %q", buf.String())
	}

	buf.Reset()
	log.Debug("fine")
	log.Warn("coarse")
	if !strings.Contains(buf.String(), "DEBUG") || !strings.Contains(buf.String(), "WARN") {
		t.Fatalf("level rendering wrong: %q", buf.String())
	}

	buf.Reset()
	NewLogger(&buf, slog.LevelWarn).Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("below-level record written: %q", buf.String())
	}
}

func TestCompactHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo).With("model", "mlp").WithGroup("cell")
	log.Info("row", "bits", 64)
	line := buf.String()
	if !strings.Contains(line, "model=mlp") {
		t.Fatalf("WithAttrs context lost: %q", line)
	}
	if !strings.Contains(line, "cell.bits=64") {
		t.Fatalf("group prefix missing: %q", line)
	}
}

func TestDiscardLoggerIsSilent(t *testing.T) {
	log := Discard()
	if log.Enabled(nil, slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
	log.Error("nothing happens")
	log.With("k", "v").WithGroup("g").Info("still nothing")
}
