package models

import (
	"math/rand"
	"testing"

	"dnnlock/internal/nn"
)

func checkRuns(t *testing.T, net *nn.Network, wantFlips int) {
	t.Helper()
	if net.NumFlipSites() != wantFlips {
		t.Fatalf("flip sites = %d, want %d", net.NumFlipSites(), wantFlips)
	}
	x := make([]float64, net.InSize())
	rng := rand.New(rand.NewSource(42))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := net.Forward(x)
	if len(y) != net.OutSize() {
		t.Fatalf("output size %d != %d", len(y), net.OutSize())
	}
	tr := net.ForwardTrace(x)
	for s := 0; s < net.NumFlipSites(); s++ {
		if tr.Pre[s] == nil {
			t.Fatalf("flip site %d not traced", s)
		}
	}
}

func TestPaperMLP(t *testing.T) {
	net := PaperMLP(rand.New(rand.NewSource(1)))
	if net.InSize() != 784 || net.OutSize() != 10 {
		t.Fatal("wrong geometry")
	}
	checkRuns(t, net, 2)
}

func TestTinyMLP(t *testing.T) {
	checkRuns(t, TinyMLP(rand.New(rand.NewSource(2))), 2)
}

func TestLeNet(t *testing.T) {
	net := LeNet(1, rand.New(rand.NewSource(3)))
	if net.InSize() != 784 || net.OutSize() != 10 {
		t.Fatal("wrong geometry")
	}
	checkRuns(t, net, 4)
}

func TestTinyLeNet(t *testing.T) {
	checkRuns(t, TinyLeNet(rand.New(rand.NewSource(4))), 2)
}

func TestResNet(t *testing.T) {
	net := ResNet(3, rand.New(rand.NewSource(5)))
	if net.InSize() != 3*16*16 || net.OutSize() != 10 {
		t.Fatal("wrong geometry")
	}
	// 1 stem + 2 flips in each of 4 blocks.
	checkRuns(t, net, 9)
}

func TestTinyResNet(t *testing.T) {
	checkRuns(t, TinyResNet(rand.New(rand.NewSource(6))), 3)
}

func TestVTransformer(t *testing.T) {
	net := VTransformer(3, rand.New(rand.NewSource(7)))
	if net.InSize() != 3*16*16 || net.OutSize() != 10 {
		t.Fatal("wrong geometry")
	}
	checkRuns(t, net, 2)
}

func TestTinyVTransformer(t *testing.T) {
	checkRuns(t, TinyVTransformer(rand.New(rand.NewSource(8))), 1)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mlp", "lenet", "resnet", "vtransformer"} {
		b, c, h, w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		net := b(rand.New(rand.NewSource(9)))
		if net.InSize() != c*h*w {
			t.Fatalf("%s: input %d != %d", name, net.InSize(), c*h*w)
		}
	}
	if _, _, _, _, err := ByName("nope"); err == nil {
		t.Fatal("unknown model should error")
	}
}
