package nn

import (
	"dnnlock/internal/tensor"
)

// Residual computes y = shortcut(x) + body(x), the basic block topology of
// ResNet (He et al. 2016). An empty shortcut is the identity; a non-empty
// shortcut (e.g. a strided 1×1 convolution) handles shape changes.
type Residual struct {
	Body     []Layer
	Shortcut []Layer // nil/empty means identity
}

// NewResidual constructs a residual block.
func NewResidual(body []Layer, shortcut []Layer) *Residual {
	r := &Residual{Body: body, Shortcut: shortcut}
	if r.InSize() != 0 && r.OutSize() != 0 && len(shortcut) == 0 && r.InSize() != r.OutSize() {
		panic("nn: identity-shortcut residual needs matching in/out sizes")
	}
	return r
}

func (r *Residual) Name() string { return "residual" }

// InSize returns the body's input size.
func (r *Residual) InSize() int { return r.Body[0].InSize() }

// OutSize returns the body's output size.
func (r *Residual) OutSize() int { return r.Body[len(r.Body)-1].OutSize() }

func (r *Residual) subLayers() []Layer {
	out := append([]Layer(nil), r.Body...)
	return append(out, r.Shortcut...)
}

// Forward runs both paths and sums them.
func (r *Residual) Forward(x []float64, tr *Trace) []float64 {
	b := x
	for _, l := range r.Body {
		b = l.Forward(b, tr)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, tr)
	}
	return tensor.VecAdd(b, s)
}

// ForwardBatch runs both paths and sums them.
func (r *Residual) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	b := x
	for _, l := range r.Body {
		b = l.ForwardBatch(b)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.ForwardBatch(s)
	}
	return tensor.Add(b, s)
}

// TrainForward runs both paths with caching.
func (r *Residual) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	b := x
	for _, l := range r.Body {
		b = l.TrainForward(b)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.TrainForward(s)
	}
	return tensor.Add(b, s)
}

// Backward propagates through both paths and sums the input gradients.
func (r *Residual) Backward(dy *tensor.Matrix) *tensor.Matrix {
	db := dy
	for i := len(r.Body) - 1; i >= 0; i-- {
		db = r.Body[i].Backward(db)
	}
	ds := dy
	for i := len(r.Shortcut) - 1; i >= 0; i-- {
		ds = r.Shortcut[i].Backward(ds)
	}
	return tensor.Add(db, ds)
}

// JVP propagates value and tangent through both paths and sums them.
func (r *Residual) JVP(x []float64, j *tensor.Matrix, jtr *JVPTrace) ([]float64, *tensor.Matrix) {
	bv, bj := x, j
	for _, l := range r.Body {
		bv, bj = l.JVP(bv, bj, jtr)
	}
	sv, sj := x, j
	for _, l := range r.Shortcut {
		sv, sj = l.JVP(sv, sj, jtr)
	}
	return tensor.VecAdd(bv, sv), tensor.Add(bj, sj)
}

// Params returns all parameters of both paths.
func (r *Residual) Params() []*Param {
	var out []*Param
	for _, l := range r.subLayers() {
		out = append(out, l.Params()...)
	}
	return out
}
