package worker

import "testing"

// Test goroutines die with the process: golife skips test files entirely,
// so this spinner produces no finding.
func TestSpinnerAllowed(t *testing.T) {
	go func() {
		for {
			work()
		}
	}()
	t.Log("spawned")
}
