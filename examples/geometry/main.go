// Geometry demo: the quantitative companion to the paper's Figure 2. It
// builds a small 2-input ReLU network, prints activation patterns (Figure
// 2(a)), rasterizes the linear regions its hyperplanes cut the plane into
// (Figure 2(b)), finds a hyperplane witness with the attack's
// critical-point search, and verifies the region-local affine map of
// Formulas 2–4.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dnnlock/internal/geometry"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(2))
	// The Figure 2 toy: 2 inputs, two hidden layers of 3 ReLUs, 1 output.
	d1 := nn.NewDense(2, 3).InitHe(rng)
	d2 := nn.NewDense(3, 3).InitHe(rng)
	d3 := nn.NewDense(3, 1).InitHe(rng)
	// Random biases move the hyperplanes off the origin, giving the bent
	// arrangement of Figure 2(b).
	for _, d := range []*nn.Dense{d1, d2, d3} {
		for i := range d.B.W.Data {
			d.B.W.Data[i] = rng.NormFloat64()
		}
	}
	net := nn.NewNetwork(
		d1, nn.NewFlip(3), nn.NewReLU(3),
		d2, nn.NewFlip(3), nn.NewReLU(3),
		d3,
	)

	// Activation patterns at a sample input (Figure 2(a)).
	x := []float64{0.7, -0.4}
	tr := net.ForwardTrace(x)
	fmt.Printf("input %v -> output %.4f\n", x, tr.Out[0])
	for i, pat := range tr.Patterns {
		fmt.Printf("activation pattern m^(%d) = %v\n", i+1, boolsToBits(pat))
	}

	// Linear-region census over [-3, 3]^2 (Figure 2(b)).
	regions := geometry.CountLinearRegions2D(net, 200, 3)
	fmt.Printf("\nhyperplanes of 6 ReLUs cut [-3,3]² into %d observed linear regions\n", regions)

	// ASCII rasterization of the regions.
	fmt.Println("\nregion map (each glyph = one linear region):")
	const n = 48
	ids := map[string]byte{}
	glyphs := []byte(".:-=+*#%@&oxwXOMW$abcdefgh123456789ABCDEFGH")
	for i := n - 1; i >= 0; i-- {
		line := make([]byte, n)
		for j := 0; j < n; j++ {
			p := []float64{
				-3 + 6*float64(j)/float64(n-1),
				-3 + 6*float64(i)/float64(n-1),
			}
			key := geometry.PatternKey(net.ForwardTrace(p).Patterns)
			if _, ok := ids[key]; !ok {
				ids[key] = glyphs[len(ids)%len(glyphs)]
			}
			line[j] = ids[key]
		}
		fmt.Println(string(line))
	}

	// Every region is one affine map (§3.2): verify Formulas 2–4 at x.
	m, err := geometry.RegionAffineMap(net, tr)
	if err != nil {
		panic(err)
	}
	pred := m.Apply(x)[0]
	fmt.Printf("\nregion affine map: f(x) = %.4f·x1 + %.4f·x2 + %.4f\n",
		m.A.At(0, 0), m.A.At(0, 1), m.B[0])
	fmt.Printf("affine prediction %.6f vs network %.6f (diff %.1e)\n",
		pred, tr.Out[0], math.Abs(pred-tr.Out[0]))

	// A hyperplane witness for neuron η_{1,0}, in the spirit of §3.5:
	// bisect a random segment until the pre-activation crosses zero.
	a := []float64{-3, -3}
	b := []float64{3, 3}
	ua := net.ForwardTrace(a).Pre[0][0]
	for iter := 0; iter < 80; iter++ {
		mid := tensor.VecScale(0.5, tensor.VecAdd(a, b))
		um := net.ForwardTrace(mid).Pre[0][0]
		if (ua > 0) == (um > 0) {
			a, ua = mid, um
		} else {
			b = mid
		}
	}
	fmt.Printf("\ncritical point of η(1,0): x° = (%.5f, %.5f), |z| = %.2e\n",
		a[0], a[1], math.Abs(net.ForwardTrace(a).Pre[0][0]))
}

func boolsToBits(p []bool) string {
	out := make([]byte, len(p))
	for i, b := range p {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
