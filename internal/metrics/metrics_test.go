package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAddAndPercent(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, 300*time.Millisecond)
	b.Add(ProcLearningAttack, 700*time.Millisecond)
	if b.Total() != time.Second {
		t.Fatalf("Total = %v", b.Total())
	}
	if math.Abs(b.Percent(ProcKeyBitInference)-30) > 1e-9 {
		t.Fatalf("Percent = %v", b.Percent(ProcKeyBitInference))
	}
	p := b.Percentages()
	if math.Abs(p[ProcLearningAttack]-70) > 1e-9 || p[ProcErrorCorrection] != 0 {
		t.Fatalf("Percentages = %v", p)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown()
	if b.Percent(ProcKeyBitInference) != 0 || b.Total() != 0 {
		t.Fatal("empty breakdown should be all zero")
	}
}

func TestBreakdownTrack(t *testing.T) {
	b := NewBreakdown()
	b.Track(ProcErrorCorrection, func() { time.Sleep(5 * time.Millisecond) })
	if b.Get(ProcErrorCorrection) < 4*time.Millisecond {
		t.Fatalf("Track recorded %v", b.Get(ProcErrorCorrection))
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(ProcKeyVectorValidation, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if b.Get(ProcKeyVectorValidation) != 1600*time.Microsecond {
		t.Fatalf("concurrent total = %v", b.Get(ProcKeyVectorValidation))
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, time.Second)
	b.Add(Procedure("custom"), time.Second)
	s := b.String()
	if !strings.Contains(s, "key_bit_inference") || !strings.Contains(s, "custom") {
		t.Fatalf("String = %q", s)
	}
}
