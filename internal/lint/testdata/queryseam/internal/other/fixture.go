// Package other is outside internal/core: the seam does not apply here
// (the harness and the CLI talk to the oracle legitimately).
package other

import "dnnlock/internal/oracle"

func rawCallOutsideCore(orc oracle.Interface, x []float64) {
	orc.Query(x)
}
