package tensor

import "testing"

// TestArenaVecBump checks bump allocation hands out disjoint,
// capacity-clamped slices from one slab.
func TestArenaVecBump(t *testing.T) {
	a := GetArena32()
	defer PutArena32(a)
	v1 := a.Vec(8)
	v2 := a.Vec(8)
	if cap(v1) != 8 || cap(v2) != 8 {
		t.Fatalf("capacity not clamped: %d, %d", cap(v1), cap(v2))
	}
	for i := range v1 {
		v1[i] = 1
	}
	for i := range v2 {
		v2[i] = 2
	}
	for i, v := range v1 {
		if v != 1 {
			t.Fatalf("v1[%d] clobbered: %v", i, v)
		}
	}
	// An append must reallocate, never bleed into v2's block.
	v1 = append(v1, 9)
	if v2[0] != 2 {
		t.Fatal("append into v1 bled into v2")
	}
}

// TestArenaMatShapes checks Mat headers carry the requested shape and
// MatZero clears.
func TestArenaMatShapes(t *testing.T) {
	a := GetArena32()
	defer PutArena32(a)
	m := a.Mat(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Data[0] = 5
	z := a.MatZero(2, 2)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("MatZero[%d] = %v", i, v)
		}
	}
}

// TestArenaGrowAndResetMerge forces multi-slab growth and checks Reset
// merges to a single slab big enough for the whole prior run.
func TestArenaGrowAndResetMerge(t *testing.T) {
	a := &Arena32{}
	total := 0
	for i := 0; i < 10; i++ {
		n := 3000
		a.Vec(n)
		total += n
	}
	if len(a.slabs) < 2 {
		t.Fatalf("expected growth across slabs, got %d slab(s)", len(a.slabs))
	}
	a.Reset()
	if len(a.slabs) != 1 {
		t.Fatalf("Reset left %d slabs", len(a.slabs))
	}
	if len(a.slabs[0]) < total {
		t.Fatalf("merged slab %d < prior total %d", len(a.slabs[0]), total)
	}
	// The merged slab now serves the same run without growing again.
	before := len(a.slabs)
	for i := 0; i < 10; i++ {
		a.Vec(3000)
	}
	if len(a.slabs) != before {
		t.Fatalf("merged arena grew again: %d slabs", len(a.slabs))
	}
}

// TestArenaHeaderStability checks Mat headers stay valid as more headers
// are carved (chunks are appended, never reallocated while live).
func TestArenaHeaderStability(t *testing.T) {
	a := GetArena32()
	defer PutArena32(a)
	first := a.Mat(2, 2)
	first.Data[3] = 7
	for i := 0; i < 3*arenaHdrChunk; i++ {
		a.Mat(1, 1)
	}
	if first.Rows != 2 || first.Cols != 2 || first.Data[3] != 7 {
		t.Fatal("early header invalidated by later header allocation")
	}
}

// TestArenaPoolRoundTrip checks a pooled arena is reusable after release.
func TestArenaPoolRoundTrip(t *testing.T) {
	a := GetArena32()
	a.Vec(100)
	PutArena32(a)
	b := GetArena32()
	defer PutArena32(b)
	v := b.Vec(50)
	if len(v) != 50 {
		t.Fatalf("reused arena Vec len %d", len(v))
	}
	PutArena32(nil) // nil-safe
}
