package tensor

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// CholeskyDecompose factors a symmetric positive definite matrix.
// It returns ErrSingular when a non-positive pivot is met.
func CholeskyDecompose(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("tensor: CholeskyDecompose requires a square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	return c.SolveInto(make([]float64, c.l.Rows), b)
}

// SolveInto solves A·x = b into the caller-provided x (following the
// ColInto convention: the destination comes first and is returned). The
// forward-substitution intermediate lives in a pooled workspace, so the
// solve itself allocates nothing — hot callers pass a pooled or reused x
// and the per-call garbage of the old Solve disappears. x may alias b:
// b's element i is consumed before anything overwrites it.
func (c *Cholesky) SolveInto(x, b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n || len(x) != n {
		panic("tensor: Cholesky.Solve length mismatch")
	}
	// Forward: L·y = b.
	y := GetVec(n)
	defer PutVec(y)
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }
