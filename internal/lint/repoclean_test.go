package lint

import (
	"testing"
)

// TestLintRepoIsClean runs the full analyzer suite over the real source
// tree. This is the machine-enforced version of the invariants DESIGN.md
// §8–10 and §15 state in prose: if a change leaks a pooled workspace,
// compares floats with ==, ranges a map inside a kernel package, spawns an
// unsanctioned goroutine, drops an oracle-seam error, leaks a span on an
// error path, or starts a goroutine with no termination witness, this test
// (and `make lint` / scripts/check.sh) fails with the exact position.
func TestLintRepoIsClean(t *testing.T) {
	// Pin the expanded suite: if an analyzer fell out of All, this test
	// would keep passing while silently checking less.
	want := []string{"poolpair", "determinism", "floatcmp", "nakedgo",
		"pkgdoc", "queryseam", "errflow", "spanpair", "golife"}
	have := map[string]bool{}
	for _, a := range All {
		have[a.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("analyzer %q missing from lint.All", name)
		}
	}

	prog, err := Load("../..")
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	for _, te := range prog.TypeErrors {
		t.Errorf("type error: %v", te)
	}
	if len(prog.Units) < 15 {
		t.Fatalf("loader found only %d units; expected the whole module", len(prog.Units))
	}
	for _, d := range prog.Run(All) {
		t.Errorf("%s", d)
	}
}

// TestRepoLoaderCoversKernelPackages guards the analyzer scoping: if the
// kernel packages were renamed without updating the analyzers, determinism
// and nakedgo would silently stop checking anything.
func TestRepoLoaderCoversKernelPackages(t *testing.T) {
	prog, err := Load("../..")
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	found := map[string]bool{}
	for _, u := range prog.Units {
		found[u.Path] = true
	}
	for pkg := range kernelPackages {
		if !found[pkg] {
			t.Errorf("kernel package %q not found in the loaded module; determinism/nakedgo scoping is stale", pkg)
		}
	}
	for path := range getFuncs {
		if !found[path] {
			t.Errorf("pool package %q not found in the loaded module; poolpair scoping is stale", path)
		}
	}
}
