package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// The adversary model (§2.3) allows observing either the logits or the
// softmax output vector. These tests run the full attack against a device
// that only reveals probabilities.

func TestDecryptSoftmaxOracleMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 8, Rng: rng})
	orc := oracle.NewSoftmax(lm, key)
	cfg := DefaultConfig()
	cfg.Seed = 902
	res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("fidelity %.3f under softmax oracle", res.Key.Fidelity(key))
	}
}

func TestDecryptSoftmaxOracleExpansive(t *testing.T) {
	// Softmax oracle + expansive layer forces the learning attack to fit
	// probabilities (the softmax-backward path of fitSoft).
	rng := rand.New(rand.NewSource(903))
	net := nn.NewNetwork(
		nn.NewDense(5, 12).InitHe(rng), nn.NewFlip(12), nn.NewReLU(12),
		nn.NewDense(12, 4).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 5, Rng: rng})
	orc := oracle.NewSoftmax(lm, key)
	cfg := DefaultConfig()
	cfg.Seed = 904
	res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key.Fidelity(key) != 1 {
		t.Fatalf("fidelity %.3f under softmax oracle (learning path)", res.Key.Fidelity(key))
	}
}

func TestSoftmaxOracleQueryIsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(905))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 4, Rng: rng})
	orc := oracle.NewSoftmax(lm, key)
	if !orc.Softmax() {
		t.Fatal("softmax flag not set")
	}
	x := make([]float64, net.InSize())
	y, err := orc.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range y {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
