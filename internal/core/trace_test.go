package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/obs"
)

// tracedRun executes the full attack on a fresh TinyMLP instance locked
// with a fixed seed, optionally under a sink-backed tracer, and returns
// the result plus whatever the tracer exported.
func tracedRun(t *testing.T, traced bool) (*Result, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(510))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 10, Rng: rand.New(rand.NewSource(511)),
	})
	cfg := DefaultConfig()
	cfg.Seed = 512
	var buf bytes.Buffer
	if traced {
		tr := obs.New(obs.WithSink(&buf))
		defer tr.Close()
		cfg.Tracer = tr
	}
	res, err := Run(white, spec, orc, cfg)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("fidelity %.3f", fid)
	}
	return res, buf.Bytes()
}

// TestTracedRunBitIdentical pins the observability layer's core promise:
// attaching a tracer observes the attack but never perturbs it. Two runs
// from identical seeds — one with the no-op default, one exporting a full
// detailed trace — must agree bit for bit on every externally visible
// outcome: the recovered key, the total query count, the per-procedure
// query attribution, and each site's origin counts.
func TestTracedRunBitIdentical(t *testing.T) {
	plain, _ := tracedRun(t, false)
	traced, out := tracedRun(t, true)

	if !reflect.DeepEqual(plain.Key, traced.Key) {
		t.Fatalf("keys diverge: %v vs %v", plain.Key, traced.Key)
	}
	if plain.Queries != traced.Queries {
		t.Fatalf("query counts diverge: %d vs %d", plain.Queries, traced.Queries)
	}
	if !reflect.DeepEqual(plain.QueriesByProc, traced.QueriesByProc) {
		t.Fatalf("per-procedure queries diverge: %v vs %v",
			plain.QueriesByProc, traced.QueriesByProc)
	}
	if len(plain.Sites) != len(traced.Sites) {
		t.Fatalf("site report counts diverge: %d vs %d", len(plain.Sites), len(traced.Sites))
	}
	for i := range plain.Sites {
		p, q := plain.Sites[i], traced.Sites[i]
		if p.Site != q.Site || p.Bits != q.Bits || p.Algebraic != q.Algebraic ||
			p.Learned != q.Learned || p.Corrected != q.Corrected {
			t.Fatalf("site %d reports diverge: %+v vs %+v", i, p, q)
		}
	}

	// The traced run must have produced a well-formed trace whose rollup
	// agrees with the breakdown summary it carries.
	tr, err := obs.ReadTrace(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("traced run exported no spans")
	}
	if err := tr.Check(0.5); err != nil {
		t.Fatalf("trace self-check failed: %v", err)
	}
}
