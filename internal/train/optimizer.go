package train

import (
	"math"

	"dnnlock/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*nn.Param)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*nn.Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*nn.Param][]float64)}
}

// Step applies one update to every unfrozen parameter and clears gradients.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		v := s.vel[p]
		if v == nil {
			v = make([]float64, len(p.W.Data))
			s.vel[p] = v
		}
		for i := range p.W.Data {
			v[i] = s.Momentum*v[i] - s.LR*p.G.Data[i]
			p.W.Data[i] += v[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*nn.Param][]float64
}

// NewAdam constructs Adam with standard moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// Step applies one bias-corrected Adam update to every unfrozen parameter
// and clears gradients.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			v = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = v
		}
		for i := range p.W.Data {
			g := p.G.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.Data[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
		p.ZeroGrad()
	}
}
