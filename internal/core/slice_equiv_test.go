package core

import (
	"math/rand"
	"sort"
	"testing"

	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// fuzzedEquivNets returns locked-model builders across the evaluation's
// architecture families, with rng-fuzzed widths for the MLPs.
func fuzzedEquivNets(rng *rand.Rand) []func(*rand.Rand) *nn.Network {
	builders := []func(*rand.Rand) *nn.Network{
		models.TinyLeNet,
		models.TinyResNet,
		models.TinyVTransformer,
	}
	for i := 0; i < 3; i++ {
		h1, h2 := 8+rng.Intn(8), 5+rng.Intn(4)
		in, out := 5+rng.Intn(6), 3+rng.Intn(2)
		builders = append(builders, func(r *rand.Rand) *nn.Network {
			return models.MLP(models.MLPConfig{In: in, Hidden: []int{h1, h2}, Out: out}, r)
		})
	}
	return builders
}

// fitOutcome captures everything fitSoft decides: per-epoch losses, final
// soft coefficients, and the hardened key bits.
type fitOutcome struct {
	losses []float64
	coeffs [][]float64
	key    hpnn.Key
}

// runFit mimics one learningAttack invocation at `site` (softening that
// site's bits plus all later bits as nuisance coefficients) with slicing on
// or off, and returns the complete outcome.
func runFit(white *nn.Network, spec *hpnn.LockSpec, orc *oracle.Oracle, site int,
	cfg Config, disableSlicing bool) fitOutcome {

	cfg.DisableSlicing = disableSlicing
	trainNet := white.CloneForKeys()
	bySite := map[int][]int{}
	for i, pn := range spec.Neurons {
		if pn.Site >= site {
			bySite[pn.Site] = append(bySite[pn.Site], i)
		}
	}
	sites := soften(trainNet, spec, bySite)
	rng := rand.New(rand.NewSource(77))
	x := dataset.UniformInputs(cfg.LearnQueries, trainNet.InSize(), cfg.InputLim, rng)
	y, err := orc.QueryBatch(x)
	if err != nil {
		panic(err) // clean oracle never errors
	}
	defer tensor.PutMatrix(x, y)
	var out fitOutcome
	fitSoft(trainNet, sites, x, y, cfg, rng, orc.Softmax(), func(epoch int, loss float64) bool {
		out.losses = append(out.losses, loss)
		return true
	})
	// Record coefficients in site-ID order to make runs comparable.
	sort.Slice(sites, func(i, j int) bool { return sites[i].flip.SiteID < sites[j].flip.SiteID })
	key := make(hpnn.Key, spec.NumBits())
	for _, s := range sites {
		out.coeffs = append(out.coeffs, s.flip.SoftCoeffs())
		s.flip.Harden()
		for _, si := range s.specIdxs {
			key[si] = s.flip.Bit(spec.Neurons[si].Index)
		}
	}
	out.key = key
	return out
}

// TestFitSoftSliceEquivalence is the acceptance property of the
// frozen-prefix cache: for fuzzed architectures of every family, for every
// slice point the attack can reach (each flip site as the earliest softened
// site), and for both logit and softmax oracles, the sliced fit must
// reproduce the unsliced fit exactly — same per-epoch losses, same final
// coefficients, same recovered key bits. Exact float comparison, no
// tolerance.
func TestFitSoftSliceEquivalence(t *testing.T) {
	seedRng := rand.New(rand.NewSource(701))
	cfg := DefaultConfig()
	cfg.LearnQueries = 48
	cfg.LearnEpochs = 6
	cfg.LearnBatch = 16
	cfg.PlateauEpochs = 3
	for bi, build := range fuzzedEquivNets(seedRng) {
		for _, softmaxOracle := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(800 + bi)))
			net := build(rng)
			lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
			var orc *oracle.Oracle
			if softmaxOracle {
				orc = oracle.NewSoftmax(lm, key)
			} else {
				orc = oracle.New(lm, key)
			}
			white := lm.WhiteBox()
			numSites := white.NumFlipSites()
			for site := 0; site < numSites; site++ {
				has := false
				for _, pn := range lm.Spec.Neurons {
					if pn.Site >= site {
						has = true
						break
					}
				}
				if !has {
					continue
				}
				sliced := runFit(white, &lm.Spec, orc, site, cfg, false)
				full := runFit(white, &lm.Spec, orc, site, cfg, true)
				if len(sliced.losses) != len(full.losses) {
					t.Fatalf("net %d softmax=%v site %d: epoch count %d vs %d",
						bi, softmaxOracle, site, len(sliced.losses), len(full.losses))
				}
				for e := range sliced.losses {
					if sliced.losses[e] != full.losses[e] {
						t.Fatalf("net %d softmax=%v site %d: epoch %d loss %v vs %v",
							bi, softmaxOracle, site, e, sliced.losses[e], full.losses[e])
					}
				}
				if len(sliced.coeffs) != len(full.coeffs) {
					t.Fatalf("net %d site %d: site count mismatch", bi, site)
				}
				for si := range sliced.coeffs {
					for ci := range sliced.coeffs[si] {
						if sliced.coeffs[si][ci] != full.coeffs[si][ci] {
							t.Fatalf("net %d softmax=%v site %d: coeff %d/%d %v vs %v",
								bi, softmaxOracle, site, si, ci,
								sliced.coeffs[si][ci], full.coeffs[si][ci])
						}
					}
				}
				for i := range sliced.key {
					if sliced.key[i] != full.key[i] {
						t.Fatalf("net %d softmax=%v site %d: key bit %d differs",
							bi, softmaxOracle, site, i)
					}
				}
			}
		}
	}
}

// TestDecryptionUnchangedBySlicing runs the whole Algorithm 2 attack with
// and without the activation cache and demands identical recovered keys and
// query counts — slicing is a pure runtime optimization, invisible in every
// attacker-observable output.
func TestDecryptionUnchangedBySlicing(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	net := models.TinyLeNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})

	run := func(disable bool) *Result {
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.DisableSlicing = disable
		res, err := Run(lm.WhiteBox(), lm.Spec, oracle.New(lm, key), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sliced := run(false)
	full := run(true)
	if sliced.Key.Fidelity(key) != 1 {
		t.Fatalf("sliced attack fidelity %.3f", sliced.Key.Fidelity(key))
	}
	for i := range sliced.Key {
		if sliced.Key[i] != full.Key[i] {
			t.Fatalf("key bit %d differs between sliced and full attack", i)
		}
	}
	if sliced.Queries != full.Queries {
		t.Fatalf("query counts differ: %d vs %d", sliced.Queries, full.Queries)
	}
}
