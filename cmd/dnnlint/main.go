// Command dnnlint runs the repository's custom static-analysis suite: the
// pool-ownership, determinism, float-comparison, naked-goroutine,
// package-doc, query-seam, error-flow, span-lifecycle, and
// goroutine-lifecycle analyzers of internal/lint, which machine-enforce
// the invariants the parallel runtime, the oracle accounting, and the
// trace tree rely on (DESIGN.md §10, §15).
//
// Usage:
//
//	dnnlint [-analyzers=...] [-json] [-fix | -diff] [pattern ...]
//
// Patterns are package directories relative to the working directory; a
// trailing /... lints the subtree. With no pattern, ./... is assumed. The
// whole module containing the first pattern is loaded (so cross-package
// types resolve); patterns select which packages' findings are reported.
//
// -json emits the findings as a JSON array of
// {analyzer, file, line, col, message, fixable} records for scripts.
// -fix applies every suggested fix (gofmt-formatted) and rewrites the
// files in place; -diff previews the same rewrites as a unified diff
// without touching anything. Fixes are only attached where they are
// unconditionally safe (see internal/lint), so -fix needs no confirmation.
//
// Exit status: 0 clean, 1 findings reported, 2 load or type-check failure.
// Under -fix, findings that were fixed no longer count against the exit
// status; only unfixable ones do. Under -diff, pending fixes count, so a
// dry run still fails CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dnnlock/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dnnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzerList := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	applyFix := fs.Bool("fix", false, "apply suggested fixes in place")
	diffFix := fs.Bool("diff", false, "preview suggested fixes as a unified diff")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *applyFix && *diffFix {
		fmt.Fprintln(stderr, "dnnlint: -fix and -diff are mutually exclusive")
		return 2
	}
	analyzers := lint.All
	if *analyzerList != "" {
		var err error
		if analyzers, err = lint.ByName(*analyzerList); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load(strings.TrimSuffix(patterns[0], "..."))
	if err != nil {
		fmt.Fprintln(stderr, "dnnlint:", err)
		return 2
	}
	if len(prog.TypeErrors) > 0 {
		for _, te := range prog.TypeErrors {
			fmt.Fprintln(stderr, "dnnlint: type error:", te)
		}
		return 2
	}

	diags := prog.Run(analyzers)
	selected := diags[:0]
	for _, d := range diags {
		if matchesAny(d.Pos.Filename, patterns) {
			selected = append(selected, d)
		}
	}

	switch {
	case *jsonOut:
		return emitJSON(stdout, stderr, selected)
	case *applyFix, *diffFix:
		return emitFixes(prog, stdout, stderr, selected, *applyFix)
	}
	for _, d := range selected {
		fmt.Fprintln(stdout, rel(d))
	}
	if len(selected) > 0 {
		fmt.Fprintf(stderr, "dnnlint: %d finding(s)\n", len(selected))
		return 1
	}
	return 0
}

// jsonDiagnostic is the machine-readable record scripts/check.sh consumes.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func emitJSON(stdout, stderr io.Writer, diags []lint.Diagnostic) int {
	records := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		records = append(records, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relName(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
			Fixable:  d.Fix != nil,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(stderr, "dnnlint:", err)
		return 2
	}
	if len(records) > 0 {
		return 1
	}
	return 0
}

// emitFixes applies (or previews) every suggested fix, then reports the
// findings no fix could address.
func emitFixes(prog *lint.Program, stdout, stderr io.Writer, diags []lint.Diagnostic, write bool) int {
	byFile := map[string][]lint.Diagnostic{}
	var unfixed []lint.Diagnostic
	for _, d := range diags {
		if d.Fix != nil {
			byFile[d.Pos.Filename] = append(byFile[d.Pos.Filename], d)
		} else {
			unfixed = append(unfixed, d)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	fixed := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "dnnlint:", err)
			return 2
		}
		out, n, err := lint.ApplyFixes(prog.Fset, file, src, byFile[file])
		if err != nil {
			fmt.Fprintln(stderr, "dnnlint:", err)
			return 2
		}
		fixed += n
		if write {
			if err := os.WriteFile(file, out, 0o644); err != nil {
				fmt.Fprintln(stderr, "dnnlint:", err)
				return 2
			}
		} else {
			fmt.Fprint(stdout, lint.UnifiedDiff(relName(file), src, out))
		}
	}
	if write {
		fmt.Fprintf(stderr, "dnnlint: applied %d fix(es) in %d file(s)\n", fixed, len(files))
	} else if fixed > 0 {
		fmt.Fprintf(stderr, "dnnlint: %d fix(es) available in %d file(s); run with -fix to apply\n", fixed, len(files))
	}
	for _, d := range unfixed {
		fmt.Fprintln(stdout, rel(d))
	}
	if len(unfixed) > 0 {
		fmt.Fprintf(stderr, "dnnlint: %d finding(s) with no automatic fix\n", len(unfixed))
		return 1
	}
	if !write && fixed > 0 {
		return 1 // a dry run with pending fixes still fails CI
	}
	return 0
}

// matchesAny reports whether the diagnostic file falls under one of the
// requested patterns.
func matchesAny(file string, patterns []string) bool {
	for _, pat := range patterns {
		recursive := strings.HasSuffix(pat, "/...") || pat == "..."
		dir := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if dir == "" || dir == "." {
			return true
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			continue
		}
		fdir := filepath.Dir(file)
		if fdir == abs {
			return true
		}
		if recursive && strings.HasPrefix(fdir+string(filepath.Separator), abs+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// rel renders a diagnostic with a working-directory-relative path when
// possible, keeping CI logs and editor jump-to-error short.
func rel(d lint.Diagnostic) string {
	d.Pos.Filename = relName(d.Pos.Filename)
	return d.String()
}

func relName(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return file
}
