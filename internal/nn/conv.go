package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW-flattened inputs.
//
// The flat input vector holds channels-major data: index c·H·W + y·W + x.
// Weights are stored as an F×(C·KH·KW) matrix so one output activation is a
// dot product between a filter row and an im2col patch.
type Conv2D struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	Stride, Pad   int
	OutH, OutW    int
	W, B          *Param

	lastX *tensor.Matrix // training cache
}

// NewConv2D constructs a convolution layer and computes its output geometry.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: conv output %dx%d is empty", outH, outW))
	}
	return &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		W: NewParam("conv_w", outC, inC*k*k),
		B: NewParam("conv_b", 1, outC),
	}
}

// InitHe fills the kernels with He-normal initialization.
func (c *Conv2D) InitHe(rng *rand.Rand) *Conv2D {
	std := math.Sqrt(2.0 / float64(c.InC*c.KH*c.KW))
	for i := range c.W.W.Data {
		c.W.W.Data[i] = rng.NormFloat64() * std
	}
	return c
}

func (c *Conv2D) Name() string { return "conv2d" }

// InSize returns C·H·W.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// OutSize returns F·OH·OW.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// patch gathers the im2col patch for output position (oy, ox) into dst,
// which must have length InC·KH·KW. Out-of-bounds taps read zero.
func (c *Conv2D) patch(x []float64, oy, ox int, dst []float64) {
	idx := 0
	for ch := 0; ch < c.InC; ch++ {
		base := ch * c.InH * c.InW
		for ky := 0; ky < c.KH; ky++ {
			iy := oy*c.Stride - c.Pad + ky
			for kx := 0; kx < c.KW; kx++ {
				ix := ox*c.Stride - c.Pad + kx
				if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
					dst[idx] = x[base+iy*c.InW+ix]
				} else {
					dst[idx] = 0
				}
				idx++
			}
		}
	}
}

// forwardInto convolves a single flat example into out (length OutSize);
// bias is optional so the JVP path can reuse this as a pure linear map.
// The im2col patch buffer comes from the workspace pool, so repeated calls
// (batches, Jacobian columns) do not allocate.
func (c *Conv2D) forwardInto(x, out []float64, withBias bool) {
	buf := tensor.GetVec(c.InC * c.KH * c.KW)
	defer tensor.PutVec(buf)
	brow := c.B.W.Row(0)
	for oy := 0; oy < c.OutH; oy++ {
		for ox := 0; ox < c.OutW; ox++ {
			c.patch(x, oy, ox, buf)
			for f := 0; f < c.OutC; f++ {
				v := tensor.Dot(c.W.W.Row(f), buf)
				if withBias {
					v += brow[f]
				}
				out[f*c.OutH*c.OutW+oy*c.OutW+ox] = v
			}
		}
	}
}

func (c *Conv2D) forwardOne(x []float64, withBias bool) []float64 {
	out := make([]float64, c.OutSize())
	c.forwardInto(x, out, withBias)
	return out
}

// Forward convolves one example.
func (c *Conv2D) Forward(x []float64, _ *Trace) []float64 {
	checkSize("conv2d", c.InSize(), len(x))
	return c.forwardOne(x, true)
}

// ForwardBatch convolves each row of x.
func (c *Conv2D) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(c, x)
}

// TrainForward is ForwardBatch with input caching.
func (c *Conv2D) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	c.lastX = x
	return c.ForwardBatch(x)
}

// Backward accumulates kernel/bias gradients and returns dX.
func (c *Conv2D) Backward(dy *tensor.Matrix) *tensor.Matrix {
	x := c.lastX
	if x == nil {
		panic("nn: Conv2D.Backward before TrainForward")
	}
	dx := tensor.New(dy.Rows, c.InSize())
	buf := tensor.GetVec(c.InC * c.KH * c.KW)
	defer tensor.PutVec(buf)
	plane := c.OutH * c.OutW
	for r := 0; r < dy.Rows; r++ {
		xr := x.Row(r)
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for oy := 0; oy < c.OutH; oy++ {
			for ox := 0; ox < c.OutW; ox++ {
				c.patch(xr, oy, ox, buf)
				for f := 0; f < c.OutC; f++ {
					g := dyr[f*plane+oy*c.OutW+ox]
					//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
					if g == 0 {
						continue
					}
					c.B.G.Data[f] += g
					wg := c.W.G.Row(f)
					wr := c.W.W.Row(f)
					// dW += g·patch and dX scatter += g·W.
					idx := 0
					for ch := 0; ch < c.InC; ch++ {
						base := ch * c.InH * c.InW
						for ky := 0; ky < c.KH; ky++ {
							iy := oy*c.Stride - c.Pad + ky
							for kx := 0; kx < c.KW; kx++ {
								ix := ox*c.Stride - c.Pad + kx
								wg[idx] += g * buf[idx]
								if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
									dxr[base+iy*c.InW+ix] += g * wr[idx]
								}
								idx++
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// JVP convolves the value with bias and every tangent column without bias
// (the convolution is linear, so tangents transform exactly). Tangents are
// staged through pooled transposes so each column convolves contiguously.
func (c *Conv2D) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := c.forwardOne(x, true)
	p := j.Cols
	jT := tensor.GetMatrix(p, c.InSize())
	j.TransposeInto(jT)
	jyT := tensor.GetMatrix(p, c.OutSize())
	for t := 0; t < p; t++ {
		c.forwardInto(jT.Row(t), jyT.Row(t), false)
	}
	jy := tensor.New(c.OutSize(), p)
	jyT.TransposeInto(jy)
	tensor.PutMatrix(jT, jyT)
	return y, jy
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
