// Package worker exercises the golife analyzer: goroutines with a provable
// termination edge stay silent; never-closed ranges, signal-free infinite
// loops, and unresolvable bodies are marked.
package worker

import "fmt"

func work() {}

// Loop-free body: terminates trivially (the WaitGroup idiom lands here —
// the Done is just a deferred call in a straight-line body).
func spawnOneShot(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

// Bounded loop: condition-driven.
func spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// Range over a slice: bounded.
func spawnSliceRange(xs []int) {
	go func() {
		for range xs {
			work()
		}
	}()
}

// Range over a channel this package closes: the range ends when the
// producer closes it.
func spawnDrain() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	close(ch)
}

// Range over a channel nobody closes: the goroutine can never exit.
func spawnStuckDrain(ch chan int) {
	go func() { // want "goroutine ranges over channel ch that no function in this package closes: no provable termination"
		for v := range ch {
			_ = v
		}
	}()
}

// Infinite loop with a comma-ok receive from a closed channel and an exit:
// the close releases the receive and the ok=false arm returns.
func spawnCollector() {
	reqs := make(chan int)
	go func() {
		for {
			v, ok := <-reqs
			if !ok {
				return
			}
			_ = v
		}
	}()
	close(reqs)
}

// Infinite loop parked on a Done() receive (context-style).
type ctxLike struct{ done chan struct{} }

func (c *ctxLike) Done() <-chan struct{} { return c.done }

func spawnUntilDone(c *ctxLike, tick chan int) {
	go func() {
		for {
			select {
			case <-c.Done():
				return
			case v := <-tick:
				_ = v
			}
		}
	}()
}

// Infinite loop with neither an exit nor a closing signal.
func spawnSpinner() {
	go func() { // want "goroutine loops forever with no exit on a closed-channel or Done\\(\\) receive: no provable termination"
		for {
			work()
		}
	}()
}

// An exit alone is not enough: the receive it waits on must be releasable.
func spawnStuckReceive(ch chan int) {
	go func() { // want "goroutine loops forever with no exit on a closed-channel or Done\\(\\) receive: no provable termination"
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// A named method in this package is resolved to its declaration, and the
// close is matched on the field object — the planner's collector pattern:
// the loop receives from p.reqs, stop() closes p.reqs, both anchor to the
// same field.
type pool struct{ reqs chan int }

func (p *pool) collect() {
	for {
		v, ok := <-p.reqs
		if !ok {
			return
		}
		_ = v
	}
}

func (p *pool) start() {
	go p.collect()
}

func (p *pool) stop() {
	close(p.reqs)
}

// Witnesses are anchored to objects, not values: a channel passed into a
// named function is the callee's parameter object, which nothing closes —
// the close in the caller closes the caller's variable.
func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func spawnNamed(ch chan int) {
	go pump(ch) // want "goroutine ranges over channel ch that no function in this package closes: no provable termination"
}

// A call into another package cannot be proven here.
func spawnExternal() {
	go fmt.Println("x") // want "goroutine calls a function outside this package: termination cannot be proven here"
}
