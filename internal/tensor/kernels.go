package tensor

import "fmt"

// Cache-blocked matrix kernels, generic over the element width (Float).
//
// Every kernel preserves the reference serial accumulation order: each
// destination element gathers its terms in ascending order of the shared
// dimension, and terms whose left-operand element is exactly zero are
// skipped (matching MatMulInto's historical sparsity shortcut, and keeping
// signed zeros and non-finite values reproducible). Row blocking and column
// tiling only regroup independent element chains, and the parallel runtime
// (parallel.go) partitions whole destination rows across workers, so the
// result is bit-for-bit identical at every fan-out width. The float64
// instantiation compiles to the same IEEE operation sequence as the
// historical float64-only kernels, so genericity costs no exactness.

// jBlockCols is the destination tile width: four destination rows of
// jBlockCols elements plus the matching b-row slice stay L1-resident.
const jBlockCols = 512

// zeroVec clears v (compiles to a memclr).
func zeroVec[T Float](v []T) {
	for i := range v {
		v[i] = 0
	}
}

// axpyBlock computes dst += a*x over a tile.
func axpyBlock[T Float](dst []T, a T, x []T) {
	for j, v := range x {
		dst[j] += a * v
	}
}

// matMulRows computes rows [lo, hi) of dst = a·b (dst ±= when accumulate)
// with 4-way row blocking and jBlockCols column tiling: each pass streams
// one b row against four a scalars, quartering the b traffic of the naive
// ikj loop.
func matMulRows[T Float](dst, a, b *Mat[T], lo, hi int, accumulate bool) {
	// The shape-stenciled instantiation of this loop measurably trails
	// concrete float64 codegen (~15-30% on BenchmarkMatMulInto), and
	// float64 is the exact tier every paper-facing path runs on, so the
	// float64 width dispatches to a statement-identical concrete copy.
	if d, ok := any(dst).(*Mat[float64]); ok {
		matMulRowsF64(d, any(a).(*Mat[float64]), any(b).(*Mat[float64]), lo, hi, accumulate)
		return
	}
	kn, jn := a.Cols, b.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		if !accumulate {
			zeroVec(d0)
			zeroVec(d1)
			zeroVec(d2)
			zeroVec(d3)
		}
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		for j0 := 0; j0 < jn; j0 += jBlockCols {
			j1 := j0 + jBlockCols
			if j1 > jn {
				j1 = jn
			}
			for k := 0; k < kn; k++ {
				v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				brow := b.Data[k*jn+j0 : k*jn+j1]
				if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
					e0, e1, e2, e3 := d0[j0:j1], d1[j0:j1], d2[j0:j1], d3[j0:j1]
					for j, bv := range brow {
						e0[j] += v0 * bv
						e1[j] += v1 * bv
						e2[j] += v2 * bv
						e3[j] += v3 * bv
					}
					continue
				}
				// Mixed zero/non-zero block: fall back to guarded rows so
				// the zero-skip semantics match the serial path exactly.
				if v0 != 0 {
					axpyBlock(d0[j0:j1], v0, brow)
				}
				if v1 != 0 {
					axpyBlock(d1[j0:j1], v1, brow)
				}
				if v2 != 0 {
					axpyBlock(d2[j0:j1], v2, brow)
				}
				if v3 != 0 {
					axpyBlock(d3[j0:j1], v3, brow)
				}
			}
		}
	}
	for ; i < hi; i++ {
		drow := dst.Row(i)
		if !accumulate {
			zeroVec(drow)
		}
		arow := a.Row(i)
		for j0 := 0; j0 < jn; j0 += jBlockCols {
			j1 := j0 + jBlockCols
			if j1 > jn {
				j1 = jn
			}
			for k, av := range arow {
				if av == 0 {
					continue
				}
				axpyBlock(drow[j0:j1], av, b.Data[k*jn+j0:k*jn+j1])
			}
		}
	}
}

// matMulRowsF64 is the concrete float64 copy of matMulRows' loop — same
// statements, same accumulation order, same zero-skip guards — kept so the
// exact tier pays concrete codegen instead of the shape-stenciled
// instantiation's register pressure. The kernel-equivalence tests pin it
// bit-identical to the generic body.
func matMulRowsF64(dst, a, b *Mat[float64], lo, hi int, accumulate bool) {
	kn, jn := a.Cols, b.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		if !accumulate {
			zeroVec(d0)
			zeroVec(d1)
			zeroVec(d2)
			zeroVec(d3)
		}
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		for j0 := 0; j0 < jn; j0 += jBlockCols {
			j1 := j0 + jBlockCols
			if j1 > jn {
				j1 = jn
			}
			for k := 0; k < kn; k++ {
				v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				brow := b.Data[k*jn+j0 : k*jn+j1]
				if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
					e0, e1, e2, e3 := d0[j0:j1], d1[j0:j1], d2[j0:j1], d3[j0:j1]
					for j, bv := range brow {
						e0[j] += v0 * bv
						e1[j] += v1 * bv
						e2[j] += v2 * bv
						e3[j] += v3 * bv
					}
					continue
				}
				// Mixed zero/non-zero block: fall back to guarded rows so
				// the zero-skip semantics match the serial path exactly.
				if v0 != 0 {
					axpyBlock(d0[j0:j1], v0, brow)
				}
				if v1 != 0 {
					axpyBlock(d1[j0:j1], v1, brow)
				}
				if v2 != 0 {
					axpyBlock(d2[j0:j1], v2, brow)
				}
				if v3 != 0 {
					axpyBlock(d3[j0:j1], v3, brow)
				}
			}
		}
	}
	for ; i < hi; i++ {
		drow := dst.Row(i)
		if !accumulate {
			zeroVec(drow)
		}
		arow := a.Row(i)
		for j0 := 0; j0 < jn; j0 += jBlockCols {
			j1 := j0 + jBlockCols
			if j1 > jn {
				j1 = jn
			}
			for k, av := range arow {
				if av == 0 {
					continue
				}
				axpyBlock(drow[j0:j1], av, b.Data[k*jn+j0:k*jn+j1])
			}
		}
	}
}

// matMulABTRows computes rows [lo, hi) of dst = a·bᵀ (dst ±= when
// accumulate) as blocked dot products: one a row streams against four b
// rows at a time.
func matMulABTRows[T Float](dst, a, b *Mat[T], lo, hi int, accumulate bool) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
			var s0, s1, s2, s3 T
			for k, av := range ar {
				if av == 0 {
					continue
				}
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			if accumulate {
				dr[j] += s0
				dr[j+1] += s1
				dr[j+2] += s2
				dr[j+3] += s3
			} else {
				dr[j], dr[j+1], dr[j+2], dr[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < b.Rows; j++ {
			br := b.Row(j)
			var s T
			for k, av := range ar {
				if av == 0 {
					continue
				}
				s += av * br[k]
			}
			if accumulate {
				dr[j] += s
			} else {
				dr[j] = s
			}
		}
	}
}

// matMulATBRows computes rows [lo, hi) of dst = aᵀ·b (dst ±= when
// accumulate) by streaming the rows of a and b once per destination shard:
// contribution k lands on destination row i as dst[i] += a[k][i]·b[k].
func matMulATBRows[T Float](dst, a, b *Mat[T], lo, hi int, accumulate bool) {
	if !accumulate {
		for i := lo; i < hi; i++ {
			zeroVec(dst.Row(i))
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			if av := arow[i]; av != 0 {
				axpyBlock(dst.Row(i), av, brow)
			}
		}
	}
}

// MatMulABT returns a·bᵀ without materializing the transpose.
func MatMulABT[T Float](a, b *Mat[T]) *Mat[T] {
	out := NewOf[T](a.Rows, b.Rows)
	MatMulABTInto(out, a, b)
	return out
}

// MatMulABTInto computes dst = a·bᵀ, reusing dst's storage. The transpose
// is never materialized: element (i, j) is the dot product of a's row i and
// b's row j, so both operands stream contiguously.
func MatMulABTInto[T Float](dst, a, b *Mat[T]) {
	checkABT(dst, a, b)
	if w := shardWidth(a.Rows, a.Rows*b.Rows*a.Cols); w <= 1 {
		matMulABTRows(dst, a, b, 0, a.Rows, false)
	} else {
		parallelRows(w, a.Rows, func(lo, hi int) { matMulABTRows(dst, a, b, lo, hi, false) })
	}
}

// MatMulABTAddInto computes dst += a·bᵀ.
func MatMulABTAddInto[T Float](dst, a, b *Mat[T]) {
	checkABT(dst, a, b)
	if w := shardWidth(a.Rows, a.Rows*b.Rows*a.Cols); w <= 1 {
		matMulABTRows(dst, a, b, 0, a.Rows, true)
	} else {
		parallelRows(w, a.Rows, func(lo, hi int) { matMulABTRows(dst, a, b, lo, hi, true) })
	}
}

// MatMulATB returns aᵀ·b without materializing the transpose.
func MatMulATB[T Float](a, b *Mat[T]) *Mat[T] {
	out := NewOf[T](a.Cols, b.Cols)
	MatMulATBInto(out, a, b)
	return out
}

// MatMulATBInto computes dst = aᵀ·b, reusing dst's storage. This is the
// gradient-accumulation shape (dW = dYᵀ·X) done transpose-free.
func MatMulATBInto[T Float](dst, a, b *Mat[T]) {
	checkATB(dst, a, b)
	if w := shardWidth(a.Cols, a.Rows*a.Cols*b.Cols); w <= 1 {
		matMulATBRows(dst, a, b, 0, a.Cols, false)
	} else {
		parallelRows(w, a.Cols, func(lo, hi int) { matMulATBRows(dst, a, b, lo, hi, false) })
	}
}

// MatMulATBAddInto computes dst += aᵀ·b.
func MatMulATBAddInto[T Float](dst, a, b *Mat[T]) {
	checkATB(dst, a, b)
	if w := shardWidth(a.Cols, a.Rows*a.Cols*b.Cols); w <= 1 {
		matMulATBRows(dst, a, b, 0, a.Cols, true)
	} else {
		parallelRows(w, a.Cols, func(lo, hi int) { matMulATBRows(dst, a, b, lo, hi, true) })
	}
}

func checkABT[T Float](dst, a, b *Mat[T]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch %dx%d · (%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

func checkATB[T Float](dst, a, b *Mat[T]) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch (%dx%d)ᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}
