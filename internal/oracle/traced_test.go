package oracle

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"dnnlock/internal/obs"
	"dnnlock/internal/tensor"
)

// tallyCounter is a Counter that just accumulates.
type tallyCounter struct {
	n atomic.Int64
	r atomic.Int64
}

func (c *tallyCounter) AddQueries(n int64) { c.n.Add(n) }
func (c *tallyCounter) AddRounds(n int64)  { c.r.Add(n) }

func TestTracedMirrorsCounts(t *testing.T) {
	o, _ := newTestOracle(70)
	var c tallyCounter
	tr := Trace(o, &c)
	x := []float64{0.1, 0.2, 0.3, 0.4}
	mustQuery(t, tr, x)
	xb := tensor.GetMatrix(5, 4)
	for i := 0; i < 5; i++ {
		xb.SetRow(i, x)
	}
	yb := mustQueryBatch(t, tr, xb)
	tensor.PutMatrix(yb)
	tensor.PutMatrix(xb)
	if got := c.n.Load(); got != 6 {
		t.Fatalf("counter saw %d queries, want 6", got)
	}
	if got := c.r.Load(); got != 2 {
		t.Fatalf("counter saw %d rounds, want 2 (one Query + one QueryBatch)", got)
	}
	if got := tr.Queries(); got != 6 {
		t.Fatalf("inner counter saw %d queries, want 6", got)
	}
	if got := tr.Rounds(); got != 2 {
		t.Fatalf("inner counter saw %d rounds, want 2", got)
	}
	tr.ResetCounter()
	if tr.Queries() != 0 {
		t.Fatal("ResetCounter did not reach the inner oracle")
	}
	if tr.Rounds() != 0 {
		t.Fatal("ResetCounter must zero the round counter too")
	}
	if c.n.Load() != 6 {
		t.Fatal("ResetCounter must not reset the attached Counter")
	}
	if tr.Softmax() != o.Softmax() {
		t.Fatal("Softmax mode not passed through")
	}
}

func TestTraceNilCounterIsIdentity(t *testing.T) {
	o, _ := newTestOracle(71)
	if got := Trace(o, nil); got != Interface(o) {
		t.Fatal("Trace(o, nil) must return o unchanged")
	}
}

// TestTracedSpanConcurrent drives a Traced oracle whose Counter is a live
// trace span from many goroutines — single queries and batches (whose rows
// the oracle itself shards across workers) — under the race detector, and
// checks the span's count is exact.
func TestTracedSpanConcurrent(t *testing.T) {
	o, _ := newTestOracle(72)
	var buf bytes.Buffer
	trc := obs.New(obs.WithSink(&buf))
	defer trc.Close()
	sp := trc.Start("oracle")
	tr := Trace(o, sp)

	const workers = 8
	const perWorker = 20
	const batchRows = 3
	var wg sync.WaitGroup
	x := []float64{0.4, -0.2, 0.7, 0.1}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := tr.Query(x); err != nil {
					t.Error(err)
					return
				}
				xb := tensor.GetMatrix(batchRows, len(x))
				for r := 0; r < batchRows; r++ {
					xb.SetRow(r, x)
				}
				yb, err := tr.QueryBatch(xb)
				if err != nil {
					tensor.PutMatrix(yb) // nil on error; PutMatrix is nil-safe
					tensor.PutMatrix(xb)
					t.Error(err)
					return
				}
				tensor.PutMatrix(yb)
				tensor.PutMatrix(xb)
			}
		}()
	}
	wg.Wait()
	want := int64(workers * perWorker * (1 + batchRows))
	if got := sp.Queries(); got != want {
		t.Fatalf("span counted %d queries, want %d", got, want)
	}
	if got := tr.Queries(); got != want {
		t.Fatalf("oracle counted %d queries, want %d", got, want)
	}
	sp.End()
	trace, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Queries != want {
		t.Fatalf("exported span record %+v, want queries=%d", trace.Spans, want)
	}
}

// TestTracedComposesWithFaultDecorators checks the Counter still sees
// queries that the fault decorators reject: exercising the device counts
// even when the response is degraded or dropped.
func TestTracedComposesWithFaultDecorators(t *testing.T) {
	o, _ := newTestOracle(73)
	var c tallyCounter
	tr := Trace(Budgeted(o, 2), &c)
	x := []float64{0.1, 0.2, 0.3, 0.4}
	mustQuery(t, tr, x)
	mustQuery(t, tr, x)
	if _, err := tr.Query(x); err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if got := c.n.Load(); got != 3 {
		t.Fatalf("counter saw %d queries, want 3 (failed query still counts)", got)
	}
}
