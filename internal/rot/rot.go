// Package rot simulates the hardware root-of-trust substrate the paper
// assumes (§1, §2.3): a tamper-proof key store (TPM / HSM / tamper-proof
// memory on the accelerator) that is provisioned once with the secret key
// and thereafter only evaluates the locked model. The package deliberately
// exposes no key read-back API — the adversary-visible surface is exactly
// inputs-in, logits-out, plus an HMAC-based attestation so a licensee can
// check it is talking to a genuine device.
package rot

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
)

// ErrNotBound is returned when Evaluate is called before Bind.
var ErrNotBound = errors.New("rot: no model bound to this device")

// Device is a simulated accelerator with a sealed key. The zero value is
// unusable; create devices with Provision.
type Device struct {
	id string

	mu    sync.Mutex
	key   hpnn.Key    // sealed: never returned by any method
	mac   []byte      // device secret for attestation
	model *nn.Network // keyed network, built at Bind time
}

// Provision manufactures a device: the IP owner burns the secret key and an
// attestation secret into tamper-proof memory.
func Provision(deviceID string, key hpnn.Key, attestationSecret []byte) *Device {
	sealed := key.Clone()
	mac := make([]byte, len(attestationSecret))
	copy(mac, attestationSecret)
	return &Device{id: deviceID, key: sealed, mac: mac}
}

// ID returns the public device identifier.
func (d *Device) ID() string { return d.id }

// Bind installs a locked model onto the device. The device combines the
// public model with its sealed key internally; the keyed network never
// leaves the device.
func (d *Device) Bind(model *hpnn.LockedModel) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if model.Spec.NumBits() != len(d.key) {
		return errors.New("rot: key length does not match lock spec")
	}
	d.model = model.Apply(d.key)
	return nil
}

// Evaluate runs one inference with the sealed key applied and returns the
// logits. Safe for concurrent use after Bind.
func (d *Device) Evaluate(x []float64) ([]float64, error) {
	d.mu.Lock()
	m := d.model
	d.mu.Unlock()
	if m == nil {
		return nil, ErrNotBound
	}
	return m.Forward(x), nil
}

// Attest returns HMAC-SHA256(secret, deviceID ‖ nonce ‖ counter), proving
// possession of the provisioning secret without revealing it. The counter
// guards against replay of earlier attestations with the same nonce.
func (d *Device) Attest(nonce []byte, counter uint64) []byte {
	h := hmac.New(sha256.New, d.mac)
	h.Write([]byte(d.id))
	h.Write(nonce)
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	h.Write(c[:])
	return h.Sum(nil)
}

// VerifyAttestation checks a quote produced by Attest against the expected
// provisioning secret (run by the IP owner, who knows the secret).
func VerifyAttestation(deviceID string, secret, nonce []byte, counter uint64, quote []byte) bool {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte(deviceID))
	h.Write(nonce)
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	h.Write(c[:])
	return hmac.Equal(h.Sum(nil), quote)
}
