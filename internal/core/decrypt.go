package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// Run executes the DNN decryption attack (Algorithm 2) against the oracle:
// layer by layer in topological order, it attempts the algebraic
// key_bit_inference on every protected neuron, falls back to the
// learning_attack for ⊥ bits, and gates progression to the next layer on
// key_vector_validation, repairing failures with error_correction. It
// returns the recovered key together with query counts and the Figure 3
// timing breakdown.
//
// The whiteBox argument is the adversary's downloaded model (weights with
// identity flips); it is cloned, never mutated.
//
// Run never panics on oracle failure: transient device errors are retried
// (cfg.QueryRetries) and, if persistent, the affected decision degrades to
// ⊥ and falls through to the learning attack (counted in Result.Degraded);
// terminal errors — oracle.ErrBudgetExhausted, hard device faults — abort
// the run with a returned error.
func Run(whiteBox *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config) (*Result, error) {
	if spec.Scheme != hpnn.Negation {
		return RunVariant(whiteBox, spec, orc, cfg)
	}
	a := New(whiteBox, spec, orc, cfg)
	return a.run()
}

func (a *Attack) run() (*Result, error) {
	//lint:ignore determinism telemetry timer for Result.Time; the value never feeds the numerics
	start := time.Now()
	startQ := a.orc.Queries()
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	bySite := a.spec.SiteBits()

	var reports []SiteReport
	var pendingBits []int  // bits decided but not yet validated
	var pendingSites []int // their flip sites
	for _, site := range a.orderedSites() {
		bits := bySite[site]
		rep := SiteReport{Site: site, Bits: len(bits)}

		// Phase 1: algebraic inference (Algorithm 1) on every bit, in
		// parallel across neurons (§4.1).
		inferred := make([]bitValue, len(bits))
		if a.cfg.DisableAlgebraic {
			for i := range inferred {
				inferred[i] = bitBottom
			}
		} else {
			var inferErr error
			a.trackProc(metrics.ProcKeyBitInference, func() {
				inferErr = a.parallelForErr(len(bits), rng.Int63(), func(i int, wrng *rand.Rand) error {
					var err error
					inferred[i], err = a.keyBitInference(bits[i], wrng)
					return err
				})
			})
			if inferErr != nil {
				return nil, fmt.Errorf("core: site %d key_bit_inference: %w", site, inferErr)
			}
		}
		var unresolved []int
		for i, v := range inferred {
			switch v {
			case bitZero, bitOne:
				a.setBit(bits[i], v == bitOne, 1, OriginAlgebraic)
				rep.Algebraic++
			default:
				unresolved = append(unresolved, bits[i])
			}
		}
		a.debugf("site %d: %d bits, %d algebraic, %d unresolved\n", site, len(bits), rep.Algebraic, len(unresolved))

		// Phase 2: learning attack on the ⊥ bits (§3.6).
		if len(unresolved) > 0 {
			var learnErr error
			a.trackProc(metrics.ProcLearningAttack, func() {
				_, learnErr = a.learningAttack(site, unresolved, rng)
			})
			if learnErr != nil {
				return nil, fmt.Errorf("core: site %d learning_attack: %w", site, learnErr)
			}
			rep.Learned = len(unresolved)
		}

		pendingBits = append(pendingBits, bits...)
		pendingSites = append(pendingSites, site)

		// Phase 3: validate the pending group, correcting errors until it
		// passes (Algorithm 2 lines 9–10). When the topology offers no
		// admissible probe yet (mid residual block), defer to the next
		// site and validate the block as one unit.
		if _, mode := a.validationProbe(pendingSites); mode == modeDefer {
			reports = append(reports, rep)
			continue
		}
		learnQueries := a.cfg.LearnQueries
		valid := false
		for round := 0; round <= a.cfg.MaxCorrectionRounds; round++ {
			var valErr error
			a.trackProc(metrics.ProcKeyVectorValidation, func() {
				rep.ValidationRuns++
				valid, valErr = a.keyVectorValidation(a.white, pendingSites, rng)
			})
			if valErr != nil {
				return nil, fmt.Errorf("core: site %d key_vector_validation: %w", site, valErr)
			}
			if valid {
				break
			}
			fixed := false
			var corrErr error
			a.trackProc(metrics.ProcErrorCorrection, func() {
				fixed, corrErr = a.errorCorrection(pendingSites, a.decidedBits(), rng)
			})
			if corrErr != nil {
				return nil, fmt.Errorf("core: site %d error_correction: %w", site, corrErr)
			}
			if fixed {
				// The committed candidate already passed validation inside
				// errorCorrection.
				rep.Corrected++
				valid = true
				break
			}
			// Correction exhausted its Hamming budget: re-run the learning
			// attack with a doubled query budget on the least certain bits
			// before trying again.
			if round == a.cfg.MaxCorrectionRounds {
				return nil, fmt.Errorf("core: site %d failed validation after %d correction rounds", site, round+1)
			}
			learnQueries *= 2
			relearn := lowConfidenceBits(a, pendingBits)
			if len(relearn) == 0 {
				relearn = unresolved
			}
			if len(relearn) > 0 {
				var relearnErr error
				a.trackProc(metrics.ProcLearningAttack, func() {
					saved := a.cfg.LearnQueries
					a.cfg.LearnQueries = learnQueries
					relearnErr = a.relearnBySite(relearn, rng)
					a.cfg.LearnQueries = saved
				})
				if relearnErr != nil {
					return nil, fmt.Errorf("core: site %d relearn: %w", site, relearnErr)
				}
			}
		}
		if !valid {
			return nil, fmt.Errorf("core: site %d failed validation", site)
		}
		pendingBits = pendingBits[:0]
		pendingSites = pendingSites[:0]
		reports = append(reports, rep)
	}

	eq, eqErr := a.directCompare(a.white, rng)
	res := &Result{
		Key:     a.CurrentKey(),
		Origins: append([]BitOrigin(nil), a.origins...),
		Queries: a.orc.Queries() - startQ,
		//lint:ignore determinism telemetry: elapsed wall time reported to the operator, not used in computation
		Time:          time.Since(start),
		Breakdown:     a.bd,
		QueriesByProc: a.queriesByProc,
		Sites:         reports,
		Equivalent:    eq,
		Degraded:      int(a.degraded.Load()),
	}
	if eqErr != nil {
		return res, fmt.Errorf("core: final equivalence check: %w", eqErr)
	}
	if !res.Equivalent {
		return res, fmt.Errorf("core: recovered key is not functionally equivalent to the oracle")
	}
	return res, nil
}

// lowConfidenceBits returns the bits whose confidence is below the
// settling threshold, the natural relearning targets.
func lowConfidenceBits(a *Attack, bits []int) []int {
	var out []int
	for _, b := range bits {
		if a.confidence[b] < a.cfg.ConfidenceThreshold {
			out = append(out, b)
		}
	}
	return out
}

// relearnBySite reruns the learning attack for the given bits, one site at
// a time (learningAttack softens a single flip layer per call).
func (a *Attack) relearnBySite(bits []int, rng *rand.Rand) error {
	bySite := make(map[int][]int)
	sites := make([]int, 0, len(bySite))
	for _, b := range bits {
		s := a.spec.Neurons[b].Site
		if _, seen := bySite[s]; !seen {
			sites = append(sites, s)
		}
		bySite[s] = append(bySite[s], b)
	}
	// Each learning attack advances the shared rng and mutates the network,
	// so the site order must be reproducible across runs.
	sort.Ints(sites)
	for _, site := range sites {
		if _, err := a.learningAttack(site, bySite[site], rng); err != nil {
			return err
		}
	}
	return nil
}
