package core

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/tensor"
)

// Validation probes the oracle where the network function actually bends:
// the zero sets of ReLU *inputs*. For a directly-gated lockable layer
// (dense/conv stacks) this coincides with the paper's "hyperplane induced
// by η_{i+1,j}"; for residual blocks, whose post-add rectifier mixes the
// body with the shortcut, it is the correct generalization — the flip
// output itself is not a kink there.
//
// A ReLU site is an admissible probe for a group of just-decided flip
// sites when every flip upstream of it is either already decided or is the
// flip it directly gates (whose negation/scaling bit cannot move the kink,
// Lemma 1). When no admissible-and-informative probe exists — e.g. between
// the two flips inside one residual block — validation is deferred and the
// sites are validated together at the block boundary.

// validation modes.
const (
	modeDefer  = iota // no admissible probe yet: postpone validation
	modeKink          // probe the next admissible ReLU site's kinks
	modeDirect        // all bits decided: compare outputs directly
)

// validationProbe selects how to validate the pending group of flip sites.
func (a *Attack) validationProbe(groupSites []int) (reluSite int, mode int) {
	if _, hasLater := a.nextSiteWithUndecided(); !hasLater {
		return 0, modeDirect
	}
	layout := a.white.SiteLayout()
	decidedFlip := a.decidedFlipSites()
	group := make(map[int]bool, len(groupSites))
	for _, s := range groupSites {
		group[s] = true
	}
	lastGroupEvent := -1
	for i, ev := range layout {
		if ev.IsFlip && group[ev.ID] {
			lastGroupEvent = i
		}
	}
	for i, ev := range layout {
		if ev.IsFlip || i <= lastGroupEvent {
			continue
		}
		admissible := true
		informative := false
		for j := 0; j < i; j++ {
			f := layout[j]
			if !f.IsFlip {
				continue
			}
			gates := f.Seq == ev.Seq && f.Pos == ev.Pos-1
			if !decidedFlip[f.ID] && !gates {
				admissible = false
				break
			}
			if group[f.ID] && !gates {
				informative = true
			}
		}
		if admissible && informative {
			return ev.ID, modeKink
		}
	}
	return 0, modeDefer
}

// decidedFlipSites reports, per flip site, whether all its protected bits
// are decided (unprotected sites count as decided).
func (a *Attack) decidedFlipSites() map[int]bool {
	out := make(map[int]bool, a.white.NumFlipSites())
	for s := 0; s < a.white.NumFlipSites(); s++ {
		out[s] = true
	}
	for i, pn := range a.spec.Neurons {
		if !a.decided[i] {
			out[pn.Site] = false
		}
	}
	return out
}

// keyVectorValidation checks the candidate key currently written into net
// for the pending group of sites (§3.7). The caller must have confirmed a
// probe exists via validationProbe. A non-nil error is terminal; a
// hyperplane vote degraded by persistent transient failures simply abstains.
func (a *Attack) keyVectorValidation(net *nn.Network, groupSites []int, rng *rand.Rand) (bool, error) {
	reluSite, mode := a.validationProbe(groupSites)
	switch mode {
	case modeDirect:
		dsp := a.phase.ChildDetail("direct_compare")
		eq, err := a.directCompare(dsp, net, rng)
		dsp.End(obs.Bool("equivalent", eq))
		return eq, err
	case modeDefer:
		// Nothing to probe: treat as failure so the caller notices misuse.
		return false, nil
	}
	n := net.ReLUs()[reluSite].N
	sample := a.cfg.ValidationNeurons
	if sample > n {
		sample = n
	}
	neurons := rng.Perm(n)[:sample]

	var votes, participants atomic.Int64
	var err error
	// Concurrent votes coalesce: each vote's kink+background probe group
	// rides a shared oracle batch with the other workers' groups, so the
	// phase's round count scales with batches, not votes.
	a.withCoalescer(func() {
		err = a.parallelForErr(len(neurons), rng.Int63(), func(i int, wrng *rand.Rand) error {
			detected, ok, err := a.hyperplaneVote(net, reluSite, neurons[i], wrng)
			if err != nil {
				if err = a.fallthroughBottom(err); err != nil {
					return err
				}
				return nil // degraded vote: abstain
			}
			if !ok {
				return nil
			}
			participants.Add(1)
			if detected {
				votes.Add(1)
			}
			return nil
		})
	})
	if err != nil {
		return false, err
	}
	p := participants.Load()
	a.log.Debug("validation vote", "probe_relu", reluSite,
		"votes", votes.Load(), "participants", p)
	if p < 3 {
		// Too few observable hyperplanes to judge: suspicious, reject.
		return false, nil
	}
	return float64(votes.Load()) >= a.cfg.ValidationMajority*float64(p), nil
}

// nextSiteWithUndecided reports whether any spec bit is still undecided.
func (a *Attack) nextSiteWithUndecided() (int, bool) {
	for i, pn := range a.spec.Neurons {
		if !a.decided[i] {
			return pn.Site, true
		}
	}
	return 0, false
}

// hyperplaneVote checks whether the oracle has a kink where the candidate
// network predicts one for ReLU input (reluSite, j): it finds a white-box
// critical point x° of that input, then measures the second difference of
// the oracle output across x° along a direction that moves the input. A
// matching hyperplane bends the oracle output exactly at x°; a wrong
// prefix key leaves the oracle locally affine there. A control second
// difference away from x° calibrates background curvature (attention
// blocks) and unrelated hyperplanes.
//
// Under the bias-shift and weight-perturbation variants, the undecided key
// bit of the flip gating this ReLU moves the kink, so the vote accepts a
// kink at either candidate location.
func (a *Attack) hyperplaneVote(net *nn.Network, reluSite, j int, rng *rand.Rand) (detected, ok bool, err error) {
	vsp := a.phase.ChildDetail("vote", obs.Int("relu", reluSite), obs.Int("neuron", j))
	detected, ok, err = a.hyperplaneVoteSpanned(vsp, net, reluSite, j, rng)
	vsp.End(obs.Bool("detected", detected), obs.Bool("participated", ok))
	return detected, ok, err
}

func (a *Attack) hyperplaneVoteSpanned(vsp *obs.Span, net *nn.Network, reluSite, j int, rng *rand.Rand) (detected, ok bool, err error) {
	candidates := []*nn.Network{net}
	if a.ownHyperplaneMoves() {
		if gate := a.directGatedFlip(reluSite); gate >= 0 {
			if si, protected := a.specIndexOf(gate, j); protected && !a.decided[si] {
				alt := a.applier.clone(net)
				a.applier.apply(alt, a.spec.Neurons[si], si, true)
				candidates = append(candidates, alt)
			}
		}
	}
	participated := false
	for _, cand := range candidates {
		// A boundary may be unobservable in one region (covered by a
		// max pool, dead downstream path); per Lemma 3, retry critical
		// points in other regions until the white box confirms the kink is
		// sensitized there.
		for try := 0; try < a.cfg.MaxCriticalTries; try++ {
			x0, found := searchCriticalPointReLU(cand, reluSite, j, a.cfg, rng)
			if !found {
				a.log.Debug("no critical point for vote", "relu", reluSite, "neuron", j)
				break
			}
			v := a.voteDirection(cand, x0, reluSite, j, rng)
			d := a.cfg.probeStep(a.cfg.ValidationDelta)
			ctrl := tensor.VecClone(x0)
			tensor.AXPY(3*d, v, ctrl)

			// The white-box observability gate involves no oracle queries
			// and keeps the clean threshold.
			kinkW := secondDifferenceOf(cand.Forward, x0, v, d)
			bgW := secondDifferenceOf(cand.Forward, ctrl, v, d)
			if kinkW <= 10*bgW+a.cfg.AbsChange {
				continue // unobservable here; try another region
			}
			participated = true

			kink, background, err := a.oracleSecondDifferencePair(vsp, x0, ctrl, v, d)
			if err != nil {
				return false, false, err
			}
			if kink > 10*a.calibrated(background)+a.absChange() {
				return true, true, nil
			}
			break // observable on the white box but absent in the oracle
		}
	}
	return false, participated, nil
}

// directGatedFlip returns the flip site whose output this ReLU rectifies
// directly, or -1.
func (a *Attack) directGatedFlip(reluSite int) int {
	layout := a.white.SiteLayout()
	for i, ev := range layout {
		if !ev.IsFlip && ev.ID == reluSite && i > 0 {
			prev := layout[i-1]
			if prev.IsFlip && prev.Seq == ev.Seq && prev.Pos == ev.Pos-1 {
				return prev.ID
			}
		}
	}
	return -1
}

// specIndexOf finds the spec position of the protected neuron at
// (site, index), if any.
func (a *Attack) specIndexOf(site, index int) (int, bool) {
	for i, pn := range a.spec.Neurons {
		if pn.Site == site && pn.Index == index {
			return i, true
		}
	}
	return 0, false
}

// ownHyperplaneMoves reports whether the scheme lets a neuron's own key
// bit move its hyperplane (breaking the negation-specific half of Lemma 1).
func (a *Attack) ownHyperplaneMoves() bool {
	return a.spec.Scheme == hpnn.BiasShift || a.spec.Scheme == hpnn.WeightPerturb
}

// voteDirection picks the direction for the kink probe at ReLU input
// (reluSite, j). For contractive probe sites it uses the exact pre-image
// of e_j on the ReLU-input Jacobian, so the probe moves only the target
// input. For expansive sites no pre-image exists (§3.4); there it moves
// along the target's own gradient row, v = ∇u_j/‖∇u_j‖², which moves u_j
// by exactly 1 per unit step with the smallest possible excursion through
// input space (so few unrelated hyperplanes are crossed).
func (a *Attack) voteDirection(net *nn.Network, x0 []float64, reluSite, j int, rng *rand.Rand) []float64 {
	var aHat *tensor.Matrix
	if a.cfg.UseProductMatrix {
		tr := net.ForwardTraceToReLU(x0, reluSite)
		if m, err := productMatrixAtReLUOf(net, tr, reluSite); err == nil {
			aHat = m
		}
	}
	if aHat == nil {
		_, jac := net.ReluInJacobian(x0, reluSite)
		aHat = jac
	}
	width := net.ReLUs()[reluSite].N
	if width <= len(x0) {
		res := tensor.LeastSquares(aHat, tensor.Basis(aHat.Rows, j))
		if res.RelRes <= a.cfg.ResidualTol {
			return res.X
		}
	}
	g := aHat.Row(j)
	gn := tensor.Dot(g, g)
	if gn > 1e-18 {
		return tensor.VecScale(1/gn, g)
	}
	// Dead gradient: return something normalized; the vote will simply not
	// detect a kink.
	dir := make([]float64, len(x0))
	for i := range dir {
		dir[i] = rng.NormFloat64()
	}
	return tensor.VecScale(1/tensor.Norm2(dir), dir)
}

// oracleSecondDifferencePair measures the kink and background second
// differences of one hyperplane vote as a single six-point probe group
// {x0, x0±δv, ctrl, ctrl±δv} — one oracle round through the planner where
// the scalar path took six. Values and query counts are unchanged: each
// second difference vanishes when the oracle is affine on its probed
// segment. Under a declared-noisy oracle the group repeats cfg.ProbeVotes
// times and the per-side median magnitudes are used — the median is robust
// to a single outlier draw, and with ProbeVotes=1 this is exactly one
// group, issuing the paper's queries in the scalar order.
func (a *Attack) oracleSecondDifferencePair(sp *obs.Span, x0, ctrl, v []float64, d float64) (kink, background float64, err error) {
	votes := a.cfg.ProbeVotes
	if votes < 1 {
		votes = 1
	}
	kinks := make([]float64, 0, votes)
	bgs := make([]float64, 0, votes)
	for vi := 0; vi < votes; vi++ {
		x := tensor.GetMatrix(6, len(x0))
		fillTriple(x, 0, x0, v, d)
		fillTriple(x, 3, ctrl, v, d)
		y, err := a.multi(sp, x)
		tensor.PutMatrix(x)
		if err != nil {
			return 0, 0, err
		}
		kinks = append(kinks, maxAbsSecondDiff(y.Row(0), y.Row(1), y.Row(2)))
		bgs = append(bgs, maxAbsSecondDiff(y.Row(3), y.Row(4), y.Row(5)))
		tensor.PutMatrix(y)
	}
	sort.Float64s(kinks)
	sort.Float64s(bgs)
	return kinks[len(kinks)/2], bgs[len(bgs)/2], nil
}

// fillTriple writes the second-difference probe triple {x, x+δv, x−δv} into
// rows at, at+1, at+2 of m — the exact order the scalar path queried them.
func fillTriple(m *tensor.Matrix, at int, x, v []float64, d float64) {
	m.SetRow(at, x)
	m.SetRow(at+1, x)
	tensor.AXPY(d, v, m.Row(at+1))
	m.SetRow(at+2, x)
	tensor.AXPY(-d, v, m.Row(at+2))
}

// maxAbsSecondDiff is ‖yp + ym − 2·y0‖∞.
func maxAbsSecondDiff(y0, yp, ym []float64) float64 {
	m := 0.0
	for i := range y0 {
		s := yp[i] + ym[i] - 2*y0[i]
		if s < 0 {
			s = -s
		}
		if s > m {
			m = s
		}
	}
	return m
}

// secondDifferenceOf evaluates the same probe on an arbitrary function.
func secondDifferenceOf(f func([]float64) []float64, x, v []float64, d float64) float64 {
	xp := tensor.VecClone(x)
	tensor.AXPY(d, v, xp)
	xm := tensor.VecClone(x)
	tensor.AXPY(-d, v, xm)
	y0 := f(x)
	yp := f(xp)
	ym := f(xm)
	m := 0.0
	for i := range y0 {
		s := yp[i] + ym[i] - 2*y0[i]
		if s < 0 {
			s = -s
		}
		if s > m {
			m = s
		}
	}
	return m
}

// directCompare checks functional equivalence between the candidate
// network and the oracle on random inputs. The tolerance carries the
// declared oracle degradation (cfg.oracleTol): under noise or quantization
// the oracle's answer legitimately strays from the true function by that
// much, and without the pad a perfectly recovered key would be rejected.
// The pad is exactly zero for a clean oracle.
func (a *Attack) directCompare(sp *obs.Span, net *nn.Network, rng *rand.Rand) (bool, error) {
	p := net.InSize()
	for i := 0; i < a.cfg.ValidationSamples; i++ {
		x := randomPoint(p, a.cfg.InputLim, rng)
		yo, err := a.query(sp, x)
		if err != nil {
			return false, err
		}
		yw := net.Forward(x)
		if a.orc.Softmax() {
			yw = tensor.Softmax(yw)
		}
		tol := a.cfg.EquivTol*(1+tensor.NormInf(yo)) + a.cfg.oracleTol()
		if tensor.NormInf(tensor.VecSub(yo, yw)) > tol {
			return false, nil
		}
	}
	return true, nil
}
