#!/bin/sh
# check.sh — static checks plus the race-detector test pass.
#
# The tensor worker pool, the oracle's batched queries, the attack's
# parallelFor, and the sliced learning attack's one-shot prefix evaluation
# (nn.Slice.PrefixForward) all share memory across goroutines; this script
# is the wiring that keeps them honest. The -race pass below includes the
# slice-equivalence property tests (internal/nn/slice_test.go and
# internal/core/slice_equiv_test.go), so the activation cache is checked for
# both data races and bit-exact agreement with the unsliced path in one go.
# Run before sending any change to the kernels or their callers (also
# available as `make race`).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> dnnlint ./... (pool, determinism, floatcmp, nakedgo, pkgdoc, queryseam, errflow, spanpair, golife invariants)"
go run ./cmd/dnnlint ./...

# Machine-readable lint contract (DESIGN.md §15): a clean tree must emit an
# empty JSON array under -json — this is the record format CI dashboards
# and the -fix/-diff tooling key off, so the shape is pinned here, not just
# the exit code.
echo "==> dnnlint -json contract (clean tree emits [])"
LINT_JSON="$(go run ./cmd/dnnlint -json ./...)"
if [ "$(printf '%s' "$LINT_JSON" | tr -d '[:space:]')" != "[]" ]; then
	echo "dnnlint -json: expected an empty array on a clean tree, got:" >&2
	printf '%s\n' "$LINT_JSON" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/..."
go test -race ./internal/...

# Robustness smoke (DESIGN.md §11): the oracle-boundary hardening must keep
# the clean path bit-identical to Table 1 and must degrade — never panic —
# under faults. These tests run inside the -race pass above too; re-running
# them by name makes a boundary regression fail with a targeted message.
echo "==> robustness smoke (clean-path identity + fault degradation)"
go test -race -run 'TestRobustness|TestRunBudget|TestRunRetries|TestRunDeclared|TestRunHeavy|TestRunCleanPath' \
	./internal/core ./internal/harness

# Trace smoke (DESIGN.md §12): a Table-1 cell exported as a JSONL trace
# must be a faithful projection of the run — `trace -check` recomputes the
# per-procedure rollup from the raw spans, requires it to match the
# exported breakdown summaries exactly, and requires the attributed time
# to cover the anchors' wall time within tolerance.
echo "==> trace smoke (table1 -trace + trace -check)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
go build -o "$TRACE_TMP/dnnlock" ./cmd/dnnlock
"$TRACE_TMP/dnnlock" table1 -model mlp -keysizes 6 -scale tiny \
	-trace "$TRACE_TMP/trace.jsonl" > /dev/null
"$TRACE_TMP/dnnlock" trace -in "$TRACE_TMP/trace.jsonl" -check > /dev/null

# Planner smoke (DESIGN.md §14): the opt-in query-planner knobs must keep a
# Table-1 cell at 100% fidelity — k-way multisection changes which critical
# points the white-box search lands on, never the recovered key.
echo "==> planner smoke (table1 -multisect 4)"
"$TRACE_TMP/dnnlock" table1 -model mlp -keysizes 6 -scale tiny -multisect 4 > /dev/null

# Farm smoke (DESIGN.md §16): one sweep point over a small heterogeneous
# fleet behind a lossy channel must finish at full fidelity and emit its
# CSV — the channel simulator prices rounds, it must never break the attack.
echo "==> farm smoke (small fleet, lossy channel)"
"$TRACE_TMP/dnnlock" farm -model mlp -bits 6 -scale tiny -devices 64 \
	-rtts 5ms -bws 10 -loss 0.005 -mixes mixed \
	-csv "$TRACE_TMP/farm.csv" > /dev/null
head -n 1 "$TRACE_TMP/farm.csv" | grep -q '^model,key_bits,mix,devices' || {
	echo "farm smoke: CSV header malformed" >&2
	exit 1
}

# Daemon smoke (DESIGN.md §17, OPERATIONS.md): dnnlockd must accept an MLP
# 4-bit job over its HTTP API, run it to completion, and report exactly the
# query count a direct `dnnlock table1` run of the same cell reports — the
# service layer may never change the attack's numbers. The TERM at the end
# also exercises graceful drain: the daemon must exit cleanly.
echo "==> daemon smoke (dnnlockd: submit -> poll -> parity with table1)"
go build -o "$TRACE_TMP/dnnlockd" ./cmd/dnnlockd
"$TRACE_TMP/dnnlockd" -addr 127.0.0.1:0 -workers 1 \
	> "$TRACE_TMP/dnnlockd.out" 2> /dev/null &
DAEMON_PID=$!
trap '[ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null; rm -rf "$TRACE_TMP"' EXIT
ADDR=""
for _ in $(seq 1 50); do
	ADDR="$(sed -n 's/^dnnlockd listening on //p' "$TRACE_TMP/dnnlockd.out")"
	[ -n "$ADDR" ] && break
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "daemon smoke: dnnlockd never printed its address" >&2; exit 1; }
SUBMIT="$(curl -fsS -X POST "http://$ADDR/jobs" \
	-d '{"kind":"decrypt","model":"mlp","key_bits":4,"scale":"tiny"}')"
JOB_ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)"
[ -n "$JOB_ID" ] || { echo "daemon smoke: submit returned no job id: $SUBMIT" >&2; exit 1; }
STATE=""
for _ in $(seq 1 150); do
	VIEW="$(curl -fsS "http://$ADDR/jobs/$JOB_ID")"
	STATE="$(printf '%s' "$VIEW" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -n 1)"
	case "$STATE" in completed|failed|cancelled) break ;; esac
	sleep 0.2
done
[ "$STATE" = "completed" ] || {
	echo "daemon smoke: job ended in state '$STATE': $VIEW" >&2
	exit 1
}
DAEMON_Q="$(printf '%s' "$VIEW" | sed -n 's/.*"queries": \([0-9][0-9]*\).*/\1/p' | head -n 1)"
"$TRACE_TMP/dnnlock" table1 -model mlp -keysizes 4 -scale tiny \
	-csv "$TRACE_TMP/t1.csv" > /dev/null
DIRECT_Q="$(awk -F, 'NR==2{print $13}' "$TRACE_TMP/t1.csv")"
if [ -z "$DAEMON_Q" ] || [ "$DAEMON_Q" != "$DIRECT_Q" ]; then
	echo "daemon smoke: dec_queries mismatch: daemon=$DAEMON_Q direct=$DIRECT_Q" >&2
	exit 1
fi
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "daemon smoke: dnnlockd did not exit cleanly" >&2; exit 1; }
DAEMON_PID=""

# Bench gate (opt-in: DNNLOCK_BENCH=1): run the paper-facing benchmarks and
# diff the fresh numbers against the most recent committed BENCH_*.json via
# bench_compare.sh, which fails on a >10% regression. Off by default — the
# bench suite takes minutes and perf numbers are only meaningful on a quiet
# machine — but perf-sensitive changes should ship with this green.
if [ "${DNNLOCK_BENCH:-0}" = "1" ]; then
	echo "==> bench gate (DNNLOCK_BENCH=1): scripts/bench.sh + strict bench_compare"
	BENCH_COMPARE=0 sh scripts/bench.sh
	BENCH_COMPARE_STRICT=1 sh scripts/bench_compare.sh
fi

echo "OK"
