package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dnnlock/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW-flattened inputs.
//
// The flat input vector holds channels-major data: index c·H·W + y·W + x.
// Weights are stored as an F×(C·KH·KW) matrix so one output activation is a
// dot product between a filter row and an im2col patch.
type Conv2D struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	Stride, Pad   int
	OutH, OutW    int
	W, B          *Param

	lastX *tensor.Matrix // training cache
}

// NewConv2D constructs a convolution layer and computes its output geometry.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: conv output %dx%d is empty", outH, outW))
	}
	return &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		W: NewParam("conv_w", outC, inC*k*k),
		B: NewParam("conv_b", 1, outC),
	}
}

// InitHe fills the kernels with He-normal initialization.
func (c *Conv2D) InitHe(rng *rand.Rand) *Conv2D {
	std := math.Sqrt(2.0 / float64(c.InC*c.KH*c.KW))
	for i := range c.W.W.Data {
		c.W.W.Data[i] = rng.NormFloat64() * std
	}
	return c
}

func (c *Conv2D) Name() string { return "conv2d" }

// InSize returns C·H·W.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// OutSize returns F·OH·OW.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// clipRange returns the sub-range of kernel offsets [lo, hi) whose taps
// land inside an axis of extent `in` when the window starts at i0.
func clipRange(i0, k, in int) (lo, hi int) {
	lo, hi = 0, k
	if i0 < 0 {
		lo = -i0
	}
	if i0+k > in {
		hi = in - i0
	}
	return lo, hi
}

// forwardInto convolves a single flat example into out (length OutSize);
// bias is optional so the JVP path can reuse this as a pure linear map.
//
// The filter dot product runs directly over the input rows in the same
// (channel, ky, kx) order the im2col gather would produce, so the result
// is bit-identical to Dot(filter, patch) while skipping the gather's
// stores entirely. Border positions (only reachable with Pad > 0) clip the
// kernel range to the in-bounds taps: a padding tap's product is an exact
// ±0, and adding ±0 never moves an accumulator that is not itself -0 —
// which a left-to-right sum starting at +0 can never be (IEEE 754
// round-to-nearest returns +0 for every exact cancellation).
func (c *Conv2D) forwardInto(x, out []float64, withBias bool) {
	if c.Pad == 0 {
		// Every window is in-bounds by construction, so the whole image can
		// run filter-major: filter rows are sliced once per block instead of
		// once per output pixel, and each plane is written sequentially.
		c.forwardIntoNoPad(x, out, withBias)
		return
	}
	brow := c.B.W.Row(0)
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	for oy := 0; oy < c.OutH; oy++ {
		iy0 := oy*c.Stride - c.Pad
		for ox := 0; ox < c.OutW; ox++ {
			ix0 := ox*c.Stride - c.Pad
			if iy0 >= 0 && ix0 >= 0 && iy0+c.KH <= c.InH && ix0+c.KW <= c.InW {
				// Filters go four at a time so each input window load feeds
				// four accumulators; every accumulator still sums its own
				// products in (channel, ky, kx) order, so each output matches
				// the one-filter-at-a-time result bit for bit.
				base := oy*c.OutW + ox
				f := 0
				for ; f+4 <= c.OutC; f += 4 {
					w0 := c.W.W.Row(f)
					w1 := c.W.W.Row(f + 1)
					w2 := c.W.W.Row(f + 2)
					w3 := c.W.W.Row(f + 3)
					var s0, s1, s2, s3 float64
					idx := 0
					for ch := 0; ch < c.InC; ch++ {
						rowBase := ch*chStride + iy0*c.InW + ix0
						if c.KW == 3 {
							for ky := 0; ky < c.KH; ky++ {
								xw := x[rowBase : rowBase+3]
								a0 := w0[idx : idx+3]
								a1 := w1[idx : idx+3]
								a2 := w2[idx : idx+3]
								a3 := w3[idx : idx+3]
								s0 += xw[0] * a0[0]
								s0 += xw[1] * a0[1]
								s0 += xw[2] * a0[2]
								s1 += xw[0] * a1[0]
								s1 += xw[1] * a1[1]
								s1 += xw[2] * a1[2]
								s2 += xw[0] * a2[0]
								s2 += xw[1] * a2[1]
								s2 += xw[2] * a2[2]
								s3 += xw[0] * a3[0]
								s3 += xw[1] * a3[1]
								s3 += xw[2] * a3[2]
								idx += 3
								rowBase += c.InW
							}
							continue
						}
						if c.KW == 5 {
							for ky := 0; ky < c.KH; ky++ {
								xw := x[rowBase : rowBase+5]
								a0 := w0[idx : idx+5]
								a1 := w1[idx : idx+5]
								a2 := w2[idx : idx+5]
								a3 := w3[idx : idx+5]
								s0 += xw[0] * a0[0]
								s0 += xw[1] * a0[1]
								s0 += xw[2] * a0[2]
								s0 += xw[3] * a0[3]
								s0 += xw[4] * a0[4]
								s1 += xw[0] * a1[0]
								s1 += xw[1] * a1[1]
								s1 += xw[2] * a1[2]
								s1 += xw[3] * a1[3]
								s1 += xw[4] * a1[4]
								s2 += xw[0] * a2[0]
								s2 += xw[1] * a2[1]
								s2 += xw[2] * a2[2]
								s2 += xw[3] * a2[3]
								s2 += xw[4] * a2[4]
								s3 += xw[0] * a3[0]
								s3 += xw[1] * a3[1]
								s3 += xw[2] * a3[2]
								s3 += xw[3] * a3[3]
								s3 += xw[4] * a3[4]
								idx += 5
								rowBase += c.InW
							}
							continue
						}
						for ky := 0; ky < c.KH; ky++ {
							xw := x[rowBase : rowBase+c.KW]
							a0 := w0[idx : idx+c.KW]
							a1 := w1[idx : idx+c.KW]
							a2 := w2[idx : idx+c.KW]
							a3 := w3[idx : idx+c.KW]
							for kx, xv := range xw {
								s0 += xv * a0[kx]
								s1 += xv * a1[kx]
								s2 += xv * a2[kx]
								s3 += xv * a3[kx]
							}
							idx += c.KW
							rowBase += c.InW
						}
					}
					if withBias {
						s0 += brow[f]
						s1 += brow[f+1]
						s2 += brow[f+2]
						s3 += brow[f+3]
					}
					out[f*plane+base] = s0
					out[(f+1)*plane+base] = s1
					out[(f+2)*plane+base] = s2
					out[(f+3)*plane+base] = s3
				}
				for ; f < c.OutC; f++ {
					wr := c.W.W.Row(f)
					var s float64
					idx := 0
					for ch := 0; ch < c.InC; ch++ {
						rowBase := ch*chStride + iy0*c.InW + ix0
						switch c.KW {
						case 3:
							for ky := 0; ky < c.KH; ky++ {
								xr := x[rowBase : rowBase+3]
								wrow := wr[idx : idx+3]
								s += xr[0] * wrow[0]
								s += xr[1] * wrow[1]
								s += xr[2] * wrow[2]
								idx += 3
								rowBase += c.InW
							}
						case 5:
							for ky := 0; ky < c.KH; ky++ {
								xr := x[rowBase : rowBase+5]
								wrow := wr[idx : idx+5]
								s += xr[0] * wrow[0]
								s += xr[1] * wrow[1]
								s += xr[2] * wrow[2]
								s += xr[3] * wrow[3]
								s += xr[4] * wrow[4]
								idx += 5
								rowBase += c.InW
							}
						default:
							for ky := 0; ky < c.KH; ky++ {
								xr := x[rowBase : rowBase+c.KW]
								wrow := wr[idx : idx+c.KW]
								for kx, xv := range xr {
									s += xv * wrow[kx]
								}
								idx += c.KW
								rowBase += c.InW
							}
						}
					}
					if withBias {
						s += brow[f]
					}
					out[f*plane+oy*c.OutW+ox] = s
				}
				continue
			}
			kyLo, kyHi := clipRange(iy0, c.KH, c.InH)
			kxLo, kxHi := clipRange(ix0, c.KW, c.InW)
			base := oy*c.OutW + ox
			f := 0
			for ; f+4 <= c.OutC; f += 4 {
				w0 := c.W.W.Row(f)
				w1 := c.W.W.Row(f + 1)
				w2 := c.W.W.Row(f + 2)
				w3 := c.W.W.Row(f + 3)
				var s0, s1, s2, s3 float64
				for ch := 0; ch < c.InC; ch++ {
					chBase := ch * chStride
					wBase := ch * c.KH * c.KW
					for ky := kyLo; ky < kyHi; ky++ {
						rowX := chBase + (iy0+ky)*c.InW + ix0
						wRow := wBase + ky*c.KW
						for kx := kxLo; kx < kxHi; kx++ {
							xv := x[rowX+kx]
							s0 += xv * w0[wRow+kx]
							s1 += xv * w1[wRow+kx]
							s2 += xv * w2[wRow+kx]
							s3 += xv * w3[wRow+kx]
						}
					}
				}
				if withBias {
					s0 += brow[f]
					s1 += brow[f+1]
					s2 += brow[f+2]
					s3 += brow[f+3]
				}
				out[f*plane+base] = s0
				out[(f+1)*plane+base] = s1
				out[(f+2)*plane+base] = s2
				out[(f+3)*plane+base] = s3
			}
			for ; f < c.OutC; f++ {
				wr := c.W.W.Row(f)
				var s float64
				for ch := 0; ch < c.InC; ch++ {
					chBase := ch * chStride
					wBase := ch * c.KH * c.KW
					for ky := kyLo; ky < kyHi; ky++ {
						rowX := chBase + (iy0+ky)*c.InW + ix0
						wRow := wBase + ky*c.KW
						for kx := kxLo; kx < kxHi; kx++ {
							s += x[rowX+kx] * wr[wRow+kx]
						}
					}
				}
				if withBias {
					s += brow[f]
				}
				out[f*plane+base] = s
			}
		}
	}
}

// forwardIntoNoPad is forwardInto for Pad == 0. Filters advance four at a
// time in the outer loop; every accumulator still sums its own products in
// (channel, ky, kx) order with the bias added last, so each output element
// is bit-identical to the padded path's result for the same position.
func (c *Conv2D) forwardIntoNoPad(x, out []float64, withBias bool) {
	brow := c.B.W.Row(0)
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	f := 0
	for ; f+4 <= c.OutC; f += 4 {
		w0 := c.W.W.Row(f)
		w1 := c.W.W.Row(f + 1)
		w2 := c.W.W.Row(f + 2)
		w3 := c.W.W.Row(f + 3)
		o0 := out[f*plane : (f+1)*plane]
		o1 := out[(f+1)*plane : (f+2)*plane]
		o2 := out[(f+2)*plane : (f+3)*plane]
		o3 := out[(f+3)*plane : (f+4)*plane]
		pix := 0
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy * c.Stride
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox * c.Stride
				var s0, s1, s2, s3 float64
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					rowBase := ch*chStride + iy0*c.InW + ix0
					if c.KW == 3 {
						for ky := 0; ky < c.KH; ky++ {
							xw := x[rowBase : rowBase+3]
							a0 := w0[idx : idx+3]
							a1 := w1[idx : idx+3]
							a2 := w2[idx : idx+3]
							a3 := w3[idx : idx+3]
							s0 += xw[0] * a0[0]
							s0 += xw[1] * a0[1]
							s0 += xw[2] * a0[2]
							s1 += xw[0] * a1[0]
							s1 += xw[1] * a1[1]
							s1 += xw[2] * a1[2]
							s2 += xw[0] * a2[0]
							s2 += xw[1] * a2[1]
							s2 += xw[2] * a2[2]
							s3 += xw[0] * a3[0]
							s3 += xw[1] * a3[1]
							s3 += xw[2] * a3[2]
							idx += 3
							rowBase += c.InW
						}
						continue
					}
					if c.KW == 5 {
						for ky := 0; ky < c.KH; ky++ {
							xw := x[rowBase : rowBase+5]
							a0 := w0[idx : idx+5]
							a1 := w1[idx : idx+5]
							a2 := w2[idx : idx+5]
							a3 := w3[idx : idx+5]
							s0 += xw[0] * a0[0]
							s0 += xw[1] * a0[1]
							s0 += xw[2] * a0[2]
							s0 += xw[3] * a0[3]
							s0 += xw[4] * a0[4]
							s1 += xw[0] * a1[0]
							s1 += xw[1] * a1[1]
							s1 += xw[2] * a1[2]
							s1 += xw[3] * a1[3]
							s1 += xw[4] * a1[4]
							s2 += xw[0] * a2[0]
							s2 += xw[1] * a2[1]
							s2 += xw[2] * a2[2]
							s2 += xw[3] * a2[3]
							s2 += xw[4] * a2[4]
							s3 += xw[0] * a3[0]
							s3 += xw[1] * a3[1]
							s3 += xw[2] * a3[2]
							s3 += xw[3] * a3[3]
							s3 += xw[4] * a3[4]
							idx += 5
							rowBase += c.InW
						}
						continue
					}
					for ky := 0; ky < c.KH; ky++ {
						xw := x[rowBase : rowBase+c.KW]
						a0 := w0[idx : idx+c.KW]
						a1 := w1[idx : idx+c.KW]
						a2 := w2[idx : idx+c.KW]
						a3 := w3[idx : idx+c.KW]
						for kx, xv := range xw {
							s0 += xv * a0[kx]
							s1 += xv * a1[kx]
							s2 += xv * a2[kx]
							s3 += xv * a3[kx]
						}
						idx += c.KW
						rowBase += c.InW
					}
				}
				if withBias {
					s0 += brow[f]
					s1 += brow[f+1]
					s2 += brow[f+2]
					s3 += brow[f+3]
				}
				o0[pix] = s0
				o1[pix] = s1
				o2[pix] = s2
				o3[pix] = s3
				pix++
			}
		}
	}
	for ; f < c.OutC; f++ {
		wr := c.W.W.Row(f)
		of := out[f*plane : (f+1)*plane]
		bias := 0.0
		if withBias {
			bias = brow[f]
		}
		pix := 0
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy * c.Stride
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox * c.Stride
				var s float64
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					rowBase := ch*chStride + iy0*c.InW + ix0
					switch c.KW {
					case 3:
						for ky := 0; ky < c.KH; ky++ {
							xr := x[rowBase : rowBase+3]
							wrow := wr[idx : idx+3]
							s += xr[0] * wrow[0]
							s += xr[1] * wrow[1]
							s += xr[2] * wrow[2]
							idx += 3
							rowBase += c.InW
						}
					case 5:
						for ky := 0; ky < c.KH; ky++ {
							xr := x[rowBase : rowBase+5]
							wrow := wr[idx : idx+5]
							s += xr[0] * wrow[0]
							s += xr[1] * wrow[1]
							s += xr[2] * wrow[2]
							s += xr[3] * wrow[3]
							s += xr[4] * wrow[4]
							idx += 5
							rowBase += c.InW
						}
					default:
						for ky := 0; ky < c.KH; ky++ {
							xr := x[rowBase : rowBase+c.KW]
							wrow := wr[idx : idx+c.KW]
							for kx, xv := range xr {
								s += xv * wrow[kx]
							}
							idx += c.KW
							rowBase += c.InW
						}
					}
				}
				if withBias {
					s += bias
				}
				of[pix] = s
				pix++
			}
		}
	}
}

func (c *Conv2D) forwardOne(x []float64, withBias bool) []float64 {
	out := make([]float64, c.OutSize())
	c.forwardInto(x, out, withBias)
	return out
}

// Forward convolves one example.
func (c *Conv2D) Forward(x []float64, _ *Trace) []float64 {
	checkSize("conv2d", c.InSize(), len(x))
	return c.forwardOne(x, true)
}

// ForwardBatch convolves each row of x, writing straight into the output
// rows (no per-example staging vector, unlike forwardBatchViaSingle).
func (c *Conv2D) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	// forwardInto assigns every output element, so a pooled buffer is safe.
	out := tensor.GetMatrix(x.Rows, c.OutSize())
	for i := 0; i < x.Rows; i++ {
		c.forwardInto(x.Row(i), out.Row(i), true)
	}
	return out
}

// TrainForward is ForwardBatch with input caching.
func (c *Conv2D) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	c.lastX = x
	return c.ForwardBatch(x)
}

// Backward accumulates kernel/bias gradients and returns dX.
func (c *Conv2D) Backward(dy *tensor.Matrix) *tensor.Matrix {
	x := c.lastX
	if x == nil {
		panic("nn: Conv2D.Backward before TrainForward")
	}
	dx := tensor.GetMatrixZero(dy.Rows, c.InSize())
	plane := c.OutH * c.OutW
	chStride := c.InH * c.InW
	for r := 0; r < dy.Rows; r++ {
		xr := x.Row(r)
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for oy := 0; oy < c.OutH; oy++ {
			iy0 := oy*c.Stride - c.Pad
			for ox := 0; ox < c.OutW; ox++ {
				ix0 := ox*c.Stride - c.Pad
				if iy0 >= 0 && ix0 >= 0 && iy0+c.KH <= c.InH && ix0+c.KW <= c.InW {
					// Interior window: dW += g·x and dX += g·W straight over
					// the input rows, in the gather's (channel, ky, kx) order.
					for f := 0; f < c.OutC; f++ {
						g := dyr[f*plane+oy*c.OutW+ox]
						//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
						if g == 0 {
							continue
						}
						c.B.G.Data[f] += g
						wg := c.W.G.Row(f)
						wr := c.W.W.Row(f)
						idx := 0
						for ch := 0; ch < c.InC; ch++ {
							rowBase := ch*chStride + iy0*c.InW + ix0
							if c.KW == 3 {
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+3]
									dxw := dxr[rowBase : rowBase+3]
									wgw := wg[idx : idx+3]
									ww := wr[idx : idx+3]
									wgw[0] += g * xw[0]
									dxw[0] += g * ww[0]
									wgw[1] += g * xw[1]
									dxw[1] += g * ww[1]
									wgw[2] += g * xw[2]
									dxw[2] += g * ww[2]
									idx += 3
									rowBase += c.InW
								}
								continue
							}
							if c.KW == 5 {
								for ky := 0; ky < c.KH; ky++ {
									xw := xr[rowBase : rowBase+5]
									dxw := dxr[rowBase : rowBase+5]
									wgw := wg[idx : idx+5]
									ww := wr[idx : idx+5]
									wgw[0] += g * xw[0]
									dxw[0] += g * ww[0]
									wgw[1] += g * xw[1]
									dxw[1] += g * ww[1]
									wgw[2] += g * xw[2]
									dxw[2] += g * ww[2]
									wgw[3] += g * xw[3]
									dxw[3] += g * ww[3]
									wgw[4] += g * xw[4]
									dxw[4] += g * ww[4]
									idx += 5
									rowBase += c.InW
								}
								continue
							}
							for ky := 0; ky < c.KH; ky++ {
								xw := xr[rowBase : rowBase+c.KW]
								dxw := dxr[rowBase : rowBase+c.KW]
								wgw := wg[idx : idx+c.KW]
								ww := wr[idx : idx+c.KW]
								for kx, xv := range xw {
									wgw[kx] += g * xv
									dxw[kx] += g * ww[kx]
								}
								idx += c.KW
								rowBase += c.InW
							}
						}
					}
					continue
				}
				// Border: clipped to the in-bounds taps. A padding tap's
				// dW contribution is g·0 = ±0 (a no-op on the +0-rooted
				// accumulator) and its dX target does not exist, so the
				// clipped loops accumulate exactly what the gather did.
				kyLo, kyHi := clipRange(iy0, c.KH, c.InH)
				kxLo, kxHi := clipRange(ix0, c.KW, c.InW)
				for f := 0; f < c.OutC; f++ {
					g := dyr[f*plane+oy*c.OutW+ox]
					//lint:ignore floatcmp exact-zero skip: adding a zero gradient term is a bit-exact no-op
					if g == 0 {
						continue
					}
					c.B.G.Data[f] += g
					wg := c.W.G.Row(f)
					wr := c.W.W.Row(f)
					for ch := 0; ch < c.InC; ch++ {
						chBase := ch * chStride
						wBase := ch * c.KH * c.KW
						for ky := kyLo; ky < kyHi; ky++ {
							rowX := chBase + (iy0+ky)*c.InW + ix0
							wRow := wBase + ky*c.KW
							for kx := kxLo; kx < kxHi; kx++ {
								wg[wRow+kx] += g * xr[rowX+kx]
								dxr[rowX+kx] += g * wr[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// JVP convolves the value with bias and every tangent column without bias
// (the convolution is linear, so tangents transform exactly). Tangents are
// staged through pooled transposes so each column convolves contiguously.
func (c *Conv2D) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := c.forwardOne(x, true)
	p := j.Cols
	jT := tensor.GetMatrix(p, c.InSize())
	j.TransposeInto(jT)
	jyT := tensor.GetMatrix(p, c.OutSize())
	for t := 0; t < p; t++ {
		c.forwardInto(jT.Row(t), jyT.Row(t), false)
	}
	jy := tensor.New(c.OutSize(), p)
	jyT.TransposeInto(jy)
	tensor.PutMatrix(jT, jyT)
	return y, jy
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
