package modelio

import (
	"bytes"
	"math/rand"
	"testing"

	"dnnlock/internal/models"
)

// FuzzDecodeNetwork hardens the model loader against malformed inputs: it
// must never panic, and valid round-trips must stay valid.
func FuzzDecodeNetwork(f *testing.F) {
	// Seed with a real serialized model and some mutations.
	var buf bytes.Buffer
	net := models.TinyMLP(rand.New(rand.NewSource(1)))
	if err := EncodeNetwork(&buf, net, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"layers":[]}`))
	f.Add([]byte(`{"layers":[{"type":"dense","ints":{"in":1,"out":1},"floats":{"w":[1],"b":[0]}}]}`))
	f.Add([]byte(`{"layers":[{"type":"relu","ints":{"n":-1}}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeNetwork panicked: %v", r)
			}
		}()
		net, _, err := DecodeNetwork(bytes.NewReader(data))
		if err != nil || net == nil {
			return
		}
		// A successfully decoded network must re-encode.
		var out bytes.Buffer
		if err := EncodeNetwork(&out, net, nil); err != nil {
			t.Fatalf("re-encode of decoded network failed: %v", err)
		}
	})
}
