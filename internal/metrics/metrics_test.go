package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAddAndPercent(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, 300*time.Millisecond)
	b.Add(ProcLearningAttack, 700*time.Millisecond)
	if b.Total() != time.Second {
		t.Fatalf("Total = %v", b.Total())
	}
	if math.Abs(b.Percent(ProcKeyBitInference)-30) > 1e-9 {
		t.Fatalf("Percent = %v", b.Percent(ProcKeyBitInference))
	}
	p := b.Percentages()
	if math.Abs(p[ProcLearningAttack]-70) > 1e-9 || p[ProcErrorCorrection] != 0 {
		t.Fatalf("Percentages = %v", p)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown()
	if b.Percent(ProcKeyBitInference) != 0 || b.Total() != 0 {
		t.Fatal("empty breakdown should be all zero")
	}
}

func TestBreakdownTrack(t *testing.T) {
	b := NewBreakdown()
	b.Track(ProcErrorCorrection, func() { time.Sleep(5 * time.Millisecond) })
	if b.Get(ProcErrorCorrection) < 4*time.Millisecond {
		t.Fatalf("Track recorded %v", b.Get(ProcErrorCorrection))
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(ProcKeyVectorValidation, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if b.Get(ProcKeyVectorValidation) != 1600*time.Microsecond {
		t.Fatalf("concurrent total = %v", b.Get(ProcKeyVectorValidation))
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, time.Second)
	b.Add(Procedure("custom"), time.Second)
	s := b.String()
	if !strings.Contains(s, "key_bit_inference") || !strings.Contains(s, "custom") {
		t.Fatalf("String = %q", s)
	}
	// Extras render in the same percent-and-duration form as the standard
	// procedures.
	if !strings.Contains(s, "custom 50.0% (1s)") {
		t.Fatalf("extra procedure missing share or duration: %q", s)
	}
}

func TestPercentagesIncludeExtras(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, 250*time.Millisecond)
	b.Add(Procedure("custom"), 750*time.Millisecond)
	p := b.Percentages()
	if math.Abs(p[Procedure("custom")]-75) > 1e-9 {
		t.Fatalf("extra procedure share = %v", p[Procedure("custom")])
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("shares sum to %v, want 100", sum)
	}
}

func TestBreakdownQueries(t *testing.T) {
	b := NewBreakdown()
	b.AddQueries(ProcKeyBitInference, 40)
	b.AddQueries(ProcKeyBitInference, 2)
	b.AddQueries(ProcLearningAttack, 100)
	if b.Queries(ProcKeyBitInference) != 42 {
		t.Fatalf("Queries = %d", b.Queries(ProcKeyBitInference))
	}
	q := b.QueriesByProc()
	if q[ProcLearningAttack] != 100 || len(q) != 2 {
		t.Fatalf("QueriesByProc = %v", q)
	}
	s := b.Snapshot()
	if s.TotalQ != 142 {
		t.Fatalf("TotalQ = %d", s.TotalQ)
	}
}

// TestSnapshotProceduresDeterministic pins the render order: the four
// Figure 3 procedures first, then extras sorted by name — including extras
// that only accumulated queries, never time.
func TestSnapshotProceduresDeterministic(t *testing.T) {
	b := NewBreakdown()
	b.Add(Procedure("zeta"), time.Millisecond)
	b.Add(Procedure("alpha"), time.Millisecond)
	b.AddQueries(Procedure("mid"), 7)
	b.Add(ProcErrorCorrection, time.Millisecond)
	got := b.Snapshot().Procedures()
	want := append(append([]Procedure{}, AllProcedures...), "alpha", "mid", "zeta")
	if len(got) != len(want) {
		t.Fatalf("Procedures = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Procedures[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestStringConsistentUnderConcurrentAdds hammers String and Snapshot while
// writers accumulate times and queries — the harness-progress-print race
// the single-lock snapshot closes. Run under -race this also checks the
// memory model, not just the arithmetic.
func TestStringConsistentUnderConcurrentAdds(t *testing.T) {
	b := NewBreakdown()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proc := AllProcedures[i%len(AllProcedures)]
			for {
				select {
				case <-done:
					return
				default:
					b.Add(proc, time.Microsecond)
					b.AddQueries(proc, 3)
				}
			}
		}(i)
	}
	for i := 0; i < 500; i++ {
		if s := b.String(); !strings.Contains(s, "key_bit_inference") {
			t.Errorf("String = %q", s)
			break
		}
		snap := b.Snapshot()
		var sum time.Duration
		for _, d := range snap.Times {
			sum += d
		}
		if sum != snap.Total {
			t.Errorf("snapshot torn: times sum %v, total %v", sum, snap.Total)
			break
		}
	}
	close(done)
	wg.Wait()
}

// TestPercentConsistentUnderConcurrentAdds pins the single-snapshot fix: a
// share read while other goroutines accumulate must never exceed 100, and a
// Percentages map must always sum to 100 (or be all zero). The old
// implementation read the total and the procedure's time under separate lock
// acquisitions, so an Add landing between the two reads could push a share
// past 100.
func TestPercentConsistentUnderConcurrentAdds(t *testing.T) {
	b := NewBreakdown()
	b.Add(ProcKeyBitInference, time.Microsecond)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proc := AllProcedures[i%len(AllProcedures)]
			for {
				select {
				case <-done:
					return
				default:
					b.Add(proc, time.Microsecond)
				}
			}
		}(i)
	}
	for i := 0; i < 2000; i++ {
		if pct := b.Percent(ProcKeyBitInference); pct > 100+1e-9 {
			t.Errorf("Percent = %v > 100", pct)
			break
		}
		p := b.Percentages()
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-100) > 1e-6 {
			t.Errorf("shares sum to %v, want 100", sum)
			break
		}
	}
	close(done)
	wg.Wait()
}
