// Package oracle stubs the pooled QueryBatch surface for the poolpair
// golden tests.
package oracle

import "dnnlock/internal/tensor"

type Oracle struct{}

// QueryBatch mirrors the real oracle: the result comes from the workspace
// pool and the caller owns its release on every path — the error result
// rides second, and on error the buffer is nil (releases are nil-safe).
func (o *Oracle) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	out := tensor.GetMatrix(x.Rows, x.Cols)
	return out, nil
}
