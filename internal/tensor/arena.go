package tensor

import "sync"

// Arena-backed float32 workspaces for the learning attack's speed tier
// (DESIGN.md §13).
//
// The float64 hot loops recycle individual matrices through the sync.Pool
// seam of workspace.go; the float32 training engine goes one step further:
// one training run acquires one arena, bump-allocates every workspace and
// activation cache out of contiguous slabs, and releases the whole run's
// memory wholesale with a single PutArena32. Inside the epoch loop nothing
// is allocated at all — the engine's per-batch buffers are carved out of
// the arena once, on the first batch, and resliced thereafter.
//
// Contract: like Get/PutMatrix, allocations have arbitrary contents, and
// after PutArena32 (or Reset) the caller must not retain any matrix, slice
// or header obtained from the arena.

// arenaHdrChunk is how many Mat headers one header chunk holds. Chunks are
// never reallocated while live (pointers into them must stay stable), only
// appended, so headers also cost zero allocations at steady state.
const arenaHdrChunk = 64

// Arena32 is a bump allocator over pooled float32 slabs.
type Arena32 struct {
	slabs [][]float32 // slabs[len-1] is the active slab
	off   int         // next free element of the active slab
	total int         // sum of slab capacities, for the Reset merge

	hdrs   [][]Mat[float32] // Mat header chunks, stable while live
	hc, hn int              // active chunk index / headers used in it
}

var arenaPool sync.Pool

// GetArena32 returns an arena from the pool. The arena keeps its slabs
// across uses, so a steady-state acquire/allocate/release cycle touches
// the Go allocator not at all.
func GetArena32() *Arena32 {
	if v := arenaPool.Get(); v != nil {
		return v.(*Arena32)
	}
	return &Arena32{}
}

// PutArena32 releases every allocation of the arena wholesale and returns
// it to the pool. nil is ignored so deferred releases stay unconditional.
func PutArena32(a *Arena32) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// Reset reclaims all allocations at once. If the run outgrew its first
// slab, the slabs are merged into one of the total capacity, so the next
// run of the same shape bump-allocates from a single contiguous block.
func (a *Arena32) Reset() {
	if len(a.slabs) > 1 {
		a.slabs = [][]float32{make([]float32, a.total)}
	}
	a.off = 0
	a.hc, a.hn = 0, 0
}

// Vec bump-allocates a length-n float32 slice with arbitrary contents.
// The slice is capacity-clamped so an append can never bleed into the
// arena's neighbouring allocation.
func (a *Arena32) Vec(n int) []float32 {
	if len(a.slabs) == 0 || a.off+n > len(a.slabs[len(a.slabs)-1]) {
		a.grow(n)
	}
	s := a.slabs[len(a.slabs)-1]
	v := s[a.off : a.off+n : a.off+n]
	a.off += n
	return v
}

// VecZero is Vec with the contents cleared.
func (a *Arena32) VecZero(n int) []float32 {
	v := a.Vec(n)
	zeroVec(v)
	return v
}

// Mat bump-allocates a rows×cols float32 matrix with arbitrary contents.
// The header itself comes from an arena chunk, so no escape to the heap.
func (a *Arena32) Mat(rows, cols int) *Mat[float32] {
	h := a.hdr()
	*h = Mat[float32]{Rows: rows, Cols: cols, Data: a.Vec(rows * cols)}
	return h
}

// MatZero is Mat with the contents cleared.
func (a *Arena32) MatZero(rows, cols int) *Mat[float32] {
	m := a.Mat(rows, cols)
	zeroVec(m.Data)
	return m
}

// grow appends a new slab big enough for an n-element request. The old
// slab's tail is abandoned until Reset (its live allocations keep it
// reachable); Reset merges everything back into one block.
func (a *Arena32) grow(n int) {
	size := 4096
	if len(a.slabs) > 0 {
		if d := 2 * len(a.slabs[len(a.slabs)-1]); d > size {
			size = d
		}
	}
	if n > size {
		size = n
	}
	a.slabs = append(a.slabs, make([]float32, size))
	a.off = 0
	a.total += size
}

// hdr hands out the next stable Mat header.
func (a *Arena32) hdr() *Mat[float32] {
	if a.hc == len(a.hdrs) {
		a.hdrs = append(a.hdrs, make([]Mat[float32], arenaHdrChunk))
	}
	chunk := a.hdrs[a.hc]
	h := &chunk[a.hn]
	a.hn++
	if a.hn == len(chunk) {
		a.hc++
		a.hn = 0
	}
	return h
}
