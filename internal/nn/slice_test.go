package nn

import (
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

// fuzzedSliceNets builds randomized architectures of every family the
// evaluation locks — MLP chains, conv stacks, residual blocks, and a ReLU
// attention transformer — so the slice equivalence property is exercised on
// the same layer zoo the attack meets.
func fuzzedSliceNets(rng *rand.Rand) []*Network {
	var nets []*Network

	// Fuzzed MLPs: 2–3 locked hidden layers with random widths.
	for i := 0; i < 3; i++ {
		in := 3 + rng.Intn(5)
		var layers []Layer
		prev := in
		for d := 0; d < 2+rng.Intn(2); d++ {
			h := 4 + rng.Intn(6)
			layers = append(layers, NewDense(prev, h).InitHe(rng), NewFlip(h), NewReLU(h))
			prev = h
		}
		layers = append(layers, NewDense(prev, 2+rng.Intn(3)).InitHe(rng))
		nets = append(nets, NewNetwork(layers...))
	}

	// Fuzzed conv stack: conv-flip-relu-pool, flatten, locked dense head.
	for i := 0; i < 2; i++ {
		hw := 6 + 2*rng.Intn(2) // 6 or 8
		ch := 2 + rng.Intn(2)
		conv := NewConv2D(1, hw, hw, ch, 3, 1, 0).InitHe(rng)
		pool := NewMaxPool2D(ch, conv.OutH, conv.OutW, 2, 2)
		hidden := 5 + rng.Intn(5)
		nets = append(nets, NewNetwork(
			conv, NewFlip(conv.OutSize()), NewReLU(conv.OutSize()), pool,
			NewFlatten(pool.OutSize()),
			NewDense(pool.OutSize(), hidden).InitHe(rng), NewFlip(hidden), NewReLU(hidden),
			NewDense(hidden, 3).InitHe(rng),
		))
	}

	// Residual net: locked stem plus a basic block with flips inside the
	// residual body (incl. an ungated flip feeding the residual add).
	{
		stem := NewConv2D(1, 6, 6, 3, 3, 1, 1).InitHe(rng)
		c1 := NewConv2D(3, 6, 6, 3, 3, 1, 1).InitHe(rng)
		c2 := NewConv2D(3, 6, 6, 3, 3, 1, 1).InitHe(rng)
		body := []Layer{
			c1, NewFlip(c1.OutSize()), NewReLU(c1.OutSize()),
			c2, NewFlip(c2.OutSize()),
		}
		nets = append(nets, NewNetwork(
			stem, NewFlip(stem.OutSize()), NewReLU(stem.OutSize()),
			NewResidual(body, nil), NewReLU(c2.OutSize()),
			NewGlobalAvgPool(3, 6, 6),
			NewDense(3, 2).InitHe(rng),
		))
	}

	// One-block ReLU V-Transformer with the flip on the MLP hidden layer.
	{
		const t, d, dh, dm = 4, 6, 4, 8
		pe := NewPatchEmbed(1, 8, 8, 4, d).InitXavier(rng)
		attn := NewResidual([]Layer{NewAttentionReLU(t, d, dh).InitXavier(rng)}, nil)
		mlp := NewResidual([]Layer{
			NewTokenDense(t, d, dm).InitHe(rng),
			NewFlip(t * dm),
			NewReLU(t * dm),
			NewTokenDense(t, dm, d).InitHe(rng),
		}, nil)
		nets = append(nets, NewNetwork(
			pe, attn, mlp, NewMeanTokens(t, d), NewDense(d, 3).InitHe(rng),
		))
	}
	return nets
}

// softenFrom puts a few random indices of every flip site >= first into
// soft mode (random gating form, random hard signs elsewhere) and returns
// the soft parameters.
func softenFrom(net *Network, first int, rng *rand.Rand) []*Param {
	var params []*Param
	for _, f := range net.Flips() {
		for j := 0; j < f.N; j++ {
			f.SetBit(j, rng.Intn(2) == 0)
		}
		if f.SiteID < first {
			continue
		}
		k := 1 + rng.Intn(f.N)
		idxs := rng.Perm(f.N)[:k]
		params = append(params, f.Soften(idxs, rng.Intn(2) == 0))
	}
	return params
}

// TestSplitPrefixHoldsOnlyEarlierSites checks the structural invariant the
// cache correctness rests on: every flip in the prefix of Split(s) has a
// site ID strictly below s, so it stays hard/frozen during the fit.
func TestSplitPrefixHoldsOnlyEarlierSites(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for ni, net := range fuzzedSliceNets(rng) {
		for s := 0; s < net.NumFlipSites(); s++ {
			sl := net.Split(s)
			for _, l := range net.Layers[:sl.Cut()] {
				for pre := 0; pre < net.NumFlipSites(); pre++ {
					if layerHasFlipSite(l, pre) && pre >= s {
						t.Fatalf("net %d: Split(%d) left site %d in the prefix", ni, s, pre)
					}
				}
			}
			if !layerHasFlipSite(net.Layers[sl.Cut()], s) && sl.Cut() != 0 {
				// The cut layer itself must contain the split site.
				t.Fatalf("net %d: Split(%d) cut layer %d misses the site", ni, s, sl.Cut())
			}
		}
	}
}

// TestSlicedForwardBackwardEquivalence is the slice property test: for every
// fuzzed architecture and every slice point, the sliced forward pass
// (one-shot frozen prefix + suffix TrainForward) and the boundary-stopped
// backward pass produce exactly the same predictions and soft-coefficient
// gradients as the full-network pass. Comparison is exact float equality —
// the prefix is deterministic under frozen weights, so there is no
// tolerance to hide behind.
func TestSlicedForwardBackwardEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	for ni, net := range fuzzedSliceNets(rng) {
		for s := 0; s < net.NumFlipSites(); s++ {
			params := softenFrom(net, s, rng)
			for _, p := range params {
				for i := range p.W.Data {
					p.W.Data[i] = rng.NormFloat64() * 0.3
				}
			}
			x := tensor.New(7, net.InSize())
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			dy := tensor.New(7, net.OutSize())
			for i := range dy.Data {
				dy.Data[i] = rng.NormFloat64()
			}

			// Full pass.
			full := net.FullSlice()
			predFull := full.TrainForward(x).Clone()
			full.Backward(dy)
			gradsFull := make([][]float64, len(params))
			for i, p := range params {
				gradsFull[i] = append([]float64(nil), p.G.Data...)
			}
			full.ZeroGrad()

			// Sliced pass over the cached prefix activations.
			sl := net.Split(s)
			h := sl.PrefixForward(x)
			if h != x {
				defer tensor.PutMatrix(h)
			}
			predSliced := sl.TrainForward(h)
			for i := range predFull.Data {
				if predFull.Data[i] != predSliced.Data[i] {
					t.Fatalf("net %d split %d: prediction %d diverged: %v vs %v",
						ni, s, i, predFull.Data[i], predSliced.Data[i])
				}
			}
			sl.Backward(dy)
			for pi, p := range params {
				for i, g := range p.G.Data {
					if g != gradsFull[pi][i] {
						t.Fatalf("net %d split %d: soft grad %d/%d diverged: %v vs %v",
							ni, s, pi, i, g, gradsFull[pi][i])
					}
				}
			}
			sl.ZeroGrad()
			for _, f := range net.Flips() {
				f.Harden()
			}
		}
	}
}

// TestPrefixForwardBatchIndependence checks the cache's key soundness
// property directly: a row's prefix activation is identical whether it was
// evaluated alone, inside a small batch, or inside the full query set.
func TestPrefixForwardBatchIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	for ni, net := range fuzzedSliceNets(rng) {
		last := net.NumFlipSites() - 1
		sl := net.Split(last)
		if sl.Cut() == 0 {
			continue
		}
		x := tensor.New(9, net.InSize())
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		whole := sl.PrefixForward(x)
		for r := 0; r < x.Rows; r++ {
			one := tensor.FromSlice(1, x.Cols, x.Row(r))
			hr := sl.PrefixForward(one)
			for c, v := range hr.Row(0) {
				if v != whole.At(r, c) {
					t.Fatalf("net %d row %d col %d: batch-dependent prefix value", ni, r, c)
				}
			}
			tensor.PutMatrix(hr)
		}
		tensor.PutMatrix(whole)
	}
}
