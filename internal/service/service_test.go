package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/harness"
)

// postJSON submits a body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// pollJob polls GET /jobs/{id} until pred accepts the view or the deadline
// expires.
func pollJob(t *testing.T, base, id string, timeout time.Duration, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, v := getJSON(t, base+"/jobs/"+id)
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out polling job %s; last view: %v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func terminal(v map[string]any) bool {
	switch v["state"] {
	case "completed", "failed", "cancelled":
		return true
	}
	return false
}

// TestDaemonBackpressureAndDrain drives the pool/backpressure/drain
// machinery with a fake blocking runner: one worker, queue depth one, so
// the third submit must be rejected with 429 + Retry-After, and a drain
// must shut the pool down cleanly.
func TestDaemonBackpressureAndDrain(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	s.runJob = func(_ int, j *Job) {
		j.setState(StateRunning)
		<-block
		j.setState(StateCompleted)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := map[string]any{"kind": "decrypt", "model": "mlp", "key_bits": 4}
	resp1, v1 := postJSON(t, ts.URL+"/jobs", spec)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: got %d, want 202 (%v)", resp1.StatusCode, v1)
	}
	id1 := v1["id"].(string)
	pollJob(t, ts.URL, id1, 5*time.Second, func(v map[string]any) bool {
		return v["state"] == "running"
	})

	// Worker is blocked on job 1; job 2 fills the only queue slot.
	resp2, v2 := postJSON(t, ts.URL+"/jobs", spec)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: got %d, want 202 (%v)", resp2.StatusCode, v2)
	}
	// Queue full: job 3 must bounce with backpressure.
	resp3, v3 := postJSON(t, ts.URL+"/jobs", spec)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: got %d, want 429 (%v)", resp3.StatusCode, v3)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing the Retry-After header")
	}

	// Suspend is accepted for a queued decrypt job.
	suspResp, _ := postJSON(t, ts.URL+"/jobs/"+v2["id"].(string)+"/suspend", nil)
	if suspResp.StatusCode != http.StatusAccepted {
		t.Fatalf("suspend queued job: got %d, want 202", suspResp.StatusCode)
	}

	// A bad spec is rejected before touching the queue.
	respBad, _ := postJSON(t, ts.URL+"/jobs", map[string]any{"model": "mlp"})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d, want 400", respBad.StatusCode)
	}

	if resp, v := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || v["status"] != "ok" {
		t.Fatalf("healthz: got %d %v", resp.StatusCode, v)
	}
	_, m := getJSON(t, ts.URL+"/metrics")
	if rej := m["jobs"].(map[string]any)["rejected"].(float64); rej < 1 {
		t.Errorf("metrics rejected = %v, want >= 1", rej)
	}

	// Drain: unblock the worker, then shut down; both jobs finish.
	close(block)
	if !s.Drain(5 * time.Second) {
		t.Fatal("drain did not complete")
	}
	if resp, v := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable || v["status"] != "draining" {
		t.Fatalf("healthz while draining: got %d %v", resp.StatusCode, v)
	}
	respAfter, _ := postJSON(t, ts.URL+"/jobs", spec)
	if respAfter.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %d, want 503", respAfter.StatusCode)
	}
}

// TestDaemonEndToEndParity runs a real MLP 4-bit decrypt job through the
// HTTP API and checks its query/round counts match a direct harness run of
// the same cell — the same parity the check.sh daemon smoke verifies.
func TestDaemonEndToEndParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a cell")
	}
	// Direct reference run, exactly as the daemon's runner constructs it.
	cell, err := harness.PrepareCell("mlp", 4, harness.TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Run(cell.WhiteBox(), cell.Spec(), cell.NewOracle(), cell.DecryptConfig())
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, v := postJSON(t, ts.URL+"/jobs", map[string]any{
		"kind": "decrypt", "model": "mlp", "key_bits": 4, "scale": "tiny",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d (%v)", resp.StatusCode, v)
	}
	id := v["id"].(string)
	final := pollJob(t, ts.URL, id, 120*time.Second, terminal)
	if final["state"] != "completed" {
		t.Fatalf("job ended %v: %v", final["state"], final["error"])
	}
	res := final["result"].(map[string]any)
	if got, want := int64(res["queries"].(float64)), ref.Queries; got != want {
		t.Errorf("daemon queries = %d, direct run = %d", got, want)
	}
	if got, want := int64(res["rounds"].(float64)), ref.Rounds; got != want {
		t.Errorf("daemon rounds = %d, direct run = %d", got, want)
	}
	if res["equivalent"] != ref.Equivalent {
		t.Errorf("daemon equivalent = %v, direct run = %v", res["equivalent"], ref.Equivalent)
	}
	if fid := res["fidelity"].(float64); fid != cell.Fidelity(ref.Key) {
		t.Errorf("daemon fidelity = %v, direct run = %v", fid, cell.Fidelity(ref.Key))
	}

	// The job's trace is served as JSONL with a root "job" span.
	traceResp, err := http.Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<20)
	n, _ := traceResp.Body.Read(raw)
	traceResp.Body.Close()
	if !strings.Contains(string(raw[:n]), `"name":"job"`) {
		t.Errorf("trace output lacks the job root span: %.200s", raw[:n])
	}

	// The final checkpoint is downloadable.
	ckResp, err := http.Get(ts.URL + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckResp.Body.Close()
	if ckResp.StatusCode != http.StatusOK {
		t.Errorf("checkpoint: got %d, want 200", ckResp.StatusCode)
	}
}

// TestDaemonSuspendResume suspends a running decrypt job at its first site
// boundary, resumes it over the API, and checks the finished job matches a
// direct uninterrupted run — the service-level face of the checkpoint
// bit-identity property.
func TestDaemonSuspendResume(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a cell")
	}
	cell, err := harness.PrepareCell("mlp", 4, harness.TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Run(cell.WhiteBox(), cell.Spec(), cell.NewOracle(), cell.DecryptConfig())
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)
	// Land a suspend request at exactly the first site boundary: tiny-scale
	// jobs finish in milliseconds, so racing an HTTP suspend against the
	// run would be flaky. The hook fires once; the resumed attempt runs to
	// completion.
	var suspended atomic.Bool
	s.ckptHook = func(j *Job) {
		if suspended.CompareAndSwap(false, true) {
			j.stop.CompareAndSwap(stopNone, stopSuspend)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, v := postJSON(t, ts.URL+"/jobs", map[string]any{
		"kind": "decrypt", "model": "mlp", "key_bits": 4,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d (%v)", resp.StatusCode, v)
	}
	id := v["id"].(string)

	susp := pollJob(t, ts.URL, id, 120*time.Second, func(v map[string]any) bool {
		return v["state"] == "suspended" || terminal(v)
	})
	if susp["state"] != "suspended" {
		t.Fatalf("job reached %v instead of suspending at the first boundary", susp["state"])
	}
	if susp["has_checkpoint"] != true {
		t.Fatal("suspended job has no checkpoint")
	}
	prog := susp["progress"].(map[string]any)
	if done := prog["sites_done"].(float64); done != 1 {
		t.Errorf("suspended with sites_done = %v, want 1 (first boundary)", done)
	}

	// Suspending again conflicts; resuming requeues a new attempt.
	again, _ := postJSON(t, ts.URL+"/jobs/"+id+"/suspend", nil)
	if again.StatusCode != http.StatusConflict {
		t.Fatalf("double suspend: got %d, want 409", again.StatusCode)
	}
	resResp, resV := postJSON(t, ts.URL+"/jobs/"+id+"/resume", nil)
	if resResp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume: got %d (%v)", resResp.StatusCode, resV)
	}
	if att := resV["attempt"].(float64); att != 2 {
		t.Errorf("resumed attempt = %v, want 2", att)
	}

	final := pollJob(t, ts.URL, id, 120*time.Second, terminal)
	if final["state"] != "completed" {
		t.Fatalf("resumed job ended %v: %v", final["state"], final["error"])
	}
	res := final["result"].(map[string]any)
	if got, want := int64(res["queries"].(float64)), ref.Queries; got != want {
		t.Errorf("resumed queries = %d, uninterrupted = %d", got, want)
	}
	if got, want := int64(res["rounds"].(float64)), ref.Rounds; got != want {
		t.Errorf("resumed rounds = %d, uninterrupted = %d", got, want)
	}
	if fid := res["fidelity"].(float64); fid != cell.Fidelity(ref.Key) {
		t.Errorf("resumed fidelity = %v, uninterrupted = %v", fid, cell.Fidelity(ref.Key))
	}

	// Resuming a completed job conflicts.
	resAgain, _ := postJSON(t, ts.URL+"/jobs/"+id+"/resume", nil)
	if resAgain.StatusCode != http.StatusConflict {
		t.Fatalf("resume of completed job: got %d, want 409", resAgain.StatusCode)
	}
}

// TestJobSpecNormalize exercises spec validation and defaults.
func TestJobSpecNormalize(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"defaults", JobSpec{Model: "mlp", KeyBits: 4}, true},
		{"monolithic", JobSpec{Kind: KindMonolithic, Model: "mlp", KeyBits: 4}, true},
		{"farm defaults", JobSpec{Model: "mlp", KeyBits: 4, Oracle: OracleSpec{Channel: "farm"}}, true},
		{"no model", JobSpec{KeyBits: 4}, false},
		{"bad kind", JobSpec{Kind: "gnn", Model: "mlp", KeyBits: 4}, false},
		{"bad bits", JobSpec{Model: "mlp", KeyBits: 0}, false},
		{"bad scale", JobSpec{Model: "mlp", KeyBits: 4, Scale: "huge"}, false},
		{"bad channel", JobSpec{Model: "mlp", KeyBits: 4, Oracle: OracleSpec{Channel: "carrier-pigeon"}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.normalize()
			if tc.ok && err != nil {
				t.Fatalf("normalize: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("normalize accepted an invalid spec")
			}
			if tc.ok {
				if tc.spec.Kind == "" || tc.spec.Scale == "" || tc.spec.Oracle.Channel == "" {
					t.Errorf("defaults not filled: %+v", tc.spec)
				}
				if tc.spec.Oracle.Channel == "farm" && (tc.spec.Oracle.Mix == "" || tc.spec.Oracle.Devices == 0) {
					t.Errorf("farm defaults not filled: %+v", tc.spec.Oracle)
				}
			}
		})
	}
}

// TestDaemonStatePersistence checks the state-dir round trip: a suspended
// job survives a daemon restart with its checkpoint intact and resumes to
// completion.
func TestDaemonStatePersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a cell")
	}
	dir := t.TempDir()

	s1, err := New(Config{Workers: 1, QueueDepth: 2, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.ckptHook = func(j *Job) { j.stop.CompareAndSwap(stopNone, stopSuspend) }
	ts1 := httptest.NewServer(s1.Handler())

	_, v := postJSON(t, ts1.URL+"/jobs", map[string]any{
		"kind": "decrypt", "model": "mlp", "key_bits": 4,
	})
	id := v["id"].(string)
	susp := pollJob(t, ts1.URL, id, 120*time.Second, func(v map[string]any) bool {
		return v["state"] == "suspended" || terminal(v)
	})
	if susp["state"] != "suspended" {
		t.Fatalf("job reached %v instead of suspending at the first boundary", susp["state"])
	}
	s1.Drain(10 * time.Second)
	ts1.Close()

	// Restart over the same state dir: the suspended job is reloaded and
	// waits for an explicit resume.
	s2, err := New(Config{Workers: 1, QueueDepth: 2, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(10 * time.Second)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	_, reloaded := getJSON(t, ts2.URL+"/jobs/"+id)
	if reloaded["state"] != "suspended" {
		t.Fatalf("reloaded job state = %v, want suspended", reloaded["state"])
	}
	if reloaded["has_checkpoint"] != true {
		t.Fatal("reloaded job lost its checkpoint")
	}
	resResp, _ := postJSON(t, ts2.URL+"/jobs/"+id+"/resume", nil)
	if resResp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume after restart: got %d", resResp.StatusCode)
	}
	final := pollJob(t, ts2.URL, id, 120*time.Second, terminal)
	if final["state"] != "completed" {
		t.Fatalf("job after restart ended %v: %v", final["state"], final["error"])
	}
	if eq := final["result"].(map[string]any)["equivalent"]; eq != true {
		t.Errorf("cross-process resumed job not equivalent: %v", eq)
	}
}

// TestShardForStable pins the resharding hash: same (id, attempt) always
// maps to the same shard, and different attempts can move shards.
func TestShardForStable(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(time.Second)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%06d", i)
		for attempt := 1; attempt <= 3; attempt++ {
			a := s.shardFor(id, attempt)
			b := s.shardFor(id, attempt)
			if a != b {
				t.Fatalf("shardFor(%q, %d) unstable: %d vs %d", id, attempt, a, b)
			}
			if a < 0 || a >= 4 {
				t.Fatalf("shardFor(%q, %d) = %d out of range", id, attempt, a)
			}
		}
	}
}
