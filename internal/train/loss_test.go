package train

import (
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

func randMat(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 3
	}
	return m
}

// TestMSEIntoMatchesMSE pins the pooled variant to the allocating one.
func TestMSEIntoMatchesMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pred, target := randMat(9, 5, rng), randMat(9, 5, rng)
	wantLoss, wantGrad := MSE(pred, target)
	grad := tensor.GetMatrix(9, 5)
	defer tensor.PutMatrix(grad)
	loss := MSEInto(grad, pred, target)
	if loss != wantLoss {
		t.Fatalf("loss %v != %v", loss, wantLoss)
	}
	for i := range grad.Data {
		if grad.Data[i] != wantGrad.Data[i] {
			t.Fatalf("grad %d: %v != %v", i, grad.Data[i], wantGrad.Data[i])
		}
	}
}

// TestMSESoftmaxMatchesUnfusedReference checks the fused softmax-MSE loss
// against the explicit three-step reference (softmax rows, MSE, Jacobian
// pullback) with exact float comparison — the fusion reorders nothing.
func TestMSESoftmaxMatchesUnfusedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 2+rng.Intn(7)
		pred, target := randMat(rows, cols, rng), randMat(rows, cols, rng)
		predSave := pred.Clone()

		// Reference path, as fitSoft computed it before the fusion.
		probs := pred.Clone()
		for r := 0; r < probs.Rows; r++ {
			row := probs.Row(r)
			tensor.SoftmaxInto(row, row)
		}
		wantLoss, wantGrad := MSE(probs, target)
		for r := 0; r < wantGrad.Rows; r++ {
			p := probs.Row(r)
			g := wantGrad.Row(r)
			dot := tensor.Dot(p, g)
			for i := range g {
				g[i] = p[i] * (g[i] - dot)
			}
		}

		loss, grad := MSESoftmax(pred, target)
		if loss != wantLoss {
			t.Fatalf("trial %d: loss %v != %v", trial, loss, wantLoss)
		}
		for i := range grad.Data {
			if grad.Data[i] != wantGrad.Data[i] {
				t.Fatalf("trial %d: grad %d: %v != %v", trial, i, grad.Data[i], wantGrad.Data[i])
			}
		}
		for i := range pred.Data {
			if pred.Data[i] != predSave.Data[i] {
				t.Fatalf("trial %d: MSESoftmax mutated its input at %d", trial, i)
			}
		}
		tensor.PutMatrix(grad)
	}
}
