package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// The CFG tests drive the builder through every statement kind the repo
// uses and check path behavior through the solver rather than by asserting
// on block layout: a fact is generated at the gen() marker, killed at the
// kill() marker, and the test asks whether the fact can reach the function
// exit. That is exactly how the analyzers consume the graph, so the tests
// stay valid under any block-splitting strategy.

// buildCFGFor parses one function body and builds its CFG.
func buildCFGFor(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n" +
		"func gen()\nfunc kill()\nfunc other()\nfunc cond() bool\nfunc vals() []int\nfunc ch() chan int\n" +
		"type T struct{}\nfunc (T) Fatalf(string, ...any)\n" +
		"func f(n int, t T, c chan int, v any) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfgtest.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("func f not found")
	return nil
}

// markerNodes finds every CFG element containing a call to the named marker.
func markerNodes(g *CFG, name string) []ast.Node {
	var out []ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				out = append(out, n)
			}
		}
	}
	return out
}

// markerNode finds the first CFG element containing a call to the marker.
func markerNode(g *CFG, name string) ast.Node {
	if ns := markerNodes(g, name); len(ns) > 0 {
		return ns[0]
	}
	return nil
}

// outstandingAtExit reports whether a fact generated at gen() can reach the
// function exit without passing kill().
func outstandingAtExit(t *testing.T, body string) bool {
	t.Helper()
	g := buildCFGFor(t, body)
	prob := &FlowProblem{CFG: g, Facts: 1, May: true,
		Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
	gns := markerNodes(g, "gen")
	if len(gns) == 0 {
		t.Fatal("no gen() marker in body")
	}
	for _, gn := range gns {
		prob.Gen[gn] = []int{0}
	}
	for _, kn := range markerNodes(g, "kill") {
		prob.Kill[kn] = []int{0}
	}
	return prob.Solve().In[g.Exit].Has(0)
}

func TestCFGStraightLine(t *testing.T) {
	if outstandingAtExit(t, "gen()\nkill()") {
		t.Error("straight-line kill did not discharge the fact")
	}
	if !outstandingAtExit(t, "gen()\nother()") {
		t.Error("fact should reach exit with no kill")
	}
}

func TestCFGIfElse(t *testing.T) {
	if outstandingAtExit(t, "gen()\nif cond() {\n\tkill()\n} else {\n\tkill()\n}") {
		t.Error("kill on both arms should discharge")
	}
	if !outstandingAtExit(t, "gen()\nif cond() {\n\tkill()\n}") {
		t.Error("kill on one arm only: the else path must leak")
	}
	// A return with the fact outstanding reaches Exit (that is what a
	// leak-on-return is), but the fact must not flow past the return into
	// the code after the if.
	{
		g := buildCFGFor(t, "if cond() {\n\tgen()\n\treturn\n}\nother()")
		prob := &FlowProblem{CFG: g, Facts: 1, May: true,
			Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
		prob.Gen[markerNode(g, "gen")] = []int{0}
		res := prob.Solve()
		blk, idx := g.FindNode(markerNode(g, "other").Pos())
		if res.Before(blk, idx).Has(0) {
			t.Error("fact leaked past a return into the fall-through code")
		}
		if !res.In[g.Exit].Has(0) {
			t.Error("fact outstanding at a return must reach Exit")
		}
	}
	if outstandingAtExit(t, "if v := cond(); v {\n\tgen()\n\tkill()\n}") {
		t.Error("if with init statement mis-built")
	}
}

func TestCFGForLoop(t *testing.T) {
	if outstandingAtExit(t, "for i := 0; i < n; i++ {\n\tgen()\n\tkill()\n}") {
		t.Error("balanced loop body should be clean")
	}
	if !outstandingAtExit(t, "for i := 0; i < n; i++ {\n\tgen()\n}") {
		t.Error("fact generated in loop must reach exit through the loop exit")
	}
	if !outstandingAtExit(t, "for i := 0; i < n; i++ {\n\tgen()\n\tif cond() {\n\t\tcontinue\n\t}\n\tkill()\n}") {
		t.Error("continue skipping the kill must leak around the back edge")
	}
	if !outstandingAtExit(t, "for i := 0; i < n; i++ {\n\tgen()\n\tif cond() {\n\t\tbreak\n\t}\n\tkill()\n}") {
		t.Error("break skipping the kill must leak to the loop join")
	}
}

func TestCFGInfiniteLoop(t *testing.T) {
	// for {} without a break never reaches the closing brace: the
	// falls-off block (if any) must be unreachable.
	g := buildCFGFor(t, "for {\n\tother()\n}")
	if g.FallsOff != nil && g.FallsOff.Reachable {
		t.Error("infinite loop must not have a reachable fall-through edge")
	}
	if !outstandingAtExit(t, "gen()\nfor {\n\tif cond() {\n\t\tbreak\n\t}\n}\nother()") {
		t.Error("break out of for{} must continue to the code after the loop")
	}
}

func TestCFGRange(t *testing.T) {
	if outstandingAtExit(t, "for _, x := range vals() {\n\t_ = x\n\tgen()\n\tkill()\n}") {
		t.Error("balanced range body should be clean")
	}
	// A range can run zero times: a kill only inside the body does not
	// cover a fact generated before the loop.
	if !outstandingAtExit(t, "gen()\nfor range vals() {\n\tkill()\n}") {
		t.Error("zero-iteration range edge missing")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	if !outstandingAtExit(t, "L:\nfor i := 0; i < n; i++ {\n\tgen()\n\tfor j := 0; j < n; j++ {\n\t\tbreak L\n\t}\n\tkill()\n}") {
		t.Error("labeled break must exit the outer loop, skipping the kill")
	}
	if !outstandingAtExit(t, "L:\nfor i := 0; i < n; i++ {\n\tgen()\n\tfor j := 0; j < n; j++ {\n\t\tcontinue L\n\t}\n\tkill()\n}") {
		t.Error("labeled continue must restart the outer loop, skipping the kill")
	}
	if outstandingAtExit(t, "L:\nfor i := 0; i < n; i++ {\n\tgen()\n\tfor j := 0; j < n; j++ {\n\t\tcontinue L\n\t}\n\tkill()\n}\nkill()") {
		t.Error("kill after the labeled loop must cover the continue path")
	}
}

func TestCFGGoto(t *testing.T) {
	if !outstandingAtExit(t, "gen()\nif cond() {\n\tgoto Skip\n}\nkill()\nSkip:\nother()") {
		t.Error("goto must skip the kill")
	}
	if outstandingAtExit(t, "goto Fwd\nFwd:\ngen()\nkill()") {
		t.Error("forward goto mis-built")
	}
}

func TestCFGSwitch(t *testing.T) {
	if !outstandingAtExit(t, "switch n {\ncase 1:\n\tgen()\ncase 2:\n\tkill()\n}") {
		t.Error("gen in one case must leak: the kill case is a different path")
	}
	if outstandingAtExit(t, "switch n {\ncase 1:\n\tgen()\n\tfallthrough\ncase 2:\n\tkill()\n}") {
		t.Error("fallthrough must carry the fact into the next case's kill")
	}
	if outstandingAtExit(t, "gen()\nswitch n {\ncase 1:\n\tkill()\ndefault:\n\tkill()\n}") {
		t.Error("kill in every case incl. default should discharge")
	}
	if !outstandingAtExit(t, "gen()\nswitch n {\ncase 1:\n\tkill()\ncase 2:\n\tkill()\n}") {
		t.Error("switch without default can match nothing: fact must survive")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	if !outstandingAtExit(t, "gen()\nswitch v.(type) {\ncase int:\n\tkill()\n}") {
		t.Error("type switch without default can match nothing")
	}
	if outstandingAtExit(t, "gen()\nswitch x := v.(type) {\ncase int:\n\t_ = x\n\tkill()\ndefault:\n\tkill()\n}") {
		t.Error("type switch with default covering all paths should discharge")
	}
}

func TestCFGSelect(t *testing.T) {
	if !outstandingAtExit(t, "gen()\nselect {\ncase <-c:\n\tkill()\ncase c <- 1:\n\tother()\n}") {
		t.Error("select arm without the kill must leak")
	}
	if outstandingAtExit(t, "gen()\nselect {\ncase <-c:\n\tkill()\ncase c <- 1:\n\tkill()\n}") {
		t.Error("kill in every select arm should discharge")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	g := buildCFGFor(t, "for i := 0; i < n; i++ {\n\tdefer other()\n}\nif cond() {\n\tdefer kill()\n}")
	if len(g.Defers) != 2 {
		t.Errorf("got %d defers, want 2 (defer-in-loop and conditional defer)", len(g.Defers))
	}
}

func TestCFGTerminalCalls(t *testing.T) {
	if outstandingAtExit(t, "gen()\npanic(\"x\")") {
		t.Error("panic terminates the path: the fact must not reach exit")
	}
	if outstandingAtExit(t, "gen()\nt.Fatalf(\"x\")") {
		t.Error("Fatalf terminates the path")
	}
	if !outstandingAtExit(t, "gen()\nif cond() {\n\tpanic(\"x\")\n}") {
		t.Error("only one arm panics: the other path must still leak")
	}
}

func TestCFGUnreachableNodesKept(t *testing.T) {
	g := buildCFGFor(t, "return\nother()")
	n := markerNode(g, "other")
	if n == nil {
		t.Fatal("statement after return was dropped from the graph")
	}
	blk, _ := g.FindNode(n.Pos())
	if blk.Reachable {
		t.Error("statement after return must be in an unreachable block")
	}
}

func TestCFGMustReach(t *testing.T) {
	// Must-analysis: the fact holds at exit only if EVERY path generates it.
	build := func(body string) (*CFG, *FlowProblem) {
		g := buildCFGFor(t, body)
		prob := &FlowProblem{CFG: g, Facts: 1, May: false,
			Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
		for _, gn := range markerNodes(g, "gen") {
			prob.Gen[gn] = []int{0}
		}
		return g, prob
	}
	g, prob := build("if cond() {\n\tgen()\n} else {\n\tgen()\n}")
	if !prob.Solve().In[g.Exit].Has(0) {
		t.Error("gen on both arms must-reaches exit")
	}
	g, prob = build("if cond() {\n\tgen()\n}")
	if prob.Solve().In[g.Exit].Has(0) {
		t.Error("gen on one arm only does not must-reach exit")
	}
}

func TestFlowBefore(t *testing.T) {
	g := buildCFGFor(t, "gen()\nother()\nkill()")
	prob := &FlowProblem{CFG: g, Facts: 1, May: true,
		Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
	prob.Gen[markerNode(g, "gen")] = []int{0}
	prob.Kill[markerNode(g, "kill")] = []int{0}
	res := prob.Solve()
	blk, idx := g.FindNode(markerNode(g, "other").Pos())
	if !res.Before(blk, idx).Has(0) {
		t.Error("fact must hold between gen and kill")
	}
	kblk, kidx := g.FindNode(markerNode(g, "kill").Pos())
	if got := res.Before(kblk, kidx); !got.Has(0) {
		t.Error("fact must hold just before the kill")
	}
	if !res.In[g.Exit].Empty() {
		t.Error("fact must be discharged at exit")
	}
}

func TestBitSetOps(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("bit %d lost", i)
		}
	}
	s.ClearBit(64)
	if s.Has(64) {
		t.Error("ClearBit failed")
	}
	o := NewBitSet(130)
	o.Fill()
	if !o.Has(129) || o.Empty() {
		t.Error("Fill missed the top bit")
	}
	c := s.Copy()
	if c.UnionWith(o); !c.Has(64) {
		t.Error("union failed")
	}
	if c.IntersectWith(s); c.Has(64) {
		t.Error("intersect failed")
	}
}

// TestCFGRepoSmoke builds a CFG for every function in the repository and
// solves a trivial dataflow problem on each: construction must succeed and
// the fixpoint must terminate on all real control flow (nested loops,
// selects, labeled jumps, the works).
func TestCFGRepoSmoke(t *testing.T) {
	prog, err := Load("../..")
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	funcs, blocks := 0, 0
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, region := range functionRegions(f) {
				g := BuildCFG(region)
				funcs++
				blocks += len(g.Blocks)
				if g.Entry == nil || g.Exit == nil {
					t.Fatalf("%s: CFG missing entry/exit", prog.Fset.Position(region.Pos()))
				}
				prob := &FlowProblem{CFG: g, Facts: 4, May: true,
					Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
				for _, b := range g.Blocks {
					for _, n := range b.Nodes {
						prob.Gen[n] = []int{int(n.Pos()) % 4}
					}
				}
				prob.Solve() // must terminate
			}
		}
	}
	if funcs < 500 {
		t.Errorf("CFG smoke covered only %d functions; expected the whole repo", funcs)
	}
	t.Logf("built %d CFGs (%d blocks)", funcs, blocks)
}
