// Package core implements the paper's primary contribution: the DNN
// decryption attack of Algorithm 2 with its four procedures —
// search_critical_point (§3.5), key_bit_inference (Algorithm 1, §3.3),
// learning_attack (§3.6), key_vector_validation (§3.7) and
// error_correction (§3.8) — plus the monolithic learning-based baseline
// (§4.3) and the §3.9 variant reductions.
//
// Oracle traffic is shaped by the query planner (planner.go): every
// oracle-facing procedure routes its probes through a batching seam that
// coalesces same-round probes into QueryBatch round-trips, so rounds — the
// quantity that pays network latency against a remote device — shrink
// without changing query counts or recovered keys. Config.Multisect and
// Config.ProbeCache trade probes for rounds further.
//
// Long runs are suspendable: Config.OnCheckpoint receives a versioned,
// serializable Checkpoint at every site boundary, and Resume continues a
// checkpointed run bit-identically (same key, queries, rounds) to an
// uninterrupted one. See checkpoint.go for the wire format and the
// resumability invariants per oracle decorator.
package core

import (
	"io"
	"log/slog"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/obs"
	"dnnlock/internal/tensor"
)

// Precision selects the arithmetic width of the learning attack's
// training loop (§3.6). Everything else — key-bit inference, validation,
// error correction, the oracle boundary — always runs exact float64.
type Precision int

// Training precisions. Float64 is the zero value, so an unset Config keeps
// the paper-exact reference path.
const (
	// Float64 is the exact reference tier: bit-identical to the paper's
	// arithmetic, covered by the bit-identity property tests.
	Float64 Precision = iota
	// Float32 is the speed tier (DESIGN.md §13): suffix forward/backward in
	// float32 over arena-backed workspaces, with the soft key coefficients
	// kept as float64 masters so the optimizer, stop rules and hardening are
	// shared with the exact tier. Falls back to Float64 on any suffix layer
	// without a float32 shadow.
	Float32
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	default:
		return "float64"
	}
}

// Config tunes the attack. Zero values are replaced by the defaults below.
type Config struct {
	// Epsilon is the probe step of Algorithm 1: the oracle is queried at
	// x° ± ε·v where Â·v = e_j, so the target pre-activation moves by ±ε.
	Epsilon float64
	// CriticalTol is the |u| tolerance accepted by the bisection of
	// search_critical_point.
	CriticalTol float64
	// InputLim bounds the random-line sampling box [-lim, lim]^P.
	InputLim float64
	// LineSamples is the number of coarse samples per random line.
	LineSamples int
	// MaxLineTries bounds the number of random lines tried per search.
	MaxLineTries int
	// MaxCriticalTries bounds retries of Algorithm 1 with fresh critical
	// points before declaring the bit ⊥.
	MaxCriticalTries int
	// ResidualTol is the relative least-squares residual above which the
	// pre-image v is declared nonexistent (expansive location, §3.4).
	ResidualTol float64
	// DecisionRatio is how many times larger one side's output movement
	// must be for Algorithm 1 to decide a bit (robust form of lines 9–10).
	DecisionRatio float64
	// AbsChange is the minimum output movement treated as a real change.
	AbsChange float64

	// LearnQueries is the number of oracle-labelled random inputs per
	// learning_attack invocation; LearnEpochs and LearnRate drive the Adam
	// fit; ConfidenceThreshold settles bits early (§4.1).
	LearnQueries        int
	LearnEpochs         int
	LearnBatch          int
	LearnRate           float64
	ConfidenceThreshold float64
	// PlateauEpochs stops the fit when the loss has not improved for this
	// many consecutive epochs (the attacker-observable form of the
	// paper's stop rule ii).
	PlateauEpochs int
	// TrainPrecision selects the arithmetic width of the fit's forward and
	// backward passes. The default Float64 reproduces the paper exactly;
	// Float32 trades bit-identity of the training trajectory for roughly
	// half the memory traffic while recovering the same key bits (enforced
	// by the precision-parity property test).
	TrainPrecision Precision

	// ValidationNeurons caps how many next-layer neurons vote per
	// validation; ValidationDelta is the kink-probe step;
	// ValidationMajority is the vote fraction required to pass;
	// ValidationSamples is the input count of the last-layer direct
	// comparison; EquivTol its tolerance.
	ValidationNeurons  int
	ValidationDelta    float64
	ValidationMajority float64
	ValidationSamples  int
	EquivTol           float64

	// CorrectionPool caps how many lowest-confidence bits participate in
	// error_correction; MaxCorrectionHamming bounds the Hamming radius;
	// MaxCorrectionRounds bounds learning-retry rounds.
	CorrectionPool       int
	MaxCorrectionHamming int
	MaxCorrectionRounds  int

	// NoiseSigma declares the standard deviation of the oracle's response
	// noise (an oracle.Noisy wrapper, or a physically noisy device). The
	// attack widens its decision thresholds accordingly and repeats probe
	// queries ProbeVotes times, majority-voting the outcomes. Zero means a
	// clean oracle and leaves every threshold bit-identical to the paper's.
	NoiseSigma float64
	// QuantStep declares the output grid spacing of a quantized oracle
	// (oracle.QuantizationStep(bits)); like NoiseSigma it pads decision
	// thresholds. Zero means full precision.
	QuantStep float64
	// ProbeVotes is how many times each oracle-facing decision probe is
	// repeated for majority voting. The default 1 reproduces the paper's
	// single-shot probes exactly; use an odd count ≥3 under declared noise.
	ProbeVotes int
	// QueryRetries bounds the immediate retries of a query that failed with
	// oracle.ErrTransient before the attack degrades that decision to ⊥.
	QueryRetries int

	// Multisect selects k-way multisection for the critical-point zero
	// search (searchZero / bisectSegment): each refinement round probes k−1
	// interior points and narrows the bracket by a factor of k, cutting
	// refinement rounds per critical point from ⌈log₂(1/tol)⌉ to
	// ⌈log_k(1/tol)⌉ at the cost of more probes per round. Today the zero
	// search runs on the white box, so "rounds" are measured as the
	// round-trip template for an oracle-backed search under a remote-device
	// latency model (ROADMAP item 2). 0 or 1 keeps the paper's bisection,
	// bit-identical; values ≥ 2 change which witness the search converges
	// to, so query counts may shift while fidelity is preserved.
	Multisect int
	// ProbeCache enables the content-addressed probe memo: oracle probes of
	// a point already answered this run are served from the cache instead
	// of re-queried, deduplicating repeat points across error-correction
	// candidates and retries. Off by default because cache hits reduce the
	// reported query counts below the paper's.
	ProbeCache bool
	// DisablePlanner restores the pre-planner scalar query path: every
	// multi-point probe issues its points as sequential Query calls and no
	// cross-goroutine coalescing happens. Results and query counts are
	// bit-identical to the planner path on a clean oracle (pinned by
	// TestPlannerEquivalence); only the round-trip count differs. Exists
	// for that equivalence test and for A/B benchmarks.
	DisablePlanner bool

	// Workers is the parallelism degree across neurons / candidates (§4.1).
	Workers int
	// Seed drives all attack randomness.
	Seed int64
	// UseProductMatrix enables the Formulas 2–3 fast path on sequential
	// piecewise-linear networks; the exact JVP is used otherwise.
	UseProductMatrix bool
	// DisableAlgebraic turns key_bit_inference off entirely (ablation).
	DisableAlgebraic bool
	// DisableSlicing makes the learning attack re-run the frozen prefix on
	// every minibatch instead of training the suffix against a one-shot
	// activation cache (nn.Slice). Results are identical either way — this
	// exists for the ablation benchmark and the equivalence property tests.
	DisableSlicing bool
	// Debug, when non-nil, receives debug-level progress lines from the
	// attack. It is a convenience shorthand for Logger =
	// obs.NewLogger(Debug, slog.LevelDebug); Logger wins when both are set.
	Debug io.Writer

	// Tracer records the attack as a tree of spans (see internal/obs). Nil
	// selects the no-op default: phase spans are still timed — they are how
	// Result.Breakdown is populated — but nothing is exported and no
	// probe-level spans exist. Tracing never touches the attack's numerics
	// or random streams, so traced and untraced runs are bit-identical.
	Tracer *obs.Tracer
	// TraceParent, when non-nil, parents the attack's root span (the
	// harness uses it to group the attacks of one Table 1 cell). The span's
	// tracer takes precedence over Tracer.
	TraceParent *obs.Span
	// Logger receives the attack's structured progress records. Nil selects
	// obs.Default(os.Stderr): controlled by DNNLOCK_LOG, discarding when
	// the variable is unset.
	Logger *slog.Logger

	// OnCheckpoint, when non-nil, is called at every site boundary with a
	// complete serializable snapshot of the attack state (see Checkpoint for
	// the wire format and resumability invariants). Returning true continues
	// the run; returning false suspends it — Run returns ErrSuspended, and
	// Resume continues from the delivered checkpoint bit-identically (same
	// key, queries, rounds as an uninterrupted run). The hook runs on the
	// attack goroutine between sites, so it may block (dnnlockd persists the
	// checkpoint inside it) but blocks the attack while it does.
	// Incompatible with ProbeCache (the probe memo is not serialized; Run
	// rejects the combination) and ignored by the §3.9 variant reductions
	// and the monolithic baseline, which run uninterrupted.
	OnCheckpoint func(*Checkpoint) bool

	// critStats, when non-nil, accumulates the zero-search refinement
	// accounting (rounds and probes) that the -multisect trade-off reports.
	// New wires it to the attack's own counters; the free-standing search
	// helpers run unaccounted when it is nil.
	critStats *critStats
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Epsilon:          1e-4,
		CriticalTol:      1e-10,
		InputLim:         2.0,
		LineSamples:      33,
		MaxLineTries:     24,
		MaxCriticalTries: 6,
		ResidualTol:      1e-6,
		DecisionRatio:    20,
		AbsChange:        1e-9,

		LearnQueries:        256,
		LearnEpochs:         200,
		LearnBatch:          32,
		LearnRate:           0.05,
		ConfidenceThreshold: 0.90,
		PlateauEpochs:       25,

		ValidationNeurons:  24,
		ValidationDelta:    1e-4,
		ValidationMajority: 0.85,
		ValidationSamples:  16,
		EquivTol:           1e-6,

		CorrectionPool:       16,
		MaxCorrectionHamming: 2,
		MaxCorrectionRounds:  3,

		ProbeVotes:   1,
		QueryRetries: 2,

		// Honors the DNNLOCK_PROCS override like the tensor runtime, so one
		// variable bounds every fan-out: kernels, attack procedures,
		// error-correction candidates, and the harness's Table 1 cells.
		Workers:          tensor.Parallelism(),
		Seed:             1,
		UseProductMatrix: true,
	}
}

// oracleTol is the extra decision slack implied by the declared oracle
// degradation: Gaussian noise rarely strays past a few sigma (8σ covers the
// worst of three-point probes on both sides), and quantization moves each
// response by at most half a step — a difference of two responses by a full
// step. Exactly zero for a clean oracle, so the paper's thresholds are
// untouched.
func (c Config) oracleTol() float64 {
	return 8*c.NoiseSigma + c.QuantStep
}

// probeStep widens a clean oracle probe step under declared degradation.
// The probed signal — a kink's second difference, an output movement across
// a critical point — grows linearly with the step, while the noise floor
// does not; a step of many oracleTol units restores the signal-to-noise
// margin the paper's tiny steps enjoy on a clean device. Returns exactly
// the clean step for a clean oracle.
func (c Config) probeStep(clean float64) float64 {
	if w := 100 * c.oracleTol(); w > clean {
		return w
	}
	return clean
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Epsilon == 0 {
		c.Epsilon = d.Epsilon
	}
	if c.CriticalTol == 0 {
		c.CriticalTol = d.CriticalTol
	}
	if c.InputLim == 0 {
		c.InputLim = d.InputLim
	}
	if c.LineSamples == 0 {
		c.LineSamples = d.LineSamples
	}
	if c.MaxLineTries == 0 {
		c.MaxLineTries = d.MaxLineTries
	}
	if c.MaxCriticalTries == 0 {
		c.MaxCriticalTries = d.MaxCriticalTries
	}
	if c.ResidualTol == 0 {
		c.ResidualTol = d.ResidualTol
	}
	if c.DecisionRatio == 0 {
		c.DecisionRatio = d.DecisionRatio
	}
	if c.AbsChange == 0 {
		c.AbsChange = d.AbsChange
	}
	if c.LearnQueries == 0 {
		c.LearnQueries = d.LearnQueries
	}
	if c.LearnEpochs == 0 {
		c.LearnEpochs = d.LearnEpochs
	}
	if c.LearnBatch == 0 {
		c.LearnBatch = d.LearnBatch
	}
	if c.LearnRate == 0 {
		c.LearnRate = d.LearnRate
	}
	if c.ConfidenceThreshold == 0 {
		c.ConfidenceThreshold = d.ConfidenceThreshold
	}
	if c.PlateauEpochs == 0 {
		c.PlateauEpochs = d.PlateauEpochs
	}
	if c.ValidationNeurons == 0 {
		c.ValidationNeurons = d.ValidationNeurons
	}
	if c.ValidationDelta == 0 {
		c.ValidationDelta = d.ValidationDelta
	}
	if c.ValidationMajority == 0 {
		c.ValidationMajority = d.ValidationMajority
	}
	if c.ValidationSamples == 0 {
		c.ValidationSamples = d.ValidationSamples
	}
	if c.EquivTol == 0 {
		c.EquivTol = d.EquivTol
	}
	if c.CorrectionPool == 0 {
		c.CorrectionPool = d.CorrectionPool
	}
	if c.MaxCorrectionHamming == 0 {
		c.MaxCorrectionHamming = d.MaxCorrectionHamming
	}
	if c.MaxCorrectionRounds == 0 {
		c.MaxCorrectionRounds = d.MaxCorrectionRounds
	}
	if c.ProbeVotes == 0 {
		c.ProbeVotes = d.ProbeVotes
	}
	if c.QueryRetries == 0 {
		c.QueryRetries = d.QueryRetries
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// BitOrigin records which procedure decided a key bit.
type BitOrigin int

// Bit origins.
const (
	OriginUnknown BitOrigin = iota
	OriginAlgebraic
	OriginLearning
	OriginCorrection
)

// String names the origin.
func (o BitOrigin) String() string {
	switch o {
	case OriginAlgebraic:
		return "algebraic"
	case OriginLearning:
		return "learning"
	case OriginCorrection:
		return "correction"
	default:
		return "unknown"
	}
}

// SiteReport summarizes the attack on one lockable layer.
type SiteReport struct {
	Site           int
	Bits           int
	Algebraic      int // bits decided by key_bit_inference
	Learned        int // bits decided by learning_attack
	Corrected      int // bits flipped by error_correction
	ValidationRuns int
}

// Result is the outcome of a decryption attack.
type Result struct {
	Key     hpnn.Key
	Origins []BitOrigin
	Queries int64
	// Rounds counts oracle round-trips (Query/QueryBatch calls) consumed by
	// the run. Against a remote device each round pays a network latency,
	// so rounds — not queries — dominate the wall clock of a real attack;
	// the query planner exists to shrink this number without changing
	// Queries.
	Rounds int64
	Time   time.Duration
	// SimTime is the simulated channel wall-clock consumed by the run when
	// the oracle stack is channel-simulated (oracle.Clocked — a
	// farm.Transport); zero against a direct oracle. This is the predicted
	// cost of the attack over a real network, the metric `dnnlock farm`
	// sweeps.
	SimTime   time.Duration
	Breakdown *metrics.Breakdown
	// QueriesByProc splits the oracle queries across the four procedures —
	// a query-complexity companion to Figure 3.
	QueriesByProc map[metrics.Procedure]int64
	// RoundsByProc splits the oracle round-trips the same way.
	RoundsByProc map[metrics.Procedure]int64
	// SimByProc splits the simulated channel time across the procedures
	// (empty for runs against a direct oracle).
	SimByProc map[metrics.Procedure]time.Duration
	// BisectRounds and BisectProbes account the critical-point zero search:
	// refinement rounds (the quantity -multisect divides) and total probe
	// evaluations inside them (the quantity it multiplies).
	BisectRounds int64
	BisectProbes int64
	Sites        []SiteReport
	// Equivalent reports whether the final direct-comparison check between
	// the keyed white-box and the oracle passed.
	Equivalent bool
	// Degraded counts oracle-facing decisions the attack abandoned to ⊥
	// because of persistent transient failures or split votes — each one
	// fell through to the learning attack (§3.6) instead of aborting the
	// run. Always 0 against a clean oracle.
	Degraded int
}
