// Package harness drives the paper's evaluation pipelines (§4): for each
// (architecture, key size) it trains an HPNN-locked model on the synthetic
// dataset, provisions an oracle device, launches the monolithic
// learning-based attack and the DNN decryption attack, and reports the
// paper's four metrics. RunTable1 regenerates Table 1 rows; RunFigure3
// regenerates the Figure 3 runtime-breakdown series.
//
// Beyond the paper's tables, the harness sweeps the attack across degraded
// oracle access: RunRobustness drives the fault-decorated oracles of
// DESIGN.md §11 (noise × quantization grids), and RunFarm prices the attack
// over a simulated device farm — RTT × bandwidth × loss × fleet mix —
// reporting simulated channel time next to query counts (DESIGN.md §16).
//
// PrepareCell exports a single trained cell for external drivers. The
// attack-service daemon (cmd/dnnlockd) uses it to run API-submitted jobs
// with exactly the seed discipline and oracle construction of the sweeps
// here, so a daemon job and a `dnnlock table1` cell report identical
// query counts.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/dataset"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
	"dnnlock/internal/train"
)

// Scale sizes an experiment run. The paper's testbed (PyTorch on an RTX
// A6000) is replaced by a single CPU core, so the harness offers scaled-down
// presets with the same structure; see DESIGN.md §4.
type Scale struct {
	Name          string
	Tiny          bool // use the Tiny* architectures (tests and benches)
	TrainExamples int
	TrainEpochs   int
	BatchSize     int
	LearnRate     float64
	KeySizes      map[string][]int
	BaselineKeys  int // paper: 16 random incorrect keys
	MonoQueries   int
	MonoEpochs    int
	AttackCfg     core.Config
	Seed          int64
	// CellWorkers bounds how many Table 1 cells run concurrently. Zero
	// selects tensor.Parallelism() (the DNNLOCK_PROCS override, CPU count
	// otherwise); 1 forces the historical serial sweep. Cells are fully
	// independent — each derives its rngs from the scale seed and owns its
	// oracles — so the rows are identical at any worker count; only
	// wall-clock changes.
	CellWorkers int
}

// cellWorkers resolves the concurrency bound for an n-cell sweep.
func (sc Scale) cellWorkers(n int) int {
	w := sc.CellWorkers
	if w == 0 {
		w = tensor.Parallelism()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TinyScale finishes in seconds; it backs unit tests and `go test -bench`.
func TinyScale() Scale {
	cfg := core.DefaultConfig()
	return Scale{
		Name: "tiny", Tiny: true,
		TrainExamples: 300, TrainEpochs: 25, BatchSize: 16, LearnRate: 0.02,
		KeySizes: map[string][]int{
			"mlp": {4, 8}, "lenet": {4}, "resnet": {4}, "vtransformer": {4},
		},
		BaselineKeys: 4,
		MonoQueries:  256, MonoEpochs: 120,
		AttackCfg: cfg,
		Seed:      1,
	}
}

// QuickScale runs the paper-shaped sweep on the full architectures with
// reduced key sizes and training budgets (minutes to a few hours on one
// CPU core).
func QuickScale() Scale {
	cfg := core.DefaultConfig()
	cfg.LearnQueries = 160
	cfg.LearnEpochs = 80
	cfg.PlateauEpochs = 15
	cfg.ValidationNeurons = 16
	return Scale{
		Name:          "quick",
		TrainExamples: 1500, TrainEpochs: 6, BatchSize: 32, LearnRate: 0.003,
		KeySizes: map[string][]int{
			"mlp":          {32, 64, 128},
			"lenet":        {16, 32},
			"resnet":       {16, 32},
			"vtransformer": {16, 32},
		},
		BaselineKeys: 16,
		MonoQueries:  512, MonoEpochs: 200,
		AttackCfg: cfg,
		Seed:      1,
	}
}

// PaperScale mirrors the paper's key sizes. On this substrate it is a long
// run; use it when wall-clock time is no concern.
func PaperScale() Scale {
	sc := QuickScale()
	sc.Name = "paper"
	sc.TrainExamples = 4000
	sc.TrainEpochs = 8
	sc.KeySizes = map[string][]int{
		"mlp":          {32, 64, 128},
		"lenet":        {32, 64, 128},
		"resnet":       {64, 128, 196},
		"vtransformer": {64, 128, 196},
	}
	sc.MonoQueries = 2000
	return sc
}

// AttackCell is one attack's four metrics in a Table 1 row, plus the
// oracle round-trip count (an extension over the paper: Queries measures
// how much the oracle answered, Rounds how often it was contacted — the
// latency-bound cost on a real locked device).
type AttackCell struct {
	Accuracy float64
	Fidelity float64
	Seconds  float64
	Queries  int64
	Rounds   int64
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Model            string
	KeyBits          int
	OriginalAccuracy float64
	BaselineAccuracy float64
	Monolithic       AttackCell
	Decryption       AttackCell
	Breakdown        *metrics.Breakdown // feeds Figure 3
	QueriesByProc    map[metrics.Procedure]int64
	RoundsByProc     map[metrics.Procedure]int64
	DecryptErr       error
}

// Figure3Row is one bar of Figure 3: the percentage share of each
// procedure in the decryption attack's runtime, plus (an extension over
// the paper) the oracle-query split across the same procedures.
type Figure3Row struct {
	Model   string
	KeyBits int
	Percent map[metrics.Procedure]float64
	Queries map[metrics.Procedure]int64
}

// pipeline holds one fully prepared experiment instance.
type pipeline struct {
	lm    *hpnn.LockedModel
	key   hpnn.Key
	test  *dataset.Dataset
	sc    Scale
	model string
	bits  int
}

// buildModel constructs the architecture and its matching dataset.
func buildModel(name string, sc Scale, rng *rand.Rand) (*nn.Network, *dataset.Dataset, error) {
	n := sc.TrainExamples + sc.TrainExamples/4
	if sc.Tiny {
		switch name {
		case "mlp":
			return models.TinyMLP(rng), dataset.Custom(n, sc.Seed+7, 4, 1, 4, 5), nil
		case "lenet":
			return models.TinyLeNet(rng), dataset.Custom(n, sc.Seed+7, 4, 1, 12, 12), nil
		case "resnet":
			return models.TinyResNet(rng), dataset.Custom(n, sc.Seed+7, 3, 1, 8, 8), nil
		case "vtransformer":
			return models.TinyVTransformer(rng), dataset.Custom(n, sc.Seed+7, 3, 1, 8, 8), nil
		}
		return nil, nil, fmt.Errorf("harness: unknown model %q", name)
	}
	builder, c, h, w, err := models.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	var ds *dataset.Dataset
	if c == 1 && h == 28 {
		ds = dataset.Digits(n, sc.Seed+7)
	} else {
		ds = dataset.Shapes(n, sc.Seed+7)
	}
	_ = w
	return builder(rng), ds, nil
}

// prepare trains a locked model for one (model, keyBits) cell.
func prepare(model string, bits int, sc Scale, log io.Writer) (*pipeline, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	net, ds, err := buildModel(model, sc, rng)
	if err != nil {
		return nil, err
	}
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: bits, Rng: rng})
	trainSet, testSet := ds.Split(0.8)
	if sc.TrainEpochs > 0 {
		train.Fit(net, trainSet.X, trainSet.Y, testSet.X, testSet.Y, train.Config{
			Epochs:    sc.TrainEpochs,
			BatchSize: sc.BatchSize,
			Optimizer: train.NewAdam(sc.LearnRate),
			Seed:      sc.Seed,
			Log:       log,
		})
	}
	return &pipeline{lm: lm, key: key, test: testSet, sc: sc, model: model, bits: bits}, nil
}

// accuracyUnderKey evaluates the locked model under an arbitrary key.
func (p *pipeline) accuracyUnderKey(key hpnn.Key) float64 {
	return train.Evaluate(p.lm.Apply(key), p.test.X, p.test.Y)
}

// baselineAccuracy averages accuracy over random incorrect keys (§4.2).
func (p *pipeline) baselineAccuracy(rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < p.sc.BaselineKeys; i++ {
		wrong := hpnn.RandomKey(len(p.key), rng)
		//lint:ignore floatcmp Fidelity of 1.0 is exactly representable and means every bit matched
		if wrong.Fidelity(p.key) == 1 { // force incorrectness
			wrong[rng.Intn(len(wrong))] = !wrong[rng.Intn(len(wrong))]
		}
		sum += p.accuracyUnderKey(wrong)
	}
	return sum / float64(p.sc.BaselineKeys)
}

// runCell executes both attacks for one Table 1 cell. When the scale's
// AttackCfg carries a Tracer, the cell opens a span that parents both
// attack roots, so a full sweep exports as one trace with a `cell` span
// per (model, keyBits) and the two attack subtrees beneath it.
func (p *pipeline) runCell(w io.Writer) Table1Row {
	row := Table1Row{
		Model:   p.model,
		KeyBits: p.bits,
	}
	var cell *obs.Span
	if tr := p.sc.AttackCfg.Tracer; tr != nil {
		cell = tr.Start("cell", obs.String("model", p.model), obs.Int("bits", p.bits))
		defer cell.End()
	}
	rng := rand.New(rand.NewSource(p.sc.Seed + 99))
	row.OriginalAccuracy = p.accuracyUnderKey(p.key)
	row.BaselineAccuracy = p.baselineAccuracy(rng)

	// Monolithic learning-based attack (§4.3).
	monoCfg := p.sc.AttackCfg
	monoCfg.LearnQueries = p.sc.MonoQueries
	monoCfg.LearnEpochs = p.sc.MonoEpochs
	monoCfg.Seed = p.sc.Seed + 1
	monoCfg.TraceParent = cell
	monoOrc := oracle.New(p.lm, p.key)
	monoStart := time.Now()
	mono, monoErr := core.Monolithic(p.lm.WhiteBox(), p.lm.Spec, monoOrc, monoCfg, nil)
	if monoErr != nil {
		// The clean oracle never errors; surface the impossible loudly but
		// keep the row so the decryption half still reports.
		row.DecryptErr = fmt.Errorf("monolithic attack: %w", monoErr)
	} else {
		row.Monolithic = AttackCell{
			Accuracy: p.accuracyUnderKey(mono.Key),
			Fidelity: mono.Key.Fidelity(p.key),
			Seconds:  time.Since(monoStart).Seconds(),
			Queries:  mono.Queries,
			Rounds:   mono.Rounds,
		}
	}

	// The DNN decryption attack (Algorithm 2).
	decCfg := p.sc.AttackCfg
	decCfg.Seed = p.sc.Seed + 2
	decCfg.TraceParent = cell
	decOrc := oracle.New(p.lm, p.key)
	decStart := time.Now()
	res, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, decOrc, decCfg)
	if err != nil {
		row.DecryptErr = err
		if res == nil {
			return row
		}
	}
	row.Decryption = AttackCell{
		Accuracy: p.accuracyUnderKey(res.Key),
		Fidelity: res.Key.Fidelity(p.key),
		Seconds:  time.Since(decStart).Seconds(),
		Queries:  res.Queries,
		Rounds:   res.Rounds,
	}
	row.Breakdown = res.Breakdown
	row.QueriesByProc = res.QueriesByProc
	row.RoundsByProc = res.RoundsByProc
	cell.Annotate(obs.Float("dec_fidelity", row.Decryption.Fidelity),
		obs.Int64("dec_queries", row.Decryption.Queries),
		obs.Int64("dec_rounds", row.Decryption.Rounds))
	if w != nil {
		fmt.Fprintf(w, "%s\n", FormatRow(row))
	}
	return row
}

// cellSpec names one (model, keyBits) cell of a Table 1 sweep.
type cellSpec struct {
	model string
	bits  int
}

// RunTable1 regenerates Table 1 for the given models at the given scale,
// streaming rows to w as they complete. Training progress goes to the same
// writer, so a long prepare phase is visible rather than silent. A model
// name with no key sizes configured in the scale is an error — previously
// the row was skipped silently, which made a typo in a model name look like
// an empty (successful) sweep.
//
// Cells run concurrently up to sc.CellWorkers (DNNLOCK_PROCS-bounded by
// default; see Scale.CellWorkers). Rows and errors keep the deterministic
// models × key-sizes order regardless of completion order: each concurrent
// cell writes its training progress and row into a private buffer that is
// flushed to w in cell order. Every cell remains its own span root (see
// runCell), and the obs sinks serialize concurrent exports, so a traced
// parallel sweep still reconciles into one cell subtree per (model, bits).
func RunTable1(sc Scale, modelNames []string, w io.Writer) ([]Table1Row, error) {
	var cells []cellSpec
	for _, m := range modelNames {
		sizes, ok := sc.KeySizes[m]
		if !ok || len(sizes) == 0 {
			return nil, fmt.Errorf("harness: no key sizes configured for model %q in scale %q", m, sc.Name)
		}
		for _, bits := range sizes {
			cells = append(cells, cellSpec{model: m, bits: bits})
		}
	}
	if w != nil {
		fmt.Fprintln(w, TableHeader())
	}
	if sc.cellWorkers(len(cells)) <= 1 {
		// Serial sweep: stream progress directly, stop at the first error.
		var rows []Table1Row
		for _, c := range cells {
			p, err := prepare(c.model, c.bits, sc, w)
			if err != nil {
				return rows, err
			}
			rows = append(rows, p.runCell(w))
		}
		return rows, nil
	}
	results := make([]Table1Row, len(cells))
	errs := make([]error, len(cells))
	bufs := make([]bytes.Buffer, len(cells))
	done := make([]chan struct{}, len(cells))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, sc.cellWorkers(len(cells)))
	for i, c := range cells {
		//lint:ignore nakedgo bounded by the sem channel below; completion is awaited per cell via done[i]
		go func(i int, c cellSpec) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			var out io.Writer
			if w != nil {
				out = &bufs[i]
			}
			p, err := prepare(c.model, c.bits, sc, out)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = p.runCell(out)
		}(i, c)
	}
	var rows []Table1Row
	for i := range cells {
		<-done[i]
		if w != nil && bufs[i].Len() > 0 {
			w.Write(bufs[i].Bytes())
		}
		if errs[i] != nil {
			return rows, errs[i]
		}
		rows = append(rows, results[i])
	}
	return rows, nil
}

// RunFigure3 regenerates Figure 3: the per-procedure runtime breakdown of
// the decryption attack across architectures and key sizes.
func RunFigure3(rows []Table1Row) []Figure3Row {
	var out []Figure3Row
	for _, r := range rows {
		if r.Breakdown == nil {
			continue
		}
		out = append(out, Figure3Row{
			Model:   r.Model,
			KeyBits: r.KeyBits,
			Percent: r.Breakdown.Percentages(),
			Queries: r.QueriesByProc,
		})
	}
	return out
}

// TableHeader renders the Table 1 column header.
func TableHeader() string {
	return fmt.Sprintf("%-13s %5s | %8s %8s | %8s %8s %9s %9s | %8s %8s %9s %9s %9s",
		"DNN", "key",
		"orig", "base",
		"m.acc", "m.fid", "m.time", "m.query",
		"d.acc", "d.fid", "d.time", "d.query", "d.round")
}

// FormatRow renders one Table 1 row.
func FormatRow(r Table1Row) string {
	s := fmt.Sprintf("%-13s %5d | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% %8.2fs %9d | %7.1f%% %7.1f%% %8.2fs %9d %9d",
		r.Model, r.KeyBits,
		100*r.OriginalAccuracy, 100*r.BaselineAccuracy,
		100*r.Monolithic.Accuracy, 100*r.Monolithic.Fidelity, r.Monolithic.Seconds, r.Monolithic.Queries,
		100*r.Decryption.Accuracy, 100*r.Decryption.Fidelity, r.Decryption.Seconds, r.Decryption.Queries,
		r.Decryption.Rounds)
	if r.DecryptErr != nil {
		s += "  !! " + r.DecryptErr.Error()
	}
	return s
}

// WriteCSV emits the Table 1 rows as CSV for downstream plotting.
func WriteCSV(rows []Table1Row, w io.Writer) {
	fmt.Fprintln(w, "model,key_bits,orig_acc,base_acc,mono_acc,mono_fid,mono_s,mono_q,mono_r,dec_acc,dec_fid,dec_s,dec_q,dec_r")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.2f,%d,%d,%.4f,%.4f,%.2f,%d,%d\n",
			r.Model, r.KeyBits,
			r.OriginalAccuracy, r.BaselineAccuracy,
			r.Monolithic.Accuracy, r.Monolithic.Fidelity, r.Monolithic.Seconds, r.Monolithic.Queries,
			r.Monolithic.Rounds,
			r.Decryption.Accuracy, r.Decryption.Fidelity, r.Decryption.Seconds, r.Decryption.Queries,
			r.Decryption.Rounds)
	}
}

// FormatFigure3 renders the Figure 3 series as text bars.
func FormatFigure3(rows []Figure3Row, w io.Writer) {
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %3d bits:", r.Model, r.KeyBits)
		for _, p := range metrics.AllProcedures {
			fmt.Fprintf(w, "  %s %5.1f%%", p, r.Percent[p])
			if r.Queries != nil {
				fmt.Fprintf(w, " (%dq)", r.Queries[p])
			}
		}
		fmt.Fprintln(w)
	}
}
