package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// QuerySeam enforces the oracle query-planner boundary (DESIGN.md §14):
// inside dnnlock/internal/core, nothing may call the oracle's Query or
// QueryBatch methods directly — every probe must route through the planner
// seam in planner.go (a.query / a.multi / a.queryBatch, and the retry
// helpers they wrap). A raw call would bypass multi-point batching, the
// cross-goroutine coalescer, the probe memo, and retry accounting, silently
// corrupting both the query and the round counts the paper's Table 1 and
// the BENCH series report. Test files are exempt (they drive fakes and the
// oracle directly), as is planner.go itself — the one sanctioned call site.
var QuerySeam = &Analyzer{
	Name: "queryseam",
	Doc:  "internal/core must reach the oracle through the query planner (planner.go), never via raw Query/QueryBatch calls",
	Run:  runQuerySeam,
}

const (
	oraclePkgPath  = "dnnlock/internal/oracle"
	plannerPkgPath = "dnnlock/internal/core"
)

func runQuerySeam(p *Pass) {
	if p.Unit.Path != plannerPkgPath {
		return
	}
	for _, f := range p.Unit.Files {
		if p.IsTestFile(f) {
			continue
		}
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) == "planner.go" {
			continue // the sanctioned seam
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != oraclePkgPath {
				return true
			}
			// Only the oracle's *methods* are the seam; package-level
			// helpers (constructors, decorators) are free to call.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
				return true
			}
			switch fn.Name() {
			case "Query", "QueryBatch":
				p.Report(call.Pos(), "raw oracle.%s call in internal/core: route the probe through the planner seam (planner.go) so batching and round accounting stay correct", fn.Name())
			}
			return true
		})
	}
}
