// Package other is outside the kernel packages: determinism does not apply
// here, so none of these lines are flagged.
package other

import "time"

func mapRangeOutsideKernels(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func wallClockOutsideKernels() time.Time {
	return time.Now()
}
