package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := FromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randMat(r, n, n)
		want := randVec(r, n)
		b := MatVec(a, want)
		got, err := SolveLinear(a, b)
		if err != nil {
			return true // singular random draw: nothing to check
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := LUDecompose(a); err == nil {
		t.Fatal("expected ErrSingular for a rank-1 matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := FromSlice(2, 2, []float64{3, 1, 4, 2})
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", f.Det())
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 5, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(MatMul(a, inv), Identity(5), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestCholeskySolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		b := randMat(r, n, n)
		// SPD matrix: BᵀB + I.
		a := MatMul(b.T(), b)
		a.AddInPlace(Identity(n))
		want := randVec(r, n)
		rhs := MatVec(a, want)
		ch, err := CholeskyDecompose(a)
		if err != nil {
			return false
		}
		got := ch.Solve(rhs)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				return false
			}
		}
		// Reconstruction: L·Lᵀ == A.
		l := ch.L()
		return Equal(MatMul(l, l.T()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveInto(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		b := randMat(r, n, n)
		a := MatMul(b.T(), b)
		a.AddInPlace(Identity(n))
		rhs := randVec(r, n)
		ch, err := CholeskyDecompose(a)
		if err != nil {
			return false
		}
		want := ch.Solve(rhs)
		// Caller-buffer form must match the allocating form exactly.
		got := ch.SolveInto(make([]float64, n), rhs)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Aliased form x == b: b is consumed before being overwritten.
		aliased := VecClone(rhs)
		ch.SolveInto(aliased, aliased)
		for i := range aliased {
			if aliased[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := CholeskyDecompose(a); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := n + r.Intn(6)
		a := randMat(r, m, n)
		qr := QRDecompose(a)
		q, rr := qr.Q(), qr.R()
		// Qᵀ·Q == I and Q·R == A.
		if !Equal(MatMul(q.T(), q), Identity(n), 1e-9) {
			return false
		}
		return Equal(MatMul(q, rr), a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples: exact recovery.
	a := FromSlice(4, 2, []float64{
		0, 1,
		1, 1,
		2, 1,
		3, 1,
	})
	b := []float64{1, 3, 5, 7}
	x, err := QRDecompose(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestSVDReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(7), 1+r.Intn(7)
		a := randMat(r, m, n)
		s := SVDecompose(a)
		// U·diag(S)·Vᵀ == A.
		us := s.U.Clone()
		for j := 0; j < len(s.S); j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*s.S[j])
			}
		}
		if !Equal(MatMul(us, s.V.T()), a, 1e-8) {
			return false
		}
		// Singular values descending and nonnegative.
		for i := 1; i < len(s.S); i++ {
			if s.S[i] > s.S[i-1]+1e-12 || s.S[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDRank(t *testing.T) {
	// Rank-1 matrix.
	a := FromSlice(3, 3, []float64{1, 2, 3, 2, 4, 6, 3, 6, 9})
	s := SVDecompose(a)
	if got := s.Rank(1e-10); got != 1 {
		t.Fatalf("Rank = %d, want 1", got)
	}
}

func TestLeastSquaresMinNormExact(t *testing.T) {
	// Wide full-row-rank system: solution exact and minimum norm.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(5)
		n := m + 1 + r.Intn(6)
		a := randMat(r, m, n)
		b := randVec(r, m)
		res := LeastSquares(a, b)
		if res.RelRes > 1e-8 {
			return false
		}
		// Minimum-norm solutions lie in row space: x ⟂ null(A), i.e.
		// x = Aᵀw for some w. Check by projecting onto the row space via SVD.
		s := SVDecompose(a)
		proj := make([]float64, n)
		for j := 0; j < len(s.S); j++ {
			if s.S[j] <= 1e-10*s.S[0] {
				continue
			}
			vj := s.V.Col(j)
			c := Dot(vj, res.X)
			AXPY(c, vj, proj)
		}
		return Norm2(VecSub(proj, res.X)) < 1e-6*(1+Norm2(res.X))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExpansiveHasResidual(t *testing.T) {
	// Tall system with b outside the column space: residual must be large.
	// Columns span only the first 2 coordinates of R^4.
	a := FromSlice(4, 2, []float64{
		1, 0,
		0, 1,
		0, 0,
		0, 0,
	})
	res := LeastSquares(a, []float64{0, 0, 1, 0})
	if res.Residual < 0.99 {
		t.Fatalf("Residual = %v, want ~1 (unreachable target)", res.Residual)
	}
}

func TestLeastSquaresRankDeficientFallsBackToSVD(t *testing.T) {
	// Rank-1 wide matrix: min-norm Cholesky path is singular; SVD fallback
	// must still produce the least-squares solution.
	a := FromSlice(2, 3, []float64{1, 1, 1, 2, 2, 2})
	res := LeastSquares(a, []float64{3, 6}) // consistent: x = [1 1 1] works
	if res.RelRes > 1e-8 {
		t.Fatalf("RelRes = %v, want ~0", res.RelRes)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AXPY")
	}
	if v := VecAdd([]float64{1}, []float64{2}); v[0] != 3 {
		t.Fatal("VecAdd")
	}
	if v := VecSub([]float64{5}, []float64{2}); v[0] != 3 {
		t.Fatal("VecSub")
	}
	if v := VecScale(2, []float64{3}); v[0] != 6 {
		t.Fatal("VecScale")
	}
	if b := Basis(3, 1); b[0] != 0 || b[1] != 1 || b[2] != 0 {
		t.Fatal("Basis")
	}
	if ArgMax([]float64{1, 5, 2}) != 1 {
		t.Fatal("ArgMax")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax empty")
	}
	sm := Softmax([]float64{1000, 1000})
	if math.Abs(sm[0]-0.5) > 1e-12 {
		t.Fatalf("Softmax overflow handling: %v", sm)
	}
	s := 0.0
	for _, p := range Softmax([]float64{1, -2, 0.5}) {
		if p < 0 {
			t.Fatal("Softmax negative")
		}
		s += p
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("Softmax sum = %v", s)
	}
}
