package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// NakedGo forbids raw `go` statements outside the sanctioned parallelism
// sites. All production fan-out must be sized by tensor.Parallelism (the
// DNNLOCK_PROCS knob) and either run through the tensor worker pool or spawn
// its own goroutines at one of the two audited locations:
//
//   - internal/tensor, which owns the worker pool itself, and
//   - nn.Slice (slice.go), whose one-shot prefix evaluation must not run as
//     pool tasks (a pool task that submits to the pool and waits can
//     deadlock it — see parallel.go's leaf-task rule).
//
// Anywhere else, an unreviewed `go` statement is a hole in the determinism
// and sizing story; deliberate exceptions (oracle.QueryBatch, the attack's
// parallelFor) carry //lint:ignore nakedgo with the justification. Test
// files are exempt: tests spawn goroutines to exercise concurrency safety.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "no raw go statements outside the tensor pool and nn.Slice; parallelism routes through tensor.Parallelism",
	Run:  runNakedGo,
}

func runNakedGo(p *Pass) {
	if p.Unit.Path == "dnnlock/internal/tensor" {
		return // owns the worker pool
	}
	for _, f := range p.Unit.Files {
		name := filepath.ToSlash(p.Fset.Position(f.Pos()).Filename)
		if isTestFilename(name) {
			continue
		}
		if p.Unit.Path == "dnnlock/internal/nn" && strings.HasSuffix(name, "/slice.go") {
			continue // nn.Slice.PrefixForward is a sanctioned fan-out site
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Report(g.Pos(), "raw go statement outside the sanctioned worker-pool sites: route parallelism through internal/tensor (pool kernels or goroutines sized by tensor.Parallelism) so DNNLOCK_PROCS stays authoritative")
			}
			return true
		})
	}
}
