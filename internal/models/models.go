// Package models builds the paper's four evaluation architectures (§4.2)
// with flip sites on every lockable layer: MLP and LeNet at the paper's
// sizes, and CPU-scaled ResNet / V-Transformer variants (see DESIGN.md §4
// for the scaling substitution). Every builder also has a "Tiny" variant
// used by fast tests.
package models

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/nn"
)

// MLPConfig parameterizes a multilayer perceptron with a flip site on every
// hidden layer.
type MLPConfig struct {
	In     int
	Hidden []int
	Out    int
}

// MLP builds a fully connected ReLU network with flip sites on all hidden
// layers. The paper's MLP is In=784, Hidden=[256, 64], Out=10.
func MLP(cfg MLPConfig, rng *rand.Rand) *nn.Network {
	var layers []nn.Layer
	in := cfg.In
	for _, h := range cfg.Hidden {
		layers = append(layers,
			nn.NewDense(in, h).InitHe(rng),
			nn.NewFlip(h),
			nn.NewReLU(h),
		)
		in = h
	}
	layers = append(layers, nn.NewDense(in, cfg.Out).InitHe(rng))
	return nn.NewNetwork(layers...)
}

// PaperMLP is the paper's 784-256-64-10 MLP.
func PaperMLP(rng *rand.Rand) *nn.Network {
	return MLP(MLPConfig{In: 784, Hidden: []int{256, 64}, Out: 10}, rng)
}

// TinyMLP is a small contractive MLP for fast tests. The hidden widths
// shrink fast enough (20 → 16 → 6) that pre-images of second-layer basis
// vectors exist even with roughly half of the first layer inactive (§3.4).
func TinyMLP(rng *rand.Rand) *nn.Network {
	return MLP(MLPConfig{In: 20, Hidden: []int{16, 6}, Out: 4}, rng)
}

// LeNet builds the ReLU variant of LeNet-5 for inC×28×28 inputs, with flip
// sites after both convolutions and both hidden dense layers.
func LeNet(inC int, rng *rand.Rand) *nn.Network {
	conv1 := nn.NewConv2D(inC, 28, 28, 6, 5, 1, 0).InitHe(rng) // 6×24×24
	pool1 := nn.NewMaxPool2D(6, 24, 24, 2, 2)                  // 6×12×12
	conv2 := nn.NewConv2D(6, 12, 12, 16, 5, 1, 0).InitHe(rng)  // 16×8×8
	pool2 := nn.NewMaxPool2D(16, 8, 8, 2, 2)                   // 16×4×4
	return nn.NewNetwork(
		conv1, nn.NewFlip(conv1.OutSize()), nn.NewReLU(conv1.OutSize()), pool1,
		conv2, nn.NewFlip(conv2.OutSize()), nn.NewReLU(conv2.OutSize()), pool2,
		nn.NewFlatten(16*4*4),
		nn.NewDense(16*4*4, 120).InitHe(rng), nn.NewFlip(120), nn.NewReLU(120),
		nn.NewDense(120, 84).InitHe(rng), nn.NewFlip(84), nn.NewReLU(84),
		nn.NewDense(84, 10).InitHe(rng),
	)
}

// TinyLeNet is a reduced conv net (1×12×12 input) for fast tests.
func TinyLeNet(rng *rand.Rand) *nn.Network {
	conv1 := nn.NewConv2D(1, 12, 12, 3, 3, 1, 0).InitHe(rng) // 3×10×10
	pool1 := nn.NewMaxPool2D(3, 10, 10, 2, 2)                // 3×5×5
	return nn.NewNetwork(
		conv1, nn.NewFlip(conv1.OutSize()), nn.NewReLU(conv1.OutSize()), pool1,
		nn.NewFlatten(3*5*5),
		nn.NewDense(3*5*5, 16).InitHe(rng), nn.NewFlip(16), nn.NewReLU(16),
		nn.NewDense(16, 4).InitHe(rng),
	)
}

// basicBlock builds a ResNet basic block: conv-flip-relu-conv-flip with an
// additive shortcut (1×1 strided conv projection when shapes change),
// followed by an external ReLU.
func basicBlock(inC, h, w, outC, stride int, rng *rand.Rand) []nn.Layer {
	conv1 := nn.NewConv2D(inC, h, w, outC, 3, stride, 1).InitHe(rng)
	conv2 := nn.NewConv2D(outC, conv1.OutH, conv1.OutW, outC, 3, 1, 1).InitHe(rng)
	body := []nn.Layer{
		conv1, nn.NewFlip(conv1.OutSize()), nn.NewReLU(conv1.OutSize()),
		conv2, nn.NewFlip(conv2.OutSize()),
	}
	var shortcut []nn.Layer
	if stride != 1 || inC != outC {
		proj := nn.NewConv2D(inC, h, w, outC, 1, stride, 0).InitHe(rng)
		shortcut = []nn.Layer{proj}
	}
	return []nn.Layer{
		nn.NewResidual(body, shortcut),
		nn.NewReLU(conv2.OutSize()),
	}
}

// ResNet builds the CPU-scaled residual network for inC×16×16 inputs:
// stem conv + two stages of two basic blocks (8 then 16 channels), global
// average pooling, and a linear classifier. Flip sites sit on the stem and
// on every block convolution.
func ResNet(inC int, rng *rand.Rand) *nn.Network {
	stem := nn.NewConv2D(inC, 16, 16, 8, 3, 1, 1).InitHe(rng) // 8×16×16
	layers := []nn.Layer{stem, nn.NewFlip(stem.OutSize()), nn.NewReLU(stem.OutSize())}
	layers = append(layers, basicBlock(8, 16, 16, 8, 1, rng)...)
	layers = append(layers, basicBlock(8, 16, 16, 8, 1, rng)...)
	layers = append(layers, basicBlock(8, 16, 16, 16, 2, rng)...) // 16×8×8
	layers = append(layers, basicBlock(16, 8, 8, 16, 1, rng)...)
	layers = append(layers,
		nn.NewGlobalAvgPool(16, 8, 8),
		nn.NewDense(16, 10).InitHe(rng),
	)
	return nn.NewNetwork(layers...)
}

// TinyResNet is a one-block residual net (1×8×8 input) for fast tests.
func TinyResNet(rng *rand.Rand) *nn.Network {
	stem := nn.NewConv2D(1, 8, 8, 4, 3, 1, 1).InitHe(rng)
	layers := []nn.Layer{stem, nn.NewFlip(stem.OutSize()), nn.NewReLU(stem.OutSize())}
	layers = append(layers, basicBlock(4, 8, 8, 4, 1, rng)...)
	layers = append(layers,
		nn.NewGlobalAvgPool(4, 8, 8),
		nn.NewDense(4, 3).InitHe(rng),
	)
	return nn.NewNetwork(layers...)
}

// transformerBlock builds one V-Transformer block: a residual ReLU
// self-attention, then a residual token MLP whose hidden layer carries the
// flip site.
func transformerBlock(t, d, dh, dm int, rng *rand.Rand) []nn.Layer {
	attn := nn.NewResidual([]nn.Layer{nn.NewAttentionReLU(t, d, dh).InitXavier(rng)}, nil)
	mlp := nn.NewResidual([]nn.Layer{
		nn.NewTokenDense(t, d, dm).InitHe(rng),
		nn.NewFlip(t * dm),
		nn.NewReLU(t * dm),
		nn.NewTokenDense(t, dm, d).InitHe(rng),
	}, nil)
	return []nn.Layer{attn, mlp}
}

// VTransformer builds the CPU-scaled ReLU Vision Transformer for inC×16×16
// inputs: 4×4 patches (16 tokens), model width 24, two blocks, mean-token
// pooling, linear head. Flip sites sit on the MLP hidden neurons of every
// block, matching the paper's lockable ReLU pre-activations.
func VTransformer(inC int, rng *rand.Rand) *nn.Network {
	const (
		t  = 16 // tokens
		d  = 24 // model width
		dh = 16 // attention head width
		dm = 48 // MLP hidden width
	)
	pe := nn.NewPatchEmbed(inC, 16, 16, 4, d).InitXavier(rng)
	layers := []nn.Layer{pe}
	layers = append(layers, transformerBlock(t, d, dh, dm, rng)...)
	layers = append(layers, transformerBlock(t, d, dh, dm, rng)...)
	layers = append(layers,
		nn.NewMeanTokens(t, d),
		nn.NewDense(d, 10).InitHe(rng),
	)
	return nn.NewNetwork(layers...)
}

// TinyVTransformer is a one-block transformer (1×8×8 input, 4 tokens) for
// fast tests.
func TinyVTransformer(rng *rand.Rand) *nn.Network {
	const (
		t  = 4
		d  = 8
		dh = 6
		dm = 12
	)
	pe := nn.NewPatchEmbed(1, 8, 8, 4, d).InitXavier(rng)
	layers := []nn.Layer{pe}
	layers = append(layers, transformerBlock(t, d, dh, dm, rng)...)
	layers = append(layers,
		nn.NewMeanTokens(t, d),
		nn.NewDense(d, 3).InitHe(rng),
	)
	return nn.NewNetwork(layers...)
}

// Builder names a model constructor for the CLI and harness.
type Builder func(rng *rand.Rand) *nn.Network

// ByName returns the builder and input geometry (C, H, W) for a model name.
func ByName(name string) (Builder, int, int, int, error) {
	switch name {
	case "mlp":
		return PaperMLP, 1, 28, 28, nil
	case "lenet":
		return func(rng *rand.Rand) *nn.Network { return LeNet(1, rng) }, 1, 28, 28, nil
	case "resnet":
		return func(rng *rand.Rand) *nn.Network { return ResNet(3, rng) }, 3, 16, 16, nil
	case "vtransformer":
		return func(rng *rand.Rand) *nn.Network { return VTransformer(3, rng) }, 3, 16, 16, nil
	default:
		return nil, 0, 0, 0, fmt.Errorf("models: unknown model %q (want mlp, lenet, resnet, vtransformer)", name)
	}
}
