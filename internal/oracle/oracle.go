// Package oracle implements the attacker-facing query interface of the
// adversary model (§2.3): the adversary owns a working device and can query
// it with arbitrary inputs a reasonable number of times, observing the
// logits. The oracle counts queries so experiments can report the paper's
// query-complexity metric.
package oracle

import (
	"sync"
	"sync/atomic"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/rot"
	"dnnlock/internal/tensor"
)

// Oracle wraps a provisioned device and counts queries. Safe for concurrent
// use. The adversary model (§2.3) lets the end-user observe either the
// logits or the softmax output vector; softmax mode models the latter.
type Oracle struct {
	dev     *rot.Device
	softmax bool
	queries atomic.Int64
}

// New provisions a fresh device with the correct key, binds the locked
// model, and returns the resulting oracle — the experimental stand-in for
// "a malicious end-user who bought a licensed accelerator".
func New(model *hpnn.LockedModel, correctKey hpnn.Key) *Oracle {
	dev := rot.Provision("oracle-device", correctKey, []byte("attestation-secret"))
	if err := dev.Bind(model); err != nil {
		panic("oracle: " + err.Error())
	}
	return &Oracle{dev: dev}
}

// NewSoftmax is New for a device that exposes only softmax probabilities.
func NewSoftmax(model *hpnn.LockedModel, correctKey hpnn.Key) *Oracle {
	o := New(model, correctKey)
	o.softmax = true
	return o
}

// FromDevice wraps an already-provisioned, bound device.
func FromDevice(dev *rot.Device) *Oracle { return &Oracle{dev: dev} }

// Softmax reports whether the oracle returns probabilities rather than
// logits.
func (o *Oracle) Softmax() bool { return o.softmax }

// Query runs one inference and returns the logits (or the softmax output
// vector in softmax mode).
func (o *Oracle) Query(x []float64) []float64 {
	o.queries.Add(1)
	y, err := o.dev.Evaluate(x)
	if err != nil {
		panic("oracle: " + err.Error())
	}
	if o.softmax {
		return tensor.Softmax(y)
	}
	return y
}

// QueryBatch runs one inference per row and returns the output matrix.
// Rows are evaluated concurrently (the device is safe for concurrent
// inference), sharded over tensor.Parallelism() goroutines. Each row lands
// in its own output slot, so the result is identical to the serial loop.
func (o *Oracle) QueryBatch(x *tensor.Matrix) *tensor.Matrix {
	o.queries.Add(int64(x.Rows))
	if x.Rows == 0 {
		return nil
	}
	// First row sizes the output matrix. It comes from the workspace pool
	// (every row is overwritten below); per-invocation callers like the
	// learning attack recycle it with tensor.PutMatrix.
	y0 := o.evalRow(x.Row(0))
	out := tensor.GetMatrix(x.Rows, len(y0))
	out.SetRow(0, y0)
	rest := x.Rows - 1
	workers := tensor.Parallelism()
	if workers > rest {
		workers = rest
	}
	if workers <= 1 {
		for i := 1; i < x.Rows; i++ {
			y, err := o.dev.Evaluate(x.Row(i))
			if err != nil {
				panic("oracle: " + err.Error())
			}
			if o.softmax {
				tensor.SoftmaxInto(out.Row(i), y)
			} else {
				out.SetRow(i, y)
			}
		}
		return out
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (rest + workers - 1) / workers
	for w, lo := 0, 1; lo < x.Rows; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		wg.Add(1)
		//lint:ignore nakedgo fan-out sized by tensor.Parallelism; each goroutine writes a disjoint row range of out
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				y, err := o.dev.Evaluate(x.Row(i))
				if err != nil {
					errs[w] = err
					return
				}
				if o.softmax {
					tensor.SoftmaxInto(out.Row(i), y)
				} else {
					out.SetRow(i, y)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Surface on the caller's goroutine, like the serial path.
			panic("oracle: " + err.Error())
		}
	}
	return out
}

// evalRow runs one uncounted device inference (QueryBatch bulk-counts).
func (o *Oracle) evalRow(x []float64) []float64 {
	y, err := o.dev.Evaluate(x)
	if err != nil {
		panic("oracle: " + err.Error())
	}
	if o.softmax {
		return tensor.Softmax(y)
	}
	return y
}

// Queries returns the total number of queries so far.
func (o *Oracle) Queries() int64 { return o.queries.Load() }

// ResetCounter zeroes the query counter (used between experiment phases).
func (o *Oracle) ResetCounter() { o.queries.Store(0) }
