package lint

import (
	"bytes"
	"fmt"
	"go/format"
	"go/token"
	"sort"
	"strings"
)

// SuggestedFix is a mechanical rewrite attached to a Diagnostic. Analyzers
// only attach one when the rewrite is unconditionally safe — spanpair's
// `defer sp.End()` insertion relies on End being idempotent, errflow's
// wrap-and-return relies on the enclosing signature being a bare error —
// so `dnnlint -fix` can apply every offered fix without judgement calls.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source bytes in [Pos, End) with NewText. A pure
// insertion sets End == Pos. Positions are in the Program's FileSet.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// ApplyFixes applies every suggested fix in diags that touches filename to
// src and returns the gofmt-formatted result, together with the number of
// fixes applied. Edits are applied back-to-front so earlier offsets stay
// valid; overlapping edits (two fixes rewriting the same bytes) are an
// error rather than a silent misapplication.
func ApplyFixes(fset *token.FileSet, filename string, src []byte, diags []Diagnostic) ([]byte, int, error) {
	type edit struct {
		start, end int
		text       string
	}
	var edits []edit
	applied := 0
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		hit := false
		for _, e := range d.Fix.Edits {
			p := fset.Position(e.Pos)
			if p.Filename != filename {
				continue
			}
			end := p.Offset
			if e.End.IsValid() && e.End > e.Pos {
				end = fset.Position(e.End).Offset
			}
			if p.Offset < 0 || end > len(src) || end < p.Offset {
				return nil, 0, fmt.Errorf("lint: fix edit out of range in %s (%d..%d of %d bytes)", filename, p.Offset, end, len(src))
			}
			edits = append(edits, edit{start: p.Offset, end: end, text: e.NewText})
			hit = true
		}
		if hit {
			applied++
		}
	}
	if len(edits) == 0 {
		return src, 0, nil
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end < edits[j].end
	})
	for i := 1; i < len(edits); i++ {
		if edits[i].start < edits[i-1].end {
			return nil, 0, fmt.Errorf("lint: overlapping fix edits in %s at byte %d", filename, edits[i].start)
		}
	}
	out := make([]byte, 0, len(src)+256)
	prev := 0
	for _, e := range edits {
		out = append(out, src[prev:e.start]...)
		out = append(out, e.text...)
		prev = e.end
	}
	out = append(out, src[prev:]...)
	formatted, err := format.Source(out)
	if err != nil {
		return nil, 0, fmt.Errorf("lint: fixed %s does not parse (fix bug): %w", filename, err)
	}
	return formatted, applied, nil
}

// UnifiedDiff renders a unified diff (3 lines of context) between the old
// and new contents of one file, for `dnnlint -diff` dry runs. Returns ""
// when the contents are identical.
func UnifiedDiff(name string, oldSrc, newSrc []byte) string {
	if bytes.Equal(oldSrc, newSrc) {
		return ""
	}
	a := splitLines(oldSrc)
	b := splitLines(newSrc)
	ops := diffOps(a, b)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)
	const ctx = 3
	for i := 0; i < len(ops); {
		if ops[i].kind == opKeep {
			i++
			continue
		}
		// Open a hunk around this change, absorbing nearby changes separated
		// by at most 2*ctx kept lines.
		start := i
		end := i
		for j := i + 1; j < len(ops); j++ {
			if ops[j].kind != opKeep {
				end = j
			} else if j-end > 2*ctx {
				break
			}
		}
		hs := start
		for hs > 0 && start-hs < ctx && ops[hs-1].kind == opKeep {
			hs--
		}
		he := end
		for he < len(ops)-1 && he-end < ctx && ops[he+1].kind == opKeep {
			he++
		}
		aStart, aLen, bStart, bLen := hunkRange(ops, hs, he)
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aLen, bStart, bLen)
		for _, op := range ops[hs : he+1] {
			switch op.kind {
			case opKeep:
				sb.WriteString(" " + op.text + "\n")
			case opDel:
				sb.WriteString("-" + op.text + "\n")
			case opIns:
				sb.WriteString("+" + op.text + "\n")
			}
		}
		i = he + 1
	}
	return sb.String()
}

const (
	opKeep = iota
	opDel
	opIns
)

type diffOp struct {
	kind  int
	text  string
	aLine int // 1-based line in old (keep/del)
	bLine int // 1-based line in new (keep/ins)
}

// diffOps computes a line-level edit script via LCS, trimming the common
// prefix and suffix first so the quadratic table only covers the changed
// middle.
func diffOps(a, b []string) []diffOp {
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	am := a[pre : len(a)-suf]
	bm := b[pre : len(b)-suf]

	// LCS table over the middle.
	n, m := len(am), len(bm)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if am[i] == bm[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var ops []diffOp
	aLine, bLine := 1, 1
	emit := func(kind int, text string) {
		op := diffOp{kind: kind, text: text, aLine: aLine, bLine: bLine}
		switch kind {
		case opKeep:
			aLine++
			bLine++
		case opDel:
			aLine++
		case opIns:
			bLine++
		}
		ops = append(ops, op)
	}
	for _, line := range a[:pre] {
		emit(opKeep, line)
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case am[i] == bm[j]:
			emit(opKeep, am[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			emit(opDel, am[i])
			i++
		default:
			emit(opIns, bm[j])
			j++
		}
	}
	for ; i < n; i++ {
		emit(opDel, am[i])
	}
	for ; j < m; j++ {
		emit(opIns, bm[j])
	}
	for _, line := range a[len(a)-suf:] {
		emit(opKeep, line)
	}
	return ops
}

// hunkRange computes the @@ header numbers for ops[hs..he].
func hunkRange(ops []diffOp, hs, he int) (aStart, aLen, bStart, bLen int) {
	aStart, bStart = ops[hs].aLine, ops[hs].bLine
	for _, op := range ops[hs : he+1] {
		switch op.kind {
		case opKeep:
			aLen++
			bLen++
		case opDel:
			aLen++
		case opIns:
			bLen++
		}
	}
	return aStart, aLen, bStart, bLen
}

func splitLines(src []byte) []string {
	s := string(src)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
