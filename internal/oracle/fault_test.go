package oracle

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

// sampleInputs returns a fixed set of query points for replay tests.
func sampleInputs(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for i := range inputs {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		inputs[i] = x
	}
	return inputs
}

// replay queries each input twice (repeat draws must replay too) and
// returns the concatenated responses.
func replay(t *testing.T, o Interface, inputs [][]float64) [][]float64 {
	t.Helper()
	var out [][]float64
	for _, x := range inputs {
		for k := 0; k < 2; k++ {
			out = append(out, mustQuery(t, o, x))
		}
	}
	return out
}

func TestDecoratorDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		build func(inner Interface) Interface
	}{
		{"quantized", func(in Interface) Interface { return Quantized(in, 8) }},
		{"noisy", func(in Interface) Interface { return Noisy(in, 0.05, 7) }},
		{"labelonly", func(in Interface) Interface { return LabelOnly(in) }},
		{"composed", func(in Interface) Interface { return Quantized(Noisy(in, 0.05, 7), 6) }},
	}
	inputs := sampleInputs(33, 6)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner, _ := newTestOracle(41)
			a := replay(t, tc.build(inner), inputs)
			inner2, _ := newTestOracle(41)
			b := replay(t, tc.build(inner2), inputs)
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("replay diverged at response %d component %d: %v vs %v",
							i, j, a[i][j], b[i][j])
					}
				}
			}
		})
	}
}

func TestNoisyFreshDrawsPerRepeat(t *testing.T) {
	inner, _ := newTestOracle(42)
	o := Noisy(inner, 0.1, 9)
	x := []float64{0.3, -0.7, 0.2, 1.1}
	y1 := mustQuery(t, o, x)
	y2 := mustQuery(t, o, x)
	same := true
	for j := range y1 {
		if y1[j] != y2[j] {
			same = false
		}
	}
	if same {
		t.Fatal("repeat query of the same point got identical noise; voting would be useless")
	}
}

func TestNoisySigmaZeroIsExact(t *testing.T) {
	inner, _ := newTestOracle(43)
	clean, _ := newTestOracle(43)
	o := Noisy(inner, 0, 9)
	x := []float64{0.3, -0.7, 0.2, 1.1}
	got := mustQuery(t, o, x)
	want := mustQuery(t, clean, x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("sigma=0 perturbed component %d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestQuantizedOnGrid(t *testing.T) {
	const bits = 6
	step := QuantizationStep(bits)
	if step != math.Ldexp(1, -bits) {
		t.Fatalf("QuantizationStep(%d) = %v", bits, step)
	}
	if QuantizationStep(0) != 0 || QuantizationStep(-3) != 0 {
		t.Fatal("QuantizationStep must be 0 for non-positive bits")
	}
	inner, _ := newTestOracle(44)
	o := Quantized(inner, bits)
	for _, x := range sampleInputs(5, 4) {
		for _, v := range mustQuery(t, o, x) {
			q := math.Round(v/step) * step
			if v != q {
				t.Fatalf("output %v not on the 2^-%d grid", v, bits)
			}
		}
	}
	xb := tensor.New(3, 4)
	for i := range xb.Data {
		xb.Data[i] = rand.New(rand.NewSource(6)).NormFloat64()
	}
	out := mustQueryBatch(t, o, xb)
	defer tensor.PutMatrix(out)
	for _, v := range out.Data {
		if v != math.Round(v/step)*step {
			t.Fatalf("batch output %v not on grid", v)
		}
	}
}

func TestLabelOnlyOneHot(t *testing.T) {
	inner, net := newTestOracle(45)
	o := LabelOnly(inner)
	for _, x := range sampleInputs(8, 5) {
		y := mustQuery(t, o, x)
		ones, hot := 0, -1
		for j, v := range y {
			switch v {
			case 1:
				ones++
				hot = j
			case 0:
			default:
				t.Fatalf("label-only output has non-binary component %v", v)
			}
		}
		if ones != 1 {
			t.Fatalf("label-only output has %d ones", ones)
		}
		if want := tensor.ArgMax(net.Forward(x)); hot != want {
			t.Fatalf("argmax %d, want %d", hot, want)
		}
	}
}

func TestBudgetedExhaustion(t *testing.T) {
	inner, _ := newTestOracle(46)
	o := Budgeted(inner, 3)
	x := []float64{1, 0, -1, 0.5}
	for i := 0; i < 3; i++ {
		mustQuery(t, o, x)
	}
	if _, err := o.Query(x); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if inner.Queries() != 3 {
		t.Fatalf("exhausted query still reached the device: %d", inner.Queries())
	}
	// ResetCounter zeroes accounting but must not refill the budget.
	o.ResetCounter()
	if _, err := o.Query(x); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("ResetCounter refilled the budget: err = %v", err)
	}
	if inner.Queries() != 0 {
		t.Fatalf("ResetCounter did not propagate: %d", inner.Queries())
	}
}

func TestBudgetedBatchAllOrNothing(t *testing.T) {
	inner, _ := newTestOracle(47)
	o := Budgeted(inner, 4)
	xb := tensor.New(5, 4)
	y, err := o.QueryBatch(xb)
	tensor.PutMatrix(y) // nil on the expected error; nil-safe
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("oversized batch: err = %v, want ErrBudgetExhausted", err)
	}
	if inner.Queries() != 0 {
		t.Fatalf("rejected batch consumed %d device queries", inner.Queries())
	}
}

func TestFlakyTransientAndRetryable(t *testing.T) {
	inner, _ := newTestOracle(48)
	o := Flaky(inner, 0.5, 13)
	x := []float64{0.2, 0.4, -0.6, 0.8}
	fails := 0
	for i := 0; i < 40; i++ {
		if _, err := o.Query(x); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("flaky failure is %v, not ErrTransient", err)
			}
			fails++
		}
	}
	if fails == 0 || fails == 40 {
		t.Fatalf("rate-0.5 flaky oracle failed %d/40 calls", fails)
	}
	// Dropped calls never reached the device: the counter reflects only
	// successful calls.
	if got := inner.Queries(); got != int64(40-fails) {
		t.Fatalf("device saw %d queries, want %d", got, 40-fails)
	}
	// Retrying eventually succeeds: the k-th attempt of an input draws the
	// k-th decision for that input, so a retry is a fresh coin flip.
	o2 := Flaky(mustOracle(t), 0.5, 13)
	ok := false
	for i := 0; i < 20; i++ {
		if _, err := o2.Query(x); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("20 retries at rate 0.5 never succeeded")
	}
}

func mustOracle(t *testing.T) Interface {
	t.Helper()
	o, _ := newTestOracle(49)
	return o
}

// TestWrapperAccountingPassThrough checks that query counting, reset, and the
// softmax flag all reflect the innermost oracle through a decorator stack.
func TestWrapperAccountingPassThrough(t *testing.T) {
	inner, _ := newTestOracle(50)
	o := Quantized(Noisy(LabelOnly(inner), 0.01, 3), 8)
	if o.Softmax() != inner.Softmax() {
		t.Fatal("Softmax flag not passed through")
	}
	x := []float64{1, 2, 3, 4}
	mustQuery(t, o, x)
	xb := tensor.New(3, 4)
	out := mustQueryBatch(t, o, xb)
	tensor.PutMatrix(out)
	if o.Queries() != 4 || inner.Queries() != 4 {
		t.Fatalf("Queries = %d (inner %d), want 4", o.Queries(), inner.Queries())
	}
	o.ResetCounter()
	if inner.Queries() != 0 {
		t.Fatal("ResetCounter not passed through")
	}
}

// TestCompositionOrder: quantize-then-noise leaves outputs off-grid, while
// noise-then-quantize lands on the grid — decorators compose outside-in.
func TestCompositionOrder(t *testing.T) {
	const bits = 4
	step := QuantizationStep(bits)
	onGrid := func(y []float64) bool {
		for _, v := range y {
			if v != math.Round(v/step)*step {
				return false
			}
		}
		return true
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}

	in1, _ := newTestOracle(51)
	noisyOutside := Noisy(Quantized(in1, bits), 0.05, 5)
	if onGrid(mustQuery(t, noisyOutside, x)) {
		t.Fatal("noise applied after quantization should leave the grid")
	}

	in2, _ := newTestOracle(51)
	quantOutside := Quantized(Noisy(in2, 0.05, 5), bits)
	if !onGrid(mustQuery(t, quantOutside, x)) {
		t.Fatal("quantization applied last should land on the grid")
	}
}

// TestDecoratorEmptyBatch: decorators preserve the 0-row contract.
func TestDecoratorEmptyBatch(t *testing.T) {
	inner, _ := newTestOracle(52)
	o := Quantized(Noisy(inner, 0.1, 2), 8)
	out, err := o.QueryBatch(tensor.New(0, 4))
	if err != nil {
		t.Fatalf("0-row batch through decorators: %v", err)
	}
	if out == nil || out.Rows != 0 {
		t.Fatal("0-row contract broken by decorators")
	}
	tensor.PutMatrix(out)
}
