package train

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/dataset"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(3, 4)
	for i := range logits.Data {
		logits.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 2, 3}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pred := tensor.New(2, 3)
	target := tensor.New(2, 3)
	for i := range pred.Data {
		pred.Data[i] = rng.NormFloat64()
		target.Data[i] = rng.NormFloat64()
	}
	loss, grad := MSE(pred, target)
	if loss < 0 {
		t.Fatal("negative MSE")
	}
	const h = 1e-6
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + h
		lp, _ := MSE(pred, target)
		pred.Data[i] = orig - h
		lm, _ := MSE(pred, target)
		pred.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("MSE grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestMSEZeroOnIdentical(t *testing.T) {
	a := tensor.FromSlice(1, 2, []float64{1, 2})
	loss, grad := MSE(a, a.Clone())
	if loss != 0 || grad.MaxAbs() != 0 {
		t.Fatal("identical matrices should give zero loss/grad")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	})
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

// linearlySeparableData builds a 2-class dataset split by a hyperplane.
func linearlySeparableData(rng *rand.Rand, n, dim int) (*tensor.Matrix, []int) {
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	x := tensor.New(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if tensor.Dot(x.Row(i), w) > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func TestSGDLearnsLinearProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := linearlySeparableData(rng, 300, 6)
	net := nn.NewNetwork(nn.NewDense(6, 16).InitHe(rng), nn.NewReLU(16), nn.NewDense(16, 2).InitHe(rng))
	res := Fit(net, x, y, x, y, Config{Epochs: 30, BatchSize: 32, Optimizer: NewSGD(0.1, 0.9), Seed: 1, TargetAccuracy: 0.99})
	if res.TestAccuracy < 0.97 {
		t.Fatalf("SGD failed to learn: acc %.3f", res.TestAccuracy)
	}
}

func TestAdamLearnsLinearProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := linearlySeparableData(rng, 300, 6)
	net := nn.NewNetwork(nn.NewDense(6, 16).InitHe(rng), nn.NewReLU(16), nn.NewDense(16, 2).InitHe(rng))
	res := Fit(net, x, y, x, y, Config{Epochs: 30, BatchSize: 32, Optimizer: NewAdam(0.01), Seed: 1, TargetAccuracy: 0.99})
	if res.TestAccuracy < 0.97 {
		t.Fatalf("Adam failed to learn: acc %.3f", res.TestAccuracy)
	}
}

func TestFrozenParamsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := nn.NewDense(3, 2).InitHe(rng)
	net := nn.NewNetwork(d)
	for _, p := range net.Params() {
		p.Frozen = true
	}
	before := d.W.W.Clone()
	x, y := linearlySeparableData(rng, 40, 3)
	Fit(net, x, y, x, y, Config{Epochs: 2, BatchSize: 8, Optimizer: NewAdam(0.1), Seed: 1})
	if !tensor.Equal(before, d.W.W, 0) {
		t.Fatal("frozen parameters changed during training")
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := linearlySeparableData(rng, 200, 4)
	net := nn.NewNetwork(nn.NewDense(4, 12).InitHe(rng), nn.NewReLU(12), nn.NewDense(12, 2).InitHe(rng))
	res := Fit(net, x, y, x, y, Config{Epochs: 100, BatchSize: 16, Optimizer: NewAdam(0.02), Seed: 1, TargetAccuracy: 0.9})
	if res.Epochs == 100 {
		t.Fatal("early stopping never triggered")
	}
}

func TestFitOnSyntheticDigitsMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(7))
	d := dataset.Digits(1200, 11)
	tr, te := d.Split(0.8)
	net := nn.NewNetwork(
		nn.NewDense(784, 64).InitHe(rng), nn.NewReLU(64),
		nn.NewDense(64, 10).InitHe(rng),
	)
	res := Fit(net, tr.X, tr.Y, te.X, te.Y, Config{Epochs: 30, BatchSize: 32, Optimizer: NewAdam(0.003), Seed: 2, TargetAccuracy: 0.9})
	// The digits stand-in hides a faint class signal under a shared
	// background (DESIGN.md §4), so a small MLP lands well below the
	// paper-size model's ~94% — but far above 10-class chance.
	if res.TestAccuracy < 0.75 {
		t.Fatalf("MLP on synthetic digits only reached %.3f", res.TestAccuracy)
	}
}

func TestEvaluateMatchesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := linearlySeparableData(rng, 300, 5) // > one chunk
	net := nn.NewNetwork(nn.NewDense(5, 2).InitHe(rng))
	logits := net.ForwardBatch(x)
	if math.Abs(Evaluate(net, x, y)-Accuracy(logits, y)) > 1e-12 {
		t.Fatal("Evaluate disagrees with Accuracy")
	}
}
