package tensor

import "math"

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U m×r, S length r, V n×r, where r = min(m, n).
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVDecompose computes a thin SVD by one-sided Jacobi rotations on the
// columns of A (on Aᵀ when m < n). Accurate for the moderate sizes used by
// the attack; singular values are returned in descending order.
func SVDecompose(a *Matrix) *SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		s := SVDecompose(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	u := a.Clone() // m×n, columns orthogonalized in place
	v := Identity(n)
	const (
		maxSweeps = 60
		eps       = 1e-13
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries for columns p and q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		//lint:ignore floatcmp exact convergence: the off-diagonal mass summed to exactly zero
		if off == 0 {
			break
		}
	}
	// Column norms are the singular values.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		nrm := 0.0
		for i := 0; i < m; i++ {
			nrm = math.Hypot(nrm, u.At(i, j))
		}
		sv[j] = nrm
		if nrm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)/nrm)
			}
		}
	}
	// Sort descending by singular value (simple selection sort, n is small).
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if sv[j] > sv[best] {
				best = j
			}
		}
		if best != i {
			sv[i], sv[best] = sv[best], sv[i]
			for r := 0; r < m; r++ {
				ui, ub := u.At(r, i), u.At(r, best)
				u.Set(r, i, ub)
				u.Set(r, best, ui)
			}
			for r := 0; r < n; r++ {
				vi, vb := v.At(r, i), v.At(r, best)
				v.Set(r, i, vb)
				v.Set(r, best, vi)
			}
		}
	}
	return &SVD{U: u, S: sv, V: v}
}

// Rank returns the numerical rank at relative tolerance tol (e.g. 1e-10).
func (s *SVD) Rank(tol float64) int {
	//lint:ignore floatcmp an exactly zero leading singular value means the zero matrix
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0
	}
	r := 0
	for _, sv := range s.S {
		if sv > tol*s.S[0] {
			r++
		}
	}
	return r
}

// PinvSolve returns the pseudo-inverse solution x = V·diag(1/S)·Uᵀ·b,
// truncating singular values below tol relative to the largest.
func (s *SVD) PinvSolve(b []float64, tol float64) []float64 {
	ub := MatTVec(s.U, b)
	for i := range ub {
		if s.S[i] > tol*s.S[0] && s.S[0] > 0 {
			ub[i] /= s.S[i]
		} else {
			ub[i] = 0
		}
	}
	return MatVec(s.V, ub)
}
