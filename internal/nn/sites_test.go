package nn

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

func TestSiteLayoutSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	net := NewNetwork(
		NewDense(4, 5).InitHe(rng), NewFlip(5), NewReLU(5),
		NewDense(5, 3).InitHe(rng), NewFlip(3), NewReLU(3),
		NewDense(3, 2).InitHe(rng),
	)
	layout := net.SiteLayout()
	if len(layout) != 4 {
		t.Fatalf("layout has %d events", len(layout))
	}
	// flip0, relu0, flip1, relu1 all on the top-level sequence (0), with
	// ReLUs directly after their flips.
	for i, ev := range layout {
		if ev.Seq != 0 {
			t.Fatalf("event %d in seq %d", i, ev.Seq)
		}
	}
	if !layout[0].IsFlip || layout[1].IsFlip || layout[1].Pos != layout[0].Pos+1 {
		t.Fatal("flip/relu adjacency wrong")
	}
}

func TestSiteLayoutResidualSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	body := []Layer{NewDense(4, 4).InitHe(rng), NewFlip(4), NewReLU(4), NewDense(4, 4).InitHe(rng), NewFlip(4)}
	net := NewNetwork(
		NewDense(4, 4).InitHe(rng), NewFlip(4), NewReLU(4),
		NewResidual(body, nil), NewReLU(4),
		NewDense(4, 2).InitHe(rng),
	)
	layout := net.SiteLayout()
	// Events: flip0,relu0 (seq 0), flip1,relu1,flip2 (body seq), relu2 (seq 0).
	if len(layout) != 6 {
		t.Fatalf("layout has %d events", len(layout))
	}
	if layout[2].Seq == 0 || layout[4].Seq != layout[2].Seq {
		t.Fatal("body events not in their own sequence")
	}
	// The post-add ReLU is top-level and NOT position-adjacent to the last
	// body flip (they live in different sequences).
	last := layout[5]
	if last.IsFlip || last.Seq != 0 {
		t.Fatalf("expected top-level relu, got %+v", last)
	}
}

func TestForwardTraceToReLUStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	net := NewNetwork(
		NewDense(4, 5).InitHe(rng), NewFlip(5), NewReLU(5),
		NewDense(5, 3).InitHe(rng), NewFlip(3), NewReLU(3),
		NewDense(3, 2).InitHe(rng),
	)
	x := randBatch(rng, 1, 4).Row(0)
	tr := net.ForwardTraceToReLU(x, 0)
	if tr.ReluIn[0] == nil {
		t.Fatal("relu 0 input not recorded")
	}
	if tr.ReluIn[1] != nil || tr.Out != nil {
		t.Fatal("trace did not stop early")
	}
	full := net.ForwardTraceToReLU(x, 1)
	if full.ReluIn[1] == nil {
		t.Fatal("relu 1 input not recorded")
	}
}

func TestReluInJacobianMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	conv := NewConv2D(1, 6, 6, 2, 3, 1, 0).InitHe(rng)
	pool := NewMaxPool2D(2, conv.OutH, conv.OutW, 2, 2)
	net := NewNetwork(
		conv, NewFlip(conv.OutSize()), NewReLU(conv.OutSize()), pool,
		NewDense(pool.OutSize(), 4).InitHe(rng), NewFlip(4), NewReLU(4),
		NewDense(4, 2).InitHe(rng),
	)
	x := randBatch(rng, 1, conv.InSize()).Row(0)
	for site := 0; site < 2; site++ {
		u, j := net.ReluInJacobian(x, site)
		fd := fdJacobian(func(xx []float64) []float64 {
			return net.ForwardTraceToReLU(xx, site).ReluIn[site]
		}, x, 1e-6)
		if !tensor.Equal(j, fd, 1e-4) {
			t.Fatalf("relu %d Jacobian mismatch", site)
		}
		ref := net.ForwardTraceToReLU(x, site).ReluIn[site]
		for i := range u {
			if math.Abs(u[i]-ref[i]) > 1e-12 {
				t.Fatal("relu input value mismatch")
			}
		}
	}
}

func TestTraceReluInMatchesPostForGatedFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	f := NewFlip(5)
	f.SetBit(2, true)
	net := NewNetwork(NewDense(3, 5).InitHe(rng), f, NewReLU(5), NewDense(5, 2).InitHe(rng))
	x := randBatch(rng, 1, 3).Row(0)
	tr := net.ForwardTrace(x)
	for i := range tr.Post[0] {
		if tr.Post[0][i] != tr.ReluIn[0][i] {
			t.Fatal("gated relu input must equal flip output")
		}
	}
}
