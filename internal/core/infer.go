package core

import (
	"math"
	"math/rand"

	"dnnlock/internal/geometry"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/tensor"
)

// bitValue is the tri-state outcome of Algorithm 1.
type bitValue int8

const (
	bitBottom bitValue = -1 // ⊥: the algebraic path could not decide
	bitZero   bitValue = 0
	bitOne    bitValue = 1
)

// String names the outcome for trace annotations.
func (b bitValue) String() string {
	switch b {
	case bitZero:
		return "zero"
	case bitOne:
		return "one"
	default:
		return "bottom"
	}
}

// keyBitInference implements Algorithm 1 for the protected neuron at spec
// position bitIdx. It finds a critical point of the neuron, computes the
// product weight matrix Â^(i) (Formulas 2–3 when the network is a
// sequential piecewise-linear stack, the exact JVP Jacobian otherwise),
// solves Â·v = e_j by minimum-norm least squares, and compares the oracle's
// reaction to x° ± ε·v (Lemma 2). It returns ⊥ when no pre-image exists
// (expansive location, §3.4), when the neuron is not sensitized to the
// output, or when responses stay ambiguous across retries. A non-nil error
// is terminal (budget exhaustion, persistent device fault) and aborts the
// run; transient failures that outlast the retry budget degrade to ⊥
// instead.
func (a *Attack) keyBitInference(bitIdx int, rng *rand.Rand) (bitValue, error) {
	bsp := a.phase.ChildDetail("bit", obs.Int("bit", bitIdx))
	bit, err := a.keyBitInferenceSpanned(bsp, bitIdx, rng)
	bsp.End(obs.String("outcome", bit.String()))
	return bit, err
}

func (a *Attack) keyBitInferenceSpanned(bsp *obs.Span, bitIdx int, rng *rand.Rand) (bitValue, error) {
	pn := a.spec.Neurons[bitIdx]
	// Static expansiveness: a site wider than the input space can never
	// have full row rank, so Â is not onto and no basis pre-image exists
	// (§3.4). Skip the Jacobian work outright.
	if a.white.Flips()[pn.Site].N > a.white.InSize() {
		return bitBottom, nil
	}
	for try := 0; try < a.cfg.MaxCriticalTries; try++ {
		x0, ok := searchCriticalPoint(a.white, pn.Site, pn.Index, a.cfg, rng)
		if !ok {
			return bitBottom, nil
		}
		v, ok := a.preimage(x0, pn.Site, pn.Index)
		if !ok {
			// Rank deficiency can be mask-dependent; retry from another
			// region before giving up.
			continue
		}
		bit, ok, err := a.probeBit(bsp, x0, v, pn.Site, pn.Index)
		if err != nil {
			return bitBottom, a.fallthroughBottom(err)
		}
		if ok {
			return bit, nil
		}
	}
	return bitBottom, nil
}

// productMatrixOf adapts geometry.ProductMatrix to return the bare matrix.
func productMatrixOf(net *nn.Network, tr *nn.Trace, site int) (*tensor.Matrix, error) {
	m, err := geometry.ProductMatrix(net, tr, site)
	if err != nil {
		return nil, err
	}
	return m.A, nil
}

// productMatrixAtReLUOf is productMatrixOf for a ReLU-input target.
func productMatrixAtReLUOf(net *nn.Network, tr *nn.Trace, reluSite int) (*tensor.Matrix, error) {
	m, err := geometry.ProductMatrixAtReLU(net, tr, reluSite)
	if err != nil {
		return nil, err
	}
	return m.A, nil
}

// preimage solves Â^(site)·v = e_idx at x0 and checks the residual.
func (a *Attack) preimage(x0 []float64, site, idx int) ([]float64, bool) {
	var aHat *tensor.Matrix
	if a.cfg.UseProductMatrix {
		tr := a.white.ForwardTraceTo(x0, site)
		if m, err := productMatrixOf(a.white, tr, site); err == nil {
			aHat = m
		}
	}
	if aHat == nil {
		_, j := a.white.PreActJacobian(x0, site)
		aHat = j
	}
	e := tensor.Basis(aHat.Rows, idx)
	res := tensor.LeastSquares(aHat, e)
	if res.RelRes > a.cfg.ResidualTol {
		return nil, false
	}
	return res.X, true
}

// probeBit performs the oracle queries of Algorithm 1 lines 9–10 with the
// robust ratio test, after verifying on the white box that the ε-step does
// not leave the linear region (the ε-neighborhood guarantee of §3.3).
//
// Under a declared-noisy oracle the three-point probe is repeated
// cfg.ProbeVotes times and the per-repeat outcomes are majority-voted; a
// fresh noise draw attends each repeat (oracle.Noisy is input-addressed with
// an occurrence counter), so independent votes average the noise out. With
// the default ProbeVotes=1 the loop degenerates to the paper's single-shot
// probe, issuing the same three queries in the same order.
func (a *Attack) probeBit(sp *obs.Span, x0, v []float64, site, idx int) (bitValue, bool, error) {
	eps := a.cfg.probeStep(a.cfg.Epsilon)
	for shrink := 0; shrink < 4; shrink++ {
		xp := tensor.VecClone(x0)
		tensor.AXPY(eps, v, xp)
		xm := tensor.VecClone(x0)
		tensor.AXPY(-eps, v, xm)
		if !a.stepStaysClean(x0, xp, xm, site, idx, eps) {
			eps /= 8
			continue
		}
		votes := a.cfg.ProbeVotes
		var tally [3]int // bitZero, bitOne, ambiguous
		for vi := 0; vi < votes; vi++ {
			// One probe group per vote: {x°, x°+εv, x°−εv} travel as a
			// single oracle round through the planner.
			xb := tensor.GetMatrix(3, len(x0))
			xb.SetRow(0, x0)
			xb.SetRow(1, xp)
			xb.SetRow(2, xm)
			y, err := a.multi(sp, xb)
			tensor.PutMatrix(xb)
			if err != nil {
				return bitBottom, false, err
			}
			dp := tensor.NormInf(tensor.VecSub(y.Row(1), y.Row(0)))
			dm := tensor.NormInf(tensor.VecSub(y.Row(2), y.Row(0)))
			tensor.PutMatrix(y)
			switch {
			case dp > a.absChange() && dp > a.cfg.DecisionRatio*dm:
				// Output moves on the +v side only: the unsigned positive
				// side is the active side, so the sign is not flipped.
				tally[0]++
			case dm > a.absChange() && dm > a.cfg.DecisionRatio*dp:
				tally[1]++
			default:
				// Both sides quiet (not sensitized) or both move comparably
				// (bypass paths): ambiguous here.
				tally[2]++
			}
		}
		switch {
		case 2*tally[0] > votes:
			return bitZero, true, nil
		case 2*tally[1] > votes:
			return bitOne, true, nil
		case tally[2] == votes:
			// Unanimously ambiguous: not sensitized at this witness.
			return bitBottom, false, nil
		default:
			// The votes split between outcomes — the noise is winning. Count
			// the degradation and let the learning attack take the bit.
			if votes > 1 {
				a.degraded.Add(1)
				a.event("degraded", obs.String("reason", "vote_split"),
					obs.Int("site", site), obs.Int("idx", idx))
				a.log.Warn("probe votes split: degrading to ⊥",
					"site", site, "idx", idx,
					"zero", tally[0], "one", tally[1], "ambiguous", tally[2])
			}
			return bitBottom, false, nil
		}
	}
	return bitBottom, false, nil
}

// stepStaysClean checks, on the white box, that moving from x0 to xp/xm
// changes only the target coordinate of the site's pre-activation — i.e.
// the probes stay inside the ε-neighborhood of Lemma 2, where e_{i,j} is
// orthogonal to every other hidden coordinate. The check transfers to the
// oracle because the unknown site-s signs only negate coordinates, which
// preserves the magnitude of their movement.
func (a *Attack) stepStaysClean(x0, xp, xm []float64, site, idx int, eps float64) bool {
	tr0 := a.white.ForwardTraceTo(x0, site)
	trp := a.white.ForwardTraceTo(xp, site)
	trm := a.white.ForwardTraceTo(xm, site)
	// Off-target coordinates of u_site must stay put relative to ε.
	limit := eps / 50
	for k := range tr0.Pre[site] {
		if k == idx {
			continue
		}
		if math.Abs(trp.Pre[site][k]-tr0.Pre[site][k]) > limit ||
			math.Abs(trm.Pre[site][k]-tr0.Pre[site][k]) > limit {
			return false
		}
	}
	// The target coordinate must actually straddle the boundary.
	return trp.Pre[site][idx] > eps/2 && trm.Pre[site][idx] < -eps/2
}
