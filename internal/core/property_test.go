package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// TestDecryptRecoversPlantedKeyProperty is the repository's headline
// property: for random contractive MLPs, random lock placements, and
// random keys, Algorithm 2 returns exactly the planted key (Theorem 4's
// correctness, checked empirically).
func TestDecryptRecoversPlantedKeyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := models.TinyMLP(rng)
		bits := 4 + rng.Intn(8)
		lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: bits, Rng: rng})
		orc := oracle.New(lm, key)
		cfg := DefaultConfig()
		cfg.Seed = seed + 1
		res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return res.Key.Fidelity(key) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDecryptVariantProperty extends the planted-key property to a random
// §3.9 scheme per trial.
func TestDecryptVariantProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	schemes := []hpnn.Scheme{hpnn.Scaling, hpnn.BiasShift, hpnn.WeightPerturb}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := models.TinyMLP(rng)
		scheme := schemes[rng.Intn(len(schemes))]
		alpha := 0.4 + rng.Float64()
		lm, key := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: alpha, KeyBits: 4, Rng: rng})
		orc := oracle.New(lm, key)
		cfg := DefaultConfig()
		cfg.Seed = seed + 1
		res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
		if err != nil {
			t.Logf("seed %d scheme %v: %v", seed, scheme, err)
			return false
		}
		if res.Key.Fidelity(key) != 1 {
			t.Logf("seed %d scheme %v: fidelity %.2f", seed, scheme, res.Key.Fidelity(key))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesGrowWithKeySize checks the Table 1 query-complexity trend.
func TestQueriesGrowWithKeySize(t *testing.T) {
	queries := func(bits int) int64 {
		rng := rand.New(rand.NewSource(600))
		net := models.TinyMLP(rng)
		lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: bits, Rng: rng})
		orc := oracle.New(lm, key)
		cfg := DefaultConfig()
		cfg.Seed = 601
		res, err := Run(lm.WhiteBox(), lm.Spec, orc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Queries
	}
	q4, q12 := queries(4), queries(12)
	if q12 <= q4 {
		t.Fatalf("queries did not grow with key size: %d (4 bits) vs %d (12 bits)", q4, q12)
	}
}
