// Package hpnn implements the Hardware Protected Neural Network locking
// scheme of Chakraborty et al. (DAC 2020) as described in the attacked
// paper's §2.2, plus the foreseeable variants of §3.9: a key bit is
// associated with each protected neuron and controls a modification of that
// neuron's pre-activation (sign flip for standard HPNN, scaling or bias
// shift for the variants) or of a single weight element (weight
// perturbation variant).
package hpnn

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/nn"
)

// Scheme selects the locking operator.
type Scheme int

// Locking schemes. Negation is standard HPNN (Equation 1 of the paper); the
// others are the §3.9 variants.
const (
	Negation Scheme = iota
	Scaling
	BiasShift
	WeightPerturb
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Negation:
		return "negation"
	case Scaling:
		return "scaling"
	case BiasShift:
		return "bias-shift"
	case WeightPerturb:
		return "weight-perturb"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ProtectedNeuron identifies one key-protected neuron: a flip site (one per
// lockable layer, in network order) and a flattened neuron index within it.
// For convolutional sites the index addresses a single (channel, y, x)
// activation unit. Col is only used by the WeightPerturb scheme and selects
// the perturbed input coordinate of the neuron's weight row.
type ProtectedNeuron struct {
	Site  int
	Index int
	Col   int
}

// Key is a vector of key bits aligned with a LockSpec's protected neurons.
type Key []bool

// Clone copies the key.
func (k Key) Clone() Key {
	c := make(Key, len(k))
	copy(c, k)
	return c
}

// Fidelity returns the fraction of positions where k and other agree — the
// paper's fidelity metric for extracted keys.
func (k Key) Fidelity(other Key) float64 {
	if len(k) != len(other) {
		panic("hpnn: fidelity of different-length keys")
	}
	if len(k) == 0 {
		return 1
	}
	same := 0
	for i := range k {
		if k[i] == other[i] {
			same++
		}
	}
	return float64(same) / float64(len(k))
}

// HammingDistance counts differing positions.
func (k Key) HammingDistance(other Key) int {
	d := 0
	for i := range k {
		if k[i] != other[i] {
			d++
		}
	}
	return d
}

// String renders the key as a bit string.
func (k Key) String() string {
	b := make([]byte, len(k))
	for i, bit := range k {
		if bit {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// RandomKey draws a uniform key of length n.
func RandomKey(n int, rng *rand.Rand) Key {
	k := make(Key, n)
	for i := range k {
		k[i] = rng.Intn(2) == 1
	}
	return k
}

// LockSpec describes where and how a model is locked. The spec is public
// knowledge under the standard logic-locking adversary model (§2.3): only
// the key bits are secret.
type LockSpec struct {
	Scheme  Scheme
	Alpha   float64 // Scaling multiplier (≠1) or BiasShift/WeightPerturb delta
	Neurons []ProtectedNeuron
}

// NumBits returns the key length.
func (s *LockSpec) NumBits() int { return len(s.Neurons) }

// SiteBits groups the protected-neuron positions by flip site: the returned
// map's values index into Neurons.
func (s *LockSpec) SiteBits() map[int][]int {
	m := make(map[int][]int)
	for i, pn := range s.Neurons {
		m[pn.Site] = append(m[pn.Site], i)
	}
	return m
}

// Config controls neuron selection during locking.
type Config struct {
	Scheme  Scheme
	Alpha   float64 // required ≠ 0 for non-Negation schemes
	KeyBits int
	Sites   []int // flip sites to protect; nil means every site
	Rng     *rand.Rand
}

// LockedModel couples a network with a lock specification. The embedded
// network holds the trained parameters; its flips are identity until a key
// is applied.
type LockedModel struct {
	Net  *nn.Network
	Spec LockSpec

	// wpBase holds the unperturbed weight element per protected neuron for
	// the WeightPerturb scheme, captured at lock time. (This implementation
	// does not support re-training a WeightPerturb model after locking.)
	wpBase []float64
}

// NewLockSpec selects protected neurons per the paper's procedure (§4.2):
// key bits are distributed equally across the designated sites and assigned
// to randomly selected distinct neurons within each site.
func NewLockSpec(net *nn.Network, cfg Config) LockSpec {
	if cfg.Rng == nil {
		panic("hpnn: Config.Rng is required")
	}
	sites := cfg.Sites
	if sites == nil {
		for s := 0; s < net.NumFlipSites(); s++ {
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		panic("hpnn: no lockable sites")
	}
	spec := LockSpec{Scheme: cfg.Scheme, Alpha: cfg.Alpha}
	//lint:ignore floatcmp zero is the exact unset sentinel for Alpha
	if cfg.Scheme != Negation && cfg.Alpha == 0 {
		panic("hpnn: variant schemes need Alpha != 0")
	}
	//lint:ignore floatcmp the exact constant 1 makes scaling a no-op
	if cfg.Scheme == Scaling && cfg.Alpha == 1 {
		panic("hpnn: scaling with Alpha == 1 is a no-op")
	}
	flips := net.Flips()
	// Equal distribution with remainder spread over the first sites.
	per := cfg.KeyBits / len(sites)
	rem := cfg.KeyBits % len(sites)
	for si, site := range sites {
		want := per
		if si < rem {
			want++
		}
		width := flips[site].N
		if want > width {
			panic(fmt.Sprintf("hpnn: site %d has %d neurons, cannot hold %d key bits", site, width, want))
		}
		perm := cfg.Rng.Perm(width)[:want]
		for _, idx := range perm {
			pn := ProtectedNeuron{Site: site, Index: idx}
			if cfg.Scheme == WeightPerturb {
				pn.Col = cfg.Rng.Intn(linearBefore(net, site).(*nn.Dense).In)
			}
			spec.Neurons = append(spec.Neurons, pn)
		}
	}
	return spec
}

// Lock selects protected neurons, draws a uniform key, and applies it to
// net in place (so the model can then be trained as a function of the key,
// §2.2). It returns the locked model and the correct key K*.
func Lock(net *nn.Network, cfg Config) (*LockedModel, Key) {
	spec := NewLockSpec(net, cfg)
	key := RandomKey(spec.NumBits(), cfg.Rng)
	lm := NewLockedModel(net, spec)
	lm.applyInPlace(net, key)
	return lm, key
}

// NewLockedModel wraps an existing network and spec, capturing the
// WeightPerturb reference values.
func NewLockedModel(net *nn.Network, spec LockSpec) *LockedModel {
	lm := &LockedModel{Net: net, Spec: spec}
	if spec.Scheme == WeightPerturb {
		lm.wpBase = make([]float64, len(spec.Neurons))
		for i, pn := range spec.Neurons {
			d, ok := linearBefore(net, pn.Site).(*nn.Dense)
			if !ok {
				panic("hpnn: WeightPerturb requires a Dense producer layer")
			}
			lm.wpBase[i] = d.W.W.At(pn.Index, pn.Col)
		}
	}
	return lm
}

// Apply returns a network computing the model under the given key. The
// result shares weights with the stored network for the pre-activation
// schemes and deep-copies for WeightPerturb.
func (lm *LockedModel) Apply(key Key) *nn.Network {
	var out *nn.Network
	if lm.Spec.Scheme == WeightPerturb {
		out = lm.Net.Clone()
	} else {
		out = lm.Net.CloneForKeys()
	}
	lm.applyInPlace(out, key)
	return out
}

// WhiteBox returns the adversary's view: architecture and weights with all
// protected units in their identity state (key unknown).
func (lm *LockedModel) WhiteBox() *nn.Network {
	var out *nn.Network
	if lm.Spec.Scheme == WeightPerturb {
		out = lm.Net.Clone()
	} else {
		out = lm.Net.CloneForKeys()
	}
	lm.applyInPlace(out, make(Key, lm.Spec.NumBits()))
	return out
}

// applyInPlace writes the locking state implied by key into target.
func (lm *LockedModel) applyInPlace(target *nn.Network, key Key) {
	if len(key) != lm.Spec.NumBits() {
		panic(fmt.Sprintf("hpnn: key length %d != %d", len(key), lm.Spec.NumBits()))
	}
	flips := target.Flips()
	for i, pn := range lm.Spec.Neurons {
		f := flips[pn.Site]
		switch lm.Spec.Scheme {
		case Negation:
			f.SetBit(pn.Index, key[i])
		case Scaling:
			if key[i] {
				f.Signs[pn.Index] = lm.Spec.Alpha
			} else {
				f.Signs[pn.Index] = 1
			}
		case BiasShift:
			if key[i] {
				f.SetOffset(pn.Index, lm.Spec.Alpha)
			} else {
				f.SetOffset(pn.Index, 0)
			}
		case WeightPerturb:
			d, ok := linearBefore(target, pn.Site).(*nn.Dense)
			if !ok {
				panic("hpnn: WeightPerturb requires a Dense producer layer")
			}
			base := lm.wpBase[i]
			if key[i] {
				d.W.W.Set(pn.Index, pn.Col, base+lm.Spec.Alpha)
			} else {
				d.W.W.Set(pn.Index, pn.Col, base)
			}
		}
	}
}

// ExtractKey reads the key currently applied to target (used by tests and
// by the attack when assembling its recovered key).
func (lm *LockedModel) ExtractKey(target *nn.Network) Key {
	flips := target.Flips()
	key := make(Key, lm.Spec.NumBits())
	for i, pn := range lm.Spec.Neurons {
		f := flips[pn.Site]
		switch lm.Spec.Scheme {
		case Negation:
			key[i] = f.Signs[pn.Index] < 0
		case Scaling:
			//lint:ignore floatcmp Signs hold the exact sentinel values the locker wrote
			key[i] = f.Signs[pn.Index] != 1
		case BiasShift:
			//lint:ignore floatcmp Offsets hold the exact sentinel the locker wrote
			key[i] = f.Offsets != nil && f.Offsets[pn.Index] != 0
		case WeightPerturb:
			d := linearBefore(target, pn.Site).(*nn.Dense)
			//lint:ignore floatcmp reads back the exact stored weight: applied bits differ from base bit for bit
			key[i] = d.W.W.At(pn.Index, pn.Col) != lm.wpBase[i]
		}
	}
	return key
}

// ProducerDense returns the Dense layer feeding the given flip site, or
// false when the producer is not a Dense layer. The WeightPerturb variant
// and its attack reduction need this mapping.
func ProducerDense(net *nn.Network, site int) (*nn.Dense, bool) {
	d, ok := linearBefore(net, site).(*nn.Dense)
	return d, ok
}

// linearBefore returns the layer that produces the pre-activation consumed
// by the given flip site (the layer immediately preceding the Flip in its
// sequence).
func linearBefore(net *nn.Network, site int) nn.Layer {
	target := net.Flips()[site]
	var found nn.Layer
	var walk func(seq []nn.Layer)
	walk = func(seq []nn.Layer) {
		for i, l := range seq {
			if l == nn.Layer(target) && i > 0 {
				found = seq[i-1]
				return
			}
			if r, ok := l.(*nn.Residual); ok {
				walk(r.Body)
				walk(r.Shortcut)
				if found != nil {
					return
				}
			}
		}
	}
	walk(net.Layers)
	if found == nil {
		panic(fmt.Sprintf("hpnn: no producer layer found for flip site %d", site))
	}
	return found
}
