package core

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/nn"
)

func TestSearchZeroFindsBracketedRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	cfg := DefaultConfig()
	// u(x) = x₀ − 0.3: sign diversity everywhere.
	u := func(x []float64) float64 { return x[0] - 0.3 }
	x, ok := searchZero(u, 4, cfg, rng)
	if !ok {
		t.Fatal("no root found")
	}
	if math.Abs(u(x)) > math.Sqrt(cfg.CriticalTol) {
		t.Fatalf("residual %g", u(x))
	}
}

func TestSearchZeroHandlesSkewedUnits(t *testing.T) {
	// A unit that is positive on all but a thin sliver of the box — the
	// trained-network regime where fixed-line scanning starves. The
	// multi-scale sign-diversity prescan must still bracket it.
	rng := rand.New(rand.NewSource(702))
	cfg := DefaultConfig()
	u := func(x []float64) float64 { return x[0]*x[0] + 0.5 - 0.1*x[1]*x[1]*x[1]*x[1] }
	found := 0
	for trial := 0; trial < 5; trial++ {
		if _, ok := searchZero(u, 2, cfg, rng); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("skewed unit never bracketed")
	}
}

func TestSearchZeroGivesUpOnDeadUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	cfg := DefaultConfig()
	cfg.MaxLineTries = 2
	cfg.LineSamples = 8
	u := func(x []float64) float64 { return 1 + x[0]*x[0] } // always positive
	if _, ok := searchZero(u, 3, cfg, rng); ok {
		t.Fatal("found a root of a positive function")
	}
}

func TestBisectSegmentToleratesMultipleCrossings(t *testing.T) {
	cfg := DefaultConfig()
	// u crosses zero three times between the exemplars; any root is fine.
	u := func(x []float64) float64 { return math.Sin(3 * x[0]) }
	a := []float64{0.4} // sin(1.2) > 0
	b := []float64{2.8} // sin(8.4) > 0 ... pick b with u<0: sin(3*1.2)= -0.44
	b = []float64{1.2}
	x, ok := bisectSegment(u, a, b, cfg)
	if !ok {
		t.Fatal("no root")
	}
	if math.Abs(u(x)) > math.Sqrt(cfg.CriticalTol) {
		t.Fatalf("residual %g", u(x))
	}
}

func TestPostActTracksAppliedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	f := nn.NewFlip(3)
	net := nn.NewNetwork(nn.NewDense(2, 3).InitHe(rng), f, nn.NewReLU(3), nn.NewDense(3, 2).InitHe(rng))
	x := []float64{0.5, -0.8}
	before := postAct(net, x, 0, 1)
	f.SetBit(1, true)
	after := postAct(net, x, 0, 1)
	if math.Abs(before+after) > 1e-12 {
		t.Fatalf("post-act did not flip: %v vs %v", before, after)
	}
	// Offsets shift the post-act (bias-shift variant).
	f.SetBit(1, false)
	f.SetOffset(1, 0.25)
	shifted := postAct(net, x, 0, 1)
	if math.Abs(shifted-before-0.25) > 1e-12 {
		t.Fatalf("offset not reflected: %v vs %v", shifted, before)
	}
}
