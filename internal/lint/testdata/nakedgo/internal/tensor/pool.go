// Package tensor owns the worker pool: raw go statements are sanctioned
// here, so nothing in this file is flagged.
package tensor

func spawnWorkers(queue chan func()) {
	for i := 0; i < 4; i++ {
		go func() {
			for task := range queue {
				task()
			}
		}()
	}
}
