// Package dnnlock_test holds the benchmark harness that regenerates the
// paper's evaluation artifacts (DESIGN.md §5):
//
//   - BenchmarkTable1* — one benchmark per Table 1 architecture, running
//     the full train → lock → monolithic attack → decryption attack cell
//     at tiny scale and reporting fidelity/queries as benchmark metrics.
//     (The full-size sweep is `go run ./cmd/dnnlock bench -scale quick`.)
//   - BenchmarkFigure3* — the decryption attack with its per-procedure
//     runtime breakdown reported as *_pct metrics.
//   - BenchmarkKeySizeScaling* — Table 1's within-architecture key-size
//     trend (time and queries growing with key bits).
//   - BenchmarkAblation* — the design-choice ablations listed in
//     DESIGN.md §6.
//   - BenchmarkVariant* — the §3.9 locking variants.
//   - micro-benchmarks for the attack's hot procedures.
package dnnlock_test

import (
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/harness"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// benchPrecision resolves the training precision of the Table 1 cell
// benchmarks. The speed tier (float32) is the default — it is the
// configuration whose end-to-end time the bench suite tracks — and
// DNNLOCK_TRAIN_PRECISION=float64 pins the exact reference tier instead
// (bench.sh records the choice in the BENCH_<date>.json header). Either
// way the reported dec_fidelity_% and dec_queries metrics must not move:
// that is the precision-parity property under benchmark load.
func benchPrecision() core.Precision {
	if os.Getenv("DNNLOCK_TRAIN_PRECISION") == "float64" {
		return core.Float64
	}
	return core.Float32
}

// benchCell runs one tiny-scale Table 1 cell and reports its metrics.
func benchCell(b *testing.B, model string, bits int) {
	sc := harness.TinyScale()
	sc.KeySizes = map[string][]int{model: {bits}}
	sc.AttackCfg.TrainPrecision = benchPrecision()
	var last harness.Table1Row
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable1(sc, []string{model}, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
		if last.DecryptErr != nil {
			b.Fatal(last.DecryptErr)
		}
	}
	b.ReportMetric(100*last.Decryption.Fidelity, "dec_fidelity_%")
	b.ReportMetric(100*last.Monolithic.Fidelity, "mono_fidelity_%")
	b.ReportMetric(float64(last.Decryption.Queries), "dec_queries")
	b.ReportMetric(float64(last.Decryption.Rounds), "oracle_rounds")
	b.ReportMetric(100*last.OriginalAccuracy, "orig_acc_%")
	b.ReportMetric(100*last.BaselineAccuracy, "base_acc_%")
}

func BenchmarkTable1MLP(b *testing.B)          { benchCell(b, "mlp", 8) }
func BenchmarkTable1LeNet(b *testing.B)        { benchCell(b, "lenet", 4) }
func BenchmarkTable1ResNet(b *testing.B)       { benchCell(b, "resnet", 4) }
func BenchmarkTable1VTransformer(b *testing.B) { benchCell(b, "vtransformer", 4) }

// benchFarm prices one farm sweep point per architecture: the tiny-scale
// decryption attack over a 1000-device mixed fleet behind a 20ms / 10Mbit /
// 1%-loss channel, reporting the predicted attack wall-clock on the
// simulated channel as farm_wallclock_s. Workers=1 keeps the attack's round
// ordering serial, so the virtual-clock horizon is exactly reproducible run
// to run and bench_compare can gate it like oracle_rounds.
func benchFarm(b *testing.B, model string, bits int) {
	sc := harness.TinyScale()
	sc.AttackCfg.Workers = 1
	sw := harness.FarmSweep{
		Devices:    1000,
		RTTs:       []time.Duration{20 * time.Millisecond},
		Bandwidths: []float64{1.25e6},
		Losses:     []float64{0.01},
		MixNames:   []string{"mixed"},
	}
	var last harness.FarmRow
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFarm(sc, model, bits, sw, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
		if last.Err != nil {
			b.Fatal(last.Err)
		}
	}
	b.ReportMetric(last.SimSeconds, "farm_wallclock_s")
	b.ReportMetric(100*last.Fidelity, "fid_%")
	b.ReportMetric(float64(last.Rounds), "oracle_rounds")
	b.ReportMetric(float64(last.Lost), "lost_rounds")
}

func BenchmarkFarmMLP(b *testing.B)          { benchFarm(b, "mlp", 8) }
func BenchmarkFarmLeNet(b *testing.B)        { benchFarm(b, "lenet", 4) }
func BenchmarkFarmResNet(b *testing.B)       { benchFarm(b, "resnet", 4) }
func BenchmarkFarmVTransformer(b *testing.B) { benchFarm(b, "vtransformer", 4) }

// attackSetup locks a fresh tiny network of the given kind and returns the
// attack inputs (no training: the attack itself is data-free).
func attackSetup(kind string, bits int, seed int64) (*nn.Network, hpnn.LockSpec, *oracle.Oracle, hpnn.Key) {
	rng := rand.New(rand.NewSource(seed))
	var net *nn.Network
	switch kind {
	case "mlp":
		net = models.TinyMLP(rng)
	case "lenet":
		net = models.TinyLeNet(rng)
	case "resnet":
		net = models.TinyResNet(rng)
	case "vtransformer":
		net = models.TinyVTransformer(rng)
	}
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: bits, Rng: rng})
	return lm.WhiteBox(), lm.Spec, oracle.New(lm, key), key
}

// benchDecrypt measures the decryption attack alone and reports the
// Figure 3 breakdown percentages.
func benchDecrypt(b *testing.B, kind string, bits int, mutate func(*core.Config)) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		white, spec, orc, key := attackSetup(kind, bits, 42)
		cfg := core.DefaultConfig()
		cfg.Seed = 7
		if mutate != nil {
			mutate(&cfg)
		}
		var err error
		res, err = core.Run(white, spec, orc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Key.Fidelity(key) != 1 {
			b.Fatalf("fidelity %.3f", res.Key.Fidelity(key))
		}
	}
	b.ReportMetric(float64(res.Queries), "queries")
	b.ReportMetric(float64(res.Rounds), "oracle_rounds")
	// The §3.5 search is white-box, so -multisect moves these two, not
	// oracle_rounds: fewer narrowing rounds bought with more probes.
	b.ReportMetric(float64(res.BisectRounds), "bisect_rounds")
	b.ReportMetric(float64(res.BisectProbes), "bisect_probes")
	for _, p := range metrics.AllProcedures {
		b.ReportMetric(res.Breakdown.Percent(p), string(p)+"_pct")
	}
}

// Tracer overhead (DESIGN.md §12): the same decryption cell once with the
// no-op default tracer and once exporting a full detailed trace to
// io.Discard. bench.sh records both, so the observability layer's cost
// stays a tracked, diffable number.
func BenchmarkDecryptTracerOff(b *testing.B) { benchDecrypt(b, "mlp", 8, nil) }
func BenchmarkDecryptTracerOn(b *testing.B) {
	tr := obs.New(obs.WithSink(io.Discard))
	defer tr.Close()
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.Tracer = tr })
}

func BenchmarkFigure3MLP(b *testing.B)          { benchDecrypt(b, "mlp", 8, nil) }
func BenchmarkFigure3LeNet(b *testing.B)        { benchDecrypt(b, "lenet", 6, nil) }
func BenchmarkFigure3ResNet(b *testing.B)       { benchDecrypt(b, "resnet", 4, nil) }
func BenchmarkFigure3VTransformer(b *testing.B) { benchDecrypt(b, "vtransformer", 4, nil) }

// Key-size scaling (the within-architecture trend of Table 1).
func BenchmarkKeySizeScalingMLP4(b *testing.B)  { benchDecrypt(b, "mlp", 4, nil) }
func BenchmarkKeySizeScalingMLP8(b *testing.B)  { benchDecrypt(b, "mlp", 8, nil) }
func BenchmarkKeySizeScalingMLP12(b *testing.B) { benchDecrypt(b, "mlp", 12, nil) }

// Ablations (DESIGN.md §6).
func BenchmarkAblationDefault(b *testing.B) { benchDecrypt(b, "mlp", 8, nil) }
func BenchmarkAblationNoAlgebraic(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.DisableAlgebraic = true })
}
func BenchmarkAblationJVPOnly(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.UseProductMatrix = false })
}
func BenchmarkAblationSerial(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.Workers = 1 })
}
func BenchmarkAblationUnsliced(b *testing.B) {
	// Re-runs the frozen prefix on every learning minibatch instead of
	// training against the one-shot activation cache; the gap to
	// BenchmarkAblationDefault is the cache's contribution.
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.DisableSlicing = true })
}
func BenchmarkAblationFloat32Training(b *testing.B) {
	// The learning attack's float32 speed tier on the learning-heavy LeNet
	// cell; the gap to BenchmarkAblationFloat64Training is what the tier
	// buys (DESIGN.md §13). Fidelity is asserted at 1 inside benchDecrypt,
	// so a parity break fails the benchmark rather than hiding in a metric.
	benchDecrypt(b, "lenet", 6, func(c *core.Config) { c.TrainPrecision = core.Float32 })
}
func BenchmarkAblationFloat64Training(b *testing.B) {
	benchDecrypt(b, "lenet", 6, func(c *core.Config) { c.TrainPrecision = core.Float64 })
}

// Query-planner trade-offs. BenchmarkAblationNoPlanner is the pre-planner
// scalar probe path: identical queries, every probe its own round-trip —
// the oracle_rounds gap to BenchmarkAblationDefault is what the planner
// saves. The multisection and probe-cache variants are the opt-in points
// on the rounds/queries trade-off curve (DESIGN.md §14).
func BenchmarkAblationNoPlanner(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.DisablePlanner = true })
}
func BenchmarkAblationMultisect4(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.Multisect = 4 })
}
func BenchmarkAblationProbeCache(b *testing.B) {
	benchDecrypt(b, "mlp", 8, func(c *core.Config) { c.ProbeCache = true })
}

// §3.9 variant attacks.
func benchVariant(b *testing.B, scheme hpnn.Scheme, alpha float64) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(13))
		net := models.TinyMLP(rng)
		lm, key := hpnn.Lock(net, hpnn.Config{Scheme: scheme, Alpha: alpha, KeyBits: 6, Rng: rng})
		orc := oracle.New(lm, key)
		res, err := core.Run(lm.WhiteBox(), lm.Spec, orc, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Key.Fidelity(key) != 1 {
			b.Fatal("variant fidelity < 1")
		}
	}
}

func BenchmarkVariantScaling(b *testing.B)       { benchVariant(b, hpnn.Scaling, 0.5) }
func BenchmarkVariantBiasShift(b *testing.B)     { benchVariant(b, hpnn.BiasShift, 0.8) }
func BenchmarkVariantWeightPerturb(b *testing.B) { benchVariant(b, hpnn.WeightPerturb, 1.1) }

// Monolithic baseline on its own.
func BenchmarkMonolithicMLP(b *testing.B) {
	var rep *core.MonolithicReport
	var key hpnn.Key
	for i := 0; i < b.N; i++ {
		white, spec, orc, k := attackSetup("mlp", 8, 42)
		key = k
		cfg := core.DefaultConfig()
		cfg.LearnQueries = 256
		cfg.LearnEpochs = 120
		var err error
		rep, err = core.Monolithic(white, spec, orc, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.Key.Fidelity(key), "fidelity_%")
	b.ReportMetric(float64(rep.Queries), "queries")
}

// --- micro-benchmarks of the attack's hot procedures -------------------

func BenchmarkOracleQuery(b *testing.B) {
	_, _, orc, _ := attackSetup("mlp", 4, 1)
	x := make([]float64, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orc.Query(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardPaperMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := models.PaperMLP(rng)
	x := make([]float64, 784)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkPreActJacobianLeNet(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := models.TinyLeNet(rng)
	x := make([]float64, net.InSize())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.PreActJacobian(x, 1)
	}
}

func BenchmarkLeastSquaresWide(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.New(64, 784)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	e := tensor.Basis(64, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tensor.LeastSquares(a, e)
		if res.RelRes > 1e-6 {
			b.Fatal("unexpected residual")
		}
	}
}

func BenchmarkTrainEpochTinyMLP(b *testing.B) {
	sc := harness.TinyScale()
	sc.KeySizes = map[string][]int{"mlp": {4}}
	sc.TrainEpochs = 1
	sc.BaselineKeys = 1
	sc.MonoEpochs = 1
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTable1(sc, []string{"mlp"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
