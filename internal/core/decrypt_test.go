package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
)

// runDecrypt locks the network, runs the full Algorithm 2 attack, and
// checks 100% fidelity.
func runDecrypt(t *testing.T, net *nn.Network, keyBits int, seed int64, cfg Config) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: keyBits, Rng: rng,
	})
	cfg.Seed = seed
	res, err := Run(white, spec, orc, cfg)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	if fid := res.Key.Fidelity(key); fid != 1 {
		t.Fatalf("fidelity %.3f, recovered %v want %v", fid, res.Key, key)
	}
	if !res.Equivalent {
		t.Fatal("result not marked equivalent")
	}
	if res.Queries <= 0 {
		t.Fatal("no queries recorded")
	}
	return res
}

func TestDecryptTinyMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	res := runDecrypt(t, models.TinyMLP(rng), 10, 11, DefaultConfig())
	// The contractive MLP should be solved almost entirely algebraically.
	alg := 0
	for _, s := range res.Sites {
		alg += s.Algebraic
	}
	if alg < 8 {
		t.Fatalf("only %d/10 bits algebraic on a contractive MLP", alg)
	}
}

func TestDecryptTinyMLPMultipleSeeds(t *testing.T) {
	for seed := int64(20); seed < 23; seed++ {
		rng := rand.New(rand.NewSource(seed))
		runDecrypt(t, models.TinyMLP(rng), 8, seed, DefaultConfig())
	}
}

func TestDecryptExpansiveMLPUsesLearning(t *testing.T) {
	// Expansive first layer: the algebraic path must fail and the
	// learning attack must carry the layer.
	rng := rand.New(rand.NewSource(30))
	net := nn.NewNetwork(
		nn.NewDense(6, 14).InitHe(rng), nn.NewFlip(14), nn.NewReLU(14),
		nn.NewDense(14, 8).InitHe(rng), nn.NewFlip(8), nn.NewReLU(8),
		nn.NewDense(8, 4).InitHe(rng),
	)
	res := runDecrypt(t, net, 8, 31, DefaultConfig())
	learned := 0
	for _, s := range res.Sites {
		learned += s.Learned
	}
	if learned == 0 {
		t.Fatal("expected learning attack on the expansive layer")
	}
}

func TestDecryptTinyLeNet(t *testing.T) {
	if testing.Short() {
		t.Skip("conv attack test")
	}
	rng := rand.New(rand.NewSource(40))
	runDecrypt(t, models.TinyLeNet(rng), 8, 41, DefaultConfig())
}

func TestDecryptTinyResNet(t *testing.T) {
	if testing.Short() {
		t.Skip("residual attack test")
	}
	rng := rand.New(rand.NewSource(50))
	runDecrypt(t, models.TinyResNet(rng), 6, 51, DefaultConfig())
}

func TestDecryptTinyVTransformer(t *testing.T) {
	if testing.Short() {
		t.Skip("attention attack test")
	}
	rng := rand.New(rand.NewSource(60))
	runDecrypt(t, models.TinyVTransformer(rng), 6, 61, DefaultConfig())
}

func TestDecryptRecordsBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	res := runDecrypt(t, models.TinyMLP(rng), 6, 71, DefaultConfig())
	if res.Breakdown.Total() <= 0 {
		t.Fatal("no breakdown recorded")
	}
	if res.Time <= 0 {
		t.Fatal("no time recorded")
	}
	// Per-procedure query accounting: the split must cover almost all
	// queries (only the final equivalence check sits outside a procedure).
	var split int64
	for _, q := range res.QueriesByProc {
		split += q
	}
	if split <= 0 || split > res.Queries {
		t.Fatalf("query split %d vs total %d", split, res.Queries)
	}
}

func TestDecryptAblationNoAlgebraic(t *testing.T) {
	// With the algebraic path disabled, learning + validation/correction
	// must still recover the key (slower path of the ablation bench).
	cfg := DefaultConfig()
	cfg.DisableAlgebraic = true
	rng := rand.New(rand.NewSource(80))
	res := runDecrypt(t, models.TinyMLP(rng), 6, 81, cfg)
	for _, s := range res.Sites {
		if s.Algebraic != 0 {
			t.Fatal("algebraic bits recorded despite ablation")
		}
	}
}

func TestMonolithicOnTinyMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 6, Rng: rng,
	})
	cfg := DefaultConfig()
	cfg.LearnQueries = 400
	cfg.LearnEpochs = 300
	rep, err := Monolithic(white, spec, orc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Key) != 6 {
		t.Fatalf("key length %d", len(rep.Key))
	}
	if rep.Queries != 400 {
		t.Fatalf("queries = %d, want the dataset size", rep.Queries)
	}
	if rep.Epochs == 0 || len(rep.Losses) != rep.Epochs {
		t.Fatal("loss trajectory not recorded")
	}
	// On a tiny network the monolithic attack should do clearly better
	// than chance.
	if fid := rep.Key.Fidelity(key); fid < 0.6 {
		t.Fatalf("monolithic fidelity %.2f below sanity bound", fid)
	}
}

func TestMonolithicMonitorStops(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	net := models.TinyMLP(rng)
	white, spec, orc, _ := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 4, Rng: rng,
	})
	calls := 0
	rep, err := Monolithic(white, spec, orc, DefaultConfig(), func(epoch int, key hpnn.Key) bool {
		calls++
		return epoch < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 || calls != 3 {
		t.Fatalf("monitor stop failed: epochs=%d calls=%d", rep.Epochs, calls)
	}
}
