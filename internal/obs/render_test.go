package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dnnlock/internal/metrics"
)

// buildTrace runs a miniature two-site attack shape through a real tracer
// and parses the result: the shared fixture for the renderer and Check.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	tr := New(WithSink(&buf))
	bd := metrics.NewBreakdown()
	root := tr.Start("attack", String("model", "mlp"))
	root.SetBreakdown(bd)
	for site := 0; site < 2; site++ {
		sp := root.Child("site", Int("site", site))
		for _, proc := range []metrics.Procedure{
			metrics.ProcKeyBitInference,
			metrics.ProcLearningAttack,
			metrics.ProcKeyVectorValidation,
		} {
			ph := sp.Child(string(proc), Proc(proc))
			ph.AddQueries(10)
			ph.AddRounds(4)
			time.Sleep(200 * time.Microsecond)
			ph.End()
		}
		sp.End()
	}
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestCheckAgainstLiveRollup is the round-trip contract behind `dnnlock
// trace -check`: a trace produced by the tracer itself must always verify —
// summary equals span rollup exactly, and the phases cover the root span.
func TestCheckAgainstLiveRollup(t *testing.T) {
	trace := buildTrace(t)
	anchors := trace.Anchors()
	if len(anchors) != 1 {
		t.Fatalf("anchors = %d, want 1", len(anchors))
	}
	times, queries, rounds, _ := trace.RollupFromSpans(anchors[0].Span.ID)
	if got := queries[string(metrics.ProcKeyBitInference)]; got != 20 {
		t.Fatalf("rollup queries = %d, want 20", got)
	}
	if got := rounds[string(metrics.ProcKeyBitInference)]; got != 8 {
		t.Fatalf("rollup rounds = %d, want 8", got)
	}
	for proc, n := range anchors[0].Summary.Rounds {
		if rounds[proc] != n {
			t.Fatalf("summary rounds/%s = %d, span rollup = %d", proc, n, rounds[proc])
		}
	}
	for proc, ns := range anchors[0].Summary.TimesNS {
		if times[proc] != ns {
			t.Fatalf("summary/%s = %d, span rollup = %d", proc, ns, times[proc])
		}
	}
	if err := trace.Check(0.5); err != nil {
		t.Fatalf("Check failed on a live trace: %v", err)
	}
}

// TestCheckCatchesCorruption mutates a valid trace and confirms Check
// rejects each corruption.
func TestCheckCatchesCorruption(t *testing.T) {
	tamper := func(name string, f func(tr *Trace)) {
		trace := buildTrace(t)
		f(trace)
		if err := trace.Check(0.5); err == nil {
			t.Errorf("%s: corruption not caught", name)
		}
	}
	tamper("summary time inflated", func(tr *Trace) {
		tr.Summaries[0].TimesNS[string(metrics.ProcKeyBitInference)] += 12345
	})
	tamper("summary queries wrong", func(tr *Trace) {
		tr.Summaries[0].Queries[string(metrics.ProcLearningAttack)]--
	})
	tamper("summary rounds wrong", func(tr *Trace) {
		tr.Summaries[0].Rounds[string(metrics.ProcLearningAttack)]--
	})
	tamper("rounds missing from summary", func(tr *Trace) {
		delete(tr.Summaries[0].Rounds, string(metrics.ProcKeyVectorValidation))
	})
	tamper("procedure missing from summary", func(tr *Trace) {
		delete(tr.Summaries[0].TimesNS, string(metrics.ProcKeyVectorValidation))
	})
	tamper("no summaries at all", func(tr *Trace) {
		tr.Summaries = nil
	})
	tamper("span duration shrunk below coverage", func(tr *Trace) {
		for i := range tr.Spans {
			if tr.Spans[i].Proc != "" {
				tr.Spans[i].DurNS = 0
			}
		}
		// Summary still claims the original times: exact-match fails.
	})
}

// TestBreakdownTable checks the Figure 3 rendering: procedure order, the
// query column, and that shares sum to ~100%.
func TestBreakdownTable(t *testing.T) {
	trace := buildTrace(t)
	var out bytes.Buffer
	trace.BreakdownTable(&out)
	s := out.String()
	for _, proc := range []string{"key_bit_inference", "learning_attack", "key_vector_validation"} {
		if !strings.Contains(s, proc) {
			t.Fatalf("table missing %s:\n%s", proc, s)
		}
	}
	if !strings.Contains(s, "20 queries") {
		t.Fatalf("table missing query counts:\n%s", s)
	}
	if !strings.Contains(s, "8 rounds") {
		t.Fatalf("table missing round counts:\n%s", s)
	}
	// Figure 3 order: inference before learning before validation.
	if strings.Index(s, "key_bit_inference") > strings.Index(s, "learning_attack") {
		t.Fatalf("procedures out of Figure 3 order:\n%s", s)
	}
}

// TestFlame checks the tree view: sibling aggregation (site ×2), depth
// limiting, and indentation.
func TestFlame(t *testing.T) {
	trace := buildTrace(t)
	var out bytes.Buffer
	trace.Flame(&out, 8)
	s := out.String()
	if !strings.Contains(s, "attack") {
		t.Fatalf("flame missing root:\n%s", s)
	}
	if !strings.Contains(s, "site ×2") {
		t.Fatalf("flame did not aggregate sibling sites:\n%s", s)
	}
	if !strings.Contains(s, "  key_bit_inference") {
		t.Fatalf("flame missing indented phase:\n%s", s)
	}

	out.Reset()
	trace.Flame(&out, 1)
	if strings.Contains(out.String(), "site") {
		t.Fatalf("maxDepth=1 still shows children:\n%s", out.String())
	}
}

// TestProcOrder pins extras-after-canonical ordering in summaries.
func TestProcOrder(t *testing.T) {
	sum := SummaryRecord{
		TimesNS: map[string]int64{
			"zeta_extra":        1,
			"alpha_extra":       1,
			"learning_attack":   1,
			"key_bit_inference": 1,
		},
		Queries: map[string]int64{"error_correction": 4},
	}
	got := procOrder(sum)
	want := []string{"key_bit_inference", "learning_attack", "error_correction", "alpha_extra", "zeta_extra"}
	if len(got) != len(want) {
		t.Fatalf("procOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("procOrder = %v, want %v", got, want)
		}
	}
}
