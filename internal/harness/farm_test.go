package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/farm"
	"dnnlock/internal/oracle"
)

// TestFarmZeroChannelIsPassThrough pins the transport's transparency
// property end to end: a zero-latency, unconstrained, lossless clean-mix
// farm cell must recover exactly the same key with exactly the same query
// and round counts as core.Run on an undecorated oracle with the same seed
// — and consume zero virtual time doing it. This is the farm analogue of
// TestRobustnessCleanCellMatchesDirectRun.
func TestFarmZeroChannelIsPassThrough(t *testing.T) {
	sc := TinyScale()
	p, err := prepare("mlp", 6, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	mix := farm.Mix{Name: "clean", Classes: []farm.Class{{Name: "clean", Weight: 1}}}
	ch := farm.Channel{RTT: 0, Jitter: -1, Bandwidth: -1, ServicePerRow: -1}
	base := oracle.New(p.lm, p.key)
	fleet := farm.BuildFleet(base, mix, 16, ch, sc.Seed+5)
	for _, d := range fleet {
		d.Profile.ServicePerRow = 0 // withDefaults floors it; force free compute
	}
	tr := farm.NewTransport(base, fleet, farm.Config{Seed: sc.Seed + 5})
	cfg := sc.AttackCfg
	cfg.Seed = sc.Seed + 2
	farmed, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, oracle.New(p.lm, p.key), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Key {
		if farmed.Key[i] != direct.Key[i] {
			t.Fatalf("key bit %d differs: farm %v, direct %v", i, farmed.Key[i], direct.Key[i])
		}
	}
	if farmed.Queries != direct.Queries {
		t.Fatalf("farm run issued %d queries, direct run %d", farmed.Queries, direct.Queries)
	}
	if farmed.Rounds != direct.Rounds {
		t.Fatalf("farm run used %d rounds, direct run %d", farmed.Rounds, direct.Rounds)
	}
	if farmed.Key.Fidelity(p.key) != direct.Key.Fidelity(p.key) {
		t.Fatalf("fidelity differs: farm %.4f, direct %.4f",
			farmed.Key.Fidelity(p.key), direct.Key.Fidelity(p.key))
	}
	if tr.SimElapsed() != 0 {
		t.Fatalf("zero channel consumed %v of virtual time", tr.SimElapsed())
	}
	if farmed.SimTime != 0 {
		t.Fatalf("result reports %v simulated time on a free channel", farmed.SimTime)
	}
}

// TestRunFarmSmallFleet runs one nontrivial sweep point end to end on a
// small fleet: full fidelity, a positive virtual-clock horizon, and rounds
// no fewer than the direct run (channel loss only adds rounds).
func TestRunFarmSmallFleet(t *testing.T) {
	sc := TinyScale()
	sw := FarmSweep{
		Devices:    64,
		RTTs:       []time.Duration{5 * time.Millisecond},
		Bandwidths: []float64{1.25e6},
		Losses:     []float64{0.005},
		MixNames:   []string{"mixed"},
	}
	rows, err := RunFarm(sc, "mlp", 6, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Err != nil {
		t.Fatalf("sweep point errored: %v", r.Err)
	}
	if r.Fidelity != 1 {
		t.Fatalf("fidelity %.4f under in-regime degradation, want 1", r.Fidelity)
	}
	if r.SimSeconds <= 0 {
		t.Fatalf("SimSeconds = %v, want > 0 on a 5ms-RTT channel", r.SimSeconds)
	}
	if r.Rounds < r.Queries/64 || r.Rounds <= 0 {
		t.Fatalf("implausible rounds %d for %d queries", r.Rounds, r.Queries)
	}
	if r.Lost < 0 || r.Rounds < r.Lost {
		t.Fatalf("lost %d out of %d rounds", r.Lost, r.Rounds)
	}
}

// TestFarmCSV covers the CSV emitter, including the error column.
func TestFarmCSV(t *testing.T) {
	rows := []FarmRow{
		{Model: "mlp", KeyBits: 8, Mix: "mixed", Devices: 1000,
			RTT: 20 * time.Millisecond, Bandwidth: 1.25e6, Loss: 0.01,
			Fidelity: 1, Queries: 92, Rounds: 40, Lost: 2, Degraded: 0,
			SimSeconds: 1.25, CPUSeconds: 0.4},
	}
	var buf bytes.Buffer
	WriteFarmCSV(rows, &buf)
	got := buf.String()
	if !strings.HasPrefix(got, "model,key_bits,mix,devices,rtt_ms,bandwidth_mbps") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "mlp,8,mixed,1000,20,10,0.01,1.0000,92,40,2,0,1.250,0.40") {
		t.Fatalf("row malformed: %q", got)
	}
}
