// Package metrics implements the paper's four evaluation metrics (§4.2):
// accuracy and fidelity live with their data (train.Evaluate, hpnn.Key
// .Fidelity); this package adds query accounting helpers and the
// per-procedure runtime breakdown behind Figure 3.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Procedure names the four attack procedures of Figure 3.
type Procedure string

// The procedures whose runtime Figure 3 breaks down.
const (
	ProcKeyBitInference     Procedure = "key_bit_inference"
	ProcLearningAttack      Procedure = "learning_attack"
	ProcKeyVectorValidation Procedure = "key_vector_validation"
	ProcErrorCorrection     Procedure = "error_correction"
)

// AllProcedures lists the Figure 3 procedures in presentation order.
var AllProcedures = []Procedure{
	ProcKeyBitInference,
	ProcLearningAttack,
	ProcKeyVectorValidation,
	ProcErrorCorrection,
}

// Breakdown accumulates wall time and oracle queries per procedure. Safe
// for concurrent use: every reader goes through one lock acquisition
// (Snapshot), so shares and totals stay mutually consistent while other
// goroutines — including a tracer rolling up spans — keep accumulating.
type Breakdown struct {
	mu      sync.Mutex
	times   map[Procedure]time.Duration
	queries map[Procedure]int64
	rounds  map[Procedure]int64
	sim     map[Procedure]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		times:   make(map[Procedure]time.Duration),
		queries: make(map[Procedure]int64),
		rounds:  make(map[Procedure]int64),
		sim:     make(map[Procedure]time.Duration),
	}
}

// Add accumulates d under proc.
func (b *Breakdown) Add(proc Procedure, d time.Duration) {
	b.mu.Lock()
	b.times[proc] += d
	b.mu.Unlock()
}

// AddQueries accumulates n oracle queries under proc, the query-complexity
// companion to Add.
func (b *Breakdown) AddQueries(proc Procedure, n int64) {
	b.mu.Lock()
	b.queries[proc] += n
	b.mu.Unlock()
}

// AddRounds accumulates n oracle round-trips under proc. Rounds count
// Query/QueryBatch calls rather than rows, so they are the latency-side
// companion to AddQueries' per-inference accounting.
func (b *Breakdown) AddRounds(proc Procedure, n int64) {
	b.mu.Lock()
	b.rounds[proc] += n
	b.mu.Unlock()
}

// AddSim accumulates d of simulated channel time under proc. Runs against a
// farm-simulated transport (internal/farm) attribute the virtual clock's
// advance to procedures the same way Add attributes real wall time; runs
// against a direct oracle never call this and the sim maps stay empty.
func (b *Breakdown) AddSim(proc Procedure, d time.Duration) {
	b.mu.Lock()
	b.sim[proc] += d
	b.mu.Unlock()
}

// Sim returns the simulated channel time accumulated under proc.
func (b *Breakdown) Sim(proc Procedure) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sim[proc]
}

// SimByProc returns a copy of the per-procedure simulated channel times.
func (b *Breakdown) SimByProc() map[Procedure]time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Procedure]time.Duration, len(b.sim))
	for p, d := range b.sim {
		out[p] = d
	}
	return out
}

// Queries returns the oracle queries accumulated under proc.
func (b *Breakdown) Queries(proc Procedure) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queries[proc]
}

// QueriesByProc returns a copy of the per-procedure query counts.
func (b *Breakdown) QueriesByProc() map[Procedure]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Procedure]int64, len(b.queries))
	for p, n := range b.queries {
		out[p] = n
	}
	return out
}

// Rounds returns the oracle round-trips accumulated under proc.
func (b *Breakdown) Rounds(proc Procedure) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rounds[proc]
}

// RoundsByProc returns a copy of the per-procedure round-trip counts.
func (b *Breakdown) RoundsByProc() map[Procedure]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Procedure]int64, len(b.rounds))
	for p, n := range b.rounds {
		out[p] = n
	}
	return out
}

// Track runs f and accumulates its wall time under proc.
func (b *Breakdown) Track(proc Procedure, f func()) {
	start := time.Now()
	f()
	b.Add(proc, time.Since(start))
}

// Get returns the accumulated time of proc.
func (b *Breakdown) Get(proc Procedure) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.times[proc]
}

// Total returns the sum over all procedures.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.times {
		t += d
	}
	return t
}

// Snapshot is a self-consistent copy of a breakdown: times, query counts,
// round counts, and their totals all observed under one lock acquisition.
type Snapshot struct {
	Times   map[Procedure]time.Duration
	Queries map[Procedure]int64
	Rounds  map[Procedure]int64
	Sim     map[Procedure]time.Duration
	Total   time.Duration
	TotalQ  int64
	TotalR  int64
	TotalS  time.Duration
}

// Snapshot copies the accumulated times, query counts, and round counts
// under one lock acquisition. Every rendering path (String, Percentages,
// the trace summary) derives from a Snapshot, so concurrent Add/AddQueries
// calls — e.g. a tracer rolling spans up while the harness prints a
// progress line — can never produce a torn view (shares above 100, queries
// without times).
func (b *Breakdown) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Snapshot{
		Times:   make(map[Procedure]time.Duration, len(b.times)),
		Queries: make(map[Procedure]int64, len(b.queries)),
		Rounds:  make(map[Procedure]int64, len(b.rounds)),
		Sim:     make(map[Procedure]time.Duration, len(b.sim)),
	}
	for p, d := range b.times {
		s.Times[p] = d
		s.Total += d
	}
	for p, n := range b.queries {
		s.Queries[p] = n
		s.TotalQ += n
	}
	for p, n := range b.rounds {
		s.Rounds[p] = n
		s.TotalR += n
	}
	for p, d := range b.sim {
		s.Sim[p] = d
		s.TotalS += d
	}
	return s
}

// Procedures lists the snapshot's procedures in deterministic render order:
// the Figure 3 procedures first, then any nonstandard ones sorted by name.
func (s Snapshot) Procedures() []Procedure {
	out := append([]Procedure(nil), AllProcedures...)
	var extra []string
	for p := range s.Times {
		if !isStandard(p) {
			extra = append(extra, string(p))
		}
	}
	for p := range s.Queries {
		if !isStandard(p) {
			if _, dup := s.Times[Procedure(p)]; !dup {
				extra = append(extra, string(p))
			}
		}
	}
	for p := range s.Rounds {
		if !isStandard(p) {
			_, inTimes := s.Times[Procedure(p)]
			_, inQueries := s.Queries[Procedure(p)]
			if !inTimes && !inQueries {
				extra = append(extra, string(p))
			}
		}
	}
	sort.Strings(extra)
	for _, p := range extra {
		out = append(out, Procedure(p))
	}
	return out
}

// Percent returns proc's share of the snapshot's total in [0, 100].
func (s Snapshot) Percent(proc Procedure) float64 {
	return share(s.Times[proc], s.Total)
}

// snapshot is the historical internal accessor, kept for the read paths
// that only need times.
func (b *Breakdown) snapshot() (map[Procedure]time.Duration, time.Duration) {
	s := b.Snapshot()
	return s.Times, s.Total
}

func share(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// Percent returns proc's share of the total in [0, 100].
func (b *Breakdown) Percent(proc Procedure) float64 {
	times, total := b.snapshot()
	return share(times[proc], total)
}

// Percentages returns the share per procedure: every Figure 3 procedure
// (zero if never tracked) plus any nonstandard ones that accumulated time.
// All shares come from one snapshot, so they sum to 100 (or all zero).
func (b *Breakdown) Percentages() map[Procedure]float64 {
	times, total := b.snapshot()
	out := make(map[Procedure]float64, len(AllProcedures)+len(times))
	for _, p := range AllProcedures {
		out[p] = 0
	}
	for p, d := range times {
		out[p] = share(d, total)
	}
	return out
}

func isStandard(p Procedure) bool {
	for _, q := range AllProcedures {
		if p == q {
			return true
		}
	}
	return false
}

// String renders a one-line summary: the Figure 3 procedures in
// presentation order, then any nonstandard procedures sorted by name, each
// with its share and accumulated duration. All values come from a single
// Snapshot, so the line is internally consistent even while other
// goroutines keep accumulating.
func (b *Breakdown) String() string {
	s := b.Snapshot()
	var parts []string
	for _, p := range s.Procedures() {
		d := s.Times[p]
		parts = append(parts, fmt.Sprintf("%s %.1f%% (%s)", p, s.Percent(p), d.Round(time.Millisecond)))
	}
	return strings.Join(parts, ", ")
}
