// Package nn implements the deep-network substrate of the reproduction: a
// layer zoo (dense, convolution, pooling, residual blocks, ReLU
// self-attention), batched forward/backward passes for training, and an
// exact forward-mode Jacobian (JVP) used by the attack to compute the
// product weight matrix Â^(i) of the paper's Formulas 2–3 on arbitrary
// topologies.
//
// Data layout: between layers every example is a flat []float64; layers that
// care about spatial or token structure interpret the flat vector
// internally. Batches are tensor.Matrix values with one example per row.
package nn

import (
	"fmt"

	"dnnlock/internal/tensor"
)

// Param is a learnable parameter tensor with its gradient accumulator.
type Param struct {
	Name   string
	W      *tensor.Matrix
	G      *tensor.Matrix
	Frozen bool // frozen parameters are skipped by optimizers
}

// NewParam allocates a parameter and its gradient buffer.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), G: tensor.New(rows, cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Trace records the internal signals of one forward pass that the attack
// consumes: the unsigned pre-activation entering every flip site (the
// paper's z before the (-1)^K factor), the signed value leaving it, and the
// activation pattern m^(i) of every ReLU site.
type Trace struct {
	Pre      [][]float64 // indexed by flip-site ID
	Post     [][]float64 // indexed by flip-site ID
	Patterns [][]bool    // indexed by ReLU-site ID
	ReluIn   [][]float64 // indexed by ReLU-site ID: the rectifier's input
	Out      []float64   // network output
}

// JVPTrace records, for one forward-mode sweep, the Jacobians (w.r.t. the
// network input) of the unsigned pre-activation at each flip site and of
// the input of each ReLU site. The matrix at a site of width d is d × P.
type JVPTrace struct {
	PreJ  []*tensor.Matrix
	ReluJ []*tensor.Matrix
}

// Have reports whether flip site s has been recorded.
func (t *JVPTrace) Have(s int) bool {
	return t != nil && s < len(t.PreJ) && t.PreJ[s] != nil
}

// HaveReLU reports whether ReLU site r has been recorded.
func (t *JVPTrace) HaveReLU(r int) bool {
	return t != nil && r < len(t.ReluJ) && t.ReluJ[r] != nil
}

// Layer is the building block of a Network.
//
// Forward must be pure (safe for concurrent use); it records into tr when tr
// is non-nil. TrainForward/Backward cache activations inside the layer and
// are therefore single-goroutine, which matches how training and the
// learning attack run. JVP propagates the value x together with the
// Jacobian J (d_in × P) of x w.r.t. the network input, recording flip-site
// Jacobians into jtr when non-nil.
type Layer interface {
	Name() string
	InSize() int
	OutSize() int

	Forward(x []float64, tr *Trace) []float64
	ForwardBatch(x *tensor.Matrix) *tensor.Matrix

	TrainForward(x *tensor.Matrix) *tensor.Matrix
	Backward(dy *tensor.Matrix) *tensor.Matrix

	JVP(x []float64, j *tensor.Matrix, jtr *JVPTrace) ([]float64, *tensor.Matrix)

	Params() []*Param
}

// siteRegistrar is implemented by layers that own a recordable site (Flip,
// SoftFlip, ReLU) so Network.build can assign site IDs, including inside
// containers.
type siteRegistrar interface {
	registerSites(nextFlip, nextReLU *int)
}

// container is implemented by layers that hold sub-layers (Residual).
type container interface {
	subLayers() []Layer
}

func checkSize(layer string, want, got int) {
	if want != got {
		panic(fmt.Sprintf("nn: %s expected input size %d, got %d", layer, want, got))
	}
}

// forwardBatchViaSingle implements ForwardBatch for layers whose batch path
// is just a per-row map of the single-example path.
func forwardBatchViaSingle(l Layer, x *tensor.Matrix) *tensor.Matrix {
	// Every row is fully assigned from the layer's Forward result, so a
	// pooled buffer is safe.
	out := tensor.GetMatrix(x.Rows, l.OutSize())
	for i := 0; i < x.Rows; i++ {
		out.SetRow(i, l.Forward(x.Row(i), nil))
	}
	return out
}
