package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dnnlock/internal/metrics"
)

// Rendering and verification of parsed traces, shared by `dnnlock trace`
// and the tests. A trace may hold several rollup anchors (one per Table 1
// cell); every view is computed per anchor.

// Anchor pairs a summary record with its span.
type Anchor struct {
	Span    SpanRecord
	Summary SummaryRecord
}

// Anchors returns the trace's rollup anchors (summary-emitting spans) in
// file order. A summary whose span record is missing (truncated file) is
// skipped.
func (t *Trace) Anchors() []Anchor {
	byID := make(map[uint64]SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.ID] = s
	}
	var out []Anchor
	for _, sum := range t.Summaries {
		if sp, ok := byID[sum.Span]; ok {
			out = append(out, Anchor{Span: sp, Summary: sum})
		}
	}
	return out
}

// children indexes the span tree.
func (t *Trace) children() map[uint64][]SpanRecord {
	out := make(map[uint64][]SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		out[s.Parent] = append(out[s.Parent], s)
	}
	for _, kids := range out {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].StartNS != kids[j].StartNS {
				return kids[i].StartNS < kids[j].StartNS
			}
			return kids[i].ID < kids[j].ID
		})
	}
	return out
}

// subtree lists root and every descendant.
func (t *Trace) subtree(root uint64, kids map[uint64][]SpanRecord) []SpanRecord {
	byID := make(map[uint64]SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.ID] = s
	}
	var out []SpanRecord
	stack := []uint64{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s, ok := byID[id]; ok {
			out = append(out, s)
		}
		for _, c := range kids[id] {
			stack = append(stack, c.ID)
		}
	}
	return out
}

// RollupFromSpans recomputes the per-procedure durations, query counts,
// round counts, and simulated channel times from the proc-labelled spans
// under root — the projection the summary record claims to be. Integer
// sums of the same values the live rollup added, so agreement is exact,
// not approximate.
func (t *Trace) RollupFromSpans(root uint64) (times, queries, rounds, sim map[string]int64) {
	times = map[string]int64{}
	queries = map[string]int64{}
	rounds = map[string]int64{}
	sim = map[string]int64{}
	kids := t.children()
	for _, s := range t.subtree(root, kids) {
		if s.Proc == "" || s.ID == root {
			continue
		}
		times[s.Proc] += s.DurNS
		queries[s.Proc] += s.Queries
		rounds[s.Proc] += s.Rounds
		if s.SimNS != 0 {
			sim[s.Proc] += s.SimNS
		}
	}
	return times, queries, rounds, sim
}

// Check verifies a trace's internal consistency for every anchor:
//
//  1. the summary's per-procedure times and query counts equal the rollup
//     recomputed from the spans, exactly;
//  2. the procedure times sum to no more than the anchor span's duration
//     (procedures are disjoint sequential phases), and
//  3. to no less than minCover of it (the breakdown explains the wall time
//     up to setup/teardown).
//
// This is the `dnnlock trace -check` smoke in scripts/check.sh.
func (t *Trace) Check(minCover float64) error {
	anchors := t.Anchors()
	if len(anchors) == 0 {
		return fmt.Errorf("trace holds no rollup anchors (no summary records)")
	}
	for _, a := range anchors {
		times, queries, rounds, sim := t.RollupFromSpans(a.Span.ID)
		for proc, ns := range a.Summary.TimesNS {
			if times[proc] != ns {
				return fmt.Errorf("anchor %d (%s): summary says %s took %v, span rollup says %v",
					a.Span.ID, a.Span.Name, proc, time.Duration(ns), time.Duration(times[proc]))
			}
		}
		for proc, ns := range times {
			if a.Summary.TimesNS[proc] != ns {
				return fmt.Errorf("anchor %d (%s): span rollup has %s (%v) missing from the summary",
					a.Span.ID, a.Span.Name, proc, time.Duration(ns))
			}
		}
		for proc, n := range a.Summary.Queries {
			if queries[proc] != n {
				return fmt.Errorf("anchor %d (%s): summary says %s used %d queries, span rollup says %d",
					a.Span.ID, a.Span.Name, proc, n, queries[proc])
			}
		}
		for proc, n := range a.Summary.Rounds {
			if rounds[proc] != n {
				return fmt.Errorf("anchor %d (%s): summary says %s used %d rounds, span rollup says %d",
					a.Span.ID, a.Span.Name, proc, n, rounds[proc])
			}
		}
		for proc, n := range rounds {
			if a.Summary.Rounds[proc] != n {
				return fmt.Errorf("anchor %d (%s): span rollup has %s (%d rounds) missing from the summary",
					a.Span.ID, a.Span.Name, proc, n)
			}
		}
		// Simulated channel time (farm runs) reconciles two-way, exactly,
		// the same as rounds.
		for proc, ns := range a.Summary.SimNS {
			if sim[proc] != ns {
				return fmt.Errorf("anchor %d (%s): summary says %s spent %v simulated, span rollup says %v",
					a.Span.ID, a.Span.Name, proc, time.Duration(ns), time.Duration(sim[proc]))
			}
		}
		for proc, ns := range sim {
			if a.Summary.SimNS[proc] != ns {
				return fmt.Errorf("anchor %d (%s): span rollup has %s (%v simulated) missing from the summary",
					a.Span.ID, a.Span.Name, proc, time.Duration(ns))
			}
		}
		var sum int64
		for _, ns := range times {
			sum += ns
		}
		// 1% slack for clock granularity on very short runs.
		if float64(sum) > 1.01*float64(a.Span.DurNS) {
			return fmt.Errorf("anchor %d (%s): procedures sum to %v, more than the span's %v",
				a.Span.ID, a.Span.Name, time.Duration(sum), time.Duration(a.Span.DurNS))
		}
		if float64(sum) < minCover*float64(a.Span.DurNS) {
			return fmt.Errorf("anchor %d (%s): procedures cover only %v of %v (< %.0f%%)",
				a.Span.ID, a.Span.Name, time.Duration(sum), time.Duration(a.Span.DurNS), 100*minCover)
		}
	}
	return nil
}

// BreakdownTable renders each anchor's summary as the Figure 3 table: one
// row per procedure with its share, duration, query count, and round
// count.
func (t *Trace) BreakdownTable(w io.Writer) {
	for _, a := range t.Anchors() {
		fmt.Fprintf(w, "%s (span %d, %s", a.Span.Name, a.Span.ID, time.Duration(a.Span.DurNS).Round(time.Microsecond))
		if attrs := formatAttrs(a.Span.Attrs); attrs != "" {
			fmt.Fprintf(w, ", %s", attrs)
		}
		fmt.Fprintln(w, ")")
		var total int64
		for _, ns := range a.Summary.TimesNS {
			total += ns
		}
		for _, proc := range procOrder(a.Summary) {
			ns := a.Summary.TimesNS[proc]
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(ns) / float64(total)
			}
			fmt.Fprintf(w, "  %-22s %6.1f%%  %12v  %9d queries  %7d rounds",
				proc, pct, time.Duration(ns).Round(time.Microsecond),
				a.Summary.Queries[proc], a.Summary.Rounds[proc])
			if len(a.Summary.SimNS) > 0 {
				fmt.Fprintf(w, "  %12v simulated", time.Duration(a.Summary.SimNS[proc]).Round(time.Microsecond))
			}
			fmt.Fprintln(w)
		}
	}
}

// procOrder lists a summary's procedures Figure-3 first, extras sorted.
func procOrder(s SummaryRecord) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range metrics.AllProcedures {
		if _, ok := s.TimesNS[string(p)]; ok {
			out = append(out, string(p))
			seen[string(p)] = true
			continue
		}
		if _, ok := s.Queries[string(p)]; ok {
			out = append(out, string(p))
			seen[string(p)] = true
		}
	}
	var extra []string
	for p := range s.TimesNS {
		if !seen[p] {
			extra = append(extra, p)
			seen[p] = true
		}
	}
	for p := range s.Queries {
		if !seen[p] {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Flame renders the span tree as an indented, aggregated text summary: at
// each level, sibling spans with the same name merge into one line with
// their count, total duration, share of the parent, and query total. The
// per-layer view of where an attack's time went.
func (t *Trace) Flame(w io.Writer, maxDepth int) {
	kids := t.children()
	for _, root := range kids[0] {
		t.flameNode(w, []SpanRecord{root}, root.DurNS, 0, maxDepth, kids)
	}
}

type flameGroup struct {
	name    string
	count   int
	durNS   int64
	queries int64
	members []SpanRecord
}

func (t *Trace) flameNode(w io.Writer, group []SpanRecord, parentNS int64, depth, maxDepth int, kids map[uint64][]SpanRecord) {
	var g flameGroup
	g.name = group[0].Name
	for _, s := range group {
		g.count++
		g.durNS += s.DurNS
		g.queries += s.Queries
	}
	indent := strings.Repeat("  ", depth)
	pct := 100.0
	if parentNS > 0 {
		pct = 100 * float64(g.durNS) / float64(parentNS)
	}
	line := fmt.Sprintf("%s%s", indent, g.name)
	if g.count > 1 {
		line += fmt.Sprintf(" ×%d", g.count)
	}
	fmt.Fprintf(w, "%-42s %6.1f%%  %12v", line, pct, time.Duration(g.durNS).Round(time.Microsecond))
	if g.queries > 0 {
		fmt.Fprintf(w, "  %9d queries", g.queries)
	}
	if g.count == 1 {
		if attrs := formatAttrs(group[0].Attrs); attrs != "" {
			fmt.Fprintf(w, "  [%s]", attrs)
		}
	}
	fmt.Fprintln(w)
	if depth+1 >= maxDepth {
		return
	}
	// Group the merged members' children by name, preserving first-start
	// order among groups.
	var order []string
	byName := map[string][]SpanRecord{}
	for _, s := range group {
		for _, c := range kids[s.ID] {
			if _, ok := byName[c.Name]; !ok {
				order = append(order, c.Name)
			}
			byName[c.Name] = append(byName[c.Name], c)
		}
	}
	for _, name := range order {
		t.flameNode(w, byName[name], g.durNS, depth+1, maxDepth, kids)
	}
}

// formatAttrs renders a record's attributes deterministically (sorted keys).
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	return strings.Join(parts, " ")
}
