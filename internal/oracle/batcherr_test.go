package oracle

import (
	"errors"
	"strings"
	"testing"

	"dnnlock/internal/rot"
	"dnnlock/internal/tensor"
)

// Mid-batch fault semantics: a failed QueryBatch must say which row hit the
// fault (BatchError.Row — rows before it completed, their results are
// discarded with the pooled buffer), keep the query/round accounting
// consistent, and never leave the caller owning a pooled matrix.

func TestBatchErrorUnwrapsCause(t *testing.T) {
	for _, cause := range []error{ErrTransient, ErrBudgetExhausted} {
		be := &BatchError{Row: 7, Err: cause}
		if !errors.Is(be, cause) {
			t.Fatalf("errors.Is(%v, %v) = false; retry policy would misclassify the fault", be, cause)
		}
	}
	be := &BatchError{Row: 3, Err: ErrTransient}
	if msg := be.Error(); !strings.Contains(msg, "row 3") || strings.Count(msg, "oracle:") != 2 {
		// One prefix from BatchError, one from the wrapped sentinel.
		t.Fatalf("BatchError message = %q", msg)
	}
}

// TestBatchErrorOnDeviceFault drives QueryBatch against a device that fails
// (nothing bound): the error must carry the first failing row, the caller
// must own no buffer, and the round must still be accounted — the
// round-trip happened even though it failed.
func TestBatchErrorOnDeviceFault(t *testing.T) {
	dead := FromDevice(rot.Provision("dead-device", nil, []byte("s")))
	xb := tensor.New(6, 4)
	//lint:ignore poolpair the batch fails by construction: out must be nil, which the next line asserts
	out, err := dead.QueryBatch(xb)
	if out != nil {
		t.Fatal("failed batch returned a buffer; the pooled matrix must be released on the error path")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T (%v), want *BatchError", err, err)
	}
	if be.Row != 0 {
		t.Fatalf("first failing row = %d, want 0 (no row can precede an unbound device's failure)", be.Row)
	}
	if !errors.Is(err, rot.ErrNotBound) {
		t.Fatalf("cause not visible through BatchError: %v", err)
	}
	if dead.Rounds() != 1 {
		t.Fatalf("failed batch recorded %d rounds, want 1", dead.Rounds())
	}
}

// TestBudgetedBatchMidRunExhaustion: a batch that no longer fits the budget
// is rejected whole — zero rows complete, the device sees nothing, and the
// budget stays spent for good (no refund, no partial service).
func TestBudgetedBatchMidRunExhaustion(t *testing.T) {
	inner, _ := newTestOracle(61)
	o := Budgeted(inner, 5)
	mustQuery(t, o, []float64{1, 0, -1, 0.5})
	mustQuery(t, o, []float64{0, 1, 0, -0.5})

	xb := tensor.New(4, 4) // 2 spent + 4 > 5: must be rejected whole
	//lint:ignore poolpair the batch is rejected by construction: y must be nil, which the next line asserts
	y, err := o.QueryBatch(xb)
	if y != nil {
		t.Fatal("rejected batch returned a buffer")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if inner.Queries() != 2 {
		t.Fatalf("rejected batch leaked %d device queries", inner.Queries()-2)
	}
	if inner.Rounds() != 2 {
		t.Fatalf("rejected batch leaked a device round: %d", inner.Rounds())
	}
	// The failed reservation burned the budget: even a batch that would have
	// fit the original remainder is now refused.
	small := tensor.New(1, 4)
	//lint:ignore poolpair exhausted budget rejects the batch: no buffer is returned
	if _, err := o.QueryBatch(small); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-exhaustion batch: err = %v, want ErrBudgetExhausted", err)
	}
}

// TestFlakyBatchDropIsAllOrNothing: a dropped batch is one failed call — no
// rows complete, no queries or rounds reach the device, and the error is
// retryable. A retry of the same batch draws a fresh decision and succeeds.
func TestFlakyBatchDropIsAllOrNothing(t *testing.T) {
	inner, _ := newTestOracle(62)
	o := Flaky(inner, 0.5, 17)
	xb := tensor.New(3, 4)
	var firstErr error
	drops := 0
	for i := 0; i < 64; i++ {
		//lint:ignore poolpair served batches are released in the branch below; dropped batches return nil
		y, err := o.QueryBatch(xb)
		if err == nil {
			tensor.PutMatrix(y)
			continue
		}
		if y != nil {
			t.Fatal("dropped batch returned a buffer")
		}
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("dropped batch err = %v, want ErrTransient", err)
		}
		drops++
		firstErr = err
	}
	if drops == 0 || drops == 64 {
		t.Fatalf("rate-0.5 flaky oracle dropped %d/64 batches", drops)
	}
	_ = firstErr
	// Only served batches consumed queries and rounds: 3 rows and 1 round
	// per success, nothing per drop.
	served := int64(64 - drops)
	if inner.Queries() != 3*served {
		t.Fatalf("device saw %d queries, want %d (3 per served batch)", inner.Queries(), 3*served)
	}
	if inner.Rounds() != served {
		t.Fatalf("device saw %d rounds, want %d", inner.Rounds(), served)
	}
}

// TestRoundsCounting pins the round metric's definition: one per Query and
// one per QueryBatch, regardless of row count, and ResetCounter zeroes it.
func TestRoundsCounting(t *testing.T) {
	o, _ := newTestOracle(63)
	x := []float64{1, 2, 3, 4}
	mustQuery(t, o, x)
	mustQuery(t, o, x)
	yb := mustQueryBatch(t, o, tensor.New(5, 4))
	tensor.PutMatrix(yb)
	if o.Queries() != 7 {
		t.Fatalf("Queries = %d, want 7", o.Queries())
	}
	if o.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3 (two singles + one batch)", o.Rounds())
	}
	o.ResetCounter()
	if o.Rounds() != 0 || o.Queries() != 0 {
		t.Fatal("ResetCounter left counters non-zero")
	}
}
