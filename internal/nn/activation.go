package nn

import (
	"dnnlock/internal/tensor"
)

// ReLU is the element-wise rectifier φ(z) = max(z, 0). A ReLU owns a site ID
// so forward traces can record its activation pattern m^(i) (paper §3.2).
type ReLU struct {
	N      int
	SiteID int

	lastMask []bool // training cache
}

// NewReLU constructs an n-wide rectifier.
func NewReLU(n int) *ReLU { return &ReLU{N: n, SiteID: -1} }

func (r *ReLU) Name() string { return "relu" }

// InSize returns the width.
func (r *ReLU) InSize() int { return r.N }

// OutSize returns the width.
func (r *ReLU) OutSize() int { return r.N }

func (r *ReLU) registerSites(nextFlip, nextReLU *int) {
	r.SiteID = *nextReLU
	*nextReLU++
}

// Forward rectifies x, recording the activation pattern into tr if non-nil.
// The boundary z == 0 is treated as inactive, matching the paper's
// definition (a neuron is active iff z > 0).
func (r *ReLU) Forward(x []float64, tr *Trace) []float64 {
	checkSize("relu", r.N, len(x))
	y := make([]float64, r.N)
	var pat []bool
	if tr != nil {
		pat = make([]bool, r.N)
	}
	for i, v := range x {
		if v > 0 {
			y[i] = v
			if pat != nil {
				pat[i] = true
			}
		}
	}
	if tr != nil {
		tr.Patterns[r.SiteID] = pat
		tr.ReluIn[r.SiteID] = append([]float64(nil), x...)
	}
	return y
}

// ForwardBatch rectifies a batch. Every element of the pooled output is
// assigned, so the buffer's arbitrary contents never show through.
func (r *ReLU) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.GetMatrix(x.Rows, x.Cols)
	od := out.Data
	for i, v := range x.Data {
		if v < 0 {
			od[i] = 0
		} else {
			od[i] = v
		}
	}
	return out
}

// TrainForward rectifies and caches the activity mask. The mask buffer is
// reused across batches once grown to the largest batch seen; every element
// is assigned each call, so stale contents cannot leak.
func (r *ReLU) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	if cap(r.lastMask) < len(out.Data) {
		r.lastMask = make([]bool, len(out.Data))
	}
	r.lastMask = r.lastMask[:len(out.Data)]
	for i, v := range out.Data {
		active := v > 0
		r.lastMask[i] = active
		if !active {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the incoming gradient by the cached activity mask.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if r.lastMask == nil {
		panic("nn: ReLU.Backward before TrainForward")
	}
	dx := tensor.GetMatrix(dy.Rows, dy.Cols)
	copy(dx.Data, dy.Data)
	for i := range dx.Data {
		if !r.lastMask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// JVP gates tangent rows by the activation pattern of the value path and
// records the input Jacobian into jtr.
func (r *ReLU) JVP(x []float64, j *tensor.Matrix, jtr *JVPTrace) ([]float64, *tensor.Matrix) {
	if jtr != nil {
		jtr.ReluJ[r.SiteID] = j.Clone()
	}
	y := make([]float64, r.N)
	jy := j.Clone()
	for i, v := range x {
		if v > 0 {
			y[i] = v
		} else {
			row := jy.Row(i)
			for c := range row {
				row[c] = 0
			}
		}
	}
	return y, jy
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Flatten is a shape-only identity layer kept for architectural clarity
// (between spatial and dense stages).
type Flatten struct{ N int }

// NewFlatten constructs an n-wide identity.
func NewFlatten(n int) *Flatten { return &Flatten{N: n} }

func (f *Flatten) Name() string { return "flatten" }

// InSize returns the width.
func (f *Flatten) InSize() int { return f.N }

// OutSize returns the width.
func (f *Flatten) OutSize() int { return f.N }

// Forward returns x unchanged.
func (f *Flatten) Forward(x []float64, _ *Trace) []float64 {
	checkSize("flatten", f.N, len(x))
	return x
}

// ForwardBatch returns x unchanged.
func (f *Flatten) ForwardBatch(x *tensor.Matrix) *tensor.Matrix { return x }

// TrainForward returns x unchanged.
func (f *Flatten) TrainForward(x *tensor.Matrix) *tensor.Matrix { return x }

// Backward returns dy unchanged.
func (f *Flatten) Backward(dy *tensor.Matrix) *tensor.Matrix { return dy }

// JVP returns x and j unchanged.
func (f *Flatten) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	return x, j
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }
