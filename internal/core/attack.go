package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// Attack carries the shared state of one decryption run. The white-box
// network is the adversary's working copy: recovered key bits are written
// into its flip layers as the attack proceeds layer by layer, so that
// critical points of layer i+1 are computed under the already-decrypted
// prefix (Lemma 1).
type Attack struct {
	white   *nn.Network
	spec    hpnn.LockSpec
	orc     *oracle.Oracle
	cfg     Config
	bd      *metrics.Breakdown
	applier bitApplier

	// Per-bit state aligned with spec.Neurons.
	decided    []bool
	confidence []float64
	origins    []BitOrigin

	mu            sync.Mutex
	queriesByProc map[metrics.Procedure]int64
}

// New prepares an attack against the locked model served by orc. The
// white-box network is cloned; the caller's copy is never mutated.
func New(white *nn.Network, spec hpnn.LockSpec, orc *oracle.Oracle, cfg Config) *Attack {
	applier := applierFor(white, spec)
	a := &Attack{
		white:         applier.clone(white),
		spec:          spec,
		orc:           orc,
		cfg:           cfg.withDefaults(),
		bd:            metrics.NewBreakdown(),
		applier:       applier,
		decided:       make([]bool, spec.NumBits()),
		confidence:    make([]float64, spec.NumBits()),
		origins:       make([]BitOrigin, spec.NumBits()),
		queriesByProc: make(map[metrics.Procedure]int64),
	}
	// Start from the identity hypothesis (all bits 0).
	for i, pn := range spec.Neurons {
		a.applier.apply(a.white, pn, i, false)
	}
	return a
}

// Breakdown exposes the per-procedure timing (Figure 3).
func (a *Attack) Breakdown() *metrics.Breakdown { return a.bd }

// trackProc runs f, accumulating its wall time and oracle queries under
// proc.
func (a *Attack) trackProc(proc metrics.Procedure, f func()) {
	q0 := a.orc.Queries()
	a.bd.Track(proc, f)
	a.mu.Lock()
	a.queriesByProc[proc] += a.orc.Queries() - q0
	a.mu.Unlock()
}

// debugf writes a progress line to the configured debug writer.
func (a *Attack) debugf(format string, args ...any) {
	if a.cfg.Debug != nil {
		fmt.Fprintf(a.cfg.Debug, format, args...)
	}
}

// CurrentKey reads the key hypothesis currently written into the white box.
func (a *Attack) CurrentKey() hpnn.Key {
	key := make(hpnn.Key, a.spec.NumBits())
	for i, pn := range a.spec.Neurons {
		key[i] = a.applier.read(a.white, pn, i)
	}
	return key
}

// setBit writes one decided bit into the white box.
func (a *Attack) setBit(i int, bit bool, conf float64, origin BitOrigin) {
	a.applier.apply(a.white, a.spec.Neurons[i], i, bit)
	a.decided[i] = true
	a.confidence[i] = conf
	a.origins[i] = origin
}

// decidedBits lists every spec bit decided so far. Error correction draws
// its candidate pool from all of them (confidence-ordered), so a mistake
// that slipped through an earlier layer's validation can still be repaired
// when a later layer fails.
func (a *Attack) decidedBits() []int {
	var out []int
	for i, d := range a.decided {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// orderedSites returns the protected flip sites in ascending network order,
// which for our feed-forward topologies is a topological order (§4.1).
func (a *Attack) orderedSites() []int {
	bySite := a.spec.SiteBits()
	sites := make([]int, 0, len(bySite))
	for s := range bySite { //lint:ignore determinism keys are sorted on the next line before use
		sites = append(sites, s)
	}
	sort.Ints(sites)
	return sites
}

// parallelFor runs fn(i) for i in [0, n) on the configured worker count.
// Each invocation receives a deterministic per-index RNG.
func (a *Attack) parallelFor(n int, seedBase int64, fn func(i int, rng *rand.Rand)) {
	workers := a.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, rand.New(rand.NewSource(seedBase+int64(i))))
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore nakedgo deliberate fan-out sized by cfg.Workers; each index writes disjoint state
		go func() {
			defer wg.Done()
			//lint:ignore determinism work-distribution queue: fn(i) is seeded per index and indices write disjoint state, so arrival order cannot affect results
			for i := range next {
				fn(i, rand.New(rand.NewSource(seedBase+int64(i))))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
