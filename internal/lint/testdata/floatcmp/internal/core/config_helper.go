package core

// Valid is outside the allowlisted file, so float equality here is still
// flagged even though the package matches.
func (c Config) Valid() bool {
	return c.Epsilon != 0.5 // want "floating-point != comparison"
}
