package tensor

import "math"

// LstSqResult is the outcome of a least-squares solve.
type LstSqResult struct {
	X        []float64 // solution (minimum-norm when underdetermined)
	Residual float64   // ‖A·x − b‖₂
	RelRes   float64   // Residual / max(‖b‖₂, 1e-300)
}

// LeastSquares solves min ‖A·x − b‖₂ for a general m×n matrix A.
//
// This is the pre-image computation of Algorithm 1 line 7: A is the product
// weight matrix Â^(i) (d_i × P) and b is a standard basis vector e_{i,j}.
// When the network is contractive (P >= d_i, full row rank) the system is
// underdetermined and an exact minimum-norm pre-image exists; when the
// network is expansive at this location, the residual is large and the
// caller treats the bit as ⊥ (§3.4).
func LeastSquares(a *Matrix, b []float64) LstSqResult {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		panic("tensor: LeastSquares length mismatch")
	}
	var x []float64
	if m <= n {
		x = minNormSolve(a, b)
	} else {
		var err error
		x, err = QRDecompose(a).Solve(b)
		if err != nil {
			// Rank-deficient tall system. The Jacobi SVD is accurate but
			// O(n²·m) per sweep, so above a size cutoff fall back to
			// ridge-regularized normal equations instead: the attack only
			// needs a small-residual solution or a confidently large
			// residual, and the tiny ridge perturbs neither.
			if m*n > 100_000 {
				x = ridgeSolve(a, b)
			} else {
				x = SVDecompose(a).PinvSolve(b, 1e-12)
			}
		}
	}
	r := VecSub(MatVec(a, x), b)
	res := Norm2(r)
	nb := Norm2(b)
	if nb < 1e-300 {
		nb = 1e-300
	}
	return LstSqResult{X: x, Residual: res, RelRes: res / nb}
}

// minNormSolve returns the minimum-norm x with A·x = b for a wide matrix
// (m <= n): x = Aᵀ·(A·Aᵀ)⁻¹·b via Cholesky, falling back to the SVD
// pseudo-inverse when A·Aᵀ is not positive definite (rank-deficient A).
func minNormSolve(a *Matrix, b []float64) []float64 {
	m := a.Rows
	// Gram matrix G = A·Aᵀ (m×m, small: m = d_i).
	g := New(m, m)
	for i := 0; i < m; i++ {
		ri := a.Row(i)
		for j := i; j < m; j++ {
			s := Dot(ri, a.Row(j))
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	// Tiny Tikhonov jitter keeps well-posed systems stable without
	// disturbing the solution materially.
	jitter := 1e-12 * (1 + g.MaxAbs())
	for i := 0; i < m; i++ {
		g.Set(i, i, g.At(i, i)+jitter)
	}
	if ch, err := CholeskyDecompose(g); err == nil {
		// The Gram-system solution is a scratch intermediate (only Aᵀ·w
		// escapes), so it lives in a pooled workspace.
		w := GetVec(m)
		defer PutVec(w)
		ch.SolveInto(w, b)
		if allFinite(w) {
			return MatTVec(a, w)
		}
	}
	return SVDecompose(a).PinvSolve(b, 1e-12)
}

// ridgeSolve solves (AᵀA + λI)x = Aᵀb with a small ridge, for tall
// rank-deficient systems too large for the Jacobi SVD.
func ridgeSolve(a *Matrix, b []float64) []float64 {
	n := a.Cols
	g := New(n, n)
	// G = AᵀA accumulated row-by-row (cache friendly).
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			rp := row[p]
			//lint:ignore floatcmp exact-zero skip: a zero coefficient contributes nothing to the Gram row
			if rp == 0 {
				continue
			}
			grow := g.Row(p)
			for q := 0; q < n; q++ {
				grow[q] += rp * row[q]
			}
		}
	}
	lambda := 1e-10 * (1 + g.MaxAbs())
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	atb := MatTVec(a, b)
	if ch, err := CholeskyDecompose(g); err == nil {
		if x := ch.Solve(atb); allFinite(x) {
			return x
		}
	}
	return make([]float64, n) // degenerate: zero solution, caller sees residual ‖b‖
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
