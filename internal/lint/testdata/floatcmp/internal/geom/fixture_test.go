package geom

import "testing"

// Test files are exempt from floatcmp wholesale: the repo's tests assert
// bit-identical readback on purpose, so exact equality here is the
// specification. No want markers in this file.
func TestExactReadbackIsAllowed(t *testing.T) {
	a, b := 0.1+0.2, 0.3
	if a == b {
		t.Log("not bit-equal, as IEEE-754 predicts")
	}
	if float32(a) != float32(b) {
		t.Log("still not bit-equal in single precision")
	}
}
