package core

import (
	"errors"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
)

// Attack carries the shared state of one decryption run. The white-box
// network is the adversary's working copy: recovered key bits are written
// into its flip layers as the attack proceeds layer by layer, so that
// critical points of layer i+1 are computed under the already-decrypted
// prefix (Lemma 1).
type Attack struct {
	white   *nn.Network
	spec    hpnn.LockSpec
	orc     oracle.Interface
	cfg     Config
	bd      *metrics.Breakdown
	applier bitApplier

	// Per-bit state aligned with spec.Neurons.
	decided    []bool
	confidence []float64
	origins    []BitOrigin

	// degraded counts oracle-facing decisions abandoned to ⊥ because of
	// persistent transient failures or split majority votes.
	degraded atomic.Int64

	// Query-planner state (planner.go). coal is the active cross-goroutine
	// coalescer, non-nil only inside a withCoalescer region; memo is the
	// opt-in probe cache (nil unless cfg.ProbeCache); crit accumulates
	// bisection round/probe counts (cfg.critStats points at it so the
	// search code in critical.go, which has no *Attack, can report).
	coal atomic.Pointer[coalescer]
	memo *probeMemo
	crit critStats

	// Observability. tracer and log are never nil (New substitutes the
	// no-op tracer and the env-controlled default logger). root is the
	// attack's root span, the rollup anchor of bd; phase is the span of the
	// procedure currently running — written only by trackProc between
	// phases, read by that phase's worker goroutines (the write
	// happens-before the workers start).
	tracer *obs.Tracer
	root   *obs.Span
	phase  *obs.Span
	log    *slog.Logger
}

// New prepares an attack against the locked model served by orc. The
// white-box network is cloned; the caller's copy is never mutated.
func New(white *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config) *Attack {
	applier := applierFor(white, spec)
	a := &Attack{
		white:      applier.clone(white),
		spec:       spec,
		orc:        orc,
		cfg:        cfg.withDefaults(),
		bd:         metrics.NewBreakdown(),
		applier:    applier,
		decided:    make([]bool, spec.NumBits()),
		confidence: make([]float64, spec.NumBits()),
		origins:    make([]BitOrigin, spec.NumBits()),
		tracer:     tracerFor(cfg),
		log:        loggerFor(cfg),
	}
	if a.cfg.ProbeCache {
		a.memo = newProbeMemo()
	}
	a.cfg.critStats = &a.crit
	// Start from the identity hypothesis (all bits 0).
	for i, pn := range spec.Neurons {
		a.applier.apply(a.white, pn, i, false)
	}
	return a
}

// Breakdown exposes the per-procedure timing (Figure 3).
func (a *Attack) Breakdown() *metrics.Breakdown { return a.bd }

// tracerFor resolves the attack's tracer: the TraceParent's tracer first,
// then the configured one, then the no-op default.
func tracerFor(cfg Config) *obs.Tracer {
	if cfg.TraceParent != nil {
		return cfg.TraceParent.Tracer()
	}
	if cfg.Tracer != nil {
		return cfg.Tracer
	}
	return obs.New()
}

// loggerFor resolves the attack's logger: Logger, then the Debug writer at
// debug level, then the DNNLOCK_LOG-controlled default.
func loggerFor(cfg Config) *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	if cfg.Debug != nil {
		return obs.NewLogger(cfg.Debug, slog.LevelDebug)
	}
	return obs.Default(os.Stderr)
}

// startRoot opens the attack's root span — the rollup anchor of a.bd, so
// every proc-labelled phase span that ends under it populates the Figure 3
// breakdown — parented to cfg.TraceParent when the harness provides one.
func (a *Attack) startRoot(name string, attrs ...obs.Attr) *obs.Span {
	var sp *obs.Span
	if p := a.cfg.TraceParent; p != nil {
		sp = p.Child(name, attrs...)
	} else {
		sp = a.tracer.Start(name, attrs...)
	}
	sp.SetBreakdown(a.bd)
	a.root = sp
	return sp
}

// trackProc runs one procedure phase of Algorithm 2 under a proc-labelled
// child span of parent. The span times the phase and carries its oracle
// usage (phases are sequential, so the counter delta is exact); when it
// ends, both roll up into a.bd through the root anchor. While f runs the
// span is the attack's current phase — the parent of detail spans and the
// destination of degradation events raised on worker goroutines.
func (a *Attack) trackProc(parent *obs.Span, proc metrics.Procedure, f func()) {
	sp := parent.Child(string(proc), obs.Proc(proc))
	q0 := a.orc.Queries()
	r0 := a.orc.Rounds()
	s0 := simElapsed(a.orc)
	a.phase = sp
	f()
	a.phase = nil
	sp.AddQueries(a.orc.Queries() - q0)
	// Rounds are attributed only here, on phase spans: a coalesced round is
	// shared by several detail spans, so per-detail attribution would double
	// count. withCoalescer drains its batches before f returns, keeping the
	// delta exact. Simulated channel time (farm transports) follows the same
	// delta discipline.
	sp.AddRounds(a.orc.Rounds() - r0)
	sp.AddSimNS(int64(simElapsed(a.orc) - s0))
	sp.End()
}

// simElapsed reads the oracle stack's simulated clock when the channel is
// simulated (oracle.Clocked), else 0. Phases take deltas of it the same way
// they take deltas of Rounds; for a direct oracle every delta is 0 and the
// sim accounting stays absent rather than zero-filled.
func simElapsed(orc oracle.Interface) time.Duration {
	if c, ok := orc.(oracle.Clocked); ok {
		return c.SimElapsed()
	}
	return 0
}

// event records a point annotation on the current phase span (or the root
// between phases). Safe from phase worker goroutines.
func (a *Attack) event(name string, attrs ...obs.Attr) {
	if sp := a.phase; sp != nil {
		sp.Event(name, attrs...)
		return
	}
	a.root.Event(name, attrs...)
}

// CurrentKey reads the key hypothesis currently written into the white box.
func (a *Attack) CurrentKey() hpnn.Key {
	key := make(hpnn.Key, a.spec.NumBits())
	for i, pn := range a.spec.Neurons {
		key[i] = a.applier.read(a.white, pn, i)
	}
	return key
}

// setBit writes one decided bit into the white box.
func (a *Attack) setBit(i int, bit bool, conf float64, origin BitOrigin) {
	a.applier.apply(a.white, a.spec.Neurons[i], i, bit)
	a.decided[i] = true
	a.confidence[i] = conf
	a.origins[i] = origin
}

// decidedBits lists every spec bit decided so far. Error correction draws
// its candidate pool from all of them (confidence-ordered), so a mistake
// that slipped through an earlier layer's validation can still be repaired
// when a later layer fails.
func (a *Attack) decidedBits() []int {
	var out []int
	for i, d := range a.decided {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// orderedSites returns the protected flip sites in ascending network order,
// which for our feed-forward topologies is a topological order (§4.1).
func (a *Attack) orderedSites() []int {
	bySite := a.spec.SiteBits()
	sites := make([]int, 0, len(bySite))
	for s := range bySite { //lint:ignore determinism keys are sorted on the next line before use
		sites = append(sites, s)
	}
	sort.Ints(sites)
	return sites
}

// parallelFor runs fn(i) for i in [0, n) on the configured worker count.
// Each invocation receives a deterministic per-index RNG.
func (a *Attack) parallelFor(n int, seedBase int64, fn func(i int, rng *rand.Rand)) {
	workers := a.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, rand.New(rand.NewSource(seedBase+int64(i))))
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore nakedgo deliberate fan-out sized by cfg.Workers; each index writes disjoint state
		go func() {
			defer wg.Done()
			//lint:ignore determinism work-distribution queue: fn(i) is seeded per index and indices write disjoint state, so arrival order cannot affect results
			for i := range next {
				fn(i, rand.New(rand.NewSource(seedBase+int64(i))))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// parallelForErr is parallelFor for bodies that can fail. All indices run
// (workers do not stop early), and the lowest-index error is returned so the
// reported failure does not depend on goroutine scheduling.
func (a *Attack) parallelForErr(n int, seedBase int64, fn func(i int, rng *rand.Rand) error) error {
	errs := make([]error, n)
	a.parallelFor(n, seedBase, func(i int, rng *rand.Rand) {
		errs[i] = fn(i, rng)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fallthroughBottom converts a still-transient failure (retries exhausted)
// into a graceful ⊥ — the bit falls through to the learning attack — and
// passes every other error (budget exhaustion, device faults) up to abort
// the run. The nil return distinguishes the two.
func (a *Attack) fallthroughBottom(err error) error {
	if errors.Is(err, oracle.ErrTransient) {
		a.degraded.Add(1)
		a.event("degraded", obs.String("reason", "transient"))
		a.log.Warn("transient oracle failure: degrading to ⊥", "retries", a.cfg.QueryRetries)
		return nil
	}
	return err
}

// absChange is the minimum oracle-output movement treated as real, padded by
// the declared oracle degradation. Identical to cfg.AbsChange when the
// oracle is clean.
func (a *Attack) absChange() float64 {
	return a.cfg.AbsChange + 2*a.cfg.oracleTol()
}

// calibrated removes the declared noise floor from a background curvature
// measurement: away from any kink the second difference is pure noise, and
// multiplying that noise by the background's 10x safety factor would drown
// the kink signal. Genuine background curvature (attention blocks) far above
// the noise floor passes through. Identity for a clean oracle.
func (a *Attack) calibrated(background float64) float64 {
	b := background - a.cfg.oracleTol()
	if b < 0 {
		return 0
	}
	return b
}
