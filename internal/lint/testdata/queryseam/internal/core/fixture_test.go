package core

import "dnnlock/internal/oracle"

// Test files drive the oracle directly; the seam does not apply.
func rawCallInTest(orc oracle.Interface, x []float64) {
	orc.Query(x)
}
