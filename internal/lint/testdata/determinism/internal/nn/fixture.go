// Package nn hosts the determinism golden fixtures for wall-clock and
// global-rand use inside a kernel package.
package nn

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "wall-clock time.Now in a kernel package"
	return t.Unix()
}

func wallClockSince(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock time.Since in a kernel package"
}

func wallClockSuppressed() time.Time {
	//lint:ignore determinism telemetry only; the value never feeds the numerics
	return time.Now()
}

func globalRand() float64 {
	return rand.Float64() // want "global math/rand.Float64 shares per-process state"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle shares per-process state"
}

func seededRandClean(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Constructing a private seeded generator is the sanctioned pattern, not a
// use of the shared global source.
func seededConstructorClean(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
