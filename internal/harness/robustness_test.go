package harness

import (
	"bytes"
	"strings"
	"testing"

	"dnnlock/internal/core"
	"dnnlock/internal/oracle"
)

// TestRobustnessSweepTiny is the robustness smoke: a full sweep across three
// noise levels and three quantization depths at tiny scale. The clean cell
// (sigma=0, full precision) anchors the sweep to Table 1 — it must recover
// the key exactly.
func TestRobustnessSweepTiny(t *testing.T) {
	sc := TinyScale()
	sigmas := []float64{0, 1e-5, 1e-3}
	quantBits := []int{24, 16, 10}
	var buf bytes.Buffer
	rows, err := RunRobustness(sc, "mlp", 6, sigmas, quantBits, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sigmas)+len(quantBits) {
		t.Fatalf("rows = %d, want %d", len(rows), len(sigmas)+len(quantBits))
	}
	clean := rows[0]
	if clean.Sigma != 0 || clean.QuantBits != 0 {
		t.Fatalf("first row is not the clean cell: %+v", clean)
	}
	if clean.Err != nil {
		t.Fatalf("clean cell errored: %v", clean.Err)
	}
	if clean.Fidelity != 1 {
		t.Fatalf("clean cell fidelity %.3f != 1", clean.Fidelity)
	}
	if clean.Degraded != 0 {
		t.Fatalf("clean cell reported %d degraded decisions", clean.Degraded)
	}
	for _, r := range rows {
		if r.Queries <= 0 && r.Err == nil {
			t.Fatalf("cell (sigma=%g qbits=%d) recorded no queries", r.Sigma, r.QuantBits)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "sigma") || !strings.Contains(out, "mlp") {
		t.Fatalf("streamed output missing header or rows: %q", out)
	}
}

// TestRobustnessCleanCellMatchesDirectRun pins the bit-identity guarantee
// end to end: the sigma=0 / full-precision robustness cell must issue
// exactly the same queries and recover exactly the same key as core.Run on
// an undecorated oracle with the same seed.
func TestRobustnessCleanCellMatchesDirectRun(t *testing.T) {
	sc := TinyScale()
	p, err := prepare("mlp", 6, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := p.runRobustnessCell(0, 0, nil)
	if row.Err != nil {
		t.Fatal(row.Err)
	}

	cfg := sc.AttackCfg
	cfg.Seed = sc.Seed + 2
	res, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, oracle.New(p.lm, p.key), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Queries != res.Queries {
		t.Fatalf("clean cell issued %d queries, direct run %d", row.Queries, res.Queries)
	}
	if row.Fidelity != res.Key.Fidelity(p.key) {
		t.Fatalf("clean cell fidelity %.4f, direct run %.4f", row.Fidelity, res.Key.Fidelity(p.key))
	}
}

// TestRobustnessNoisyCellsDeclareDegradation checks that noisy cells set up
// the attack config the sweep promises: voting on, sigma declared.
func TestRobustnessNoisyCellsDeclareDegradation(t *testing.T) {
	sc := TinyScale()
	p, err := prepare("mlp", 4, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := p.runRobustnessCell(1e-4, 0, nil)
	if row.Err != nil {
		t.Fatalf("mild-noise cell errored: %v", row.Err)
	}
	if row.Fidelity != 1 {
		t.Fatalf("mild-noise cell fidelity %.3f", row.Fidelity)
	}
}

// TestRobustnessCSV covers the CSV emitter, including the error column.
func TestRobustnessCSV(t *testing.T) {
	rows := []RobustnessRow{
		{Model: "mlp", KeyBits: 8, Sigma: 0.01, Fidelity: 0.9, Accuracy: 0.8, Queries: 42, Seconds: 1.5, Degraded: 3},
	}
	var buf bytes.Buffer
	WriteRobustnessCSV(rows, &buf)
	got := buf.String()
	if !strings.HasPrefix(got, "model,key_bits,sigma") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "mlp,8,0.01,0,0.8000,0.9000,1.50,42,3") {
		t.Fatalf("row malformed: %q", got)
	}
}

// TestFormatRobustnessRowError renders a failed cell with its error.
func TestFormatRobustnessRowError(t *testing.T) {
	r := RobustnessRow{Model: "mlp", KeyBits: 8, Sigma: 0.5}
	r.Err = errFake{}
	s := FormatRobustnessRow(r)
	if !strings.Contains(s, "!!") || !strings.Contains(s, "fake failure") {
		t.Fatalf("error not rendered: %q", s)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake failure" }
