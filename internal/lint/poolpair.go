package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the workspace-pool ownership contract (DESIGN.md §8):
// every matrix, vector, or float32 arena obtained from the pool —
// tensor.GetMatrix / GetMatrixZero / GetVec / GetArena32, and the
// pool-recycled results of oracle.QueryBatch, dataset.UniformInputs, and
// nn.Slice.PrefixForward — must be handed back with tensor.PutMatrix /
// PutVec / PutArena32 on every path through the acquiring function, or
// explicitly leave the function: returned to the caller, or stored into a
// longer-lived structure on a line annotated //lint:transfer.
//
// The analysis is per-function and structural rather than a full CFG: a
// deferred Put covers every exit; otherwise each return after the
// acquisition needs a release or transfer that is either lexically on the
// way (in a block enclosing the acquisition) or inside the same branch as
// the return. This catches the real bug class — a pooled buffer leaked on
// an early return or error path — while accepting the repo's conditional
// ownership idioms.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled tensor workspaces must be released or explicitly transferred on all paths",
	Run:  runPoolPair,
}

// getFuncs maps pool-acquiring functions (package path -> names). Method
// names are matched by the defining package of the method object, so
// aliased imports and embedded forwarding resolve correctly.
var getFuncs = map[string]map[string]bool{
	"dnnlock/internal/tensor":  {"GetMatrix": true, "GetMatrixZero": true, "GetVec": true, "GetArena32": true},
	"dnnlock/internal/oracle":  {"QueryBatch": true},
	"dnnlock/internal/dataset": {"UniformInputs": true},
	"dnnlock/internal/nn":      {"PrefixForward": true},
}

var putFuncs = map[string]map[string]bool{
	"dnnlock/internal/tensor": {"PutMatrix": true, "PutVec": true, "PutArena32": true},
}

func runPoolPair(p *Pass) {
	for _, f := range p.Unit.Files {
		for _, region := range functionRegions(f) {
			analyzeRegion(p, region)
		}
	}
}

// functionRegions returns every function body in the file: declarations and
// literals, each analyzed independently.
func functionRegions(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, v.Body)
			}
		case *ast.FuncLit:
			out = append(out, v.Body)
		}
		return true
	})
	return out
}

// acquisition is one tracked pool Get inside a region.
type acquisition struct {
	call *ast.CallExpr
	name string         // display name, e.g. "tensor.GetMatrix"
	obj  types.Object   // variable holding the result; nil if discarded
	objs []types.Object // obj plus aliases
}

// event is a release or escape of a tracked variable.
type event struct {
	pos      token.Pos
	deferred bool
	block    *ast.BlockStmt // innermost block holding the event
}

func analyzeRegion(p *Pass, body *ast.BlockStmt) {
	acqs := collectAcquisitions(p, body)
	if len(acqs) == 0 {
		return
	}
	returns := regionReturns(body)
	for _, acq := range acqs {
		checkAcquisition(p, body, acq, returns)
	}
}

// collectAcquisitions finds pool Gets whose statement lives directly in this
// region (not in a nested function literal, which forms its own region).
func collectAcquisitions(p *Pass, body *ast.BlockStmt) []*acquisition {
	var out []*acquisition
	walkRegion(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, hit := p.getLike(call); hit {
					p.Report(call.Pos(), "result of %s is discarded: the pooled buffer can never be released", name)
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
				// Two-result acquisition: buf, err := oracle.QueryBatch(x).
				// The pooled buffer is the first value; the error rides
				// second and is not tracked. On error the buffer is nil, but
				// the releases are nil-safe, so the ownership contract is the
				// same on every path.
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					if name, hit := p.getLike(call); hit {
						out = p.trackAssigned(out, st, call, name, st.Lhs[0])
					}
				}
				break
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.getLike(call)
				if !hit {
					continue
				}
				if len(st.Lhs) != len(st.Rhs) {
					continue // other tuple shapes hold no pooled buffer
				}
				out = p.trackAssigned(out, st, call, name, st.Lhs[i])
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				call, ok := v.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.getLike(call)
				if !hit || i >= len(st.Names) {
					continue
				}
				if obj := p.Unit.Info.Defs[st.Names[i]]; obj != nil {
					out = append(out, &acquisition{call: call, name: name, obj: obj, objs: []types.Object{obj}})
				}
			}
		}
	})
	return out
}

// trackAssigned records the acquisition held by one assignment target, or
// reports targets that can never release the buffer (blank identifier,
// direct store into a longer-lived structure without //lint:transfer).
func (p *Pass) trackAssigned(out []*acquisition, st *ast.AssignStmt, call *ast.CallExpr, name string, target ast.Expr) []*acquisition {
	switch lhs := target.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			p.Report(call.Pos(), "result of %s is assigned to _: the pooled buffer can never be released", name)
			return out
		}
		obj := p.Unit.Info.Defs[lhs]
		if obj == nil {
			obj = p.Unit.Info.Uses[lhs]
		}
		if obj != nil {
			out = append(out, &acquisition{call: call, name: name, obj: obj, objs: []types.Object{obj}})
		}
	default:
		// Stored straight into a field/element: an ownership handoff, which
		// must be declared.
		if !p.TransferAnnotated(st.Pos()) {
			p.Report(call.Pos(), "result of %s is stored outside the function without //lint:transfer", name)
		}
	}
	return out
}

// checkAcquisition gathers the variable's release/escape events across the
// whole region (nested literals included — deferred closures commonly do
// the releasing) and verifies every exit after the acquisition is covered.
func checkAcquisition(p *Pass, body *ast.BlockStmt, acq *acquisition, returns []*ast.ReturnStmt) {
	aliasClosure(p, body, acq)
	var releases, escapes []event
	deferDepth := 0
	var blocks []*ast.BlockStmt
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			deferDepth++
			visit(v.Call)
			deferDepth--
			return
		case *ast.BlockStmt:
			blocks = append(blocks, v)
			for _, st := range v.List {
				visit(st)
			}
			blocks = blocks[:len(blocks)-1]
			return
		case *ast.CallExpr:
			if p.putLike(v) && p.mentions(v.Args, acq.objs) {
				releases = append(releases, event{pos: v.Pos(), deferred: deferDepth > 0, block: innermost(blocks, body)})
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if p.escapingExpr(res, acq.objs) {
					escapes = append(escapes, event{pos: v.Pos(), block: innermost(blocks, body)})
					break
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !p.isTracked(id, acq.objs) || i >= len(v.Lhs) {
					continue
				}
				if !p.localLHS(v.Lhs[i], body) {
					if p.TransferAnnotated(v.Pos()) {
						escapes = append(escapes, event{pos: v.Pos(), block: innermost(blocks, body)})
					} else {
						p.Report(v.Pos(), "%s obtained from %s is stored outside the function without //lint:transfer",
							exprString(v.Rhs[i]), acq.name)
						escapes = append(escapes, event{pos: v.Pos(), block: innermost(blocks, body)})
					}
				}
			}
		case *ast.SendStmt:
			if p.escapingExpr(v.Value, acq.objs) {
				escapes = append(escapes, event{pos: v.Pos(), block: innermost(blocks, body)})
			}
		}
		walkChildren(n, visit)
	}
	visit(body)

	for _, r := range releases {
		if r.deferred {
			return // a deferred Put covers every exit
		}
	}
	events := append(releases, escapes...)
	if len(events) == 0 {
		p.Report(acq.call.Pos(), "result of %s is never released: missing tensor.PutMatrix/PutVec/PutArena32, return, or //lint:transfer", acq.name)
		return
	}
	getEnd := acq.call.End()
	for _, ret := range returns {
		if ret.Pos() <= getEnd {
			continue
		}
		if !covered(events, getEnd, ret.Pos(), ret.End()) {
			p.Report(ret.Pos(), "%s acquired at line %d may leak on this return path: no release or transfer before it",
				acq.name, p.Fset.Position(acq.call.Pos()).Line)
		}
	}
	if fallsOffEnd(body) && !covered(events, getEnd, body.End(), body.End()) {
		p.Report(acq.call.Pos(), "result of %s is not released on the fall-through path to the end of the function", acq.name)
	}
}

// covered reports whether some event releases/escapes the value on the way
// to an exit at [exitPos, exitEnd]: the event must be after the
// acquisition, not after the exit, and either on the unconditional spine
// (its block encloses the acquisition) or inside the same branch as the
// exit (its block encloses the exit).
func covered(events []event, getEnd, exitPos, exitEnd token.Pos) bool {
	for _, e := range events {
		if e.pos <= getEnd || e.pos > exitEnd {
			continue
		}
		if e.block == nil || (e.block.Pos() <= getEnd && getEnd <= e.block.End()) ||
			(e.block.Pos() <= exitPos && exitPos <= e.block.End()) {
			return true
		}
	}
	return false
}

// aliasClosure adds plain local aliases (w := v) of the tracked variable so
// releases through the alias count.
func aliasClosure(p *Pass, body *ast.BlockStmt, acq *acquisition) {
	for changed := true; changed; {
		changed = false
		walkRegionAll(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i, rhs := range as.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !p.isTracked(id, acq.objs) {
					continue
				}
				lid, ok := as.Lhs[i].(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				obj := p.Unit.Info.Defs[lid]
				if obj == nil {
					obj = p.Unit.Info.Uses[lid]
				}
				if obj == nil {
					continue
				}
				found := false
				for _, o := range acq.objs {
					if o == obj {
						found = true
						break
					}
				}
				if !found {
					acq.objs = append(acq.objs, obj)
					changed = true
				}
			}
		})
	}
}

// getLike reports whether call is a pool acquisition, returning its display
// name.
func (p *Pass) getLike(call *ast.CallExpr) (string, bool) {
	return p.callIn(call, getFuncs)
}

func (p *Pass) putLike(call *ast.CallExpr) bool {
	_, ok := p.callIn(call, putFuncs)
	return ok
}

func (p *Pass) callIn(call *ast.CallExpr, set map[string]map[string]bool) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := p.Unit.Info.Uses[id]
	if !ok {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	names, ok := set[fn.Pkg().Path()]
	if !ok || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// isTracked reports whether the identifier resolves to one of the tracked
// objects.
func (p *Pass) isTracked(id *ast.Ident, objs []types.Object) bool {
	obj := p.Unit.Info.Uses[id]
	if obj == nil {
		obj = p.Unit.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	for _, o := range objs {
		if o == obj {
			return true
		}
	}
	return false
}

// mentions reports whether any argument expression references a tracked
// object (including inside nested expressions, e.g. a slice or call).
func (p *Pass) mentions(args []ast.Expr, objs []types.Object) bool {
	found := false
	for _, e := range args {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.isTracked(id, objs) {
				found = true
			}
			return !found
		})
	}
	return found
}

// escapingExpr reports whether the expression hands the tracked *buffer*
// itself onward: the bare identifier, or the identifier wrapped in a
// composite literal, key-value pair, or address-of. Derived values
// (m.Rows, v[i], len(v), wrap(m)) do not transfer ownership — a function
// returning those still owes the pool a Put (or an explicit annotation).
func (p *Pass) escapingExpr(e ast.Expr, objs []types.Object) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return p.escapingExpr(v.X, objs)
	case *ast.Ident:
		return p.isTracked(v, objs)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			if p.escapingExpr(elt, objs) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return p.escapingExpr(v.Value, objs)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return p.escapingExpr(v.X, objs)
		}
	}
	return false
}

// localLHS reports whether the assignment target is a plain local variable
// of this region. Field selectors, index expressions, dereferences, and
// identifiers captured from an enclosing function all make the value
// outlive the region.
func (p *Pass) localLHS(lhs ast.Expr, body *ast.BlockStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Unit.Info.Defs[id]
	if obj == nil {
		obj = p.Unit.Info.Uses[id]
	}
	if obj == nil {
		return true // unresolved: assume local rather than guess an escape
	}
	return body.Pos() <= obj.Pos() && obj.Pos() <= body.End()
}

// regionReturns collects the return statements belonging to this region
// (returns inside nested function literals exit the literal, not us).
func regionReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkRegion(body, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, r)
		}
	})
	return out
}

// fallsOffEnd conservatively reports whether control can reach the closing
// brace of the body: true unless the final statement is a return or a
// panic call.
func fallsOffEnd(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	case *ast.ForStmt:
		if last.Cond == nil {
			return false // for {} without condition only exits via return/panic
		}
	}
	return true
}

// walkRegion visits every node in the region, skipping nested function
// literals.
func walkRegion(body *ast.BlockStmt, fn func(ast.Node)) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		fn(n)
		walkChildren(n, visit)
	}
	for _, st := range body.List {
		visit(st)
	}
}

// walkRegionAll is walkRegion including nested function literals.
func walkRegionAll(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil {
			fn(n)
		}
		return true
	})
}

// walkChildren invokes visit on each direct child node of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// innermost returns the innermost block currently on the walk stack, or the
// region body when at the top level.
func innermost(blocks []*ast.BlockStmt, body *ast.BlockStmt) *ast.BlockStmt {
	if len(blocks) == 0 {
		return body
	}
	return blocks[len(blocks)-1]
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "pooled value"
}
