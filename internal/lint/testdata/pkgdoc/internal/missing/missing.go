package missing // want "package missing has no package comment"

const Placeholder = 1
