package worker

// Test files may spawn goroutines freely (concurrency tests need them); no
// // want markers here.

func fanOutInTest(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
