// Package service implements dnnlockd, the attack-service daemon
// (DESIGN.md §17): a stdlib-only net/http JSON API that accepts attack
// jobs (model + lock config + oracle/farm spec), executes them on a
// sharded worker pool with bounded per-shard queues, and exposes each
// job's status, live progress, serialized checkpoint, and span trace.
//
// Backpressure is explicit: a full shard queue rejects the submit with
// 429 and a Retry-After header; a draining daemon rejects with 503.
// Long-running decrypt jobs are suspendable: the runner wires
// core.Config.OnCheckpoint, so at every site boundary the job persists a
// versioned core.Checkpoint and honors suspend/cancel/drain requests.
// Graceful shutdown (Server.Drain) stops intake, asks running jobs to
// suspend at their next boundary, requeues still-queued jobs for the next
// start, and waits for the workers to exit; with a -state directory the
// whole job table survives the restart.
package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/obs"
)

// Config sizes a daemon.
type Config struct {
	// Workers is the shard count of the worker pool (one worker goroutine
	// per shard). Defaults to 2.
	Workers int
	// QueueDepth bounds each shard's queue. Defaults to 8. A submit whose
	// target shard is full is rejected with 429.
	QueueDepth int
	// StateDir, when non-empty, persists every job (spec, state, progress,
	// latest checkpoint, result) as one JSON file per job, reloaded on the
	// next start. Empty means in-memory only.
	StateDir string
	// Logger receives the daemon's structured logs. Nil selects
	// obs.Default(os.Stderr), controlled by DNNLOCK_LOG.
	Logger *slog.Logger
}

// Server is the dnnlockd daemon: the job table, the worker pool, and the
// HTTP API over both.
type Server struct {
	cfg Config
	log *slog.Logger

	// mu guards the job table and the draining flag. Submission paths hold
	// the read lock across their queue send, and Drain flips draining
	// under the write lock before closing the queues, so a send can never
	// race a close.
	mu       sync.RWMutex
	draining bool
	jobs     map[string]*Job
	order    []string
	nextID   int
	// cells memoizes trained (model, bits, scale, seed) cells across jobs;
	// see Server.cellFor.
	cells map[cellKey]*cellEntry

	pool *pool

	// runJob executes one job; tests substitute a fake to drive the
	// pool/backpressure/drain machinery without real attacks.
	runJob func(shard int, j *Job)
	// ckptHook, when non-nil, observes every checkpoint boundary before the
	// runner decides whether to continue; tests use it to land suspend
	// requests at an exact boundary (real jobs at tiny scale finish in
	// milliseconds, far too fast to race an HTTP suspend against).
	ckptHook func(j *Job)

	started time.Time

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// New builds a daemon, reloads persisted jobs from cfg.StateDir, and starts
// the worker pool. Jobs that were queued or running when the previous
// process exited are re-enqueued (resuming from their latest checkpoint
// when one was persisted); suspended jobs stay suspended until an explicit
// POST /jobs/{id}/resume.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Default(os.Stderr)
	}
	s := &Server{
		cfg:     cfg,
		log:     log,
		jobs:    make(map[string]*Job),
		started: time.Now(),
	}
	s.runJob = s.executeJob
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, func(shard int, j *Job) { s.runJob(shard, j) })
	if err := s.loadState(); err != nil {
		return nil, err
	}
	s.requeueLoaded()
	return s, nil
}

// isDraining reads the drain flag.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// shardFor pins a (job, attempt) to a shard: FNV-1a over the id plus the
// attempt number, so a resumed job may land on a different shard than its
// first attempt did (resharding across workers).
func (s *Server) shardFor(id string, attempt int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	return int(h.Sum32() % uint32(len(s.pool.shards)))
}

// Drain performs graceful shutdown: stop intake (new submits get 503), ask
// every running job to suspend at its next checkpoint boundary (monolithic
// jobs early-stop their fit), requeue still-queued jobs for the next
// start, close the queues, and wait for the workers — at most timeout
// (0 = wait forever). Returns false if the timeout expired with workers
// still busy.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return true
	}
	s.draining = true
	running := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		running = append(running, j)
	}
	s.pool.close() // safe: submits hold the read lock across their send
	s.mu.Unlock()

	for _, j := range running {
		j.stop.CompareAndSwap(stopNone, stopSuspend)
	}
	done := make(chan struct{})
	//lint:ignore nakedgo shutdown helper; exits when pool.wait returns, which Drain blocks on (or abandons at timeout)
	go func() {
		s.pool.wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		s.log.Warn("drain timeout expired with workers still busy", "timeout", timeout)
		return false
	}
}

// Handler returns the daemon's HTTP API. Every endpoint here is documented
// in OPERATIONS.md; keep the two in lockstep.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the API's uniform error shape.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /jobs: validate the spec, register the job, and
// enqueue it on its shard. 400 on a bad spec, 503 while draining, 429 with
// Retry-After when the shard queue is full (backpressure — nothing is
// registered in that case, so a retry is a clean resubmit).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	s.nextID++
	j := &Job{
		id:        fmt.Sprintf("j%06d", s.nextID),
		spec:      spec,
		state:     StateQueued,
		attempt:   1,
		submitted: time.Now(),
		buf:       &lockedBuffer{},
	}
	j.tracer = obs.New(obs.WithSink(j.buf))
	j.shard = s.shardFor(j.id, j.attempt)
	if !s.pool.submit(j, j.shard) {
		s.nextID-- // nothing registered; the id is reusable
		s.mu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "shard %d queue is full", j.shard)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	s.submitted.Add(1)
	s.persist(j)
	s.log.Info("job submitted", "id", j.id, "kind", spec.Kind, "model", spec.Model,
		"bits", spec.KeyBits, "shard", j.shard)
	writeJSON(w, http.StatusAccepted, j.view())
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[id]
}

// handleList is GET /jobs: every job in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleGet is GET /jobs/{id}: one job's status, progress, and result.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleTrace is GET /jobs/{id}/trace: the job's span trace as JSONL, one
// segment (root span "job") per run attempt.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fmt.Fprint(w, j.buf.snapshot())
}

// handleCheckpoint is GET /jobs/{id}/checkpoint: the latest serialized
// core.Checkpoint (404 until the job crossed its first site boundary).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	raw := j.checkpointBytes()
	if len(raw) == 0 {
		writeError(w, http.StatusNotFound, "job has no checkpoint yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleSuspend is POST /jobs/{id}/suspend: ask a queued or running
// decrypt job to stop at its next site boundary. 409 for monolithic jobs
// (no boundaries to stop at) and for jobs already finished.
func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.spec.Kind != KindDecrypt {
		writeError(w, http.StatusConflict, "%s jobs have no site boundaries to suspend at", j.spec.Kind)
		return
	}
	switch st := j.currentState(); st {
	case StateQueued, StateRunning:
		j.stop.CompareAndSwap(stopNone, stopSuspend)
		writeJSON(w, http.StatusAccepted, j.view())
	default:
		writeError(w, http.StatusConflict, "job is %s", st)
	}
}

// handleResume is POST /jobs/{id}/resume: requeue a suspended job as a new
// attempt, rehashed onto a possibly different shard. 409 unless suspended;
// 429 with Retry-After when the new shard's queue is full (the job stays
// suspended, resume again later).
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	j.mu.Lock()
	if j.state != StateSuspended {
		st := j.state
		j.mu.Unlock()
		s.mu.RUnlock()
		writeError(w, http.StatusConflict, "job is %s, only suspended jobs resume", st)
		return
	}
	j.attempt++
	j.shard = s.shardFor(j.id, j.attempt)
	j.state = StateQueued
	j.stop.Store(stopNone)
	shard := j.shard
	j.mu.Unlock()
	if !s.pool.submit(j, shard) {
		j.mu.Lock()
		j.attempt--
		j.state = StateSuspended
		j.mu.Unlock()
		s.mu.RUnlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "shard %d queue is full", shard)
		return
	}
	s.mu.RUnlock()
	s.persist(j)
	s.log.Info("job resumed", "id", j.id, "attempt", j.view().Attempt, "shard", shard)
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleCancel is DELETE /jobs/{id}: cancel a queued/running/suspended job
// (running ones stop at their next boundary or fit epoch), or delete the
// record of a finished one.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobByID(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.currentState() {
	case StateQueued, StateRunning:
		j.stop.Store(stopCancel)
		writeJSON(w, http.StatusAccepted, j.view())
	case StateSuspended:
		j.setState(StateCancelled)
		s.persist(j)
		writeJSON(w, http.StatusOK, j.view())
	default:
		s.mu.Lock()
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		s.unpersist(id)
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	}
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// handleMetrics is GET /metrics: job-table counters, queue occupancy, and
// a runtime/metrics snapshot (the same counters obs spans annotate).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	byState := make(map[State]int)
	s.mu.RLock()
	for _, j := range s.jobs {
		byState[j.currentState()]++
	}
	s.mu.RUnlock()
	lengths, capacity := s.pool.queueStats()
	queued := 0
	for _, n := range lengths {
		queued += n
	}
	rs := obs.ReadRuntimeStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": map[string]any{
			"by_state":  byState,
			"submitted": s.submitted.Load(),
			"rejected":  s.rejected.Load(),
			"completed": s.completed.Load(),
			"failed":    s.failed.Load(),
		},
		"queue": map[string]any{
			"shards":         len(lengths),
			"depth_per":      capacity,
			"queued":         queued,
			"shard_lengths":  lengths,
			"draining":       s.isDraining(),
			"uptime_seconds": time.Since(s.started).Seconds(),
		},
		"runtime": map[string]any{
			"goroutines":  rs.Goroutines,
			"heap_bytes":  rs.HeapBytes,
			"gc_cycles":   rs.GCCycles,
			"alloc_bytes": rs.CumAllocBytes,
		},
	})
}

// persistedJob is the state-dir file format: the public view plus the raw
// checkpoint. Traces and live oracle state are deliberately not persisted;
// see the Checkpoint resumability invariants.
type persistedJob struct {
	View       JobView         `json:"view"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// persist writes the job's durable state to the state dir (atomic rename).
func (s *Server) persist(j *Job) {
	if s.cfg.StateDir == "" {
		return
	}
	pj := persistedJob{View: j.view(), Checkpoint: j.checkpointBytes()}
	raw, err := json.MarshalIndent(pj, "", "  ")
	if err != nil {
		s.log.Error("persist marshal failed", "id", pj.View.ID, "err", err)
		return
	}
	path := filepath.Join(s.cfg.StateDir, pj.View.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err == nil {
		err = os.Rename(tmp, path)
		if err != nil {
			s.log.Error("persist rename failed", "id", pj.View.ID, "err", err)
		}
	} else {
		s.log.Error("persist write failed", "id", pj.View.ID, "err", err)
	}
}

// unpersist removes a deleted job's state file.
func (s *Server) unpersist(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	_ = os.Remove(filepath.Join(s.cfg.StateDir, id+".json"))
}

// loadState reloads the job table from the state dir.
func (s *Server) loadState() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("service: state dir: %w", err)
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("service: reading state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(s.cfg.StateDir, name))
		if err != nil {
			s.log.Warn("skipping unreadable state file", "file", name, "err", err)
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(raw, &pj); err != nil {
			s.log.Warn("skipping corrupt state file", "file", name, "err", err)
			continue
		}
		j := &Job{
			id:        pj.View.ID,
			spec:      pj.View.Spec,
			state:     pj.View.State,
			shard:     pj.View.Shard,
			attempt:   pj.View.Attempt,
			submitted: pj.View.Submitted,
			progress:  pj.View.Progress,
			ckpt:      pj.Checkpoint,
			errMsg:    pj.View.Error,
			buf:       &lockedBuffer{},
		}
		if pj.View.Started != nil {
			j.started = *pj.View.Started
		}
		if pj.View.Finished != nil {
			j.finished = *pj.View.Finished
		}
		if pj.View.Result != nil {
			r := *pj.View.Result
			j.result = &r
		}
		j.tracer = obs.New(obs.WithSink(j.buf))
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if n, err := strconv.Atoi(j.id[1:]); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	return nil
}

// requeueLoaded re-enqueues reloaded jobs that were interrupted mid-flight:
// queued jobs restart, running jobs resume from their persisted checkpoint
// (or restart when none was reached). Suspended jobs wait for an explicit
// resume. A shard queue too small to hold the backlog leaves the overflow
// suspended with an explanatory error.
func (s *Server) requeueLoaded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state != StateQueued && j.state != StateRunning {
			continue
		}
		j.state = StateQueued
		j.attempt++
		j.shard = s.shardFor(j.id, j.attempt)
		if !s.pool.submit(j, j.shard) {
			j.state = StateSuspended
			j.errMsg = "requeue after restart overflowed the shard queue; resume manually"
			continue
		}
		s.log.Info("job requeued after restart", "id", j.id, "attempt", j.attempt,
			"resumable", len(j.ckpt) > 0)
	}
}
