package tensor

import "sync"

// Workspace recycling for per-step scratch storage. The training and attack
// hot loops need short-lived matrices (attention intermediates, convolution
// patch buffers, gradient scratch); allocating them fresh every step makes
// the garbage collector a first-order cost (it was ~half the decryption
// attack's profile before pooling). GetMatrix/PutMatrix hand the same
// buffers back and forth through a sync.Pool instead.
//
// Contract: Get* contents are arbitrary — callers must fully overwrite
// (every Into kernel does). After Put* the caller must not retain the value
// or its backing storage.

var matrixPool sync.Pool

// GetMatrix returns a rows×cols workspace matrix with arbitrary contents.
func GetMatrix(rows, cols int) *Matrix {
	need := rows * cols
	if v := matrixPool.Get(); v != nil {
		m := v.(*Matrix)
		if cap(m.Data) >= need {
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:need]
			return m
		}
		// Too small for this request: drop it and allocate fresh.
	}
	return New(rows, cols)
}

// GetMatrixZero is GetMatrix with the contents cleared.
func GetMatrixZero(rows, cols int) *Matrix {
	m := GetMatrix(rows, cols)
	zeroVec(m.Data)
	return m
}

// PutMatrix returns workspace matrices to the pool. nil entries are
// ignored so deferred releases stay unconditional.
func PutMatrix(ms ...*Matrix) {
	for _, m := range ms {
		if m != nil && cap(m.Data) > 0 {
			matrixPool.Put(m)
		}
	}
}

var vecPool sync.Pool

// GetVec returns a length-n workspace slice with arbitrary contents.
func GetVec(n int) []float64 {
	if p, _ := vecPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

// PutVec returns a workspace slice to the pool.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	vecPool.Put(&v)
}
