package geometry

import (
	"math/rand"
	"testing"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

func TestProductMatrixAtReLUMatchesJacobian(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f1, f2 := nn.NewFlip(6), nn.NewFlip(4)
	f1.SetBit(1, true)
	net := nn.NewNetwork(
		nn.NewDense(3, 6).InitHe(rng), f1, nn.NewReLU(6),
		nn.NewDense(6, 4).InitHe(rng), f2, nn.NewReLU(4),
		nn.NewDense(4, 2).InitHe(rng),
	)
	x := randIn(rng, 3)
	tr := net.ForwardTrace(x)
	for site := 0; site < 2; site++ {
		m, err := ProductMatrixAtReLU(net, tr, site)
		if err != nil {
			t.Fatal(err)
		}
		u, j := net.ReluInJacobian(x, site)
		if !tensor.Equal(m.A, j, 1e-9) {
			t.Fatalf("relu site %d product matrix != Jacobian", site)
		}
		got := m.Apply(x)
		if tensor.NormInf(tensor.VecSub(got, u)) > 1e-9 {
			t.Fatalf("relu site %d affine map value mismatch", site)
		}
	}
}

func TestProductMatrixAtReLUReflectsFlipSigns(t *testing.T) {
	// The ReLU-input map must include the flip's sign (unlike the
	// pre-activation map, which stops before it).
	rng := rand.New(rand.NewSource(62))
	f := nn.NewFlip(4)
	net := nn.NewNetwork(nn.NewDense(3, 4).InitHe(rng), f, nn.NewReLU(4), nn.NewDense(4, 2).InitHe(rng))
	x := randIn(rng, 3)
	tr := net.ForwardTrace(x)
	m0, err := ProductMatrixAtReLU(net, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.SetBit(2, true)
	tr2 := net.ForwardTrace(x)
	m1, err := ProductMatrixAtReLU(net, tr2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if m1.A.At(2, c) != -m0.A.At(2, c) {
			t.Fatal("flip sign not reflected in the ReLU-input map")
		}
		if m1.A.At(0, c) != m0.A.At(0, c) {
			t.Fatal("unflipped row changed")
		}
	}
}
