// Package multi shows that one documented file covers the whole package:
// the undocumented sibling below draws no finding.
package multi
