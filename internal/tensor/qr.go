package tensor

import "math"

// QR holds a Householder QR factorization A = Q·R for an m×n matrix with
// m >= n. Q is m×m orthogonal (stored implicitly as reflectors), R is m×n
// upper triangular.
type QR struct {
	qr    *Matrix   // reflectors below diagonal, R on/above
	rdiag []float64 // diagonal of R
	m, n  int
}

// QRDecompose computes the Householder QR factorization of a (m >= n required).
//
// The reflector column of each step is staged into a contiguous buffer with
// ColInto and the trailing update runs as two row sweeps, so the inner loops
// stream cache lines instead of striding down columns. The floating-point
// operation sequence per element is unchanged from the textbook column form.
func QRDecompose(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("tensor: QRDecompose requires rows >= cols; factor the transpose instead")
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	ck := GetVec(m) // current reflector column, contiguous
	s := GetVec(n)  // per-column reflector products
	defer PutVec(ck)
	defer PutVec(s)
	for k := 0; k < n; k++ {
		qr.ColInto(ck, k)
		// Norm of column k below row k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, ck[i])
		}
		//lint:ignore floatcmp an exactly zero column has no Householder reflector
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if ck[k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			ck[i] /= nrm
			qr.Set(i, k, ck[i])
		}
		ck[k]++
		qr.Set(k, k, ck[k])
		// Apply the reflector to the remaining columns: first row sweep
		// gathers s_j = Σ_i v_i·qr[i][j], second scatters the update
		// qr[i][j] += (-s_j/v_k)·v_i.
		for j := k + 1; j < n; j++ {
			s[j] = 0
		}
		for i := k; i < m; i++ {
			vi := ck[i]
			row := qr.Row(i)
			for j := k + 1; j < n; j++ {
				s[j] += vi * row[j]
			}
		}
		for j := k + 1; j < n; j++ {
			s[j] = -s[j] / ck[k]
		}
		for i := k; i < m; i++ {
			vi := ck[i]
			row := qr.Row(i)
			for j := k + 1; j < n; j++ {
				row[j] += s[j] * vi
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}
}

// FullRank reports whether R has no zero (tiny) diagonal entries.
func (f *QR) FullRank() bool {
	for _, d := range f.rdiag {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂ for the
// overdetermined (or square) system. It returns ErrSingular if A is rank
// deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("tensor: QR.Solve length mismatch")
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := VecClone(b)
	ck := GetVec(f.m)
	defer PutVec(ck)
	// y = Qᵀ·b via the stored reflectors.
	for k := 0; k < f.n; k++ {
		//lint:ignore floatcmp a zero diagonal marks a skipped (exactly zero) reflector
		if f.qr.At(k, k) == 0 {
			continue
		}
		f.qr.ColInto(ck, k)
		s := 0.0
		for i := k; i < f.m; i++ {
			s += ck[i] * y[i]
		}
		s = -s / ck[k]
		for i := k; i < f.m; i++ {
			y[i] += s * ck[i]
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		row := f.qr.Row(i)
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// Q materializes the thin m×n orthonormal factor.
func (f *QR) Q() *Matrix {
	// Stage every reflector column contiguously once; the j-loop below
	// replays all of them per basis vector.
	refl := GetMatrix(f.n, f.m)
	defer PutMatrix(refl)
	for k := 0; k < f.n; k++ {
		f.qr.ColInto(refl.Row(k), k)
	}
	q := New(f.m, f.n)
	for j := 0; j < f.n; j++ {
		col := Basis(f.m, j)
		// col = Q·e_j: apply reflectors in reverse order.
		for k := f.n - 1; k >= 0; k-- {
			ck := refl.Row(k)
			//lint:ignore floatcmp a zero diagonal marks a skipped (exactly zero) reflector
			if ck[k] == 0 {
				continue
			}
			s := 0.0
			for i := k; i < f.m; i++ {
				s += ck[i] * col[i]
			}
			s = -s / ck[k]
			for i := k; i < f.m; i++ {
				col[i] += s * ck[i]
			}
		}
		q.SetCol(j, col)
	}
	return q
}

// R materializes the thin n×n upper-triangular factor.
func (f *QR) R() *Matrix {
	r := New(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}
