// Package modelio serializes networks, lock specifications, and keys to
// JSON so the CLI can persist trained locked models between the train,
// lock, and attack stages — the artifact flow of the paper's adversary
// model (the "download the model from a cloud platform" step, §2.3).
package modelio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
)

// layerJSON is the serialized form of one layer.
type layerJSON struct {
	Type     string               `json:"type"`
	Ints     map[string]int       `json:"ints,omitempty"`
	Floats   map[string][]float64 `json:"floats,omitempty"`
	Body     []layerJSON          `json:"body,omitempty"`
	Shortcut []layerJSON          `json:"shortcut,omitempty"`
}

// ModelFile is the on-disk representation of a locked model.
type ModelFile struct {
	Layers []layerJSON     `json:"layers"`
	Spec   *LockSpecJSON   `json:"spec,omitempty"`
	Key    map[string]bool `json:"-"` // never serialized: the key lives in hardware
}

// LockSpecJSON mirrors hpnn.LockSpec.
type LockSpecJSON struct {
	Scheme  int                    `json:"scheme"`
	Alpha   float64                `json:"alpha"`
	Neurons []hpnn.ProtectedNeuron `json:"neurons"`
}

// SpecToJSON converts a lock spec.
func SpecToJSON(s hpnn.LockSpec) *LockSpecJSON {
	return &LockSpecJSON{Scheme: int(s.Scheme), Alpha: s.Alpha, Neurons: s.Neurons}
}

// SpecFromJSON converts back.
func SpecFromJSON(s *LockSpecJSON) hpnn.LockSpec {
	return hpnn.LockSpec{Scheme: hpnn.Scheme(s.Scheme), Alpha: s.Alpha, Neurons: s.Neurons}
}

func encodeLayer(l nn.Layer) (layerJSON, error) {
	switch v := l.(type) {
	case *nn.Dense:
		return layerJSON{
			Type: "dense",
			Ints: map[string]int{"in": v.In, "out": v.Out},
			Floats: map[string][]float64{
				"w": v.W.W.Data, "b": v.B.W.Data,
			},
		}, nil
	case *nn.TokenDense:
		inner, err := encodeLayer(v.D)
		if err != nil {
			return layerJSON{}, err
		}
		inner.Type = "token_dense"
		inner.Ints["t"] = v.T
		return inner, nil
	case *nn.ReLU:
		return layerJSON{Type: "relu", Ints: map[string]int{"n": v.N}}, nil
	case *nn.Flatten:
		return layerJSON{Type: "flatten", Ints: map[string]int{"n": v.N}}, nil
	case *nn.Flip:
		j := layerJSON{
			Type:   "flip",
			Ints:   map[string]int{"n": v.N},
			Floats: map[string][]float64{"signs": v.Signs},
		}
		if v.Offsets != nil {
			j.Floats["offsets"] = v.Offsets
		}
		return j, nil
	case *nn.Conv2D:
		return layerJSON{
			Type: "conv2d",
			Ints: map[string]int{
				"in_c": v.InC, "in_h": v.InH, "in_w": v.InW,
				"out_c": v.OutC, "k": v.KH, "stride": v.Stride, "pad": v.Pad,
			},
			Floats: map[string][]float64{"w": v.W.W.Data, "b": v.B.W.Data},
		}, nil
	case *nn.MaxPool2D:
		return layerJSON{
			Type: "maxpool2d",
			Ints: map[string]int{"c": v.C, "h": v.InH, "w": v.InW, "k": v.K, "stride": v.Stride},
		}, nil
	case *nn.AvgPool2D:
		return layerJSON{
			Type: "avgpool2d",
			Ints: map[string]int{"c": v.C, "h": v.InH, "w": v.InW, "k": v.K, "stride": v.Stride},
		}, nil
	case *nn.GlobalAvgPool:
		return layerJSON{Type: "global_avg_pool", Ints: map[string]int{"c": v.C, "h": v.H, "w": v.W}}, nil
	case *nn.MeanTokens:
		return layerJSON{Type: "mean_tokens", Ints: map[string]int{"t": v.T, "d": v.D}}, nil
	case *nn.AttentionReLU:
		return layerJSON{
			Type: "attention_relu",
			Ints: map[string]int{"t": v.T, "d": v.D, "dh": v.Dh},
			Floats: map[string][]float64{
				"wq": v.Wq.W.Data, "wk": v.Wk.W.Data,
				"wv": v.Wv.W.Data, "wo": v.Wo.W.Data,
			},
		}, nil
	case *nn.PatchEmbed:
		return layerJSON{
			Type: "patch_embed",
			Ints: map[string]int{"c": v.C, "h": v.H, "w": v.W, "p": v.P, "d": v.D},
			Floats: map[string][]float64{
				"w": v.Wt.W.Data, "b": v.B.W.Data,
			},
		}, nil
	case *nn.Residual:
		var body, short []layerJSON
		for _, b := range v.Body {
			j, err := encodeLayer(b)
			if err != nil {
				return layerJSON{}, err
			}
			body = append(body, j)
		}
		for _, s := range v.Shortcut {
			j, err := encodeLayer(s)
			if err != nil {
				return layerJSON{}, err
			}
			short = append(short, j)
		}
		return layerJSON{Type: "residual", Body: body, Shortcut: short}, nil
	default:
		return layerJSON{}, fmt.Errorf("modelio: cannot encode layer %T", l)
	}
}

func decodeLayer(j layerJSON) (nn.Layer, error) {
	fill := func(dst []float64, src []float64, what string) error {
		if len(src) != len(dst) {
			return fmt.Errorf("modelio: %s length %d != %d", what, len(src), len(dst))
		}
		copy(dst, src)
		return nil
	}
	switch j.Type {
	case "dense":
		d := nn.NewDense(j.Ints["in"], j.Ints["out"])
		if err := fill(d.W.W.Data, j.Floats["w"], "dense w"); err != nil {
			return nil, err
		}
		if err := fill(d.B.W.Data, j.Floats["b"], "dense b"); err != nil {
			return nil, err
		}
		return d, nil
	case "token_dense":
		td := nn.NewTokenDense(j.Ints["t"], j.Ints["in"], j.Ints["out"])
		if err := fill(td.D.W.W.Data, j.Floats["w"], "token w"); err != nil {
			return nil, err
		}
		if err := fill(td.D.B.W.Data, j.Floats["b"], "token b"); err != nil {
			return nil, err
		}
		return td, nil
	case "relu":
		return nn.NewReLU(j.Ints["n"]), nil
	case "flatten":
		return nn.NewFlatten(j.Ints["n"]), nil
	case "flip":
		f := nn.NewFlip(j.Ints["n"])
		if err := fill(f.Signs, j.Floats["signs"], "flip signs"); err != nil {
			return nil, err
		}
		if off, ok := j.Floats["offsets"]; ok {
			f.Offsets = make([]float64, f.N)
			if err := fill(f.Offsets, off, "flip offsets"); err != nil {
				return nil, err
			}
		}
		return f, nil
	case "conv2d":
		c := nn.NewConv2D(j.Ints["in_c"], j.Ints["in_h"], j.Ints["in_w"],
			j.Ints["out_c"], j.Ints["k"], j.Ints["stride"], j.Ints["pad"])
		if err := fill(c.W.W.Data, j.Floats["w"], "conv w"); err != nil {
			return nil, err
		}
		if err := fill(c.B.W.Data, j.Floats["b"], "conv b"); err != nil {
			return nil, err
		}
		return c, nil
	case "maxpool2d":
		return nn.NewMaxPool2D(j.Ints["c"], j.Ints["h"], j.Ints["w"], j.Ints["k"], j.Ints["stride"]), nil
	case "avgpool2d":
		return nn.NewAvgPool2D(j.Ints["c"], j.Ints["h"], j.Ints["w"], j.Ints["k"], j.Ints["stride"]), nil
	case "global_avg_pool":
		return nn.NewGlobalAvgPool(j.Ints["c"], j.Ints["h"], j.Ints["w"]), nil
	case "mean_tokens":
		return nn.NewMeanTokens(j.Ints["t"], j.Ints["d"]), nil
	case "attention_relu":
		a := nn.NewAttentionReLU(j.Ints["t"], j.Ints["d"], j.Ints["dh"])
		for name, p := range map[string][]float64{
			"wq": a.Wq.W.Data, "wk": a.Wk.W.Data, "wv": a.Wv.W.Data, "wo": a.Wo.W.Data,
		} {
			if err := fill(p, j.Floats[name], "attention "+name); err != nil {
				return nil, err
			}
		}
		return a, nil
	case "patch_embed":
		pe := nn.NewPatchEmbed(j.Ints["c"], j.Ints["h"], j.Ints["w"], j.Ints["p"], j.Ints["d"])
		if err := fill(pe.Wt.W.Data, j.Floats["w"], "patch w"); err != nil {
			return nil, err
		}
		if err := fill(pe.B.W.Data, j.Floats["b"], "patch b"); err != nil {
			return nil, err
		}
		return pe, nil
	case "residual":
		var body, short []nn.Layer
		for _, b := range j.Body {
			l, err := decodeLayer(b)
			if err != nil {
				return nil, err
			}
			body = append(body, l)
		}
		for _, s := range j.Shortcut {
			l, err := decodeLayer(s)
			if err != nil {
				return nil, err
			}
			short = append(short, l)
		}
		return nn.NewResidual(body, short), nil
	default:
		return nil, fmt.Errorf("modelio: unknown layer type %q", j.Type)
	}
}

// EncodeNetwork writes net (and optionally its lock spec) as JSON.
func EncodeNetwork(w io.Writer, net *nn.Network, spec *hpnn.LockSpec) error {
	var mf ModelFile
	for _, l := range net.Layers {
		j, err := encodeLayer(l)
		if err != nil {
			return err
		}
		mf.Layers = append(mf.Layers, j)
	}
	if spec != nil {
		mf.Spec = SpecToJSON(*spec)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// DecodeNetwork reads a network (and lock spec, when present) from JSON.
// Structurally invalid files (empty layer lists, mismatched layer size
// chains, negative widths) are reported as errors, never panics.
func DecodeNetwork(r io.Reader) (net *nn.Network, spec *hpnn.LockSpec, err error) {
	var mf ModelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, nil, err
	}
	if len(mf.Layers) == 0 {
		return nil, nil, fmt.Errorf("modelio: model file has no layers")
	}
	// Layer constructors and NewNetwork validate by panicking; surface
	// those as decode errors for untrusted input.
	defer func() {
		if r := recover(); r != nil {
			net, spec = nil, nil
			err = fmt.Errorf("modelio: invalid model structure: %v", r)
		}
	}()
	var layers []nn.Layer
	for _, j := range mf.Layers {
		l, err := decodeLayer(j)
		if err != nil {
			return nil, nil, err
		}
		layers = append(layers, l)
	}
	net = nn.NewNetwork(layers...)
	if mf.Spec != nil {
		s := SpecFromJSON(mf.Spec)
		spec = &s
	}
	return net, spec, nil
}

// SaveNetwork writes the model to a file.
func SaveNetwork(path string, net *nn.Network, spec *hpnn.LockSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return EncodeNetwork(f, net, spec)
}

// LoadNetwork reads a model from a file.
func LoadNetwork(path string) (*nn.Network, *hpnn.LockSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return DecodeNetwork(f)
}
