// Package train provides the optimization substrate used to (1) train
// HPNN-locked models as functions of their keys and (2) drive the paper's
// learning-based attack: losses, SGD/Adam optimizers, and a mini-batch
// trainer.
package train

import (
	"math"

	"dnnlock/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy between softmax(logits)
// and the integer labels, and the gradient w.r.t. the logits.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix) {
	if logits.Rows != len(labels) {
		panic("train: label count mismatch")
	}
	n := logits.Rows
	grad = tensor.New(logits.Rows, logits.Cols)
	for r := 0; r < n; r++ {
		// Softmax straight into the gradient row, then rescale in place.
		gr := tensor.SoftmaxInto(grad.Row(r), logits.Row(r))
		y := labels[r]
		loss += -math.Log(math.Max(gr[y], 1e-300))
		for c := range gr {
			gr[c] /= float64(n)
		}
		gr[y] -= 1 / float64(n)
	}
	return loss / float64(n), grad
}

// MSE computes the mean squared error between pred and target matrices and
// the gradient w.r.t. pred. This is the loss of the learning-based attack
// (§4.1): MSE between the white-box logits and the oracle logits.
func MSE(pred, target *tensor.Matrix) (loss float64, grad *tensor.Matrix) {
	grad = tensor.New(pred.Rows, pred.Cols)
	return MSEInto(grad, pred, target), grad
}

// MSEInto is MSE writing the gradient into a caller-provided matrix
// (typically a pooled workspace), so per-minibatch hot loops allocate
// nothing.
func MSEInto(grad, pred, target *tensor.Matrix) (loss float64) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("train: MSE shape mismatch")
	}
	if grad.Rows != pred.Rows || grad.Cols != pred.Cols {
		panic("train: MSE gradient shape mismatch")
	}
	n := float64(len(pred.Data))
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n
}

// MSESoftmax computes the MSE between softmax(pred) rows and target, and
// the gradient w.r.t. the logits pred — the loss the learning attack uses
// against an oracle that exposes softmax probabilities (§2.3). The softmax
// map, the squared error, and the Jacobian pullback
// dL/dz_i = p_i·(dL/dp_i − Σ_j p_j·dL/dp_j) are fused into one pass per
// row; pred itself is left untouched. The gradient comes from the workspace
// pool and must be released with tensor.PutMatrix.
//
// The arithmetic reproduces the unfused reference (SoftmaxInto, MSE, then
// the per-row pullback) term for term in the same order, so results are
// identical, not merely close.
func MSESoftmax(pred, target *tensor.Matrix) (loss float64, grad *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("train: MSESoftmax shape mismatch")
	}
	n := float64(len(pred.Data))
	grad = tensor.GetMatrix(pred.Rows, pred.Cols)
	p := tensor.GetVec(pred.Cols)
	defer tensor.PutVec(p)
	for r := 0; r < pred.Rows; r++ {
		tensor.SoftmaxInto(p, pred.Row(r))
		gr := grad.Row(r)
		tr := target.Row(r)
		dot := 0.0
		for c, pv := range p {
			d := pv - tr[c]
			loss += d * d
			g := 2 * d / n
			gr[c] = g
			dot += pv * g
		}
		for c := range gr {
			gr[c] = p[c] * (gr[c] - dot)
		}
	}
	return loss / n, grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < logits.Rows; r++ {
		if tensor.ArgMax(logits.Row(r)) == labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
