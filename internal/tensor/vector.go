package tensor

import "math"

// Dot returns the inner product of two equal-length vectors. Generic over
// the element width: the float64 instantiation is the historical exact
// kernel, the float32 one backs the learning attack's speed tier.
func Dot[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s T
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns max_i |v[i]|.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// VecAdd returns a+b.
func VecAdd(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("tensor: VecAdd length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a-b.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("tensor: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns s*v.
func VecScale(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// VecClone returns a copy of v.
func VecClone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Basis returns the j-th standard basis vector e_j of R^n.
func Basis(n, j int) []float64 {
	v := make([]float64, n)
	v[j] = 1
	return v
}

// ArgMax returns the index of the largest element (first on ties), -1 if empty.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax returns the softmax of v, computed stably.
func Softmax(v []float64) []float64 {
	return SoftmaxInto(make([]float64, len(v)), v)
}

// SoftmaxInto computes the softmax of v into dst (which must have the same
// length) and returns dst. dst may alias v, so SoftmaxInto(v, v) is the
// allocation-free in-place form.
func SoftmaxInto(dst, v []float64) []float64 {
	if len(dst) != len(v) {
		panic("tensor: SoftmaxInto length mismatch")
	}
	mx := math.Inf(-1)
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - mx)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}
