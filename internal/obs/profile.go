package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"time"
)

// Profiling hooks: an opt-in pprof endpoint (dnnlock table1 -pprof :6060)
// and cheap runtime/metrics snapshots that spans attach as attributes, so a
// trace records not just where the time went but what the allocator and
// scheduler were doing while it did.

// StartProfiler serves the net/http/pprof handlers on addr (e.g. ":6060")
// in a background goroutine and returns a stop function. The mux is
// private, so importing this package never mutates http.DefaultServeMux.
func StartProfiler(addr string) (stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore nakedgo background HTTP server, not attack parallelism; lifetime bounded by the returned stop function
	go func() { _ = srv.Serve(ln) }()
	return srv.Close, nil
}

// RuntimeStats is one runtime/metrics snapshot of the counters the attack
// cares about: allocation pressure (the pooled kernels exist to keep
// CumAllocBytes flat), GC activity, and scheduler width.
type RuntimeStats struct {
	CumAllocBytes uint64 // /gc/heap/allocs:bytes — cumulative, diff two snapshots
	HeapBytes     uint64 // /memory/classes/heap/objects:bytes — live objects now
	GCCycles      uint64 // /gc/cycles/total:gc-cycles — cumulative
	Goroutines    uint64 // /sched/goroutines:goroutines — now
}

var runtimeSamples = []metrics.Sample{
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/sched/goroutines:goroutines"},
}

// ReadRuntimeStats samples the runtime. Cheap enough for span boundaries
// (no stop-the-world, unlike runtime.ReadMemStats).
func ReadRuntimeStats() RuntimeStats {
	s := make([]metrics.Sample, len(runtimeSamples))
	copy(s, runtimeSamples)
	metrics.Read(s)
	u := func(i int) uint64 {
		if s[i].Value.Kind() == metrics.KindUint64 {
			return s[i].Value.Uint64()
		}
		return 0
	}
	return RuntimeStats{
		CumAllocBytes: u(0),
		HeapBytes:     u(1),
		GCCycles:      u(2),
		Goroutines:    u(3),
	}
}

// AnnotateRuntime attaches the allocation and GC deltas since `before` (and
// the instantaneous goroutine count) to the span. Call it just before End
// with a snapshot taken at span start. Nil-safe via Annotate.
func (s *Span) AnnotateRuntime(before RuntimeStats) {
	if s == nil {
		return
	}
	now := ReadRuntimeStats()
	s.Annotate(
		Int64("alloc_bytes", int64(now.CumAllocBytes-before.CumAllocBytes)),
		Int64("gc_cycles", int64(now.GCCycles-before.GCCycles)),
		Int64("heap_bytes", int64(now.HeapBytes)),
		Int64("goroutines", int64(now.Goroutines)),
	)
}
