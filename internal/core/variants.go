package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/metrics"
	"dnnlock/internal/nn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// RunVariant attacks the §3.9 locking variants. Every variant reduces to
// candidate-hyperplane testing:
//
//   - bias-shift and weight-perturbation keys move the protected neuron's
//     own hyperplane, so each key hypothesis predicts a different critical
//     point for that neuron and the oracle's kink location selects the
//     hypothesis directly;
//   - a scaling key leaves the neuron's hyperplane in place but, once
//     propagated into the next layer's columns (the paper's fan-out-cone
//     reduction), moves the hyperplanes of downstream neurons in regions
//     where the protected neuron is active — so the same kink test applied
//     one layer later selects the hypothesis.
//
// Bits the tests cannot decide are defaulted and repaired by the shared
// validation / error-correction loop of Algorithm 2.
func RunVariant(whiteBox *nn.Network, spec hpnn.LockSpec, orc oracle.Interface, cfg Config) (*Result, error) {
	if spec.Scheme == hpnn.Negation {
		return Run(whiteBox, spec, orc, cfg)
	}
	a := New(whiteBox, spec, orc, cfg)
	return a.runVariant()
}

func (a *Attack) runVariant() (*Result, error) {
	//lint:ignore determinism telemetry timer for Result.Time; the value never feeds the numerics
	start := time.Now()
	startQ := a.orc.Queries()
	startR := a.orc.Rounds()
	startS := simElapsed(a.orc)
	root := a.startRoot("attack_variant", obs.Int("bits", a.spec.NumBits()),
		obs.Int("scheme", int(a.spec.Scheme)))
	defer root.End() // idempotent: the success path ends it with annotations
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	bySite := a.spec.SiteBits()

	var reports []SiteReport
	var pending sitePending
	for _, site := range a.orderedSites() {
		rep, err := a.runVariantSite(root, site, bySite[site], &pending, rng)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}

	fsp := root.Child("final_check")
	eq, eqErr := a.directCompare(fsp, a.white, rng)
	fsp.End(obs.Bool("equivalent", eq))
	res := &Result{
		Key:     a.CurrentKey(),
		Origins: append([]BitOrigin(nil), a.origins...),
		Queries: a.orc.Queries() - startQ,
		Rounds:  a.orc.Rounds() - startR,
		//lint:ignore determinism telemetry: elapsed wall time reported to the operator, not used in computation
		Time:          time.Since(start),
		SimTime:       simElapsed(a.orc) - startS,
		Breakdown:     a.bd,
		QueriesByProc: a.bd.QueriesByProc(),
		RoundsByProc:  a.bd.RoundsByProc(),
		SimByProc:     a.bd.SimByProc(),
		Sites:         reports,
		Equivalent:    eq,
		Degraded:      int(a.degraded.Load()),
		BisectRounds:  a.crit.rounds.Load(),
		BisectProbes:  a.crit.probes.Load(),
	}
	root.End(obs.Int64("queries", res.Queries), obs.Int64("rounds", res.Rounds),
		obs.Bool("equivalent", res.Equivalent))
	if eqErr != nil {
		return res, fmt.Errorf("core: variant equivalence check: %w", eqErr)
	}
	if !res.Equivalent {
		return res, fmt.Errorf("core: recovered variant key is not functionally equivalent to the oracle")
	}
	return res, nil
}

// runVariantSite attacks the protected bits of one flip site of the
// variant scheme: hypothesis tests on every bit, then the validation /
// correction loop over the pending group. Mirrors runSite, including its
// span discipline: the success paths end the site span with annotations,
// and the deferred End (idempotent) covers the error returns so an aborted
// run still exports the partial site record.
func (a *Attack) runVariantSite(root *obs.Span, site int, bits []int, pending *sitePending, rng *rand.Rand) (SiteReport, error) {
	rep := SiteReport{Site: site, Bits: len(bits)}
	ssp := root.Child("site", obs.Int("site", site), obs.Int("bits", len(bits)))
	defer ssp.End()

	inferred := make([]bitValue, len(bits))
	var inferErr error
	a.trackProc(ssp, metrics.ProcKeyBitInference, func() {
		inferErr = a.parallelForErr(len(bits), rng.Int63(), func(i int, wrng *rand.Rand) error {
			var err error
			inferred[i], err = a.hypothesisTestBit(bits[i], wrng)
			return err
		})
	})
	if inferErr != nil {
		return rep, fmt.Errorf("core: variant site %d hypothesis tests: %w", site, inferErr)
	}
	for i, v := range inferred {
		switch v {
		case bitZero, bitOne:
			a.setBit(bits[i], v == bitOne, 1, OriginAlgebraic)
			rep.Algebraic++
		default:
			// Undecided: default to 0 with no confidence; the
			// validation / correction loop repairs mistakes.
			a.setBit(bits[i], false, 0, OriginUnknown)
		}
	}
	a.log.Debug("variant site tested", "site", site, "bits", len(bits),
		"decided", rep.Algebraic)

	pending.bits = append(pending.bits, bits...)
	pending.sites = append(pending.sites, site)
	if _, mode := a.validationProbe(pending.sites); mode == modeDefer {
		ssp.End(obs.Bool("deferred", true))
		return rep, nil
	}
	valid := false
	for round := 0; round <= a.cfg.MaxCorrectionRounds; round++ {
		var valErr error
		a.trackProc(ssp, metrics.ProcKeyVectorValidation, func() {
			rep.ValidationRuns++
			valid, valErr = a.keyVectorValidation(a.white, pending.sites, rng)
		})
		if valErr != nil {
			return rep, fmt.Errorf("core: variant site %d key_vector_validation: %w", site, valErr)
		}
		if valid {
			break
		}
		fixed := false
		var corrErr error
		a.trackProc(ssp, metrics.ProcErrorCorrection, func() {
			fixed, corrErr = a.errorCorrection(pending.sites, a.decidedBits(), rng)
		})
		if corrErr != nil {
			return rep, fmt.Errorf("core: variant site %d error_correction: %w", site, corrErr)
		}
		if fixed {
			// The committed candidate already passed validation inside
			// errorCorrection.
			rep.Corrected++
			valid = true
			break
		}
		if round == a.cfg.MaxCorrectionRounds {
			return rep, fmt.Errorf("core: variant site %d failed validation", site)
		}
	}
	if !valid {
		return rep, fmt.Errorf("core: variant site %d failed validation", site)
	}
	pending.bits = pending.bits[:0]
	pending.sites = pending.sites[:0]
	ssp.End(obs.Int("decided", rep.Algebraic), obs.Int("corrected", rep.Corrected))
	return rep, nil
}

// hypothesisTestBit decides one variant key bit by candidate-hyperplane
// testing: under each hypothesis b it locates a hyperplane witness the
// other hypothesis cannot explain, then asks the oracle which witness shows
// a kink. Persistent transient oracle failures degrade the bit to ⊥ (the
// validation/correction loop repairs it); terminal errors propagate.
func (a *Attack) hypothesisTestBit(specIdx int, rng *rand.Rand) (bitValue, error) {
	bsp := a.phase.ChildDetail("bit", obs.Int("bit", specIdx))
	var bit bitValue
	var err error
	if a.ownHyperplaneMoves() {
		bit, err = a.ownHyperplaneTest(bsp, specIdx, rng)
	} else {
		bit, err = a.fanOutTest(bsp, specIdx, rng)
	}
	if err != nil {
		bsp.End(obs.String("outcome", "degraded"))
		return bitBottom, a.fallthroughBottom(err)
	}
	bsp.End(obs.String("outcome", bit.String()))
	return bit, nil
}

// ownHyperplaneTest handles bias-shift and weight-perturbation bits: the
// two hypotheses predict two distinct hyperplanes for the protected neuron
// itself.
func (a *Attack) ownHyperplaneTest(bsp *obs.Span, specIdx int, rng *rand.Rand) (bitValue, error) {
	pn := a.spec.Neurons[specIdx]
	gate := a.gatingReLU(pn.Site)
	if gate < 0 {
		return bitBottom, nil // not directly gated: leave to validation/correction
	}
	cands := a.hypothesisPair(specIdx)
	for try := 0; try < a.cfg.MaxCriticalTries; try++ {
		kink := [2]bool{}
		found := [2]bool{}
		for b := 0; b < 2; b++ {
			x0, ok := a.distinguishableCritical(cands[b], cands[1-b], pn.Site, pn.Index, rng)
			if !ok {
				continue
			}
			found[b] = true
			var err error
			kink[b], err = a.kinkAt(bsp, cands[b], x0, gate, pn.Index, rng)
			if err != nil {
				return bitBottom, err
			}
		}
		switch {
		case found[0] && found[1] && kink[0] != kink[1]:
			if kink[1] {
				return bitOne, nil
			}
			return bitZero, nil
		case found[0] && !found[1] && kink[0]:
			return bitZero, nil
		case found[1] && !found[0] && kink[1]:
			return bitOne, nil
		}
	}
	return bitBottom, nil
}

// fanOutTest handles scaling bits: it probes neurons of the next lockable
// layer inside the protected neuron's fan-out cone, at witnesses where the
// protected neuron is active (so the hypotheses actually disagree).
func (a *Attack) fanOutTest(bsp *obs.Span, specIdx int, rng *rand.Rand) (bitValue, error) {
	pn := a.spec.Neurons[specIdx]
	next := pn.Site + 1
	if next >= a.white.NumFlipSites() {
		return a.lastLayerSlopeTest(bsp, specIdx, rng)
	}
	gate := a.gatingReLU(next)
	if gate < 0 {
		return bitBottom, nil
	}
	cands := a.hypothesisPair(specIdx)
	width := a.white.Flips()[next].N
	probes := rng.Perm(width)
	if len(probes) > a.cfg.MaxCriticalTries*3 {
		probes = probes[:a.cfg.MaxCriticalTries*3]
	}
	for _, k := range probes {
		kinkV := [2]bool{}
		found := [2]bool{}
		for b := 0; b < 2; b++ {
			x0, ok := a.activeDistinguishableCritical(cands[b], cands[1-b], pn, next, k, rng)
			if !ok {
				continue
			}
			found[b] = true
			var err error
			kinkV[b], err = a.kinkAt(bsp, cands[b], x0, gate, k, rng)
			if err != nil {
				return bitBottom, err
			}
		}
		// Two-sided disagreement decides outright; a one-sided witness
		// decides on positive evidence only (the oracle kinks where just one
		// hypothesis predicts a kink), mirroring ownHyperplaneTest — absence
		// of a kink is not trusted, since the witness may be unobservable
		// through the remaining layers.
		switch {
		case found[0] && found[1] && kinkV[0] != kinkV[1]:
			if kinkV[1] {
				return bitOne, nil
			}
			return bitZero, nil
		case found[0] && !found[1] && kinkV[0]:
			return bitZero, nil
		case found[1] && !found[0] && kinkV[1]:
			return bitOne, nil
		}
	}
	return bitBottom, nil
}

// lastLayerSlopeTest decides a scaling bit on the final lockable layer: at
// a critical point of the neuron, moving along the pre-image direction
// changes only this neuron, and since no unknown keys remain downstream,
// each hypothesis predicts the oracle's response exactly.
func (a *Attack) lastLayerSlopeTest(bsp *obs.Span, specIdx int, rng *rand.Rand) (bitValue, error) {
	pn := a.spec.Neurons[specIdx]
	cands := a.hypothesisPair(specIdx)
	for try := 0; try < a.cfg.MaxCriticalTries; try++ {
		x0, ok := searchCriticalPoint(a.white, pn.Site, pn.Index, a.cfg, rng)
		if !ok {
			return bitBottom, nil
		}
		v, ok := a.preimage(x0, pn.Site, pn.Index)
		if !ok {
			continue
		}
		eps := a.cfg.probeStep(a.cfg.Epsilon)
		xp := tensor.VecClone(x0)
		tensor.AXPY(eps, v, xp)
		// Both slope points ride one oracle round, in the scalar order
		// (xp before x0).
		xb := tensor.GetMatrix(2, len(x0))
		xb.SetRow(0, xp)
		xb.SetRow(1, x0)
		yb, qerr := a.multi(bsp, xb)
		tensor.PutMatrix(xb)
		if qerr != nil {
			return bitBottom, qerr
		}
		dOracle := tensor.VecSub(yb.Row(0), yb.Row(1))
		tensor.PutMatrix(yb)
		err := [2]float64{}
		for b := 0; b < 2; b++ {
			fwd := func(x []float64) []float64 {
				y := cands[b].Forward(x)
				if a.orc.Softmax() {
					return tensor.Softmax(y)
				}
				return y
			}
			dPred := tensor.VecSub(fwd(xp), fwd(x0))
			err[b] = tensor.NormInf(tensor.VecSub(dPred, dOracle))
		}
		// Require a decisive margin between the hypotheses.
		lo, hi := err[0], err[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > a.cfg.DecisionRatio*lo && hi > a.absChange() {
			if err[0] < err[1] {
				return bitZero, nil
			}
			return bitOne, nil
		}
	}
	return bitBottom, nil
}

// hypothesisPair clones the white box under both values of one bit.
func (a *Attack) hypothesisPair(specIdx int) [2]*nn.Network {
	pn := a.spec.Neurons[specIdx]
	var out [2]*nn.Network
	for b := 0; b < 2; b++ {
		c := a.applier.clone(a.white)
		a.applier.apply(c, pn, specIdx, b == 1)
		out[b] = c
	}
	return out
}

// distinguishableCritical finds a critical point of (site, idx) on net such
// that the alternative hypothesis net is far from critical there — i.e. a
// witness only one hypothesis can explain.
func (a *Attack) distinguishableCritical(net, alt *nn.Network, site, idx int, rng *rand.Rand) ([]float64, bool) {
	for try := 0; try < a.cfg.MaxCriticalTries; try++ {
		x0, ok := searchCriticalPoint(net, site, idx, a.cfg, rng)
		if !ok {
			return nil, false
		}
		if math.Abs(postAct(alt, x0, site, idx)) > a.variantMargin() {
			return x0, true
		}
	}
	return nil, false
}

// activeDistinguishableCritical is distinguishableCritical with two extra
// scaling-specific requirements on the witness:
//
//   - the protected upstream neuron is active (otherwise α^K is muted by
//     the ReLU and the hypotheses coincide), and
//   - every OTHER still-undecided protected neuron of the same flip site is
//     inactive. Both hypothesis clones carry default values for those bits;
//     if such a neuron were active, its (possibly wrong) scaling would move
//     the downstream hyperplane on both clones, so even the correct
//     hypothesis would predict a kink location the oracle does not have.
//     With the cone restricted to regions where only the bit under test
//     fans out, the clones agree with the true function up to that single
//     bit, and the kink test is sound.
func (a *Attack) activeDistinguishableCritical(net, alt *nn.Network, up hpnn.ProtectedNeuron, site, idx int, rng *rand.Rand) ([]float64, bool) {
	for try := 0; try < a.cfg.MaxCriticalTries; try++ {
		x0, ok := searchCriticalPoint(net, site, idx, a.cfg, rng)
		if !ok {
			return nil, false
		}
		if postAct(net, x0, up.Site, up.Index) <= 0 {
			continue
		}
		if !a.othersMuted(net, x0, up) {
			continue
		}
		if math.Abs(postAct(alt, x0, site, idx)) > a.variantMargin() {
			return x0, true
		}
	}
	return nil, false
}

// othersMuted reports whether every undecided protected neuron of up's flip
// site other than up itself is inactive (ReLU-muted) at x0.
func (a *Attack) othersMuted(net *nn.Network, x0 []float64, up hpnn.ProtectedNeuron) bool {
	for si, pn := range a.spec.Neurons {
		if pn.Site != up.Site || pn.Index == up.Index || a.decided[si] {
			continue
		}
		if postAct(net, x0, pn.Site, pn.Index) > 0 {
			return false
		}
	}
	return true
}

// kinkAt runs the control-calibrated second-difference test of §3.7 at a
// witness x° of ReLU input (reluSite, idx) on net.
func (a *Attack) kinkAt(sp *obs.Span, net *nn.Network, x0 []float64, reluSite, idx int, rng *rand.Rand) (bool, error) {
	v := a.voteDirection(net, x0, reluSite, idx, rng)
	d := a.cfg.probeStep(a.cfg.ValidationDelta)
	ctrl := tensor.VecClone(x0)
	tensor.AXPY(3*d, v, ctrl)
	kink, background, err := a.oracleSecondDifferencePair(sp, x0, ctrl, v, d)
	if err != nil {
		return false, err
	}
	return kink > 10*a.calibrated(background)+a.absChange(), nil
}

// gatingReLU returns the ReLU site that directly rectifies the given flip
// site's output, or -1.
func (a *Attack) gatingReLU(flipSite int) int {
	layout := a.white.SiteLayout()
	for i, ev := range layout {
		if ev.IsFlip && ev.ID == flipSite && i+1 < len(layout) {
			next := layout[i+1]
			if !next.IsFlip && next.Seq == ev.Seq && next.Pos == ev.Pos+1 {
				return next.ID
			}
		}
	}
	return -1
}

// variantMargin is the minimum hypothesis separation accepted at a witness.
func (a *Attack) variantMargin() float64 {
	m := math.Abs(a.spec.Alpha) / 4
	if a.spec.Scheme == hpnn.Scaling {
		m = a.cfg.ValidationDelta * 10
	}
	if m < a.cfg.ValidationDelta*4 {
		m = a.cfg.ValidationDelta * 4
	}
	return m
}
