package nn_test

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
)

// engineNets builds one network per architecture family the engine must
// shadow: conv/maxpool (LeNet), residual conv/global-avg-pool (ResNet),
// patch-embed/attention/token-dense/mean-tokens (VTransformer), and a
// plain dense MLP.
func engineNets(rng *rand.Rand) map[string]*nn.Network {
	return map[string]*nn.Network{
		"lenet":        models.TinyLeNet(rng),
		"resnet":       models.TinyResNet(rng),
		"vtransformer": models.TinyVTransformer(rng),
		"mlp":          models.MLP(models.MLPConfig{In: 7, Hidden: []int{10, 6}, Out: 4}, rng),
	}
}

// TestEngine32MatchesFloat64 drives the float32 shadow engine and the
// exact float64 suffix over the same softened network and demands
// agreement within float32 rounding: forward logits relatively close, and
// the soft flip coefficient gradient — the only gradient the learning
// attack keeps — close too. This is the layer-level counterpart of core's
// end-to-end precision parity property.
func TestEngine32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, net := range engineNets(rng) {
		for _, gated := range []bool{false, true} {
			flips := net.Flips()
			if len(flips) == 0 {
				t.Fatalf("%s: no flip layers", name)
			}
			flip := flips[0]
			p := flip.Soften([]int{0, 1}, gated)
			for i := range p.W.Data {
				p.W.Data[i] = 0.3*rng.NormFloat64() + 0.1
			}

			sl := net.FullSlice()
			batch := 16
			x := tensor.New(batch, net.InSize())
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			dy := tensor.New(batch, net.OutSize())
			for i := range dy.Data {
				dy.Data[i] = rng.NormFloat64()
			}

			// Exact float64 reference.
			y64 := sl.TrainForward(x)
			ref := y64.Clone()
			sl.Backward(dy)
			refG := append([]float64(nil), p.G.Data...)
			sl.ZeroGrad()

			// Float32 shadow.
			ar := tensor.GetArena32()
			eng, ok := nn.NewEngine32(sl, ar)
			if !ok {
				t.Fatalf("%s: no float32 shadow", name)
			}
			x32 := ar.Mat(x.Rows, x.Cols)
			tensor.ConvertInto(x32, x)
			y32 := eng.Forward(x32)
			scale := ref.MaxAbs() + 1
			for i, v := range ref.Data {
				if d := math.Abs(float64(y32.Data[i]) - v); d > 1e-4*scale {
					t.Fatalf("%s gated=%v: forward[%d] %v vs %v (Δ %.2g)",
						name, gated, i, y32.Data[i], v, d)
				}
			}
			dy32 := ar.Mat(dy.Rows, dy.Cols)
			tensor.ConvertInto(dy32, dy)
			eng.Backward(dy32)
			gscale := 1.0
			for _, g := range refG {
				if a := math.Abs(g); a > gscale {
					gscale = a
				}
			}
			for i, g := range refG {
				if d := math.Abs(p.G.Data[i] - g); d > 1e-3*gscale {
					t.Fatalf("%s gated=%v: soft grad[%d] %v vs %v (Δ %.2g)",
						name, gated, i, p.G.Data[i], g, d)
				}
			}
			sl.ZeroGrad()
			tensor.PutArena32(ar)
		}
	}
}

// TestEngine32ZeroAllocEpoch checks the engine's steady state: after the
// first (largest) batch sized the internal buffers, repeated forward and
// backward passes allocate nothing.
func TestEngine32ZeroAllocEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := models.TinyLeNet(rng)
	net.Flips()[0].Soften([]int{0, 1}, false)
	sl := net.FullSlice()
	ar := tensor.GetArena32()
	defer tensor.PutArena32(ar)
	eng, ok := nn.NewEngine32(sl, ar)
	if !ok {
		t.Fatal("no float32 shadow for LeNet")
	}
	x := ar.Mat(8, net.InSize())
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	dy := ar.Mat(8, net.OutSize())
	for i := range dy.Data {
		dy.Data[i] = float32(rng.NormFloat64())
	}
	// Warm-up carves every lazily-sized buffer.
	_ = eng.Forward(x)
	eng.Backward(dy)
	allocs := testing.AllocsPerRun(10, func() {
		_ = eng.Forward(x)
		eng.Backward(dy)
	})
	if allocs > 0 {
		t.Fatalf("steady-state epoch allocates %.1f times per pass", allocs)
	}
}
