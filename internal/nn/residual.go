package nn

import (
	"dnnlock/internal/tensor"
)

// Residual computes y = shortcut(x) + body(x), the basic block topology of
// ResNet (He et al. 2016). An empty shortcut is the identity; a non-empty
// shortcut (e.g. a strided 1×1 convolution) handles shape changes.
type Residual struct {
	Body     []Layer
	Shortcut []Layer // nil/empty means identity
}

// NewResidual constructs a residual block.
func NewResidual(body []Layer, shortcut []Layer) *Residual {
	r := &Residual{Body: body, Shortcut: shortcut}
	if r.InSize() != 0 && r.OutSize() != 0 && len(shortcut) == 0 && r.InSize() != r.OutSize() {
		panic("nn: identity-shortcut residual needs matching in/out sizes")
	}
	return r
}

func (r *Residual) Name() string { return "residual" }

// InSize returns the body's input size.
func (r *Residual) InSize() int { return r.Body[0].InSize() }

// OutSize returns the body's output size.
func (r *Residual) OutSize() int { return r.Body[len(r.Body)-1].OutSize() }

func (r *Residual) subLayers() []Layer {
	out := append([]Layer(nil), r.Body...)
	return append(out, r.Shortcut...)
}

// Forward runs both paths and sums them.
func (r *Residual) Forward(x []float64, tr *Trace) []float64 {
	b := x
	for _, l := range r.Body {
		b = l.Forward(b, tr)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, tr)
	}
	return tensor.VecAdd(b, s)
}

// ForwardBatch runs both paths and sums them. Consumed chain intermediates
// go back to the workspace pool.
func (r *Residual) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	b := forwardBatchChain(r.Body, x)
	s := forwardBatchChain(r.Shortcut, x)
	// Same arithmetic as tensor.Add(b, s): copy b, then one pass of +=.
	out := tensor.GetMatrix(b.Rows, b.Cols)
	copy(out.Data, b.Data)
	for i, v := range s.Data {
		out.Data[i] += v
	}
	if b != x {
		tensor.PutMatrix(b)
	}
	if s != x && s != b {
		tensor.PutMatrix(s)
	}
	return out
}

// TrainForward runs both paths with caching.
func (r *Residual) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	b := x
	for _, l := range r.Body {
		b = l.TrainForward(b)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.TrainForward(s)
	}
	return tensor.Add(b, s)
}

// Backward propagates through both paths and sums the input gradients.
// Consumed chain intermediates go back to the workspace pool; no layer
// retains the gradient it was handed (see backwardChain).
func (r *Residual) Backward(dy *tensor.Matrix) *tensor.Matrix {
	db := backwardChain(r.Body, dy)
	ds := backwardChain(r.Shortcut, dy)
	// Same arithmetic as tensor.Add(db, ds): copy db, then one pass of +=.
	dx := tensor.GetMatrix(db.Rows, db.Cols)
	copy(dx.Data, db.Data)
	for i, v := range ds.Data {
		dx.Data[i] += v
	}
	if db != dy {
		tensor.PutMatrix(db)
	}
	if ds != dy && ds != db {
		tensor.PutMatrix(ds)
	}
	return dx
}

// forwardBatchChain folds ForwardBatch over layers, releasing each consumed
// intermediate to the workspace pool. Safe because no layer retains its
// ForwardBatch result; identity layers (Flatten) hand back their input
// unchanged, which is caught by pointer equality. The caller's x is never
// released.
func forwardBatchChain(layers []Layer, x *tensor.Matrix) *tensor.Matrix {
	cur := x
	for _, l := range layers {
		next := l.ForwardBatch(cur)
		if cur != x && next != cur {
			tensor.PutMatrix(cur)
		}
		cur = next
	}
	return cur
}

// backwardChain folds Backward over layers in reverse, releasing each
// consumed intermediate to the workspace pool. Safe because every layer's
// Backward returns a buffer it does not retain, and identity layers
// (Flatten) hand back their input unchanged, which is caught by pointer
// equality. The caller's dy is never released.
func backwardChain(layers []Layer, dy *tensor.Matrix) *tensor.Matrix {
	cur := dy
	for i := len(layers) - 1; i >= 0; i-- {
		next := layers[i].Backward(cur)
		if cur != dy && next != cur {
			tensor.PutMatrix(cur)
		}
		cur = next
	}
	return cur
}

// JVP propagates value and tangent through both paths and sums them.
func (r *Residual) JVP(x []float64, j *tensor.Matrix, jtr *JVPTrace) ([]float64, *tensor.Matrix) {
	bv, bj := x, j
	for _, l := range r.Body {
		bv, bj = l.JVP(bv, bj, jtr)
	}
	sv, sj := x, j
	for _, l := range r.Shortcut {
		sv, sj = l.JVP(sv, sj, jtr)
	}
	return tensor.VecAdd(bv, sv), tensor.Add(bj, sj)
}

// Params returns all parameters of both paths.
func (r *Residual) Params() []*Param {
	var out []*Param
	for _, l := range r.subLayers() {
		out = append(out, l.Params()...)
	}
	return out
}
