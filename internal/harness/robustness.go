package harness

// The robustness sweep evaluates the attack under degraded oracle access —
// the axis the paper's adversary model (§2.3) idealizes away. Each cell
// wraps the clean oracle in a fault-injection decorator (internal/oracle),
// declares the degradation to the attack (core.Config.NoiseSigma/QuantStep),
// and reports fidelity, query cost, and how many decisions degraded to the
// §3.6 learning fallback. The sigma=0 / full-precision cells run the exact
// clean path, so the sweep doubles as a regression anchor: they must
// reproduce the Table 1 fidelity of 100%.

import (
	"fmt"
	"io"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/oracle"
)

// RobustnessRow is one cell of the robustness sweep: one (noise sigma,
// quantization depth) oracle degradation and the attack's outcome under it.
type RobustnessRow struct {
	Model   string
	KeyBits int
	// Sigma is the Gaussian noise level of the oracle (0 = noiseless).
	Sigma float64
	// QuantBits is the fractional-bit depth of the oracle's fixed-point
	// outputs (0 = full precision).
	QuantBits int
	Fidelity  float64
	Accuracy  float64
	Queries   int64
	Seconds   float64
	// Degraded counts attack decisions that fell through to the learning
	// attack because noise or faults defeated the algebraic probes.
	Degraded int
	// Err records a failed run (e.g. validation could not converge under
	// extreme degradation). The row's other fields still describe the
	// partial outcome when the attack returned one.
	Err error
}

// RunRobustness sweeps the decryption attack across oracle degradations for
// one (model, keyBits) cell of the scale: first the noise axis (full
// precision, each sigma in sigmas), then the quantization axis (noiseless,
// each depth in quantBits). Rows stream to w as they complete. The model is
// trained once and shared across all cells; each cell gets a freshly
// provisioned oracle so query counts are independent.
func RunRobustness(sc Scale, model string, keyBits int, sigmas []float64, quantBits []int, w io.Writer) ([]RobustnessRow, error) {
	p, err := prepare(model, keyBits, sc, w)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintln(w, RobustnessHeader())
	}
	var rows []RobustnessRow
	for _, sigma := range sigmas {
		rows = append(rows, p.runRobustnessCell(sigma, 0, w))
	}
	for _, qb := range quantBits {
		rows = append(rows, p.runRobustnessCell(0, qb, w))
	}
	return rows, nil
}

// runRobustnessCell runs the decryption attack once against an oracle
// degraded by (sigma, quantBits).
func (p *pipeline) runRobustnessCell(sigma float64, quantBits int, w io.Writer) RobustnessRow {
	row := RobustnessRow{
		Model:     p.model,
		KeyBits:   p.bits,
		Sigma:     sigma,
		QuantBits: quantBits,
	}
	var orc oracle.Interface = oracle.New(p.lm, p.key)
	cfg := p.sc.AttackCfg
	cfg.Seed = p.sc.Seed + 2 // same seed as the Table 1 decryption cell
	if quantBits > 0 {
		orc = oracle.Quantized(orc, quantBits)
		cfg.QuantStep = oracle.QuantizationStep(quantBits)
	}
	if sigma > 0 {
		orc = oracle.Noisy(orc, sigma, p.sc.Seed+3)
		cfg.NoiseSigma = sigma
		// Majority voting only helps once there is noise to vote away; at
		// sigma=0 the default single-shot probes keep the clean path
		// bit-identical to Table 1.
		cfg.ProbeVotes = 3
	}
	start := time.Now()
	res, err := core.Run(p.lm.WhiteBox(), p.lm.Spec, orc, cfg)
	row.Seconds = time.Since(start).Seconds()
	row.Err = err
	if res != nil {
		row.Fidelity = res.Key.Fidelity(p.key)
		row.Accuracy = p.accuracyUnderKey(res.Key)
		row.Queries = res.Queries
		row.Degraded = res.Degraded
	}
	if w != nil {
		fmt.Fprintf(w, "%s\n", FormatRobustnessRow(row))
	}
	return row
}

// RobustnessHeader renders the robustness table's column header.
func RobustnessHeader() string {
	return fmt.Sprintf("%-13s %5s | %7s %6s | %8s %8s %9s %9s %5s",
		"DNN", "key", "sigma", "qbits", "acc", "fid", "time", "query", "degr")
}

// FormatRobustnessRow renders one robustness row.
func FormatRobustnessRow(r RobustnessRow) string {
	// %7g keeps small sigmas distinguishable (1e-05 rather than 0.0000).
	s := fmt.Sprintf("%-13s %5d | %7g %6d | %7.1f%% %7.1f%% %8.2fs %9d %5d",
		r.Model, r.KeyBits, r.Sigma, r.QuantBits,
		100*r.Accuracy, 100*r.Fidelity, r.Seconds, r.Queries, r.Degraded)
	if r.Err != nil {
		s += "  !! " + r.Err.Error()
	}
	return s
}

// WriteRobustnessCSV emits the sweep as CSV for downstream plotting.
func WriteRobustnessCSV(rows []RobustnessRow, w io.Writer) {
	fmt.Fprintln(w, "model,key_bits,sigma,quant_bits,acc,fid,seconds,queries,degraded,error")
	for _, r := range rows {
		errs := ""
		if r.Err != nil {
			errs = r.Err.Error()
		}
		fmt.Fprintf(w, "%s,%d,%g,%d,%.4f,%.4f,%.2f,%d,%d,%q\n",
			r.Model, r.KeyBits, r.Sigma, r.QuantBits,
			r.Accuracy, r.Fidelity, r.Seconds, r.Queries, r.Degraded, errs)
	}
}
