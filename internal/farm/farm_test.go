package farm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// stubOracle is a minimal oracle.Interface for channel tests: it answers
// every row with a fixed vector and counts like the real base oracle. An
// optional gate blocks Query — for inputs whose first element exceeds
// gateAbove — until released, so tests can hold a round in flight
// deterministically.
type stubOracle struct {
	out       []float64
	queries   atomic.Int64
	rounds    atomic.Int64
	gate      chan struct{}
	gateAbove float64
}

func (s *stubOracle) Query(x []float64) ([]float64, error) {
	s.queries.Add(1)
	s.rounds.Add(1)
	if s.gate != nil && len(x) > 0 && x[0] > s.gateAbove {
		<-s.gate
	}
	return append([]float64(nil), s.out...), nil
}

func (s *stubOracle) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	s.queries.Add(int64(x.Rows))
	s.rounds.Add(1)
	out := tensor.GetMatrix(x.Rows, len(s.out))
	for i := 0; i < x.Rows; i++ {
		out.SetRow(i, s.out)
	}
	return out, nil
}

func (s *stubOracle) Queries() int64 { return s.queries.Load() }
func (s *stubOracle) Rounds() int64  { return s.rounds.Load() }
func (s *stubOracle) ResetCounter() {
	s.queries.Store(0)
	s.rounds.Store(0)
}
func (s *stubOracle) Softmax() bool { return false }

// oneDeviceTransport builds a single-device transport with a fully
// deterministic channel (no jitter, no heterogeneity beyond the one
// device).
func oneDeviceTransport(st *stubOracle, ch Channel, seed int64) *Transport {
	fleet := BuildFleet(st, Mix{Classes: []Class{{Name: "clean", Weight: 1}}}, 1, ch, seed)
	// Pin the profile to the base channel: single-device tests reason about
	// exact times, so strip the seeded heterogeneity factors.
	ch = ch.withDefaults()
	fleet[0].Profile = Profile{
		Class: "clean", RTT: ch.RTT, Jitter: 0, Bandwidth: ch.Bandwidth,
		Window: ch.Window, ServicePerRow: ch.ServicePerRow, Loss: ch.Loss,
		Timeout: ch.Timeout,
	}
	fleet[0].freeAt = make([]Time, ch.Window)
	return NewTransport(st, fleet, Config{Seed: seed, RowBytesIn: 32, RowBytesOut: 16})
}

// TestSerialRoundsAccumulateLatency: sequential rounds serialize on the
// virtual clock — each issues at the previous completion, so N rounds cost
// N × (RTT + tx + service).
func TestSerialRoundsAccumulateLatency(t *testing.T) {
	st := &stubOracle{out: []float64{1, 0}}
	ch := Channel{RTT: 10 * time.Millisecond, Jitter: -1, Bandwidth: -1,
		ServicePerRow: time.Millisecond, Window: 1}
	tr := oneDeviceTransport(st, ch, 11)
	perRound := 11 * time.Millisecond // RTT + 1ms service, no transfer cost
	x := []float64{0.5, 0.25}
	for i := 1; i <= 5; i++ {
		x[0] = float64(i) // distinct contents: no repeat-attempt coupling
		if _, err := tr.Query(x); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if got, want := tr.SimElapsed(), time.Duration(i)*perRound; got != want {
			t.Fatalf("after %d rounds SimElapsed = %v, want %v", i, got, want)
		}
	}
	if tr.Rounds() != 5 || tr.Queries() != 5 {
		t.Fatalf("rounds/queries = %d/%d, want 5/5", tr.Rounds(), tr.Queries())
	}
}

// TestBatchPaysBandwidth: a batch is one round; its transfer time scales
// with rows over the bandwidth cap.
func TestBatchPaysBandwidth(t *testing.T) {
	st := &stubOracle{out: []float64{1, 0}}
	ch := Channel{RTT: 10 * time.Millisecond, Jitter: -1,
		Bandwidth:     32 * 1000, // 32 B/ms: one input row per ms
		ServicePerRow: time.Millisecond, Window: 1}
	tr := oneDeviceTransport(st, ch, 12)
	x := tensor.New(8, 2)
	out, err := tr.QueryBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	tensor.PutMatrix(out)
	// up: (8×32+64)/32000 s = 10ms; service: 8ms; down: (8×16+64)/32000 = 6ms;
	// plus 10ms RTT.
	want := 10*time.Millisecond + 10*time.Millisecond + 8*time.Millisecond + 6*time.Millisecond
	if got := tr.SimElapsed(); got != want {
		t.Fatalf("batch SimElapsed = %v, want %v", got, want)
	}
	if tr.Rounds() != 1 || tr.Queries() != 8 {
		t.Fatalf("rounds/queries = %d/%d, want 1/8", tr.Rounds(), tr.Queries())
	}
}

// TestLossCountsRoundsAndTimesOut: a seeded-lost round surfaces
// ErrTransient, costs the timeout on the virtual clock, counts a round and
// no queries, and retrying the same content draws a fresh decision.
func TestLossCountsRoundsAndTimesOut(t *testing.T) {
	st := &stubOracle{out: []float64{1, 0}}
	ch := Channel{RTT: 10 * time.Millisecond, Jitter: -1, Bandwidth: -1,
		ServicePerRow: time.Millisecond, Window: 1, Loss: 0.5}
	tr := oneDeviceTransport(st, ch, 13)
	x := []float64{0.7, -0.2}
	var lost, ok int
	for i := 0; i < 30; i++ {
		_, err := tr.Query(x)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, oracle.ErrTransient):
			lost++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if lost == 0 || ok == 0 {
		t.Fatalf("loss-0.5 schedule gave %d lost / %d ok; need both", lost, ok)
	}
	if got, want := tr.Rounds(), int64(30); got != want {
		t.Fatalf("Rounds = %d, want %d (lost rounds count)", got, want)
	}
	if got := tr.Lost(); got != int64(lost) {
		t.Fatalf("Lost = %d, want %d", got, lost)
	}
	if got := tr.Queries(); got != int64(ok) {
		t.Fatalf("Queries = %d, want %d (lost rounds consume none)", got, ok)
	}
	// Each lost round cost the 40ms timeout (4×RTT), each success 11ms.
	want := time.Duration(lost)*40*time.Millisecond + time.Duration(ok)*11*time.Millisecond
	if got := tr.SimElapsed(); got != want {
		t.Fatalf("SimElapsed = %v, want %v", got, want)
	}
}

// TestLossInputAddressed: the loss schedule is a function of content and
// attempt, not global call order — two transports seeing the same contents
// in different interleavings lose the same attempts of the same content.
func TestLossInputAddressed(t *testing.T) {
	ch := Channel{RTT: 5 * time.Millisecond, Jitter: -1, Bandwidth: -1,
		ServicePerRow: time.Millisecond, Window: 1, Loss: 0.5}
	a := []float64{0.1, 0.2}
	b := []float64{0.3, 0.4}
	run := func(order [][]float64) map[string][]bool {
		st := &stubOracle{out: []float64{1, 0}}
		tr := oneDeviceTransport(st, ch, 14)
		got := map[string][]bool{}
		for _, x := range order {
			_, err := tr.Query(x)
			key := "a"
			if &x[0] == &b[0] {
				key = "b"
			}
			got[key] = append(got[key], err != nil)
		}
		return got
	}
	s1 := run([][]float64{a, a, b, a, b, b})
	s2 := run([][]float64{b, a, b, b, a, a})
	for _, k := range []string{"a", "b"} {
		for i := range s1[k] {
			if s1[k][i] != s2[k][i] {
				t.Fatalf("input %s attempt %d: loss depends on interleaving", k, i)
			}
		}
	}
}

// TestConcurrentRoundsOverlap: a round entering while another is in flight
// issues at the same causal frontier, so the two overlap on the virtual
// clock instead of serializing — the property that makes coalesced batches
// and parallel sites cheaper than sequential rounds.
func TestConcurrentRoundsOverlap(t *testing.T) {
	// The gate only blocks inputs with x[0] > 2, so the first (gated) query
	// holds its round in flight while the second passes straight through.
	gate := make(chan struct{})
	st := &stubOracle{out: []float64{1, 0}, gate: gate, gateAbove: 2}
	ch := Channel{RTT: 10 * time.Millisecond, Jitter: -1, Bandwidth: -1,
		ServicePerRow: time.Millisecond, Window: 4}
	tr := oneDeviceTransport(st, ch, 15)

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		if _, err := tr.Query([]float64{5, 2}); err != nil { // blocks on the gate
			t.Errorf("gated query: %v", err)
		}
	}()
	<-started
	// Wait until the first round is dispatched (rounds counter moves before
	// the device evaluation blocks on the gate).
	for tr.Rounds() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	if _, err := tr.Query([]float64{1, 4}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	wg.Wait()
	// Both rounds issued at causal frontier 0 and overlap: the horizon is
	// one round's cost (11ms), not two.
	if got, want := tr.SimElapsed(), 11*time.Millisecond; got != want {
		t.Fatalf("overlapping rounds: SimElapsed = %v, want %v", got, want)
	}
}

// TestTransportResetCounter: reset zeroes rounds, losses, and the base
// counters; the virtual clock keeps running.
func TestTransportResetCounter(t *testing.T) {
	st := &stubOracle{out: []float64{1, 0}}
	ch := Channel{RTT: 10 * time.Millisecond, Jitter: -1, Bandwidth: -1,
		ServicePerRow: time.Millisecond, Window: 1, Loss: 0.3}
	tr := oneDeviceTransport(st, ch, 16)
	for i := 0; i < 10; i++ {
		if _, err := tr.Query([]float64{float64(i), 0.5}); err != nil && !errors.Is(err, oracle.ErrTransient) {
			t.Fatal(err)
		}
	}
	elapsed := tr.SimElapsed()
	if elapsed == 0 || tr.Rounds() != 10 {
		t.Fatalf("pre-reset: elapsed %v rounds %d", elapsed, tr.Rounds())
	}
	tr.ResetCounter()
	if tr.Rounds() != 0 || tr.Lost() != 0 || tr.Queries() != 0 {
		t.Fatalf("post-reset: rounds %d lost %d queries %d, want all 0",
			tr.Rounds(), tr.Lost(), tr.Queries())
	}
	if tr.SimElapsed() != elapsed {
		t.Fatalf("reset rewound the virtual clock: %v -> %v", elapsed, tr.SimElapsed())
	}
}

// TestZeroChannelIsFreeAndTransparent: with zero RTT, unconstrained
// bandwidth, zero service, and zero loss, the transport adds no virtual
// time and passes values through bit-identically — the low-level half of
// the harness pass-through property test.
func TestZeroChannelIsFreeAndTransparent(t *testing.T) {
	st := &stubOracle{out: []float64{0.25, -1.5}}
	ch := Channel{RTT: 0, Jitter: -1, Bandwidth: -1, ServicePerRow: -1, Window: 1}
	fleet := BuildFleet(st, Mix{}, 1, ch, 17)
	fleet[0].Profile.ServicePerRow = 0 // withDefaults floors it; force free compute
	tr := NewTransport(st, fleet, Config{Seed: 17})
	y, err := tr.Query([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != st.out[0] || y[1] != st.out[1] {
		t.Fatalf("pass-through altered values: %v", y)
	}
	xb := tensor.New(4, 2)
	out, err := tr.QueryBatch(xb)
	if err != nil {
		t.Fatal(err)
	}
	tensor.PutMatrix(out)
	if got := tr.SimElapsed(); got != 0 {
		t.Fatalf("zero channel consumed %v of virtual time", got)
	}
	if tr.Rounds() != 2 || tr.Queries() != 5 {
		t.Fatalf("rounds/queries = %d/%d, want 2/5", tr.Rounds(), tr.Queries())
	}
}
